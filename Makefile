# Build / test / bench entry points. Tier-1 verification is
# `make check` (what CI runs); `make bench` regenerates BENCH_PR1.json.

GO ?= go

.PHONY: all build test race streams htap crash dist fuzz-smoke vet fmt-check check bench bench-paper

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The morsel kernels run on a worker pool; CI runs this as its own job.
race:
	$(GO) test -race ./...

# Concurrent-stream golden tests (including the cache golden matrix and
# shared-scheduler suites) + differential parallel-join/sort/dict and
# chunk-encoding suites + the HTAP delta-pipeline and wal/delta-log
# concurrency suites under the race detector (CI's `streams` job).
streams:
	$(GO) test -race -run 'Stream|JoinParallel|SortParallel|TopK|Dict|Cache|Sched|Epoch|Encoding|Htap|Delta|Wal' ./...

# The combined HTAP harness: concurrent write + analytical streams with
# quiesced answers pinned to the golden snapshot, under -race.
htap:
	$(GO) test -race -run 'Htap' ./internal/htap/ -v

# The crash matrix and corruption suites: injected faults (torn writes,
# failed fsyncs, full disk, bit flips), kill + reopen + replay, recovered
# answers pinned to the golden snapshot, under -race.
crash:
	$(GO) test -race -run 'Crash|Corrupt|Recover|Fault|Fsync|Torn|TryScan' \
		./internal/fault/ ./internal/delta/ ./internal/rcfile/ ./internal/htap/

# The distributed scatter/gather suites: golden answers at shard counts
# {1,2,4} over the wire, fragment-vs-scan differential, injected network
# faults (drop/truncate/duplicate/reset/delay), kill + restart of shard
# OS processes mid-stream, typed ErrPartial on outage — under -race —
# plus a network-fault fuzz smoke (CI's `dist` job).
dist:
	$(GO) test -race -run 'Dist|NetFault' ./...
	$(GO) test -run xxx -fuzz FuzzNetFault -fuzztime 15s ./internal/dist/

# Short fuzz runs over the join key-partitioning, sort/top-K, RCF4
# dict-chunk and RLE/delta-chunk round-trips, chunk-cache key/eviction
# paths, the delta-log replay parser, and the full crash-schedule →
# recover cycle of the file-backed log.
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzJoinKeys -fuzztime 15s ./internal/relal/
	$(GO) test -run xxx -fuzz FuzzSortKeys -fuzztime 15s ./internal/relal/
	$(GO) test -run xxx -fuzz FuzzDictRoundTrip -fuzztime 15s ./internal/rcfile/
	$(GO) test -run xxx -fuzz FuzzRLEDelta -fuzztime 15s ./internal/rcfile/
	$(GO) test -run xxx -fuzz FuzzChunkCache -fuzztime 15s ./internal/rcfile/
	$(GO) test -run xxx -fuzz FuzzDeltaReplay -fuzztime 15s ./internal/delta/
	$(GO) test -run xxx -fuzz FuzzCrashRecovery -fuzztime 15s ./internal/delta/

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: fmt-check vet build test

# Per-query TPC-H executor benchmarks → BENCH_PR1.json (row-at-a-time
# baseline vs columnar). BENCHTIME=10x for steadier numbers.
bench:
	./scripts/bench.sh

# The paper-artifact benches (Tables 2–5, Figures 1–6, ablations).
bench-paper:
	$(GO) test -bench . -benchmem
