// Package elephants holds the benchmark harness that regenerates every
// table and figure in the paper's evaluation, one testing.B benchmark
// per artifact, plus ablation benches for the design choices DESIGN.md
// calls out. Reported custom metrics are virtual-time measurements from
// the simulation (the paper's columns); ns/op is host time and is not
// meaningful for comparison with the paper.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package elephants

import (
	"fmt"
	"testing"

	"elephants/internal/cluster"
	"elephants/internal/core"
	"elephants/internal/hive"
	"elephants/internal/pdw"
	"elephants/internal/sim"
	"elephants/internal/sqleng"
	"elephants/internal/tpch"
	"elephants/internal/ycsb"
)

// benchSFs are the modeled scale factors for the TPC-H benches. The
// paper's four points (250/1000/4000/16000) all work; the default pair
// keeps a full bench run fast.
var benchSFs = []float64{250, 1000}

func benchTPCHConfig(queries []int) core.TPCHConfig {
	return core.TPCHConfig{
		LaptopSF:     0.002,
		ScaleFactors: benchSFs,
		Queries:      queries,
		Seed:         1,
	}
}

// BenchmarkTable2LoadTimes regenerates Table 2: Hive vs PDW load times.
func BenchmarkTable2LoadTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := core.RunTPCH(benchTPCHConfig([]int{1}))
		b.ReportMetric(res.Hive[0].LoadTime.Seconds()/60, "hive-load-min@250")
		b.ReportMetric(res.PDW[0].LoadTime.Seconds()/60, "pdw-load-min@250")
	}
}

// BenchmarkTable3TPCH regenerates Table 3: all 22 queries on both
// engines, with AM/GM and the PDW speedup.
func BenchmarkTable3TPCH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := core.RunTPCH(benchTPCHConfig(nil))
		for si := range benchSFs {
			ha, _ := res.Hive[si].Means(9)
			pa, _ := res.PDW[si].Means(9)
			b.ReportMetric(ha, "hive-am-sec")
			b.ReportMetric(pa, "pdw-am-sec")
			b.ReportMetric(ha/pa, "speedup")
		}
	}
}

// BenchmarkTable4Q1MapPhase regenerates Table 4: Q1's map-phase time at
// each scale factor and the per-4× scaling factor.
func BenchmarkTable4Q1MapPhase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := core.RunTPCH(core.TPCHConfig{
			LaptopSF:     0.002,
			ScaleFactors: []float64{250, 1000, 4000},
			Queries:      []int{1},
			Seed:         1,
		})
		m0 := res.Hive[0].HiveQ1MapPhase.Seconds()
		m1 := res.Hive[1].HiveQ1MapPhase.Seconds()
		m2 := res.Hive[2].HiveQ1MapPhase.Seconds()
		b.ReportMetric(m0, "map-sec@250")
		b.ReportMetric(m1/m0, "scale-250-1000")
		b.ReportMetric(m2/m1, "scale-1000-4000")
	}
}

// BenchmarkTable5Q22Breakdown regenerates Table 5: Q22's per-sub-query
// times.
func BenchmarkTable5Q22Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := core.RunTPCH(benchTPCHConfig([]int{22}))
		for sub := 1; sub <= 4; sub++ {
			b.ReportMetric(res.Hive[0].HiveQ22Breakdown[sub].Seconds(),
				[]string{"", "sq1-sec", "sq2-sec", "sq3-sec", "sq4-sec"}[sub])
		}
	}
}

// BenchmarkFigure1Normalized regenerates Figure 1: normalized AM/GM of
// the response times (normalized to PDW at the smallest SF).
func BenchmarkFigure1Normalized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := core.RunTPCH(benchTPCHConfig(nil))
		baseAM, baseGM := res.PDW[0].Means(9)
		ha, hg := res.Hive[len(benchSFs)-1].Means(9)
		b.ReportMetric(ha/baseAM, "hive-norm-am")
		b.ReportMetric(hg/baseGM, "hive-norm-gm")
	}
}

// ycsbBenchScale is the scaled-down YCSB deployment used by the figure
// benches.
func ycsbBenchScale() core.YCSBScale {
	sc := core.DefaultYCSBScale()
	sc.RecordsPerNode = 1000
	sc.Clients = 24
	sc.Warmup = 3 * sim.Second
	sc.Measure = 10 * sim.Second
	return sc
}

// benchCurve runs a reduced sweep (unthrottled peak only) for every
// system and reports peak throughput and latency.
func benchCurve(b *testing.B, w ycsb.Workload, latKind ycsb.OpKind) {
	sc := ycsbBenchScale()
	for i := 0; i < b.N; i++ {
		for _, system := range core.Systems {
			res := core.RunPoint(system, w, 0, sc)
			b.ReportMetric(res.Throughput, system+"-peak-ops")
			b.ReportMetric(res.Latency[latKind].Mean, system+"-"+latKind.String()+"-ms")
		}
	}
}

// BenchmarkFigure2WorkloadC regenerates Figure 2 (read-only).
func BenchmarkFigure2WorkloadC(b *testing.B) { benchCurve(b, ycsb.WorkloadC, ycsb.OpRead) }

// BenchmarkFigure3WorkloadB regenerates Figure 3 (95/5 read/update).
func BenchmarkFigure3WorkloadB(b *testing.B) { benchCurve(b, ycsb.WorkloadB, ycsb.OpRead) }

// BenchmarkFigure4WorkloadA regenerates Figure 4 (50/50).
func BenchmarkFigure4WorkloadA(b *testing.B) { benchCurve(b, ycsb.WorkloadA, ycsb.OpUpdate) }

// BenchmarkFigure5WorkloadD regenerates Figure 5 (read-latest).
func BenchmarkFigure5WorkloadD(b *testing.B) { benchCurve(b, ycsb.WorkloadD, ycsb.OpInsert) }

// BenchmarkFigure6WorkloadE regenerates Figure 6 (short scans) — the
// one workload Mongo-AS wins.
func BenchmarkFigure6WorkloadE(b *testing.B) { benchCurve(b, ycsb.WorkloadE, ycsb.OpScan) }

// BenchmarkYCSBLoadTimes regenerates the §3.4.2 load-time comparison.
func BenchmarkYCSBLoadTimes(b *testing.B) {
	sc := ycsbBenchScale()
	for i := 0; i < b.N; i++ {
		times := core.RunLoadTimes(sc)
		for system, d := range times {
			b.ReportMetric(d.Seconds(), system+"-load-sec")
		}
	}
}

// BenchmarkAblationCostBasedOptimizer contrasts PDW's cost-based join
// strategies against forced shuffle-both joins (Hive-like literal
// execution) on Q19.
func BenchmarkAblationCostBasedOptimizer(b *testing.B) {
	db := tpch.Generate(tpch.GenConfig{SF: 0.002, Seed: 1, Random64: true})
	run := func(force bool) sim.Duration {
		s := sim.New()
		cl := cluster.New(s, cluster.Default16())
		cfg := pdw.DefaultConfig()
		cfg.ForceShuffleJoins = force
		w := pdw.New(s, cl, db, 1000, cfg)
		var total sim.Duration
		s.Spawn("driver", func(p *sim.Proc) { total = w.RunQuery(p, 19).Total })
		s.Run()
		return total
	}
	for i := 0; i < b.N; i++ {
		smart := run(false)
		forced := run(true)
		b.ReportMetric(smart.Seconds(), "cost-based-sec")
		b.ReportMetric(forced.Seconds(), "forced-shuffle-sec")
		b.ReportMetric(float64(forced)/float64(smart), "optimizer-gain")
	}
}

// BenchmarkAblationIsolationLevel reproduces §3.4.3: Workload A under
// READ COMMITTED vs READ UNCOMMITTED on SQL-CS.
func BenchmarkAblationIsolationLevel(b *testing.B) {
	sc := ycsbBenchScale()
	for i := 0; i < b.N; i++ {
		rc := core.RunPointIsolation(ycsb.WorkloadA, 0, sc, sqleng.ReadCommitted)
		ru := core.RunPointIsolation(ycsb.WorkloadA, 0, sc, sqleng.ReadUncommitted)
		b.ReportMetric(rc.Latency[ycsb.OpRead].Mean, "read-committed-ms")
		b.ReportMetric(ru.Latency[ycsb.OpRead].Mean, "read-uncommitted-ms")
	}
}

// BenchmarkAblationMapJoinLimit contrasts Hive with map joins enabled
// vs disabled (everything becomes a common join) on Q5.
func BenchmarkAblationMapJoinLimit(b *testing.B) {
	db := tpch.Generate(tpch.GenConfig{SF: 0.002, Seed: 1, Random64: true})
	run := func(limit int64) sim.Duration {
		s := sim.New()
		cl := cluster.New(s, cluster.Default16())
		cfg := hive.DefaultConfig()
		cfg.MapJoinBuildLimit = limit
		w := hive.New(s, cl, db, 1000, cfg)
		var total sim.Duration
		s.Spawn("driver", func(p *sim.Proc) { total = w.RunQuery(p, 5).Total })
		s.Run()
		return total
	}
	for i := 0; i < b.N; i++ {
		with := run(700 << 20)
		without := run(1)
		b.ReportMetric(with.Seconds(), "mapjoin-sec")
		b.ReportMetric(without.Seconds(), "common-only-sec")
	}
}

// BenchmarkAblationRCFileVsText contrasts Hive's compressed RCFile
// storage with uncompressed text (larger scans, no decompression CPU
// modeled separately — the paper's storage-format discussion).
func BenchmarkAblationRCFileVsText(b *testing.B) {
	db := tpch.Generate(tpch.GenConfig{SF: 0.002, Seed: 1, Random64: true})
	run := func(ratio float64, mapMBps float64) sim.Duration {
		s := sim.New()
		cl := cluster.New(s, cluster.Default16())
		cfg := hive.DefaultConfig()
		cfg.CompressionRatio = ratio
		cfg.MR.MapMBps = mapMBps
		w := hive.New(s, cl, db, 1000, cfg)
		var total sim.Duration
		s.Spawn("driver", func(p *sim.Proc) { total = w.RunQuery(p, 1).Total })
		s.Run()
		return total
	}
	for i := 0; i < b.N; i++ {
		rc := run(0.115, 2.0) // compressed, CPU-bound decode
		text := run(1.0, 20)  // 8.7× more bytes, cheap decode
		b.ReportMetric(rc.Seconds(), "rcfile-sec")
		b.ReportMetric(text.Seconds(), "text-sec")
	}
}

// BenchmarkAblationMongodsPerNode varies the number of mongod processes
// per node (1 vs 8): more processes means finer-grained global write
// locks, the paper's reason for running 16 per node.
func BenchmarkAblationMongodsPerNode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, per := range []int{1, 8} {
			sc := ycsbBenchScale()
			sc.MongodsPerNode = per
			res := core.RunPoint(core.SystemMongoCS, ycsb.WorkloadA, 0, sc)
			b.ReportMetric(res.Throughput, map[int]string{1: "1-mongod-ops", 8: "8-mongod-ops"}[per])
		}
	}
}

// BenchmarkDbgen measures the generator itself (host time).
func BenchmarkDbgen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := tpch.Generate(tpch.GenConfig{SF: 0.002, Seed: int64(i), Random64: true})
		if db.Lineitem.NumRows() == 0 {
			b.Fatal("no lineitem rows")
		}
	}
}

// BenchmarkQueryExecution measures the functional query layer (host
// time for all 22 queries).
func BenchmarkQueryExecution(b *testing.B) {
	db := tpch.Generate(tpch.GenConfig{SF: 0.002, Seed: 1, Random64: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range tpch.Queries {
			tpch.RunQuery(q.ID, db)
		}
	}
}

// BenchmarkTPCHQuery measures each of the 22 queries individually on the
// in-memory relal executor (host time and allocations). These are the
// numbers tracked in BENCH_PR1.json across the row→columnar refactor.
func BenchmarkTPCHQuery(b *testing.B) {
	db := tpch.Generate(tpch.GenConfig{SF: 0.005, Seed: 1, Random64: true})
	for _, q := range tpch.Queries {
		b.Run(fmt.Sprintf("Q%d", q.ID), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tpch.RunQuery(q.ID, db)
			}
		})
	}
}
