// Command dbgen generates TPC-H tables as pipe-delimited text, like the
// TPC dbgen tool, including the paper's two generator variants: the
// 32-bit RANDOM (which overflows at huge scale factors) and the
// RANDOM64 fix.
//
// Usage:
//
//	dbgen -sf 0.01 -table lineitem            # one table to stdout
//	dbgen -sf 0.01 -o /tmp/tpch               # all tables to a directory
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"elephants/internal/relal"
	"elephants/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor")
	table := flag.String("table", "", "single table to emit on stdout (default: all)")
	outDir := flag.String("o", "", "output directory for .tbl files")
	seed := flag.Int64("seed", 1, "generator seed")
	random64 := flag.Bool("random64", true, "use the RANDOM64 fix (false reproduces the 32-bit overflow bug)")
	flag.Parse()

	db := tpch.Generate(tpch.GenConfig{SF: *sf, Seed: *seed, Random64: *random64})

	if *table != "" {
		if err := writeTable(os.Stdout, db.Table(*table)); err != nil {
			fmt.Fprintln(os.Stderr, "dbgen:", err)
			os.Exit(1)
		}
		return
	}
	dir := *outDir
	if dir == "" {
		dir = "."
	}
	for _, name := range tpch.TableNames {
		path := filepath.Join(dir, name+".tbl")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbgen:", err)
			os.Exit(1)
		}
		w := bufio.NewWriter(f)
		if err := writeTable(w, db.Table(name)); err != nil {
			fmt.Fprintln(os.Stderr, "dbgen:", err)
			os.Exit(1)
		}
		w.Flush()
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s (%d rows)\n", path, db.Table(name).NumRows())
	}
}

func writeTable(w io.Writer, t *relal.Table) error {
	for _, row := range relal.RowsOf(t) {
		for i, v := range row {
			if i > 0 {
				if _, err := fmt.Fprint(w, "|"); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprint(w, v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
