// Command dbgen generates TPC-H tables as pipe-delimited text, like the
// TPC dbgen tool, including the paper's two generator variants: the
// 32-bit RANDOM (which overflows at huge scale factors) and the
// RANDOM64 fix.
//
// Usage:
//
//	dbgen -sf 0.01 -table lineitem            # one table to stdout
//	dbgen -sf 0.01 -o /tmp/tpch               # all tables to a directory
//	dbgen -sf 0.01 -cluster l_shipdate -o d   # lineitem in shipdate order
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"elephants/internal/relal"
	"elephants/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor")
	table := flag.String("table", "", "single table to emit on stdout (default: all)")
	outDir := flag.String("o", "", "output directory for .tbl files")
	seed := flag.Int64("seed", 1, "generator seed")
	random64 := flag.Bool("random64", true, "use the RANDOM64 fix (false reproduces the 32-bit overflow bug)")
	cluster := flag.String("cluster", "", "cluster the owning base table on this column (e.g. l_shipdate), so zone maps can prune range scans")
	noDict := flag.Bool("no-dict", false, "disable dictionary encoding of low-cardinality string columns (emitted text is identical either way)")
	noRLE := flag.Bool("no-rle", false, "disable run-length chunk encoding in the scan cost model (emitted text is identical either way)")
	noDelta := flag.Bool("no-delta", false, "disable delta chunk encoding in the scan cost model (emitted text is identical either way)")
	flag.Parse()

	relal.ModelRLE, relal.ModelDelta = !*noRLE, !*noDelta
	db := tpch.Generate(tpch.GenConfig{SF: *sf, Seed: *seed, Random64: *random64, NoDict: *noDict})
	if *cluster != "" {
		name, err := db.Cluster(*cluster)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "clustered %s on %s\n", name, *cluster)
	}

	if *table != "" {
		if err := writeTable(os.Stdout, db.Table(*table)); err != nil {
			fmt.Fprintln(os.Stderr, "dbgen:", err)
			os.Exit(1)
		}
		return
	}
	dir := *outDir
	if dir == "" {
		dir = "."
	}
	for _, name := range tpch.TableNames {
		path := filepath.Join(dir, name+".tbl")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbgen:", err)
			os.Exit(1)
		}
		w := bufio.NewWriter(f)
		if err := writeTable(w, db.Table(name)); err != nil {
			fmt.Fprintln(os.Stderr, "dbgen:", err)
			os.Exit(1)
		}
		w.Flush()
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s (%d rows)\n", path, db.Table(name).NumRows())
	}
}

// cellWriter formats one column's cells straight from its typed vector
// — no boxed rows. Float cells keep fmt's %v shortest-exact form so the
// emitted text is identical to the old row-based writer's.
type cellWriter func(w *bufio.Writer, i int) error

func columnWriter(t *relal.Table, c relal.Column) cellWriter {
	switch c.Type {
	case relal.Int:
		v := t.IntCol(c.Name)
		return func(w *bufio.Writer, i int) error {
			_, err := w.WriteString(strconv.FormatInt(v.Get(i), 10))
			return err
		}
	case relal.Float:
		v := t.FloatCol(c.Name)
		return func(w *bufio.Writer, i int) error {
			_, err := w.WriteString(strconv.FormatFloat(v.Get(i), 'g', -1, 64))
			return err
		}
	default:
		v := t.StrCol(c.Name)
		return func(w *bufio.Writer, i int) error {
			_, err := w.WriteString(v.Get(i))
			return err
		}
	}
}

func writeTable(out io.Writer, t *relal.Table) error {
	w, ok := out.(*bufio.Writer)
	if !ok {
		w = bufio.NewWriter(out)
	}
	cols := make([]cellWriter, len(t.Schema))
	for ci, c := range t.Schema {
		cols[ci] = columnWriter(t, c)
	}
	n := t.NumRows()
	for i := 0; i < n; i++ {
		for ci, cw := range cols {
			if ci > 0 {
				if err := w.WriteByte('|'); err != nil {
					return err
				}
			}
			if err := cw(w, i); err != nil {
				return err
			}
		}
		if err := w.WriteByte('\n'); err != nil {
			return err
		}
	}
	return w.Flush()
}
