// Command scanstats measures RCFile predicate-pushdown effectiveness:
// it generates a functional TPC-H dataset, encodes every base table
// into RCFile (zone-map footer, multi-row-group), runs the requested
// queries through the pushdown-aware scan pipeline, and emits the
// per-table bytes-read/bytes-skipped accounting as JSON.
// scripts/bench.sh embeds the output in BENCH_PR2.json.
//
// Usage:
//
//	scanstats [-sf 0.01] [-group-rows 2048] [-queries 1,6]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"elephants/internal/rcfile"
	"elephants/internal/relal"
	"elephants/internal/tpch"
)

// tableStats is one base table's scan accounting within one query.
type tableStats struct {
	BytesRead     int64   `json:"bytes_read"`
	BytesSkipped  int64   `json:"bytes_skipped"`
	ReadFrac      float64 `json:"read_frac"`
	GroupsRead    int     `json:"groups_read"`
	GroupsSkipped int     `json:"groups_skipped"`
}

type report struct {
	SF        float64                           `json:"sf"`
	GroupRows int                               `json:"group_rows"`
	Queries   map[string]map[string]*tableStats `json:"queries"`
}

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor of the functional dataset")
	groupRows := flag.Int("group-rows", 2048, "RCFile row-group size in rows")
	queries := flag.String("queries", "1,6", "query IDs, comma-separated")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	ids, err := parseIDs(*queries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scanstats:", err)
		os.Exit(1)
	}

	db := tpch.Generate(tpch.GenConfig{SF: *sf, Seed: *seed, Random64: true})
	for _, name := range tpch.TableNames {
		src, err := rcfile.NewSource(db.Table(name), *groupRows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scanstats: encode", name+":", err)
			os.Exit(1)
		}
		db.SetSource(name, src)
	}

	rep := report{SF: *sf, GroupRows: *groupRows, Queries: map[string]map[string]*tableStats{}}
	for _, id := range ids {
		_, log := tpch.RunQuery(id, db)
		per := map[string]*tableStats{}
		for _, step := range log.Steps {
			if step.Kind != relal.StepScan || step.LeftBase == "" {
				continue
			}
			ts := per[step.LeftBase]
			if ts == nil {
				ts = &tableStats{}
				per[step.LeftBase] = ts
			}
			ts.BytesRead += step.ScanBytesRead
			ts.BytesSkipped += step.ScanBytesSkipped
			ts.GroupsRead += step.ScanGroupsRead
			ts.GroupsSkipped += step.ScanGroupsSkipped
		}
		for _, ts := range per {
			if tot := ts.BytesRead + ts.BytesSkipped; tot > 0 {
				ts.ReadFrac = float64(ts.BytesRead) / float64(tot)
			}
		}
		rep.Queries[fmt.Sprintf("Q%d", id)] = per
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "scanstats:", err)
		os.Exit(1)
	}
}

func parseIDs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || id < 1 || id > 22 {
			return nil, fmt.Errorf("bad query id %q", part)
		}
		out = append(out, id)
	}
	return out, nil
}
