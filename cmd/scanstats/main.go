// Command scanstats measures RCFile storage effectiveness: it
// generates a functional TPC-H dataset, encodes every base table into
// RCFile (RCF3: zone-map footer, multi-row-group, dictionary-encoded
// string chunks), runs the requested queries through the pushdown-aware
// scan pipeline, and emits the per-table bytes-read/bytes-skipped
// accounting as JSON — plus, per base table, the per-string-column
// dictionary cardinality and encoded-vs-raw byte ratio, so the
// compression win is observable without a benchmark run.
// scripts/bench.sh embeds the output in BENCH_PR2.json / BENCH_PR5.json.
//
// With -enc it instead prints the per-chunk encoding census: for every
// column of every base table, how many chunks landed on each encoding
// (plain, gdict, gdict+rle, rle, delta) and each encoding's share of
// the column's compressed bytes — the writer's adaptive per-chunk
// choice made observable. -cluster re-sorts a base table first, which
// is what turns sorted-column chunks into runs.
//
// Usage:
//
//	scanstats [-sf 0.01] [-group-rows 2048] [-queries 1,6] [-no-dict] [-no-rle] [-no-delta]
//	scanstats -table-bytes lineitem [-no-dict] [-cluster l_shipdate]   # just the RCFile size
//	scanstats -enc [-cluster l_shipdate]                               # encoding histogram
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"elephants/internal/rcfile"
	"elephants/internal/relal"
	"elephants/internal/tpch"
)

// tableStats is one base table's scan accounting within one query.
type tableStats struct {
	BytesRead     int64   `json:"bytes_read"`
	BytesSkipped  int64   `json:"bytes_skipped"`
	ReadFrac      float64 `json:"read_frac"`
	GroupsRead    int     `json:"groups_read"`
	GroupsSkipped int     `json:"groups_skipped"`
	// BytesFromCache ⊆ BytesRead: compressed bytes whose decoded chunks
	// came from the shared chunk cache instead of fresh inflation.
	BytesFromCache int64 `json:"bytes_from_cache"`
	CacheHits      int   `json:"cache_hits"`
	CacheMisses    int   `json:"cache_misses"`
}

// columnDict describes one Str column's dictionary story: how many
// distinct values it holds and how its modeled encoded size compares to
// the raw length-prefixed strings.
type columnDict struct {
	Cardinality  int     `json:"cardinality"`
	Dict         bool    `json:"dict"`
	RawBytes     int64   `json:"raw_bytes"`
	EncodedBytes int64   `json:"encoded_bytes"`
	Ratio        float64 `json:"encoded_ratio"`
}

// tableReport is one base table's storage summary.
type tableReport struct {
	Rows        int                    `json:"rows"`
	RCFileBytes int                    `json:"rcfile_bytes"`
	FileID      string                 `json:"file_id"`
	StrColumns  map[string]*columnDict `json:"str_columns"`
}

// storageReport is the file-level storage total, deduplicated by
// content-derived file ID: a file served through several sources (or two
// byte-identical encodings) is charged once, so dictionary bytes are not
// double-counted the way summing per-source sizes would.
type storageReport struct {
	TotalBytes  int64 `json:"total_bytes"`
	UniqueBytes int64 `json:"unique_bytes"`
	UniqueFiles int   `json:"unique_files"`
}

type report struct {
	SF        float64                           `json:"sf"`
	GroupRows int                               `json:"group_rows"`
	Dict      bool                              `json:"dict"`
	CacheMB   int                               `json:"cache_mb"`
	Storage   storageReport                     `json:"storage"`
	Tables    map[string]*tableReport           `json:"tables"`
	Queries   map[string]map[string]*tableStats `json:"queries"`
}

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor of the functional dataset")
	groupRows := flag.Int("group-rows", 2048, "RCFile row-group size in rows")
	queries := flag.String("queries", "1,6", "query IDs, comma-separated")
	seed := flag.Int64("seed", 1, "generator seed")
	noDict := flag.Bool("no-dict", false, "disable dictionary encoding of low-cardinality string columns")
	noRLE := flag.Bool("no-rle", false, "disable run-length chunk encoding (RCFile writer and scan model)")
	noDelta := flag.Bool("no-delta", false, "disable delta chunk encoding (RCFile writer and scan model)")
	cluster := flag.String("cluster", "", "cluster the owning base table on this column before encoding (e.g. l_shipdate)")
	encMode := flag.Bool("enc", false, "print the per-column chunk-encoding histogram and exit")
	cacheMB := flag.Int("cache-mb", 0, "attach a shared decompressed-chunk cache of this many MiB (0 = none)")
	tableBytes := flag.String("table-bytes", "", "print only the named table's RCFile byte count and exit")
	flag.Parse()

	relal.ModelRLE, relal.ModelDelta = !*noRLE, !*noDelta
	opts := rcfile.WriterOpts{NoRLE: *noRLE, NoDelta: *noDelta}
	db := tpch.Generate(tpch.GenConfig{SF: *sf, Seed: *seed, Random64: true, NoDict: *noDict})
	if *cluster != "" {
		if _, err := db.Cluster(*cluster); err != nil {
			fmt.Fprintln(os.Stderr, "scanstats:", err)
			os.Exit(1)
		}
	}

	if *tableBytes != "" {
		src, err := rcfile.NewSourceOpts(db.Table(*tableBytes), *groupRows, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scanstats: encode", *tableBytes+":", err)
			os.Exit(1)
		}
		fmt.Println(src.Bytes())
		return
	}

	if *encMode {
		if err := printEncReport(db, *groupRows, opts); err != nil {
			fmt.Fprintln(os.Stderr, "scanstats:", err)
			os.Exit(1)
		}
		return
	}

	ids, err := parseIDs(*queries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scanstats:", err)
		os.Exit(1)
	}

	rep := report{
		SF: *sf, GroupRows: *groupRows, Dict: !*noDict, CacheMB: *cacheMB,
		Tables:  map[string]*tableReport{},
		Queries: map[string]map[string]*tableStats{},
	}
	var cache *rcfile.ChunkCache
	if *cacheMB > 0 {
		cache = rcfile.NewChunkCache(int64(*cacheMB) << 20)
	}
	seenFiles := map[uint64]bool{}
	for _, name := range tpch.TableNames {
		t := db.Table(name)
		src, err := rcfile.NewSourceOpts(t, *groupRows, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scanstats: encode", name+":", err)
			os.Exit(1)
		}
		src.SetCache(cache)
		db.SetSource(name, src)
		tr := tableSummary(t, src.Bytes())
		tr.FileID = fmt.Sprintf("%016x", src.FileID())
		rep.Tables[name] = tr
		rep.Storage.TotalBytes += int64(src.Bytes())
		if !seenFiles[src.FileID()] {
			seenFiles[src.FileID()] = true
			rep.Storage.UniqueBytes += int64(src.Bytes())
		}
	}
	rep.Storage.UniqueFiles = len(seenFiles)

	for _, id := range ids {
		_, log := tpch.RunQuery(id, db)
		per := map[string]*tableStats{}
		for _, step := range log.Steps {
			if step.Kind != relal.StepScan || step.LeftBase == "" {
				continue
			}
			ts := per[step.LeftBase]
			if ts == nil {
				ts = &tableStats{}
				per[step.LeftBase] = ts
			}
			ts.BytesRead += step.ScanBytesRead
			ts.BytesSkipped += step.ScanBytesSkipped
			ts.GroupsRead += step.ScanGroupsRead
			ts.GroupsSkipped += step.ScanGroupsSkipped
			ts.BytesFromCache += step.ScanBytesFromCache
			ts.CacheHits += step.ScanCacheHits
			ts.CacheMisses += step.ScanCacheMisses
		}
		for _, ts := range per {
			if tot := ts.BytesRead + ts.BytesSkipped; tot > 0 {
				ts.ReadFrac = float64(ts.BytesRead) / float64(tot)
			}
		}
		rep.Queries[fmt.Sprintf("Q%d", id)] = per
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "scanstats:", err)
		os.Exit(1)
	}
}

// tableSummary reports, per Str column, the dictionary cardinality and
// the modeled encoded-vs-raw byte ratio (codes + dictionary against
// length-prefixed strings, both pre-compression).
func tableSummary(t *relal.Table, fileBytes int) *tableReport {
	tr := &tableReport{
		Rows:        t.NumRows(),
		RCFileBytes: fileBytes,
		StrColumns:  map[string]*columnDict{},
	}
	n := t.NumRows()
	for ci, c := range t.Schema {
		if c.Type != relal.Str {
			continue
		}
		v := t.Cols[ci]
		cd := &columnDict{Dict: v.IsDict()}
		var raw, enc int64
		if v.IsDict() {
			cd.Cardinality = len(v.DictVals)
			for _, code := range v.Dict {
				raw += 4 + int64(len(v.DictVals[code]))
			}
			enc = relal.DictEncodedBytes(v.DictVals, n)
		} else {
			distinct := map[string]struct{}{}
			for i := 0; i < n; i++ {
				s := v.StrAt(int32(i))
				distinct[s] = struct{}{}
				raw += 4 + int64(len(s))
			}
			cd.Cardinality = len(distinct)
			enc = raw
		}
		cd.RawBytes, cd.EncodedBytes = raw, enc
		if raw > 0 {
			cd.Ratio = float64(enc) / float64(raw)
		}
		tr.StrColumns[c.Name] = cd
	}
	return tr
}

// encColumn is one column's chunk-encoding census: chunk counts and
// compressed-byte shares keyed by encoding name, zero encodings omitted.
type encColumn struct {
	Type      string             `json:"type"`
	Chunks    map[string]int     `json:"chunks"`
	CompBytes map[string]int64   `json:"comp_bytes"`
	ByteShare map[string]float64 `json:"byte_share"`
}

// printEncReport encodes every base table and emits the per-column
// encoding histogram straight from the RCFile footers (no chunk is
// decompressed, no query runs).
func printEncReport(db *tpch.DB, groupRows int, opts rcfile.WriterOpts) error {
	rep := map[string]map[string]*encColumn{}
	for _, name := range tpch.TableNames {
		t := db.Table(name)
		src, err := rcfile.NewSourceOpts(t, groupRows, opts)
		if err != nil {
			return fmt.Errorf("encode %s: %w", name, err)
		}
		cols := map[string]*encColumn{}
		for ci, st := range src.EncodingStats() {
			ec := &encColumn{
				Type:      typeName(t.Schema[ci].Type),
				Chunks:    map[string]int{},
				CompBytes: map[string]int64{},
				ByteShare: map[string]float64{},
			}
			var total int64
			for _, b := range st.CompBytes {
				total += b
			}
			for e, n := range st.Chunks {
				if n == 0 {
					continue
				}
				ec.Chunks[rcfile.EncNames[e]] = n
				ec.CompBytes[rcfile.EncNames[e]] = st.CompBytes[e]
				if total > 0 {
					ec.ByteShare[rcfile.EncNames[e]] = float64(st.CompBytes[e]) / float64(total)
				}
			}
			cols[t.Schema[ci].Name] = ec
		}
		rep[name] = cols
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func typeName(t relal.Type) string {
	switch t {
	case relal.Int:
		return "int"
	case relal.Float:
		return "float"
	default:
		return "str"
	}
}

func parseIDs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || id < 1 || id > 22 {
			return nil, fmt.Errorf("bad query id %q", part)
		}
		out = append(out, id)
	}
	return out, nil
}
