// Command tpchbench regenerates the paper's TPC-H artifacts: Table 2
// (load times), Table 3 (22 queries × 4 scale factors with speedups and
// scaling factors), Table 4 (Q1 map-phase time), Table 5 (Q22 sub-query
// breakdown), and Figure 1 (normalized means), comparing the Hive and
// PDW models on the simulated 16-node cluster.
//
// Usage:
//
//	tpchbench [-laptop-sf 0.002] [-sf 250,1000,4000,16000] [-queries 1,5,19] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"elephants/internal/core"
)

func main() {
	laptopSF := flag.Float64("laptop-sf", 0.002, "functional dataset scale factor")
	sfList := flag.String("sf", "250,1000,4000,16000", "modeled scale factors (GB), comma-separated")
	queries := flag.String("queries", "", "query IDs to run (default: all 22)")
	seed := flag.Int64("seed", 1, "generator seed")
	workers := flag.Int("workers", 0, "executor worker-pool size (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	cfg := core.TPCHConfig{LaptopSF: *laptopSF, Seed: *seed, Workers: *workers}
	var err error
	cfg.ScaleFactors, err = parseFloats(*sfList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpchbench:", err)
		os.Exit(1)
	}
	if *queries != "" {
		cfg.Queries, err = parseInts(*queries)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tpchbench:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("TPC-H: Hive vs PDW on a simulated 16-node cluster (functional data at SF %g)\n\n", *laptopSF)
	res := core.RunTPCH(cfg)
	res.WriteTable2(os.Stdout)
	fmt.Println()
	res.WriteTable3(os.Stdout)
	fmt.Println()
	res.WriteTable4(os.Stdout)
	fmt.Println()
	res.WriteTable5(os.Stdout)
	fmt.Println()
	res.WriteFigure1(os.Stdout)
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad scale factor %q", part)
		}
		out = append(out, f)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		i, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || i < 1 || i > 22 {
			return nil, fmt.Errorf("bad query id %q", part)
		}
		out = append(out, i)
	}
	return out, nil
}
