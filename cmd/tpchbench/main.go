// Command tpchbench regenerates the paper's TPC-H artifacts: Table 2
// (load times), Table 3 (22 queries × 4 scale factors with speedups and
// scaling factors), Table 4 (Q1 map-phase time), Table 5 (Q22 sub-query
// breakdown), and Figure 1 (normalized means), comparing the Hive and
// PDW models on the simulated 16-node cluster.
//
// With -streams N it instead runs the concurrent query-stream harness:
// N goroutine streams replay the 22 queries over one shared immutable
// DB and the aggregate throughput is reported (JSON with -stream-json,
// which scripts/bench.sh embeds in BENCH_PR3.json).
//
// With -htap it runs the combined HTAP harness: closed-loop write
// clients replay held-back rows through the delta-log write path while
// the analytical streams run, and the report covers write ops/sec,
// analytical QPS, and freshness lag (JSON with -htap-json, which
// scripts/bench.sh embeds in BENCH_PR8.json).
//
// Usage:
//
//	tpchbench [-laptop-sf 0.002] [-sf 250,1000,4000,16000] [-queries 1,5,19] [-workers N]
//	tpchbench -streams N [-stream-rounds R] [-stream-json] [-laptop-sf 0.01] [-workers N]
//	          [-stream-rcfile] [-cache-mb M] [-no-result-cache] [-no-chunk-cache]
//	tpchbench -htap [-writers N] [-target-ops R] [-hold-frac F] [-streams N]
//	          [-stream-rounds R] [-stream-rcfile] [-htap-json]
//	          [-durable DIR] [-sync-policy group|always|none] [-fault-seed S]
//	tpchbench -dist N [-dist-fault-seed S] [-dist-procs] [-dist-recovery]
//	          [-dist-json] [-stream-rounds R] [-queries 6,12] [-workers N]
//
// With -dist N the 22 queries stream through a coordinator scattering
// over N localhost shard servers (hash-partitioned orders+lineitem,
// each with a durable delta log); every answer is merged back exactly.
// -dist-fault-seed injects seeded network faults (drops, truncations,
// duplicates, resets, delays) that the retry/CRC machinery must absorb;
// -dist-recovery kills and restarts a shard and times kill → first
// exact answer (JSON with -dist-json, embedded in BENCH_PR10.json).
//
// With -durable the delta log (and, with -stream-rcfile, the converted
// parts) live on disk under DIR; the run ends by closing the store and
// timing a reopen + replay, reported in the "durable" block. A non-zero
// -fault-seed injects transient part-write faults to exercise the
// converter's retry path.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"elephants/internal/core"
	"elephants/internal/dist"
	"elephants/internal/tpch"
)

func main() {
	// A re-exec with DIST_SHARD_CONFIG set is a shard child, not a
	// bench run: serve the shard and never parse flags.
	if dist.MaybeShardMain() {
		return
	}
	laptopSF := flag.Float64("laptop-sf", 0.002, "functional dataset scale factor")
	sfList := flag.String("sf", "250,1000,4000,16000", "modeled scale factors (GB), comma-separated")
	queries := flag.String("queries", "", "query IDs to run (default: all 22)")
	seed := flag.Int64("seed", 1, "generator seed")
	workers := flag.Int("workers", 0, "executor worker-pool size (0 = GOMAXPROCS, 1 = serial)")
	streams := flag.Int("streams", 0, "run N concurrent query streams instead of the paper tables")
	streamRounds := flag.Int("stream-rounds", 3, "rounds of the query list per stream")
	streamJSON := flag.Bool("stream-json", false, "emit the stream result as JSON (for bench.sh)")
	streamRCFile := flag.Bool("stream-rcfile", false, "back stream scans with RCFile-encoded tables (enables the chunk cache)")
	cacheMB := flag.Int("cache-mb", 64, "shared decompressed-chunk cache capacity in MiB (with -stream-rcfile)")
	noResultCache := flag.Bool("no-result-cache", false, "disable per-(query, epoch) result memoization across rounds")
	noChunkCache := flag.Bool("no-chunk-cache", false, "disable the shared decompressed-chunk cache (with -stream-rcfile)")
	noTopK := flag.Bool("no-topk", false, "disable the fused TopK operator (bounded queries run unfused Sort+Limit; answers identical)")
	noDict := flag.Bool("no-dict", false, "disable dictionary encoding of low-cardinality string columns (answers identical; kernels compare strings instead of codes)")
	noRLE := flag.Bool("no-rle", false, "disable run-length chunk encoding in RCFiles and the scan model (answers identical)")
	noDelta := flag.Bool("no-delta", false, "disable delta/frame-of-reference chunk encoding in RCFiles and the scan model (answers identical)")
	htapRun := flag.Bool("htap", false, "run the combined HTAP harness (write stream + analytical streams over one store)")
	htapJSON := flag.Bool("htap-json", false, "emit the HTAP result as JSON (for bench.sh)")
	writers := flag.Int("writers", 4, "closed-loop write clients (with -htap)")
	targetOps := flag.Float64("target-ops", 0, "aggregate write throughput target in ops/sec, 0 = unthrottled (with -htap)")
	holdFrac := flag.Float64("hold-frac", 0.02, "fraction of orders+lineitem rows held back and replayed as writes (with -htap)")
	convertRows := flag.Int("convert-rows", 256, "delta-tail size at which the background converter encodes a columnar part (with -htap)")
	durable := flag.String("durable", "", "directory for the durable delta log and RCF5 parts; the run ends with a close + timed recovery (with -htap)")
	syncPolicy := flag.String("sync-policy", "group", "durable log fsync policy: group, always, or none (with -htap -durable)")
	faultSeed := flag.Int64("fault-seed", 0, "non-zero wraps the durable FS in a seeded fault injector (transient part-write failures; with -htap)")
	distShards := flag.Int("dist", 0, "run the distributed scatter/gather harness over N shard servers")
	distFaultSeed := flag.Int64("dist-fault-seed", 0, "non-zero arms a seeded network fault schedule on every coordinator frame (with -dist)")
	distProcs := flag.Bool("dist-procs", false, "run shards as real OS processes re-executing this binary (with -dist)")
	distRecovery := flag.Bool("dist-recovery", false, "kill + restart one shard after the QPS phase and time recovery (with -dist)")
	distJSON := flag.Bool("dist-json", false, "emit the distributed result as JSON (for bench.sh)")
	flag.Parse()

	if *noTopK {
		tpch.TopKFusion = false
	}

	var qids []int
	var err error
	if *queries != "" {
		qids, err = parseInts(*queries)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tpchbench:", err)
			os.Exit(1)
		}
	}

	if *distShards > 0 {
		runDist(core.DistConfig{
			LaptopSF: *laptopSF, Seed: *seed,
			Shards: *distShards, Rounds: *streamRounds,
			Queries: qids, Workers: *workers,
			FaultSeed: *distFaultSeed, Procs: *distProcs, Recovery: *distRecovery,
		}, *distJSON)
		return
	}

	if *htapRun {
		runHTAP(core.HTAPConfig{
			LaptopSF: *laptopSF, Seed: *seed, HoldFrac: *holdFrac,
			Writers: *writers, TargetOps: *targetOps,
			Streams: *streams, Rounds: *streamRounds, Workers: *workers,
			Queries: qids, NoDict: *noDict, NoRLE: *noRLE, NoDelta: *noDelta,
			RCFile: *streamRCFile, CacheMB: *cacheMB,
			NoResultCache: *noResultCache, NoChunkCache: *noChunkCache,
			ConvertRows: *convertRows,
			DurablePath: *durable, SyncPolicy: *syncPolicy, FaultSeed: *faultSeed,
		}, *htapJSON)
		return
	}

	if *streams > 0 {
		runStreams(core.TPCHStreamConfig{
			LaptopSF: *laptopSF, Seed: *seed,
			Streams: *streams, Rounds: *streamRounds, Workers: *workers,
			Queries: qids, NoDict: *noDict, NoRLE: *noRLE, NoDelta: *noDelta,
			RCFile: *streamRCFile, CacheMB: *cacheMB,
			NoResultCache: *noResultCache, NoChunkCache: *noChunkCache,
		}, *streamJSON)
		return
	}

	cfg := core.TPCHConfig{LaptopSF: *laptopSF, Seed: *seed, Workers: *workers, Queries: qids,
		NoDict: *noDict, NoRLE: *noRLE, NoDelta: *noDelta}
	cfg.ScaleFactors, err = parseFloats(*sfList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpchbench:", err)
		os.Exit(1)
	}

	fmt.Printf("TPC-H: Hive vs PDW on a simulated 16-node cluster (functional data at SF %g)\n\n", *laptopSF)
	res := core.RunTPCH(cfg)
	res.WriteTable2(os.Stdout)
	fmt.Println()
	res.WriteTable3(os.Stdout)
	fmt.Println()
	res.WriteTable4(os.Stdout)
	fmt.Println()
	res.WriteTable5(os.Stdout)
	fmt.Println()
	res.WriteFigure1(os.Stdout)
}

// runDist executes the distributed scatter/gather harness and prints
// either a human summary or the JSON blob bench.sh embeds.
func runDist(cfg core.DistConfig, asJSON bool) {
	if cfg.LaptopSF <= 0.002 {
		cfg.LaptopSF = 0.005 // the golden scale the dist tests pin
	}
	res, err := core.RunDist(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpchbench:", err)
		os.Exit(1)
	}
	s := res.Stats
	if asJSON {
		fmt.Printf("{\"shards\": %d, \"procs\": %v, \"rounds\": %d, \"queries\": %d, \"elapsed_ms\": %.1f, \"qps\": %.2f",
			res.Config.Shards, res.Config.Procs, res.Config.Rounds, res.Queries,
			float64(res.Elapsed.Microseconds())/1000, res.QPS)
		fmt.Printf(", \"fault_seed\": %d, \"requests\": %d, \"retries\": %d, \"failfast\": %d, \"breaker_trips\": %d, \"breaker_closes\": %d, \"partials\": %d, \"net_faults_injected\": %d",
			res.Config.FaultSeed, s["dist_requests"], s["dist_retries"], s["dist_failfast"],
			s["dist_breaker_trips"], s["dist_breaker_closes"], s["dist_partials"], s["net_faults_injected"])
		if r := res.Recovery; r != nil {
			fmt.Printf(", \"recovery\": {\"killed_shard\": %d, \"recovery_ms\": %.3f, \"retries\": %d}",
				r.KilledShard, r.RecoveryMS, r.Retries)
		}
		fmt.Println("}")
		return
	}
	mode := "in-process"
	if res.Config.Procs {
		mode = "OS-process"
	}
	fmt.Printf("Distributed: %d %s shard(s), %d round(s) of %d query ids\n",
		res.Config.Shards, mode, res.Config.Rounds, res.Queries/res.Config.Rounds)
	fmt.Printf("  %d exact answers in %v  =>  %.2f queries/sec\n", res.Queries, res.Elapsed, res.QPS)
	fmt.Printf("  wire: %d requests, %d retries, %d fail-fast, breaker %d trip(s)/%d close(s), %d partials, %d net faults injected (seed %d)\n",
		s["dist_requests"], s["dist_retries"], s["dist_failfast"],
		s["dist_breaker_trips"], s["dist_breaker_closes"], s["dist_partials"],
		s["net_faults_injected"], res.Config.FaultSeed)
	if r := res.Recovery; r != nil {
		fmt.Printf("  recovery: shard %d killed + restarted; first exact answer %.1f ms after the kill (%d retries)\n",
			r.KilledShard, r.RecoveryMS, r.Retries)
	}
}

// runHTAP executes the combined HTAP harness and prints either a human
// summary or the JSON blob bench.sh embeds.
func runHTAP(cfg core.HTAPConfig, asJSON bool) {
	if cfg.Streams <= 0 {
		cfg.Streams = 2
	}
	if cfg.LaptopSF <= 0.002 {
		cfg.LaptopSF = 0.01
	}
	res, err := core.RunHTAP(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpchbench:", err)
		os.Exit(1)
	}
	w, a, f := res.Harness.Write, res.Harness.Analytic, res.Harness.Freshness
	if asJSON {
		fmt.Printf("{\"writers\": %d, \"held_rows\": %d, \"write_ops\": %d, \"write_errors\": %d, \"write_ops_per_sec\": %.1f, \"write_latency_ms\": {\"mean\": %.4f, \"stderr\": %.4f}",
			cfg.Writers, res.Held, w.Ops, w.Errors, w.OpsPerSec, w.Latency.Mean, w.Latency.StdErr)
		fmt.Printf(", \"streams\": %d, \"rounds\": %d, \"queries\": %d, \"qps\": %.2f, \"result_cache_hits\": %d",
			a.Streams, a.Rounds, a.Queries, a.QPS, a.ResultCacheHits)
		fmt.Printf(", \"freshness\": {\"max_lag_records\": %d, \"mean_lag_records\": %.1f, \"final_lag_records\": %d, \"samples\": %d, \"converts\": %d, \"converted_records\": %d, \"flushes\": %d}",
			f.MaxLagRecords, f.MeanLagRecords, f.FinalLagRecords, f.Samples, f.Converts, f.ConvertedRecords, f.Flushes)
		fmt.Printf(", \"final\": {\"committed\": %d, \"converted\": %d, \"lag\": %d}",
			res.Final.CommittedRecords, res.Final.ConvertedRecords, res.Final.LagRecords)
		fmt.Printf(", \"robustness\": {\"frames_replayed\": %d, \"truncated_bytes\": %d, \"converter_retries\": %d, \"converter_backoff_max_reached\": %d, \"corrupt_chunks\": %d, \"parts_quarantined\": %d, \"duplicate_records\": %d}",
			res.Final.FramesReplayed, res.Final.TruncatedBytes, res.Final.ConverterRetries, res.Final.BackoffMaxReached,
			res.Final.CorruptChunks, res.Final.PartsQuarantined, res.Final.DuplicateRecords)
		if d := res.Durable; d != nil {
			fmt.Printf(", \"durable\": {\"sync_policy\": %q, \"log_bytes\": %d, \"recovery_ms\": %.3f, \"frames_replayed\": %d, \"truncated_bytes\": %d, \"parts_recovered\": %d}",
				d.SyncPolicy, d.LogBytes, d.RecoveryMS, d.FramesReplayed, d.TruncatedBytes, d.PartsRecovered)
		}
		fmt.Println("}")
		return
	}
	fmt.Printf("HTAP: %d write client(s) replaying %d held row(s) against %d analytical stream(s) x %d round(s)\n",
		cfg.Writers, res.Held, a.Streams, a.Rounds)
	fmt.Printf("  writes:    %d ops (%d errors) in %v  =>  %.0f ops/sec, latency %.3f ms/op (±%.3f)\n",
		w.Ops, w.Errors, w.Elapsed, w.OpsPerSec, w.Latency.Mean, w.Latency.StdErr)
	fmt.Printf("  analytics: %d queries in %v  =>  %.2f queries/sec (%d result-cache hits)\n",
		a.Queries, a.Elapsed, a.QPS, a.ResultCacheHits)
	fmt.Printf("  freshness: lag max %d / mean %.1f records over %d samples; %d background convert(s) covered %d records; %d group-commit flushes\n",
		f.MaxLagRecords, f.MeanLagRecords, f.Samples, f.Converts, f.ConvertedRecords, f.Flushes)
	fmt.Printf("  final:     %d committed, %d converted, lag %d (after quiesce + convert)\n",
		res.Final.CommittedRecords, res.Final.ConvertedRecords, res.Final.LagRecords)
	// Robustness counters print unconditionally: "no faults" is itself
	// the datum an operator reads off a clean run.
	fmt.Printf("  robustness: %d frames replayed (%d B truncated), %d converter retries (%d backoff saturations), %d corrupt chunks, %d parts quarantined, %d duplicate records\n",
		res.Final.FramesReplayed, res.Final.TruncatedBytes,
		res.Final.ConverterRetries, res.Final.BackoffMaxReached,
		res.Final.CorruptChunks, res.Final.PartsQuarantined, res.Final.DuplicateRecords)
	if d := res.Durable; d != nil {
		fmt.Printf("  durability: sync=%s log %d B; reopen replayed %d frames (%d B truncated), re-adopted %d part(s) in %.3f ms\n",
			d.SyncPolicy, d.LogBytes, d.FramesReplayed, d.TruncatedBytes, d.PartsRecovered, d.RecoveryMS)
	}
}

// runStreams executes the concurrent-stream harness and prints either a
// human summary or the JSON blob bench.sh embeds.
func runStreams(cfg core.TPCHStreamConfig, asJSON bool) {
	res, err := core.RunTPCHStreams(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpchbench:", err)
		os.Exit(1)
	}
	if asJSON {
		fmt.Printf("{\"streams\": %d, \"rounds\": %d, \"workers\": %d, \"pool_workers\": %d, \"queries\": %d, \"elapsed_ms\": %.1f, \"qps\": %.2f, \"topk_fusion\": %v",
			res.Streams, res.Rounds, res.Workers, res.PoolWorkers, res.Queries,
			float64(res.Elapsed.Microseconds())/1000, res.QPS, tpch.TopKFusion)
		fmt.Printf(", \"result_cache_hits\": %d, \"chunk_cache\": {\"hits\": %d, \"misses\": %d, \"hit_ratio\": %.3f, \"bytes_from_cache\": %d}",
			res.ResultCacheHits, res.Scanned.CacheHits, res.Scanned.CacheMisses,
			res.Scanned.CacheHitRatio(), res.Scanned.BytesFromCache)
		fmt.Print(", \"per_query_ms\": {")
		for i, id := range res.QueryIDs() {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("\"Q%d\": %.2f", id, float64(res.PerQuery[id].Microseconds())/1000)
		}
		fmt.Print("}, \"per_query_sort_ms\": {")
		for i, id := range res.QueryIDs() {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("\"Q%d\": %.2f", id, float64(res.PerQuerySort[id].Microseconds())/1000)
		}
		fmt.Println("}}")
		return
	}
	fmt.Printf("Concurrent query streams: %d stream(s) x %d round(s), shared pool of %d worker(s), %d admitted per query\n",
		res.Streams, res.Rounds, res.PoolWorkers, res.Workers)
	fmt.Printf("  %d queries in %v  =>  %.2f queries/sec (topk fusion %v)\n",
		res.Queries, res.Elapsed, res.QPS, tpch.TopKFusion)
	fmt.Printf("  scan accounting: %d B read, %d B skipped (%.0f%% skipped)\n",
		res.Scanned.BytesRead, res.Scanned.BytesSkipped, 100*res.Scanned.SkippedFrac())
	fmt.Printf("  caches: %d result-cache hit(s); chunk cache %d hit / %d miss (%.0f%% hit ratio), %d B served from cache\n",
		res.ResultCacheHits, res.Scanned.CacheHits, res.Scanned.CacheMisses,
		100*res.Scanned.CacheHitRatio(), res.Scanned.BytesFromCache)
	fmt.Println("  cumulative wall time per query (all streams), with sort-kernel share:")
	for _, id := range res.QueryIDs() {
		share := 0.0
		if res.PerQuery[id] > 0 {
			share = 100 * float64(res.PerQuerySort[id]) / float64(res.PerQuery[id])
		}
		fmt.Printf("    Q%-3d %12v   sort %5.1f%%\n", id, res.PerQuery[id], share)
	}
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad scale factor %q", part)
		}
		out = append(out, f)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		i, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || i < 1 || i > 22 {
			return nil, fmt.Errorf("bad query id %q", part)
		}
		out = append(out, i)
	}
	return out, nil
}
