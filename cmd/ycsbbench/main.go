// Command ycsbbench regenerates the paper's YCSB artifacts: Figures 2–6
// (latency vs throughput for workloads C, B, A, D, E across Mongo-AS,
// Mongo-CS, and SQL-CS) and the §3.4.2 load-time comparison, on a
// scaled-down simulated cluster.
//
// Usage:
//
//	ycsbbench [-workloads CBADE] [-systems Mongo-AS,Mongo-CS,SQL-CS] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"elephants/internal/core"
	"elephants/internal/ycsb"
)

func main() {
	workloads := flag.String("workloads", "CBADE", "workload letters to run")
	systems := flag.String("systems", strings.Join(core.Systems, ","), "systems to run")
	quick := flag.Bool("quick", false, "smaller sweep for a fast demo")
	records := flag.Int("records-per-node", 0, "records per server node (0 = default)")
	flag.Parse()

	sc := core.DefaultYCSBScale()
	if *records > 0 {
		sc.RecordsPerNode = *records
	}
	targets := core.DefaultTargets()
	var sysList []string
	for _, s := range strings.Split(*systems, ",") {
		sysList = append(sysList, strings.TrimSpace(s))
	}

	fmt.Printf("YCSB: %d server nodes, %d records/node, %d clients (virtual time)\n\n",
		sc.ServerNodes, sc.RecordsPerNode, sc.Clients)

	figures := []struct {
		letter  string
		title   string
		targets []float64
		kinds   []ycsb.OpKind
	}{
		{"C", "Figure 2. Workload C: 100% reads", targets.C, []ycsb.OpKind{ycsb.OpRead}},
		{"B", "Figure 3. Workload B: 95% reads, 5% updates", targets.B, []ycsb.OpKind{ycsb.OpUpdate, ycsb.OpRead}},
		{"A", "Figure 4. Workload A: 50% reads, 50% updates", targets.A, []ycsb.OpKind{ycsb.OpUpdate, ycsb.OpRead}},
		{"D", "Figure 5. Workload D: 95% reads, 5% appends", targets.D, []ycsb.OpKind{ycsb.OpInsert, ycsb.OpRead}},
		{"E", "Figure 6. Workload E: 95% scans, 5% appends", targets.E, []ycsb.OpKind{ycsb.OpInsert, ycsb.OpScan}},
	}
	for _, fig := range figures {
		if !strings.Contains(*workloads, fig.letter) {
			continue
		}
		w, _ := ycsb.ByName(fig.letter)
		tg := fig.targets
		if *quick {
			tg = tg[:2]
		}
		curves := make(map[string][]core.CurvePoint)
		for _, system := range sysList {
			curves[system] = core.RunCurve(system, w, tg, sc)
		}
		core.WriteCurve(os.Stdout, fig.title, curves, fig.kinds)
		fmt.Println()
	}

	fmt.Println("Load times (§3.4.2, virtual time):")
	for system, d := range core.RunLoadTimes(sc) {
		fmt.Printf("  %-10s %v\n", system, d)
	}
}
