// Quickstart: build one SQL-Server-like engine and one mongod on a
// simulated node each, load a few thousand records, and compare
// point-read and update latencies cold vs warm — the smallest possible
// tour of the public pieces (sim, cluster, sqleng, docstore).
package main

import (
	"fmt"
	"log"

	"elephants/internal/cluster"
	"elephants/internal/docstore"
	"elephants/internal/sim"
	"elephants/internal/sqleng"
)

func main() {
	s := sim.New()
	cl := cluster.New(s, cluster.Config{Nodes: 2})

	// A SQL engine with a deliberately small buffer pool (the dataset
	// will be ~2.5× larger, like the paper's setup) ...
	eng := sqleng.New(s, cl.Nodes[0], sqleng.Config{BufferPoolPages: 120})
	// ... and a mongod with the equivalent resident-set budget.
	mon := docstore.NewMongod(s, cl.Nodes[1], docstore.Config{ResidentExtents: 30})

	const records = 2000
	rec := make([]byte, 1000)
	for i := 0; i < records; i++ {
		key := fmt.Sprintf("%024d", i)
		eng.LoadRecord(key, rec)
		doc := docstore.NewDoc(docstore.Field{Key: "_id", Val: key})
		for f := 0; f < 10; f++ {
			doc.Set(fmt.Sprintf("field%d", f), string(make([]byte, 100)))
		}
		if err := mon.Load(doc); err != nil {
			log.Fatal(err)
		}
	}

	time := func(p *sim.Proc, fn func()) sim.Duration {
		t0 := p.Now()
		fn()
		return sim.Duration(p.Now() - t0)
	}

	s.Spawn("demo", func(p *sim.Proc) {
		key := fmt.Sprintf("%024d", 777)
		fmt.Println("SQL engine (8 KB pages, row locks, WAL):")
		fmt.Printf("  cold read:  %v\n", time(p, func() { eng.ReadRecord(p, key) }))
		fmt.Printf("  warm read:  %v\n", time(p, func() { eng.ReadRecord(p, key) }))
		fmt.Printf("  update:     %v (includes group-commit WAL flush)\n",
			time(p, func() { eng.UpdateRecord(p, key, rec) }))

		fmt.Println("mongod (32 KB extents, global write lock, no durability):")
		fmt.Printf("  cold read:  %v\n", time(p, func() { mon.FindByID(p, key) }))
		fmt.Printf("  warm read:  %v\n", time(p, func() { mon.FindByID(p, key) }))
		fmt.Printf("  update:     %v (no log flush — and it blocks all readers)\n",
			time(p, func() { mon.UpdateByID(p, key, "field0", "x") }))
	})
	s.Run()
	fmt.Println("\nAll timings are virtual-clock readings from the simulated hardware.")
}
