// Sharding: watch MongoDB-style auto-sharding work — sequential inserts
// pile chunks onto one shard, automatic splits carve the key space, and
// the balancer migrates chunks until the cluster evens out. Contrast
// with static hash sharding, which needs no balancing but fans every
// range scan out to all shards.
package main

import (
	"fmt"

	"elephants/internal/cluster"
	"elephants/internal/docstore"
	"elephants/internal/shard"
	"elephants/internal/sim"
	"elephants/internal/ycsb"
)

func main() {
	s := sim.New()
	cl := cluster.New(s, cluster.Config{Nodes: 5})
	servers, clients, config := cl.Nodes[:2], cl.Nodes[2:4], cl.Nodes[4]

	var mongods []*docstore.Mongod
	for i := 0; i < 4; i++ {
		mongods = append(mongods, docstore.NewMongod(s, servers[i%2], docstore.Config{}))
	}
	mas := shard.NewMongoAS(s, mongods, []*cluster.Node{servers[0], servers[1]}, clients, config,
		shard.MongoASConfig{SplitThreshold: 100, BalanceEvery: sim.Second, BalanceSlack: 1})
	mas.StartBackground()

	const inserts = 1200
	fields := make([]string, ycsb.FieldCount)
	for i := range fields {
		fields[i] = string(make([]byte, 100))
	}
	s.Spawn("loader", func(p *sim.Proc) {
		for i := 0; i < inserts; i++ {
			if err := mas.Insert(p, 0, ycsb.Key(int64(i)), fields); err != nil {
				fmt.Println("insert failed:", err)
				return
			}
			if i%300 == 299 {
				fmt.Printf("after %4d inserts: %2d chunks, per-shard %v, %d splits so far\n",
					i+1, mas.Chunks().NumChunks(), mas.Chunks().CountsByShard(4), splits(mas))
			}
			p.Sleep(20 * sim.Millisecond)
		}
		p.Sleep(10 * sim.Second) // let the balancer settle
		mas.StopBackground()
	})
	s.Run()

	fmt.Printf("\nfinal: %d chunks after %d automatic splits, per-shard %v\n",
		mas.Chunks().NumChunks(), mas.Splits(), mas.Chunks().CountsByShard(4))
	if err := mas.Chunks().Validate(); err != nil {
		fmt.Println("chunk map invariant violated:", err)
		return
	}
	fmt.Println("chunk map invariants hold")

	// Contrast: a range scan under each scheme.
	fmt.Println("\nshort range scan (10 keys):")
	fmt.Println("  Mongo-AS  → router touches only the chunk(s) covering the range (1 shard)")
	h := shard.NewHashShards(4)
	touched := map[int]bool{}
	for i := int64(500); i < 510; i++ {
		touched[h.ShardFor(ycsb.Key(i))] = true
	}
	fmt.Printf("  hash-CS   → those same 10 keys live on %d different shards; every scan asks all 4\n", len(touched))
}

func splits(m *shard.MongoAS) int64 { return m.Splits() }
