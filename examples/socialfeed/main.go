// Socialfeed: the interactive data-serving scenario from the paper's
// introduction — a feed page assembled on the fly, where users mostly
// read the newest posts while new posts stream in (YCSB Workload D's
// read-latest pattern). Compares Mongo-AS against SQL-CS and shows why
// appends melt down under range partitioning: every new post lands on
// the tail chunk.
package main

import (
	"fmt"

	"elephants/internal/core"
	"elephants/internal/ycsb"
)

func main() {
	sc := core.DefaultYCSBScale()
	sc.RecordsPerNode = 1000
	sc.Clients = 24

	fmt.Println("Social feed: 95% read-latest, 5% new posts (YCSB Workload D)")
	fmt.Printf("%d posts preloaded across %d server nodes\n\n", sc.RecordsPerNode*sc.ServerNodes, sc.ServerNodes)

	for _, system := range []string{core.SystemSQLCS, core.SystemMongoAS} {
		res := core.RunPoint(system, ycsb.WorkloadD, 0, sc)
		fmt.Printf("%s:\n", system)
		fmt.Printf("  feed reads:  %8.0f ops/s at %6.3f ms (reads mostly hit cache — read-latest)\n",
			res.Throughput*0.95, res.Latency[ycsb.OpRead].Mean)
		fmt.Printf("  new posts:   appends at %6.3f ms\n", res.Latency[ycsb.OpInsert].Mean)
		if res.Crashed {
			fmt.Println("  ** system crashed under append load (tail-chunk hotspot) **")
		}
		fmt.Println()
	}
	fmt.Println("SQL-CS hashes new posts across all shards; Mongo-AS routes every")
	fmt.Println("append to the highest chunk, concentrating load on one mongod's")
	fmt.Println("global write lock — the paper's Workload D observation.")
}
