// Warehouse: the DSS scenario — load TPC-H into both engines and run
// the three queries the paper dissects (Q1 scan/agg, Q5 six-way join,
// Q19 complex predicate join), printing each engine's physical plan
// decisions alongside the virtual runtimes.
package main

import (
	"fmt"

	"elephants/internal/cluster"
	"elephants/internal/hive"
	"elephants/internal/pdw"
	"elephants/internal/sim"
	"elephants/internal/tpch"
)

func main() {
	const targetSF = 1000 // model the 1 TB point
	db := tpch.Generate(tpch.GenConfig{SF: 0.002, Seed: 1, Random64: true})

	fmt.Printf("TPC-H at modeled SF %d (functional data at SF %g)\n\n", targetSF, db.SF)

	for _, id := range []int{1, 5, 19} {
		// Hive.
		hs := sim.New()
		hcl := cluster.New(hs, cluster.Default16())
		hw := hive.New(hs, hcl, db, targetSF, hive.DefaultConfig())
		var hq hive.QueryStats
		hs.Spawn("hive", func(p *sim.Proc) { hq = hw.RunQuery(p, id) })
		hs.Run()

		// PDW.
		ps := sim.New()
		pcl := cluster.New(ps, cluster.Default16())
		pw := pdw.New(ps, pcl, db, targetSF, pdw.DefaultConfig())
		var pq pdw.QueryStats
		ps.Spawn("pdw", func(p *sim.Proc) { pq = pw.RunQuery(p, id) })
		ps.Run()

		fmt.Printf("Q%d  (%d answer rows)\n", id, hq.Answer.NumRows())
		fmt.Printf("  Hive: %v across %d MapReduce jobs\n", hq.Total, len(hq.Jobs))
		for _, j := range hq.Jobs {
			strat := string(j.Strategy)
			if strat == "" {
				strat = "-"
			}
			fmt.Printf("    %-28s %-18s %5d map tasks  map %8s  total %8s\n",
				j.Name, strat, j.Stats.MapTasks, j.Stats.MapPhase, j.Stats.Total)
		}
		fmt.Printf("  PDW:  %v (%.1fx faster)\n", pq.Total, float64(hq.Total)/float64(pq.Total))
		for _, st := range pq.Steps {
			strat := string(st.Strategy)
			if strat == "" {
				strat = "-"
			}
			fmt.Printf("    %-28s %-18s %10d bytes  %8s\n", st.Kind, strat, st.Bytes, st.Elapsed)
		}
		fmt.Println()
	}
}
