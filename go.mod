module elephants

go 1.22
