// Package cluster models the hardware testbed of the paper: a rack of
// nodes with multi-core CPUs, arrays of 10k RPM SAS disks, and 1 Gbit
// NICs on a shared Ethernet switch, all expressed as sim resources so
// contention produces queueing delay in virtual time.
//
// The default configuration mirrors §3.1 of the paper: 16 (hyper-threaded)
// cores, 32 GB of memory, 8 data disks per node delivering ~800 MB/s of
// aggregate sequential bandwidth, and 1 Gbit/s networking.
package cluster

import (
	"fmt"

	"elephants/internal/sim"
)

// Config describes per-node hardware rates. Zero fields are filled with
// defaults by New.
type Config struct {
	Nodes        int          // number of nodes
	CoresPerNode int          // CPU cores (hyper-threaded count)
	DisksPerNode int          // data disks
	SeqMBps      float64      // per-disk sequential bandwidth (MB/s)
	RandSeek     sim.Duration // per-random-I/O positioning time
	NetMBps      float64      // per-NIC bandwidth (MB/s)
	NetRTT       sim.Duration // one-way wire latency for small messages
	MemoryBytes  int64        // main memory per node
}

// Default16 returns the paper's 16-node testbed configuration.
func Default16() Config { return DefaultN(16) }

// DefaultN returns the paper's per-node hardware with n nodes.
func DefaultN(n int) Config {
	return Config{
		Nodes:        n,
		CoresPerNode: 16,
		DisksPerNode: 8,
		SeqMBps:      100,                 // 8 disks ≈ 800 MB/s aggregate
		RandSeek:     6 * sim.Millisecond, // 10k RPM SAS positioning
		NetMBps:      125,                 // 1 Gbit/s
		NetRTT:       100 * sim.Microsecond,
		MemoryBytes:  32 << 30,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultN(c.Nodes)
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.CoresPerNode <= 0 {
		c.CoresPerNode = d.CoresPerNode
	}
	if c.DisksPerNode <= 0 {
		c.DisksPerNode = d.DisksPerNode
	}
	if c.SeqMBps <= 0 {
		c.SeqMBps = d.SeqMBps
	}
	if c.RandSeek <= 0 {
		c.RandSeek = d.RandSeek
	}
	if c.NetMBps <= 0 {
		c.NetMBps = d.NetMBps
	}
	if c.NetRTT <= 0 {
		c.NetRTT = d.NetRTT
	}
	if c.MemoryBytes <= 0 {
		c.MemoryBytes = d.MemoryBytes
	}
	return c
}

// Cluster is a set of simulated nodes.
type Cluster struct {
	Sim    *sim.Sim
	Config Config
	Nodes  []*Node
}

// New builds a cluster on the given simulator.
func New(s *sim.Sim, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{Sim: s, Config: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		c.Nodes = append(c.Nodes, newNode(s, i, cfg))
	}
	return c
}

// Node is one simulated machine.
type Node struct {
	ID    int
	CPU   *sim.Resource
	NIC   *sim.Resource
	Disks []*Disk
	cfg   Config
}

func newNode(s *sim.Sim, id int, cfg Config) *Node {
	n := &Node{
		ID:  id,
		CPU: s.NewResource(fmt.Sprintf("node%d.cpu", id), cfg.CoresPerNode),
		NIC: s.NewResource(fmt.Sprintf("node%d.nic", id), 1),
		cfg: cfg,
	}
	for d := 0; d < cfg.DisksPerNode; d++ {
		n.Disks = append(n.Disks, &Disk{
			res:     s.NewResource(fmt.Sprintf("node%d.disk%d", id, d), 1),
			seqMBps: cfg.SeqMBps,
			seek:    cfg.RandSeek,
		})
	}
	return n
}

// Disk models one spindle: sequential transfers at SeqMBps, random I/Os
// paying a positioning time first. All requests queue FIFO.
type Disk struct {
	res     *sim.Resource
	seqMBps float64
	seek    sim.Duration
}

// transferTime converts a byte count to transfer duration at the
// sequential rate.
func (d *Disk) transferTime(bytes int64) sim.Duration {
	return sim.Seconds(float64(bytes) / (d.seqMBps * 1e6))
}

// ReadRand performs one random read of the given size.
func (d *Disk) ReadRand(p *sim.Proc, bytes int64) {
	d.res.Use(p, d.seek+d.transferTime(bytes))
}

// WriteRand performs one random write of the given size.
func (d *Disk) WriteRand(p *sim.Proc, bytes int64) {
	d.res.Use(p, d.seek+d.transferTime(bytes))
}

// ReadSeq performs a sequential read of the given size.
func (d *Disk) ReadSeq(p *sim.Proc, bytes int64) {
	d.res.Use(p, d.transferTime(bytes))
}

// WriteSeq performs a sequential write of the given size.
func (d *Disk) WriteSeq(p *sim.Proc, bytes int64) {
	d.res.Use(p, d.transferTime(bytes))
}

// SeqTime reports the service time for a sequential transfer of the given
// size without performing it (used by aggregate cost paths).
func (d *Disk) SeqTime(bytes int64) sim.Duration { return d.transferTime(bytes) }

// BusyTime reports cumulative busy time of the spindle.
func (d *Disk) BusyTime() sim.Duration { return d.res.BusyTime() }

// Disk returns the disk a key hashes to, spreading random I/O across the
// array the way striping does.
func (n *Node) Disk(key uint64) *Disk {
	return n.Disks[key%uint64(len(n.Disks))]
}

// ReadSeqStriped reads bytes sequentially across all disks in parallel
// (RAID-0-like): each disk transfers its stripe share concurrently, so
// the elapsed time is that of one disk reading bytes/len(disks).
func (n *Node) ReadSeqStriped(p *sim.Proc, bytes int64) {
	share := bytes / int64(len(n.Disks))
	if share <= 0 {
		share = bytes
	}
	n.Disks[0].ReadSeq(p, share)
}

// WriteSeqStriped writes bytes sequentially across all disks in parallel.
func (n *Node) WriteSeqStriped(p *sim.Proc, bytes int64) {
	share := bytes / int64(len(n.Disks))
	if share <= 0 {
		share = bytes
	}
	n.Disks[0].WriteSeq(p, share)
}

// Compute occupies one CPU core for d.
func (n *Node) Compute(p *sim.Proc, d sim.Duration) { n.CPU.Use(p, d) }

// Send models a network transfer of the given size from node n to dst:
// the bytes serialize through the sender's NIC and then the receiver's,
// plus wire latency. Small control messages can pass bytes=0 to pay RTT
// only.
func (n *Node) Send(p *sim.Proc, dst *Node, bytes int64) {
	t := sim.Seconds(float64(bytes) / (n.cfg.NetMBps * 1e6))
	n.NIC.Use(p, t)
	p.Sleep(n.cfg.NetRTT)
	if dst != n {
		dst.NIC.Use(p, t)
	}
}

// NetTime reports the unloaded service time to move bytes across one NIC.
func (n *Node) NetTime(bytes int64) sim.Duration {
	return sim.Seconds(float64(bytes) / (n.cfg.NetMBps * 1e6))
}

// Memory reports the node's main-memory size in bytes.
func (n *Node) Memory() int64 { return n.cfg.MemoryBytes }
