package cluster

import (
	"testing"

	"elephants/internal/sim"
)

func TestDefaultsFill(t *testing.T) {
	c := Config{Nodes: 4}.withDefaults()
	if c.CoresPerNode != 16 || c.DisksPerNode != 8 || c.SeqMBps != 100 {
		t.Errorf("defaults not applied: %+v", c)
	}
}

func TestNewBuildsNodes(t *testing.T) {
	s := sim.New()
	cl := New(s, Config{Nodes: 3})
	if len(cl.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(cl.Nodes))
	}
	if len(cl.Nodes[0].Disks) != 8 {
		t.Errorf("disks = %d, want 8", len(cl.Nodes[0].Disks))
	}
}

func TestSeqReadTime(t *testing.T) {
	s := sim.New()
	cl := New(s, Config{Nodes: 1})
	n := cl.Nodes[0]
	var elapsed sim.Time
	s.Spawn("r", func(p *sim.Proc) {
		n.Disks[0].ReadSeq(p, 100*1000*1000) // 100 MB at 100 MB/s = 1 s
		elapsed = p.Now()
	})
	s.Run()
	if elapsed != sim.Time(sim.Second) {
		t.Errorf("100MB seq read took %v, want 1s", sim.Duration(elapsed))
	}
}

func TestRandReadPaysSeek(t *testing.T) {
	s := sim.New()
	cl := New(s, Config{Nodes: 1})
	n := cl.Nodes[0]
	var elapsed sim.Duration
	s.Spawn("r", func(p *sim.Proc) {
		start := p.Now()
		n.Disks[0].ReadRand(p, 8192)
		elapsed = sim.Duration(p.Now() - start)
	})
	s.Run()
	if elapsed <= 6*sim.Millisecond {
		t.Errorf("random read took %v, want > seek time 6ms", elapsed)
	}
	if elapsed > 7*sim.Millisecond {
		t.Errorf("8KB random read took %v, unreasonably long", elapsed)
	}
}

func TestStripedReadUsesAllDisks(t *testing.T) {
	s := sim.New()
	cl := New(s, Config{Nodes: 1})
	n := cl.Nodes[0]
	var elapsed sim.Duration
	s.Spawn("r", func(p *sim.Proc) {
		start := p.Now()
		n.ReadSeqStriped(p, 800*1000*1000) // 800 MB / 8 disks = 1 s
		elapsed = sim.Duration(p.Now() - start)
	})
	s.Run()
	if elapsed != sim.Second {
		t.Errorf("striped 800MB read took %v, want 1s", elapsed)
	}
}

func TestDiskContentionQueues(t *testing.T) {
	s := sim.New()
	cl := New(s, Config{Nodes: 1})
	n := cl.Nodes[0]
	done := make([]sim.Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn("r", func(p *sim.Proc) {
			n.Disks[0].ReadSeq(p, 100*1000*1000)
			done[i] = p.Now()
		})
	}
	s.Run()
	if done[1] != sim.Time(2*sim.Second) {
		t.Errorf("second contended read finished at %v, want 2s", sim.Duration(done[1]))
	}
}

func TestSendChargesBothNICs(t *testing.T) {
	s := sim.New()
	cl := New(s, Config{Nodes: 2, NetRTT: sim.Millisecond})
	var elapsed sim.Duration
	s.Spawn("tx", func(p *sim.Proc) {
		start := p.Now()
		cl.Nodes[0].Send(p, cl.Nodes[1], 125*1000*1000) // 1 s per NIC at 125 MB/s
		elapsed = sim.Duration(p.Now() - start)
	})
	s.Run()
	want := 2*sim.Second + sim.Millisecond
	if elapsed != want {
		t.Errorf("transfer took %v, want %v", elapsed, want)
	}
}

func TestSendToSelf(t *testing.T) {
	s := sim.New()
	cl := New(s, Config{Nodes: 1, NetRTT: sim.Millisecond})
	var elapsed sim.Duration
	s.Spawn("tx", func(p *sim.Proc) {
		start := p.Now()
		cl.Nodes[0].Send(p, cl.Nodes[0], 125*1000*1000)
		elapsed = sim.Duration(p.Now() - start)
	})
	s.Run()
	want := sim.Second + sim.Millisecond
	if elapsed != want {
		t.Errorf("self transfer took %v, want %v (one NIC pass)", elapsed, want)
	}
}

func TestDiskHashStable(t *testing.T) {
	s := sim.New()
	cl := New(s, Config{Nodes: 1})
	n := cl.Nodes[0]
	if n.Disk(42) != n.Disk(42) {
		t.Error("Disk(key) must be stable")
	}
}

func TestComputeUsesCores(t *testing.T) {
	s := sim.New()
	cl := New(s, Config{Nodes: 1, CoresPerNode: 2})
	n := cl.Nodes[0]
	for i := 0; i < 4; i++ {
		s.Spawn("c", func(p *sim.Proc) { n.Compute(p, sim.Second) })
	}
	if end := s.Run(); end != sim.Time(2*sim.Second) {
		t.Errorf("4 jobs on 2 cores ended at %v, want 2s", sim.Duration(end))
	}
}
