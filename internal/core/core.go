package core
