package core

import (
	"bytes"
	"strings"
	"testing"

	"elephants/internal/sqleng"
	"elephants/internal/ycsb"
)

// smallTPCH runs a reduced TPC-H comparison (two SFs, subset of
// queries) to keep the test fast.
func smallTPCH(t *testing.T, queries []int) TPCHResult {
	t.Helper()
	return RunTPCH(TPCHConfig{
		LaptopSF:     0.002,
		ScaleFactors: []float64{250, 1000},
		Queries:      queries,
		Seed:         1,
	})
}

func TestPDWFasterThanHiveEverywhere(t *testing.T) {
	res := smallTPCH(t, []int{1, 5, 6, 19})
	for i := range res.Config.ScaleFactors {
		for _, id := range res.Config.Queries {
			h := res.Hive[i].QueryTimes[id]
			p := res.PDW[i].QueryTimes[id]
			if p >= h {
				t.Errorf("SF %g Q%d: PDW (%v) not faster than Hive (%v)",
					res.Config.ScaleFactors[i], id, p, h)
			}
		}
	}
}

func TestSpeedupShrinksWithScale(t *testing.T) {
	// The paper: average speedup is greatest at the smallest SF
	// (34.1× at 250 GB vs 9× at 16 TB).
	res := smallTPCH(t, []int{1, 5, 6, 19})
	amH0, _ := res.Hive[0].Means()
	amP0, _ := res.PDW[0].Means()
	amH1, _ := res.Hive[1].Means()
	amP1, _ := res.PDW[1].Means()
	if amH0/amP0 <= amH1/amP1 {
		t.Errorf("speedup should shrink with scale: %.1fx at SF250 vs %.1fx at SF1000",
			amH0/amP0, amH1/amP1)
	}
}

func TestHiveScalesBetterThanPDW(t *testing.T) {
	res := smallTPCH(t, []int{1, 6})
	for _, id := range res.Config.Queries {
		hr := ratio(res.Hive[1].QueryTimes[id], res.Hive[0].QueryTimes[id])
		pr := ratio(res.PDW[1].QueryTimes[id], res.PDW[0].QueryTimes[id])
		if hr >= pr+0.5 {
			t.Errorf("Q%d: Hive scaling factor %.2f should not exceed PDW's %.2f",
				id, hr, pr)
		}
	}
}

func TestHiveLoadsFasterThanPDW(t *testing.T) {
	// Table 2: Hive loads ~2× faster than PDW at every SF.
	res := smallTPCH(t, []int{1})
	for i := range res.Config.ScaleFactors {
		if res.Hive[i].LoadTime >= res.PDW[i].LoadTime {
			t.Errorf("SF %g: Hive load (%v) should beat PDW load (%v)",
				res.Config.ScaleFactors[i], res.Hive[i].LoadTime, res.PDW[i].LoadTime)
		}
	}
}

func TestTableWritersProduceOutput(t *testing.T) {
	res := smallTPCH(t, []int{1, 22})
	var buf bytes.Buffer
	res.WriteTable2(&buf)
	res.WriteTable3(&buf)
	res.WriteTable4(&buf)
	res.WriteTable5(&buf)
	res.WriteFigure1(&buf)
	out := buf.String()
	for _, want := range []string{"Table 2", "Table 3", "Table 4", "Table 5", "Figure 1", "Sub-query 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestQ22BreakdownPopulated(t *testing.T) {
	res := smallTPCH(t, []int{22})
	bd := res.Hive[0].HiveQ22Breakdown
	for sub := 1; sub <= 4; sub++ {
		if bd[sub] <= 0 {
			t.Errorf("Q22 sub-query %d time = %v, want positive", sub, bd[sub])
		}
	}
	// Sub-query 4 (the failing map join + backup) dominates.
	if bd[4] <= bd[2] {
		t.Errorf("sub-query 4 (%v) should dominate sub-query 2 (%v)", bd[4], bd[2])
	}
}

func tinyScale() YCSBScale {
	sc := DefaultYCSBScale()
	sc.RecordsPerNode = 400
	sc.Clients = 8
	sc.Warmup = 2e9
	sc.Measure = 8e9
	return sc
}

func TestRunPointAllSystems(t *testing.T) {
	for _, system := range Systems {
		res := RunPoint(system, ycsb.WorkloadC, 200, tinyScale())
		if res.Throughput <= 0 {
			t.Errorf("%s: throughput %.1f", system, res.Throughput)
		}
		if res.Errors > 0 {
			t.Errorf("%s: %d errors", system, res.Errors)
		}
	}
}

func TestSQLCSBeatsMongoOnReads(t *testing.T) {
	// Figure 2's shape: unthrottled, SQL-CS achieves higher
	// throughput than both Mongo systems on the read-only workload.
	sc := tinyScale()
	sql := RunPoint(SystemSQLCS, ycsb.WorkloadC, 0, sc)
	mcs := RunPoint(SystemMongoCS, ycsb.WorkloadC, 0, sc)
	if sql.Throughput <= mcs.Throughput {
		t.Errorf("SQL-CS peak (%.0f ops/s) should beat Mongo-CS (%.0f ops/s)",
			sql.Throughput, mcs.Throughput)
	}
}

func TestMongoASWinsScans(t *testing.T) {
	// Figure 6's shape: range partitioning means Mongo-AS scans beat
	// the hash-sharded systems.
	sc := tinyScale()
	mas := RunPoint(SystemMongoAS, ycsb.WorkloadE, 0, sc)
	mcs := RunPoint(SystemMongoCS, ycsb.WorkloadE, 0, sc)
	if mas.Latency[ycsb.OpScan].Mean >= mcs.Latency[ycsb.OpScan].Mean {
		t.Errorf("Mongo-AS scan latency (%.2f ms) should beat Mongo-CS (%.2f ms)",
			mas.Latency[ycsb.OpScan].Mean, mcs.Latency[ycsb.OpScan].Mean)
	}
}

func TestReadUncommittedLowersReadLatency(t *testing.T) {
	// §3.4.3: under Workload A, read-uncommitted reads are faster
	// because they skip row-lock waits.
	sc := tinyScale()
	rc := RunPointIsolation(ycsb.WorkloadA, 0, sc, sqleng.ReadCommitted)
	ru := RunPointIsolation(ycsb.WorkloadA, 0, sc, sqleng.ReadUncommitted)
	if ru.Latency[ycsb.OpRead].Mean > rc.Latency[ycsb.OpRead].Mean*1.1 {
		t.Errorf("read-uncommitted read latency (%.3f ms) should not exceed read-committed (%.3f ms)",
			ru.Latency[ycsb.OpRead].Mean, rc.Latency[ycsb.OpRead].Mean)
	}
}

func TestLoadTimesOrdering(t *testing.T) {
	// §3.4.2: Mongo-CS (45 min) < Mongo-AS (114) < SQL-CS (146).
	sc := tinyScale()
	times := RunLoadTimes(sc)
	if times[SystemMongoCS] >= times[SystemSQLCS] {
		t.Errorf("Mongo-CS load (%v) should beat SQL-CS (%v)",
			times[SystemMongoCS], times[SystemSQLCS])
	}
	if times[SystemMongoAS] <= times[SystemMongoCS] {
		t.Errorf("Mongo-AS load (%v) should exceed Mongo-CS (%v) (mongos hop, config overhead)",
			times[SystemMongoAS], times[SystemMongoCS])
	}
}

func TestMongoASCrashesOnWorkloadDOverload(t *testing.T) {
	sc := tinyScale()
	sc.Clients = 48
	res := RunPoint(SystemMongoAS, ycsb.WorkloadD, 0, sc)
	if !res.Crashed {
		t.Skip("crash threshold not reached at this scale (acceptable; threshold is load-dependent)")
	}
}

func TestWriteCurveOutput(t *testing.T) {
	curves := map[string][]CurvePoint{
		SystemSQLCS: {{Target: 100, Result: RunPoint(SystemSQLCS, ycsb.WorkloadC, 100, tinyScale())}},
	}
	var buf bytes.Buffer
	WriteCurve(&buf, "Figure 2. Workload C", curves, []ycsb.OpKind{ycsb.OpRead})
	if !strings.Contains(buf.String(), "SQL-CS") {
		t.Error("curve output missing system name")
	}
}
