// The distributed scatter/gather experiment: the paper's PDW-style
// parallel cluster measured end to end — shards boot with durable
// delta logs, the coordinator streams the query list through the
// scatter → deadline/retry → merge path, and (optionally) one shard is
// killed and restarted mid-run to time recovery under retries. QPS
// here is "exact answers per second against a cluster", so a run that
// would return wrong rows fails instead of reporting a number.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"elephants/internal/dist"
	"elephants/internal/fault"
	"elephants/internal/tpch"
)

// DistConfig scopes one distributed run.
type DistConfig struct {
	// LaptopSF is the functional dataset scale (0 = 0.005, the golden
	// scale every dist test pins).
	LaptopSF float64
	Seed     int64
	// Shards is the cluster size (0 = 2).
	Shards int
	// Rounds of the query list drive the QPS measurement (0 = 3).
	Rounds  int
	Queries []int
	Workers int
	// FaultSeed, when non-zero, arms a seeded network fault schedule on
	// every data-plane frame (drops, truncations, duplicates, resets,
	// delays); the retry/CRC machinery must still deliver exact rows.
	FaultSeed int64
	// Procs spawns real shard OS processes (re-executing this binary,
	// which must call dist.MaybeShardMain early) instead of in-process
	// shards.
	Procs bool
	// Recovery kills the last shard after the QPS phase, restarts it on
	// the same port and data dir, and times kill → first exact answer.
	Recovery bool
}

// DistResult is one distributed run's report.
type DistResult struct {
	Config DistConfig
	// Queries is the number of queries answered in the QPS phase.
	Queries int
	Elapsed time.Duration
	QPS     float64
	// Stats is the coordinator's final counter snapshot (requests,
	// retries, breaker trips, injected net faults, ...).
	Stats map[string]int64
	// Recovery is nil unless DistConfig.Recovery was set.
	Recovery *DistRecovery
}

// DistRecovery times the kill → restart → replay → exact-answer cycle.
type DistRecovery struct {
	KilledShard int
	// RecoveryMS spans the kill to the first successful query whose
	// scatter includes the restarted shard (delta-log replay included).
	RecoveryMS float64
	// Retries is how many retry attempts the outage cost.
	Retries int64
}

// RunDist boots a shard cluster, measures streamed query throughput
// through the coordinator, and optionally times crash recovery.
func RunDist(cfg DistConfig) (DistResult, error) {
	if cfg.LaptopSF <= 0 {
		cfg.LaptopSF = 0.005
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 3
	}
	qids := cfg.Queries
	if len(qids) == 0 {
		for _, q := range tpch.Queries {
			qids = append(qids, q.ID)
		}
	}
	gen := tpch.GenConfig{SF: cfg.LaptopSF, Seed: cfg.Seed, Random64: true}

	tmp, err := os.MkdirTemp("", "distexp-")
	if err != nil {
		return DistResult{}, err
	}
	defer os.RemoveAll(tmp)
	cfgs := make([]dist.ShardConfig, cfg.Shards)
	for i := range cfgs {
		cfgs[i] = dist.ShardConfig{
			Shards: cfg.Shards, Index: i,
			SF: gen.SF, Seed: gen.Seed, Random64: gen.Random64,
			DataDir: filepath.Join(tmp, fmt.Sprintf("shard-%d", i)),
			Workers: cfg.Workers,
		}
	}

	var (
		addrs  []string
		cl     *dist.Cluster
		shards []*dist.Shard
	)
	if cfg.Procs {
		cl, err = dist.StartCluster(os.Args[0], cfgs)
		if err != nil {
			return DistResult{}, err
		}
		defer cl.Close()
		addrs = cl.Addrs()
	} else {
		shards = make([]*dist.Shard, cfg.Shards)
		defer func() {
			for _, s := range shards {
				if s != nil {
					s.Close()
				}
			}
		}()
		for i := range cfgs {
			s, err := dist.StartShard(cfgs[i])
			if err != nil {
				return DistResult{}, fmt.Errorf("shard %d: %w", i, err)
			}
			shards[i] = s
			cfgs[i].Port = s.Port() // pin, so a recovery restart reuses it
			addrs = append(addrs, s.Addr())
		}
	}

	// The retry budget is sized for the recovery phase: a restarting
	// shard regenerates and replays before it listens again, and the
	// outage must fit inside one call's backoff-paced attempts.
	opts := dist.Options{Seed: cfg.Seed, Workers: cfg.Workers, MaxAttempts: 60}
	if cfg.FaultSeed != 0 {
		opts.Net = fault.NetSchedule{
			Seed: cfg.FaultSeed, DropNth: 11, TruncNth: 13,
			DupNth: 9, ResetNth: 17, DelayNth: 7, Delay: time.Millisecond,
		}
		// Dropped frames stall a read until the attempt deadline; keep
		// it tight so faulted runs measure retry cost, not idle waits.
		opts.AttemptTimeout = 500 * time.Millisecond
	}
	c := dist.NewCoordinator(gen, addrs, opts)
	defer c.Close()

	start := time.Now()
	n := 0
	for r := 0; r < cfg.Rounds; r++ {
		for _, id := range qids {
			if _, err := c.RunQuery(id); err != nil {
				return DistResult{}, fmt.Errorf("Q%d: %w", id, err)
			}
			n++
		}
	}
	elapsed := time.Since(start)

	res := DistResult{Config: cfg, Queries: n, Elapsed: elapsed}
	if elapsed > 0 {
		res.QPS = float64(n) / elapsed.Seconds()
	}

	if cfg.Recovery {
		victim := cfg.Shards - 1
		retriesBefore := c.Stats()["dist_retries"]
		t0 := time.Now()
		type restart struct {
			s   *dist.Shard
			err error
		}
		ch := make(chan restart, 1)
		if cfg.Procs {
			if err := cl.Kill(victim); err != nil {
				return DistResult{}, err
			}
			go func() {
				time.Sleep(50 * time.Millisecond)
				ch <- restart{nil, cl.Restart(victim)}
			}()
		} else {
			shards[victim].Close()
			go func() {
				time.Sleep(50 * time.Millisecond)
				s, err := dist.StartShard(cfgs[victim])
				ch <- restart{s, err}
			}()
		}
		// Q12 touches both partitioned tables, so its scatter cannot
		// complete until the victim is back and fully replayed.
		_, qerr := c.RunQuery(12)
		r := <-ch
		if r.err != nil {
			return DistResult{}, fmt.Errorf("restart shard %d: %w", victim, r.err)
		}
		if !cfg.Procs {
			shards[victim] = r.s
		}
		if qerr != nil {
			return DistResult{}, fmt.Errorf("recovery query: %w", qerr)
		}
		res.Recovery = &DistRecovery{
			KilledShard: victim,
			RecoveryMS:  float64(time.Since(t0).Microseconds()) / 1000,
			Retries:     c.Stats()["dist_retries"] - retriesBefore,
		}
	}
	res.Stats = c.Stats()
	return res, nil
}
