// The combined HTAP experiment: live YCSB-shaped write traffic feeds
// the delta log while TPC-H streams replay over the same store — the
// update-shipping pipeline measured on all three axes at once (write
// ops/sec, analytical QPS, freshness lag).
package core

import (
	"fmt"
	"time"

	"elephants/internal/delta"
	"elephants/internal/fault"
	"elephants/internal/htap"
	"elephants/internal/rcfile"
	"elephants/internal/tpch"
)

// HTAPConfig scopes one combined write + analytics run.
type HTAPConfig struct {
	// LaptopSF is the functional dataset scale (defaults 0.01).
	LaptopSF float64
	Seed     int64
	// HoldFrac is the fraction of orders and lineitem rows held back
	// from the base parts and replayed as live writes (0 = 0.02).
	HoldFrac float64
	// Writers is the number of closed-loop write clients (0 = 4).
	Writers int
	// TargetOps throttles aggregate write throughput (0 = unthrottled).
	TargetOps float64
	// Streams/Rounds/Workers/Queries parameterize the analytical side.
	Streams, Rounds, Workers int
	Queries                  []int
	NoResultCache            bool
	// RCFile encodes base and converted parts as RCF4 files; GroupRows,
	// CacheMB, and NoChunkCache mirror TPCHStreamConfig.
	RCFile       bool
	GroupRows    int
	CacheMB      int
	NoChunkCache bool
	// NoDict / NoRLE / NoDelta are the dataset and chunk encoding
	// toggles, as everywhere else.
	NoDict  bool
	NoRLE   bool
	NoDelta bool
	// Window is the delta log's group-commit window (0 = delta default).
	Window time.Duration
	// ConvertRows / ConvertEvery parameterize the background converter.
	ConvertRows  int
	ConvertEvery time.Duration
	// DurablePath, when set, backs the store with an on-disk delta log
	// (and, with RCFile, persisted RCF5 parts) in that directory; after
	// the run the store is closed and reopened to measure recovery.
	// With FaultSeed but no path, an in-memory crash FS is used instead.
	DurablePath string
	// SyncPolicy is the durable log's fsync policy: "group" (default),
	// "always", or "none".
	SyncPolicy string
	// FaultSeed, when non-zero, wraps the FS in a fault injector that
	// fails the first couple of part writes with transient errors, so a
	// bench run exercises the converter's retry/backoff path.
	FaultSeed int64
}

// HTAPResult is one run's report plus the store's final accounting.
type HTAPResult struct {
	Config  HTAPConfig
	Harness htap.HarnessResult
	// Held is the number of rows replayed through the write path.
	Held int
	// Final is the store's state after quiesce + full conversion.
	Final htap.Stats
	// Durable reports the close → reopen → replay cycle (nil for the
	// in-memory store).
	Durable *DurableResult
}

// DurableResult measures recovery of the durable store: the run's store
// is closed, reopened over the same bytes, and the replay accounted.
type DurableResult struct {
	SyncPolicy     string
	LogBytes       int64
	RecoveryMS     float64
	FramesReplayed int64
	TruncatedBytes int64
	PartsRecovered int64
}

// RunHTAP generates the dataset, holds back the tail of orders and
// lineitem, and drives the combined harness with the background
// converter running. Afterwards it quiesces and converts the remaining
// tail, so Final reports zero lag and the store is fully columnar.
func RunHTAP(cfg HTAPConfig) (HTAPResult, error) {
	if cfg.LaptopSF <= 0 {
		cfg.LaptopSF = 0.01
	}
	if cfg.HoldFrac <= 0 {
		cfg.HoldFrac = 0.02
	}
	if cfg.Writers <= 0 {
		cfg.Writers = 4
	}
	defer applyEncodingModel(cfg.NoRLE, cfg.NoDelta)()
	db := tpch.Generate(tpch.GenConfig{SF: cfg.LaptopSF, Seed: cfg.Seed, Random64: true, NoDict: cfg.NoDict})

	var cache *rcfile.ChunkCache
	if cfg.RCFile && !cfg.NoChunkCache {
		cacheMB := cfg.CacheMB
		if cacheMB <= 0 {
			cacheMB = 64
		}
		cache = rcfile.NewChunkCache(int64(cacheMB) << 20)
	}
	groupRows := cfg.GroupRows
	if groupRows <= 0 {
		groupRows = 4096
	}

	hold := make(map[string]int, 2)
	for _, name := range []string{"orders", "lineitem"} {
		n := db.Table(name).NumRows()
		k := int(float64(n) * cfg.HoldFrac)
		if k < 1 {
			k = 1
		}
		hold[name] = k
	}

	pol, err := delta.ParseSyncPolicy(cfg.SyncPolicy)
	if err != nil {
		return HTAPResult{}, err
	}
	// baseFS is what recovery reopens (the injector, like the crashed
	// process, is gone); storeFS is what the live run writes through.
	var baseFS, storeFS fault.FS
	if cfg.DurablePath != "" {
		dfs, err := fault.NewDirFS(cfg.DurablePath)
		if err != nil {
			return HTAPResult{}, fmt.Errorf("durable dir: %w", err)
		}
		baseFS = dfs
	} else if cfg.FaultSeed != 0 {
		baseFS = fault.NewMemFS()
	}
	storeFS = baseFS
	if baseFS != nil && cfg.FaultSeed != 0 {
		storeFS = fault.NewInjector(baseFS, fault.Schedule{Seed: cfg.FaultSeed, TransientPartFails: 2})
	}

	storeCfg := htap.Config{
		Window:       cfg.Window,
		RCFile:       cfg.RCFile,
		GroupRows:    groupRows,
		WriterOpts:   rcfile.WriterOpts{NoRLE: cfg.NoRLE, NoDelta: cfg.NoDelta},
		Cache:        cache,
		ConvertRows:  cfg.ConvertRows,
		ConvertEvery: cfg.ConvertEvery,
		FS:           storeFS,
		Sync:         pol,
	}
	store, err := htap.New(db, hold, storeCfg)
	if err != nil {
		return HTAPResult{}, err
	}
	if cfg.RCFile {
		// Non-held tables scan through RCFile too, as RunTPCHStreams does.
		for _, name := range tpch.TableNames {
			if _, held := hold[name]; held {
				continue
			}
			src, err := rcfile.NewSourceOpts(db.Table(name), groupRows,
				rcfile.WriterOpts{NoRLE: cfg.NoRLE, NoDelta: cfg.NoDelta})
			if err != nil {
				return HTAPResult{}, fmt.Errorf("encode %s: %w", name, err)
			}
			src.SetCache(cache)
			db.SetSource(name, src)
		}
	}

	store.StartConverter()
	res, err := htap.Run(store, db, htap.HarnessConfig{
		Writers:       cfg.Writers,
		TargetOps:     cfg.TargetOps,
		Streams:       cfg.Streams,
		Rounds:        cfg.Rounds,
		Workers:       cfg.Workers,
		Queries:       cfg.Queries,
		NoResultCache: cfg.NoResultCache,
	})
	store.StopConverter()
	if err != nil {
		return HTAPResult{}, err
	}
	if err := store.Quiesce(); err != nil {
		return HTAPResult{}, err
	}
	if err := store.ConvertAll(); err != nil {
		return HTAPResult{}, err
	}
	result := HTAPResult{
		Config:  cfg,
		Harness: res,
		Held:    len(store.HeldRecords()),
		Final:   store.StatsNow(),
	}

	if baseFS != nil {
		// Close the store (final fsync), then reopen over the bare FS —
		// the injector died with the "process" — and time the replay.
		logBytes := int64(len(store.Log().Data()))
		if err := store.Close(); err != nil {
			return HTAPResult{}, fmt.Errorf("close durable store: %w", err)
		}
		storeCfg.FS = baseFS
		t0 := time.Now()
		reopened, err := htap.Open(db, hold, storeCfg)
		if err != nil {
			return HTAPResult{}, fmt.Errorf("reopen durable store: %w", err)
		}
		elapsed := time.Since(t0)
		st := reopened.StatsNow()
		result.Durable = &DurableResult{
			SyncPolicy:     pol.String(),
			LogBytes:       logBytes,
			RecoveryMS:     float64(elapsed.Microseconds()) / 1000,
			FramesReplayed: st.FramesReplayed,
			TruncatedBytes: st.TruncatedBytes,
			PartsRecovered: st.PartsRecovered,
		}
		if err := reopened.Close(); err != nil {
			return HTAPResult{}, fmt.Errorf("close reopened store: %w", err)
		}
	}
	return result, nil
}
