// The combined HTAP experiment: live YCSB-shaped write traffic feeds
// the delta log while TPC-H streams replay over the same store — the
// update-shipping pipeline measured on all three axes at once (write
// ops/sec, analytical QPS, freshness lag).
package core

import (
	"fmt"
	"time"

	"elephants/internal/htap"
	"elephants/internal/rcfile"
	"elephants/internal/tpch"
)

// HTAPConfig scopes one combined write + analytics run.
type HTAPConfig struct {
	// LaptopSF is the functional dataset scale (defaults 0.01).
	LaptopSF float64
	Seed     int64
	// HoldFrac is the fraction of orders and lineitem rows held back
	// from the base parts and replayed as live writes (0 = 0.02).
	HoldFrac float64
	// Writers is the number of closed-loop write clients (0 = 4).
	Writers int
	// TargetOps throttles aggregate write throughput (0 = unthrottled).
	TargetOps float64
	// Streams/Rounds/Workers/Queries parameterize the analytical side.
	Streams, Rounds, Workers int
	Queries                  []int
	NoResultCache            bool
	// RCFile encodes base and converted parts as RCF4 files; GroupRows,
	// CacheMB, and NoChunkCache mirror TPCHStreamConfig.
	RCFile       bool
	GroupRows    int
	CacheMB      int
	NoChunkCache bool
	// NoDict / NoRLE / NoDelta are the dataset and chunk encoding
	// toggles, as everywhere else.
	NoDict  bool
	NoRLE   bool
	NoDelta bool
	// Window is the delta log's group-commit window (0 = delta default).
	Window time.Duration
	// ConvertRows / ConvertEvery parameterize the background converter.
	ConvertRows  int
	ConvertEvery time.Duration
}

// HTAPResult is one run's report plus the store's final accounting.
type HTAPResult struct {
	Config  HTAPConfig
	Harness htap.HarnessResult
	// Held is the number of rows replayed through the write path.
	Held int
	// Final is the store's state after quiesce + full conversion.
	Final htap.Stats
}

// RunHTAP generates the dataset, holds back the tail of orders and
// lineitem, and drives the combined harness with the background
// converter running. Afterwards it quiesces and converts the remaining
// tail, so Final reports zero lag and the store is fully columnar.
func RunHTAP(cfg HTAPConfig) (HTAPResult, error) {
	if cfg.LaptopSF <= 0 {
		cfg.LaptopSF = 0.01
	}
	if cfg.HoldFrac <= 0 {
		cfg.HoldFrac = 0.02
	}
	if cfg.Writers <= 0 {
		cfg.Writers = 4
	}
	defer applyEncodingModel(cfg.NoRLE, cfg.NoDelta)()
	db := tpch.Generate(tpch.GenConfig{SF: cfg.LaptopSF, Seed: cfg.Seed, Random64: true, NoDict: cfg.NoDict})

	var cache *rcfile.ChunkCache
	if cfg.RCFile && !cfg.NoChunkCache {
		cacheMB := cfg.CacheMB
		if cacheMB <= 0 {
			cacheMB = 64
		}
		cache = rcfile.NewChunkCache(int64(cacheMB) << 20)
	}
	groupRows := cfg.GroupRows
	if groupRows <= 0 {
		groupRows = 4096
	}

	hold := make(map[string]int, 2)
	for _, name := range []string{"orders", "lineitem"} {
		n := db.Table(name).NumRows()
		k := int(float64(n) * cfg.HoldFrac)
		if k < 1 {
			k = 1
		}
		hold[name] = k
	}

	store, err := htap.New(db, hold, htap.Config{
		Window:       cfg.Window,
		RCFile:       cfg.RCFile,
		GroupRows:    groupRows,
		WriterOpts:   rcfile.WriterOpts{NoRLE: cfg.NoRLE, NoDelta: cfg.NoDelta},
		Cache:        cache,
		ConvertRows:  cfg.ConvertRows,
		ConvertEvery: cfg.ConvertEvery,
	})
	if err != nil {
		return HTAPResult{}, err
	}
	if cfg.RCFile {
		// Non-held tables scan through RCFile too, as RunTPCHStreams does.
		for _, name := range tpch.TableNames {
			if _, held := hold[name]; held {
				continue
			}
			src, err := rcfile.NewSourceOpts(db.Table(name), groupRows,
				rcfile.WriterOpts{NoRLE: cfg.NoRLE, NoDelta: cfg.NoDelta})
			if err != nil {
				return HTAPResult{}, fmt.Errorf("encode %s: %w", name, err)
			}
			src.SetCache(cache)
			db.SetSource(name, src)
		}
	}

	store.StartConverter()
	res, err := htap.Run(store, db, htap.HarnessConfig{
		Writers:       cfg.Writers,
		TargetOps:     cfg.TargetOps,
		Streams:       cfg.Streams,
		Rounds:        cfg.Rounds,
		Workers:       cfg.Workers,
		Queries:       cfg.Queries,
		NoResultCache: cfg.NoResultCache,
	})
	store.StopConverter()
	if err != nil {
		return HTAPResult{}, err
	}
	if err := store.Quiesce(); err != nil {
		return HTAPResult{}, err
	}
	if err := store.ConvertAll(); err != nil {
		return HTAPResult{}, err
	}
	return HTAPResult{
		Config:  cfg,
		Harness: res,
		Held:    len(store.HeldRecords()),
		Final:   store.StatsNow(),
	}, nil
}
