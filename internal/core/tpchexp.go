// Package core is the benchmark framework proper: it assembles full
// deployments of every system and regenerates each table and figure of
// the paper — Tables 2–5 and Figure 1 on the TPC-H side (Hive vs PDW),
// Figures 2–6 and the load-time comparison on the YCSB side (Mongo-AS,
// Mongo-CS, SQL-CS) — printing rows/series in the paper's shape.
package core

import (
	"fmt"
	"io"
	"sort"

	"elephants/internal/cluster"
	"elephants/internal/hive"
	"elephants/internal/metrics"
	"elephants/internal/pdw"
	"elephants/internal/rcfile"
	"elephants/internal/relal"
	"elephants/internal/sim"
	"elephants/internal/tpch"
)

// PaperScaleFactors are the four TPC-H points in the paper (GB).
var PaperScaleFactors = []float64{250, 1000, 4000, 16000}

// TPCHConfig scopes a TPC-H comparison run.
type TPCHConfig struct {
	// LaptopSF is the functional dataset scale (defaults 0.002).
	LaptopSF float64
	// ScaleFactors are the modeled SFs (defaults PaperScaleFactors).
	ScaleFactors []float64
	// Queries restricts which query IDs run (nil = all 22).
	Queries []int
	Seed    int64
	// Workers sizes the functional executor's morsel worker pool
	// (0 = GOMAXPROCS, 1 = serial). Results are identical at every
	// setting; only host-time execution speed changes.
	Workers int
	// NoDict disables dictionary encoding of low-cardinality string
	// columns in the generated dataset (tpchbench -no-dict). Answers
	// are identical either way; host time and modeled byte widths
	// change.
	NoDict bool
	// NoRLE / NoDelta disable the run-length and delta chunk encodings
	// in the scan cost model (and any RCFile written while they are
	// set), pinning those columns at plain/gdict widths. Answers are
	// identical either way.
	NoRLE   bool
	NoDelta bool
}

func (c TPCHConfig) withDefaults() TPCHConfig {
	if c.LaptopSF <= 0 {
		c.LaptopSF = 0.002
	}
	if len(c.ScaleFactors) == 0 {
		c.ScaleFactors = PaperScaleFactors
	}
	if len(c.Queries) == 0 {
		for _, q := range tpch.Queries {
			c.Queries = append(c.Queries, q.ID)
		}
	}
	return c
}

// TPCHStreamConfig scopes a concurrent query-stream throughput run: N
// goroutine streams replay the 22 queries over one shared immutable DB
// (the functional executor, host time — no cluster simulation).
type TPCHStreamConfig struct {
	// LaptopSF is the functional dataset scale (defaults 0.01).
	LaptopSF float64
	Seed     int64
	// Streams is the number of concurrent query streams (0 = 1).
	Streams int
	// Rounds is how many times each stream replays the list (0 = 1).
	Rounds int
	// Workers sizes each query's morsel pool (0 = GOMAXPROCS).
	Workers int
	// Queries restricts the replayed query IDs (nil = all 22).
	Queries []int
	// NoDict disables dictionary encoding in the generated dataset.
	NoDict bool
	// NoRLE / NoDelta disable the run-length and delta chunk encodings
	// in the written RCFiles and the scan cost model.
	NoRLE   bool
	NoDelta bool
	// RCFile swaps every base-table source for an RCFile encoding, so
	// streams scan through real compressed storage (and the chunk cache
	// has something to serve).
	RCFile bool
	// GroupRows is the RCFile row-group size (0 = 4096). Only used with
	// RCFile.
	GroupRows int
	// CacheMB bounds the shared decompressed-chunk cache in MiB
	// (0 = 64). Only used with RCFile.
	CacheMB int
	// NoChunkCache runs RCFile scans without the shared chunk cache:
	// every scan re-inflates its chunks.
	NoChunkCache bool
	// NoResultCache disables per-(query, epoch) result memoization in
	// the stream harness.
	NoResultCache bool
}

// applyEncodingModel points the relal scan cost model at the same
// encoding toggles the RCFile writer gets, so modeled chunk widths and
// written chunk layouts stay in lockstep. Returns a restore func.
func applyEncodingModel(noRLE, noDelta bool) func() {
	oldRLE, oldDelta := relal.ModelRLE, relal.ModelDelta
	relal.ModelRLE, relal.ModelDelta = !noRLE, !noDelta
	return func() { relal.ModelRLE, relal.ModelDelta = oldRLE, oldDelta }
}

// RunTPCHStreams generates the shared DB and runs the stream harness.
func RunTPCHStreams(cfg TPCHStreamConfig) (tpch.StreamResult, error) {
	if cfg.LaptopSF <= 0 {
		cfg.LaptopSF = 0.01
	}
	defer applyEncodingModel(cfg.NoRLE, cfg.NoDelta)()
	db := tpch.Generate(tpch.GenConfig{SF: cfg.LaptopSF, Seed: cfg.Seed, Random64: true, NoDict: cfg.NoDict})
	if cfg.RCFile {
		groupRows := cfg.GroupRows
		if groupRows <= 0 {
			groupRows = 4096
		}
		var cache *rcfile.ChunkCache
		if !cfg.NoChunkCache {
			cacheMB := cfg.CacheMB
			if cacheMB <= 0 {
				cacheMB = 64
			}
			cache = rcfile.NewChunkCache(int64(cacheMB) << 20)
		}
		for _, name := range tpch.TableNames {
			src, err := rcfile.NewSourceOpts(db.Table(name), groupRows,
				rcfile.WriterOpts{NoRLE: cfg.NoRLE, NoDelta: cfg.NoDelta})
			if err != nil {
				return tpch.StreamResult{}, fmt.Errorf("encode %s: %w", name, err)
			}
			src.SetCache(cache)
			db.SetSource(name, src)
		}
	}
	return tpch.RunStreams(db, tpch.StreamConfig{
		Streams:       cfg.Streams,
		Rounds:        cfg.Rounds,
		Workers:       cfg.Workers,
		Queries:       cfg.Queries,
		Warmup:        true,
		NoResultCache: cfg.NoResultCache,
	}), nil
}

// TPCHPoint holds one system's measurements at one scale factor.
type TPCHPoint struct {
	SF         float64
	QueryTimes map[int]sim.Duration
	LoadTime   sim.Duration
	// HiveQ1MapPhase is the Q1 first-job map-phase time (Table 4).
	HiveQ1MapPhase sim.Duration
	// HiveQ22Breakdown maps Q22 sub-query (1–4) to time (Table 5).
	HiveQ22Breakdown map[int]sim.Duration
}

// TPCHResult holds the full two-system comparison.
type TPCHResult struct {
	Config TPCHConfig
	Hive   []TPCHPoint
	PDW    []TPCHPoint
}

// RunTPCH runs the Hive-vs-PDW comparison across all configured scale
// factors. Each (system, SF) pair gets a fresh simulator so timings are
// independent, as the paper's sequential runs were.
func RunTPCH(cfg TPCHConfig) TPCHResult {
	cfg = cfg.withDefaults()
	if cfg.Workers > 0 {
		old := tpch.DefaultWorkers
		tpch.DefaultWorkers = cfg.Workers
		defer func() { tpch.DefaultWorkers = old }()
	}
	defer applyEncodingModel(cfg.NoRLE, cfg.NoDelta)()
	db := tpch.Generate(tpch.GenConfig{SF: cfg.LaptopSF, Seed: cfg.Seed, Random64: true, NoDict: cfg.NoDict})
	res := TPCHResult{Config: cfg}
	for _, sf := range cfg.ScaleFactors {
		res.Hive = append(res.Hive, runHivePoint(db, sf, cfg))
		res.PDW = append(res.PDW, runPDWPoint(db, sf, cfg))
	}
	return res
}

func runHivePoint(db *tpch.DB, sf float64, cfg TPCHConfig) TPCHPoint {
	pt := TPCHPoint{
		SF:               sf,
		QueryTimes:       make(map[int]sim.Duration),
		HiveQ22Breakdown: make(map[int]sim.Duration),
	}
	s := sim.New()
	cl := cluster.New(s, cluster.Default16())
	w := hive.New(s, cl, db, sf, hive.DefaultConfig())
	s.Spawn("hive-driver", func(p *sim.Proc) {
		pt.LoadTime = w.LoadTime(p)
		for _, id := range cfg.Queries {
			qs := w.RunQuery(p, id)
			pt.QueryTimes[id] = qs.Total
			if id == 1 {
				pt.HiveQ1MapPhase = qs.MapPhase(0)
			}
			if id == 22 {
				for sub, d := range q22Breakdown(qs) {
					pt.HiveQ22Breakdown[sub] = d
				}
			}
		}
	})
	s.Run()
	return pt
}

// q22Breakdown groups Q22's Hive jobs into the paper's four sub-queries
// by job name.
func q22Breakdown(qs hive.QueryStats) map[int]sim.Duration {
	out := map[int]sim.Duration{}
	for _, j := range qs.Jobs {
		var sub int
		switch {
		case contains(j.Name, "filter"):
			sub = 1
		case contains(j.Name, "agg") && !contains(j.Name, "global"):
			if _, ok := out[2]; !ok && out[1] > 0 {
				sub = 2
			} else {
				sub = 3
			}
		case contains(j.Name, "join"):
			sub = 4
		default:
			sub = 4
		}
		out[sub] += j.Stats.Total
	}
	return out
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func runPDWPoint(db *tpch.DB, sf float64, cfg TPCHConfig) TPCHPoint {
	pt := TPCHPoint{SF: sf, QueryTimes: make(map[int]sim.Duration)}
	s := sim.New()
	cl := cluster.New(s, cluster.Default16())
	w := pdw.New(s, cl, db, sf, pdw.DefaultConfig())
	s.Spawn("pdw-driver", func(p *sim.Proc) {
		pt.LoadTime = w.LoadTime(p)
		for _, id := range cfg.Queries {
			qs := w.RunQuery(p, id)
			pt.QueryTimes[id] = qs.Total
		}
	})
	s.Run()
	return pt
}

// Means returns the arithmetic and geometric means of a point's query
// times in seconds, excluding the listed query IDs (the paper's AM-9 /
// GM-9 exclude Q9).
func (pt TPCHPoint) Means(exclude ...int) (am, gm float64) {
	skip := map[int]bool{}
	for _, id := range exclude {
		skip[id] = true
	}
	var xs []float64
	var ids []int
	for id := range pt.QueryTimes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if !skip[id] {
			xs = append(xs, pt.QueryTimes[id].Seconds())
		}
	}
	return metrics.ArithmeticMean(xs), metrics.GeometricMean(xs)
}

// WriteTable2 prints the load-time table.
func (r TPCHResult) WriteTable2(w io.Writer) {
	fmt.Fprintln(w, "Table 2. Load times for Hive and PDW (virtual minutes)")
	fmt.Fprintf(w, "%-8s", "")
	for _, sf := range r.Config.ScaleFactors {
		fmt.Fprintf(w, "%12.0fGB", sf)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s", "HIVE")
	for _, pt := range r.Hive {
		fmt.Fprintf(w, "%14.0f", pt.LoadTime.Seconds()/60)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s", "PDW")
	for _, pt := range r.PDW {
		fmt.Fprintf(w, "%14.0f", pt.LoadTime.Seconds()/60)
	}
	fmt.Fprintln(w)
}

// WriteTable3 prints per-query times, speedups, and scaling factors.
func (r TPCHResult) WriteTable3(w io.Writer) {
	fmt.Fprintln(w, "Table 3. Performance of Hive and PDW on TPC-H (virtual seconds)")
	fmt.Fprintf(w, "%-5s", "Query")
	for _, sf := range r.Config.ScaleFactors {
		fmt.Fprintf(w, " | %8s %8s %7s", fmt.Sprintf("HIVE@%g", sf), "PDW", "Speedup")
	}
	fmt.Fprintln(w)
	for _, id := range r.Config.Queries {
		fmt.Fprintf(w, "Q%-4d", id)
		for i := range r.Config.ScaleFactors {
			h := r.Hive[i].QueryTimes[id].Seconds()
			p := r.PDW[i].QueryTimes[id].Seconds()
			speedup := 0.0
			if p > 0 {
				speedup = h / p
			}
			fmt.Fprintf(w, " | %8.0f %8.0f %6.1fx", h, p, speedup)
		}
		fmt.Fprintln(w)
	}
	// Means row.
	fmt.Fprintf(w, "%-5s", "AM")
	for i := range r.Config.ScaleFactors {
		ha, _ := r.Hive[i].Means()
		pa, _ := r.PDW[i].Means()
		sp := 0.0
		if pa > 0 {
			sp = ha / pa
		}
		fmt.Fprintf(w, " | %8.0f %8.0f %6.1fx", ha, pa, sp)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-5s", "GM")
	for i := range r.Config.ScaleFactors {
		_, hg := r.Hive[i].Means()
		_, pg := r.PDW[i].Means()
		sp := 0.0
		if pg > 0 {
			sp = hg / pg
		}
		fmt.Fprintf(w, " | %8.0f %8.0f %6.1fx", hg, pg, sp)
	}
	fmt.Fprintln(w)
	// Scaling factors (time ratio per 4× data).
	fmt.Fprintln(w, "\nScaling factors (query time ratio per 4x data growth):")
	fmt.Fprintf(w, "%-5s", "Query")
	for i := 1; i < len(r.Config.ScaleFactors); i++ {
		fmt.Fprintf(w, " | HIVE %4.0f->%-5.0f PDW", r.Config.ScaleFactors[i-1], r.Config.ScaleFactors[i])
	}
	fmt.Fprintln(w)
	for _, id := range r.Config.Queries {
		fmt.Fprintf(w, "Q%-4d", id)
		for i := 1; i < len(r.Config.ScaleFactors); i++ {
			hr := ratio(r.Hive[i].QueryTimes[id], r.Hive[i-1].QueryTimes[id])
			pr := ratio(r.PDW[i].QueryTimes[id], r.PDW[i-1].QueryTimes[id])
			fmt.Fprintf(w, " | %8.1f %10.1f", hr, pr)
		}
		fmt.Fprintln(w)
	}
}

func ratio(a, b sim.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// WriteTable4 prints Q1's map-phase time per scale factor.
func (r TPCHResult) WriteTable4(w io.Writer) {
	fmt.Fprintln(w, "Table 4. Total time for the map phase for Query 1 (virtual seconds)")
	for i, sf := range r.Config.ScaleFactors {
		fmt.Fprintf(w, "SF=%-6g %8.0f secs\n", sf, r.Hive[i].HiveQ1MapPhase.Seconds())
	}
}

// WriteTable5 prints Q22's sub-query breakdown.
func (r TPCHResult) WriteTable5(w io.Writer) {
	fmt.Fprintln(w, "Table 5. Time breakdown for Query 22 (virtual seconds)")
	fmt.Fprintf(w, "%-12s", "")
	for _, sf := range r.Config.ScaleFactors {
		fmt.Fprintf(w, "%10.0fGB", sf)
	}
	fmt.Fprintln(w)
	for sub := 1; sub <= 4; sub++ {
		fmt.Fprintf(w, "Sub-query %d ", sub)
		for i := range r.Config.ScaleFactors {
			fmt.Fprintf(w, "%10.0f s", r.Hive[i].HiveQ22Breakdown[sub].Seconds())
		}
		fmt.Fprintln(w)
	}
}

// WriteFigure1 prints the normalized AM/GM series (normalized to PDW at
// the smallest SF, excluding Q9 as the paper's AM-9/GM-9 do).
func (r TPCHResult) WriteFigure1(w io.Writer) {
	fmt.Fprintln(w, "Figure 1. Normalized arithmetic and geometric means (PDW @ smallest SF = 1)")
	baseAM, baseGM := r.PDW[0].Means(9)
	fmt.Fprintf(w, "%-8s %12s %12s %12s %12s\n", "SF", "HIVE AM", "PDW AM", "HIVE GM", "PDW GM")
	for i, sf := range r.Config.ScaleFactors {
		ha, hg := r.Hive[i].Means(9)
		pa, pg := r.PDW[i].Means(9)
		fmt.Fprintf(w, "%-8g %12.0f %12.0f %12.0f %12.0f\n",
			sf, ha/baseAM, pa/baseAM, hg/baseGM, pg/baseGM)
	}
}
