package core

import (
	"fmt"
	"io"
	"math/rand"

	"elephants/internal/cluster"
	"elephants/internal/docstore"
	"elephants/internal/shard"
	"elephants/internal/sim"
	"elephants/internal/sqleng"
	"elephants/internal/storage"
	"elephants/internal/ycsb"
)

// YCSBScale scales the paper's YCSB deployment (8 server nodes, 16
// mongod per node, 640 M records, 800 clients) down to simulation size
// while preserving the ratios that matter: dataset 2.5× the modeled
// memory, 2 mongod shards per SQL shard per node pair, hash vs range
// partitioning.
type YCSBScale struct {
	ServerNodes    int
	ClientNodes    int
	MongodsPerNode int
	RecordsPerNode int
	// MemoryRatio is dataset bytes / modeled memory (paper: 2.5).
	MemoryRatio float64
	Clients     int
	Warmup      sim.Duration
	Measure     sim.Duration
	Seed        int64
}

// DefaultYCSBScale returns a laptop-sized deployment.
func DefaultYCSBScale() YCSBScale {
	return YCSBScale{
		ServerNodes:    2,
		ClientNodes:    2,
		MongodsPerNode: 8,
		RecordsPerNode: 2000,
		MemoryRatio:    2.5,
		Clients:        32,
		Warmup:         5 * sim.Second,
		Measure:        15 * sim.Second,
		Seed:           1,
	}
}

func (sc YCSBScale) records() int64 { return int64(sc.RecordsPerNode * sc.ServerNodes) }

// recordBytes is the YCSB record size (24 B key + 10×100 B fields).
const recordBytes = 1024

// System names.
const (
	SystemSQLCS   = "SQL-CS"
	SystemMongoCS = "Mongo-CS"
	SystemMongoAS = "Mongo-AS"
)

// Systems lists the three YCSB systems in paper order.
var Systems = []string{SystemMongoAS, SystemMongoCS, SystemSQLCS}

// deployment is one fully assembled system inside its own simulator.
type deployment struct {
	s     *sim.Sim
	store shard.Store
	start func()
	stop  func()
}

// buildDeployment assembles and loads the named system.
func buildDeployment(system string, sc YCSBScale, crashLimit int, isolation sqleng.IsolationLevel) deployment {
	s := sim.New()
	total := sc.ServerNodes + sc.ClientNodes + 1
	cl := cluster.New(s, cluster.DefaultN(total))
	servers := cl.Nodes[:sc.ServerNodes]
	clients := cl.Nodes[sc.ServerNodes : sc.ServerNodes+sc.ClientNodes]
	config := cl.Nodes[total-1]

	perNodeBytes := int64(sc.RecordsPerNode) * recordBytes
	memBytes := int64(float64(perNodeBytes) / sc.MemoryRatio)

	var d deployment
	d.s = s
	switch system {
	case SystemSQLCS:
		var engines []*sqleng.Engine
		for _, n := range servers {
			engines = append(engines, sqleng.New(s, n, sqleng.Config{
				BufferPoolPages: int(memBytes / storage.PageSize),
				Isolation:       isolation,
				CheckpointEvery: 20 * sim.Second,
			}))
		}
		st := shard.NewSQLCS(engines, clients)
		d.store = st
		d.start = func() {
			for _, e := range engines {
				e.StartBackground()
			}
		}
		d.stop = func() {
			for _, e := range engines {
				e.StopBackground()
			}
		}
	case SystemMongoCS:
		mongods := buildMongods(s, servers, sc, memBytes)
		st := shard.NewMongoCS(mongods, clients)
		d.store = st
		d.start = func() {
			for _, m := range mongods {
				m.StartBackground()
			}
		}
		d.stop = func() {
			for _, m := range mongods {
				m.StopBackground()
			}
		}
	case SystemMongoAS:
		mongods := buildMongods(s, servers, sc, memBytes)
		var mongosNodes []*cluster.Node
		for i := range clients {
			mongosNodes = append(mongosNodes, servers[i%len(servers)])
		}
		mas := shard.NewMongoAS(s, mongods, mongosNodes, clients, config, shard.MongoASConfig{
			SplitThreshold:  int64(sc.RecordsPerNode),
			CrashQueueLimit: crashLimit,
			BalanceEvery:    10 * sim.Second,
		})
		// Pre-split boundaries across shards, as the paper's load did.
		nShards := len(mongods)
		per := sc.records() / int64(nShards)
		var bounds []string
		for i := int64(1); i < int64(nShards); i++ {
			bounds = append(bounds, ycsb.Key(i*per))
		}
		if err := mas.PreSplit(bounds); err != nil {
			panic(err)
		}
		d.store = mas
		d.start = mas.StartBackground
		d.stop = mas.StopBackground
	default:
		panic("core: unknown system " + system)
	}
	return d
}

func buildMongods(s *sim.Sim, servers []*cluster.Node, sc YCSBScale, memBytes int64) []*docstore.Mongod {
	var mongods []*docstore.Mongod
	perMongodMem := memBytes / int64(sc.MongodsPerNode)
	extents := int(perMongodMem / docstore.ExtentSize)
	if extents < 1 {
		extents = 1 // never fall through to "whole node memory"
	}
	for i := 0; i < sc.ServerNodes*sc.MongodsPerNode; i++ {
		mongods = append(mongods, docstore.NewMongod(s, servers[i%len(servers)], docstore.Config{
			ResidentExtents: extents,
			FlushEvery:      20 * sim.Second,
		}))
	}
	return mongods
}

// loadStore bulk-loads the dataset outside the measured region.
func loadStore(st shard.Store, sc YCSBScale) {
	rng := rand.New(rand.NewSource(sc.Seed))
	n := sc.records()
	for i := int64(0); i < n; i++ {
		if err := st.Load(ycsb.Key(i), ycsb.MakeFields(rng)); err != nil {
			panic(err)
		}
	}
}

// CurvePoint is one (target, result) sample on a latency/throughput
// curve.
type CurvePoint struct {
	Target float64
	Result ycsb.Result
}

// RunCurve produces the latency-vs-throughput curve for one system on
// one workload: a fresh deployment per target, as the paper reloaded
// between runs.
func RunCurve(system string, w ycsb.Workload, targets []float64, sc YCSBScale) []CurvePoint {
	var out []CurvePoint
	for _, target := range targets {
		out = append(out, CurvePoint{Target: target, Result: RunPoint(system, w, target, sc)})
	}
	return out
}

// RunPoint runs one benchmark point.
func RunPoint(system string, w ycsb.Workload, target float64, sc YCSBScale) ycsb.Result {
	crashLimit := 0
	if w.Name == "D" && system == SystemMongoAS {
		// The paper's Workload D crash appears past 20 kops/sec; scale
		// the queue threshold so overload, not normal load, trips it.
		crashLimit = 48
	}
	d := buildDeployment(system, sc, crashLimit, sqleng.ReadCommitted)
	loadStore(d.store, sc)
	return ycsb.Run(d.s, d.store, ycsb.RunConfig{
		Workload:  w,
		Records:   sc.records(),
		Clients:   sc.Clients,
		TargetOps: target,
		Warmup:    sc.Warmup,
		Measure:   sc.Measure,
		Seed:      sc.Seed,
		Start:     d.start,
		Stop:      d.stop,
	})
}

// RunPointIsolation is RunPoint for SQL-CS with a chosen isolation
// level (the paper's §3.4.3 read-uncommitted ablation on Workload A).
func RunPointIsolation(w ycsb.Workload, target float64, sc YCSBScale, iso sqleng.IsolationLevel) ycsb.Result {
	d := buildDeployment(SystemSQLCS, sc, 0, iso)
	loadStore(d.store, sc)
	return ycsb.Run(d.s, d.store, ycsb.RunConfig{
		Workload:  w,
		Records:   sc.records(),
		Clients:   sc.Clients,
		TargetOps: target,
		Warmup:    sc.Warmup,
		Measure:   sc.Measure,
		Seed:      sc.Seed,
		Start:     d.start,
		Stop:      d.stop,
	})
}

// RunLoadTimes regenerates the §3.4.2 load-time comparison (virtual
// minutes for Mongo-AS / SQL-CS / Mongo-CS).
func RunLoadTimes(sc YCSBScale) map[string]sim.Duration {
	out := make(map[string]sim.Duration)
	for _, system := range Systems {
		d := buildDeployment(system, sc, 0, sqleng.ReadCommitted)
		out[system] = ycsb.RunLoad(d.s, d.store, ycsb.LoadConfig{
			Records: sc.records(),
			Clients: sc.Clients,
			Seed:    sc.Seed,
		})
	}
	return out
}

// FigureTargets holds the per-figure target throughput sweeps, scaled
// from the paper's x-axes (which ran 5–160 kops for reads and 250–8000
// ops for scans on 8 nodes).
type FigureTargets struct {
	C, B, A, D, E []float64
}

// DefaultTargets returns sweeps sized for the scaled deployment.
func DefaultTargets() FigureTargets {
	return FigureTargets{
		C: []float64{250, 500, 1000, 2000, 4000, 8000},
		B: []float64{250, 500, 1000, 2000, 4000, 8000},
		A: []float64{100, 250, 500, 1000, 2000, 4000},
		D: []float64{500, 1000, 2000, 4000, 8000, 16000},
		E: []float64{25, 50, 100, 200, 400},
	}
}

// WriteCurve prints one figure's series for all systems.
func WriteCurve(w io.Writer, title string, curves map[string][]CurvePoint, kinds []ycsb.OpKind) {
	fmt.Fprintln(w, title)
	for _, system := range Systems {
		pts, ok := curves[system]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %s:\n", system)
		fmt.Fprintf(w, "    %10s %12s", "target", "achieved")
		for _, k := range kinds {
			fmt.Fprintf(w, " %18s", k.String()+" ms (±se)")
		}
		fmt.Fprintln(w)
		for _, pt := range pts {
			fmt.Fprintf(w, "    %10.0f %12.0f", pt.Target, pt.Result.Throughput)
			for _, k := range kinds {
				s := pt.Result.Latency[k]
				fmt.Fprintf(w, "    %7.2f ± %6.2f", s.Mean, s.StdErr)
			}
			if pt.Result.Crashed {
				fmt.Fprintf(w, "   CRASHED")
			}
			fmt.Fprintln(w)
		}
	}
}
