// Package delta is the host-time delta log of the HTAP pipeline: the
// OLTP write path appends typed records (one per document write) and
// blocks until they are committed; commits are group committed — every
// append staged within one flush window rides a single flush, the
// shape internal/wal models in virtual time. A commit hook hands each
// committed batch to the store layer (which publishes it to analytical
// scans), and the durable byte stream replays after a crash to exactly
// the committed prefix: records are length-framed and checksummed, so
// Replay stops at the first torn frame.
//
// The log can be file-backed (OpenFile): appends then go through the
// fault layer's File before the commit is acknowledged, with the
// group-commit window doubling as the fsync batch (SyncGroup), or an
// fsync per record (SyncAlways), or no fsync at all (SyncNone —
// fastest, loses acked records on crash). IO errors are sticky: one
// torn append or failed fsync poisons the log and every later Append
// fails fast, mirroring how a real engine must treat a write stream
// whose durable prefix is no longer known (fsyncgate semantics).
package delta

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"elephants/internal/fault"
)

// Kind is a delta cell type, mirroring relal's column types without
// importing the package (the log sits below the engine).
type Kind uint8

// Cell kinds.
const (
	Int Kind = iota
	Float
	Str
)

// Value is one typed cell. Exactly the field matching Kind is set;
// keeping the variants unboxed means a record never allocates per cell
// on the append path.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Str   string
}

// IntVal, FloatVal, and StrVal build cells.
func IntVal(x int64) Value     { return Value{Kind: Int, Int: x} }
func FloatVal(x float64) Value { return Value{Kind: Float, Float: x} }
func StrVal(s string) Value    { return Value{Kind: Str, Str: s} }

// Record is one logical write: a row destined for a named table. Pos is
// the row's position within its table's write stream, stamped by the
// producer; commit order interleaves tables and writers arbitrarily, so
// the apply side uses Pos to restore per-table row order (the property
// the golden snapshots pin).
type Record struct {
	Table string
	Pos   int64
	Cells []Value
}

// Encode appends the record's framed wire form to buf: a uint32 payload
// length, the payload, and a CRC32 of the payload. A torn tail (crash
// mid-write) is detected by either a short frame or a checksum
// mismatch, so replay recovers exactly the committed prefix.
func Encode(buf []byte, r Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	buf = appendString(buf, r.Table)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Pos))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Cells)))
	for _, c := range r.Cells {
		buf = append(buf, byte(c.Kind))
		switch c.Kind {
		case Int:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Int))
		case Float:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Float))
		case Str:
			buf = appendString(buf, c.Str)
		default:
			panic(fmt.Sprintf("delta: unknown cell kind %d", c.Kind))
		}
	}
	payload := buf[start+4:]
	binary.LittleEndian.PutUint32(buf[start:start+4], uint32(len(payload)))
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// decodeRecord parses one payload (the bytes between the length prefix
// and the checksum).
func decodeRecord(p []byte) (Record, error) {
	var r Record
	var ok bool
	if r.Table, p, ok = readString(p); !ok {
		return r, fmt.Errorf("delta: truncated table name")
	}
	if len(p) < 12 {
		return r, fmt.Errorf("delta: truncated record header")
	}
	r.Pos = int64(binary.LittleEndian.Uint64(p))
	n := int(binary.LittleEndian.Uint32(p[8:]))
	p = p[12:]
	r.Cells = make([]Value, 0, n)
	for i := 0; i < n; i++ {
		if len(p) < 1 {
			return r, fmt.Errorf("delta: truncated cell %d", i)
		}
		kind := Kind(p[0])
		p = p[1:]
		var v Value
		v.Kind = kind
		switch kind {
		case Int:
			if len(p) < 8 {
				return r, fmt.Errorf("delta: truncated int cell")
			}
			v.Int = int64(binary.LittleEndian.Uint64(p))
			p = p[8:]
		case Float:
			if len(p) < 8 {
				return r, fmt.Errorf("delta: truncated float cell")
			}
			v.Float = math.Float64frombits(binary.LittleEndian.Uint64(p))
			p = p[8:]
		case Str:
			if v.Str, p, ok = readString(p); !ok {
				return r, fmt.Errorf("delta: truncated str cell")
			}
		default:
			return r, fmt.Errorf("delta: unknown cell kind %d", kind)
		}
		r.Cells = append(r.Cells, v)
	}
	if len(p) != 0 {
		return r, fmt.Errorf("delta: %d trailing payload bytes", len(p))
	}
	return r, nil
}

func readString(p []byte) (string, []byte, bool) {
	if len(p) < 4 {
		return "", nil, false
	}
	n := int(binary.LittleEndian.Uint32(p))
	if n < 0 || len(p)-4 < n {
		return "", nil, false
	}
	return string(p[4 : 4+n]), p[4+n:], true
}

// Replay decodes the longest valid record prefix of data — the crash
// recovery path. A frame that is short, fails its checksum, or does not
// parse ends the replay (everything after a torn write is garbage);
// valid records before it are returned along with the byte length of
// the consumed prefix.
func Replay(data []byte) ([]Record, int) {
	var recs []Record
	pos := 0
	for {
		rest := data[pos:]
		if len(rest) < 4 {
			return recs, pos
		}
		n := int(binary.LittleEndian.Uint32(rest))
		if n < 0 || len(rest) < 4+n+4 {
			return recs, pos
		}
		payload := rest[4 : 4+n]
		sum := binary.LittleEndian.Uint32(rest[4+n:])
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, pos
		}
		r, err := decodeRecord(payload)
		if err != nil {
			return recs, pos
		}
		recs = append(recs, r)
		pos += 4 + n + 4
	}
}

// SyncPolicy says when a file-backed log fsyncs.
type SyncPolicy int

// The sync policies.
const (
	// SyncGroup fsyncs once per group-commit flush, before the commit is
	// acknowledged: acked ⇒ durable, at one fsync per window.
	SyncGroup SyncPolicy = iota
	// SyncAlways appends and fsyncs each record's frame at stage time —
	// strongest, one fsync per record.
	SyncAlways
	// SyncNone appends at flush but never fsyncs — fastest; a crash may
	// lose acked records (replay still recovers a valid prefix).
	SyncNone
)

// ParseSyncPolicy maps the flag spellings "group", "always", "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "group", "":
		return SyncGroup, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return SyncGroup, fmt.Errorf("delta: unknown sync policy %q (want group, always, or none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	}
	return "group"
}

// generation is one open flush window. The leader closes done when the
// window's records are durable (or the flush failed — err is set before
// done closes), releasing every rider.
type generation struct {
	done chan struct{}
	err  error
}

// Log is the group-committed delta log. Appenders block until their
// record is committed; all records staged within one window share one
// flush. The zero value is not usable — construct with NewLog or
// OpenFile.
type Log struct {
	window   time.Duration
	onCommit func(batch []Record, fromSeq, toSeq int64)
	file     fault.File // nil for the in-memory log
	sync     SyncPolicy

	mu         sync.Mutex
	durable    []byte // committed wire bytes
	staged     []byte // wire bytes of the open window
	stagedRecs []Record
	gen        *generation
	appended   int64 // records staged, ever
	err        error // sticky IO poison: set once, every later Append fails

	committed atomic.Int64 // records committed (durable), ever
	flushes   atomic.Int64
}

// DefaultWindow is the default group-commit window. Small enough that
// write latency stays sub-millisecond, large enough that concurrent
// writers actually share flushes.
const DefaultWindow = 200 * time.Microsecond

// NewLog returns a delta log with the given flush window (0 means
// DefaultWindow; negative means flush immediately, which unit tests use
// for determinism). onCommit, when non-nil, is invoked once per flush
// with the committed batch and its (exclusive-from, inclusive-to]
// sequence range. It runs with the log's mutex held — commits are
// published in order, exactly once — so it must be fast and must not
// call back into the Log.
func NewLog(window time.Duration, onCommit func(batch []Record, fromSeq, toSeq int64)) *Log {
	if window == 0 {
		window = DefaultWindow
	}
	if window < 0 {
		window = 0
	}
	return &Log{window: window, onCommit: onCommit}
}

// Append stages the record and blocks until the flush carrying it
// completes. The first appender of a window is the leader: it waits out
// the window (batching every rider that arrives meanwhile), appends the
// staged bytes to the durable log (and, for a file-backed log, to the
// file, fsyncing per the sync policy), advances the committed
// watermark, and publishes the batch. Returns the record's commit
// sequence number (1-based).
//
// A non-nil error means the record is NOT committed: either the log was
// already poisoned by an earlier IO failure, or this window's flush hit
// one — in which case no record of the window is acknowledged and the
// log refuses further appends (the durable prefix on disk is whatever
// Replay recovers at next open).
func (l *Log) Append(r Record) (int64, error) {
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return 0, err
	}
	frameStart := len(l.staged)
	l.staged = Encode(l.staged, r)
	if l.file != nil && l.sync == SyncAlways {
		// Frame goes durable at stage time; the flush window then only
		// publishes. A failure rolls the stage back so the open window
		// commits exactly its durable records.
		frame := l.staged[frameStart:]
		if _, err := l.file.Append(frame); err != nil {
			l.staged = l.staged[:frameStart]
			l.err = err
			l.mu.Unlock()
			return 0, err
		}
		if err := l.file.Sync(); err != nil {
			l.staged = l.staged[:frameStart]
			l.err = err
			l.mu.Unlock()
			return 0, err
		}
	}
	l.stagedRecs = append(l.stagedRecs, r)
	l.appended++
	seq := l.appended
	if l.gen != nil {
		// Rider: the open window's leader will commit this record.
		g := l.gen
		l.mu.Unlock()
		<-g.done
		return seq, g.err
	}
	g := &generation{done: make(chan struct{})}
	l.gen = g
	l.mu.Unlock()

	if l.window > 0 {
		time.Sleep(l.window)
	}

	l.mu.Lock()
	if l.file != nil && l.sync != SyncAlways {
		// The group-commit window doubles as the fsync batch: one
		// append (+ one fsync under SyncGroup) covers every rider.
		ferr := func() error {
			if _, err := l.file.Append(l.staged); err != nil {
				return err
			}
			if l.sync == SyncGroup {
				return l.file.Sync()
			}
			return nil
		}()
		if ferr != nil {
			// Poison: nothing in this window is acknowledged and the
			// committed watermark stays put. Whole frames that landed
			// before the tear may replay at next open — recovering more
			// than acked is fine; losing acked bytes is not.
			l.err = ferr
			l.gen = nil
			g.err = ferr
			l.mu.Unlock()
			close(g.done)
			return 0, ferr
		}
	}
	batch := l.stagedRecs
	from := l.committed.Load()
	l.durable = append(l.durable, l.staged...)
	l.staged = nil
	l.stagedRecs = nil
	l.gen = nil
	to := from + int64(len(batch))
	l.committed.Store(to)
	l.flushes.Add(1)
	if l.onCommit != nil {
		l.onCommit(batch, from, to)
	}
	l.mu.Unlock()
	close(g.done)
	return seq, nil
}

// CommittedSeq returns the number of committed records. Safe from any
// goroutine.
func (l *Log) CommittedSeq() int64 { return l.committed.Load() }

// Stats reports committed records and physical flushes.
func (l *Log) Stats() (appends, flushes int64) { return l.committed.Load(), l.flushes.Load() }

// Data returns a copy of the durable byte stream — what would survive a
// crash. Replay(Data()) yields exactly the committed records in commit
// order.
func (l *Log) Data() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]byte, len(l.durable))
	copy(out, l.durable)
	return out
}

// Quiesce blocks until no flush window is open. With all writers
// stopped, the log is fully committed afterwards.
func (l *Log) Quiesce() {
	for {
		l.mu.Lock()
		g := l.gen
		l.mu.Unlock()
		if g == nil {
			return
		}
		<-g.done
	}
}

// Err returns the sticky IO error, if any. A non-nil Err means the log
// stopped accepting appends at some earlier point; the durable prefix
// is whatever Replay recovers at next open.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// FileConfig configures a file-backed log.
type FileConfig struct {
	// Window is the group-commit window: 0 means DefaultWindow,
	// negative means flush immediately (deterministic tests).
	Window time.Duration
	// Sync is the fsync policy (default SyncGroup).
	Sync SyncPolicy
	// OnCommit, when non-nil, receives each committed batch — same
	// contract as NewLog. It is NOT invoked for records recovered by
	// OpenFile; the caller applies those itself.
	OnCommit func(batch []Record, fromSeq, toSeq int64)
}

// OpenFile opens a log over f, replaying whatever durable bytes
// survive. A torn tail (crash mid-append) is truncated off the file so
// later appends extend a clean committed prefix. Returns the log, the
// recovered records in commit order (the caller re-applies them — the
// commit hook is not invoked for recovery), and the number of torn-tail
// bytes discarded.
func OpenFile(f fault.File, cfg FileConfig) (*Log, []Record, int64, error) {
	data, err := f.ReadAll()
	if err != nil {
		return nil, nil, 0, fmt.Errorf("delta: read log: %w", err)
	}
	recs, n := Replay(data)
	truncated := int64(len(data) - n)
	if truncated > 0 {
		if err := f.Truncate(int64(n)); err != nil {
			return nil, nil, 0, fmt.Errorf("delta: truncate torn tail: %w", err)
		}
	}
	l := NewLog(cfg.Window, cfg.OnCommit)
	l.file = f
	l.sync = cfg.Sync
	l.durable = data[:n:n]
	l.appended = int64(len(recs))
	l.committed.Store(int64(len(recs)))
	return l, recs, truncated, nil
}

// Close quiesces the log, fsyncs the file (unless the log is poisoned —
// a failed fsync must not be retried as if it could succeed), and
// closes it. Safe on an in-memory log (no-op beyond the quiesce).
func (l *Log) Close() error {
	l.Quiesce()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return nil
	}
	var first error
	if l.err == nil && l.sync != SyncNone {
		if err := l.file.Sync(); err != nil {
			first = err
			l.err = err
		}
	}
	if err := l.file.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
