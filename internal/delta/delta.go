// Package delta is the host-time delta log of the HTAP pipeline: the
// OLTP write path appends typed records (one per document write) and
// blocks until they are committed; commits are group committed — every
// append staged within one flush window rides a single flush, the
// shape internal/wal models in virtual time. A commit hook hands each
// committed batch to the store layer (which publishes it to analytical
// scans), and the durable byte stream replays after a crash to exactly
// the committed prefix: records are length-framed and checksummed, so
// Replay stops at the first torn frame.
package delta

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is a delta cell type, mirroring relal's column types without
// importing the package (the log sits below the engine).
type Kind uint8

// Cell kinds.
const (
	Int Kind = iota
	Float
	Str
)

// Value is one typed cell. Exactly the field matching Kind is set;
// keeping the variants unboxed means a record never allocates per cell
// on the append path.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Str   string
}

// IntVal, FloatVal, and StrVal build cells.
func IntVal(x int64) Value     { return Value{Kind: Int, Int: x} }
func FloatVal(x float64) Value { return Value{Kind: Float, Float: x} }
func StrVal(s string) Value    { return Value{Kind: Str, Str: s} }

// Record is one logical write: a row destined for a named table. Pos is
// the row's position within its table's write stream, stamped by the
// producer; commit order interleaves tables and writers arbitrarily, so
// the apply side uses Pos to restore per-table row order (the property
// the golden snapshots pin).
type Record struct {
	Table string
	Pos   int64
	Cells []Value
}

// Encode appends the record's framed wire form to buf: a uint32 payload
// length, the payload, and a CRC32 of the payload. A torn tail (crash
// mid-write) is detected by either a short frame or a checksum
// mismatch, so replay recovers exactly the committed prefix.
func Encode(buf []byte, r Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	buf = appendString(buf, r.Table)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Pos))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Cells)))
	for _, c := range r.Cells {
		buf = append(buf, byte(c.Kind))
		switch c.Kind {
		case Int:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Int))
		case Float:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Float))
		case Str:
			buf = appendString(buf, c.Str)
		default:
			panic(fmt.Sprintf("delta: unknown cell kind %d", c.Kind))
		}
	}
	payload := buf[start+4:]
	binary.LittleEndian.PutUint32(buf[start:start+4], uint32(len(payload)))
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// decodeRecord parses one payload (the bytes between the length prefix
// and the checksum).
func decodeRecord(p []byte) (Record, error) {
	var r Record
	var ok bool
	if r.Table, p, ok = readString(p); !ok {
		return r, fmt.Errorf("delta: truncated table name")
	}
	if len(p) < 12 {
		return r, fmt.Errorf("delta: truncated record header")
	}
	r.Pos = int64(binary.LittleEndian.Uint64(p))
	n := int(binary.LittleEndian.Uint32(p[8:]))
	p = p[12:]
	r.Cells = make([]Value, 0, n)
	for i := 0; i < n; i++ {
		if len(p) < 1 {
			return r, fmt.Errorf("delta: truncated cell %d", i)
		}
		kind := Kind(p[0])
		p = p[1:]
		var v Value
		v.Kind = kind
		switch kind {
		case Int:
			if len(p) < 8 {
				return r, fmt.Errorf("delta: truncated int cell")
			}
			v.Int = int64(binary.LittleEndian.Uint64(p))
			p = p[8:]
		case Float:
			if len(p) < 8 {
				return r, fmt.Errorf("delta: truncated float cell")
			}
			v.Float = math.Float64frombits(binary.LittleEndian.Uint64(p))
			p = p[8:]
		case Str:
			if v.Str, p, ok = readString(p); !ok {
				return r, fmt.Errorf("delta: truncated str cell")
			}
		default:
			return r, fmt.Errorf("delta: unknown cell kind %d", kind)
		}
		r.Cells = append(r.Cells, v)
	}
	if len(p) != 0 {
		return r, fmt.Errorf("delta: %d trailing payload bytes", len(p))
	}
	return r, nil
}

func readString(p []byte) (string, []byte, bool) {
	if len(p) < 4 {
		return "", nil, false
	}
	n := int(binary.LittleEndian.Uint32(p))
	if n < 0 || len(p)-4 < n {
		return "", nil, false
	}
	return string(p[4 : 4+n]), p[4+n:], true
}

// Replay decodes the longest valid record prefix of data — the crash
// recovery path. A frame that is short, fails its checksum, or does not
// parse ends the replay (everything after a torn write is garbage);
// valid records before it are returned along with the byte length of
// the consumed prefix.
func Replay(data []byte) ([]Record, int) {
	var recs []Record
	pos := 0
	for {
		rest := data[pos:]
		if len(rest) < 4 {
			return recs, pos
		}
		n := int(binary.LittleEndian.Uint32(rest))
		if n < 0 || len(rest) < 4+n+4 {
			return recs, pos
		}
		payload := rest[4 : 4+n]
		sum := binary.LittleEndian.Uint32(rest[4+n:])
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, pos
		}
		r, err := decodeRecord(payload)
		if err != nil {
			return recs, pos
		}
		recs = append(recs, r)
		pos += 4 + n + 4
	}
}

// generation is one open flush window. The leader closes done when the
// window's records are durable, releasing every rider.
type generation struct {
	done chan struct{}
}

// Log is the group-committed delta log. Appenders block until their
// record is committed; all records staged within one window share one
// flush. The zero value is not usable — construct with NewLog.
type Log struct {
	window   time.Duration
	onCommit func(batch []Record, fromSeq, toSeq int64)

	mu         sync.Mutex
	durable    []byte // committed wire bytes
	staged     []byte // wire bytes of the open window
	stagedRecs []Record
	gen        *generation
	appended   int64 // records staged, ever

	committed atomic.Int64 // records committed (durable), ever
	flushes   atomic.Int64
}

// DefaultWindow is the default group-commit window. Small enough that
// write latency stays sub-millisecond, large enough that concurrent
// writers actually share flushes.
const DefaultWindow = 200 * time.Microsecond

// NewLog returns a delta log with the given flush window (0 means
// DefaultWindow; negative means flush immediately, which unit tests use
// for determinism). onCommit, when non-nil, is invoked once per flush
// with the committed batch and its (exclusive-from, inclusive-to]
// sequence range. It runs with the log's mutex held — commits are
// published in order, exactly once — so it must be fast and must not
// call back into the Log.
func NewLog(window time.Duration, onCommit func(batch []Record, fromSeq, toSeq int64)) *Log {
	if window == 0 {
		window = DefaultWindow
	}
	if window < 0 {
		window = 0
	}
	return &Log{window: window, onCommit: onCommit}
}

// Append stages the record and blocks until the flush carrying it
// completes. The first appender of a window is the leader: it waits out
// the window (batching every rider that arrives meanwhile), appends the
// staged bytes to the durable log, advances the committed watermark,
// and publishes the batch. Returns the record's commit sequence number
// (1-based).
func (l *Log) Append(r Record) int64 {
	l.mu.Lock()
	l.staged = Encode(l.staged, r)
	l.stagedRecs = append(l.stagedRecs, r)
	l.appended++
	seq := l.appended
	if l.gen != nil {
		// Rider: the open window's leader will commit this record.
		g := l.gen
		l.mu.Unlock()
		<-g.done
		return seq
	}
	g := &generation{done: make(chan struct{})}
	l.gen = g
	l.mu.Unlock()

	if l.window > 0 {
		time.Sleep(l.window)
	}

	l.mu.Lock()
	batch := l.stagedRecs
	from := l.committed.Load()
	l.durable = append(l.durable, l.staged...)
	l.staged = nil
	l.stagedRecs = nil
	l.gen = nil
	to := from + int64(len(batch))
	l.committed.Store(to)
	l.flushes.Add(1)
	if l.onCommit != nil {
		l.onCommit(batch, from, to)
	}
	l.mu.Unlock()
	close(g.done)
	return seq
}

// CommittedSeq returns the number of committed records. Safe from any
// goroutine.
func (l *Log) CommittedSeq() int64 { return l.committed.Load() }

// Stats reports committed records and physical flushes.
func (l *Log) Stats() (appends, flushes int64) { return l.committed.Load(), l.flushes.Load() }

// Data returns a copy of the durable byte stream — what would survive a
// crash. Replay(Data()) yields exactly the committed records in commit
// order.
func (l *Log) Data() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]byte, len(l.durable))
	copy(out, l.durable)
	return out
}

// Quiesce blocks until no flush window is open. With all writers
// stopped, the log is fully committed afterwards.
func (l *Log) Quiesce() {
	for {
		l.mu.Lock()
		g := l.gen
		l.mu.Unlock()
		if g == nil {
			return
		}
		<-g.done
	}
}
