package delta

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
)

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Table: "lineitem",
			Pos:   int64(i),
			Cells: []Value{
				IntVal(int64(i * 7)),
				FloatVal(float64(i) * 0.25),
				StrVal("AIR"),
			},
		}
	}
	return recs
}

func TestDeltaEncodeReplayRoundTrip(t *testing.T) {
	want := testRecords(17)
	var buf []byte
	for _, r := range want {
		buf = Encode(buf, r)
	}
	got, n := Replay(buf)
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestDeltaReplayTruncation pins the crash-recovery contract: replaying
// any truncated durable stream yields exactly the records whose frames
// survived whole — a prefix, never a partial or corrupted record.
func TestDeltaReplayTruncation(t *testing.T) {
	want := testRecords(8)
	var buf []byte
	var frameEnds []int
	for _, r := range want {
		buf = Encode(buf, r)
		frameEnds = append(frameEnds, len(buf))
	}
	for cut := 0; cut <= len(buf); cut++ {
		whole := 0
		for whole < len(frameEnds) && frameEnds[whole] <= cut {
			whole++
		}
		got, n := Replay(buf[:cut])
		if len(got) != whole {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, len(got), whole)
		}
		if whole > 0 && !reflect.DeepEqual(got, want[:whole]) {
			t.Fatalf("cut=%d: replayed records are not the prefix", cut)
		}
		if whole > 0 && n != frameEnds[whole-1] {
			t.Fatalf("cut=%d: consumed %d bytes, want %d", cut, n, frameEnds[whole-1])
		}
	}
}

// TestDeltaReplayCorruption flips one payload byte: the checksum must
// reject the frame, ending replay at the record before it.
func TestDeltaReplayCorruption(t *testing.T) {
	want := testRecords(5)
	var buf []byte
	var frameEnds []int
	for _, r := range want {
		buf = Encode(buf, r)
		frameEnds = append(frameEnds, len(buf))
	}
	corrupt := append([]byte(nil), buf...)
	corrupt[frameEnds[2]+6] ^= 0xff // inside record 3's payload
	got, n := Replay(corrupt)
	if len(got) != 3 {
		t.Fatalf("replayed %d records past corruption, want 3", len(got))
	}
	if n != frameEnds[2] {
		t.Errorf("consumed %d bytes, want %d", n, frameEnds[2])
	}
	if !reflect.DeepEqual(got, want[:3]) {
		t.Errorf("prefix records altered by corruption elsewhere")
	}
}

// TestDeltaGroupCommitShares checks the leader/rider shape: many
// concurrent appenders staged within flush windows must share flushes.
func TestDeltaGroupCommitShares(t *testing.T) {
	l := NewLog(0, nil)
	const writers = 16
	var wg sync.WaitGroup
	recs := testRecords(writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(r Record) {
			defer wg.Done()
			if _, err := l.Append(r); err != nil {
				t.Error(err)
			}
		}(recs[i])
	}
	wg.Wait()
	appends, flushes := l.Stats()
	if appends != writers {
		t.Errorf("appends = %d, want %d", appends, writers)
	}
	if flushes >= writers {
		t.Errorf("flushes = %d, want < %d (group commit must share)", flushes, writers)
	}
	got, n := Replay(l.Data())
	if n != len(l.Data()) || len(got) != writers {
		t.Errorf("durable stream replays %d records over %d bytes", len(got), n)
	}
}

// TestDeltaImmediateWindow pins the deterministic test mode: a negative
// window flushes every append on its own.
func TestDeltaImmediateWindow(t *testing.T) {
	var batches int
	var total int64
	var lastTo int64
	l := NewLog(-1, func(batch []Record, from, to int64) {
		batches++
		total += int64(len(batch))
		if from != lastTo || to != from+int64(len(batch)) {
			// Commits publish in order with contiguous sequence ranges.
			panic("non-contiguous commit range")
		}
		lastTo = to
	})
	for _, r := range testRecords(6) {
		if seq, err := l.Append(r); err != nil || seq != r.Pos+1 {
			t.Errorf("seq = %d (err %v), want %d", seq, err, r.Pos+1)
		}
	}
	appends, flushes := l.Stats()
	if appends != 6 || flushes != 6 {
		t.Errorf("appends=%d flushes=%d, want 6/6 (immediate mode)", appends, flushes)
	}
	if batches != 6 || total != 6 {
		t.Errorf("onCommit saw %d batches / %d records, want 6/6", batches, total)
	}
	l.Quiesce()
	if l.CommittedSeq() != 6 {
		t.Errorf("CommittedSeq = %d, want 6", l.CommittedSeq())
	}
}

// FuzzDeltaReplay drives the recovery path: build records from the fuzz
// input, encode them, truncate at a fuzz-chosen point, and require that
// replay returns exactly the records whose frames survived whole. Also
// replays the mutated tail directly — Replay must never panic on
// arbitrary bytes.
func FuzzDeltaReplay(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(4))
	f.Add([]byte{}, uint16(0))
	f.Add(bytes.Repeat([]byte{0xff}, 64), uint16(63))
	f.Fuzz(func(t *testing.T, seed []byte, cutRaw uint16) {
		// Derive a deterministic record list from the seed bytes.
		var recs []Record
		for i := 0; i < len(seed); i += 4 {
			chunk := seed[i:min(i+4, len(seed))]
			var x uint32
			for _, b := range chunk {
				x = x<<8 | uint32(b)
			}
			recs = append(recs, Record{
				Table: "t",
				Pos:   int64(i / 4),
				Cells: []Value{
					IntVal(int64(int32(x))),
					StrVal(string(chunk)),
					FloatVal(float64(x) / 3),
				},
			})
		}
		var buf []byte
		var frameEnds []int
		for _, r := range recs {
			buf = Encode(buf, r)
			frameEnds = append(frameEnds, len(buf))
		}
		cut := 0
		if len(buf) > 0 {
			cut = int(cutRaw) % (len(buf) + 1)
		}
		whole := 0
		for whole < len(frameEnds) && frameEnds[whole] <= cut {
			whole++
		}
		got, n := Replay(buf[:cut])
		if len(got) != whole || (whole > 0 && !reflect.DeepEqual(got, recs[:whole])) {
			t.Fatalf("cut=%d: replay is not the %d-record prefix (got %d)", cut, whole, len(got))
		}
		if n > cut {
			t.Fatalf("consumed %d bytes of a %d-byte stream", n, cut)
		}
		// Arbitrary garbage must not panic and must not over-consume.
		if g, gn := Replay(seed); gn > len(seed) || len(g) < 0 {
			t.Fatalf("garbage replay consumed %d of %d bytes", gn, len(seed))
		}
		// Appending the raw seed after valid frames: replay still yields
		// at least every whole valid frame.
		tail := append(append([]byte(nil), buf...), seed...)
		if g, _ := Replay(tail); len(g) < len(recs) {
			t.Fatalf("garbage tail lost committed records: %d < %d", len(g), len(recs))
		}
	})
}
