package delta

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"elephants/internal/fault"
)

func openTestLog(t *testing.T, fs fault.FS, cfg FileConfig) (*Log, []Record, int64) {
	t.Helper()
	f, err := fs.Open("delta.log")
	if err != nil {
		t.Fatal(err)
	}
	l, recs, truncated, err := OpenFile(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l, recs, truncated
}

func TestDeltaFileRoundTrip(t *testing.T) {
	fs := fault.NewMemFS()
	l, recs, truncated := openTestLog(t, fs, FileConfig{Window: -1})
	if len(recs) != 0 || truncated != 0 {
		t.Fatalf("fresh log recovered %d records, %d truncated", len(recs), truncated)
	}
	want := testRecords(10)
	for _, r := range want {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs, truncated := openTestLog(t, fs, FileConfig{Window: -1})
	if truncated != 0 {
		t.Fatalf("clean close left %d torn bytes", truncated)
	}
	if len(recs) != 10 {
		t.Fatalf("recovered %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.Pos != want[i].Pos || r.Table != want[i].Table {
			t.Fatalf("record %d: got %+v", i, r)
		}
	}
	// Sequence numbers continue past the recovered prefix.
	seq, err := l2.Append(testRecords(11)[10])
	if err != nil {
		t.Fatal(err)
	}
	if seq != 11 {
		t.Fatalf("post-recovery seq = %d, want 11", seq)
	}
	if l2.CommittedSeq() != 11 {
		t.Fatalf("CommittedSeq = %d, want 11", l2.CommittedSeq())
	}
	l2.Close()
}

func TestDeltaFileTruncatesTornTail(t *testing.T) {
	fs := fault.NewMemFS()
	l, _, _ := openTestLog(t, fs, FileConfig{Window: -1})
	for _, r := range testRecords(3) {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	clean := int64(len(l.Data()))
	l.Close()
	// Scribble a torn half-frame onto the end of the file.
	f, _ := fs.Open("delta.log")
	f.Append([]byte{0xff, 0x00, 0x07, 0xee, 0x42})
	f.Sync()
	f.Close()

	l2, recs, truncated := openTestLog(t, fs, FileConfig{Window: -1})
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	if truncated != 5 {
		t.Fatalf("truncated %d bytes, want 5", truncated)
	}
	l2.Close()
	// The tail is physically gone: a third open sees a clean log.
	data, _ := fs.ReadFile("delta.log")
	if int64(len(data)) != clean {
		t.Fatalf("file is %d bytes after truncate, want %d", len(data), clean)
	}
}

// TestDeltaFsyncBoundary pins the crash-exactly-at-the-fsync edge: the
// append whose fsync fails is not acknowledged, the log poisons, and
// reopen recovers every acknowledged record (the unsynced frame may or
// may not survive — more than acked is fine, less is not).
func TestDeltaFsyncBoundary(t *testing.T) {
	memfs := fault.NewMemFS()
	inj := fault.NewInjector(memfs, fault.Schedule{Seed: 11, SyncFailAt: 3})
	f, err := inj.Open("delta.log")
	if err != nil {
		t.Fatal(err)
	}
	l, _, _, err := OpenFile(f, FileConfig{Window: -1, Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(6)
	acked := 0
	var lastErr error
	for _, r := range recs {
		if _, err := l.Append(r); err != nil {
			lastErr = err
			break
		}
		acked++
	}
	if acked != 2 {
		t.Fatalf("acked %d records, want 2 (third fsync fails)", acked)
	}
	if !errors.Is(lastErr, fault.ErrSync) {
		t.Fatalf("append error = %v, want ErrSync", lastErr)
	}
	// Sticky poison: the next append fails fast with the same error.
	if _, err := l.Append(recs[3]); !errors.Is(err, fault.ErrSync) {
		t.Fatalf("poisoned append = %v, want ErrSync", err)
	}
	if !errors.Is(l.Err(), fault.ErrSync) {
		t.Fatalf("Err() = %v", l.Err())
	}

	memfs.Crash(99)
	l2, rec, _ := openTestLog(t, memfs, FileConfig{Window: -1})
	if len(rec) < acked || len(rec) > 3 {
		t.Fatalf("recovered %d records, want between %d and 3", len(rec), acked)
	}
	for i, r := range rec {
		if r.Pos != int64(i) {
			t.Fatalf("recovered record %d has pos %d — not the commit prefix", i, r.Pos)
		}
	}
	l2.Close()
}

// TestDeltaDataCopyRace is the Data() aliasing audit: concurrent
// appenders grow the staging buffer while readers replay snapshots;
// under -race any aliasing of the live buffer is flagged, and every
// snapshot must be a fully-committed frame sequence.
func TestDeltaDataCopyRace(t *testing.T) {
	l := NewLog(0, nil)
	const writers, per = 8, 20
	var wg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r := testRecords(1)[0]
				r.Pos = int64(w*per + i)
				if _, err := l.Append(r); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			data := l.Data()
			recs, n := Replay(data)
			if n != len(data) {
				t.Errorf("Data() snapshot has a torn tail: %d of %d bytes", n, len(data))
				return
			}
			_ = recs
		}
	}()
	// Writers finish, then the reader takes one final full snapshot.
	go func() {
		defer stop.Store(true)
		for l.CommittedSeq() < writers*per {
			l.Quiesce()
		}
	}()
	wg.Wait()
	recs, _ := Replay(l.Data())
	if len(recs) != writers*per {
		t.Fatalf("final snapshot has %d records, want %d", len(recs), writers*per)
	}
}

// TestDeltaSyncAlwaysConcurrentTorn sweeps the crash point across every
// byte offset of the first few frames: four concurrent appenders run
// under SyncAlways until an injected torn append poisons the log, the
// machine dies (MemFS.Crash), and on reopen every acknowledged append
// must be among the replayed records — acked ⊆ replayed at every
// single torn-byte offset, or SyncAlways's durability promise is a lie.
func TestDeltaSyncAlwaysConcurrentTorn(t *testing.T) {
	frame := len(Encode(nil, testRecords(1)[0]))
	const writers, perWriter = 4, 8
	for cut := 1; cut <= 3*frame; cut++ {
		memfs := fault.NewMemFS()
		inj := fault.NewInjector(memfs, fault.Schedule{Seed: int64(cut), TornAppendAfter: int64(cut)})
		fh, err := inj.Open("delta.log")
		if err != nil {
			t.Fatal(err)
		}
		l, _, _, err := OpenFile(fh, FileConfig{Window: -1, Sync: SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		acked := make(map[int64]bool)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					r := testRecords(1)[0]
					r.Pos = int64(w*perWriter + i)
					if _, err := l.Append(r); err != nil {
						return // torn or poisoned: stop, nothing acked
					}
					mu.Lock()
					acked[r.Pos] = true
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		memfs.Crash(int64(cut))

		fh2, err := memfs.Open("delta.log")
		if err != nil {
			t.Fatal(err)
		}
		l2, recs, _, err := OpenFile(fh2, FileConfig{Window: -1})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		replayed := make(map[int64]bool, len(recs))
		for _, r := range recs {
			if r.Table != "lineitem" {
				t.Fatalf("cut %d: replayed foreign record %+v", cut, r)
			}
			replayed[r.Pos] = true
		}
		for pos := range acked {
			if !replayed[pos] {
				t.Fatalf("cut %d: acked record pos=%d lost after crash (acked %d, replayed %d)",
					cut, pos, len(acked), len(recs))
			}
		}
		l2.Close()
	}
}

// FuzzCrashRecovery drives the whole durable path under a random fault
// schedule: append through an injector until the first failure, crash,
// reopen, and require (a) the recovered records are a clean prefix of
// the append order and (b) under a syncing policy, nothing acknowledged
// was lost.
func FuzzCrashRecovery(f *testing.F) {
	f.Add(int64(1), uint16(100), uint8(0), uint16(0))
	f.Add(int64(2), uint16(0), uint8(1), uint16(3))
	f.Add(int64(3), uint16(57), uint8(2), uint16(1))
	f.Add(int64(4), uint16(0), uint8(0), uint16(0))
	f.Fuzz(func(t *testing.T, seed int64, tornAfter uint16, polRaw uint8, syncFailAt uint16) {
		pol := SyncPolicy(polRaw % 3)
		memfs := fault.NewMemFS()
		inj := fault.NewInjector(memfs, fault.Schedule{
			Seed:            seed,
			TornAppendAfter: int64(tornAfter),
			SyncFailAt:      int64(syncFailAt % 64),
		})
		fh, err := inj.Open("delta.log")
		if err != nil {
			t.Fatal(err)
		}
		l, _, _, err := OpenFile(fh, FileConfig{Window: -1, Sync: pol})
		if err != nil {
			t.Fatal(err)
		}
		acked := 0
		for _, r := range testRecords(32) {
			if _, err := l.Append(r); err != nil {
				break
			}
			acked++
		}
		memfs.Crash(seed)

		fh2, err := memfs.Open("delta.log")
		if err != nil {
			t.Fatal(err)
		}
		l2, recs, _, err := OpenFile(fh2, FileConfig{Window: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		for i, r := range recs {
			if r.Pos != int64(i) || r.Table != "lineitem" {
				t.Fatalf("recovered record %d is %+v — not the append-order prefix", i, r)
			}
		}
		if pol != SyncNone && len(recs) < acked {
			t.Fatalf("durability hole: acked %d records, recovered %d (policy %v)", acked, len(recs), pol)
		}
	})
}
