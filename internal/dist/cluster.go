package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// ShardEnv is the env var that turns any binary embedding
// MaybeShardMain into a shard process: when set, it holds the shard's
// JSON ShardConfig and the process serves instead of doing whatever it
// normally does.
const ShardEnv = "DIST_SHARD_CONFIG"

// readyPrefix is the handshake line a shard process prints once it is
// recovered, caught up, and listening.
const readyPrefix = "DIST_SHARD_READY port="

// MaybeShardMain checks ShardEnv and, when set, runs the shard server
// until the process is killed. It returns false when the env var is
// absent — the caller proceeds as a normal binary. Call it first thing
// in main() (and in TestMain for test binaries that spawn clusters).
func MaybeShardMain() bool {
	cfgJSON := os.Getenv(ShardEnv)
	if cfgJSON == "" {
		return false
	}
	if err := ShardMain(cfgJSON); err != nil {
		fmt.Fprintf(os.Stderr, "dist shard: %v\n", err)
		os.Exit(1)
	}
	return true
}

// ShardMain boots a shard from its JSON config, prints the ready
// handshake, and serves until killed.
func ShardMain(cfgJSON string) error {
	var cfg ShardConfig
	if err := json.Unmarshal([]byte(cfgJSON), &cfg); err != nil {
		return fmt.Errorf("bad %s: %w", ShardEnv, err)
	}
	s, err := StartShard(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%s%d\n", readyPrefix, s.Port())
	os.Stdout.Sync()
	select {} // serve until killed; the parent owns our lifetime
}

// Cluster manages a set of shard OS processes: spawn, kill, restart
// (same port, same data dir — the crash-recovery path), and teardown.
type Cluster struct {
	bin  string
	mu   sync.Mutex
	cfgs []ShardConfig
	cmds []*exec.Cmd
	addr []string
}

// StartCluster spawns one process per config by re-executing bin with
// ShardEnv set, waiting for every ready handshake. Ports reported by
// the children are pinned into the configs so a later Restart reuses
// them.
func StartCluster(bin string, cfgs []ShardConfig) (*Cluster, error) {
	cl := &Cluster{
		bin:  bin,
		cfgs: append([]ShardConfig(nil), cfgs...),
		cmds: make([]*exec.Cmd, len(cfgs)),
		addr: make([]string, len(cfgs)),
	}
	for i := range cl.cfgs {
		if err := cl.spawn(i); err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

// spawn starts shard i and blocks until its ready line (or exit).
// Callers hold no lock; spawn takes it around state updates only.
func (cl *Cluster) spawn(i int) error {
	cl.mu.Lock()
	cfg := cl.cfgs[i]
	cl.mu.Unlock()
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return err
	}
	cmd := exec.Command(cl.bin)
	cmd.Env = append(os.Environ(), ShardEnv+"="+string(cfgJSON))
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	port, err := awaitReady(stdout)
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("dist: shard %d failed to start: %w", i, err)
	}
	// Drain the rest of stdout so the child never blocks on a full pipe.
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
		}
	}()
	cl.mu.Lock()
	cl.cmds[i] = cmd
	cl.cfgs[i].Port = port // pin for restarts
	cl.addr[i] = fmt.Sprintf("127.0.0.1:%d", port)
	cl.mu.Unlock()
	return nil
}

// awaitReady scans the child's stdout for the handshake, bounded by a
// generous boot timeout (dataset generation + recovery replay).
func awaitReady(stdout io.Reader) (int, error) {
	type res struct {
		port int
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, readyPrefix) {
				var port int
				if _, err := fmt.Sscanf(line, readyPrefix+"%d", &port); err != nil {
					ch <- res{0, err}
					return
				}
				ch <- res{port, nil}
				return
			}
		}
		ch <- res{0, fmt.Errorf("shard exited before ready: %v", sc.Err())}
	}()
	select {
	case r := <-ch:
		return r.port, r.err
	case <-time.After(2 * time.Minute):
		return 0, fmt.Errorf("timed out waiting for shard ready")
	}
}

// Addrs returns the shard addresses in shard order.
func (cl *Cluster) Addrs() []string {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return append([]string(nil), cl.addr...)
}

// Kill hard-kills shard i (SIGKILL — no shutdown grace, the crash the
// delta log exists for) and reaps it.
func (cl *Cluster) Kill(i int) error {
	cl.mu.Lock()
	cmd := cl.cmds[i]
	cl.cmds[i] = nil
	cl.mu.Unlock()
	if cmd == nil {
		return fmt.Errorf("dist: shard %d not running", i)
	}
	if err := cmd.Process.Kill(); err != nil {
		return err
	}
	cmd.Wait()
	return nil
}

// Restart re-spawns shard i with its pinned port and original data
// dir; the child recovers its store by replaying the delta log.
func (cl *Cluster) Restart(i int) error {
	cl.mu.Lock()
	running := cl.cmds[i] != nil
	cl.mu.Unlock()
	if running {
		return fmt.Errorf("dist: shard %d still running", i)
	}
	return cl.spawn(i)
}

// Close kills every running shard.
func (cl *Cluster) Close() {
	cl.mu.Lock()
	cmds := append([]*exec.Cmd(nil), cl.cmds...)
	for i := range cl.cmds {
		cl.cmds[i] = nil
	}
	cl.mu.Unlock()
	for _, cmd := range cmds {
		if cmd != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}
}
