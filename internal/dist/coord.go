package dist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"elephants/internal/fault"
	"elephants/internal/metrics"
	"elephants/internal/rcfile"
	"elephants/internal/relal"
	"elephants/internal/tpch"
)

// ErrPartial is the typed "the cluster could not produce a complete
// answer" failure: some shard stayed unreachable past the retry budget
// (or its circuit was open under FailFast). A query returns either the
// exact complete answer or an error wrapping ErrPartial — never a
// silently partial row set.
var ErrPartial = errors.New("dist: partial result")

// PartialError carries which shard broke the gather and why.
type PartialError struct {
	Shard int
	Err   error
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("dist: partial result: shard %d: %v", e.Shard, e.Err)
}

// Unwrap exposes the shard-level cause.
func (e *PartialError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrPartial) hold for every PartialError.
func (e *PartialError) Is(target error) bool { return target == ErrPartial }

// Coordinator counter names (metrics.CounterSet keys).
const (
	cRequests      = "dist_requests"
	cRetries       = "dist_retries"
	cFailFast      = "dist_failfast"
	cBreakerTrips  = "dist_breaker_trips"
	cBreakerCloses = "dist_breaker_closes"
	cPartials      = "dist_partials"
)

// Options tune the coordinator's robustness machinery. Zero values get
// workable defaults.
type Options struct {
	// AttemptTimeout bounds one network attempt end to end (dial +
	// request + response); it is also the deadline budget shipped to
	// the shard. Default 2s.
	AttemptTimeout time.Duration
	// MaxAttempts bounds the retries of one logical call. Default 10.
	MaxAttempts int
	// BackoffBase/BackoffCap shape the exponential backoff between
	// attempts (doubling from base, clamped at cap, plus seeded jitter
	// of up to half the step — the background converter's scheme).
	// Defaults 5ms / 250ms.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed drives the backoff jitter; same seed, same jitter sequence.
	Seed int64
	// BreakerAfter consecutive failures open a shard's circuit breaker.
	// Default 3.
	BreakerAfter int
	// FailFast makes calls against an open breaker fail immediately
	// with ErrPartial instead of burning their retry budget; the health
	// prober is then the only path back to closed. Off, an open breaker
	// only records state — attempts continue and double as probes.
	FailFast bool
	// ProbeEvery is the health prober's interval (0 = 25ms, negative =
	// no prober). Probes bypass the network fault injector so fault
	// frame indices stay deterministic for the data plane.
	ProbeEvery time.Duration
	// Net injects network faults into every data-plane frame the
	// coordinator sends or receives.
	Net fault.NetSchedule
	// Workers sizes local plan execution (0 = tpch.DefaultWorkers).
	Workers int
	// NoFragments disables the fragment fast path, forcing every query
	// through the scattered-scan path (differential testing).
	NoFragments bool
}

func (o Options) withDefaults() Options {
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 2 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 10
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 5 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 250 * time.Millisecond
	}
	if o.BreakerAfter <= 0 {
		o.BreakerAfter = 3
	}
	if o.ProbeEvery == 0 {
		o.ProbeEvery = 25 * time.Millisecond
	}
	return o
}

// breakerState is one shard's circuit breaker.
type breakerState struct {
	mu    sync.Mutex
	fails int
	open  bool
}

// Coordinator owns the cluster-facing half: a local DB whose
// partitioned tables scan through scatter/gather, plus the retry,
// breaker, and probing machinery that keeps answers exact while shards
// misbehave.
type Coordinator struct {
	db       *tpch.DB
	addrs    []string
	opts     Options
	inj      *fault.NetInjector
	counters *metrics.CounterSet
	breakers []*breakerState

	rngMu sync.Mutex
	rng   *rand.Rand

	stop     chan struct{}
	probeWG  sync.WaitGroup
	stopOnce sync.Once
}

// NewCoordinator builds the coordinator's replicated DB (same
// generator parameters as the shards) and wires the partitioned tables
// to scattered scans against addrs (one per shard, in shard order).
func NewCoordinator(gen tpch.GenConfig, addrs []string, opts Options) *Coordinator {
	return NewCoordinatorDB(tpch.Generate(gen), addrs, opts)
}

// NewCoordinatorDB is NewCoordinator over a pre-built DB — callers that
// stand up many coordinators against the same dataset (fuzzing, bench
// sweeps) skip regenerating it. The DB's partitioned-table sources are
// re-pointed at this coordinator, so only the newest coordinator built
// on a given DB may run queries.
func NewCoordinatorDB(db *tpch.DB, addrs []string, opts Options) *Coordinator {
	opts = opts.withDefaults()
	c := &Coordinator{
		db:       db,
		addrs:    addrs,
		opts:     opts,
		inj:      fault.NewNetInjector(opts.Net),
		counters: metrics.NewCounterSet(),
		breakers: make([]*breakerState, len(addrs)),
		rng:      rand.New(rand.NewSource(opts.Seed)),
		stop:     make(chan struct{}),
	}
	for i := range c.breakers {
		c.breakers[i] = &breakerState{}
	}
	for name := range PartitionedTables {
		c.db.SetSource(name, &distSource{c: c, table: name, schema: c.db.Table(name).Schema})
	}
	if opts.ProbeEvery > 0 {
		c.probeWG.Add(1)
		go c.probeLoop()
	}
	return c
}

// Close stops the health prober.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.probeWG.Wait()
}

// DB exposes the coordinator's local database (replicated small tables
// plus dist-backed partitioned ones).
func (c *Coordinator) DB() *tpch.DB { return c.db }

// Stats snapshots the robustness counters, including injected network
// faults when an injector is armed.
func (c *Coordinator) Stats() map[string]int64 {
	out := c.counters.Snapshot()
	if c.inj != nil {
		out["net_faults_injected"] = int64(c.inj.Count())
	}
	return out
}

// RunQuery executes TPC-H query id against the cluster and returns the
// complete answer, or an error wrapping ErrPartial when some shard
// stayed unreachable. Registered fragments scatter as shard-local
// partial aggregates; everything else scatters the base-table scans and
// runs the unmodified single-process plan on the reassembled rows.
func (c *Coordinator) RunQuery(id int) (t *relal.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*PartialError)
			if !ok {
				panic(r)
			}
			c.counters.Add(cPartials, 1)
			t, err = nil, pe
		}
	}()
	if frag, ok := tpch.Fragments[id]; ok && !c.opts.NoFragments {
		return c.runFragment(frag)
	}
	out, _ := tpch.RunQueryWorkers(id, c.db, c.workers())
	return out, nil
}

func (c *Coordinator) workers() int {
	if c.opts.Workers != 0 {
		return c.opts.Workers
	}
	return tpch.DefaultWorkers
}

// runFragment scatters a registered fragment and merges the partials.
func (c *Coordinator) runFragment(frag tpch.Fragment) (*relal.Table, error) {
	resps, err := c.scatter(Request{Op: OpFragment, FragID: frag.ID})
	if err != nil {
		c.counters.Add(cPartials, 1)
		return nil, err
	}
	parts := make([]*relal.Table, len(resps))
	for i, resp := range resps {
		t, derr := decodeTable(resp, "partial")
		if derr != nil {
			c.counters.Add(cPartials, 1)
			return nil, &PartialError{Shard: i, Err: derr}
		}
		parts[i] = t
	}
	e := &relal.Exec{Parallelism: c.workers()}
	return frag.Merge(e, parts), nil
}

// decodeTable turns a wire response back into a table; the RCF5 decode
// re-verifies every chunk checksum, so a frame that passed the CRC but
// carries damaged columns still cannot reach a plan.
func decodeTable(resp Response, name string) (*relal.Table, error) {
	if resp.Rows == 0 || len(resp.Data) == 0 {
		return relal.NewTable(name, resp.Schema), nil
	}
	src, err := rcfile.NewSourceFromBytes(resp.Data, resp.Schema, name)
	if err != nil {
		return nil, fmt.Errorf("decode shard %d response: %w", resp.Shard, err)
	}
	t, _, err := src.TryScan(nil, nil)
	if err != nil {
		return nil, fmt.Errorf("decode shard %d response: %w", resp.Shard, err)
	}
	return t, nil
}

// scatter fans req out to every shard concurrently and gathers the
// responses in shard order; the first failed shard (lowest index) wins
// the error slot.
func (c *Coordinator) scatter(req Request) ([]Response, error) {
	out := make([]Response, len(c.addrs))
	errs := make([]error, len(c.addrs))
	var wg sync.WaitGroup
	for i := range c.addrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = c.call(i, req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, &PartialError{Shard: i, Err: err}
		}
	}
	return out, nil
}

// call is one logical request: attempts with exponential backoff and
// seeded jitter until success, exhausted budget, or a fail-fast open
// breaker.
func (c *Coordinator) call(i int, req Request) (Response, error) {
	c.counters.Add(cRequests, 1)
	backoff := c.opts.BackoffBase
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.counters.Add(cRetries, 1)
			time.Sleep(backoff + c.jitter(backoff))
			if backoff *= 2; backoff > c.opts.BackoffCap {
				backoff = c.opts.BackoffCap
			}
		}
		if c.opts.FailFast && c.breakerOpen(i) {
			c.counters.Add(cFailFast, 1)
			if lastErr == nil {
				lastErr = errors.New("circuit open")
			}
			return Response{}, fmt.Errorf("dist: shard %d circuit open: %w", i, lastErr)
		}
		resp, err := c.attempt(i, req)
		if err == nil && resp.Err != "" {
			err = errors.New(resp.Err)
		}
		if err == nil {
			c.noteSuccess(i)
			return resp, nil
		}
		lastErr = err
		c.noteFailure(i)
	}
	return Response{}, fmt.Errorf("dist: shard %d: retry budget exhausted: %w", i, lastErr)
}

// jitter returns a seeded random delay of up to half the backoff step.
func (c *Coordinator) jitter(b time.Duration) time.Duration {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return time.Duration(c.rng.Int63n(int64(b)/2 + 1))
}

// attempt is one request/response round trip over a fresh connection
// with a hard deadline, with the network fault injector (if armed)
// deciding each frame's fate.
func (c *Coordinator) attempt(i int, req Request) (Response, error) {
	deadline := time.Now().Add(c.opts.AttemptTimeout)
	req.DeadlineMS = int64(c.opts.AttemptTimeout / time.Millisecond)
	conn, err := net.DialTimeout("tcp", c.addrs[i], c.opts.AttemptTimeout)
	if err != nil {
		return Response{}, err
	}
	defer conn.Close()
	conn.SetDeadline(deadline)
	payload, err := EncodeRequest(req)
	if err != nil {
		return Response{}, err
	}
	if err := c.sendFrame(conn, i, payload); err != nil {
		return Response{}, err
	}
	data, err := c.recvFrame(conn, i)
	if err != nil {
		return Response{}, err
	}
	return DecodeResponse(data)
}

// sendFrame writes the request frame, applying the injected fate of
// the coordinator→shard message.
func (c *Coordinator) sendFrame(conn net.Conn, shard int, payload []byte) error {
	if c.inj == nil {
		return WriteFrame(conn, payload)
	}
	action, delay := c.inj.Next(fmt.Sprintf("coord->shard%d", shard))
	switch action {
	case fault.NetReset:
		conn.Close()
		return errors.New("dist: injected connection reset on send")
	case fault.NetDrop:
		// The shard never sees the request; the response read below
		// blocks until the attempt deadline — the slow-failure mode
		// deadlines exist for.
		return nil
	case fault.NetTruncate:
		// Ship length + half the payload, then hang up: the shard's
		// framed read fails and it drops the connection.
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
		conn.Write(hdr[:])
		conn.Write(payload[:len(payload)/2])
		conn.Close()
		return errors.New("dist: injected truncated request")
	case fault.NetDuplicate:
		if err := WriteFrame(conn, payload); err != nil {
			return err
		}
	case fault.NetDelay:
		time.Sleep(delay)
	}
	return WriteFrame(conn, payload)
}

// recvFrame reads the response frame, applying the injected fate of
// the shard→coordinator message.
func (c *Coordinator) recvFrame(conn net.Conn, shard int) ([]byte, error) {
	if c.inj != nil {
		action, delay := c.inj.Next(fmt.Sprintf("shard%d->coord", shard))
		switch action {
		case fault.NetReset:
			conn.Close()
			return nil, errors.New("dist: injected connection reset on receive")
		case fault.NetDrop:
			return nil, errors.New("dist: injected dropped response")
		case fault.NetTruncate:
			// Receive the real bytes, tear off the tail, and push the
			// torn message through the framed reader — the CRC/length
			// layer must reject it.
			raw, err := readRawFrame(conn)
			if err != nil {
				return nil, err
			}
			torn := raw[:len(raw)-len(raw)/4-1]
			if _, err := ReadFrame(bytes.NewReader(torn)); err != nil {
				return nil, fmt.Errorf("dist: injected torn response rejected: %w", err)
			}
			return nil, errors.New("dist: injected torn response escaped the CRC check")
		case fault.NetDuplicate:
			// Duplicate delivery of a response is benign: the extra
			// copy dies with the connection.
		case fault.NetDelay:
			time.Sleep(delay)
		}
	}
	return ReadFrame(conn)
}

// readRawFrame reads one frame's bytes (header, payload, CRC) without
// validating the checksum — the injector's raw material for tearing.
func readRawFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("dist: frame length %d exceeds limit", n)
	}
	raw := make([]byte, 4+n+4)
	copy(raw, hdr[:])
	if _, err := io.ReadFull(r, raw[4:]); err != nil {
		return nil, err
	}
	return raw, nil
}

func (c *Coordinator) breakerOpen(i int) bool {
	b := c.breakers[i]
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

func (c *Coordinator) noteFailure(i int) {
	b := c.breakers[i]
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.fails >= c.opts.BreakerAfter && !b.open {
		b.open = true
		c.counters.Add(cBreakerTrips, 1)
	}
}

func (c *Coordinator) noteSuccess(i int) {
	b := c.breakers[i]
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.open {
		b.open = false
		c.counters.Add(cBreakerCloses, 1)
	}
}

// probeLoop health-checks shards whose breaker is open and closes the
// breaker on a successful probe, restoring fail-fast shards to service
// without waiting for a query to gamble on them.
func (c *Coordinator) probeLoop() {
	defer c.probeWG.Done()
	ticker := time.NewTicker(c.opts.ProbeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			for i := range c.addrs {
				if c.breakerOpen(i) && c.probe(i) == nil {
					c.noteSuccess(i)
				}
			}
		}
	}
}

// probe is one injector-free health round trip: probes must not
// consume fault-schedule frames, or background timing would change
// which data-plane frames get faulted.
func (c *Coordinator) probe(i int) error {
	conn, err := net.DialTimeout("tcp", c.addrs[i], c.opts.AttemptTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(c.opts.AttemptTimeout))
	payload, err := EncodeRequest(Request{Op: OpHealth})
	if err != nil {
		return err
	}
	if err := WriteFrame(conn, payload); err != nil {
		return err
	}
	data, err := ReadFrame(conn)
	if err != nil {
		return err
	}
	resp, err := DecodeResponse(data)
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// Health runs one health round trip against shard i (injector-free)
// and returns its delta-log positions.
func (c *Coordinator) Health(i int) (map[string]int64, error) {
	conn, err := net.DialTimeout("tcp", c.addrs[i], c.opts.AttemptTimeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(c.opts.AttemptTimeout))
	payload, err := EncodeRequest(Request{Op: OpHealth})
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(conn, payload); err != nil {
		return nil, err
	}
	data, err := ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	resp, err := DecodeResponse(data)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp.NextPos, nil
}

// distSource is the relal.Source a partitioned table scans through on
// the coordinator: scatter the (column, predicate) request, decode each
// shard's surviving rows, and splice them back into global row order on
// the hidden position column. Pruning stays conservative (a shard may
// return rows its groups couldn't rule out) and plans re-apply their
// exact filters, so the reassembled scan is answer-equivalent to the
// local one. relal.Source has no error channel — a failed gather panics
// a *PartialError that Coordinator.RunQuery recovers into a typed
// error.
type distSource struct {
	c      *Coordinator
	table  string
	schema relal.Schema
}

func (d *distSource) SrcName() string { return d.table }

func (d *distSource) SrcSchema() relal.Schema { return d.schema }

func (d *distSource) ScanTable(cols []string, pred relal.ZonePredicate) (*relal.Table, relal.ScanStats) {
	reqCols := cols
	if len(cols) > 0 {
		reqCols = append(append(make([]string, 0, len(cols)+1), cols...), PosCol)
	}
	resps, err := d.c.scatter(Request{Op: OpScan, Table: d.table, Cols: reqCols, Pred: pred})
	if err != nil {
		panic(err)
	}
	var stats relal.ScanStats
	var schema relal.Schema
	parts := make([]*relal.Table, 0, len(resps))
	for i, resp := range resps {
		addStats(&stats, resp.Stats)
		if schema == nil {
			schema = resp.Schema
		}
		t, derr := decodeTable(resp, d.table)
		if derr != nil {
			panic(&PartialError{Shard: i, Err: derr})
		}
		parts = append(parts, t)
	}
	e := &relal.Exec{Parallelism: 1}
	merged := relal.Concat(d.table, schema, parts...)
	ordered := e.Sort(merged, relal.OrderSpec{Col: PosCol})
	keep := make([]string, 0, len(schema)-1)
	for _, col := range schema {
		if col.Name != PosCol {
			keep = append(keep, col.Name)
		}
	}
	out := e.Project(ordered, keep...).Compacted()
	out.Name = d.table
	return out, stats
}

// addStats accumulates per-shard scan accounting into the gather's
// totals.
func addStats(dst *relal.ScanStats, s relal.ScanStats) {
	dst.BytesRead += s.BytesRead
	dst.BytesSkipped += s.BytesSkipped
	dst.BytesFromCache += s.BytesFromCache
	dst.GroupsRead += s.GroupsRead
	dst.GroupsSkipped += s.GroupsSkipped
	dst.CacheHits += s.CacheHits
	dst.CacheMisses += s.CacheMisses
	dst.CorruptChunks += s.CorruptChunks
}
