package dist

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"elephants/internal/fault"
	"elephants/internal/tpch"
)

const goldenSF = 0.005

func goldenGen() tpch.GenConfig {
	return tpch.GenConfig{SF: goldenSF, Seed: 1, Random64: true}
}

func readGolden(t *testing.T) string {
	t.Helper()
	want, err := os.ReadFile("../tpch/testdata/tpch_golden.txt")
	if err != nil {
		t.Skipf("golden file missing: %v", err)
	}
	return string(want)
}

// goldenBlock cuts one query's answer block out of the golden snapshot.
func goldenBlock(golden string, id int) string {
	marker := fmt.Sprintf("== Q%d rows=", id)
	start := strings.Index(golden, marker)
	if start < 0 {
		return ""
	}
	end := strings.Index(golden[start+len(marker):], "== Q")
	if end < 0 {
		return golden[start:]
	}
	return golden[start : start+len(marker)+end]
}

func diffSnapshot(t *testing.T, got, want string) {
	t.Helper()
	if got == want {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("answer drift at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("answer drift: got %d lines, want %d", len(gl), len(wl))
}

// startLocalShards runs n in-memory shard servers inside this process
// (real TCP, no child processes) and returns their addresses.
func startLocalShards(t *testing.T, n int) []string {
	t.Helper()
	gen := goldenGen()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		s, err := StartShard(ShardConfig{
			Shards: n, Index: i,
			SF: gen.SF, Seed: gen.Seed, Random64: gen.Random64,
		})
		if err != nil {
			t.Fatalf("start shard %d/%d: %v", i, n, err)
		}
		t.Cleanup(func() { s.Close() })
		addrs[i] = s.Addr()
	}
	return addrs
}

func coordAnswers(t *testing.T, c *Coordinator) string {
	t.Helper()
	var b strings.Builder
	for _, q := range tpch.Queries {
		out, err := c.RunQuery(q.ID)
		if err != nil {
			t.Fatalf("Q%d: %v", q.ID, err)
		}
		b.WriteString(tpch.FormatAnswer(q.ID, out))
	}
	return b.String()
}

// TestDistGoldenShards is the tentpole's exactness proof: all 22
// answers byte-identical to the single-process golden snapshot at
// shard counts 1, 2, and 4.
func TestDistGoldenShards(t *testing.T) {
	want := readGolden(t)
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			addrs := startLocalShards(t, n)
			c := NewCoordinator(goldenGen(), addrs, Options{})
			defer c.Close()
			diffSnapshot(t, coordAnswers(t, c), want)
			if got := c.Stats()[cRequests]; got == 0 {
				t.Fatalf("no scatter requests recorded")
			}
		})
	}
}

// TestDistFragmentsMatchScatterScan runs the fragment queries through
// both distributed paths — shard-local partial aggregates and scattered
// base-table scans — and requires both byte-identical to the golden.
func TestDistFragmentsMatchScatterScan(t *testing.T) {
	want := readGolden(t)
	addrs := startLocalShards(t, 2)
	for _, noFrag := range []bool{false, true} {
		c := NewCoordinator(goldenGen(), addrs, Options{NoFragments: noFrag})
		for id := range tpch.Fragments {
			out, err := c.RunQuery(id)
			if err != nil {
				t.Fatalf("noFrag=%v Q%d: %v", noFrag, id, err)
			}
			got := tpch.FormatAnswer(id, out)
			if got != goldenBlock(want, id) {
				t.Fatalf("noFrag=%v Q%d drifted:\n%s", noFrag, id, got)
			}
		}
		c.Close()
	}
}

// attemptTimeout widens a test's per-attempt deadline under the race
// detector, whose instrumentation makes a full-scan response look like
// a dead peer at the non-race budget.
func attemptTimeout(d time.Duration) time.Duration {
	if raceEnabled {
		return 10 * d
	}
	return d
}

// TestDistGoldenUnderNetFaults pins all 22 answers while every fault
// the injector knows — drops, resets, torn frames, duplicates, delays —
// hits the wire, and requires the retry layer to have actually worked
// for a living (injected faults and retries both nonzero).
func TestDistGoldenUnderNetFaults(t *testing.T) {
	want := readGolden(t)
	addrs := startLocalShards(t, 2)
	c := NewCoordinator(goldenGen(), addrs, Options{
		AttemptTimeout: attemptTimeout(300 * time.Millisecond),
		MaxAttempts:    14,
		BackoffBase:    2 * time.Millisecond,
		BackoffCap:     20 * time.Millisecond,
		Seed:           7,
		Net: fault.NetSchedule{
			Seed:     42,
			DropNth:  11,
			TruncNth: 9,
			DupNth:   6,
			ResetNth: 13,
			DelayNth: 5,
			Delay:    2 * time.Millisecond,
		},
	})
	defer c.Close()
	diffSnapshot(t, coordAnswers(t, c), want)
	stats := c.Stats()
	if stats["net_faults_injected"] == 0 {
		t.Fatalf("fault schedule injected nothing: %v", stats)
	}
	if stats[cRetries] == 0 {
		t.Fatalf("faults injected but no retries recorded: %v", stats)
	}
}

// TestDistDeadShardFailFast kills a shard and requires the fail-fast
// path to return a typed ErrPartial — never rows — then restarts the
// shard and requires the health prober to close the breaker and the
// same query to produce the exact golden answer again.
func TestDistDeadShardFailFast(t *testing.T) {
	want := readGolden(t)
	gen := goldenGen()
	const n = 2
	addrs := make([]string, n)
	shards := make([]*Shard, n)
	for i := 0; i < n; i++ {
		s, err := StartShard(ShardConfig{Shards: n, Index: i, SF: gen.SF, Seed: gen.Seed, Random64: gen.Random64})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		shards[i] = s
		addrs[i] = s.Addr()
	}
	c := NewCoordinator(gen, addrs, Options{
		AttemptTimeout: attemptTimeout(200 * time.Millisecond),
		MaxAttempts:    3,
		BackoffBase:    2 * time.Millisecond,
		BackoffCap:     10 * time.Millisecond,
		BreakerAfter:   2,
		FailFast:       true,
		ProbeEvery:     5 * time.Millisecond,
	})
	defer c.Close()

	if got, err := c.RunQuery(6); err != nil {
		t.Fatalf("healthy cluster: %v", err)
	} else if s := tpch.FormatAnswer(6, got); s != goldenBlock(want, 6) {
		t.Fatalf("healthy cluster drifted:\n%s", s)
	}

	port := shards[1].Port()
	shards[1].Close()
	var sawPartial bool
	for i := 0; i < 3; i++ {
		out, err := c.RunQuery(6)
		if err == nil {
			t.Fatalf("query against dead shard returned rows")
		}
		if !errors.Is(err, ErrPartial) {
			t.Fatalf("want ErrPartial, got %v", err)
		}
		var pe *PartialError
		if !errors.As(err, &pe) || pe.Shard != 1 {
			t.Fatalf("want PartialError for shard 1, got %v", err)
		}
		if out != nil {
			t.Fatalf("partial error carried a table")
		}
		sawPartial = true
	}
	if !sawPartial || c.Stats()[cBreakerTrips] == 0 {
		t.Fatalf("breaker never tripped: %v", c.Stats())
	}

	restarted, err := StartShard(ShardConfig{Shards: n, Index: 1, SF: gen.SF, Seed: gen.Seed, Random64: gen.Random64, Port: port})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { restarted.Close() })

	deadline := time.Now().Add(30 * time.Second)
	for {
		out, err := c.RunQuery(6)
		if err == nil {
			if s := tpch.FormatAnswer(6, out); s != goldenBlock(want, 6) {
				t.Fatalf("post-restart drift:\n%s", s)
			}
			break
		}
		if !errors.Is(err, ErrPartial) {
			t.Fatalf("unexpected error class: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after restart: %v", c.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if c.Stats()[cBreakerCloses] == 0 {
		t.Fatalf("breaker close not recorded: %v", c.Stats())
	}
}

// TestDistRetryToSuccess holds a query across a shard outage without
// fail-fast: the retry/backoff loop alone must carry it to the exact
// answer once the shard comes back.
func TestDistRetryToSuccess(t *testing.T) {
	want := readGolden(t)
	gen := goldenGen()
	const n = 2
	addrs := make([]string, n)
	shards := make([]*Shard, n)
	for i := 0; i < n; i++ {
		s, err := StartShard(ShardConfig{Shards: n, Index: i, SF: gen.SF, Seed: gen.Seed, Random64: gen.Random64})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		shards[i] = s
		addrs[i] = s.Addr()
	}
	c := NewCoordinator(gen, addrs, Options{
		AttemptTimeout: attemptTimeout(200 * time.Millisecond),
		MaxAttempts:    150,
		BackoffBase:    5 * time.Millisecond,
		BackoffCap:     50 * time.Millisecond,
		ProbeEvery:     -1,
	})
	defer c.Close()

	port := shards[0].Port()
	shards[0].Close()
	restarted := make(chan *Shard, 1)
	go func() {
		time.Sleep(300 * time.Millisecond)
		s, err := StartShard(ShardConfig{Shards: n, Index: 0, SF: gen.SF, Seed: gen.Seed, Random64: gen.Random64, Port: port})
		if err != nil {
			s = nil
		}
		restarted <- s
	}()
	defer func() {
		if s := <-restarted; s != nil {
			s.Close()
		}
	}()
	out, err := c.RunQuery(12)
	if err != nil {
		t.Fatalf("retry-to-success failed: %v (stats %v)", err, c.Stats())
	}
	if s := tpch.FormatAnswer(12, out); s != goldenBlock(want, 12) {
		t.Fatalf("post-outage drift:\n%s", s)
	}
	if c.Stats()[cRetries] == 0 {
		t.Fatalf("outage survived without retries? %v", c.Stats())
	}
}

// TestDistWireFrames covers the framing layer's rejection paths.
func TestDistWireFrames(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("scatter gather")
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	whole := append([]byte(nil), buf.Bytes()...)
	got, err := ReadFrame(bytes.NewReader(whole))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %q %v", got, err)
	}
	for cut := 1; cut < len(whole); cut++ {
		if _, err := ReadFrame(bytes.NewReader(whole[:cut])); err == nil {
			t.Fatalf("torn frame at %d accepted", cut)
		}
	}
	for i := 4; i < len(whole); i++ {
		damaged := append([]byte(nil), whole...)
		damaged[i] ^= 0x40
		if _, err := ReadFrame(bytes.NewReader(damaged)); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(huge)); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversize frame: %v", err)
	}
}

// TestDistHealthPositions checks the probe op reports the delta-log
// positions recovery completeness is asserted with.
func TestDistHealthPositions(t *testing.T) {
	addrs := startLocalShards(t, 1)
	c := NewCoordinator(goldenGen(), addrs, Options{ProbeEvery: -1})
	defer c.Close()
	pos, err := c.Health(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{"orders", "lineitem"} {
		if pos[table] == 0 {
			t.Fatalf("shard reports no appended rows for %s: %v", table, pos)
		}
	}
}
