package dist

import (
	"errors"
	"sync"
	"testing"
	"time"

	"elephants/internal/fault"
	"elephants/internal/tpch"
)

// Shared fixture for the fuzz harness: two in-memory shards plus one
// coordinator DB, built once per process. Each fuzz input only needs a
// fresh Coordinator (its own injector seed) — regenerating the dataset
// per input would drown the fuzzing loop in setup.
var (
	fuzzOnce  sync.Once
	fuzzAddrs []string
	fuzzDB    *tpch.DB
	fuzzQ6    string
	fuzzQ12   string
	fuzzErr   error
)

func fuzzSetup() {
	gen := goldenGen()
	const n = 2
	fuzzAddrs = make([]string, n)
	for i := 0; i < n; i++ {
		s, err := StartShard(ShardConfig{Shards: n, Index: i, SF: gen.SF, Seed: gen.Seed, Random64: gen.Random64})
		if err != nil {
			fuzzErr = err
			return
		}
		fuzzAddrs[i] = s.Addr()
	}
	fuzzDB = tpch.Generate(gen)
	out, _ := tpch.RunQuery(6, fuzzDB)
	fuzzQ6 = tpch.FormatAnswer(6, out)
	out, _ = tpch.RunQuery(12, fuzzDB)
	fuzzQ12 = tpch.FormatAnswer(12, out)
}

// FuzzNetFault drives the scatter/gather path under seed-derived
// network fault schedules and enforces the robustness contract on
// every input: a query returns either the exact single-process answer
// or an error wrapping ErrPartial — wrong rows are an instant crash.
func FuzzNetFault(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Add(int64(1 << 40))
	f.Fuzz(func(t *testing.T, seed int64) {
		fuzzOnce.Do(fuzzSetup)
		if fuzzErr != nil {
			t.Fatal(fuzzErr)
		}
		c := NewCoordinatorDB(fuzzDB, fuzzAddrs, Options{
			AttemptTimeout: 150 * time.Millisecond,
			MaxAttempts:    5,
			BackoffBase:    time.Millisecond,
			BackoffCap:     5 * time.Millisecond,
			Seed:           seed,
			ProbeEvery:     -1,
			Net: fault.NetSchedule{
				Seed:     seed,
				DropNth:  6,
				TruncNth: 5,
				DupNth:   4,
				ResetNth: 7,
				DelayNth: 3,
				Delay:    time.Millisecond,
			},
		})
		defer c.Close()
		for id, want := range map[int]string{6: fuzzQ6, 12: fuzzQ12} {
			out, err := c.RunQuery(id)
			if err != nil {
				if !errors.Is(err, ErrPartial) {
					t.Fatalf("seed %d Q%d: untyped failure: %v", seed, id, err)
				}
				continue
			}
			if got := tpch.FormatAnswer(id, out); got != want {
				t.Fatalf("seed %d Q%d: wrong rows under faults:\n got: %s\nwant: %s", seed, id, got, want)
			}
		}
	})
}
