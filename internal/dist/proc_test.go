package dist

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"elephants/internal/tpch"
)

// TestMain lets this test binary double as the shard executable: when
// the cluster spawns os.Args[0] with ShardEnv set, the child serves a
// shard instead of running the test suite.
func TestMain(m *testing.M) {
	if MaybeShardMain() {
		return
	}
	os.Exit(m.Run())
}

// TestDistKillRestartMidStream is the crash-matrix test the tentpole
// demands, against real OS processes: run a query stream against two
// durable shard processes, SIGKILL one mid-stream, restart it on the
// same port and data dir (htap.Open replays its delta log), and
// require every answer in the stream — including those issued during
// the outage — byte-identical to the golden snapshot. The delta-log
// positions after recovery must match the pre-kill ones exactly.
func TestDistKillRestartMidStream(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns shard processes")
	}
	want := readGolden(t)
	gen := goldenGen()
	const n = 2
	base := t.TempDir()
	cfgs := make([]ShardConfig, n)
	for i := range cfgs {
		cfgs[i] = ShardConfig{
			Shards: n, Index: i,
			SF: gen.SF, Seed: gen.Seed, Random64: gen.Random64,
			DataDir: filepath.Join(base, "shard", string(rune('0'+i))),
			Sync:    "always",
		}
	}
	cl, err := StartCluster(os.Args[0], cfgs)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Attempt timeouts are generous: the shard children inherit this
	// binary's instrumentation (-race), so a full-table scan response
	// can take seconds. Outage retries stay fast regardless — dialing a
	// dead port fails immediately, so only the backoff paces them.
	c := NewCoordinator(gen, cl.Addrs(), Options{
		AttemptTimeout: 15 * time.Second,
		MaxAttempts:    80,
		BackoffBase:    10 * time.Millisecond,
		BackoffCap:     250 * time.Millisecond,
		ProbeEvery:     -1,
	})
	defer c.Close()

	prePos, err := c.Health(1)
	if err != nil {
		t.Fatalf("pre-kill health: %v", err)
	}

	restartDone := make(chan error, 1)
	var got strings.Builder
	for qi, q := range tpch.Queries {
		if qi == 3 {
			// Mid-stream: hard-kill shard 1 and bring it back
			// concurrently with the continuing stream. Queries issued
			// during the outage must ride the retry loop to the exact
			// answer once replay finishes.
			if err := cl.Kill(1); err != nil {
				t.Fatal(err)
			}
			go func() {
				time.Sleep(200 * time.Millisecond)
				restartDone <- cl.Restart(1)
			}()
		}
		out, err := c.RunQuery(q.ID)
		if err != nil {
			t.Fatalf("Q%d during stream: %v (stats %v)", q.ID, err, c.Stats())
		}
		got.WriteString(tpch.FormatAnswer(q.ID, out))
	}
	if err := <-restartDone; err != nil {
		t.Fatalf("restart: %v", err)
	}
	diffSnapshot(t, got.String(), want)

	if c.Stats()[cRetries] == 0 {
		t.Fatalf("stream survived a kill without retries? %v", c.Stats())
	}
	postPos, err := c.Health(1)
	if err != nil {
		t.Fatalf("post-restart health: %v", err)
	}
	for table, pos := range prePos {
		if postPos[table] != pos {
			t.Fatalf("delta-log position drift after replay: %s %d -> %d", table, pos, postPos[table])
		}
	}
}

// TestDistProcessOutageTyped checks the other contract leg against
// real processes: with a tight retry budget and no restart, a query
// over the dead shard fails with a typed ErrPartial, never rows.
func TestDistProcessOutageTyped(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns shard processes")
	}
	gen := goldenGen()
	cfgs := []ShardConfig{{
		Shards: 1, Index: 0,
		SF: gen.SF, Seed: gen.Seed, Random64: gen.Random64,
		DataDir: filepath.Join(t.TempDir(), "s0"),
	}}
	cl, err := StartCluster(os.Args[0], cfgs)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c := NewCoordinator(gen, cl.Addrs(), Options{
		AttemptTimeout: 200 * time.Millisecond,
		MaxAttempts:    2,
		BackoffBase:    2 * time.Millisecond,
		BackoffCap:     10 * time.Millisecond,
		ProbeEvery:     -1,
	})
	defer c.Close()
	if err := cl.Kill(0); err != nil {
		t.Fatal(err)
	}
	out, err := c.RunQuery(6)
	if err == nil || !errors.Is(err, ErrPartial) {
		t.Fatalf("want ErrPartial, got table=%v err=%v", out != nil, err)
	}
}
