//go:build race

package dist

// raceEnabled lets timing-sensitive tests widen per-attempt deadlines:
// race instrumentation slows a full-table scan response by an order of
// magnitude, which would otherwise read as a network timeout.
const raceEnabled = true
