package dist

import (
	"fmt"
	"net"
	"sync"
	"time"

	"elephants/internal/delta"
	"elephants/internal/fault"
	"elephants/internal/htap"
	"elephants/internal/rcfile"
	"elephants/internal/relal"
	"elephants/internal/shard"
	"elephants/internal/tpch"
)

// PosCol is the hidden global-row-position column every partitioned
// table carries: row i of the unpartitioned table keeps position i into
// whichever shard it hashes to, so the coordinator can reassemble
// scattered scan results in exactly the original row order and the
// single-process plans replay byte-identically on top.
const PosCol = "_pos"

// PartitionedTables are the tables hash-partitioned by orderkey; their
// scans scatter. Everything else is small enough to replicate onto the
// coordinator and scan locally (the paper's PDW does the same with its
// replicated dimension tables).
var PartitionedTables = map[string]string{
	"orders":   "o_orderkey",
	"lineitem": "l_orderkey",
}

// ShardConfig describes one shard process. It round-trips through JSON
// so a child process can be handed its identity in an env var.
type ShardConfig struct {
	// Shards and Index place this process in the hash ring.
	Shards int
	Index  int
	// SF, Seed, Random64 pin the generated dataset; every shard (and
	// the coordinator) must agree on them.
	SF       float64
	Seed     int64
	Random64 bool
	// Port pins the listen port (0 = ephemeral). A restarting shard is
	// given its old port so retrying coordinators reconnect unchanged.
	Port int
	// DataDir, when set, holds the shard's durable delta log and RCF5
	// part files; a restart replays them via htap.Open. Empty runs the
	// store in memory (tests that only need the wire path).
	DataDir string
	// Hold is the per-table count of trailing partition rows routed
	// through the delta log instead of the base part (nil = defaults),
	// so every shard exercises the log/replay path it recovers with.
	Hold map[string]int
	// Sync is the delta-log fsync policy ("" = always: each acked row
	// is durable, so a kill at any instant loses nothing acked).
	Sync string
	// GroupRows is the RCF5 row-group size (0 = htap default).
	GroupRows int
	// Workers sizes fragment execution (0 = tpch.DefaultWorkers).
	Workers int
}

// BuildShardDB generates the full dataset and replaces the partitioned
// tables with this shard's hash partition, each row tagged with its
// global position. Every process computes identical placement, so the
// shards form an exact disjoint cover of the original rows.
func BuildShardDB(cfg ShardConfig) *tpch.DB {
	db := tpch.Generate(tpch.GenConfig{SF: cfg.SF, Seed: cfg.Seed, Random64: cfg.Random64})
	router := shard.NewHashShards(cfg.Shards)
	e := &relal.Exec{Parallelism: 1}
	for name, keyCol := range PartitionedTables {
		full := db.Table(name)
		withPos := e.ExtendInt(full, PosCol, func(i int) int64 { return int64(i) })
		key := withPos.IntCol(keyCol)
		part := e.Filter(withPos, func(i int) bool {
			return router.ShardForInt(key.Get(i)) == cfg.Index
		}).Compacted()
		part.Name = name
		switch name {
		case "orders":
			db.Orders = part
		case "lineitem":
			db.Lineitem = part
		}
	}
	return db
}

// defaultHold routes a few hundred trailing rows of each partition
// through the delta log, clamped so small partitions stay legal.
func defaultHold(db *tpch.DB) map[string]int {
	hold := make(map[string]int)
	for name, want := range map[string]int{"orders": 150, "lineitem": 300} {
		if n := db.Table(name).NumRows(); n/2 < want {
			want = n / 2
		}
		if want > 0 {
			hold[name] = want
		}
	}
	return hold
}

// Shard is one running shard server (in-process or the body of a shard
// OS process).
type Shard struct {
	cfg   ShardConfig
	db    *tpch.DB
	store *htap.Store
	ln    net.Listener

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// StartShard builds the shard's partition, opens (and if needed
// recovers) its htap store, replays/append-fills the held rows, and
// starts serving. The returned shard is fully caught up: every query
// it answers sees the complete partition.
func StartShard(cfg ShardConfig) (*Shard, error) {
	if cfg.Shards < 1 || cfg.Index < 0 || cfg.Index >= cfg.Shards {
		return nil, fmt.Errorf("dist: bad shard placement %d/%d", cfg.Index, cfg.Shards)
	}
	db := BuildShardDB(cfg)
	hold := cfg.Hold
	if hold == nil {
		hold = defaultHold(db)
	}
	pol, err := delta.ParseSyncPolicy(syncOrDefault(cfg.Sync))
	if err != nil {
		return nil, err
	}
	hcfg := htap.Config{Window: -1, RCFile: true, GroupRows: cfg.GroupRows, Sync: pol}
	if cfg.DataDir != "" {
		fs, err := fault.NewDirFS(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		hcfg.FS = fs
	}
	store, err := htap.Open(db, hold, hcfg)
	if err != nil {
		return nil, fmt.Errorf("dist: open shard %d store: %w", cfg.Index, err)
	}
	// Re-append only the held rows the recovered log does not already
	// cover — on a fresh boot that is all of them, after a crash only
	// the unacked tail.
	next := make(map[string]int64, len(hold))
	for name := range hold {
		next[name] = store.NextPos(name)
	}
	for _, r := range store.HeldRecords() {
		if r.Pos < next[r.Table] {
			continue
		}
		if _, err := store.AppendRecord(r); err != nil {
			store.Close()
			return nil, fmt.Errorf("dist: shard %d append %s@%d: %w", cfg.Index, r.Table, r.Pos, err)
		}
	}
	if err := store.Quiesce(); err != nil {
		store.Close()
		return nil, err
	}
	if err := store.ConvertAll(); err != nil {
		store.Close()
		return nil, err
	}
	// A restarting shard re-binds its pinned port; give the kernel a
	// moment to release the dead incarnation's socket.
	var ln net.Listener
	for attempt := 0; ; attempt++ {
		ln, err = net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", cfg.Port))
		if err == nil {
			break
		}
		if cfg.Port == 0 || attempt >= 40 {
			store.Close()
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
	s := &Shard{cfg: cfg, db: db, store: store, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

func syncOrDefault(s string) string {
	if s == "" {
		return "always"
	}
	return s
}

// Addr returns the shard's listen address.
func (s *Shard) Addr() string { return s.ln.Addr().String() }

// Port returns the shard's listen port.
func (s *Shard) Port() int { return s.ln.Addr().(*net.TCPAddr).Port }

// Store exposes the shard's htap store (stats, positions).
func (s *Shard) Store() *htap.Store { return s.store }

// Close stops serving and closes the store.
func (s *Shard) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
	return s.store.Close()
}

func (s *Shard) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// handleConn serves framed requests until the peer goes away or sends
// garbage. Any read error — EOF, torn frame, bad checksum, deadline —
// just drops the connection; the coordinator's retry layer owns
// recovery, the shard never trusts a damaged frame.
func (s *Shard) handleConn(conn net.Conn) {
	defer conn.Close()
	for {
		// A fresh request gets a generous baseline deadline so a dead
		// peer can't pin the goroutine; the request's own budget
		// tightens it below.
		conn.SetDeadline(time.Now().Add(time.Minute))
		payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		req, err := DecodeRequest(payload)
		if err != nil {
			return
		}
		if req.DeadlineMS > 0 {
			conn.SetDeadline(time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond))
		}
		resp := s.handle(req)
		out, err := EncodeResponse(resp)
		if err != nil {
			out, _ = EncodeResponse(Response{Shard: s.cfg.Index, Err: err.Error()})
		}
		if err := WriteFrame(conn, out); err != nil {
			return
		}
	}
}

// handle dispatches one request. Shard-side panics (corrupt source,
// schema misuse) become typed wire errors instead of killing the
// process — a shard must degrade to "this request failed", not die.
func (s *Shard) handle(req Request) (resp Response) {
	defer func() {
		if r := recover(); r != nil {
			resp = Response{Shard: s.cfg.Index, Err: fmt.Sprintf("shard %d: %v", s.cfg.Index, r)}
		}
	}()
	switch req.Op {
	case OpScan:
		return s.handleScan(req)
	case OpFragment:
		return s.handleFragment(req)
	case OpHealth:
		next := make(map[string]int64)
		for name := range PartitionedTables {
			next[name] = s.store.NextPos(name)
		}
		return Response{Shard: s.cfg.Index, NextPos: next}
	}
	return Response{Shard: s.cfg.Index, Err: fmt.Sprintf("unknown op %d", req.Op)}
}

func (s *Shard) handleScan(req Request) Response {
	t, stats := s.db.Src(req.Table).ScanTable(req.Cols, req.Pred)
	return s.tableResponse(t, stats)
}

func (s *Shard) handleFragment(req Request) Response {
	frag, ok := tpch.Fragments[req.FragID]
	if !ok {
		return Response{Shard: s.cfg.Index, Err: fmt.Sprintf("unknown fragment %d", req.FragID)}
	}
	workers := s.cfg.Workers
	if workers == 0 {
		workers = tpch.DefaultWorkers
	}
	e := &relal.Exec{Parallelism: workers}
	part := frag.Partial(e, s.db)
	return s.tableResponse(part, relal.ScanStats{})
}

// tableResponse ships a result table as RCF5 bytes — the same encoder
// the shard's own parts use, so the wire format inherits the per-chunk
// checksums and the coordinator's decoder verifies them end to end.
func (s *Shard) tableResponse(t *relal.Table, stats relal.ScanStats) Response {
	resp := Response{Shard: s.cfg.Index, Schema: t.Schema, Rows: t.NumRows(), Stats: stats}
	if resp.Rows == 0 {
		return resp
	}
	data, err := rcfile.NewWriterOpts(s.cfg.GroupRows, rcfile.WriterOpts{}).Write(t)
	if err != nil {
		return Response{Shard: s.cfg.Index, Err: fmt.Sprintf("encode %s: %v", t.Name, err)}
	}
	resp.Data = data
	return resp
}
