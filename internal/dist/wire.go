// Package dist is the coordinator/shard execution layer: the paper's
// 16-node PDW and sharded-Mongo clusters shrunk to localhost processes.
// lineitem and orders are hash-partitioned by orderkey into per-process
// RCF5 shards (internal/shard routing, one internal/htap store each);
// the coordinator scatters scans and query fragments over TCP and
// merges the partials deterministically, so all 22 golden answers stay
// byte-identical at any shard count.
//
// Robustness is the contract, not a bolt-on: every fragment carries a
// deadline in the wire protocol, every call retries with exponential
// backoff and seeded jitter, per-shard circuit breakers fail fast while
// health probes watch for recovery, and a query against a dead shard
// either retries to success after the shard restarts (replaying its
// delta log via htap.Open) or returns a typed ErrPartial — never a
// silently wrong answer.
package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"elephants/internal/relal"
)

// Wire ops.
const (
	// OpScan returns the shard's partition of a base table, restricted
	// to the requested columns (plus the hidden _pos position column)
	// with zone-pruned row groups dropped.
	OpScan = iota
	// OpFragment runs a registered tpch.Fragment partial plan on the
	// shard and returns the grouped partial aggregate.
	OpFragment
	// OpHealth is the probe: cheap, no data plane, returns the shard's
	// delta-log positions so callers can assert recovery completeness.
	OpHealth
)

// Request is one coordinator→shard message.
type Request struct {
	Op    int
	Table string
	Cols  []string
	Pred  relal.ZonePredicate
	// FragID selects the tpch.Fragments entry for OpFragment.
	FragID int
	// DeadlineMS is the fragment's remaining time budget in
	// milliseconds; the shard arms its connection deadline with it so a
	// stalled peer can never wedge a shard goroutine past the budget.
	DeadlineMS int64
}

// Response is one shard→coordinator message.
type Response struct {
	// Err, when non-empty, is the shard-side failure; the payload
	// fields are meaningless.
	Err string
	// Shard echoes the responding shard's index.
	Shard int
	// Schema and Rows describe the returned table; Data is its RCF5
	// encoding (nil when Rows is 0 — an empty table round-trips as
	// schema only).
	Schema relal.Schema
	Rows   int
	Data   []byte
	// Stats is the shard-local scan accounting (OpScan only).
	Stats relal.ScanStats
	// NextPos maps held tables to their next delta-log position
	// (OpHealth only) — the recovery-completeness witness.
	NextPos map[string]int64
}

// maxFrame bounds a frame payload; anything larger is a protocol error,
// not a real message (the whole SF-0.005 lineitem encodes to well under
// a megabyte).
const maxFrame = 1 << 28

// WriteFrame writes one length-framed, CRC-trailed message:
// u32 payload length | payload | u32 CRC-32 (IEEE) of the payload —
// the delta log's framing, reused on the wire so a truncated or
// bit-flipped message is detected, never decoded.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(hdr[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(hdr[:])
	return err
}

// ReadFrame reads one frame, verifying length and checksum.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("dist: frame length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(hdr[:]); got != want {
		return nil, fmt.Errorf("dist: frame checksum mismatch: %08x != %08x", got, want)
	}
	return payload, nil
}

// EncodeRequest gob-encodes a request for framing.
func EncodeRequest(req Request) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeRequest inverts EncodeRequest.
func DecodeRequest(data []byte) (Request, error) {
	var req Request
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&req)
	return req, err
}

// EncodeResponse gob-encodes a response for framing.
func EncodeResponse(resp Response) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeResponse inverts EncodeResponse.
func DecodeResponse(data []byte) (Response, error) {
	var resp Response
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&resp)
	return resp, err
}
