// Package docstore implements the MongoDB-1.8-like document store used
// on the YCSB side of the paper: BSON-serialized documents in 32 KB
// extents, a B+tree _id index, a per-process global write lock (one
// writer blocks all other operations), memory-mapped-style residency
// with a periodic background flush, and no durability by default (the
// paper ran MongoDB without journaling).
package docstore

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Field is one key/value pair in a document. Documents preserve field
// order, as BSON does.
type Field struct {
	Key string
	Val Value
}

// Value is a BSON value: string, int64, float64, []byte, or *Doc.
type Value interface{}

// Doc is an ordered BSON document.
type Doc struct {
	Fields []Field
}

// NewDoc returns a document with the given fields.
func NewDoc(fields ...Field) *Doc { return &Doc{Fields: fields} }

// Set appends or replaces a field.
func (d *Doc) Set(key string, val Value) {
	for i := range d.Fields {
		if d.Fields[i].Key == key {
			d.Fields[i].Val = val
			return
		}
	}
	d.Fields = append(d.Fields, Field{Key: key, Val: val})
}

// Get returns the value for key and whether it exists.
func (d *Doc) Get(key string) (Value, bool) {
	for i := range d.Fields {
		if d.Fields[i].Key == key {
			return d.Fields[i].Val, true
		}
	}
	return nil, false
}

// Len returns the number of fields.
func (d *Doc) Len() int { return len(d.Fields) }

// BSON element type tags (subset of the BSON spec).
const (
	tagDouble = 0x01
	tagString = 0x02
	tagDoc    = 0x03
	tagBinary = 0x05
	tagInt64  = 0x12
)

// Marshal encodes the document in BSON wire format:
// int32 total length, elements (tag, cstring name, payload), 0x00.
func Marshal(d *Doc) []byte {
	body := make([]byte, 0, 64)
	for _, f := range d.Fields {
		body = appendElement(body, f.Key, f.Val)
	}
	out := make([]byte, 4, 4+len(body)+1)
	out = append(out, body...)
	out = append(out, 0)
	binary.LittleEndian.PutUint32(out[:4], uint32(len(out)))
	return out
}

func appendElement(b []byte, key string, v Value) []byte {
	switch val := v.(type) {
	case string:
		b = append(b, tagString)
		b = appendCString(b, key)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(val)+1))
		b = append(b, val...)
		b = append(b, 0)
	case int64:
		b = append(b, tagInt64)
		b = appendCString(b, key)
		b = binary.LittleEndian.AppendUint64(b, uint64(val))
	case float64:
		b = append(b, tagDouble)
		b = appendCString(b, key)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(val))
	case []byte:
		b = append(b, tagBinary)
		b = appendCString(b, key)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(val)))
		b = append(b, 0) // generic binary subtype
		b = append(b, val...)
	case *Doc:
		b = append(b, tagDoc)
		b = appendCString(b, key)
		b = append(b, Marshal(val)...)
	default:
		panic(fmt.Sprintf("docstore: unsupported BSON value type %T", v))
	}
	return b
}

func appendCString(b []byte, s string) []byte {
	b = append(b, s...)
	return append(b, 0)
}

// Unmarshal decodes a BSON document produced by Marshal.
func Unmarshal(data []byte) (*Doc, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("docstore: bson too short (%d bytes)", len(data))
	}
	total := int(binary.LittleEndian.Uint32(data[:4]))
	if total != len(data) {
		return nil, fmt.Errorf("docstore: bson length %d != buffer %d", total, len(data))
	}
	if data[len(data)-1] != 0 {
		return nil, fmt.Errorf("docstore: bson missing terminator")
	}
	d := &Doc{}
	pos := 4
	for pos < len(data)-1 {
		tag := data[pos]
		pos++
		key, n, err := readCString(data[pos:])
		if err != nil {
			return nil, err
		}
		pos += n
		var val Value
		switch tag {
		case tagString:
			if pos+4 > len(data) {
				return nil, fmt.Errorf("docstore: truncated string element")
			}
			slen := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
			pos += 4
			if slen < 1 || pos+slen > len(data) {
				return nil, fmt.Errorf("docstore: bad string length %d", slen)
			}
			val = string(data[pos : pos+slen-1])
			pos += slen
		case tagInt64:
			if pos+8 > len(data) {
				return nil, fmt.Errorf("docstore: truncated int64 element")
			}
			val = int64(binary.LittleEndian.Uint64(data[pos : pos+8]))
			pos += 8
		case tagDouble:
			if pos+8 > len(data) {
				return nil, fmt.Errorf("docstore: truncated double element")
			}
			val = math.Float64frombits(binary.LittleEndian.Uint64(data[pos : pos+8]))
			pos += 8
		case tagBinary:
			if pos+5 > len(data) {
				return nil, fmt.Errorf("docstore: truncated binary element")
			}
			blen := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
			pos += 5 // length + subtype
			if blen < 0 || pos+blen > len(data) {
				return nil, fmt.Errorf("docstore: bad binary length %d", blen)
			}
			cp := make([]byte, blen)
			copy(cp, data[pos:pos+blen])
			val = cp
			pos += blen
		case tagDoc:
			if pos+4 > len(data) {
				return nil, fmt.Errorf("docstore: truncated subdocument")
			}
			dlen := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
			if dlen < 5 || pos+dlen > len(data) {
				return nil, fmt.Errorf("docstore: bad subdocument length %d", dlen)
			}
			sub, err := Unmarshal(data[pos : pos+dlen])
			if err != nil {
				return nil, err
			}
			val = sub
			pos += dlen
		default:
			return nil, fmt.Errorf("docstore: unsupported BSON tag 0x%02x", tag)
		}
		d.Fields = append(d.Fields, Field{Key: key, Val: val})
	}
	return d, nil
}

func readCString(b []byte) (string, int, error) {
	for i, c := range b {
		if c == 0 {
			return string(b[:i]), i + 1, nil
		}
	}
	return "", 0, fmt.Errorf("docstore: unterminated cstring")
}
