package docstore

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"elephants/internal/cluster"
	"elephants/internal/sim"
)

func TestBSONRoundTripBasic(t *testing.T) {
	d := NewDoc(
		Field{"_id", "user42"},
		Field{"age", int64(7)},
		Field{"score", 3.5},
		Field{"blob", []byte{1, 2, 3}},
	)
	got, err := Unmarshal(Marshal(d))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Fatalf("fields = %d, want 4", got.Len())
	}
	if v, _ := got.Get("_id"); v.(string) != "user42" {
		t.Errorf("_id = %v", v)
	}
	if v, _ := got.Get("age"); v.(int64) != 7 {
		t.Errorf("age = %v", v)
	}
	if v, _ := got.Get("score"); v.(float64) != 3.5 {
		t.Errorf("score = %v", v)
	}
	if v, _ := got.Get("blob"); !bytes.Equal(v.([]byte), []byte{1, 2, 3}) {
		t.Errorf("blob = %v", v)
	}
}

func TestBSONNestedDoc(t *testing.T) {
	d := NewDoc(Field{"inner", NewDoc(Field{"x", int64(1)})})
	got, err := Unmarshal(Marshal(d))
	if err != nil {
		t.Fatal(err)
	}
	inner, _ := got.Get("inner")
	v, _ := inner.(*Doc).Get("x")
	if v.(int64) != 1 {
		t.Errorf("inner.x = %v", v)
	}
}

func TestBSONPreservesFieldOrder(t *testing.T) {
	d := NewDoc(Field{"z", "1"}, Field{"a", "2"}, Field{"m", "3"})
	got, _ := Unmarshal(Marshal(d))
	order := []string{"z", "a", "m"}
	for i, f := range got.Fields {
		if f.Key != order[i] {
			t.Errorf("field %d = %q, want %q", i, f.Key, order[i])
		}
	}
}

func TestBSONErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil input should fail")
	}
	if _, err := Unmarshal([]byte{9, 0, 0, 0, 1}); err == nil {
		t.Error("bad length should fail")
	}
	good := Marshal(NewDoc(Field{"a", "b"}))
	bad := append([]byte{}, good...)
	bad[len(bad)-1] = 1
	if _, err := Unmarshal(bad); err == nil {
		t.Error("missing terminator should fail")
	}
}

func TestBSONStringRoundTripProperty(t *testing.T) {
	f := func(key0 string, vals []string) bool {
		d := &Doc{}
		for i, v := range vals {
			d.Set(fmt.Sprintf("f%d", i), v)
		}
		got, err := Unmarshal(Marshal(d))
		if err != nil {
			return false
		}
		if got.Len() != d.Len() {
			return false
		}
		for i := range d.Fields {
			if got.Fields[i].Key != d.Fields[i].Key || got.Fields[i].Val != d.Fields[i].Val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDocSetReplaces(t *testing.T) {
	d := NewDoc(Field{"a", "1"})
	d.Set("a", "2")
	if d.Len() != 1 {
		t.Errorf("len = %d, want 1", d.Len())
	}
	if v, _ := d.Get("a"); v.(string) != "2" {
		t.Errorf("a = %v", v)
	}
}

func newTestMongod(cfg Config) (*sim.Sim, *Mongod) {
	s := sim.New()
	cl := cluster.New(s, cluster.Config{Nodes: 1})
	return s, NewMongod(s, cl.Nodes[0], cfg)
}

func ycsbDoc(id string) *Doc {
	d := NewDoc(Field{"_id", id})
	for i := 0; i < 10; i++ {
		d.Set(fmt.Sprintf("field%d", i), string(make([]byte, 100)))
	}
	return d
}

func TestMongodInsertFind(t *testing.T) {
	s, m := newTestMongod(Config{})
	var got *Doc
	var err error
	s.Spawn("c", func(p *sim.Proc) {
		if err = m.Insert(p, ycsbDoc("user1")); err != nil {
			return
		}
		got, err = m.FindByID(p, "user1")
	})
	s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Get("_id"); v.(string) != "user1" {
		t.Errorf("_id = %v", v)
	}
}

func TestMongodDuplicateInsert(t *testing.T) {
	s, m := newTestMongod(Config{})
	var err error
	s.Spawn("c", func(p *sim.Proc) {
		m.Insert(p, ycsbDoc("u"))
		err = m.Insert(p, ycsbDoc("u"))
	})
	s.Run()
	if err == nil {
		t.Error("duplicate insert should fail")
	}
}

func TestMongodMissingID(t *testing.T) {
	s, m := newTestMongod(Config{})
	var err error
	s.Spawn("c", func(p *sim.Proc) {
		err = m.Insert(p, NewDoc(Field{"x", "y"}))
	})
	s.Run()
	if err == nil {
		t.Error("insert without _id should fail")
	}
}

func TestMongodUpdateField(t *testing.T) {
	s, m := newTestMongod(Config{})
	var got *Doc
	s.Spawn("c", func(p *sim.Proc) {
		m.Insert(p, ycsbDoc("u"))
		m.UpdateByID(p, "u", "field3", "updated")
		got, _ = m.FindByID(p, "u")
	})
	s.Run()
	if v, _ := got.Get("field3"); v.(string) != "updated" {
		t.Errorf("field3 = %q", v)
	}
}

func TestMongodUpdateMissing(t *testing.T) {
	s, m := newTestMongod(Config{})
	var err error
	s.Spawn("c", func(p *sim.Proc) {
		err = m.UpdateByID(p, "ghost", "f", "v")
	})
	s.Run()
	if err == nil {
		t.Error("update of missing doc should fail")
	}
}

func TestMongodScanOrdered(t *testing.T) {
	s, m := newTestMongod(Config{})
	for i := 0; i < 30; i++ {
		m.Load(ycsbDoc(fmt.Sprintf("user%03d", i)))
	}
	var docs []*Doc
	s.Spawn("c", func(p *sim.Proc) {
		docs, _ = m.ScanRange(p, "user010", 5)
	})
	s.Run()
	if len(docs) != 5 {
		t.Fatalf("scan returned %d docs, want 5", len(docs))
	}
	if v, _ := docs[0].Get("_id"); v.(string) != "user010" {
		t.Errorf("first _id = %v", v)
	}
}

func TestGlobalWriteLockBlocksReaders(t *testing.T) {
	s, m := newTestMongod(Config{})
	m.Load(ycsbDoc("a"))
	m.Load(ycsbDoc("b"))
	// Warm residency so only the lock matters.
	var readLatency sim.Duration
	s.Spawn("warm", func(p *sim.Proc) {
		m.FindByID(p, "a")
		m.FindByID(p, "b")
	})
	s.Spawn("writer", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		m.globalLock.AcquireWrite(p)
		p.Sleep(200 * sim.Millisecond)
		m.globalLock.ReleaseWrite()
	})
	s.Spawn("reader", func(p *sim.Proc) {
		p.Sleep(sim.Second + sim.Millisecond)
		t0 := p.Now()
		m.FindByID(p, "b") // different document — still blocked (global lock)
		readLatency = sim.Duration(p.Now() - t0)
	})
	s.Run()
	if readLatency < 190*sim.Millisecond {
		t.Errorf("reader latency %v, want >= ~199ms: global write lock must block unrelated reads", readLatency)
	}
}

func TestWriteBusyAccounting(t *testing.T) {
	s, m := newTestMongod(Config{})
	m.Load(ycsbDoc("u"))
	s.Spawn("c", func(p *sim.Proc) {
		m.UpdateByID(p, "u", "field1", "v")
	})
	s.Run()
	if m.GlobalLock().WriteBusy() <= 0 {
		t.Error("global lock write busy time should be positive after an update")
	}
}

func TestJournalAddsCommitLatency(t *testing.T) {
	s, m := newTestMongod(Config{Journal: true})
	m.Load(ycsbDoc("u"))
	var lat sim.Duration
	s.Spawn("c", func(p *sim.Proc) {
		// Warm up residency first.
		m.FindByID(p, "u")
		t0 := p.Now()
		m.UpdateByID(p, "u", "field1", "v")
		lat = sim.Duration(p.Now() - t0)
	})
	s.Run()
	if lat < JournalFlushInterval {
		t.Errorf("journaled update latency %v, want >= %v", lat, JournalFlushInterval)
	}
}

func TestNoJournalIsFaster(t *testing.T) {
	s, m := newTestMongod(Config{})
	m.Load(ycsbDoc("u"))
	var lat sim.Duration
	s.Spawn("c", func(p *sim.Proc) {
		m.FindByID(p, "u")
		t0 := p.Now()
		m.UpdateByID(p, "u", "field1", "v")
		lat = sim.Duration(p.Now() - t0)
	})
	s.Run()
	if lat >= JournalFlushInterval {
		t.Errorf("unjournaled update latency %v, want < %v", lat, JournalFlushInterval)
	}
}

func TestBackgroundFlusherClearsDirty(t *testing.T) {
	s, m := newTestMongod(Config{FlushEvery: sim.Second})
	m.Load(ycsbDoc("u"))
	m.StartBackground()
	s.Spawn("c", func(p *sim.Proc) {
		m.UpdateByID(p, "u", "field1", "v")
		p.Sleep(1500 * sim.Millisecond)
		m.StopBackground()
	})
	s.Run()
	if len(m.dirty) != 0 {
		t.Errorf("dirty extents after flush = %d, want 0", len(m.dirty))
	}
}

func TestColdReadFaults32KB(t *testing.T) {
	s, m := newTestMongod(Config{ResidentExtents: 1})
	for i := 0; i < 200; i++ {
		m.Load(ycsbDoc(fmt.Sprintf("user%04d", i)))
	}
	var lat sim.Duration
	s.Spawn("c", func(p *sim.Proc) {
		t0 := p.Now()
		m.FindByID(p, "user0150")
		lat = sim.Duration(p.Now() - t0)
	})
	s.Run()
	if lat < 6*sim.Millisecond {
		t.Errorf("cold read latency %v, want >= seek time", lat)
	}
}

func TestExtentPacking(t *testing.T) {
	_, m := newTestMongod(Config{})
	// ~1 KB docs: ~30 per 32 KB extent.
	for i := 0; i < 100; i++ {
		m.Load(ycsbDoc(fmt.Sprintf("user%04d", i)))
	}
	if m.numExtents < 2 || m.numExtents > 5 {
		t.Errorf("100×1KB docs used %d extents, want 3±2", m.numExtents)
	}
}
