package docstore

import (
	"elephants/internal/sim"
	"fmt"
	"testing"
)

func TestExportRangeRemovesAndReturns(t *testing.T) {
	_, m := newTestMongod(Config{})
	for i := 0; i < 20; i++ {
		m.Load(ycsbDoc(fmt.Sprintf("user%03d", i)))
	}
	docs := m.ExportRange("user005", "user010")
	if len(docs) != 5 {
		t.Fatalf("exported %d docs, want 5", len(docs))
	}
	if m.Count() != 15 {
		t.Errorf("remaining = %d, want 15", m.Count())
	}
	for _, d := range docs {
		id, _ := d.Get("_id")
		if s := id.(string); s < "user005" || s >= "user010" {
			t.Errorf("exported out-of-range doc %s", s)
		}
	}
}

func TestExportRangeUnbounded(t *testing.T) {
	_, m := newTestMongod(Config{})
	for i := 0; i < 10; i++ {
		m.Load(ycsbDoc(fmt.Sprintf("user%03d", i)))
	}
	docs := m.ExportRange("user005", "")
	if len(docs) != 5 {
		t.Errorf("unbounded export = %d docs, want 5", len(docs))
	}
}

func TestImportDocsRestores(t *testing.T) {
	s, a := newTestMongod(Config{})
	b := NewMongod(s, a.node, Config{})
	for i := 0; i < 10; i++ {
		a.Load(ycsbDoc(fmt.Sprintf("user%03d", i)))
	}
	b.ImportDocs(a.ExportRange("user000", ""))
	if b.Count() != 10 || a.Count() != 0 {
		t.Fatalf("after migration: a=%d b=%d, want 0/10", a.Count(), b.Count())
	}
	// Migrated docs must be readable on the destination.
	var err error
	s.Spawn("r", func(p *sim.Proc) {
		_, err = b.FindByID(p, "user007")
	})
	s.Run()
	if err != nil {
		t.Errorf("read after import: %v", err)
	}
}

func TestKeyAt(t *testing.T) {
	_, m := newTestMongod(Config{})
	for i := 0; i < 10; i++ {
		m.Load(ycsbDoc(fmt.Sprintf("user%03d", i)))
	}
	if k, ok := m.KeyAt("user000", 4); !ok || k != "user004" {
		t.Errorf("KeyAt = %q,%v", k, ok)
	}
	if _, ok := m.KeyAt("user000", 50); ok {
		t.Error("KeyAt past end should report false")
	}
}

func TestDataBytes(t *testing.T) {
	_, m := newTestMongod(Config{})
	m.Load(ycsbDoc("u"))
	if m.DataBytes() < 1000 {
		t.Errorf("data bytes = %d, want >= 1000 (one 1KB doc)", m.DataBytes())
	}
}
