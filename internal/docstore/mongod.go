package docstore

import (
	"fmt"

	"elephants/internal/cluster"
	"elephants/internal/sim"
	"elephants/internal/storage"
)

// ExtentSize is the effective unit MongoDB's memory-mapped storage
// faults in per cold document access. The paper measured MongoDB reading
// ~32 KB from disk per read request (vs SQL Server's 8 KB), wasting
// random-I/O bandwidth on Workload C.
const ExtentSize = 32 * 1024

// Config parameterizes a mongod process.
type Config struct {
	// ResidentExtents caps the number of data extents the OS page cache
	// keeps for this process. Scale with the dataset to preserve the
	// paper's 2.5× dataset-to-memory ratio.
	ResidentExtents int
	// CPUPerOp is core time per operation (BSON handling, dispatch).
	CPUPerOp sim.Duration
	// Journal enables write-ahead journaling with a 100 ms group flush
	// (MongoDB's journal semantics). The paper ran without it.
	Journal bool
	// FlushEvery is the background data-file flush interval (syncdelay;
	// 60 s in MongoDB). 0 disables.
	FlushEvery sim.Duration
}

// DefaultCPUPerOp approximates mongod per-operation CPU cost. It is
// deliberately a bit above the SQL engine's stored-proc cost: the paper
// consistently measured higher MongoDB latency even when disk-bound.
const DefaultCPUPerOp = 500 * sim.Microsecond

// JournalFlushInterval is MongoDB's journal group-commit window.
const JournalFlushInterval = 100 * sim.Millisecond

// Mongod is one MongoDB server process owning one shard's data. Sixteen
// of them run per node in the paper's Mongo-AS configuration.
type Mongod struct {
	s    *sim.Sim
	node *cluster.Node
	cfg  Config

	// globalLock is the per-process global lock: any number of readers,
	// but a writer blocks everything (MongoDB 1.8 semantics).
	globalLock *sim.RWLock

	docs       map[string]*docSlot
	extentOf   map[string]int // _id -> extent number
	index      *storage.BTree // _id index
	extentUsed int64          // bytes used in the current extent
	numExtents int
	resident   *storage.BufferPool // extent residency (32 KB units)
	idxPages   *storage.BufferPool // index page residency (8 KB units)

	journalEnd sim.Time
	dirty      map[int]bool // dirty extents awaiting background flush

	reads, writes, inserts, scans int64
	stopFlusher                   bool
}

type docSlot struct {
	data   []byte
	extent int
}

// NewMongod returns a mongod bound to node.
func NewMongod(s *sim.Sim, node *cluster.Node, cfg Config) *Mongod {
	if cfg.ResidentExtents <= 0 {
		cfg.ResidentExtents = int(node.Memory() / ExtentSize)
	}
	if cfg.CPUPerOp <= 0 {
		cfg.CPUPerOp = DefaultCPUPerOp
	}
	m := &Mongod{
		s:          s,
		node:       node,
		cfg:        cfg,
		globalLock: s.NewRWLock("mongod.global"),
		docs:       make(map[string]*docSlot),
		extentOf:   make(map[string]int),
		index:      storage.NewBTree(storage.DefaultBTreeOrder, nil),
		resident:   storage.NewBufferPool(cfg.ResidentExtents),
		idxPages:   storage.NewBufferPool(cfg.ResidentExtents), // index is small; rarely evicts
		dirty:      make(map[int]bool),
	}
	return m
}

// Node returns the node this process runs on.
func (m *Mongod) Node() *cluster.Node { return m.node }

// GlobalLock exposes the process-global lock for contention reporting
// (the paper reports 25-45 % of time spent in it under Workload A).
func (m *Mongod) GlobalLock() *sim.RWLock { return m.globalLock }

// StartBackground launches the periodic data-file flusher.
func (m *Mongod) StartBackground() {
	if m.cfg.FlushEvery <= 0 {
		return
	}
	m.s.Spawn("mongod-flusher", func(p *sim.Proc) {
		for {
			p.Sleep(m.cfg.FlushEvery)
			if m.stopFlusher {
				return
			}
			m.flush(p)
		}
	})
}

// StopBackground stops the flusher at its next wake-up.
func (m *Mongod) StopBackground() { m.stopFlusher = true }

// flush writes dirty extents back, charging chunked sequential-ish I/O.
func (m *Mongod) flush(p *sim.Proc) {
	n := len(m.dirty)
	if n == 0 {
		return
	}
	m.dirty = make(map[int]bool)
	const extentsPerIO = 16
	remaining := n
	for remaining > 0 {
		chunk := extentsPerIO
		if remaining < chunk {
			chunk = remaining
		}
		m.node.Disk(uint64(remaining)).WriteRand(p, int64(chunk)*ExtentSize)
		remaining -= chunk
	}
}

// touchExtent charges residency for extent access; cold extents fault in
// a full 32 KB unit.
func (m *Mongod) touchExtent(p *sim.Proc, extent int, dirty bool) {
	hit, _, _ := m.resident.Touch(storage.PageID(extent))
	if !hit {
		m.node.Disk(uint64(extent)).ReadRand(p, ExtentSize)
	}
	if dirty {
		m.resident.MarkDirty(storage.PageID(extent))
		m.dirty[extent] = true
	}
}

// touchIndex charges index page accesses (8 KB units).
func (m *Mongod) touchIndex(p *sim.Proc, path []storage.PageID) {
	for _, pg := range path {
		hit, _, _ := m.idxPages.Touch(pg)
		if !hit {
			m.node.Disk(pageSeed(pg)).ReadRand(p, storage.PageSize)
		}
	}
}

func pageSeed(pg storage.PageID) uint64 { return uint64(pg) * 2654435761 }

// journalCommit models the 100 ms-window journal group flush.
func (m *Mongod) journalCommit(p *sim.Proc) {
	if !m.cfg.Journal {
		return
	}
	now := p.Now()
	if m.journalEnd <= now {
		m.journalEnd = now + sim.Time(JournalFlushInterval)
	}
	p.Sleep(sim.Duration(m.journalEnd - now))
}

// Insert adds a document. The _id field must be a string.
func (m *Mongod) Insert(p *sim.Proc, doc *Doc) error {
	id, err := docID(doc)
	if err != nil {
		return err
	}
	m.node.Compute(p, m.cfg.CPUPerOp)
	m.globalLock.AcquireWrite(p)
	defer m.globalLock.ReleaseWrite()
	if _, exists := m.docs[id]; exists {
		return fmt.Errorf("docstore: duplicate _id %q", id)
	}
	data := Marshal(doc)
	fresh := false
	if m.extentUsed+int64(len(data)) > ExtentSize {
		m.numExtents++
		m.extentUsed = 0
		fresh = true
	}
	m.extentUsed += int64(len(data))
	m.docs[id] = &docSlot{data: data, extent: m.numExtents}
	m.extentOf[id] = m.numExtents
	m.inserts++
	_, path := m.index.Insert(id, int64(m.numExtents))
	m.touchIndex(p, path)
	if fresh {
		// A newly allocated extent is written, not faulted in: mark it
		// resident and dirty without a disk read.
		m.resident.Touch(storage.PageID(m.numExtents))
		m.resident.MarkDirty(storage.PageID(m.numExtents))
		m.dirty[m.numExtents] = true
	} else {
		m.touchExtent(p, m.numExtents, true)
	}
	m.journalCommit(p)
	return nil
}

// Load adds a document without locking or timing (bulk load setup).
func (m *Mongod) Load(doc *Doc) error {
	id, err := docID(doc)
	if err != nil {
		return err
	}
	if _, exists := m.docs[id]; exists {
		return fmt.Errorf("docstore: duplicate _id %q", id)
	}
	data := Marshal(doc)
	if m.extentUsed+int64(len(data)) > ExtentSize {
		m.numExtents++
		m.extentUsed = 0
	}
	m.extentUsed += int64(len(data))
	m.docs[id] = &docSlot{data: data, extent: m.numExtents}
	m.extentOf[id] = m.numExtents
	m.index.Insert(id, int64(m.numExtents))
	return nil
}

// FindByID returns the document with the given _id.
func (m *Mongod) FindByID(p *sim.Proc, id string) (*Doc, error) {
	m.node.Compute(p, m.cfg.CPUPerOp)
	m.globalLock.AcquireRead(p)
	defer m.globalLock.ReleaseRead()
	slot, ok := m.docs[id]
	if !ok {
		return nil, fmt.Errorf("docstore: no document %q", id)
	}
	m.reads++
	_, _, path := m.index.Get(id)
	m.touchIndex(p, path)
	m.touchExtent(p, slot.extent, false)
	return Unmarshal(slot.data)
}

// UpdateByID replaces one field of the document with the given _id,
// holding the global write lock for the duration (MongoDB 1.8).
func (m *Mongod) UpdateByID(p *sim.Proc, id, field string, val Value) error {
	m.node.Compute(p, m.cfg.CPUPerOp)
	m.globalLock.AcquireWrite(p)
	defer m.globalLock.ReleaseWrite()
	slot, ok := m.docs[id]
	if !ok {
		return fmt.Errorf("docstore: no document %q", id)
	}
	m.writes++
	doc, err := Unmarshal(slot.data)
	if err != nil {
		return err
	}
	doc.Set(field, val)
	slot.data = Marshal(doc)
	_, _, path := m.index.Get(id)
	m.touchIndex(p, path)
	m.touchExtent(p, slot.extent, true)
	m.journalCommit(p)
	return nil
}

// ScanRange returns up to limit documents with _id >= start in order.
func (m *Mongod) ScanRange(p *sim.Proc, start string, limit int) ([]*Doc, error) {
	m.node.Compute(p, m.cfg.CPUPerOp)
	m.globalLock.AcquireRead(p)
	defer m.globalLock.ReleaseRead()
	m.scans++
	entries, path := m.index.Scan(start, limit)
	m.touchIndex(p, path)
	out := make([]*Doc, 0, len(entries))
	lastExtent := -1
	for _, ent := range entries {
		ext := int(ent.Val)
		if ext != lastExtent {
			m.touchExtent(p, ext, false)
			lastExtent = ext
		}
		doc, err := Unmarshal(m.docs[ent.Key].data)
		if err != nil {
			return nil, err
		}
		out = append(out, doc)
	}
	return out, nil
}

// Count returns the number of stored documents.
func (m *Mongod) Count() int { return len(m.docs) }

// KeyAt returns the _id at the given offset from start in key order (a
// metadata operation used by the balancer to pick split points).
func (m *Mongod) KeyAt(start string, offset int) (string, bool) {
	entries, _ := m.index.Scan(start, offset+1)
	if len(entries) <= offset {
		return "", false
	}
	return entries[offset].Key, true
}

// ExportRange removes and returns every document with start <= _id < end
// (end == "" means unbounded). Used for chunk migration; the caller
// charges the network transfer.
func (m *Mongod) ExportRange(start, end string) []*Doc {
	var ids []string
	m.index.Ascend(func(k string, _ int64) bool {
		if k >= start && (end == "" || k < end) {
			ids = append(ids, k)
		}
		return end == "" || k < end
	})
	out := make([]*Doc, 0, len(ids))
	for _, id := range ids {
		doc, err := Unmarshal(m.docs[id].data)
		if err != nil {
			continue
		}
		out = append(out, doc)
		delete(m.docs, id)
		delete(m.extentOf, id)
		m.index.Delete(id)
	}
	return out
}

// ImportDocs bulk-adds migrated documents (functional move; the caller
// charges transfer and write cost).
func (m *Mongod) ImportDocs(docs []*Doc) {
	for _, d := range docs {
		m.Load(d)
	}
}

// DataBytes returns the approximate stored data size.
func (m *Mongod) DataBytes() int64 {
	var total int64
	for _, s := range m.docs {
		total += int64(len(s.data))
	}
	return total
}

// Stats reports cumulative operation counts.
func (m *Mongod) Stats() (reads, writes, inserts, scans int64) {
	return m.reads, m.writes, m.inserts, m.scans
}

// docID extracts the string _id field.
func docID(d *Doc) (string, error) {
	v, ok := d.Get("_id")
	if !ok {
		return "", fmt.Errorf("docstore: document missing _id")
	}
	id, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("docstore: _id must be a string, got %T", v)
	}
	return id, nil
}
