// Package fault is the failpoint layer the durable HTAP pipeline
// writes through: a small append-oriented file-system abstraction with
// two real backends (an in-memory FS whose Crash method models a
// machine failure by tearing off unsynced bytes, and a directory FS
// over the OS) plus a deterministic, seed-driven fault Injector that
// wraps any FS and injects the classic storage failures at scheduled
// points — torn appends after a byte budget, fsync errors with sticky
// poison semantics (a failed fsync never later pretends the data made
// it), ENOSPC, transient write errors, and read-side bit flips.
//
// The delta log and the htap converter thread every durable byte
// through this interface, so the crash-matrix tests can kill the
// pipeline at any injected point, reopen over the surviving bytes, and
// check recovery — with production code paths, not test doubles.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The injectable failure classes. Callers branch with errors.Is.
var (
	// ErrTorn is a write that persisted only a prefix (crash mid-write).
	ErrTorn = errors.New("fault: torn append")
	// ErrSync is a failed fsync. Sticky per file: once a sync fails, the
	// unsynced data must be considered lost — later syncs fail too.
	ErrSync = errors.New("fault: fsync failed")
	// ErrNoSpace is ENOSPC: the write (possibly partially applied) ran
	// out of disk.
	ErrNoSpace = errors.New("fault: no space left on device")
	// ErrTransient is a retryable IO error (the converter's backoff
	// demo): the next attempt may succeed.
	ErrTransient = errors.New("fault: transient io error")
)

// File is an append-only log handle. Append extends the file; Sync
// makes everything appended so far durable; Truncate discards a torn
// tail during recovery.
type File interface {
	Append(p []byte) (int, error)
	Sync() error
	Truncate(n int64) error
	Size() int64
	ReadAll() ([]byte, error)
	Close() error
}

// FS is the flat-namespace file system the durable store lives in (one
// delta log plus converted part files). Open creates the file when
// absent; names never contain path separators.
type FS interface {
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	List() ([]string, error)
	Remove(name string) error
}

// WriteFile replaces name with data via Open/Append/Sync/Close, so a
// wrapping Injector's faults apply to it naturally and an in-flight
// crash leaves a detectable partial file. Any existing file is removed
// first — a retry must never append onto a stale or torn predecessor.
func WriteFile(fs FS, name string, data []byte) error {
	_ = fs.Remove(name) // ignore not-exist
	f, err := fs.Open(name)
	if err != nil {
		return err
	}
	if _, err := f.Append(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// MemFS is the in-memory backend. It tracks a per-file synced
// watermark so Crash can model a machine failure exactly: synced bytes
// survive, unsynced bytes survive only up to a seed-chosen tear point.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

type memFile struct {
	mu     sync.Mutex
	data   []byte
	synced int
}

// NewMemFS returns an empty in-memory file system.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string]*memFile)} }

// Open returns a handle on name, creating it when absent.
func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		f = &memFile{}
		m.files[name] = f
	}
	return &memHandle{f: f}, nil
}

// ReadFile returns a copy of name's current contents.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	f := m.files[name]
	m.mu.Unlock()
	if f == nil {
		return nil, fmt.Errorf("fault: %s: %w", name, os.ErrNotExist)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]byte(nil), f.data...), nil
}

// List returns the file names, sorted.
func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Remove deletes name. Handles already open on it keep their orphaned
// contents, as on POSIX.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("fault: %s: %w", name, os.ErrNotExist)
	}
	delete(m.files, name)
	return nil
}

// Crash models the machine dying: every file keeps its synced prefix
// plus a seed-chosen portion of its unsynced suffix (a torn tail).
// Deterministic for a given seed and file-system state; afterwards the
// surviving bytes read back as if the process had restarted.
func (m *MemFS) Crash(seed int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	rng := rand.New(rand.NewSource(seed))
	for _, name := range names {
		f := m.files[name]
		f.mu.Lock()
		if unsynced := len(f.data) - f.synced; unsynced > 0 {
			keep := f.synced + rng.Intn(unsynced+1)
			f.data = f.data[:keep]
		}
		f.synced = len(f.data)
		f.mu.Unlock()
	}
}

type memHandle struct{ f *memFile }

func (h *memHandle) Append(p []byte) (int, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Truncate(n int64) error {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if n < 0 || n > int64(len(h.f.data)) {
		return fmt.Errorf("fault: truncate to %d of %d bytes", n, len(h.f.data))
	}
	h.f.data = h.f.data[:n]
	if h.f.synced > int(n) {
		h.f.synced = int(n)
	}
	return nil
}

func (h *memHandle) Size() int64 {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	return int64(len(h.f.data))
}

func (h *memHandle) ReadAll() ([]byte, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	return append([]byte(nil), h.f.data...), nil
}

func (h *memHandle) Close() error { return nil }

// DirFS is the OS-directory backend: each FS name is one file in dir,
// appends go through an O_APPEND handle, Sync is fsync.
type DirFS struct{ dir string }

// NewDirFS creates dir if needed and returns an FS over it.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirFS{dir: dir}, nil
}

func (d *DirFS) path(name string) (string, error) {
	if name == "" || filepath.Base(name) != name {
		return "", fmt.Errorf("fault: bad file name %q", name)
	}
	return filepath.Join(d.dir, name), nil
}

// Open opens (or creates) name for appending.
func (d *DirFS) Open(name string) (File, error) {
	path, err := d.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &osFile{f: f, path: path}, nil
}

// ReadFile reads name whole.
func (d *DirFS) ReadFile(name string) ([]byte, error) {
	path, err := d.path(name)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// List returns the directory's regular-file names, sorted.
func (d *DirFS) List() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove deletes name.
func (d *DirFS) Remove(name string) error {
	path, err := d.path(name)
	if err != nil {
		return err
	}
	return os.Remove(path)
}

type osFile struct {
	f    *os.File
	path string
}

func (o *osFile) Append(p []byte) (int, error) { return o.f.Write(p) }
func (o *osFile) Sync() error                  { return o.f.Sync() }
func (o *osFile) Truncate(n int64) error       { return o.f.Truncate(n) }

func (o *osFile) Size() int64 {
	info, err := o.f.Stat()
	if err != nil {
		return 0
	}
	return info.Size()
}

func (o *osFile) ReadAll() ([]byte, error) { return os.ReadFile(o.path) }
func (o *osFile) Close() error             { return o.f.Close() }

// Schedule is one deterministic fault plan. Zero values disable each
// fault; the seed drives every random choice (tear points, flipped
// bits), so a schedule replays identically.
type Schedule struct {
	Seed int64
	// TornAppendAfter tears the append that crosses this many
	// cumulative bytes written to non-part files (the delta log): a
	// prefix lands, the rest is lost, and the file is poisoned — every
	// later append fails with ErrTorn (the process is "dying").
	TornAppendAfter int64
	// TornPartAfter is the same byte budget counted only over "*.part"
	// files, so a schedule can target the converter's part writes
	// without knowing how many log bytes precede them.
	TornPartAfter int64
	// SyncFailAt fails the Nth Sync call (1-based) across all files and
	// poisons that file: later syncs on it fail too (a failed fsync
	// must never later pretend the data made it — fsyncgate semantics).
	SyncFailAt int64
	// DiskCap fails any append that would push total bytes (all files)
	// past the cap with ErrNoSpace, after applying the partial prefix
	// that fit.
	DiskCap int64
	// FlipReadAt flips one seed-chosen bit in the data returned by the
	// Nth read (1-based, counted across ReadFile and File.ReadAll) —
	// silent media corruption for the checksum layers to catch.
	FlipReadAt int64
	// TransientPartFails fails the first N appends to "*.part" files
	// with ErrTransient (no bytes land) — the converter's retry demo.
	TransientPartFails int
}

// Injector wraps an FS and injects the Schedule's faults at the
// scheduled points. All bookkeeping is under one mutex, so a schedule
// replays deterministically even under concurrent writers (the fault
// fires on whichever operation crosses the trigger first).
type Injector struct {
	inner FS
	sched Schedule

	mu           sync.Mutex
	rng          *rand.Rand
	logBytes     int64
	partBytes    int64
	totalBytes   int64
	syncs        int64
	reads        int64
	partFails    int
	tornFiles    map[string]bool
	poisonedSync map[string]bool
	faults       faultLog
}

// faultEntry is one injected fault, stamped with the file it hit and a
// per-file sequence number taken under the injector's mutex. The stamp
// is what makes the rendered log deterministic: concurrent files race
// for the global append order, but each file's own fault sequence is
// fixed by the schedule, so sorting by (file, seq) yields the same log
// on every run regardless of goroutine interleaving.
type faultEntry struct {
	file string
	seq  int64
	msg  string
}

// faultLog is the mutex-ordered fault journal shared by the FS injector
// and the network injector. Callers must hold the owning mutex.
type faultLog struct {
	entries []faultEntry
	fileSeq map[string]int64
}

func (l *faultLog) note(file, msg string) {
	if l.fileSeq == nil {
		l.fileSeq = make(map[string]int64)
	}
	l.fileSeq[file]++
	l.entries = append(l.entries, faultEntry{file: file, seq: l.fileSeq[file], msg: msg})
}

// render returns the log sorted by (file, per-file seq) — a total order
// independent of which goroutine's operation appended first.
func (l *faultLog) render() []string {
	sorted := append([]faultEntry(nil), l.entries...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].file != sorted[j].file {
			return sorted[i].file < sorted[j].file
		}
		return sorted[i].seq < sorted[j].seq
	})
	out := make([]string, len(sorted))
	for i, e := range sorted {
		out[i] = e.msg
	}
	return out
}

// NewInjector wraps inner with the schedule.
func NewInjector(inner FS, sched Schedule) *Injector {
	return &Injector{
		inner:        inner,
		sched:        sched,
		rng:          rand.New(rand.NewSource(sched.Seed)),
		tornFiles:    make(map[string]bool),
		poisonedSync: make(map[string]bool),
	}
}

// Faults returns descriptions of the faults injected so far, in a
// deterministic order: entries sort by (file, per-file fault sequence),
// not by wall-clock append order, so crash-matrix assertions comparing
// fault logs across runs cannot flake under concurrent writers.
func (in *Injector) Faults() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults.render()
}

func (in *Injector) note(file, msg string) { in.faults.note(file, msg) }

// Open wraps the inner handle with the fault layer.
func (in *Injector) Open(name string) (File, error) {
	f, err := in.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, name: name, f: f}, nil
}

// ReadFile reads through the inner FS, applying any scheduled bit flip.
func (in *Injector) ReadFile(name string) ([]byte, error) {
	data, err := in.inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return in.maybeFlip(name, data), nil
}

// List passes through.
func (in *Injector) List() ([]string, error) { return in.inner.List() }

// Remove passes through.
func (in *Injector) Remove(name string) error { return in.inner.Remove(name) }

func (in *Injector) maybeFlip(name string, data []byte) []byte {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.reads++
	if in.sched.FlipReadAt > 0 && in.reads == in.sched.FlipReadAt && len(data) > 0 {
		out := append([]byte(nil), data...)
		bit := in.rng.Intn(len(out) * 8)
		out[bit/8] ^= 1 << (bit % 8)
		in.note(name, fmt.Sprintf("flipped bit %d of %s", bit, name))
		return out
	}
	return data
}

type injFile struct {
	in   *Injector
	name string
	f    File
}

func isPartFile(name string) bool { return strings.HasSuffix(name, ".part") }

func (g *injFile) Append(p []byte) (int, error) {
	in := g.in
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.tornFiles[g.name] {
		return 0, ErrTorn
	}
	part := isPartFile(g.name)
	if part && in.partFails < in.sched.TransientPartFails {
		in.partFails++
		in.note(g.name, fmt.Sprintf("transient append failure on %s (%d/%d)", g.name, in.partFails, in.sched.TransientPartFails))
		return 0, ErrTransient
	}
	counter, budget := &in.logBytes, in.sched.TornAppendAfter
	if part {
		counter, budget = &in.partBytes, in.sched.TornPartAfter
	}
	n := int64(len(p))
	if budget > 0 && *counter+n > budget {
		keep := budget - *counter
		if keep < 0 {
			keep = 0
		}
		if keep > 0 {
			g.f.Append(p[:keep])
		}
		*counter += keep
		in.totalBytes += keep
		in.tornFiles[g.name] = true
		in.note(g.name, fmt.Sprintf("torn append on %s: %d of %d bytes", g.name, keep, n))
		return int(keep), ErrTorn
	}
	if cap := in.sched.DiskCap; cap > 0 && in.totalBytes+n > cap {
		keep := cap - in.totalBytes
		if keep < 0 {
			keep = 0
		}
		if keep > 0 {
			g.f.Append(p[:keep])
		}
		*counter += keep
		in.totalBytes += keep
		in.tornFiles[g.name] = true // the disk stays full
		in.note(g.name, fmt.Sprintf("disk full on %s: %d of %d bytes", g.name, keep, n))
		return int(keep), ErrNoSpace
	}
	wrote, err := g.f.Append(p)
	*counter += int64(wrote)
	in.totalBytes += int64(wrote)
	return wrote, err
}

func (g *injFile) Sync() error {
	in := g.in
	in.mu.Lock()
	if in.poisonedSync[g.name] {
		in.mu.Unlock()
		return ErrSync
	}
	in.syncs++
	if at := in.sched.SyncFailAt; at > 0 && in.syncs == at {
		in.poisonedSync[g.name] = true
		in.note(g.name, fmt.Sprintf("fsync %d failed on %s (sticky)", at, g.name))
		in.mu.Unlock()
		return ErrSync
	}
	in.mu.Unlock()
	return g.f.Sync()
}

func (g *injFile) Truncate(n int64) error { return g.f.Truncate(n) }
func (g *injFile) Size() int64            { return g.f.Size() }

func (g *injFile) ReadAll() ([]byte, error) {
	data, err := g.f.ReadAll()
	if err != nil {
		return nil, err
	}
	return g.in.maybeFlip(g.name, data), nil
}

func (g *injFile) Close() error { return g.f.Close() }
