package fault

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFaultMemFSSyncedSurvivesCrash(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Open("log")
	if err != nil {
		t.Fatal(err)
	}
	f.Append([]byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Append([]byte("-unsynced-tail"))
	fs.Crash(42)
	data, err := fs.ReadFile("log")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("durable")) {
		t.Fatalf("synced prefix lost: %q", data)
	}
	if len(data) > len("durable-unsynced-tail") {
		t.Fatalf("crash grew the file: %q", data)
	}
	// The surviving tail must be a prefix of what was appended.
	if !bytes.HasPrefix([]byte("durable-unsynced-tail"), data) {
		t.Fatalf("survivor %q is not a write prefix", data)
	}
}

func TestFaultMemFSCrashDeterministic(t *testing.T) {
	build := func() *MemFS {
		fs := NewMemFS()
		for _, name := range []string{"a", "b", "c"} {
			f, _ := fs.Open(name)
			f.Append(bytes.Repeat([]byte(name), 100))
			f.Sync()
			f.Append(bytes.Repeat([]byte("x"), 100))
		}
		return fs
	}
	a, b := build(), build()
	a.Crash(7)
	b.Crash(7)
	for _, name := range []string{"a", "b", "c"} {
		da, _ := a.ReadFile(name)
		db, _ := b.ReadFile(name)
		if !bytes.Equal(da, db) {
			t.Fatalf("crash(7) nondeterministic on %s: %d vs %d bytes", name, len(da), len(db))
		}
	}
}

func TestFaultTornAppendBudget(t *testing.T) {
	fs := NewMemFS()
	in := NewInjector(fs, Schedule{Seed: 1, TornAppendAfter: 10})
	f, err := in.Open("log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append([]byte("12345678")); err != nil {
		t.Fatalf("append under budget: %v", err)
	}
	n, err := f.Append([]byte("abcdef"))
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("want ErrTorn, got %v", err)
	}
	if n != 2 {
		t.Fatalf("want 2 bytes of torn prefix, got %d", n)
	}
	if _, err := f.Append([]byte("z")); !errors.Is(err, ErrTorn) {
		t.Fatalf("torn file not poisoned: %v", err)
	}
	data, _ := fs.ReadFile("log")
	if string(data) != "12345678ab" {
		t.Fatalf("on-disk bytes %q", data)
	}
	// Part files have their own budget: untouched here.
	p, _ := in.Open("x.part")
	if _, err := p.Append(bytes.Repeat([]byte("p"), 100)); err != nil {
		t.Fatalf("part append hit log budget: %v", err)
	}
}

func TestFaultTornPartBudget(t *testing.T) {
	fs := NewMemFS()
	in := NewInjector(fs, Schedule{Seed: 1, TornPartAfter: 5})
	f, _ := in.Open("log")
	if _, err := f.Append(bytes.Repeat([]byte("L"), 64)); err != nil {
		t.Fatalf("log append hit part budget: %v", err)
	}
	p, _ := in.Open("t.part")
	if _, err := p.Append([]byte("123456789")); !errors.Is(err, ErrTorn) {
		t.Fatalf("want ErrTorn on part, got %v", err)
	}
	data, _ := fs.ReadFile("t.part")
	if string(data) != "12345" {
		t.Fatalf("part bytes %q", data)
	}
}

func TestFaultSyncFailSticky(t *testing.T) {
	fs := NewMemFS()
	in := NewInjector(fs, Schedule{Seed: 1, SyncFailAt: 2})
	f, _ := in.Open("log")
	f.Append([]byte("one"))
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	f.Append([]byte("two"))
	if err := f.Sync(); !errors.Is(err, ErrSync) {
		t.Fatalf("sync 2: want ErrSync, got %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrSync) {
		t.Fatalf("poisoned sync: want ErrSync, got %v", err)
	}
	// The inner Sync was never called for the failed attempts, so the
	// watermark still sits at "one": a crash drops some of "two".
	fs.Crash(3)
	data, _ := fs.ReadFile("log")
	if !bytes.HasPrefix(data, []byte("one")) || len(data) > 6 {
		t.Fatalf("post-crash bytes %q", data)
	}
}

func TestFaultDiskCap(t *testing.T) {
	fs := NewMemFS()
	in := NewInjector(fs, Schedule{Seed: 1, DiskCap: 8})
	f, _ := in.Open("log")
	if _, err := f.Append([]byte("1234")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Append([]byte("56789"))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	if n != 4 {
		t.Fatalf("want 4 bytes applied, got %d", n)
	}
}

func TestFaultTransientPartFails(t *testing.T) {
	fs := NewMemFS()
	in := NewInjector(fs, Schedule{Seed: 1, TransientPartFails: 2})
	p, _ := in.Open("a.part")
	for i := 0; i < 2; i++ {
		if _, err := p.Append([]byte("x")); !errors.Is(err, ErrTransient) {
			t.Fatalf("attempt %d: want ErrTransient, got %v", i+1, err)
		}
	}
	if _, err := p.Append([]byte("x")); err != nil {
		t.Fatalf("third attempt should succeed: %v", err)
	}
	data, _ := fs.ReadFile("a.part")
	if string(data) != "x" {
		t.Fatalf("failed attempts leaked bytes: %q", data)
	}
}

func TestFaultFlipRead(t *testing.T) {
	fs := NewMemFS()
	WriteFile(fs, "blob", bytes.Repeat([]byte{0}, 32))
	in := NewInjector(fs, Schedule{Seed: 9, FlipReadAt: 2})
	clean, _ := in.ReadFile("blob")
	if !bytes.Equal(clean, make([]byte, 32)) {
		t.Fatalf("read 1 should be clean")
	}
	flipped, _ := in.ReadFile("blob")
	diff := 0
	for i := range flipped {
		for b := 0; b < 8; b++ {
			if flipped[i]&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("want exactly one flipped bit, got %d", diff)
	}
	// The flip is read-side only: the stored bytes stay clean.
	again, _ := fs.ReadFile("blob")
	if !bytes.Equal(again, make([]byte, 32)) {
		t.Fatalf("flip corrupted the stored bytes")
	}
}

func TestFaultWriteFileReplaces(t *testing.T) {
	fs := NewMemFS()
	if err := WriteFile(fs, "f", []byte("first-longer")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(fs, "f", []byte("second")); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile("f")
	if string(data) != "second" {
		t.Fatalf("got %q", data)
	}
	// Synced by WriteFile: survives a crash whole.
	fs.Crash(1)
	data, _ = fs.ReadFile("f")
	if string(data) != "second" {
		t.Fatalf("post-crash %q", data)
	}
}

func TestFaultDirFSRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	fs, err := NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("delta.log")
	if err != nil {
		t.Fatal(err)
	}
	f.Append([]byte("hello "))
	f.Append([]byte("world"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := f.Size(); got != 11 {
		t.Fatalf("size %d", got)
	}
	data, err := f.ReadAll()
	if err != nil || string(data) != "hello world" {
		t.Fatalf("readall %q %v", data, err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, err = fs.ReadFile("delta.log")
	if err != nil || string(data) != "hello" {
		t.Fatalf("after truncate %q %v", data, err)
	}
	WriteFile(fs, "a.part", []byte("p"))
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a.part" || names[1] != "delta.log" {
		t.Fatalf("list %v", names)
	}
	if err := fs.Remove("a.part"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "a.part")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("remove left file: %v", err)
	}
	if _, err := fs.Open("../escape"); err == nil {
		t.Fatal("path escape allowed")
	}
}
