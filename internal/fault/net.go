// The network half of the failpoint layer: a deterministic, seed-driven
// injector for the message-level faults a scatter/gather transport must
// survive — dropped, delayed, duplicated, and truncated frames, plus
// connection resets at the Nth frame. The injector is transport-free:
// it only decides what should happen to frame k; the wire layer
// (internal/dist) owns sockets and applies the decision. Decisions are
// a pure function of (seed, frame index), so a schedule replays
// identically no matter how concurrent requests interleave — the frame
// index is handed out under a mutex, and the fault log uses the same
// (stream, per-stream seq) ordering as the FS injector's.
package fault

import (
	"fmt"
	"sync"
	"time"
)

// NetAction is the injector's decision for one frame.
type NetAction int

// The injectable network faults. NetNone delivers the frame untouched.
const (
	NetNone NetAction = iota
	// NetDrop swallows the frame: the peer never sees it and the sender's
	// read blocks until its deadline fires.
	NetDrop
	// NetTruncate delivers only a prefix of the frame and then resets the
	// connection — a torn message the CRC layer must catch.
	NetTruncate
	// NetDuplicate delivers the frame twice back to back.
	NetDuplicate
	// NetReset closes the connection before the frame is sent.
	NetReset
	// NetDelay delivers the frame after the schedule's Delay.
	NetDelay
)

func (a NetAction) String() string {
	switch a {
	case NetDrop:
		return "drop"
	case NetTruncate:
		return "truncate"
	case NetDuplicate:
		return "duplicate"
	case NetReset:
		return "reset"
	case NetDelay:
		return "delay"
	}
	return "none"
}

// NetSchedule is one deterministic network fault plan. Each *Nth field
// arms its fault for roughly one in N frames (0 disables it); the seed
// scrambles which frame indices are hit, so two schedules with the same
// periods but different seeds fault different frames. When several
// faults arm for the same frame, the most disruptive wins (reset >
// truncate > drop > duplicate > delay).
type NetSchedule struct {
	Seed     int64
	DropNth  int
	TruncNth int
	DupNth   int
	ResetNth int
	DelayNth int
	// Delay is how long NetDelay holds a frame (default 1ms).
	Delay time.Duration
}

// Enabled reports whether the schedule injects anything at all.
func (s NetSchedule) Enabled() bool {
	return s.DropNth > 0 || s.TruncNth > 0 || s.DupNth > 0 || s.ResetNth > 0 || s.DelayNth > 0
}

// NetInjector hands out frame-fault decisions. Safe from any goroutine.
type NetInjector struct {
	sched NetSchedule

	mu     sync.Mutex
	frame  int64
	faults faultLog
}

// NewNetInjector returns an injector for the schedule. A nil result
// means the schedule injects nothing, which callers may use to skip the
// wrapping entirely.
func NewNetInjector(sched NetSchedule) *NetInjector {
	if !sched.Enabled() {
		return nil
	}
	if sched.Delay <= 0 {
		sched.Delay = time.Millisecond
	}
	return &NetInjector{sched: sched}
}

// mix is a splitmix64-style scramble of (seed, frame index): cheap,
// stateless, and fully determined by its inputs, so frame k's fate never
// depends on which goroutine asked first.
func mix(seed, k int64) uint64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(k)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func hits(h uint64, nth int) bool { return nth > 0 && h%uint64(nth) == 0 }

// Next assigns the next frame index on the named stream (e.g.
// "coord->shard1/send") and returns the injected action plus the delay
// to apply when the action is NetDelay. Frame 0 is never faulted, so a
// connection can always make some progress.
func (n *NetInjector) Next(stream string) (NetAction, time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	k := n.frame
	n.frame++
	if k == 0 {
		return NetNone, 0
	}
	h := mix(n.sched.Seed, k)
	action := NetNone
	switch {
	case hits(h, n.sched.ResetNth):
		action = NetReset
	case hits(h>>8, n.sched.TruncNth):
		action = NetTruncate
	case hits(h>>16, n.sched.DropNth):
		action = NetDrop
	case hits(h>>24, n.sched.DupNth):
		action = NetDuplicate
	case hits(h>>32, n.sched.DelayNth):
		action = NetDelay
	}
	if action != NetNone {
		n.faults.note(stream, fmt.Sprintf("%s frame %d on %s", action, k, stream))
	}
	if action == NetDelay {
		return action, n.sched.Delay
	}
	return action, 0
}

// Faults returns descriptions of the injected network faults so far, in
// the same deterministic (stream, per-stream seq) order the FS
// injector's log uses.
func (n *NetInjector) Faults() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.faults.render()
}

// Count returns how many faults have been injected so far.
func (n *NetInjector) Count() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.faults.entries)
}
