package fault

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNetInjectorDeterministic pins the replay contract: two injectors
// with the same schedule hand out identical action sequences, because a
// frame's fate is a pure function of (seed, frame index).
func TestNetInjectorDeterministic(t *testing.T) {
	sched := NetSchedule{Seed: 42, DropNth: 5, TruncNth: 7, DupNth: 3, ResetNth: 11, DelayNth: 4}
	a, b := NewNetInjector(sched), NewNetInjector(sched)
	faulted := 0
	for k := 0; k < 500; k++ {
		aAct, aDelay := a.Next("s")
		bAct, bDelay := b.Next("s")
		if aAct != bAct || aDelay != bDelay {
			t.Fatalf("frame %d: injectors diverge: %v/%v vs %v/%v", k, aAct, aDelay, bAct, bDelay)
		}
		if aAct != NetNone {
			faulted++
		}
		if aAct == NetDelay && aDelay != time.Millisecond {
			t.Fatalf("frame %d: delay %v, want default 1ms", k, aDelay)
		}
	}
	if faulted == 0 {
		t.Fatal("schedule with every class armed injected nothing in 500 frames")
	}
	if a.Count() != faulted {
		t.Fatalf("Count() = %d, want %d", a.Count(), faulted)
	}
	if !reflect.DeepEqual(a.Faults(), b.Faults()) {
		t.Fatal("identical schedules rendered different fault logs")
	}
	// A different seed must scramble which frames are hit.
	c := NewNetInjector(NetSchedule{Seed: 43, DropNth: 5, TruncNth: 7, DupNth: 3, ResetNth: 11, DelayNth: 4})
	for k := 0; k < 500; k++ {
		c.Next("s")
	}
	if reflect.DeepEqual(a.Faults(), c.Faults()) {
		t.Fatal("different seeds produced the identical 500-frame fault log")
	}
}

// TestNetInjectorFirstFrameSafe: frame 0 must never fault, so every
// connection can make some progress even under the harshest schedule.
func TestNetInjectorFirstFrameSafe(t *testing.T) {
	inj := NewNetInjector(NetSchedule{Seed: 7, DropNth: 1, TruncNth: 1, DupNth: 1, ResetNth: 1, DelayNth: 1})
	if act, _ := inj.Next("conn"); act != NetNone {
		t.Fatalf("frame 0 faulted: %v", act)
	}
	// With every class armed at Nth=1, every later frame resets (the
	// most disruptive class wins the priority order).
	for k := 1; k < 10; k++ {
		if act, _ := inj.Next("conn"); act != NetReset {
			t.Fatalf("frame %d: got %v, want reset (priority order)", k, act)
		}
	}
}

// TestNetInjectorDisabled: a zero schedule is disabled and yields a nil
// injector, which the wire layer uses to skip fault wrapping entirely.
func TestNetInjectorDisabled(t *testing.T) {
	if (NetSchedule{}).Enabled() {
		t.Fatal("zero schedule reports Enabled")
	}
	if inj := NewNetInjector(NetSchedule{Seed: 9, Delay: time.Second}); inj != nil {
		t.Fatalf("disabled schedule built an injector: %+v", inj)
	}
	if !(NetSchedule{DropNth: 2}).Enabled() {
		t.Fatal("armed schedule reports disabled")
	}
}

// TestFaultLogConcurrentFilesDeterministic is the regression test for
// the fault-log ordering fix: N goroutines each fault their own file
// concurrently, and Faults() must render grouped by file in sorted
// order with each file's entries in its own operation order — never in
// raw wall-clock interleaving. Two snapshots must render identically.
func TestFaultLogConcurrentFilesDeterministic(t *testing.T) {
	const writers, per = 6, 5
	inj := NewInjector(NewMemFS(), Schedule{Seed: 3, TransientPartFails: writers * per})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f, err := inj.Open(fmt.Sprintf("conv-%d.part", w))
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < per; i++ {
				f.Append([]byte("x")) // every part append fails transient
			}
		}(w)
	}
	wg.Wait()
	log := inj.Faults()
	if len(log) != writers*per {
		t.Fatalf("logged %d faults, want %d", len(log), writers*per)
	}
	if !reflect.DeepEqual(log, inj.Faults()) {
		t.Fatal("two renders of the same log differ")
	}
	// Grouped: each file's entries form one contiguous block, files in
	// sorted order, and within a block the global (g/total) counters
	// strictly increase (per-file operation order is preserved).
	fileOf := func(msg string) string {
		i := strings.Index(msg, " on ")
		j := strings.Index(msg[i+4:], " ")
		return msg[i+4 : i+4+j]
	}
	seen := map[string]bool{}
	prevFile, prevG := "", 0
	for _, msg := range log {
		file := fileOf(msg)
		var g, total int
		if _, err := fmt.Sscanf(msg[strings.Index(msg, "("):], "(%d/%d)", &g, &total); err != nil {
			t.Fatalf("unparseable fault %q: %v", msg, err)
		}
		if file != prevFile {
			if seen[file] {
				t.Fatalf("file %s split across blocks:\n%s", file, strings.Join(log, "\n"))
			}
			if file < prevFile {
				t.Fatalf("files out of sorted order: %s after %s", file, prevFile)
			}
			seen[file] = true
			prevFile, prevG = file, 0
		}
		if g <= prevG {
			t.Fatalf("%s: per-file order broken: counter %d after %d", file, g, prevG)
		}
		prevG = g
	}
	if len(seen) != writers {
		t.Fatalf("log covers %d files, want %d", len(seen), writers)
	}
}
