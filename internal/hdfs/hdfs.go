// Package hdfs models the Hadoop Distributed File System as the paper's
// Hive deployment used it: a namenode holding file → block metadata,
// 256 MB blocks placed round-robin across datanodes, and 3-way
// replication (replicas are metadata here; the simulation charges I/O on
// the node a task reads from). Files carry byte sizes, not contents —
// the functional data lives in the relal tables; HDFS exists to give the
// MapReduce scheduler its task-per-block structure, including the empty
// bucket files behind the paper's Table 4 analysis.
package hdfs

import (
	"fmt"
	"sort"
)

// BlockSize is the configured HDFS block size (256 MB in the paper).
const BlockSize = 256 << 20

// ReplicationFactor is the paper's HDFS replication setting.
const ReplicationFactor = 3

// Block is one block of a file.
type Block struct {
	// Node is the index of the datanode holding the primary replica.
	Node int
	// Bytes is the block length (≤ BlockSize).
	Bytes int64
	// Replicas are the datanodes holding the other replicas.
	Replicas []int
}

// File is a named sequence of blocks.
type File struct {
	Path   string
	Blocks []Block
}

// Bytes returns the file length.
func (f *File) Bytes() int64 {
	var total int64
	for _, b := range f.Blocks {
		total += b.Bytes
	}
	return total
}

// FS is the namenode: file metadata over a set of datanodes.
type FS struct {
	numNodes int
	files    map[string]*File
	nextNode int
}

// New returns an empty filesystem over numNodes datanodes.
func New(numNodes int) *FS {
	if numNodes < 1 {
		numNodes = 1
	}
	return &FS{numNodes: numNodes, files: make(map[string]*File)}
}

// NumNodes returns the datanode count.
func (fs *FS) NumNodes() int { return fs.numNodes }

// Create writes a file of the given size, splitting it into blocks
// placed round-robin across datanodes. Zero-byte files get a single
// empty block (they still cost a map task, as the paper observed).
func (fs *FS) Create(path string, bytes int64) (*File, error) {
	if _, exists := fs.files[path]; exists {
		return nil, fmt.Errorf("hdfs: file %q exists", path)
	}
	f := &File{Path: path}
	remaining := bytes
	for {
		b := Block{Node: fs.nextNode % fs.numNodes}
		for r := 1; r < ReplicationFactor && r < fs.numNodes; r++ {
			b.Replicas = append(b.Replicas, (b.Node+r)%fs.numNodes)
		}
		fs.nextNode++
		if remaining > BlockSize {
			b.Bytes = BlockSize
		} else {
			b.Bytes = remaining
		}
		f.Blocks = append(f.Blocks, b)
		remaining -= b.Bytes
		if remaining <= 0 {
			break
		}
	}
	fs.files[path] = f
	return f, nil
}

// Open returns the file metadata.
func (fs *FS) Open(path string) (*File, error) {
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("hdfs: no file %q", path)
	}
	return f, nil
}

// Delete removes a file.
func (fs *FS) Delete(path string) error {
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("hdfs: no file %q", path)
	}
	delete(fs.files, path)
	return nil
}

// List returns paths with the given prefix, sorted.
func (fs *FS) List(prefix string) []string {
	var out []string
	for p := range fs.files {
		if len(p) >= len(prefix) && p[:len(prefix)] == prefix {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// TotalBytes returns the logical (unreplicated) bytes stored.
func (fs *FS) TotalBytes() int64 {
	var total int64
	for _, f := range fs.files {
		total += f.Bytes()
	}
	return total
}

// NumFiles returns the file count.
func (fs *FS) NumFiles() int { return len(fs.files) }
