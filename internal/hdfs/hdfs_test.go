package hdfs

import (
	"testing"
	"testing/quick"
)

func TestCreateSplitsBlocks(t *testing.T) {
	fs := New(4)
	f, err := fs.Create("/t/lineitem/b0", 3*BlockSize+100)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(f.Blocks))
	}
	if f.Bytes() != 3*BlockSize+100 {
		t.Errorf("bytes = %d", f.Bytes())
	}
	if f.Blocks[3].Bytes != 100 {
		t.Errorf("last block = %d bytes, want 100", f.Blocks[3].Bytes)
	}
}

func TestEmptyFileHasOneBlock(t *testing.T) {
	fs := New(4)
	f, _ := fs.Create("/t/lineitem/empty", 0)
	if len(f.Blocks) != 1 || f.Blocks[0].Bytes != 0 {
		t.Errorf("empty file blocks = %+v, want one empty block", f.Blocks)
	}
}

func TestReplication(t *testing.T) {
	fs := New(4)
	f, _ := fs.Create("/x", 10)
	if len(f.Blocks[0].Replicas) != ReplicationFactor-1 {
		t.Errorf("replicas = %d, want %d", len(f.Blocks[0].Replicas), ReplicationFactor-1)
	}
	for _, r := range f.Blocks[0].Replicas {
		if r == f.Blocks[0].Node {
			t.Error("replica on primary node")
		}
	}
}

func TestReplicationFewNodes(t *testing.T) {
	fs := New(1)
	f, _ := fs.Create("/x", 10)
	if len(f.Blocks[0].Replicas) != 0 {
		t.Error("single-node cluster cannot hold remote replicas")
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	fs := New(4)
	counts := make(map[int]int)
	for i := 0; i < 16; i++ {
		f, _ := fs.Create(string(rune('a'+i)), 1)
		counts[f.Blocks[0].Node]++
	}
	for n, c := range counts {
		if c != 4 {
			t.Errorf("node %d has %d blocks, want 4", n, c)
		}
	}
}

func TestOpenDeleteList(t *testing.T) {
	fs := New(2)
	fs.Create("/a/1", 1)
	fs.Create("/a/2", 1)
	fs.Create("/b/1", 1)
	if _, err := fs.Open("/a/1"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/nope"); err == nil {
		t.Error("open of missing file should fail")
	}
	if got := fs.List("/a/"); len(got) != 2 {
		t.Errorf("list /a/ = %v", got)
	}
	if err := fs.Delete("/a/1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("/a/1"); err == nil {
		t.Error("double delete should fail")
	}
	if fs.NumFiles() != 2 {
		t.Errorf("files = %d, want 2", fs.NumFiles())
	}
}

func TestDuplicateCreate(t *testing.T) {
	fs := New(2)
	fs.Create("/x", 1)
	if _, err := fs.Create("/x", 1); err == nil {
		t.Error("duplicate create should fail")
	}
}

func TestBytesConservedProperty(t *testing.T) {
	f := func(size uint32) bool {
		fs := New(3)
		file, err := fs.Create("/f", int64(size))
		if err != nil {
			return false
		}
		for _, b := range file.Blocks {
			if b.Bytes > BlockSize || b.Bytes < 0 {
				return false
			}
		}
		return file.Bytes() == int64(size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
