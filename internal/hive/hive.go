// Package hive models Hive 0.7.1 running the TPC-H workload the way the
// paper configured it (HIVE-600 scripts adapted to RCFile, map-side
// aggregation, map joins, bucketed map joins, 128 reducers).
//
// A query executes functionally once (via the shared tpch/relal query
// programs) and its step log is compiled — in written order, with no
// cost-based reordering, exactly Hive's behaviour the paper critiques —
// into a DAG of MapReduce jobs run on the simulated cluster:
//
//   - join following Table 1's physical layouts (partitions, buckets),
//     choosing bucketed map join when both sides are co-bucketed on the
//     join key, map join when the build side fits in task memory, and
//     the shuffle-everything common join otherwise;
//   - map-side partial aggregation fused into the preceding join's
//     reduce phase; standalone aggregations and sorts as extra jobs;
//   - per-query map-join hints mirroring the scripts, including Q22's
//     always-failing map join with its ~400 s backup-task penalty.
package hive

import (
	"fmt"

	"elephants/internal/cluster"
	"elephants/internal/mapreduce"
	"elephants/internal/relal"
	"elephants/internal/sim"
	"elephants/internal/tpch"
)

// Layout is one row of the paper's Table 1 for Hive.
type Layout struct {
	PartitionCol string
	Partitions   int // number of partition directories (0 = unpartitioned)
	BucketCol    string
	Buckets      int // buckets per partition (0 = unbucketed)
}

// TableLayouts reproduces Table 1's Hive column exactly.
var TableLayouts = map[string]Layout{
	"customer": {PartitionCol: "c_nationkey", Partitions: 25, BucketCol: "c_custkey", Buckets: 8},
	"lineitem": {BucketCol: "l_orderkey", Buckets: 512},
	"nation":   {},
	"orders":   {BucketCol: "o_orderkey", Buckets: 512},
	"part":     {BucketCol: "p_partkey", Buckets: 8},
	"partsupp": {BucketCol: "ps_partkey", Buckets: 8},
	"region":   {},
	"supplier": {PartitionCol: "s_nationkey", Partitions: 25, BucketCol: "s_suppkey", Buckets: 8},
}

// Files returns the number of HDFS files the table's layout produces.
func (l Layout) Files() int {
	p := l.Partitions
	if p == 0 {
		p = 1
	}
	b := l.Buckets
	if b == 0 {
		b = 1
	}
	return p * b
}

// NonEmptyFiles returns how many files actually contain rows. The
// sparse o_orderkey population (8 of every 32 keys) leaves only 128 of
// the 512 lineitem/orders buckets non-empty — the paper's Table 4
// observation.
func (l Layout) NonEmptyFiles(table string) int {
	if table == "lineitem" || table == "orders" {
		return 128
	}
	return l.Files()
}

// Config tunes the Hive engine.
type Config struct {
	MR mapreduce.Config
	// CompressionRatio is compressed/uncompressed for RCFile+GZIP base
	// tables (measured ~0.115 on TPC-H text).
	CompressionRatio float64
	// IntermediateRatio is the LZO-style compression on intermediate
	// map output.
	IntermediateRatio float64
	// MapJoinBuildLimit is the largest build side (bytes at target SF)
	// eligible for an unhinted map join.
	MapJoinBuildLimit int64
	// MapJoinFailTime is the stall before a hinted map join fails with
	// a Java heap error and a backup common join launches (Q22).
	MapJoinFailTime sim.Duration
	// PredicatePushdown enables the what-if the paper's Hive lacked:
	// scans consume the skipped-bytes ratio from the query's step log
	// (column subsets plus zone-map group pruning) and waive the
	// per-byte decompression CPU charge for pruned chunks. Off by
	// default — the paper-faithful Hive decompresses every chunk of
	// every column, which is exactly its RCFile inefficiency
	// observation; the knob turns that constant into a tunable.
	PredicatePushdown bool
}

// DefaultConfig returns the paper-calibrated tuning.
func DefaultConfig() Config {
	return Config{
		MR:                mapreduce.DefaultConfig(),
		CompressionRatio:  0.115,
		IntermediateRatio: 0.5,
		MapJoinBuildLimit: 700 << 20,
		MapJoinFailTime:   400 * sim.Second,
	}
}

// failingMapJoinHints mirrors the HIVE-600 scripts' MAPJOIN hints that
// the paper observed failing at every scale factor: Q22's sub-query 4
// join of the filtered customers against the order keys.
var failingMapJoinHints = map[int]int{22: 0} // query → join ordinal

// materializedFilterQueries lists queries whose scripts split base-table
// filters into their own sub-query writing a temp table (Q22's
// sub-query 1, which the paper's Table 5 breaks out, including its
// ~50 s filesystem job that merges the output into fewer files).
var materializedFilterQueries = map[int]bool{22: true}

// fsJobTime is the constant-duration filesystem job the paper observed
// after Q22's sub-query 1 at the first three scale factors.
const fsJobTime = 50 * sim.Second

// Warehouse is a Hive deployment: simulated cluster + jobtracker +
// table statistics at a target scale factor.
type Warehouse struct {
	s   *sim.Sim
	cl  *cluster.Cluster
	jt  *mapreduce.JobTracker
	cfg Config
	db  *tpch.DB
	// SF is the *target* scale factor being modeled (e.g. 250 for the
	// paper's 250 GB point); db holds laptop-scale functional data.
	SF float64
}

// New builds a warehouse modeling scale factor sf over db's functional
// data.
func New(s *sim.Sim, cl *cluster.Cluster, db *tpch.DB, sf float64, cfg Config) *Warehouse {
	if cfg.CompressionRatio <= 0 {
		cfg = DefaultConfig()
	}
	return &Warehouse{
		s:   s,
		cl:  cl,
		jt:  mapreduce.NewJobTracker(s, cl, cfg.MR),
		cfg: cfg,
		db:  db,
		SF:  sf,
	}
}

// tableCompressedBytes returns the table's on-disk RCFile size at the
// target SF.
func (w *Warehouse) tableCompressedBytes(table string) int64 {
	return int64(float64(tpch.TextBytes(table, w.SF)) * w.cfg.CompressionRatio)
}

// pruneMap records, per base table, the fraction of scan bytes the
// query's pushdown could skip (from the step log's ScanStats). Empty
// when pushdown is disabled, so every lookup yields zero and scans cost
// exactly what the paper measured.
type pruneMap map[string]float64

func (m pruneMap) frac(table string) float64 { return m[table] }

// scanTasks builds the map tasks for a scan of a base table at the
// target SF: one task per 256 MB block of every non-empty file plus one
// startup-only task per empty file. skipFrac is the pushdown
// skipped-bytes fraction: tasks still read every block, but that share
// of each block skips the decompression CPU charge.
func (w *Warehouse) scanTasks(table string, skipFrac float64) []mapreduce.MapTask {
	layout := TableLayouts[table]
	files := layout.Files()
	nonEmpty := layout.NonEmptyFiles(table)
	bytes := w.tableCompressedBytes(table)
	perFile := bytes / int64(nonEmpty)
	n := len(w.cl.Nodes)
	var tasks []mapreduce.MapTask
	for f := 0; f < nonEmpty; f++ {
		tasks = append(tasks, mapreduce.TasksForFile(perFile, f, n)...)
	}
	for f := nonEmpty; f < files; f++ {
		tasks = append(tasks, mapreduce.MapTask{Node: f % n, InputBytes: 0})
	}
	if skipFrac > 0 {
		for i := range tasks {
			tasks[i].CPUSkipBytes = int64(float64(tasks[i].InputBytes) * skipFrac)
		}
	}
	return tasks
}

// intermediateTasks builds map tasks for scanning a prior job's output:
// 128 reducer files holding bytes total.
func (w *Warehouse) intermediateTasks(bytes int64) []mapreduce.MapTask {
	const files = 128
	per := bytes / files
	n := len(w.cl.Nodes)
	var tasks []mapreduce.MapTask
	for f := 0; f < files; f++ {
		tasks = append(tasks, mapreduce.TasksForFile(per, f, n)...)
	}
	return tasks
}

// input describes one side of a join as the compiler sees it.
type input struct {
	base  string // base table name, "" for intermediates
	bytes int64  // compressed bytes at target SF
}

// JoinStrategy names the physical join choice for reporting.
type JoinStrategy string

// Join strategies.
const (
	CommonJoin      JoinStrategy = "common"
	MapJoin         JoinStrategy = "map"
	BucketedMapJoin JoinStrategy = "bucketed-map"
	FailedMapJoin   JoinStrategy = "map-failed-backup"
)

// JobReport records one executed MR job for analysis output.
type JobReport struct {
	Name     string
	Strategy JoinStrategy
	Stats    mapreduce.Stats
}

// QueryStats is the result of running one TPC-H query on Hive.
type QueryStats struct {
	Query int
	Total sim.Duration
	Jobs  []JobReport
	// Answer is the functional result (identical to the reference
	// executor's, since the same query program produced it).
	Answer *relal.Table
}

// MapPhase returns the map-phase time of the i-th job (Table 4 wants
// Q1's first job).
func (q QueryStats) MapPhase(i int) sim.Duration {
	if i < 0 || i >= len(q.Jobs) {
		return 0
	}
	return q.Jobs[i].Stats.MapPhase
}

// RunQuery executes TPC-H query id: functionally for the answer, then
// as a compiled MR DAG on the simulated cluster for timing. It blocks
// the calling process for the query's virtual duration.
func (w *Warehouse) RunQuery(p *sim.Proc, id int) QueryStats {
	answer, log := tpch.RunQuery(id, w.db)
	qs := QueryStats{Query: id, Answer: answer}
	start := p.Now()
	ratio := w.SF / w.db.SF

	// scaled converts laptop-measured step bytes to target-SF bytes
	// with intermediate compression.
	scaled := func(rows, width int) int64 {
		return int64(float64(rows) * float64(width) * ratio * w.cfg.IntermediateRatio)
	}

	// With pushdown enabled, collect the per-table skipped-bytes
	// fraction the functional scans measured.
	pruned := pruneMap{}
	if w.cfg.PredicatePushdown {
		pruned = pruneMap(log.SkippedScanFracs())
	}

	// Track the "current" intermediate: Hive chains jobs, each
	// consuming the previous output.
	joinOrdinal := 0
	var lastOut int64 // bytes of the last job's output at target SF
	lastWasJoin := false
	materialized := map[string]int64{} // base table → temp-table bytes

	inputFor := func(base string, rows, width int) input {
		if base != "" {
			if bytes, ok := materialized[base]; ok {
				return input{bytes: bytes}
			}
			return input{base: base, bytes: w.tableCompressedBytes(base)}
		}
		return input{bytes: scaled(rows, width)}
	}

	report := func(name string, strategy JoinStrategy, st mapreduce.Stats) {
		qs.Jobs = append(qs.Jobs, JobReport{Name: name, Strategy: strategy, Stats: st})
	}
	runJob := func(name string, strategy JoinStrategy, job *mapreduce.Job) {
		report(name, strategy, w.jt.Run(p, job))
	}

	for _, step := range log.Steps {
		switch step.Kind {
		case relal.StepFilter:
			// Normally folded into the consuming job's table scan, but
			// some scripts materialize the first base-table filter
			// into a temp table as its own sub-query (Q22).
			if materializedFilterQueries[id] && step.LeftBase != "" {
				if _, done := materialized[step.LeftBase]; !done {
					out := scaled(step.OutRows, step.OutWidth)
					job := &mapreduce.Job{
						Name:        fmt.Sprintf("q%d-filter-%s", id, step.LeftBase),
						MapTasks:    w.scanTasks(step.LeftBase, pruned.frac(step.LeftBase)),
						MapOnly:     true,
						OutputBytes: out,
					}
					runJob(job.Name, "", job)
					if w.SF < 16000 {
						// The constant filesystem job merging output
						// files (paper: ~50 s at the first three SFs).
						p.Sleep(fsJobTime)
					}
					materialized[step.LeftBase] = out
					lastOut = out
					lastWasJoin = false
				}
			}
			continue
		case relal.StepScan, relal.StepLimit:
			// Folded into the consuming job's table scan.
			continue
		case relal.StepJoin:
			left := inputFor(step.LeftBase, step.LeftRows, step.LeftWidth)
			right := inputFor(step.RightBase, step.RightRows, step.RightWidth)
			out := scaled(step.OutRows, step.OutWidth)
			w.runJoin(p, runJob, report, id, joinOrdinal, step, left, right, out, pruned)
			joinOrdinal++
			lastOut = out
			lastWasJoin = true
		case relal.StepAgg:
			if lastWasJoin {
				// Partial aggregation fused into the join's reduce
				// phase (the paper: "During this join, a partial
				// aggregation ... is performed"). The global agg is a
				// small follow-up job.
				out := scaled(step.OutRows, step.OutWidth)
				job := &mapreduce.Job{
					Name:         fmt.Sprintf("q%d-global-agg", id),
					MapTasks:     w.intermediateTasks(lastOut / 16), // partials are small
					Reducers:     128,
					ShuffleBytes: out,
					OutputBytes:  out,
				}
				runJob(job.Name, "", job)
				lastOut = out
				lastWasJoin = false
				continue
			}
			// Standalone aggregation (e.g. Q1): scan input with
			// map-side aggregation, shuffle partials, reduce.
			var tasks []mapreduce.MapTask
			if bytes, ok := materialized[step.LeftBase]; ok && step.LeftBase != "" {
				tasks = w.intermediateTasks(bytes)
			} else if step.LeftBase != "" {
				tasks = w.scanTasks(step.LeftBase, pruned.frac(step.LeftBase))
			} else {
				tasks = w.intermediateTasks(scaled(step.LeftRows, step.LeftWidth))
			}
			out := scaled(step.OutRows, step.OutWidth)
			// Map-side aggregation shrinks the shuffle to the partial
			// aggregates (bounded below by the final output).
			shuffle := out * int64(len(w.cl.Nodes))
			job := &mapreduce.Job{
				Name:         fmt.Sprintf("q%d-agg", id),
				MapTasks:     tasks,
				Reducers:     128,
				ShuffleBytes: shuffle,
				OutputBytes:  out,
			}
			runJob(job.Name, "", job)
			lastOut = out
			lastWasJoin = false
		case relal.StepSort:
			// Order-by: one more small job over the previous output.
			out := scaled(step.OutRows, step.OutWidth)
			job := &mapreduce.Job{
				Name:         fmt.Sprintf("q%d-sort", id),
				MapTasks:     w.intermediateTasks(out),
				Reducers:     1, // global order
				ShuffleBytes: out,
				OutputBytes:  out,
			}
			runJob(job.Name, "", job)
			lastOut = out
			lastWasJoin = false
		}
	}
	qs.Total = sim.Duration(p.Now() - start)
	return qs
}

// runJoin picks the join strategy and executes the job(s).
func (w *Warehouse) runJoin(p *sim.Proc, runJob func(string, JoinStrategy, *mapreduce.Job), report func(string, JoinStrategy, mapreduce.Stats), id, ordinal int, step relal.Step, left, right input, out int64, pruned pruneMap) {
	name := fmt.Sprintf("q%d-join-%s", id, step.Table)

	// Hinted-but-failing map join (Q22): stall, then backup common join.
	if ord, ok := failingMapJoinHints[id]; ok && ord == ordinal {
		stallStart := p.Now()
		p.Sleep(w.cfg.MapJoinFailTime)
		st := w.jt.Run(p, w.commonJoinJob(name, step, left, right, out, pruned))
		// Fold the stall into the failed join's total so time
		// breakdowns (Table 5's sub-query 4) account for it.
		st.Start = stallStart
		st.Total = sim.Duration(p.Now() - stallStart)
		report(name, FailedMapJoin, st)
		return
	}

	// Bucketed map join: both sides base tables bucketed on the join
	// key with bucket counts a multiple of each other (lineitem ⋈
	// orders on orderkey). Map tasks scan the big side's buckets and
	// load the matching small-side bucket via the distributed cache.
	if w.bucketAligned(step, left, right) {
		big, small := left, right
		if small.bytes > big.bytes {
			big, small = small, big
		}
		bigLayout := TableLayouts[big.base]
		smallLayout := TableLayouts[small.base]
		tasks := w.scanTasks(big.base, pruned.frac(big.base))
		cachePer := small.bytes / int64(smallLayout.NonEmptyFiles(small.base))
		_ = bigLayout
		for i := range tasks {
			if tasks[i].InputBytes > 0 {
				tasks[i].CacheBytes = cachePer
			}
		}
		job := &mapreduce.Job{
			Name:        name,
			MapTasks:    tasks,
			MapOnly:     true,
			OutputBytes: out,
		}
		runJob(name, BucketedMapJoin, job)
		return
	}

	// Map join: build side small enough for every task's memory.
	small, big := left, right
	if small.bytes > big.bytes {
		small, big = big, small
	}
	if small.bytes <= w.cfg.MapJoinBuildLimit {
		var tasks []mapreduce.MapTask
		if big.base != "" {
			tasks = w.scanTasks(big.base, pruned.frac(big.base))
		} else {
			tasks = w.intermediateTasks(big.bytes)
		}
		for i := range tasks {
			if tasks[i].InputBytes > 0 {
				tasks[i].CacheBytes = small.bytes
			}
		}
		job := &mapreduce.Job{
			Name:        name,
			MapTasks:    tasks,
			MapOnly:     true,
			OutputBytes: out,
		}
		runJob(name, MapJoin, job)
		return
	}

	// Common join: scan both sides, shuffle both, join in reduce.
	runJob(name, CommonJoin, w.commonJoinJob(name, step, left, right, out, pruned))
}

// bucketAligned reports whether both join inputs are base tables
// bucketed on the join key with compatible bucket counts.
func (w *Warehouse) bucketAligned(step relal.Step, left, right input) bool {
	if left.base == "" || right.base == "" {
		return false
	}
	ll, lok := TableLayouts[left.base]
	rl, rok := TableLayouts[right.base]
	if !lok || !rok || ll.Buckets == 0 || rl.Buckets == 0 {
		return false
	}
	// The join key must be each side's bucket column (the key column
	// names differ by prefix: l_orderkey vs o_orderkey; compare the
	// suffix after the prefix underscore).
	if colSuffix(ll.BucketCol) != colSuffix(step.JoinKey) && ll.BucketCol != step.JoinKey {
		return false
	}
	if colSuffix(rl.BucketCol) != colSuffix(step.JoinKey) {
		return false
	}
	if ll.Buckets%rl.Buckets != 0 && rl.Buckets%ll.Buckets != 0 {
		return false
	}
	return true
}

func colSuffix(col string) string {
	for i := 0; i < len(col); i++ {
		if col[i] == '_' {
			return col[i+1:]
		}
	}
	return col
}

// commonJoinJob builds the shuffle join job.
func (w *Warehouse) commonJoinJob(name string, step relal.Step, left, right input, out int64, pruned pruneMap) *mapreduce.Job {
	var tasks []mapreduce.MapTask
	for _, in := range []input{left, right} {
		if in.base != "" {
			tasks = append(tasks, w.scanTasks(in.base, pruned.frac(in.base))...)
		} else if in.bytes > 0 {
			tasks = append(tasks, w.intermediateTasks(in.bytes)...)
		}
	}
	return &mapreduce.Job{
		Name:         name,
		MapTasks:     tasks,
		Reducers:     128,
		ShuffleBytes: left.bytes + right.bytes,
		OutputBytes:  out,
	}
}

// LoadTime models the two-phase load the paper describes: copying text
// into HDFS in parallel (with 3× replication over the network) and the
// conversion job rewriting every table into compressed RCFile.
func (w *Warehouse) LoadTime(p *sim.Proc) sim.Duration {
	start := p.Now()
	n := len(w.cl.Nodes)
	var totalText int64
	for _, t := range tpch.TableNames {
		totalText += tpch.TextBytes(t, w.SF)
	}
	// Phase 1: parallel copy into HDFS; each node writes its share
	// locally and ships two replicas over its NIC.
	per := totalText / int64(n)
	wg := w.s.NewWaitGroup()
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		w.s.Spawn("hdfs-copy", func(cp *sim.Proc) {
			defer wg.Done()
			node := w.cl.Nodes[i]
			node.ReadSeqStriped(cp, per)              // read generated text
			node.WriteSeqStriped(cp, per)             // local replica
			node.Send(cp, w.cl.Nodes[(i+1)%n], 2*per) // two remote replicas
		})
	}
	wg.Wait(p)
	// Phase 2: conversion MR job per table (text → gzip RCFile); gzip
	// is CPU-bound at a few MB/s per task.
	for _, t := range tpch.TableNames {
		text := tpch.TextBytes(t, w.SF)
		layout := TableLayouts[t]
		nonEmpty := layout.NonEmptyFiles(t)
		perFile := text / int64(nonEmpty)
		var tasks []mapreduce.MapTask
		for f := 0; f < nonEmpty; f++ {
			tasks = append(tasks, mapreduce.TasksForFile(perFile, f, n)...)
		}
		job := &mapreduce.Job{
			Name:         "load-" + t,
			MapTasks:     tasks,
			Reducers:     128,
			ShuffleBytes: int64(float64(text) * w.cfg.CompressionRatio),
			OutputBytes:  int64(float64(text) * w.cfg.CompressionRatio),
		}
		w.jt.Run(p, job)
	}
	return sim.Duration(p.Now() - start)
}
