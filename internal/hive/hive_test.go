package hive

import (
	"testing"

	"elephants/internal/cluster"
	"elephants/internal/relal"
	"elephants/internal/sim"
	"elephants/internal/tpch"
)

func testWarehouse(sf float64) (*sim.Sim, *Warehouse) {
	s := sim.New()
	cl := cluster.New(s, cluster.Default16())
	db := tpch.Generate(tpch.GenConfig{SF: 0.002, Seed: 1, Random64: true})
	return s, New(s, cl, db, sf, DefaultConfig())
}

func runQ(s *sim.Sim, w *Warehouse, id int) QueryStats {
	var qs QueryStats
	s.Spawn("driver", func(p *sim.Proc) { qs = w.RunQuery(p, id) })
	s.Run()
	return qs
}

func TestLayoutsMatchTable1(t *testing.T) {
	if TableLayouts["lineitem"].Buckets != 512 || TableLayouts["lineitem"].BucketCol != "l_orderkey" {
		t.Error("lineitem layout wrong")
	}
	if TableLayouts["customer"].Files() != 200 {
		t.Errorf("customer files = %d, want 200 (25 partitions × 8 buckets)", TableLayouts["customer"].Files())
	}
	if TableLayouts["lineitem"].NonEmptyFiles("lineitem") != 128 {
		t.Error("lineitem must have 128 non-empty buckets (orderkey sparsity)")
	}
	if TableLayouts["nation"].Files() != 1 {
		t.Error("nation is a single file")
	}
}

func TestQ1TaskCountsMatchPaper(t *testing.T) {
	// At SF 250 each non-empty lineitem bucket is under one block, so
	// 512 map tasks launch (one per file) — the paper's observation.
	s, w := testWarehouse(250)
	qs := runQ(s, w, 1)
	if len(qs.Jobs) == 0 {
		t.Fatal("no jobs")
	}
	first := qs.Jobs[0]
	if first.Stats.MapTasks != 512 {
		t.Errorf("Q1 SF250 map tasks = %d, want 512", first.Stats.MapTasks)
	}
}

func TestQ1MoreTasksAtLargerSF(t *testing.T) {
	s1, w1 := testWarehouse(250)
	q250 := runQ(s1, w1, 1)
	s2, w2 := testWarehouse(1000)
	q1000 := runQ(s2, w2, 1)
	if q1000.Jobs[0].Stats.MapTasks <= q250.Jobs[0].Stats.MapTasks {
		t.Errorf("map tasks should grow with SF: %d vs %d",
			q250.Jobs[0].Stats.MapTasks, q1000.Jobs[0].Stats.MapTasks)
	}
	if q1000.MapPhase(0) <= q250.MapPhase(0) {
		t.Error("map phase should grow with SF")
	}
}

func TestQ1MapPhaseScalingSublinearAtSmallSF(t *testing.T) {
	// Table 4: 250→1000 scales ~2.3× (empty-file overhead amortizes),
	// 4000→16000 approaches 4×.
	phases := map[float64]sim.Duration{}
	for _, sf := range []float64{250, 1000, 4000, 16000} {
		s, w := testWarehouse(sf)
		phases[sf] = runQ(s, w, 1).MapPhase(0)
	}
	early := float64(phases[1000]) / float64(phases[250])
	late := float64(phases[16000]) / float64(phases[4000])
	if early >= 4.0 {
		t.Errorf("250→1000 map-phase scaling = %.2f, want < 4 (empty-file amortization)", early)
	}
	if late < early {
		t.Errorf("scaling should approach 4 at large SF: early %.2f, late %.2f", early, late)
	}
	if late < 2.5 || late > 4.6 {
		t.Errorf("4TB→16TB scaling = %.2f, want ≈4", late)
	}
}

func TestQ5UsesCommonJoinForLineitem(t *testing.T) {
	s, w := testWarehouse(250)
	qs := runQ(s, w, 5)
	var sawCommon, sawMap bool
	for _, j := range qs.Jobs {
		switch j.Strategy {
		case CommonJoin:
			sawCommon = true
		case MapJoin:
			sawMap = true
		}
	}
	if !sawCommon {
		t.Error("Q5 must use a common join for the lineitem repartition (the paper's bottleneck)")
	}
	if !sawMap {
		t.Error("Q5 should map-join the small dimension tables")
	}
}

func TestQ22HasFailingMapJoin(t *testing.T) {
	s, w := testWarehouse(250)
	qs := runQ(s, w, 22)
	var sawFail bool
	for _, j := range qs.Jobs {
		if j.Strategy == FailedMapJoin {
			sawFail = true
		}
	}
	if !sawFail {
		t.Error("Q22 must attempt and fail a map join (backup common join)")
	}
	if qs.Total < w.cfg.MapJoinFailTime {
		t.Errorf("Q22 total %v must include the %v map-join failure stall", qs.Total, w.cfg.MapJoinFailTime)
	}
}

func TestBucketedMapJoinForLineitemOrders(t *testing.T) {
	// Q4 and Q12 join lineitem with orders on orderkey: both bucketed
	// 512-way on that key, so a bucketed map join applies... but in
	// our q4/q12 programs one side is an intermediate (filtered
	// aggregate), so check the primitive directly.
	_, w := testWarehouse(250)
	aligned := w.bucketAligned(
		stepWith("l_orderkey", "lineitem", "orders"),
		input{base: "lineitem", bytes: 1000},
		input{base: "orders", bytes: 500},
	)
	if !aligned {
		t.Error("lineitem ⋈ orders on orderkey should be bucket-aligned")
	}
	misaligned := w.bucketAligned(
		stepWith("l_suppkey", "lineitem", "supplier"),
		input{base: "lineitem", bytes: 1000},
		input{base: "supplier", bytes: 500},
	)
	if misaligned {
		t.Error("lineitem ⋈ supplier on suppkey is not bucket-aligned (lineitem bucketed on orderkey)")
	}
}

func TestSpeedupLargestAtSmallSF(t *testing.T) {
	// Hive's fixed overheads (job startup, task startup, empty files)
	// dominate at small scale: per-byte efficiency improves with SF.
	s1, w1 := testWarehouse(250)
	t250 := runQ(s1, w1, 6).Total
	s2, w2 := testWarehouse(4000)
	t4000 := runQ(s2, w2, 6).Total
	scaling := float64(t4000) / float64(t250)
	if scaling >= 16 {
		t.Errorf("Q6 250→4000 (16× data) scaled %.1f×; Hive should scale sublinearly", scaling)
	}
}

func TestAnswersMatchReference(t *testing.T) {
	s, w := testWarehouse(250)
	qs := runQ(s, w, 6)
	ref, _ := tpch.RunQuery(6, w.db)
	if qs.Answer.NumRows() != ref.NumRows() {
		t.Fatal("Hive answer row count differs from reference")
	}
	if qs.Answer.FloatCol("revenue").Get(0) != ref.FloatCol("revenue").Get(0) {
		t.Errorf("Hive Q6 answer %v != reference %v",
			qs.Answer.FloatCol("revenue").Get(0), ref.FloatCol("revenue").Get(0))
	}
}

func TestLoadTimeScalesWithSF(t *testing.T) {
	s1, w1 := testWarehouse(250)
	var l250 sim.Duration
	s1.Spawn("load", func(p *sim.Proc) { l250 = w1.LoadTime(p) })
	s1.Run()
	s2, w2 := testWarehouse(1000)
	var l1000 sim.Duration
	s2.Spawn("load", func(p *sim.Proc) { l1000 = w2.LoadTime(p) })
	s2.Run()
	if l1000 <= l250 {
		t.Errorf("load time must grow with SF: %v vs %v", l250, l1000)
	}
	ratio := float64(l1000) / float64(l250)
	if ratio < 2 || ratio > 6 {
		t.Errorf("250→1000 load scaling = %.2f, want ≈3-4 (paper: 38→125 min)", ratio)
	}
}

func stepWith(key, leftBase, rightBase string) relal.Step {
	return relal.Step{JoinKey: key, LeftBase: leftBase, RightBase: rightBase}
}

// TestPredicatePushdownSpeedsUpScans: with the pushdown tunable on, the
// scan-heavy queries consume the functional run's skipped-bytes ratio
// and waive decompression CPU for pruned chunks; paper-faithful Hive
// (knob off) keeps its CPU-bound full-decompression scans.
func TestPredicatePushdownSpeedsUpScans(t *testing.T) {
	run := func(pushdown bool, id int) sim.Duration {
		s := sim.New()
		cl := cluster.New(s, cluster.Default16())
		db := tpch.Generate(tpch.GenConfig{SF: 0.002, Seed: 1, Random64: true})
		cfg := DefaultConfig()
		cfg.PredicatePushdown = pushdown
		w := New(s, cl, db, 1000, cfg)
		return runQ(s, w, id).Total
	}
	for _, id := range []int{1, 6} {
		base := run(false, id)
		pushed := run(true, id)
		if pushed >= base {
			t.Errorf("Q%d with pushdown (%v) should beat paper-faithful Hive (%v)", id, pushed, base)
		}
	}
	// Answers are unaffected — only the CPU charge moves.
	s := sim.New()
	cl := cluster.New(s, cluster.Default16())
	db := tpch.Generate(tpch.GenConfig{SF: 0.002, Seed: 1, Random64: true})
	cfg := DefaultConfig()
	cfg.PredicatePushdown = true
	w := New(s, cl, db, 1000, cfg)
	qs := runQ(s, w, 6)
	ref, _ := tpch.RunQuery(6, db)
	if qs.Answer.FloatCol("revenue").Get(0) != ref.FloatCol("revenue").Get(0) {
		t.Error("pushdown changed the Q6 answer")
	}
}
