package htap

import (
	"testing"
	"time"

	"elephants/internal/fault"
)

// TestConverterBackoffSaturation pins the backoff bound's observability:
// a run of transient part-write failures long enough to clamp the
// background converter's backoff at its 64× cap must increment
// converter_backoff_max_reached exactly once per episode — and the
// converter must still finish the conversion once the fault clears.
func TestConverterBackoffSaturation(t *testing.T) {
	db := goldenDB()
	fs := fault.NewInjector(fault.NewMemFS(), fault.Schedule{Seed: 1, TransientPartFails: 12})
	store, err := Open(db, map[string]int{"orders": 64}, Config{
		FS: fs, Window: -1, RCFile: true,
		ConvertRows: 8, ConvertEvery: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	for _, r := range store.HeldRecords() {
		if _, err := store.AppendRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Quiesce(); err != nil {
		t.Fatal(err)
	}
	store.StartConverter()
	deadline := time.Now().Add(30 * time.Second)
	var st Stats
	for {
		st = store.StatsNow()
		if st.BackoffMaxReached >= 1 && st.LagRecords == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("converter never saturated+recovered: %+v (faults %v)", st, fs.Faults())
		}
		time.Sleep(time.Millisecond)
	}
	store.StopConverter()
	if st.ConverterRetries < 6 {
		t.Fatalf("want >= 6 retries on the way to saturation, got %d", st.ConverterRetries)
	}
	if st.BackoffMaxReached != 1 {
		t.Fatalf("one failure episode must count one saturation, got %d", st.BackoffMaxReached)
	}
}
