package htap

import (
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"elephants/internal/delta"
	"elephants/internal/fault"
	"elephants/internal/tpch"
)

// durableConfig is the crash tests' store shape: immediate flush
// windows (every fault point is deterministic), small row groups and
// convert batches so the converter really runs during a short write
// burst, and RCF5 parts on the given FS.
func durableConfig(fs fault.FS, pol delta.SyncPolicy) Config {
	return Config{
		Window:       -1,
		RCFile:       true,
		GroupRows:    2048,
		ConvertRows:  64,
		ConvertEvery: 200 * time.Microsecond,
		FS:           fs,
		Sync:         pol,
	}
}

// driveWriters replays held through store with 4 concurrent writers
// sharing a cursor, stopping each writer at its first error (the store
// is dying). skip filters records already recovered. Returns how many
// appends were acknowledged.
func driveWriters(t *testing.T, store *Store, held []delta.Record, skip func(delta.Record) bool, wantErrors bool) int64 {
	t.Helper()
	var cursor, acked atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := cursor.Add(1) - 1
				if int(i) >= len(held) {
					return
				}
				if skip != nil && skip(held[i]) {
					continue
				}
				if _, err := store.AppendRecord(held[i]); err != nil {
					if !wantErrors {
						t.Errorf("append: %v", err)
					}
					return
				}
				acked.Add(1)
			}
		}()
	}
	wg.Wait()
	return acked.Load()
}

// recoverAndPin reopens the store over fs (no injector — the faulty
// process is dead), re-appends every held record past each table's
// recovered position, quiesces, converts, and pins all 22 answers to
// the golden snapshot. Returns the reopened store's stats from just
// after Open (recovery accounting) for the caller to assert on.
func recoverAndPin(t *testing.T, fs fault.FS, pol delta.SyncPolicy, want string) Stats {
	t.Helper()
	db := goldenDB()
	store, err := Open(db, testHold(), durableConfig(fs, pol))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	openStats := store.StatsNow()
	next := make(map[string]int64)
	for table := range testHold() {
		next[table] = store.NextPos(table)
	}
	driveWriters(t, store, store.HeldRecords(), func(r delta.Record) bool {
		return r.Pos < next[r.Table]
	}, false)
	if err := store.Quiesce(); err != nil {
		t.Fatalf("quiesce after recovery: %v", err)
	}
	if err := store.ConvertAll(); err != nil {
		t.Fatalf("convert after recovery: %v", err)
	}
	diffSnapshot(t, snapshotAnswers(db), want)
	if err := store.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return openStats
}

// TestHtapCrashMatrix is the tentpole's proof: drive concurrent write
// traffic (converter live) against a schedule of injected faults —
// torn log appends, a failing fsync, a full disk, torn part writes,
// and a no-fsync policy — "kill the process" at the injected point,
// crash the file system, reopen, recover, re-append from the recovered
// watermark, and require all 22 answers byte-identical to the golden
// snapshot. Under the syncing policies, nothing acknowledged may be
// lost.
func TestHtapCrashMatrix(t *testing.T) {
	want := readGolden(t)
	cases := []struct {
		name  string
		sched fault.Schedule
		pol   delta.SyncPolicy
		// ackDurable: acked ⇒ durable holds, so every acknowledged
		// append must be among the replayed frames.
		ackDurable bool
	}{
		{name: "append-torn", sched: fault.Schedule{Seed: 3, TornAppendAfter: 4096}, pol: delta.SyncGroup, ackDurable: true},
		{name: "fsync-fail", sched: fault.Schedule{Seed: 5, SyncFailAt: 5}, pol: delta.SyncGroup, ackDurable: true},
		{name: "enospc", sched: fault.Schedule{Seed: 7, DiskCap: 6000}, pol: delta.SyncGroup, ackDurable: true},
		{name: "part-write-torn", sched: fault.Schedule{Seed: 9, TornPartAfter: 512}, pol: delta.SyncGroup, ackDurable: true},
		{name: "sync-none-crash", sched: fault.Schedule{Seed: 11}, pol: delta.SyncNone, ackDurable: false},
		{name: "always-torn", sched: fault.Schedule{Seed: 13, TornAppendAfter: 2048}, pol: delta.SyncAlways, ackDurable: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := goldenDB()
			memfs := fault.NewMemFS()
			inj := fault.NewInjector(memfs, tc.sched)
			store, err := Open(db, testHold(), durableConfig(inj, tc.pol))
			if err != nil {
				t.Fatal(err)
			}
			store.StartConverter()
			acked := driveWriters(t, store, store.HeldRecords(), nil, true)
			store.StopConverter()
			// No Close: the "process" dies here with whatever the
			// schedule let through; the machine crash tears every
			// unsynced tail.
			memfs.Crash(tc.sched.Seed)

			stats := recoverAndPin(t, memfs, tc.pol, want)
			if tc.ackDurable && stats.FramesReplayed < acked {
				t.Errorf("durability hole: %d appends acked, only %d frames replayed (faults: %v)",
					acked, stats.FramesReplayed, inj.Faults())
			}
		})
	}
}

// TestHtapReopenEmptyLog pins the zero-committed-frames edges: a store
// that crashes before any commit recovers to a clean slate, and a log
// holding only garbage bytes is truncated to empty rather than
// replayed.
func TestHtapReopenEmptyLog(t *testing.T) {
	want := readGolden(t)
	t.Run("fresh", func(t *testing.T) {
		memfs := fault.NewMemFS()
		db := goldenDB()
		store, err := Open(db, testHold(), durableConfig(memfs, delta.SyncGroup))
		if err != nil {
			t.Fatal(err)
		}
		_ = store // crash before a single append
		memfs.Crash(1)
		stats := recoverAndPin(t, memfs, delta.SyncGroup, want)
		if stats.FramesReplayed != 0 || stats.TruncatedBytes != 0 {
			t.Errorf("recovered %d frames, %d truncated bytes from an empty log",
				stats.FramesReplayed, stats.TruncatedBytes)
		}
	})
	t.Run("garbage-log", func(t *testing.T) {
		memfs := fault.NewMemFS()
		if err := fault.WriteFile(memfs, "delta.log", []byte("\xff\xfe\xfdnot a frame")); err != nil {
			t.Fatal(err)
		}
		stats := recoverAndPin(t, memfs, delta.SyncGroup, want)
		if stats.FramesReplayed != 0 {
			t.Errorf("replayed %d frames from garbage", stats.FramesReplayed)
		}
		if stats.TruncatedBytes == 0 {
			t.Error("garbage log reports no truncated bytes")
		}
	})
}

// cleanDurableRun builds a fully-written, converted, closed store on
// memfs and returns the golden snapshot it pinned.
func cleanDurableRun(t *testing.T, memfs *fault.MemFS, want string) {
	t.Helper()
	db := goldenDB()
	store, err := Open(db, testHold(), durableConfig(memfs, delta.SyncGroup))
	if err != nil {
		t.Fatal(err)
	}
	driveWriters(t, store, store.HeldRecords(), nil, false)
	if err := store.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := store.ConvertAll(); err != nil {
		t.Fatal(err)
	}
	diffSnapshot(t, snapshotAnswers(db), want)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHtapRecoverHalfWrittenPart crashes "mid part write": a converted
// part file survives only as a prefix. Recovery must quarantine it (the
// footer cannot parse) and serve its rows from the replayed log — the
// answers stay golden with no re-appends at all.
func TestHtapRecoverHalfWrittenPart(t *testing.T) {
	want := readGolden(t)
	memfs := fault.NewMemFS()
	cleanDurableRun(t, memfs, want)
	name := partName("lineitem", 0, testHold()["lineitem"])
	data, err := memfs.ReadFile(name)
	if err != nil {
		t.Fatalf("expected part file %s: %v", name, err)
	}
	if err := fault.WriteFile(memfs, name, data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}

	db := goldenDB()
	store, err := Open(db, testHold(), durableConfig(memfs, delta.SyncGroup))
	if err != nil {
		t.Fatal(err)
	}
	stats := store.StatsNow()
	if stats.PartsQuarantined < 1 {
		t.Errorf("half-written part not quarantined: %+v", stats)
	}
	if stats.FramesReplayed != int64(len(store.HeldRecords())) {
		t.Errorf("replayed %d frames, want %d", stats.FramesReplayed, len(store.HeldRecords()))
	}
	if err := store.Quiesce(); err != nil {
		t.Fatal(err)
	}
	diffSnapshot(t, snapshotAnswers(db), want)
	store.Close()
}

// TestHtapCorruptPartQuarantine flips one bit inside a persisted RCF5
// part's chunk region: reopen adopts the part (the footer is intact),
// the first scan that touches the chunk gets ErrCorrupt from the CRC,
// the part is quarantined mid-scan, and the same scan's retry serves
// the rows from the replayed log — golden answers, never a wrong one.
// A re-conversion then restores the columnar part.
func TestHtapCorruptPartQuarantine(t *testing.T) {
	want := readGolden(t)
	memfs := fault.NewMemFS()
	cleanDurableRun(t, memfs, want)
	name := partName("lineitem", 0, testHold()["lineitem"])
	data, err := memfs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[20] ^= 0x10 // inside the first chunk, far from the footer
	if err := fault.WriteFile(memfs, name, bad); err != nil {
		t.Fatal(err)
	}

	db := goldenDB()
	store, err := Open(db, testHold(), durableConfig(memfs, delta.SyncGroup))
	if err != nil {
		t.Fatal(err)
	}
	if got := store.StatsNow().PartsRecovered; got < 2 {
		t.Fatalf("recovered %d parts, want both (footer still parses)", got)
	}
	// Force a full scan of every chunk through the htap source: the
	// corruption must surface, quarantine, and degrade — not panic, not
	// return wrong rows.
	st := store.tables["lineitem"]
	hs := &htapSource{store: store, st: st, base: st.base}
	tbl, scanStats := hs.ScanTable(nil, nil)
	if tbl.NumRows() != st.base.NumRows() {
		t.Fatalf("degraded scan rows = %d, want %d", tbl.NumRows(), st.base.NumRows())
	}
	if scanStats.CorruptChunks < 1 {
		t.Error("scan stats did not count the corrupt chunk")
	}
	stats := store.StatsNow()
	if stats.CorruptChunks < 1 || stats.PartsQuarantined < 1 {
		t.Errorf("corruption not quarantined: %+v", stats)
	}
	diffSnapshot(t, snapshotAnswers(db), want)

	// The converter re-encodes the dropped range; answers hold.
	if err := store.ConvertAll(); err != nil {
		t.Fatal(err)
	}
	if lag := store.StatsNow().LagRecords; lag != 0 {
		t.Errorf("lag = %d after re-conversion", lag)
	}
	diffSnapshot(t, snapshotAnswers(db), want)
	store.Close()
}

// TestHtapConverterRetriesTransientFaults pins the backoff path: the
// first part writes fail with a transient error, the converter retries
// with exponential backoff, and conversion eventually lands with the
// retries counted.
func TestHtapConverterRetriesTransientFaults(t *testing.T) {
	want := readGolden(t)
	db := goldenDB()
	memfs := fault.NewMemFS()
	inj := fault.NewInjector(memfs, fault.Schedule{Seed: 1, TransientPartFails: 2})
	store, err := Open(db, testHold(), durableConfig(inj, delta.SyncGroup))
	if err != nil {
		t.Fatal(err)
	}
	driveWriters(t, store, store.HeldRecords(), nil, false)
	if err := store.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := store.ConvertAll(); err != nil {
		t.Fatalf("ConvertAll should absorb transient faults: %v", err)
	}
	stats := store.StatsNow()
	if stats.ConverterRetries < 2 {
		t.Errorf("retries = %d, want >= 2", stats.ConverterRetries)
	}
	if stats.LagRecords != 0 {
		t.Errorf("lag = %d after ConvertAll", stats.LagRecords)
	}
	diffSnapshot(t, snapshotAnswers(db), want)
	store.Close()
}

// BenchmarkRecovery measures Open's replay-into-views cost against log
// size, reporting the durable log's byte size alongside ns/op — the
// recovery-time-vs-log-size curve bench.sh records.
func BenchmarkRecovery(b *testing.B) {
	for _, frames := range []int{1024, 4096, 16384} {
		b.Run("frames="+strconv.Itoa(frames), func(b *testing.B) {
			db := tpch.Generate(tpch.GenConfig{SF: 0.01, Seed: 1, Random64: true})
			hold := map[string]int{"lineitem": frames}
			memfs := fault.NewMemFS()
			cfg := Config{Window: -1, FS: memfs, Sync: delta.SyncNone, ConvertRows: 1 << 30}
			store, err := Open(db, hold, cfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range store.HeldRecords() {
				if _, err := store.AppendRecord(r); err != nil {
					b.Fatal(err)
				}
			}
			if err := store.Close(); err != nil {
				b.Fatal(err)
			}
			logBytes := len(store.Log().Data())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s2, err := Open(db, hold, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if got := s2.StatsNow().FramesReplayed; got != int64(frames) {
					b.Fatalf("replayed %d frames, want %d", got, frames)
				}
			}
			// After ResetTimer: it clears custom metrics too.
			b.ReportMetric(float64(logBytes), "log_bytes")
		})
	}
}
