// The combined HTAP harness: a YCSB-style write stream replays the
// held-back rows through the BSON write path while tpch.RunStreams
// replays analytical queries over the same store, and the result
// reports all three axes — write ops/sec, analytical QPS, and freshness
// (delta lag) — the ROADMAP's success metric for the update-shipping
// pipeline.
package htap

import (
	"time"

	"elephants/internal/docstore"
	"elephants/internal/tpch"
	"elephants/internal/ycsb"
)

// HarnessConfig scopes one combined run over an existing store.
type HarnessConfig struct {
	// Writers is the number of closed-loop write clients (0 = 1).
	Writers int
	// TargetOps throttles aggregate write throughput (0 = unthrottled).
	TargetOps float64
	// Streams/Rounds/Workers/Queries/NoResultCache parameterize the
	// analytical side exactly as tpch.StreamConfig does.
	Streams, Rounds, Workers int
	Queries                  []int
	NoResultCache            bool
	// SampleEvery is the freshness sampling interval (0 = 1ms).
	SampleEvery time.Duration
}

// Freshness summarizes the sampled delta lag over the run.
type Freshness struct {
	// MaxLagRecords/MeanLagRecords summarize committed-minus-converted
	// over the samples taken while the run was live.
	MaxLagRecords  int64
	MeanLagRecords float64
	// FinalLagRecords is the lag when both phases had finished (before
	// any explicit ConvertAll).
	FinalLagRecords int64
	Samples         int
	// Converts/ConvertedRecords count background conversion activity.
	Converts         int64
	ConvertedRecords int64
	// Flushes is the number of delta-log group-commit flushes.
	Flushes int64
}

// HarnessResult is one combined run's report.
type HarnessResult struct {
	Write     ycsb.WriteStreamResult
	Analytic  tpch.StreamResult
	Freshness Freshness
}

// Run drives the write stream and the analytical streams concurrently
// over store's DB, sampling freshness throughout. The write stream
// replays every held record through the BSON wire path; the analytical
// streams run their configured rounds over whatever state each scan's
// snapshot sees. Run does not quiesce or convert afterwards — callers
// sequence Quiesce/ConvertAll themselves before pinning answers.
func Run(store *Store, db *tpch.DB, cfg HarnessConfig) (HarnessResult, error) {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = time.Millisecond
	}
	held := store.HeldRecords()
	// Pre-marshal the write ops so the timed loop measures the write
	// path (unmarshal, validate, group commit), not doc construction.
	type op struct {
		table string
		pos   int64
		bson  []byte
	}
	ops := make([]op, len(held))
	for i, r := range held {
		doc, err := store.DocOf(r)
		if err != nil {
			return HarnessResult{}, err
		}
		ops[i] = op{table: r.Table, pos: r.Pos, bson: docstore.Marshal(doc)}
	}

	// Freshness sampler: lag snapshots while either phase runs.
	stopSample := make(chan struct{})
	sampleDone := make(chan Freshness, 1)
	go func() {
		var f Freshness
		var lagSum int64
		ticker := time.NewTicker(cfg.SampleEvery)
		defer ticker.Stop()
		for {
			select {
			case <-stopSample:
				if f.Samples > 0 {
					f.MeanLagRecords = float64(lagSum) / float64(f.Samples)
				}
				sampleDone <- f
				return
			case <-ticker.C:
				st := store.StatsNow()
				lag := st.LagRecords
				if lag > f.MaxLagRecords {
					f.MaxLagRecords = lag
				}
				lagSum += lag
				f.Samples++
			}
		}
	}()

	writeDone := make(chan ycsb.WriteStreamResult, 1)
	go func() {
		writeDone <- ycsb.RunWriteStream(len(ops), ycsb.WriteStreamConfig{
			Clients:   cfg.Writers,
			TargetOps: cfg.TargetOps,
		}, func(i int) error {
			_, err := store.AppendBSON(ops[i].table, ops[i].pos, ops[i].bson)
			return err
		})
	}()

	analytic := tpch.RunStreams(db, tpch.StreamConfig{
		Streams:       cfg.Streams,
		Rounds:        cfg.Rounds,
		Workers:       cfg.Workers,
		Queries:       cfg.Queries,
		NoResultCache: cfg.NoResultCache,
	})
	write := <-writeDone

	close(stopSample)
	fresh := <-sampleDone
	final := store.StatsNow()
	fresh.FinalLagRecords = final.LagRecords
	fresh.Converts = final.Converts
	fresh.ConvertedRecords = final.ConvertedRecords
	fresh.Flushes = final.Flushes

	return HarnessResult{Write: write, Analytic: analytic, Freshness: fresh}, nil
}
