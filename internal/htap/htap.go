// Package htap is the update-shipping pipeline that joins the two
// halves of the paper: docstore-shaped OLTP writes append typed records
// to a group-committed delta log (internal/delta), a background
// converter drains committed deltas in batches and encodes them into
// column-group parts via the existing RCF4 writer, and the relal engine
// answers analytical queries over base + converted parts + the
// unconverted delta tail with per-scan snapshot semantics — the
// Polynesia-style columnar replica fed by live write traffic.
//
//	writers ──AppendBSON──▶ delta.Log ──commit──▶ tail view ──converter──▶ RCF4 part
//	                                       │                        │
//	                                       └── DB.BumpEpoch ◀───────┘
//	                                             (invalidates result memo + stale scans)
//
// Every commit flush and every converted batch bumps the PR 6 DB epoch,
// so the stream harness's per-(query, epoch) result memo and the chunk
// cache never serve stale answers; once writes quiesce and the tail
// converts, memoization resumes at full effect.
//
// Commit order interleaves writers and tables arbitrarily, but each
// record carries its per-table position: the apply side holds
// out-of-order records in a reorder buffer and publishes only the
// contiguous prefix, so a quiesced base + parts + tail concatenation
// reproduces the original table byte-for-byte — which is what lets the
// golden snapshot pin quiesced HTAP answers.
//
// With a Config.FS the store is durable and crash-recoverable: the
// delta log appends through the fault layer (fsync policy per
// Config.Sync), converted parts persist as RCF5 files, and Open replays
// the surviving log bytes through the same reorder buffer to rebuild
// tail views, reconciling the contiguous verified prefix of part files
// against the replayed records. Records the log recovered but the
// driver re-appends are deduplicated by per-table position, so replay
// plus a resume-from-NextPos driver is idempotent. A part that fails
// CRC verification mid-scan is quarantined — the scan falls back to
// base + tail (the log covers every converted row) and the converter
// rebuilds the part; a corrupt part can cost a re-conversion, never a
// wrong answer.
package htap

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"elephants/internal/delta"
	"elephants/internal/docstore"
	"elephants/internal/fault"
	"elephants/internal/metrics"
	"elephants/internal/rcfile"
	"elephants/internal/relal"
	"elephants/internal/tpch"
)

// Counter names in Stats.Counters / the store's metrics.CounterSet.
const (
	cFramesReplayed    = "frames_replayed"
	cTruncatedBytes    = "truncated_bytes"
	cConverterRetries  = "converter_retries"
	cBackoffMaxReached = "converter_backoff_max_reached"
	cCorruptChunks     = "corrupt_chunks"
	cPartsQuarantined  = "parts_quarantined"
	cPartsRecovered    = "parts_recovered"
	cDuplicateRecords  = "duplicate_records"
)

// Config parameterizes the store.
type Config struct {
	// Window is the delta log's group-commit window (0 = the delta
	// default; negative = flush immediately, for deterministic tests).
	Window time.Duration
	// RCFile encodes converted parts (and the held tables' base parts)
	// as RCF4 files instead of in-memory sources.
	RCFile bool
	// GroupRows is the RCF4 row-group size (0 = 4096). Used with RCFile.
	GroupRows int
	// WriterOpts carries the RCF4 encoding toggles. Used with RCFile.
	WriterOpts rcfile.WriterOpts
	// Cache, when non-nil, serves decoded chunks of the RCF4 parts.
	Cache *rcfile.ChunkCache
	// ConvertRows is the tail size at which the background converter
	// encodes a table's tail into a part (0 = 4096).
	ConvertRows int
	// ConvertEvery is the background converter's poll interval
	// (0 = 2ms).
	ConvertEvery time.Duration
	// FS, when non-nil, makes the store durable: the delta log lives in
	// "delta.log" and (with RCFile) converted parts persist as
	// "<table>-<start>-<rows>.part" files. Open replays whatever the FS
	// holds. Wrap the FS in a fault.Injector to test crash schedules.
	FS fault.FS
	// Sync is the delta log's fsync policy (SyncGroup default). Used
	// with FS.
	Sync delta.SyncPolicy
}

func (c Config) withDefaults() Config {
	if c.GroupRows <= 0 {
		c.GroupRows = 4096
	}
	if c.ConvertRows <= 0 {
		c.ConvertRows = 4096
	}
	if c.ConvertEvery <= 0 {
		c.ConvertEvery = 2 * time.Millisecond
	}
	return c
}

// part is one storage part of a table view: the base prefix (built
// in-process each open) or a converted slice of the delta record
// stream. Converted parts remember which record range they accelerate —
// the range [start, start+rows) of the table's published record list —
// so a part that fails verification can be dropped and its rows served
// from the records themselves.
type part struct {
	src   relal.Source
	rcf   *rcfile.Source // non-nil when src is an RCF5 source
	file  string         // persisted part file name ("" if memory-only)
	start int            // first record index covered (converted parts)
	rows  int
	base  bool // the base prefix: never quarantined (built in-process)
}

// tableView is one immutable snapshot of a table's storage: the base
// part, converted delta parts in record order, and the unconverted
// committed tail in per-table row order. Scans load the pointer once,
// so a scan always sees a consistent (parts, tail) pair; installs swap
// the whole view under the table mutex.
type tableView struct {
	parts []*part
	tail  []delta.Record
	// tailSrc memoizes the tail's table snapshot. Views are immutable,
	// so concurrent builders compute identical snapshots and the first
	// published pointer wins.
	tailSrc atomic.Pointer[relal.TableSource]
}

// tableState is one held table's write-side state.
type tableState struct {
	name   string
	schema relal.Schema
	base   *relal.Table // full in-memory table (dictionary + schema donor)

	// mu serializes view installs (commit applies and conversions).
	// Scans never take it — they load view atomically.
	mu   sync.Mutex
	view atomic.Pointer[tableView]

	// recs is every published record in per-table row order, append-only
	// — the authoritative in-memory copy of the delta stream. Converted
	// parts are accelerators over ranges of it (the delta log is never
	// truncated on conversion), so dropping a corrupt part never loses
	// rows: the view's tail re-extends to cover the dropped range.
	// Guarded by mu for writes; views hand out capped reslices, which
	// are safe to read concurrently because published elements are
	// never mutated.
	recs []delta.Record
	// converted is how many of recs are covered by converted parts.
	converted int

	// nextPos/pending are the reorder buffer: committed records arrive
	// in commit order (arbitrary across writers), are parked by
	// position, and only the contiguous prefix is published to the
	// tail. Guarded by mu.
	nextPos int64
	pending map[int64]delta.Record
}

// tailOf returns the capped reslice of recs past the converted
// watermark — the view tail. Caller holds st.mu.
func (st *tableState) tailOf() []delta.Record {
	return st.recs[st.converted:len(st.recs):len(st.recs)]
}

// Store is the HTAP store over a tpch.DB: held tables answer scans
// through base + delta views and accept writes through the delta log.
type Store struct {
	db  *tpch.DB
	cfg Config
	log *delta.Log
	fs  fault.FS // nil for the in-memory store

	tables map[string]*tableState
	held   []delta.Record // the held-back rows, as replayable write ops

	applied   atomic.Int64 // records published to tail views
	converted atomic.Int64 // records encoded into parts
	converts  atomic.Int64 // conversion batches

	counters *metrics.CounterSet // robustness accounting (recovery, retries, corruption)

	convStop chan struct{}
	convDone chan struct{}
}

// New builds an in-memory (or fresh durable) store over db, holding
// back the last hold[name] rows of each named table: the remaining
// prefix becomes the table's base part (installed as the DB's scan
// source), and the suffix is returned by HeldRecords for the write
// driver to replay through the delta path. Equivalent to Open — with a
// Config.FS holding a previous run's bytes, both recover it.
func New(db *tpch.DB, hold map[string]int, cfg Config) (*Store, error) {
	return Open(db, hold, cfg)
}

// Open builds the store and, when Config.FS is set, recovers whatever a
// previous incarnation left there: it replays the delta log's durable
// bytes through the reorder buffer (truncating any torn tail off the
// file), rebuilds tail views, and re-adopts the contiguous verified
// prefix of converted part files — any part that is torn, unparseable,
// or out of range is quarantined and deleted, its rows served from the
// replayed records until the converter rebuilds it.
func Open(db *tpch.DB, hold map[string]int, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	s := &Store{db: db, cfg: cfg, fs: cfg.FS, tables: make(map[string]*tableState), counters: metrics.NewCounterSet()}

	names := make([]string, 0, len(hold))
	for _, name := range tpch.TableNames {
		if hold[name] > 0 {
			names = append(names, name)
		}
	}
	perTable := make(map[string][]delta.Record, len(names))
	for _, name := range names {
		base := db.Table(name)
		k := hold[name]
		n := base.NumRows()
		if k >= n {
			return nil, fmt.Errorf("htap: hold %d of %d rows of %s", k, n, name)
		}
		prefix := relal.Head(base, n-k)
		baseSrc, baseRCF, err := s.buildSource(prefix)
		if err != nil {
			return nil, fmt.Errorf("htap: encode %s base: %w", name, err)
		}
		st := &tableState{
			name:    name,
			schema:  base.Schema,
			base:    base,
			pending: make(map[int64]delta.Record),
		}
		st.view.Store(&tableView{parts: []*part{{src: baseSrc, rcf: baseRCF, rows: n - k, base: true}}})
		s.tables[name] = st
		perTable[name] = recordsOf(base, n-k, n)
		db.SetSource(name, &htapSource{store: s, st: st, base: base})
	}
	s.held = interleave(names, perTable)

	if s.fs == nil {
		s.log = delta.NewLog(cfg.Window, s.onCommit)
		return s, nil
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover opens the durable delta log, replays it into the reorder
// buffers, and reconciles persisted part files against the replayed
// records.
func (s *Store) recover() error {
	f, err := s.fs.Open("delta.log")
	if err != nil {
		return fmt.Errorf("htap: open delta log: %w", err)
	}
	log, recovered, truncated, err := delta.OpenFile(f, delta.FileConfig{
		Window:   s.cfg.Window,
		Sync:     s.cfg.Sync,
		OnCommit: s.onCommit,
	})
	if err != nil {
		f.Close()
		return fmt.Errorf("htap: recover delta log: %w", err)
	}
	s.log = log
	s.counters.Add(cFramesReplayed, int64(len(recovered)))
	s.counters.Add(cTruncatedBytes, truncated)
	// Replay through the same apply path commits use — same reorder
	// buffer, same dedup, same publish — without the epoch churn.
	s.applyBatch(recovered)

	if err := s.recoverParts(); err != nil {
		return err
	}
	s.db.BumpEpoch()
	return nil
}

// recoverParts re-adopts persisted part files. Per table, candidate
// files sort by record range and the longest contiguous prefix that
// parses and stays within the replayed records is installed; everything
// else — torn files, ranges past what the log recovered, parts shadowed
// by a broken predecessor — is quarantined (deleted) and left for the
// converter to rebuild. In the non-RCFile storage mode parts are
// memory-only, so any *.part files on the FS are stale and removed.
func (s *Store) recoverParts() error {
	names, err := s.fs.List()
	if err != nil {
		return fmt.Errorf("htap: list parts: %w", err)
	}
	type cand struct {
		file        string
		start, rows int
	}
	byTable := make(map[string][]cand)
	for _, name := range names {
		table, start, rows, ok := parsePartName(name)
		if !ok {
			continue
		}
		if !s.cfg.RCFile || s.tables[table] == nil {
			s.fs.Remove(name)
			continue
		}
		byTable[table] = append(byTable[table], cand{file: name, start: start, rows: rows})
	}
	for table, cands := range byTable {
		st := s.tables[table]
		sort.Slice(cands, func(i, j int) bool { return cands[i].start < cands[j].start })
		st.mu.Lock()
		covered := 0
		var parts []*part
		parts = append(parts, st.view.Load().parts[0]) // base
		broken := false
		for _, c := range cands {
			if broken || c.start != covered || c.start+c.rows > len(st.recs) {
				s.fs.Remove(c.file)
				s.counters.Add(cPartsQuarantined, 1)
				broken = true // contiguity is gone; later parts can't install
				continue
			}
			data, err := s.fs.ReadFile(c.file)
			if err != nil {
				s.fs.Remove(c.file)
				s.counters.Add(cPartsQuarantined, 1)
				broken = true
				continue
			}
			src, err := rcfile.NewSourceFromBytes(data, st.schema, table)
			if err != nil {
				// Torn or corrupt footer — the log covers these rows.
				s.fs.Remove(c.file)
				s.counters.Add(cPartsQuarantined, 1)
				broken = true
				continue
			}
			src.SetCache(s.cfg.Cache)
			parts = append(parts, &part{src: src, rcf: src, file: c.file, start: c.start, rows: c.rows})
			covered = c.start + c.rows
			s.counters.Add(cPartsRecovered, 1)
			s.converted.Add(int64(c.rows))
			s.converts.Add(1)
		}
		st.converted = covered
		st.view.Store(&tableView{parts: parts, tail: st.tailOf()})
		st.mu.Unlock()
	}
	return nil
}

// partName formats a converted part's file name; parsePartName inverts
// it. Table names contain no "-", so the split is unambiguous.
func partName(table string, start, rows int) string {
	return fmt.Sprintf("%s-%d-%d.part", table, start, rows)
}

func parsePartName(name string) (table string, start, rows int, ok bool) {
	base, found := strings.CutSuffix(name, ".part")
	if !found {
		return "", 0, 0, false
	}
	fields := strings.Split(base, "-")
	if len(fields) != 3 {
		return "", 0, 0, false
	}
	start, err1 := strconv.Atoi(fields[1])
	rows, err2 := strconv.Atoi(fields[2])
	if err1 != nil || err2 != nil || start < 0 || rows <= 0 {
		return "", 0, 0, false
	}
	return fields[0], start, rows, true
}

// buildSource wraps t as a scan source per the store's storage mode.
// The second return is the RCF5 view of the same source (nil in the
// in-memory mode).
func (s *Store) buildSource(t *relal.Table) (relal.Source, *rcfile.Source, error) {
	if !s.cfg.RCFile {
		return relal.NewTableSource(t), nil, nil
	}
	src, err := rcfile.NewSourceOpts(t, s.cfg.GroupRows, s.cfg.WriterOpts)
	if err != nil {
		return nil, nil, err
	}
	src.SetCache(s.cfg.Cache)
	return src, src, nil
}

// recordsOf extracts rows [lo, hi) of t as delta records, positions
// numbered from 0 at the hold boundary.
func recordsOf(t *relal.Table, lo, hi int) []delta.Record {
	recs := make([]delta.Record, 0, hi-lo)
	for i := lo; i < hi; i++ {
		cells := make([]delta.Value, len(t.Schema))
		for ci, col := range t.Cols {
			v := col.Flat()
			switch t.Schema[ci].Type {
			case relal.Int:
				cells[ci] = delta.IntVal(v.Ints[i])
			case relal.Float:
				cells[ci] = delta.FloatVal(v.Floats[i])
			default:
				cells[ci] = delta.StrVal(v.StrAt(int32(i)))
			}
		}
		recs = append(recs, delta.Record{Table: t.Name, Pos: int64(i - lo), Cells: cells})
	}
	return recs
}

// interleave merges the per-table record lists into one op stream,
// proportionally by progress, so a write run touches every held table
// throughout rather than draining them one after another.
func interleave(names []string, perTable map[string][]delta.Record) []delta.Record {
	total := 0
	for _, recs := range perTable {
		total += len(recs)
	}
	out := make([]delta.Record, 0, total)
	idx := make([]int, len(names))
	for len(out) < total {
		// Pick the table that is least far through its list.
		best, bestFrac := -1, 2.0
		for i, name := range names {
			n := len(perTable[name])
			if idx[i] >= n {
				continue
			}
			frac := float64(idx[i]) / float64(n)
			if frac < bestFrac {
				best, bestFrac = i, frac
			}
		}
		out = append(out, perTable[names[best]][idx[best]])
		idx[best]++
	}
	return out
}

// HeldRecords returns the held-back rows as an ordered op list for the
// write driver. Each record's Pos is its row position past the hold
// boundary of its table; replaying every op (in any commit
// interleaving) and quiescing reconstructs the original tables exactly.
func (s *Store) HeldRecords() []delta.Record { return s.held }

// Log exposes the delta log (stats, replay snapshots).
func (s *Store) Log() *delta.Log { return s.log }

// onCommit is the delta log's commit hook: it files each committed
// record into its table's reorder buffer, publishes the contiguous
// prefix to a fresh tail view, and bumps the DB epoch so memoized
// results die. Runs with the log mutex held — batches apply in commit
// order, exactly once.
func (s *Store) onCommit(batch []delta.Record, from, to int64) {
	if s.applyBatch(batch) {
		s.db.BumpEpoch()
	}
}

// applyBatch runs committed (or recovered) records through the reorder
// buffers and publishes contiguous prefixes; reports whether any view
// changed. Every record is disposed exactly once toward the applied
// counter — published, dropped as an already-published duplicate, or
// displaced from pending by a re-delivery of the same position — so
// `applied == committed` still balances after a recovery followed by a
// driver re-appending from NextPos.
func (s *Store) applyBatch(batch []delta.Record) bool {
	touched := false
	for i := 0; i < len(batch); {
		name := batch[i].Table
		j := i + 1
		for j < len(batch) && batch[j].Table == name {
			j++
		}
		st := s.tables[name]
		if st == nil {
			panic("htap: commit for unknown table " + name)
		}
		st.mu.Lock()
		var dups int64
		for _, r := range batch[i:j] {
			if r.Pos < st.nextPos {
				dups++ // already published (recovery re-append)
				continue
			}
			if _, exists := st.pending[r.Pos]; exists {
				dups++ // displaces an identical parked record
			}
			st.pending[r.Pos] = r
		}
		published := int64(0)
		for {
			r, ok := st.pending[st.nextPos]
			if !ok {
				break
			}
			st.recs = append(st.recs, r)
			delete(st.pending, st.nextPos)
			st.nextPos++
			published++
		}
		if published > 0 {
			old := st.view.Load()
			st.view.Store(&tableView{parts: old.parts, tail: st.tailOf()})
			touched = true
		}
		s.applied.Add(published + dups)
		if dups > 0 {
			s.counters.Add(cDuplicateRecords, dups)
		}
		st.mu.Unlock()
		i = j
	}
	return touched
}

// NextPos returns the table's next unpublished per-table position — the
// point a write driver resumes from after recovery (records below it
// are already durable and published; re-appending them is harmless but
// wasted work).
func (s *Store) NextPos(table string) int64 {
	st := s.tables[table]
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.nextPos
}

// AppendRecord validates the record against its table's schema and
// appends it to the delta log, blocking until committed. Returns the
// commit sequence number.
func (s *Store) AppendRecord(r delta.Record) (int64, error) {
	st := s.tables[r.Table]
	if st == nil {
		return 0, fmt.Errorf("htap: no held table %q", r.Table)
	}
	if len(r.Cells) != len(st.schema) {
		return 0, fmt.Errorf("htap: %s row has %d cells, schema has %d", r.Table, len(r.Cells), len(st.schema))
	}
	for i, c := range r.Cells {
		if want := kindOf(st.schema[i].Type); c.Kind != want {
			return 0, fmt.Errorf("htap: %s.%s cell kind %d, want %d", r.Table, st.schema[i].Name, c.Kind, want)
		}
	}
	return s.log.Append(r)
}

// kindOf maps a relal column type to its delta cell kind.
func kindOf(t relal.Type) delta.Kind {
	switch t {
	case relal.Int:
		return delta.Int
	case relal.Float:
		return delta.Float
	}
	return delta.Str
}

// DocOf renders a record as the docstore document the write wire format
// carries: one BSON field per column, in schema order.
func (s *Store) DocOf(r delta.Record) (*docstore.Doc, error) {
	st := s.tables[r.Table]
	if st == nil {
		return nil, fmt.Errorf("htap: no held table %q", r.Table)
	}
	if len(r.Cells) != len(st.schema) {
		return nil, fmt.Errorf("htap: %s row has %d cells, schema has %d", r.Table, len(r.Cells), len(st.schema))
	}
	doc := docstore.NewDoc()
	for i, col := range st.schema {
		switch col.Type {
		case relal.Int:
			doc.Set(col.Name, r.Cells[i].Int)
		case relal.Float:
			doc.Set(col.Name, r.Cells[i].Float)
		default:
			doc.Set(col.Name, r.Cells[i].Str)
		}
	}
	return doc, nil
}

// AppendDoc maps a docstore document onto the table's schema (fields
// looked up by column name, types checked) and appends the resulting
// record. pos is the row's per-table position.
func (s *Store) AppendDoc(table string, pos int64, doc *docstore.Doc) (int64, error) {
	st := s.tables[table]
	if st == nil {
		return 0, fmt.Errorf("htap: no held table %q", table)
	}
	cells := make([]delta.Value, len(st.schema))
	for i, col := range st.schema {
		v, ok := doc.Get(col.Name)
		if !ok {
			return 0, fmt.Errorf("htap: doc for %s missing field %q", table, col.Name)
		}
		switch col.Type {
		case relal.Int:
			x, ok := v.(int64)
			if !ok {
				return 0, fmt.Errorf("htap: %s.%s is %T, want int64", table, col.Name, v)
			}
			cells[i] = delta.IntVal(x)
		case relal.Float:
			x, ok := v.(float64)
			if !ok {
				return 0, fmt.Errorf("htap: %s.%s is %T, want float64", table, col.Name, v)
			}
			cells[i] = delta.FloatVal(x)
		default:
			x, ok := v.(string)
			if !ok {
				return 0, fmt.Errorf("htap: %s.%s is %T, want string", table, col.Name, v)
			}
			cells[i] = delta.StrVal(x)
		}
	}
	return s.log.Append(delta.Record{Table: table, Pos: pos, Cells: cells})
}

// AppendBSON is the wire-shaped write path: a BSON document (the
// docstore format) is unmarshalled and applied via AppendDoc — what a
// YCSB client talking the Mongo wire protocol would trigger.
func (s *Store) AppendBSON(table string, pos int64, data []byte) (int64, error) {
	doc, err := docstore.Unmarshal(data)
	if err != nil {
		return 0, err
	}
	return s.AppendDoc(table, pos, doc)
}

// StartConverter launches the background converter: every ConvertEvery
// it encodes any table whose tail has reached ConvertRows records into
// a new column-group part. A table whose conversion fails (a transient
// part-write error, say) backs off exponentially with seeded jitter —
// doubling from ConvertEvery up to 64× — so a struggling disk isn't
// hammered every tick, while healthy tables keep converting on
// schedule.
func (s *Store) StartConverter() {
	if s.convStop != nil {
		return
	}
	s.convStop = make(chan struct{})
	s.convDone = make(chan struct{})
	go func() {
		defer close(s.convDone)
		ticker := time.NewTicker(s.cfg.ConvertEvery)
		defer ticker.Stop()
		rng := rand.New(rand.NewSource(1))
		backoff := make(map[string]time.Duration) // current backoff per failing table
		wait := make(map[string]time.Duration)    // remaining cool-down per failing table
		saturated := make(map[string]bool)        // tables whose backoff hit the cap this episode
		for {
			select {
			case <-s.convStop:
				return
			case <-ticker.C:
				for _, name := range tpch.TableNames {
					st := s.tables[name]
					if st == nil {
						continue
					}
					if w := wait[name]; w > 0 {
						wait[name] = w - s.cfg.ConvertEvery
						continue
					}
					if err := s.convertTable(st, s.cfg.ConvertRows); err != nil {
						s.counters.Add(cConverterRetries, 1)
						b := backoff[name]
						if b == 0 {
							b = s.cfg.ConvertEvery
						}
						b *= 2
						if max := 64 * s.cfg.ConvertEvery; b >= max {
							b = max
							// The backoff is now pinned at its bound — count the
							// saturation once per failure episode so operators can
							// tell "retried a few times" from "stuck for a while".
							if !saturated[name] {
								saturated[name] = true
								s.counters.Add(cBackoffMaxReached, 1)
							}
						}
						backoff[name] = b
						wait[name] = b + time.Duration(rng.Int63n(int64(b/2)+1))
					} else {
						delete(backoff, name)
						delete(wait, name)
						delete(saturated, name)
					}
				}
			}
		}
	}()
}

// StopConverter halts the background converter and waits for it.
func (s *Store) StopConverter() {
	if s.convStop == nil {
		return
	}
	close(s.convStop)
	<-s.convDone
	s.convStop, s.convDone = nil, nil
}

// ConvertAll synchronously converts every non-empty tail, regardless of
// batch size, retrying each table a bounded number of times so a
// scheduled run of transient faults doesn't strand a tail. After
// Quiesce + ConvertAll, every written row lives in a column-group part.
func (s *Store) ConvertAll() error {
	for _, name := range tpch.TableNames {
		st := s.tables[name]
		if st == nil {
			continue
		}
		var err error
		for attempt := 0; attempt < 8; attempt++ {
			if err = s.convertTable(st, 1); err == nil {
				break
			}
			s.counters.Add(cConverterRetries, 1)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// convertTable encodes the record range [st.converted, len(st.recs))
// into a part when it holds at least minRows records. The encode runs
// outside st.mu (commits must not stall behind gzip); the install
// re-checks that the range is still the one snapshotted — a quarantine
// racing in between rolls the watermark back, in which case the built
// part is discarded and the next pass re-converts. The new view's tail
// drops the converted range; the epoch bump invalidates memoized
// answers computed over the tail snapshot.
func (s *Store) convertTable(st *tableState, minRows int) error {
	st.mu.Lock()
	start := st.converted
	recs := st.tailOf()
	if len(recs) < minRows {
		st.mu.Unlock()
		return nil
	}
	t := recordsTable(st, recs)
	st.mu.Unlock()

	src, rcf, err := s.buildSource(t)
	if err != nil {
		return fmt.Errorf("htap: convert %s: %w", st.name, err)
	}
	p := &part{src: src, rcf: rcf, start: start, rows: len(recs)}
	if s.fs != nil && rcf != nil {
		p.file = partName(st.name, start, len(recs))
		if err := fault.WriteFile(s.fs, p.file, rcf.Data()); err != nil {
			s.fs.Remove(p.file)
			return fmt.Errorf("htap: persist %s: %w", p.file, err)
		}
	}

	st.mu.Lock()
	if st.converted != start {
		// A quarantine (or competing convert) moved the watermark while
		// we encoded; this part no longer lines up. Drop it.
		st.mu.Unlock()
		if p.file != "" {
			s.fs.Remove(p.file)
		}
		return nil
	}
	old := st.view.Load()
	parts := make([]*part, 0, len(old.parts)+1)
	parts = append(append(parts, old.parts...), p)
	st.converted = start + len(recs)
	st.view.Store(&tableView{parts: parts, tail: st.tailOf()})
	st.mu.Unlock()
	s.converted.Add(int64(len(recs)))
	s.converts.Add(1)
	s.db.BumpEpoch()
	return nil
}

// quarantine drops bad (a part whose chunk failed CRC verification mid-
// scan) and every later part of the table: the converted watermark
// rolls back to the start of the bad range, the view's tail re-extends
// over the dropped rows straight from the published records, and the
// persisted files are deleted so recovery can't re-adopt them. The
// caller's scan then retries against the degraded view — base + intact
// parts + tail — which serves the same rows; the converter re-encodes
// the range on its next pass. No answer is ever produced from bytes
// that failed verification.
func (s *Store) quarantine(st *tableState, bad *part) {
	st.mu.Lock()
	old := st.view.Load()
	idx := -1
	for i, p := range old.parts {
		if p == bad {
			idx = i
			break
		}
	}
	if idx < 0 || bad.base {
		// Another scan already quarantined it (views are immutable, so
		// two scans can race to report the same part).
		st.mu.Unlock()
		return
	}
	dropped := old.parts[idx:]
	st.converted = bad.start
	st.view.Store(&tableView{parts: old.parts[:idx:idx], tail: st.tailOf()})
	var droppedRows int64
	for _, p := range dropped {
		droppedRows += int64(p.rows)
		if p.file != "" {
			s.fs.Remove(p.file)
		}
	}
	st.mu.Unlock()
	s.converted.Add(-droppedRows)
	s.counters.Add(cPartsQuarantined, int64(len(dropped)))
	s.db.BumpEpoch()
}

// Close stops the converter and closes the delta log (quiesce, final
// fsync, file close). The store must not be used afterwards; reopen
// with Open over the same FS.
func (s *Store) Close() error {
	s.StopConverter()
	return s.log.Close()
}

// Quiesce waits for the delta log to drain, then verifies every
// committed record has been published (no position gaps left in any
// reorder buffer). Call with all writers stopped.
func (s *Store) Quiesce() error {
	s.log.Quiesce()
	for name, st := range s.tables {
		st.mu.Lock()
		pending := len(st.pending)
		st.mu.Unlock()
		if pending != 0 {
			return fmt.Errorf("htap: %s has %d unpublished records after quiesce (position gap)", name, pending)
		}
	}
	if a, c := s.applied.Load(), s.log.CommittedSeq(); a != c {
		return fmt.Errorf("htap: applied %d of %d committed records after quiesce", a, c)
	}
	return nil
}

// Stats is a point-in-time freshness and accounting snapshot.
type Stats struct {
	// CommittedRecords is the delta log's commit watermark.
	CommittedRecords int64
	// AppliedRecords is how many of those scans can see (tail views).
	AppliedRecords int64
	// ConvertedRecords is how many have been encoded into parts.
	ConvertedRecords int64
	// Converts is the number of conversion batches.
	Converts int64
	// Flushes is the number of physical delta-log flushes.
	Flushes int64
	// LagRecords is CommittedRecords - ConvertedRecords: the freshness
	// lag, in records, between the write watermark and the columnar
	// replica's converted state.
	LagRecords int64

	// Robustness accounting.

	// FramesReplayed is how many records Open recovered from the
	// durable log; TruncatedBytes is the torn tail it discarded.
	FramesReplayed int64
	TruncatedBytes int64
	// ConverterRetries counts conversion attempts that failed and were
	// retried (backoff in the background converter, bounded retry in
	// ConvertAll). BackoffMaxReached counts failure episodes whose
	// backoff saturated at the 64× ConvertEvery cap — the "converter is
	// stuck, not just unlucky" signal.
	ConverterRetries  int64
	BackoffMaxReached int64
	// CorruptChunks counts chunk CRC failures detected during scans;
	// PartsQuarantined counts parts dropped (at scan time or during
	// recovery reconciliation) and PartsRecovered counts part files
	// re-adopted by Open.
	CorruptChunks    int64
	PartsQuarantined int64
	PartsRecovered   int64
	// DuplicateRecords counts committed records dropped by position
	// dedup — a driver re-appending rows the recovered log already
	// held.
	DuplicateRecords int64
}

// StatsNow samples the store. Safe from any goroutine.
func (s *Store) StatsNow() Stats {
	committed, flushes := s.log.Stats()
	converted := s.converted.Load()
	return Stats{
		CommittedRecords:  committed,
		AppliedRecords:    s.applied.Load(),
		ConvertedRecords:  converted,
		Converts:          s.converts.Load(),
		Flushes:           flushes,
		LagRecords:        committed - converted,
		FramesReplayed:    s.counters.Get(cFramesReplayed),
		TruncatedBytes:    s.counters.Get(cTruncatedBytes),
		ConverterRetries:  s.counters.Get(cConverterRetries),
		BackoffMaxReached: s.counters.Get(cBackoffMaxReached),
		CorruptChunks:     s.counters.Get(cCorruptChunks),
		PartsQuarantined:  s.counters.Get(cPartsQuarantined),
		PartsRecovered:    s.counters.Get(cPartsRecovered),
		DuplicateRecords:  s.counters.Get(cDuplicateRecords),
	}
}
