// Package htap is the update-shipping pipeline that joins the two
// halves of the paper: docstore-shaped OLTP writes append typed records
// to a group-committed delta log (internal/delta), a background
// converter drains committed deltas in batches and encodes them into
// column-group parts via the existing RCF4 writer, and the relal engine
// answers analytical queries over base + converted parts + the
// unconverted delta tail with per-scan snapshot semantics — the
// Polynesia-style columnar replica fed by live write traffic.
//
//	writers ──AppendBSON──▶ delta.Log ──commit──▶ tail view ──converter──▶ RCF4 part
//	                                       │                        │
//	                                       └── DB.BumpEpoch ◀───────┘
//	                                             (invalidates result memo + stale scans)
//
// Every commit flush and every converted batch bumps the PR 6 DB epoch,
// so the stream harness's per-(query, epoch) result memo and the chunk
// cache never serve stale answers; once writes quiesce and the tail
// converts, memoization resumes at full effect.
//
// Commit order interleaves writers and tables arbitrarily, but each
// record carries its per-table position: the apply side holds
// out-of-order records in a reorder buffer and publishes only the
// contiguous prefix, so a quiesced base + parts + tail concatenation
// reproduces the original table byte-for-byte — which is what lets the
// golden snapshot pin quiesced HTAP answers.
package htap

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"elephants/internal/delta"
	"elephants/internal/docstore"
	"elephants/internal/rcfile"
	"elephants/internal/relal"
	"elephants/internal/tpch"
)

// Config parameterizes the store.
type Config struct {
	// Window is the delta log's group-commit window (0 = the delta
	// default; negative = flush immediately, for deterministic tests).
	Window time.Duration
	// RCFile encodes converted parts (and the held tables' base parts)
	// as RCF4 files instead of in-memory sources.
	RCFile bool
	// GroupRows is the RCF4 row-group size (0 = 4096). Used with RCFile.
	GroupRows int
	// WriterOpts carries the RCF4 encoding toggles. Used with RCFile.
	WriterOpts rcfile.WriterOpts
	// Cache, when non-nil, serves decoded chunks of the RCF4 parts.
	Cache *rcfile.ChunkCache
	// ConvertRows is the tail size at which the background converter
	// encodes a table's tail into a part (0 = 4096).
	ConvertRows int
	// ConvertEvery is the background converter's poll interval
	// (0 = 2ms).
	ConvertEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.GroupRows <= 0 {
		c.GroupRows = 4096
	}
	if c.ConvertRows <= 0 {
		c.ConvertRows = 4096
	}
	if c.ConvertEvery <= 0 {
		c.ConvertEvery = 2 * time.Millisecond
	}
	return c
}

// tableView is one immutable snapshot of a table's storage: the base
// part, converted delta parts in conversion order, and the unconverted
// committed tail in per-table row order. Scans load the pointer once,
// so a scan always sees a consistent (parts, tail) pair; installs swap
// the whole view under the table mutex.
type tableView struct {
	parts []relal.Source
	tail  []delta.Record
	// tailSrc memoizes the tail's table snapshot. Views are immutable,
	// so concurrent builders compute identical snapshots and the first
	// published pointer wins.
	tailSrc atomic.Pointer[relal.TableSource]
}

// tableState is one held table's write-side state.
type tableState struct {
	name   string
	schema relal.Schema
	base   *relal.Table // full in-memory table (dictionary + schema donor)

	// mu serializes view installs (commit applies and conversions).
	// Scans never take it — they load view atomically.
	mu   sync.Mutex
	view atomic.Pointer[tableView]

	// nextPos/pending are the reorder buffer: committed records arrive
	// in commit order (arbitrary across writers), are parked by
	// position, and only the contiguous prefix is published to the
	// tail. Guarded by mu.
	nextPos int64
	pending map[int64]delta.Record
}

// Store is the HTAP store over a tpch.DB: held tables answer scans
// through base + delta views and accept writes through the delta log.
type Store struct {
	db  *tpch.DB
	cfg Config
	log *delta.Log

	tables map[string]*tableState
	held   []delta.Record // the held-back rows, as replayable write ops

	applied   atomic.Int64 // records published to tail views
	converted atomic.Int64 // records encoded into parts
	converts  atomic.Int64 // conversion batches

	convStop chan struct{}
	convDone chan struct{}
}

// New builds a store over db, holding back the last hold[name] rows of
// each named table: the remaining prefix becomes the table's base part
// (installed as the DB's scan source), and the suffix is returned by
// HeldRecords for the write driver to replay through the delta path.
func New(db *tpch.DB, hold map[string]int, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	s := &Store{db: db, cfg: cfg, tables: make(map[string]*tableState)}
	s.log = delta.NewLog(cfg.Window, s.onCommit)

	names := make([]string, 0, len(hold))
	for _, name := range tpch.TableNames {
		if hold[name] > 0 {
			names = append(names, name)
		}
	}
	perTable := make(map[string][]delta.Record, len(names))
	for _, name := range names {
		base := db.Table(name)
		k := hold[name]
		n := base.NumRows()
		if k >= n {
			return nil, fmt.Errorf("htap: hold %d of %d rows of %s", k, n, name)
		}
		prefix := relal.Head(base, n-k)
		basePart, err := s.buildSource(prefix)
		if err != nil {
			return nil, fmt.Errorf("htap: encode %s base: %w", name, err)
		}
		st := &tableState{
			name:    name,
			schema:  base.Schema,
			base:    base,
			pending: make(map[int64]delta.Record),
		}
		st.view.Store(&tableView{parts: []relal.Source{basePart}})
		s.tables[name] = st
		perTable[name] = recordsOf(base, n-k, n)
		db.SetSource(name, &htapSource{st: st, base: base})
	}
	s.held = interleave(names, perTable)
	return s, nil
}

// buildSource wraps t as a scan source per the store's storage mode.
func (s *Store) buildSource(t *relal.Table) (relal.Source, error) {
	if !s.cfg.RCFile {
		return relal.NewTableSource(t), nil
	}
	src, err := rcfile.NewSourceOpts(t, s.cfg.GroupRows, s.cfg.WriterOpts)
	if err != nil {
		return nil, err
	}
	src.SetCache(s.cfg.Cache)
	return src, nil
}

// recordsOf extracts rows [lo, hi) of t as delta records, positions
// numbered from 0 at the hold boundary.
func recordsOf(t *relal.Table, lo, hi int) []delta.Record {
	recs := make([]delta.Record, 0, hi-lo)
	for i := lo; i < hi; i++ {
		cells := make([]delta.Value, len(t.Schema))
		for ci, col := range t.Cols {
			v := col.Flat()
			switch t.Schema[ci].Type {
			case relal.Int:
				cells[ci] = delta.IntVal(v.Ints[i])
			case relal.Float:
				cells[ci] = delta.FloatVal(v.Floats[i])
			default:
				cells[ci] = delta.StrVal(v.StrAt(int32(i)))
			}
		}
		recs = append(recs, delta.Record{Table: t.Name, Pos: int64(i - lo), Cells: cells})
	}
	return recs
}

// interleave merges the per-table record lists into one op stream,
// proportionally by progress, so a write run touches every held table
// throughout rather than draining them one after another.
func interleave(names []string, perTable map[string][]delta.Record) []delta.Record {
	total := 0
	for _, recs := range perTable {
		total += len(recs)
	}
	out := make([]delta.Record, 0, total)
	idx := make([]int, len(names))
	for len(out) < total {
		// Pick the table that is least far through its list.
		best, bestFrac := -1, 2.0
		for i, name := range names {
			n := len(perTable[name])
			if idx[i] >= n {
				continue
			}
			frac := float64(idx[i]) / float64(n)
			if frac < bestFrac {
				best, bestFrac = i, frac
			}
		}
		out = append(out, perTable[names[best]][idx[best]])
		idx[best]++
	}
	return out
}

// HeldRecords returns the held-back rows as an ordered op list for the
// write driver. Each record's Pos is its row position past the hold
// boundary of its table; replaying every op (in any commit
// interleaving) and quiescing reconstructs the original tables exactly.
func (s *Store) HeldRecords() []delta.Record { return s.held }

// Log exposes the delta log (stats, replay snapshots).
func (s *Store) Log() *delta.Log { return s.log }

// onCommit is the delta log's commit hook: it files each committed
// record into its table's reorder buffer, publishes the contiguous
// prefix to a fresh tail view, and bumps the DB epoch so memoized
// results die. Runs with the log mutex held — batches apply in commit
// order, exactly once.
func (s *Store) onCommit(batch []delta.Record, from, to int64) {
	touched := false
	for i := 0; i < len(batch); {
		name := batch[i].Table
		j := i + 1
		for j < len(batch) && batch[j].Table == name {
			j++
		}
		st := s.tables[name]
		if st == nil {
			panic("htap: commit for unknown table " + name)
		}
		st.mu.Lock()
		for _, r := range batch[i:j] {
			st.pending[r.Pos] = r
		}
		var adds []delta.Record
		for {
			r, ok := st.pending[st.nextPos]
			if !ok {
				break
			}
			adds = append(adds, r)
			delete(st.pending, st.nextPos)
			st.nextPos++
		}
		if len(adds) > 0 {
			old := st.view.Load()
			tail := make([]delta.Record, 0, len(old.tail)+len(adds))
			tail = append(append(tail, old.tail...), adds...)
			st.view.Store(&tableView{parts: old.parts, tail: tail})
			s.applied.Add(int64(len(adds)))
			touched = true
		}
		st.mu.Unlock()
		i = j
	}
	if touched {
		s.db.BumpEpoch()
	}
}

// AppendRecord validates the record against its table's schema and
// appends it to the delta log, blocking until committed. Returns the
// commit sequence number.
func (s *Store) AppendRecord(r delta.Record) (int64, error) {
	st := s.tables[r.Table]
	if st == nil {
		return 0, fmt.Errorf("htap: no held table %q", r.Table)
	}
	if len(r.Cells) != len(st.schema) {
		return 0, fmt.Errorf("htap: %s row has %d cells, schema has %d", r.Table, len(r.Cells), len(st.schema))
	}
	for i, c := range r.Cells {
		if want := kindOf(st.schema[i].Type); c.Kind != want {
			return 0, fmt.Errorf("htap: %s.%s cell kind %d, want %d", r.Table, st.schema[i].Name, c.Kind, want)
		}
	}
	return s.log.Append(r), nil
}

// kindOf maps a relal column type to its delta cell kind.
func kindOf(t relal.Type) delta.Kind {
	switch t {
	case relal.Int:
		return delta.Int
	case relal.Float:
		return delta.Float
	}
	return delta.Str
}

// DocOf renders a record as the docstore document the write wire format
// carries: one BSON field per column, in schema order.
func (s *Store) DocOf(r delta.Record) (*docstore.Doc, error) {
	st := s.tables[r.Table]
	if st == nil {
		return nil, fmt.Errorf("htap: no held table %q", r.Table)
	}
	if len(r.Cells) != len(st.schema) {
		return nil, fmt.Errorf("htap: %s row has %d cells, schema has %d", r.Table, len(r.Cells), len(st.schema))
	}
	doc := docstore.NewDoc()
	for i, col := range st.schema {
		switch col.Type {
		case relal.Int:
			doc.Set(col.Name, r.Cells[i].Int)
		case relal.Float:
			doc.Set(col.Name, r.Cells[i].Float)
		default:
			doc.Set(col.Name, r.Cells[i].Str)
		}
	}
	return doc, nil
}

// AppendDoc maps a docstore document onto the table's schema (fields
// looked up by column name, types checked) and appends the resulting
// record. pos is the row's per-table position.
func (s *Store) AppendDoc(table string, pos int64, doc *docstore.Doc) (int64, error) {
	st := s.tables[table]
	if st == nil {
		return 0, fmt.Errorf("htap: no held table %q", table)
	}
	cells := make([]delta.Value, len(st.schema))
	for i, col := range st.schema {
		v, ok := doc.Get(col.Name)
		if !ok {
			return 0, fmt.Errorf("htap: doc for %s missing field %q", table, col.Name)
		}
		switch col.Type {
		case relal.Int:
			x, ok := v.(int64)
			if !ok {
				return 0, fmt.Errorf("htap: %s.%s is %T, want int64", table, col.Name, v)
			}
			cells[i] = delta.IntVal(x)
		case relal.Float:
			x, ok := v.(float64)
			if !ok {
				return 0, fmt.Errorf("htap: %s.%s is %T, want float64", table, col.Name, v)
			}
			cells[i] = delta.FloatVal(x)
		default:
			x, ok := v.(string)
			if !ok {
				return 0, fmt.Errorf("htap: %s.%s is %T, want string", table, col.Name, v)
			}
			cells[i] = delta.StrVal(x)
		}
	}
	return s.log.Append(delta.Record{Table: table, Pos: pos, Cells: cells}), nil
}

// AppendBSON is the wire-shaped write path: a BSON document (the
// docstore format) is unmarshalled and applied via AppendDoc — what a
// YCSB client talking the Mongo wire protocol would trigger.
func (s *Store) AppendBSON(table string, pos int64, data []byte) (int64, error) {
	doc, err := docstore.Unmarshal(data)
	if err != nil {
		return 0, err
	}
	return s.AppendDoc(table, pos, doc)
}

// StartConverter launches the background converter: every ConvertEvery
// it encodes any table whose tail has reached ConvertRows records into
// a new column-group part.
func (s *Store) StartConverter() {
	if s.convStop != nil {
		return
	}
	s.convStop = make(chan struct{})
	s.convDone = make(chan struct{})
	go func() {
		defer close(s.convDone)
		ticker := time.NewTicker(s.cfg.ConvertEvery)
		defer ticker.Stop()
		for {
			select {
			case <-s.convStop:
				return
			case <-ticker.C:
				for _, name := range tpch.TableNames {
					if st := s.tables[name]; st != nil {
						s.convertTable(st, s.cfg.ConvertRows)
					}
				}
			}
		}
	}()
}

// StopConverter halts the background converter and waits for it.
func (s *Store) StopConverter() {
	if s.convStop == nil {
		return
	}
	close(s.convStop)
	<-s.convDone
	s.convStop, s.convDone = nil, nil
}

// ConvertAll synchronously converts every non-empty tail, regardless of
// batch size. After Quiesce + ConvertAll, every written row lives in a
// column-group part.
func (s *Store) ConvertAll() error {
	for _, name := range tpch.TableNames {
		if st := s.tables[name]; st != nil {
			if err := s.convertTable(st, 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// convertTable encodes st's tail into a part when it has at least
// minRows records. The new view drops the tail; the epoch bump
// invalidates memoized answers computed over the tail snapshot.
func (s *Store) convertTable(st *tableState, minRows int) error {
	st.mu.Lock()
	old := st.view.Load()
	if len(old.tail) < minRows {
		st.mu.Unlock()
		return nil
	}
	t := recordsTable(st, old.tail)
	part, err := s.buildSource(t)
	if err != nil {
		st.mu.Unlock()
		return fmt.Errorf("htap: convert %s: %w", st.name, err)
	}
	parts := make([]relal.Source, 0, len(old.parts)+1)
	parts = append(append(parts, old.parts...), part)
	st.view.Store(&tableView{parts: parts})
	n := len(old.tail)
	st.mu.Unlock()
	s.converted.Add(int64(n))
	s.converts.Add(1)
	s.db.BumpEpoch()
	return nil
}

// Quiesce waits for the delta log to drain, then verifies every
// committed record has been published (no position gaps left in any
// reorder buffer). Call with all writers stopped.
func (s *Store) Quiesce() error {
	s.log.Quiesce()
	for name, st := range s.tables {
		st.mu.Lock()
		pending := len(st.pending)
		st.mu.Unlock()
		if pending != 0 {
			return fmt.Errorf("htap: %s has %d unpublished records after quiesce (position gap)", name, pending)
		}
	}
	if a, c := s.applied.Load(), s.log.CommittedSeq(); a != c {
		return fmt.Errorf("htap: applied %d of %d committed records after quiesce", a, c)
	}
	return nil
}

// Stats is a point-in-time freshness and accounting snapshot.
type Stats struct {
	// CommittedRecords is the delta log's commit watermark.
	CommittedRecords int64
	// AppliedRecords is how many of those scans can see (tail views).
	AppliedRecords int64
	// ConvertedRecords is how many have been encoded into parts.
	ConvertedRecords int64
	// Converts is the number of conversion batches.
	Converts int64
	// Flushes is the number of physical delta-log flushes.
	Flushes int64
	// LagRecords is CommittedRecords - ConvertedRecords: the freshness
	// lag, in records, between the write watermark and the columnar
	// replica's converted state.
	LagRecords int64
}

// StatsNow samples the store. Safe from any goroutine.
func (s *Store) StatsNow() Stats {
	committed, flushes := s.log.Stats()
	converted := s.converted.Load()
	return Stats{
		CommittedRecords: committed,
		AppliedRecords:   s.applied.Load(),
		ConvertedRecords: converted,
		Converts:         s.converts.Load(),
		Flushes:          flushes,
		LagRecords:       committed - converted,
	}
}
