package htap

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"elephants/internal/delta"
	"elephants/internal/tpch"
)

// The golden DB parameters must match internal/tpch's golden tests so
// quiesced HTAP answers can pin to the same snapshot.
const goldenSF = 0.005

func goldenDB() *tpch.DB {
	return tpch.Generate(tpch.GenConfig{SF: goldenSF, Seed: 1, Random64: true})
}

func readGolden(t *testing.T) string {
	t.Helper()
	want, err := os.ReadFile("../tpch/testdata/tpch_golden.txt")
	if err != nil {
		t.Skipf("golden file missing: %v", err)
	}
	return string(want)
}

func snapshotAnswers(db *tpch.DB) string {
	var b strings.Builder
	for _, q := range tpch.Queries {
		out, _ := tpch.RunQuery(q.ID, db)
		b.WriteString(tpch.FormatAnswer(q.ID, out))
	}
	return b.String()
}

func diffSnapshot(t *testing.T, got, want string) {
	t.Helper()
	if got == want {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("answer drift at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("answer drift: got %d lines, want %d", len(gl), len(wl))
}

func testHold() map[string]int {
	return map[string]int{"orders": 150, "lineitem": 300}
}

// TestHtapGoldenQuiesced is the pipeline's answer-preservation proof:
// hold back the tail of orders and lineitem, replay every held row
// through the delta write path, quiesce, and require all 22 query
// answers byte-identical to the committed golden snapshot — with the
// replayed rows served from the unconverted delta tail and again after
// conversion into column-group parts, over both storage modes.
func TestHtapGoldenQuiesced(t *testing.T) {
	want := readGolden(t)
	for _, rcf := range []bool{false, true} {
		for _, convert := range []bool{false, true} {
			name := fmt.Sprintf("rcfile=%v/converted=%v", rcf, convert)
			t.Run(name, func(t *testing.T) {
				db := goldenDB()
				store, err := New(db, testHold(), Config{Window: -1, RCFile: rcf})
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range store.HeldRecords() {
					if _, err := store.AppendRecord(r); err != nil {
						t.Fatal(err)
					}
				}
				if err := store.Quiesce(); err != nil {
					t.Fatal(err)
				}
				if convert {
					if err := store.ConvertAll(); err != nil {
						t.Fatal(err)
					}
					st := store.StatsNow()
					if st.LagRecords != 0 {
						t.Errorf("lag = %d records after ConvertAll, want 0", st.LagRecords)
					}
					if st.ConvertedRecords != int64(len(store.HeldRecords())) {
						t.Errorf("converted %d records, want %d", st.ConvertedRecords, len(store.HeldRecords()))
					}
				}
				diffSnapshot(t, snapshotAnswers(db), want)
			})
		}
	}
}

// TestHtapGoldenBSONPath replays the held rows through the full wire
// path — record → doc → BSON bytes → unmarshal → append — and pins the
// same snapshot, so the docstore mapping is also answer-preserving.
func TestHtapGoldenBSONPath(t *testing.T) {
	want := readGolden(t)
	db := goldenDB()
	store, err := New(db, testHold(), Config{Window: -1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(store, db, HarnessConfig{
		Writers: 4,
		Streams: 2,
		Rounds:  1,
		Queries: []int{1, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if res.Write.Ops != int64(len(store.HeldRecords())) {
		t.Errorf("write ops = %d, want %d", res.Write.Ops, len(store.HeldRecords()))
	}
	if res.Write.Errors != 0 {
		t.Errorf("write errors = %d", res.Write.Errors)
	}
	diffSnapshot(t, snapshotAnswers(db), want)
}

// TestHtapHarnessCombined is the capstone: concurrent write clients
// feed the delta log (group-commit windows live) while analytical
// streams run and the background converter drains tails — then the
// store quiesces, converts, and the answers still pin the golden
// snapshot. Run under -race this exercises every cross-goroutine edge:
// commit applies vs scans, converter vs scans, stats sampling vs all.
func TestHtapHarnessCombined(t *testing.T) {
	want := readGolden(t)
	db := goldenDB()
	store, err := New(db, testHold(), Config{
		Window:       100 * time.Microsecond,
		ConvertRows:  64,
		ConvertEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	store.StartConverter()
	res, err := Run(store, db, HarnessConfig{
		Writers:     8,
		Streams:     2,
		Rounds:      2,
		SampleEvery: 200 * time.Microsecond,
	})
	store.StopConverter()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := store.ConvertAll(); err != nil {
		t.Fatal(err)
	}
	diffSnapshot(t, snapshotAnswers(db), want)

	if res.Write.Ops != int64(len(store.HeldRecords())) {
		t.Errorf("write ops = %d, want %d", res.Write.Ops, len(store.HeldRecords()))
	}
	if res.Write.Errors != 0 {
		t.Errorf("write errors = %d", res.Write.Errors)
	}
	if res.Write.OpsPerSec <= 0 {
		t.Errorf("write ops/sec = %v, want > 0", res.Write.OpsPerSec)
	}
	if res.Analytic.Queries <= 0 {
		t.Errorf("analytic queries = %d, want > 0", res.Analytic.Queries)
	}
	if res.Freshness.Samples <= 0 {
		t.Errorf("freshness samples = %d, want > 0", res.Freshness.Samples)
	}
	if res.Freshness.Flushes <= 0 {
		t.Errorf("flushes = %d, want > 0", res.Freshness.Flushes)
	}
	final := store.StatsNow()
	if final.LagRecords != 0 {
		t.Errorf("lag = %d after quiesce+convert, want 0", final.LagRecords)
	}
	if final.ConvertedRecords != int64(len(store.HeldRecords())) {
		t.Errorf("converted %d, want %d", final.ConvertedRecords, len(store.HeldRecords()))
	}
	// Group commit must have shared flushes across the 8 writers.
	if final.Flushes >= final.CommittedRecords {
		t.Errorf("flushes = %d for %d records: group commit never shared", final.Flushes, final.CommittedRecords)
	}
}

// TestHtapReorderBuffer pins the out-of-order publication rule: records
// committed ahead of their position park in the reorder buffer and scans
// only ever see the contiguous prefix, in position order.
func TestHtapReorderBuffer(t *testing.T) {
	db := goldenDB()
	store, err := New(db, map[string]int{"orders": 10}, Config{Window: -1})
	if err != nil {
		t.Fatal(err)
	}
	held := store.HeldRecords()
	scanRows := func() int {
		out, _ := db.Src("orders").ScanTable(nil, nil)
		return out.NumRows()
	}
	baseRows := scanRows()

	// Commit positions 2, then 0, then 1.
	if _, err := store.AppendRecord(held[2]); err != nil {
		t.Fatal(err)
	}
	if got := scanRows(); got != baseRows {
		t.Errorf("rows = %d after out-of-order commit, want %d (parked)", got, baseRows)
	}
	if st := store.StatsNow(); st.AppliedRecords != 0 || st.CommittedRecords != 1 {
		t.Errorf("applied=%d committed=%d, want 0/1", st.AppliedRecords, st.CommittedRecords)
	}
	if _, err := store.AppendRecord(held[0]); err != nil {
		t.Fatal(err)
	}
	if got := scanRows(); got != baseRows+1 {
		t.Errorf("rows = %d, want %d (prefix of 1 published)", got, baseRows+1)
	}
	if _, err := store.AppendRecord(held[1]); err != nil {
		t.Fatal(err)
	}
	if got := scanRows(); got != baseRows+3 {
		t.Errorf("rows = %d, want %d (gap filled, prefix of 3)", got, baseRows+3)
	}

	// The published tail is in position order, matching the original.
	out, _ := db.Src("orders").ScanTable(nil, nil)
	orig := db.Table("orders")
	keys := out.IntCol(orig.Schema[0].Name)
	origKeys := orig.IntCol(orig.Schema[0].Name)
	for i := 0; i < 3; i++ {
		if got, want := keys.Get(baseRows+i), origKeys.Get(baseRows+i); got != want {
			t.Errorf("row %d key = %d, want %d", baseRows+i, got, want)
		}
	}
	// Quiesce must refuse while a gap remains.
	if _, err := store.AppendRecord(held[4]); err != nil {
		t.Fatal(err)
	}
	if err := store.Quiesce(); err == nil {
		t.Errorf("Quiesce accepted a reorder-buffer gap")
	}
}

// TestHtapEpochBumps pins the invalidation contract: every publishing
// commit and every conversion bumps the DB epoch, so memoized answers
// die with their snapshot.
func TestHtapEpochBumps(t *testing.T) {
	db := goldenDB()
	store, err := New(db, map[string]int{"orders": 10}, Config{Window: -1})
	if err != nil {
		t.Fatal(err)
	}
	held := store.HeldRecords()
	e0 := db.Epoch()
	if _, err := store.AppendRecord(held[0]); err != nil {
		t.Fatal(err)
	}
	e1 := db.Epoch()
	if e1 <= e0 {
		t.Errorf("epoch %d after publishing commit, want > %d", e1, e0)
	}
	// A parked (non-publishing) commit must not bump.
	if _, err := store.AppendRecord(held[5]); err != nil {
		t.Fatal(err)
	}
	if e := db.Epoch(); e != e1 {
		t.Errorf("epoch %d after parked commit, want %d", e, e1)
	}
	if err := store.ConvertAll(); err != nil {
		t.Fatal(err)
	}
	if e := db.Epoch(); e <= e1 {
		t.Errorf("epoch %d after conversion, want > %d", e, e1)
	}
}

// TestHtapRejectsBadWrites pins write-path validation.
func TestHtapRejectsBadWrites(t *testing.T) {
	db := goldenDB()
	store, err := New(db, map[string]int{"orders": 10}, Config{Window: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.AppendRecord(delta.Record{Table: "nation", Pos: 0}); err == nil {
		t.Errorf("accepted a write to a non-held table")
	}
	if _, err := store.AppendRecord(delta.Record{Table: "orders", Pos: 0, Cells: []delta.Value{delta.IntVal(1)}}); err == nil {
		t.Errorf("accepted a row with too few cells")
	}
	r := store.HeldRecords()[0]
	bad := delta.Record{Table: r.Table, Pos: r.Pos, Cells: append([]delta.Value(nil), r.Cells...)}
	bad.Cells[0] = delta.StrVal("not-an-int")
	if _, err := store.AppendRecord(bad); err == nil {
		t.Errorf("accepted a kind-mismatched cell")
	}
	if _, err := New(db, map[string]int{"orders": 1 << 30}, Config{}); err == nil {
		t.Errorf("accepted holding back more rows than the table has")
	}
}

// TestHtapScanSubsetColumns pins by-name column selection across parts:
// a projected scan over base + tail returns exactly the requested
// columns with the parts' rows in order.
func TestHtapScanSubsetColumns(t *testing.T) {
	db := goldenDB()
	store, err := New(db, map[string]int{"lineitem": 20}, Config{Window: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range store.HeldRecords() {
		if _, err := store.AppendRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Quiesce(); err != nil {
		t.Fatal(err)
	}
	orig := db.Table("lineitem")
	cols := []string{orig.Schema[4].Name, orig.Schema[0].Name}
	out, _ := db.Src("lineitem").ScanTable(cols, nil)
	if out.NumRows() != orig.NumRows() {
		t.Fatalf("rows = %d, want %d", out.NumRows(), orig.NumRows())
	}
	if len(out.Schema) != 2 || out.Schema[0].Name != cols[0] || out.Schema[1].Name != cols[1] {
		t.Fatalf("schema = %v, want %v", out.Schema.Names(), cols)
	}
	a, b := out.FloatCol(cols[0]), orig.FloatCol(cols[0])
	for _, i := range []int{0, orig.NumRows() - 20, orig.NumRows() - 1} {
		if a.Get(i) != b.Get(i) {
			t.Errorf("row %d %s = %v, want %v", i, cols[0], a.Get(i), b.Get(i))
		}
	}
}
