// The scan side of the pipeline: a held table's relal.Source stitches
// base part + converted parts + the unconverted delta tail into one
// table per scan. Each scan loads the view pointer once, so it sees a
// consistent snapshot (never a trimmed tail without its converted part,
// never a row twice); full cross-table consistency holds once writes
// quiesce, which is when the golden tests compare answers.
package htap

import (
	"errors"
	"sort"

	"elephants/internal/delta"
	"elephants/internal/rcfile"
	"elephants/internal/relal"
)

// htapSource serves one held table's scans over its current view.
type htapSource struct {
	store *Store
	st    *tableState
	base  *relal.Table // schema donor
}

func (h *htapSource) SrcName() string { return h.st.name }

func (h *htapSource) SrcSchema() relal.Schema { return h.st.schema }

// ScanTable implements relal.Source: every part (and the tail snapshot)
// scans with the same column subset and predicate, their byte
// accounting sums, and the parts concatenate in row order. A part may
// prune row groups the predicate rules out — surviving rows keep their
// order, so the query's own filter sees exactly the rows a full scan
// would, in the same order.
//
// A converted part whose chunk fails CRC verification is quarantined
// and the scan retries over the degraded view — the dropped rows come
// back through the re-extended tail, so the answer is identical, never
// wrong. The loop terminates because every retry has strictly fewer
// verified parts (the base part and the in-memory tail cannot fail
// verification).
func (h *htapSource) ScanTable(cols []string, pred relal.ZonePredicate) (*relal.Table, relal.ScanStats) {
	var degraded relal.ScanStats // accounting from abandoned attempts
	for {
		t, stats, bad := h.scanView(cols, pred)
		if bad == nil {
			stats.Add(degraded)
			return t, stats
		}
		degraded.Add(stats)
		h.store.counters.Add(cCorruptChunks, int64(stats.CorruptChunks))
		h.store.quarantine(h.st, bad)
	}
}

// scanView scans the current view once. On a CRC failure it returns the
// offending part (with the partial stats of the abandoned attempt);
// otherwise bad is nil.
func (h *htapSource) scanView(cols []string, pred relal.ZonePredicate) (_ *relal.Table, stats relal.ScanStats, bad *part) {
	v := h.st.view.Load()
	tables := make([]*relal.Table, 0, len(v.parts)+1)
	for _, p := range v.parts {
		var t *relal.Table
		var st relal.ScanStats
		if !p.base && p.rcf != nil {
			// Converted parts may have been read back from disk; scan
			// through the verifying path and degrade on corruption.
			var err error
			t, st, err = p.rcf.TryScan(cols, pred)
			if err != nil {
				if errors.Is(err, rcfile.ErrCorrupt) {
					stats.Add(st)
					return nil, stats, p
				}
				panic("htap: " + err.Error())
			}
		} else {
			// The base part wraps bytes encoded in-process this run;
			// corruption there is a programming bug, so keep the
			// panicking path.
			t, st = p.src.ScanTable(cols, pred)
		}
		stats.Add(st)
		tables = append(tables, t)
	}
	if len(v.tail) > 0 {
		t, st := v.tailSource(h.st).ScanTable(cols, pred)
		stats.Add(st)
		tables = append(tables, t)
	}
	if len(tables) == 1 {
		return tables[0], stats, nil
	}
	schema := h.st.schema
	if len(cols) > 0 {
		schema = make(relal.Schema, len(cols))
		for i, c := range cols {
			schema[i] = h.st.schema[h.st.schema.Col(c)]
		}
	}
	return relal.Concat(h.st.name, schema, tables...), stats, nil
}

// tailSource returns the view's memoized tail snapshot, building it on
// first use. The snapshot is an in-memory TableSource so tail scans get
// the same zone-map pruning stats model as any in-memory part.
func (v *tableView) tailSource(st *tableState) *relal.TableSource {
	if src := v.tailSrc.Load(); src != nil {
		return src
	}
	src := relal.NewTableSource(recordsTable(st, v.tail))
	v.tailSrc.CompareAndSwap(nil, src)
	return v.tailSrc.Load()
}

// recordsTable materializes records as a typed column table with st's
// schema. Str columns re-encode against the base table's dictionary
// when every value is present in it (so same-dictionary concatenation
// and code-native kernels keep firing over base + delta); a value
// outside the dictionary degrades the column to raw strings, which
// kernels handle answer-identically.
func recordsTable(st *tableState, recs []delta.Record) *relal.Table {
	n := len(recs)
	cols := make([]*relal.Vector, len(st.schema))
	for ci, col := range st.schema {
		switch col.Type {
		case relal.Int:
			xs := make([]int64, n)
			for i, r := range recs {
				xs[i] = r.Cells[ci].Int
			}
			cols[ci] = relal.IntsV(xs)
		case relal.Float:
			xs := make([]float64, n)
			for i, r := range recs {
				xs[i] = r.Cells[ci].Float
			}
			cols[ci] = relal.FloatsV(xs)
		default:
			cols[ci] = strColumn(st.base.Cols[ci], recs, ci)
		}
	}
	return relal.NewTable(st.name, st.schema, cols...)
}

// strColumn builds a Str vector for cell index ci of recs, reusing
// baseCol's dictionary when possible.
func strColumn(baseCol *relal.Vector, recs []delta.Record, ci int) *relal.Vector {
	if baseCol.IsDict() {
		vals := baseCol.DictVals
		codes := make([]uint32, len(recs))
		ok := true
		for i, r := range recs {
			s := r.Cells[ci].Str
			k := sort.SearchStrings(vals, s)
			if k >= len(vals) || vals[k] != s {
				ok = false
				break
			}
			codes[i] = uint32(k)
		}
		if ok {
			return relal.DictV(codes, vals)
		}
	}
	xs := make([]string, len(recs))
	for i, r := range recs {
		xs[i] = r.Cells[ci].Str
	}
	return relal.StrsV(xs)
}
