// The scan side of the pipeline: a held table's relal.Source stitches
// base part + converted parts + the unconverted delta tail into one
// table per scan. Each scan loads the view pointer once, so it sees a
// consistent snapshot (never a trimmed tail without its converted part,
// never a row twice); full cross-table consistency holds once writes
// quiesce, which is when the golden tests compare answers.
package htap

import (
	"sort"

	"elephants/internal/delta"
	"elephants/internal/relal"
)

// htapSource serves one held table's scans over its current view.
type htapSource struct {
	st   *tableState
	base *relal.Table // schema donor
}

func (h *htapSource) SrcName() string { return h.st.name }

func (h *htapSource) SrcSchema() relal.Schema { return h.st.schema }

// ScanTable implements relal.Source: every part (and the tail snapshot)
// scans with the same column subset and predicate, their byte
// accounting sums, and the parts concatenate in row order. A part may
// prune row groups the predicate rules out — surviving rows keep their
// order, so the query's own filter sees exactly the rows a full scan
// would, in the same order.
func (h *htapSource) ScanTable(cols []string, pred relal.ZonePredicate) (*relal.Table, relal.ScanStats) {
	v := h.st.view.Load()
	srcs := v.parts
	if len(v.tail) > 0 {
		srcs = make([]relal.Source, 0, len(v.parts)+1)
		srcs = append(append(srcs, v.parts...), v.tailSource(h.st))
	}
	if len(srcs) == 1 {
		return srcs[0].ScanTable(cols, pred)
	}
	parts := make([]*relal.Table, len(srcs))
	var stats relal.ScanStats
	for i, src := range srcs {
		t, st := src.ScanTable(cols, pred)
		stats.Add(st)
		parts[i] = t
	}
	schema := h.st.schema
	if len(cols) > 0 {
		schema = make(relal.Schema, len(cols))
		for i, c := range cols {
			schema[i] = h.st.schema[h.st.schema.Col(c)]
		}
	}
	return relal.Concat(h.st.name, schema, parts...), stats
}

// tailSource returns the view's memoized tail snapshot, building it on
// first use. The snapshot is an in-memory TableSource so tail scans get
// the same zone-map pruning stats model as any in-memory part.
func (v *tableView) tailSource(st *tableState) *relal.TableSource {
	if src := v.tailSrc.Load(); src != nil {
		return src
	}
	src := relal.NewTableSource(recordsTable(st, v.tail))
	v.tailSrc.CompareAndSwap(nil, src)
	return v.tailSrc.Load()
}

// recordsTable materializes records as a typed column table with st's
// schema. Str columns re-encode against the base table's dictionary
// when every value is present in it (so same-dictionary concatenation
// and code-native kernels keep firing over base + delta); a value
// outside the dictionary degrades the column to raw strings, which
// kernels handle answer-identically.
func recordsTable(st *tableState, recs []delta.Record) *relal.Table {
	n := len(recs)
	cols := make([]*relal.Vector, len(st.schema))
	for ci, col := range st.schema {
		switch col.Type {
		case relal.Int:
			xs := make([]int64, n)
			for i, r := range recs {
				xs[i] = r.Cells[ci].Int
			}
			cols[ci] = relal.IntsV(xs)
		case relal.Float:
			xs := make([]float64, n)
			for i, r := range recs {
				xs[i] = r.Cells[ci].Float
			}
			cols[ci] = relal.FloatsV(xs)
		default:
			cols[ci] = strColumn(st.base.Cols[ci], recs, ci)
		}
	}
	return relal.NewTable(st.name, st.schema, cols...)
}

// strColumn builds a Str vector for cell index ci of recs, reusing
// baseCol's dictionary when possible.
func strColumn(baseCol *relal.Vector, recs []delta.Record, ci int) *relal.Vector {
	if baseCol.IsDict() {
		vals := baseCol.DictVals
		codes := make([]uint32, len(recs))
		ok := true
		for i, r := range recs {
			s := r.Cells[ci].Str
			k := sort.SearchStrings(vals, s)
			if k >= len(vals) || vals[k] != s {
				ok = false
				break
			}
			codes[i] = uint32(k)
		}
		if ok {
			return relal.DictV(codes, vals)
		}
	}
	xs := make([]string, len(recs))
	for i, r := range recs {
		xs[i] = r.Cells[ci].Str
	}
	return relal.StrsV(xs)
}
