// Package mapreduce models the Hadoop 0.20 MapReduce runtime as the
// paper configured it: 8 map and 8 reduce slots per node (128 + 128 on
// the 16-node cluster), per-task startup cost, wave/round scheduling of
// map tasks over blocks, a network shuffle, and reduce tasks sized so
// all 128 reducers finish in one round (the paper's tuning).
//
// The mechanisms behind the paper's scalability analysis are explicit
// here: map tasks over empty bucket files still pay startup (Table 4),
// tasks processing a few MB are dominated by startup (Table 5), and the
// shuffle serializes through 1 Gbit NICs (the Q5/Q19 common joins).
package mapreduce

import (
	"elephants/internal/cluster"
	"elephants/internal/sim"
)

// Config holds the runtime's tuning knobs with the paper's defaults.
type Config struct {
	// MapSlotsPerNode and ReduceSlotsPerNode are 8 each in the paper.
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	// TaskStartup is the JVM launch + scheduling cost per task; the
	// paper measures ~6 s for map tasks over empty files.
	TaskStartup sim.Duration
	// JobStartup covers job submission and setup/cleanup tasks.
	JobStartup sim.Duration
	// MapMBps is the per-task processing rate over (compressed) input
	// bytes. The paper found RCFile map tasks CPU-bound.
	MapMBps float64
	// ReduceMBps is the per-reduce-task rate over shuffled bytes.
	ReduceMBps float64
	// HDFSWriteMBps is the per-task rate for writing job output
	// (includes the replication pipeline).
	HDFSWriteMBps float64
}

// DefaultConfig returns the paper's tuning.
func DefaultConfig() Config {
	return Config{
		MapSlotsPerNode:    8,
		ReduceSlotsPerNode: 8,
		TaskStartup:        6 * sim.Second,
		JobStartup:         15 * sim.Second,
		MapMBps:            2.0, // compressed RCFile, CPU-bound
		ReduceMBps:         20,
		HDFSWriteMBps:      40,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MapSlotsPerNode <= 0 {
		c.MapSlotsPerNode = d.MapSlotsPerNode
	}
	if c.ReduceSlotsPerNode <= 0 {
		c.ReduceSlotsPerNode = d.ReduceSlotsPerNode
	}
	if c.TaskStartup <= 0 {
		c.TaskStartup = d.TaskStartup
	}
	if c.JobStartup <= 0 {
		c.JobStartup = d.JobStartup
	}
	if c.MapMBps <= 0 {
		c.MapMBps = d.MapMBps
	}
	if c.ReduceMBps <= 0 {
		c.ReduceMBps = d.ReduceMBps
	}
	if c.HDFSWriteMBps <= 0 {
		c.HDFSWriteMBps = d.HDFSWriteMBps
	}
	return c
}

// MapTask is one map task: it reads InputBytes from the block's node,
// optionally loads CacheBytes of distributed-cache hash table first
// (map-side joins), and emits its share of the job's map output.
type MapTask struct {
	Node       int
	InputBytes int64
	CacheBytes int64
	// CPUSkipBytes is the share of InputBytes the task never
	// decompresses (column chunks skipped by predicate pushdown): the
	// bytes are still read from disk, but the per-byte map CPU charge
	// is waived for them.
	CPUSkipBytes int64
}

// Job describes one MapReduce job.
type Job struct {
	Name     string
	MapTasks []MapTask
	// MapOnly jobs skip shuffle and reduce.
	MapOnly bool
	// Reducers is the reduce-task count (the paper sets 128 so one
	// reduce round suffices).
	Reducers int
	// ShuffleBytes is the total map output repartitioned over the
	// network.
	ShuffleBytes int64
	// OutputBytes is the job's output written to HDFS.
	OutputBytes int64
}

// Stats reports a completed job's timing.
type Stats struct {
	Start        sim.Time
	MapDone      sim.Time
	End          sim.Time
	MapTasks     int
	MapRounds    int
	MapPhase     sim.Duration
	ShufflePhase sim.Duration
	Total        sim.Duration
}

// JobTracker schedules jobs on a simulated cluster.
type JobTracker struct {
	s           *sim.Sim
	cl          *cluster.Cluster
	cfg         Config
	mapSlots    *sim.Resource
	reduceSlots *sim.Resource

	jobsRun int64
}

// NewJobTracker returns a tracker over the cluster's nodes.
func NewJobTracker(s *sim.Sim, cl *cluster.Cluster, cfg Config) *JobTracker {
	cfg = cfg.withDefaults()
	n := len(cl.Nodes)
	return &JobTracker{
		s:           s,
		cl:          cl,
		cfg:         cfg,
		mapSlots:    s.NewResource("map-slots", cfg.MapSlotsPerNode*n),
		reduceSlots: s.NewResource("reduce-slots", cfg.ReduceSlotsPerNode*n),
	}
}

// MapSlots returns the cluster-wide map slot count.
func (jt *JobTracker) MapSlots() int { return jt.cfg.MapSlotsPerNode * len(jt.cl.Nodes) }

// JobsRun reports completed jobs.
func (jt *JobTracker) JobsRun() int64 { return jt.jobsRun }

// Run executes the job, blocking the calling process until it finishes.
func (jt *JobTracker) Run(p *sim.Proc, job *Job) Stats {
	st := Stats{Start: p.Now(), MapTasks: len(job.MapTasks)}
	p.Sleep(jt.cfg.JobStartup)
	mapStart := p.Now()

	// Map phase: every task queues on the global slot pool; rounds
	// emerge from slot contention.
	wg := jt.s.NewWaitGroup()
	wg.Add(len(job.MapTasks))
	for _, mt := range job.MapTasks {
		mt := mt
		jt.s.Spawn("map-task", func(tp *sim.Proc) {
			defer wg.Done()
			jt.mapSlots.Acquire(tp)
			defer jt.mapSlots.Release()
			tp.Sleep(jt.cfg.TaskStartup)
			node := jt.cl.Nodes[mt.Node%len(jt.cl.Nodes)]
			if mt.CacheBytes > 0 {
				// Load the distributed-cache hash table from local
				// disk and build it (does not persist across tasks —
				// one of the paper's map-join criticisms).
				node.ReadSeqStriped(tp, mt.CacheBytes)
				node.Compute(tp, sim.Seconds(float64(mt.CacheBytes)/(jt.cfg.ReduceMBps*1e6)))
			}
			if mt.InputBytes > 0 {
				node.ReadSeqStriped(tp, mt.InputBytes)
				cpuBytes := mt.InputBytes - mt.CPUSkipBytes
				if cpuBytes < 0 {
					cpuBytes = 0
				}
				node.Compute(tp, sim.Seconds(float64(cpuBytes)/(jt.cfg.MapMBps*1e6)))
			}
		})
	}
	wg.Wait(p)
	st.MapDone = p.Now()
	st.MapPhase = sim.Duration(st.MapDone - mapStart)
	if rounds := (len(job.MapTasks) + jt.MapSlots() - 1) / jt.MapSlots(); rounds > 0 {
		st.MapRounds = rounds
	}

	if !job.MapOnly {
		// Shuffle: map output repartitions across the cluster. Each
		// node sends and receives ~1/n of the bytes; NICs serialize.
		shuffleStart := p.Now()
		n := len(jt.cl.Nodes)
		if job.ShuffleBytes > 0 {
			share := job.ShuffleBytes / int64(n)
			swg := jt.s.NewWaitGroup()
			swg.Add(n)
			for i := 0; i < n; i++ {
				i := i
				jt.s.Spawn("shuffle", func(sp *sim.Proc) {
					defer swg.Done()
					jt.cl.Nodes[i].Send(sp, jt.cl.Nodes[(i+1)%n], share)
				})
			}
			swg.Wait(p)
		}
		st.ShufflePhase = sim.Duration(p.Now() - shuffleStart)

		// Reduce phase: reducers queue on reduce slots.
		reducers := job.Reducers
		if reducers <= 0 {
			reducers = jt.cfg.ReduceSlotsPerNode * n
		}
		perReducer := int64(0)
		if reducers > 0 {
			perReducer = job.ShuffleBytes / int64(reducers)
		}
		outPerReducer := int64(0)
		if reducers > 0 {
			outPerReducer = job.OutputBytes / int64(reducers)
		}
		rwg := jt.s.NewWaitGroup()
		rwg.Add(reducers)
		for i := 0; i < reducers; i++ {
			i := i
			jt.s.Spawn("reduce-task", func(rp *sim.Proc) {
				defer rwg.Done()
				jt.reduceSlots.Acquire(rp)
				defer jt.reduceSlots.Release()
				rp.Sleep(jt.cfg.TaskStartup)
				node := jt.cl.Nodes[i%len(jt.cl.Nodes)]
				if perReducer > 0 {
					node.Compute(rp, sim.Seconds(float64(perReducer)/(jt.cfg.ReduceMBps*1e6)))
				}
				if outPerReducer > 0 {
					node.WriteSeqStriped(rp, outPerReducer)
				}
			})
		}
		rwg.Wait(p)
	} else if job.OutputBytes > 0 {
		// Map-only jobs write output from the map tasks; charge the
		// aggregate write spread across the cluster.
		n := int64(len(jt.cl.Nodes))
		per := job.OutputBytes / n
		owg := jt.s.NewWaitGroup()
		owg.Add(int(n))
		for i := int64(0); i < n; i++ {
			i := i
			jt.s.Spawn("map-output", func(op *sim.Proc) {
				defer owg.Done()
				jt.cl.Nodes[i].WriteSeqStriped(op, per)
			})
		}
		owg.Wait(p)
	}

	st.End = p.Now()
	st.Total = sim.Duration(st.End - st.Start)
	jt.jobsRun++
	return st
}

// TasksForFile returns the map tasks covering a file of the given size:
// one per 256 MB block (minimum one, so empty bucket files still cost a
// task), with blocks placed round-robin from nodeOffset.
func TasksForFile(bytes int64, nodeOffset, numNodes int) []MapTask {
	const blockSize = 256 << 20
	var tasks []MapTask
	remaining := bytes
	i := 0
	for {
		b := remaining
		if b > blockSize {
			b = blockSize
		}
		if b < 0 {
			b = 0
		}
		tasks = append(tasks, MapTask{Node: (nodeOffset + i) % numNodes, InputBytes: b})
		remaining -= b
		i++
		if remaining <= 0 {
			break
		}
	}
	return tasks
}
