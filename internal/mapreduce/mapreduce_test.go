package mapreduce

import (
	"testing"

	"elephants/internal/cluster"
	"elephants/internal/sim"
)

func testTracker(nodes int, cfg Config) (*sim.Sim, *JobTracker) {
	s := sim.New()
	cl := cluster.New(s, cluster.Config{Nodes: nodes})
	return s, NewJobTracker(s, cl, cfg)
}

func runJob(s *sim.Sim, jt *JobTracker, job *Job) Stats {
	var st Stats
	s.Spawn("driver", func(p *sim.Proc) { st = jt.Run(p, job) })
	s.Run()
	return st
}

func TestEmptyFileTasksPayStartup(t *testing.T) {
	s, jt := testTracker(2, Config{TaskStartup: 6 * sim.Second, JobStartup: sim.Second})
	// 16 slots, 16 empty tasks: one round of pure startup.
	var tasks []MapTask
	for i := 0; i < 16; i++ {
		tasks = append(tasks, MapTask{Node: i % 2})
	}
	st := runJob(s, jt, &Job{Name: "empties", MapTasks: tasks, MapOnly: true})
	if st.MapPhase != 6*sim.Second {
		t.Errorf("map phase = %v, want 6s (startup only)", st.MapPhase)
	}
}

func TestMapRoundsEmergeFromSlots(t *testing.T) {
	s, jt := testTracker(2, Config{TaskStartup: 6 * sim.Second, JobStartup: sim.Second})
	// 2 nodes × 8 slots = 16 slots; 48 empty tasks = 3 rounds of 6 s.
	var tasks []MapTask
	for i := 0; i < 48; i++ {
		tasks = append(tasks, MapTask{Node: i % 2})
	}
	st := runJob(s, jt, &Job{Name: "rounds", MapTasks: tasks, MapOnly: true})
	if st.MapPhase != 18*sim.Second {
		t.Errorf("map phase = %v, want 18s (3 rounds)", st.MapPhase)
	}
	if st.MapRounds != 3 {
		t.Errorf("rounds = %d, want 3", st.MapRounds)
	}
}

func TestMapTaskProcessingDominatedByData(t *testing.T) {
	s, jt := testTracker(1, Config{TaskStartup: sim.Second, JobStartup: sim.Second, MapMBps: 10})
	st := runJob(s, jt, &Job{
		Name:     "data",
		MapTasks: []MapTask{{Node: 0, InputBytes: 100 * 1000 * 1000}}, // 10 s at 10 MB/s
		MapOnly:  true,
	})
	if st.MapPhase < 11*sim.Second {
		t.Errorf("map phase = %v, want >= 11s (startup + CPU)", st.MapPhase)
	}
}

func TestShuffleChargesNetwork(t *testing.T) {
	s, jt := testTracker(2, Config{TaskStartup: sim.Second, JobStartup: sim.Second})
	st := runJob(s, jt, &Job{
		Name:         "shuffle",
		MapTasks:     []MapTask{{Node: 0}},
		Reducers:     2,
		ShuffleBytes: 250 * 1000 * 1000, // 125 MB per node at 125 MB/s
	})
	if st.ShufflePhase < sim.Second {
		t.Errorf("shuffle phase = %v, want >= 1s", st.ShufflePhase)
	}
}

func TestReduceRoundsOneWhenTuned(t *testing.T) {
	// The paper sets reducers == total reduce slots so one round
	// suffices: 2 nodes × 8 = 16 reducers.
	s, jt := testTracker(2, Config{TaskStartup: 2 * sim.Second, JobStartup: sim.Second})
	st := runJob(s, jt, &Job{
		Name:     "reduce",
		MapTasks: []MapTask{{Node: 0}},
		Reducers: 16,
	})
	// Map (2s startup) + reduce (2s startup), one round each.
	want := sim.Duration(1+2+2) * sim.Second
	if st.Total != want {
		t.Errorf("total = %v, want %v", st.Total, want)
	}
}

func TestCacheBytesChargePerTask(t *testing.T) {
	cfg := Config{TaskStartup: sim.Second, JobStartup: sim.Second, ReduceMBps: 10}
	s, jt := testTracker(1, cfg)
	st := runJob(s, jt, &Job{
		Name:     "mapjoin",
		MapTasks: []MapTask{{Node: 0, InputBytes: 1, CacheBytes: 50 * 1000 * 1000}}, // 5 s hash build
		MapOnly:  true,
	})
	if st.MapPhase < 6*sim.Second {
		t.Errorf("map phase = %v, want >= 6s (startup + cache load)", st.MapPhase)
	}
}

func TestTasksForFile(t *testing.T) {
	tasks := TasksForFile(600<<20, 0, 4)
	if len(tasks) != 3 {
		t.Fatalf("600MB file tasks = %d, want 3", len(tasks))
	}
	var total int64
	for _, mt := range tasks {
		total += mt.InputBytes
	}
	if total != 600<<20 {
		t.Errorf("task bytes = %d, want 600MB", total)
	}
	empty := TasksForFile(0, 2, 4)
	if len(empty) != 1 || empty[0].InputBytes != 0 {
		t.Errorf("empty file tasks = %+v, want one zero-byte task", empty)
	}
}

func TestJobsRunCounter(t *testing.T) {
	s, jt := testTracker(1, Config{TaskStartup: sim.Second, JobStartup: sim.Second})
	s.Spawn("driver", func(p *sim.Proc) {
		jt.Run(p, &Job{Name: "a", MapTasks: []MapTask{{}}, MapOnly: true})
		jt.Run(p, &Job{Name: "b", MapTasks: []MapTask{{}}, MapOnly: true})
	})
	s.Run()
	if jt.JobsRun() != 2 {
		t.Errorf("jobs run = %d, want 2", jt.JobsRun())
	}
}
