package metrics

import (
	"sync"
	"testing"
)

func TestCounterSetConcurrentAdds(t *testing.T) {
	c := NewCounterSet()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add("frames_replayed", 1)
				c.Add("converter_retries", 2)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("frames_replayed"); got != 8000 {
		t.Errorf("frames_replayed = %d, want 8000", got)
	}
	if got := c.Get("converter_retries"); got != 16000 {
		t.Errorf("converter_retries = %d, want 16000", got)
	}
	if got := c.Get("never_touched"); got != 0 {
		t.Errorf("untouched counter = %d, want 0", got)
	}
	snap := c.Snapshot()
	if len(snap) != 2 || snap["frames_replayed"] != 8000 {
		t.Errorf("snapshot %v", snap)
	}
}
