// Package metrics provides the measurement primitives used by both
// benchmark harnesses: latency histograms, windowed throughput series,
// and summary statistics (mean, percentiles, standard error) matching
// what the paper reports for YCSB (average latency over the last ten
// minutes, measured in ten-second windows, with standard error across
// the sixty measurements) and TPC-H (arithmetic and geometric means).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"elephants/internal/sim"
)

// Histogram records latency observations with exact storage up to a
// configurable cap, after which it subsamples deterministically. For the
// simulation's operation counts exact storage is the common case.
type Histogram struct {
	samples []float64 // milliseconds
	count   int64
	sum     float64
	min     float64
	max     float64
	cap     int
	sorted  bool
}

// NewHistogram returns a histogram that keeps at most capSamples exact
// samples (0 means a default of 1<<20).
func NewHistogram(capSamples int) *Histogram {
	if capSamples <= 0 {
		capSamples = 1 << 20
	}
	return &Histogram{cap: capSamples, min: math.Inf(1), max: math.Inf(-1)}
}

// Observe records one latency.
func (h *Histogram) Observe(d sim.Duration) { h.ObserveMs(d.Milliseconds()) }

// ObserveMs records one latency expressed in milliseconds.
func (h *Histogram) ObserveMs(ms float64) {
	h.count++
	h.sum += ms
	if ms < h.min {
		h.min = ms
	}
	if ms > h.max {
		h.max = ms
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, ms)
		h.sorted = false
		return
	}
	// Deterministic reservoir-style replacement keyed on count.
	idx := int(h.count % int64(h.cap))
	h.samples[idx] = ms
	h.sorted = false
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean reports the mean latency in milliseconds (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min reports the smallest observation in milliseconds (0 if empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest observation in milliseconds (0 if empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Percentile reports the p-th percentile (0 < p <= 100) in milliseconds.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := p / 100 * float64(len(h.samples)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return h.samples[lo]
	}
	frac := rank - float64(lo)
	return h.samples[lo]*(1-frac) + h.samples[hi]*frac
}

// Window accumulates completed-operation counts into fixed-size windows
// of virtual time, yielding a throughput series. The paper uses 10-second
// windows over the final 10 minutes of each 30-minute YCSB run.
type Window struct {
	size   sim.Duration
	counts map[int64]int64
}

// NewWindow returns a throughput window series with the given window size.
func NewWindow(size sim.Duration) *Window {
	if size <= 0 {
		panic("metrics: window size must be positive")
	}
	return &Window{size: size, counts: make(map[int64]int64)}
}

// Record counts one completed operation at virtual time t.
func (w *Window) Record(t sim.Time) {
	w.counts[int64(t)/int64(w.size)]++
}

// Series returns per-window throughput in operations/second for windows
// whose start time falls in [from, to), in window order. Windows with no
// operations in the range are reported as zero.
func (w *Window) Series(from, to sim.Time) []float64 {
	if to <= from {
		return nil
	}
	first := int64(from) / int64(w.size)
	last := (int64(to) - 1) / int64(w.size)
	out := make([]float64, 0, last-first+1)
	for i := first; i <= last; i++ {
		out = append(out, float64(w.counts[i])/w.size.Seconds())
	}
	return out
}

// Summary is a point estimate with its standard error, as plotted in the
// paper's YCSB figures.
type Summary struct {
	Mean   float64
	StdErr float64
	N      int
}

// Summarize computes mean and standard error of a sample.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	if n == 1 {
		return Summary{Mean: mean, N: 1}
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return Summary{Mean: mean, StdErr: sd / math.Sqrt(float64(n)), N: n}
}

func (s Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f (n=%d)", s.Mean, s.StdErr, s.N)
}

// ArithmeticMean returns the arithmetic mean of xs (0 if empty).
func ArithmeticMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeometricMean returns the geometric mean of xs (0 if empty or if any
// value is non-positive).
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// CounterSet is a named bag of atomic counters — the robustness
// accounting surface (frames replayed, converter retries, corrupt
// chunks quarantined) that stores expose through their stats and the
// bench harnesses print. Counters spring into existence on first Add;
// all methods are safe from any goroutine.
type CounterSet struct {
	mu sync.Mutex
	m  map[string]*atomic.Int64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet { return &CounterSet{m: make(map[string]*atomic.Int64)} }

func (c *CounterSet) counter(name string) *atomic.Int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.m[name]
	if v == nil {
		v = new(atomic.Int64)
		c.m[name] = v
	}
	return v
}

// Add adds delta to the named counter.
func (c *CounterSet) Add(name string, delta int64) { c.counter(name).Add(delta) }

// Get returns the named counter's value (0 if never touched).
func (c *CounterSet) Get(name string) int64 {
	c.mu.Lock()
	v := c.m[name]
	c.mu.Unlock()
	if v == nil {
		return 0
	}
	return v.Load()
}

// Snapshot returns a point-in-time copy of every counter.
func (c *CounterSet) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for name, v := range c.m {
		out[name] = v.Load()
	}
	return out
}
