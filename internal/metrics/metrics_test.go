package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"elephants/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0)
	for _, ms := range []float64{1, 2, 3, 4, 5} {
		h.ObserveMs(ms)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Mean() != 3 {
		t.Errorf("mean = %g, want 3", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Errorf("min,max = %g,%g, want 1,5", h.Min(), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.ObserveMs(float64(i))
	}
	if p := h.Percentile(50); math.Abs(p-50.5) > 0.01 {
		t.Errorf("p50 = %g, want 50.5", p)
	}
	if p := h.Percentile(100); p != 100 {
		t.Errorf("p100 = %g, want 100", p)
	}
	if p := h.Percentile(0); p != 1 {
		t.Errorf("p0 = %g, want 1", p)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(0)
	h.Observe(5 * sim.Millisecond)
	if h.Mean() != 5 {
		t.Errorf("mean = %g ms, want 5", h.Mean())
	}
}

func TestHistogramCapSubsampling(t *testing.T) {
	h := NewHistogram(10)
	for i := 0; i < 1000; i++ {
		h.ObserveMs(7)
	}
	if h.Count() != 1000 {
		t.Errorf("count = %d, want 1000", h.Count())
	}
	if h.Percentile(50) != 7 {
		t.Errorf("p50 = %g, want 7", h.Percentile(50))
	}
}

func TestHistogramMeanIsBounded(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram(0)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			x := float64(v)
			h.ObserveMs(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return h.Mean() >= lo-1e-9 && h.Mean() <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWindowSeries(t *testing.T) {
	w := NewWindow(10 * sim.Second)
	// 5 ops in the first window, 10 in the second.
	for i := 0; i < 5; i++ {
		w.Record(sim.Time(sim.Second))
	}
	for i := 0; i < 10; i++ {
		w.Record(sim.Time(15 * sim.Second))
	}
	s := w.Series(0, sim.Time(20*sim.Second))
	if len(s) != 2 {
		t.Fatalf("len(series) = %d, want 2", len(s))
	}
	if s[0] != 0.5 || s[1] != 1.0 {
		t.Errorf("series = %v, want [0.5 1.0]", s)
	}
}

func TestWindowEmptyRange(t *testing.T) {
	w := NewWindow(sim.Second)
	if s := w.Series(10, 10); s != nil {
		t.Errorf("empty range series = %v, want nil", s)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %g, want 5", s.Mean)
	}
	if s.N != 8 {
		t.Errorf("n = %d, want 8", s.N)
	}
	// sample sd = sqrt(32/7) ≈ 2.138; stderr = sd/sqrt(8) ≈ 0.756
	if math.Abs(s.StdErr-0.7559) > 0.001 {
		t.Errorf("stderr = %g, want ≈0.756", s.StdErr)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Error("nil sample should summarize to zero")
	}
	if s := Summarize([]float64{3}); s.Mean != 3 || s.StdErr != 0 {
		t.Errorf("single sample: %+v", s)
	}
}

func TestMeans(t *testing.T) {
	xs := []float64{1, 10, 100}
	if am := ArithmeticMean(xs); am != 37 {
		t.Errorf("AM = %g, want 37", am)
	}
	if gm := GeometricMean(xs); math.Abs(gm-10) > 1e-9 {
		t.Errorf("GM = %g, want 10", gm)
	}
	if GeometricMean([]float64{1, 0}) != 0 {
		t.Error("GM with zero should be 0")
	}
	if ArithmeticMean(nil) != 0 || GeometricMean(nil) != 0 {
		t.Error("empty means should be 0")
	}
}

func TestGMLeqAM(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			xs = append(xs, float64(v)+1)
		}
		if len(xs) == 0 {
			return true
		}
		return GeometricMean(xs) <= ArithmeticMean(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
