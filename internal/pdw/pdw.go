// Package pdw models SQL Server Parallel Data Warehouse as the paper
// deployed it: a shared-nothing cluster with hash-distributed or
// replicated tables (Table 1's PDW column), a control node whose
// cost-based optimizer picks join strategies that minimize network
// transfer, and a Data Movement Service (DMS) that shuffles or
// replicates intermediates between compute nodes.
//
// A query executes functionally once (shared tpch/relal program); the
// step log is costed with PDW's strategies: local joins whenever
// partitioning or replication allows, otherwise the cheapest of
// shuffle-left / shuffle-right / replicate-small — exactly the behaviour
// the paper credits for PDW's wins (e.g. Q5's early orders shuffle and
// Q19's replicated part table).
package pdw

import (
	"fmt"

	"elephants/internal/cluster"
	"elephants/internal/relal"
	"elephants/internal/sim"
	"elephants/internal/tpch"
)

// Distribution is one row of Table 1's PDW column.
type Distribution struct {
	// PartitionCol is the hash-distribution column ("" if replicated).
	PartitionCol string
	Replicated   bool
}

// TableDistributions reproduces Table 1 for PDW.
var TableDistributions = map[string]Distribution{
	"customer": {PartitionCol: "c_custkey"},
	"lineitem": {PartitionCol: "l_orderkey"},
	"nation":   {Replicated: true},
	"orders":   {PartitionCol: "o_orderkey"},
	"part":     {PartitionCol: "p_partkey"},
	"partsupp": {PartitionCol: "ps_partkey"},
	"region":   {Replicated: true},
	"supplier": {PartitionCol: "s_suppkey"},
}

// Config tunes the PDW cost model.
type Config struct {
	// ScanMBps is the per-core table-scan processing rate (predicate
	// evaluation over uncompressed rows).
	ScanMBps float64
	// JoinMBps is the per-core join processing rate over input bytes
	// (hash build + probe).
	JoinMBps float64
	// AggMBps is the per-core aggregation rate (expression arithmetic
	// is the expensive part of queries like Q1).
	AggMBps float64
	// WorkersPerNode is the intra-node parallelism. Although PDW lays
	// data out in 8 distributions per node, SQL Server parallelizes
	// each distribution's operators across all 16 (hyper-threaded)
	// cores.
	WorkersPerNode int
	// ProjectionFactor scales row widths to the fraction of columns a
	// typical query actually moves through DMS (PDW projects early;
	// Hive shuffles whole rows).
	ProjectionFactor float64
	// ForceShuffleJoins disables the optimizer's replicate/local
	// choices (ablation: every join shuffles both sides).
	ForceShuffleJoins bool
	// ControlNodeOverhead is the fixed per-query planning cost.
	ControlNodeOverhead sim.Duration
	// PoolBytesPerNode is each compute node's buffer pool (24 GB in
	// the paper). At small scale factors the whole database fits in
	// the aggregate pool and scans skip disk — the paper's explanation
	// for PDW's largest speedups at SF 250.
	PoolBytesPerNode int64
	// SegmentElimination is PDW's counterpart to Hive's
	// PredicatePushdown what-if: column-store scans consume the same
	// skipped-bytes ratio the functional scan pipeline measured (column
	// subsets plus zone-map group pruning) and skip both the disk read
	// and the predicate CPU for eliminated segments. Off by default —
	// the paper's PDW build predates clustered columnstore segment
	// elimination, so base scans read every byte.
	SegmentElimination bool
}

// DefaultConfig returns the paper-calibrated tuning.
func DefaultConfig() Config {
	return Config{
		ScanMBps:            55, // per core; 16 cores ≈ 880 MB/s/node
		JoinMBps:            100,
		AggMBps:             15,
		WorkersPerNode:      16,
		ProjectionFactor:    0.25,
		ControlNodeOverhead: 2 * sim.Second,
		PoolBytesPerNode:    24 << 30,
	}
}

// Strategy names a join's physical plan for reporting.
type Strategy string

// Join strategies.
const (
	LocalJoin      Strategy = "local"
	ShuffleLeft    Strategy = "shuffle-left"
	ShuffleRight   Strategy = "shuffle-right"
	ShuffleBoth    Strategy = "shuffle-both"
	ReplicateSmall Strategy = "replicate-small"
)

// StepReport records one costed plan step.
type StepReport struct {
	Kind     string
	Strategy Strategy
	Bytes    int64
	Elapsed  sim.Duration
}

// QueryStats is the result of one PDW query execution.
type QueryStats struct {
	Query  int
	Total  sim.Duration
	Steps  []StepReport
	Answer *relal.Table
}

// PDW is a deployment at a target scale factor.
type PDW struct {
	s   *sim.Sim
	cl  *cluster.Cluster
	cfg Config
	db  *tpch.DB
	SF  float64
}

// New builds a PDW deployment modeling scale factor sf over db's
// functional data.
func New(s *sim.Sim, cl *cluster.Cluster, db *tpch.DB, sf float64, cfg Config) *PDW {
	if cfg.ScanMBps <= 0 {
		cfg = DefaultConfig()
	}
	return &PDW{s: s, cl: cl, cfg: cfg, db: db, SF: sf}
}

// tableBytes is the stored size of a base table at the target SF.
func (w *PDW) tableBytes(table string) int64 { return tpch.TextBytes(table, w.SF) }

// parallel runs fn once per node concurrently and waits.
func (w *PDW) parallel(p *sim.Proc, name string, fn func(np *sim.Proc, node *cluster.Node)) {
	wg := w.s.NewWaitGroup()
	wg.Add(len(w.cl.Nodes))
	for _, node := range w.cl.Nodes {
		node := node
		w.s.Spawn(name, func(np *sim.Proc) {
			defer wg.Done()
			fn(np, node)
		})
	}
	wg.Wait(p)
}

// cachedFraction returns the fraction of the database resident in the
// aggregate buffer pool (1.0 at SF 250, ~0.02 at SF 16000).
func (w *PDW) cachedFraction() float64 {
	var total int64
	for _, t := range tpch.TableNames {
		total += w.tableBytes(t)
	}
	pool := w.cfg.PoolBytesPerNode * int64(len(w.cl.Nodes))
	if total <= 0 {
		return 1
	}
	f := float64(pool) / float64(total)
	if f > 1 {
		return 1
	}
	return f
}

// scan charges a parallel striped scan of bytes total across the
// cluster with per-core predicate evaluation. Only the uncached
// fraction of the bytes touches disk. skipFrac is the
// segment-elimination fraction: that share of the bytes is never read
// from disk nor pushed through predicate evaluation (zero unless
// Config.SegmentElimination is on).
func (w *PDW) scan(p *sim.Proc, bytes int64, skipFrac float64) {
	if skipFrac > 0 {
		bytes = int64(float64(bytes) * (1 - skipFrac))
	}
	n := int64(len(w.cl.Nodes))
	share := bytes / n
	diskShare := int64(float64(share) * (1 - w.cachedFraction()))
	w.parallel(p, "pdw-scan", func(np *sim.Proc, node *cluster.Node) {
		if diskShare > 0 {
			node.ReadSeqStriped(np, diskShare)
		}
		w.compute(np, node, share, w.cfg.ScanMBps)
	})
}

// compute charges CPU for processing bytes at the per-core rate with
// WorkersPerNode-way parallelism on one node.
func (w *PDW) compute(np *sim.Proc, node *cluster.Node, bytes int64, mbps float64) {
	coreSeconds := float64(bytes) / (mbps * 1e6)
	workers := w.cfg.WorkersPerNode
	if workers < 1 {
		workers = 1
	}
	wg := w.s.NewWaitGroup()
	wg.Add(workers)
	per := sim.Seconds(coreSeconds / float64(workers))
	for i := 0; i < workers; i++ {
		w.s.Spawn("pdw-worker", func(wp *sim.Proc) {
			defer wg.Done()
			node.Compute(wp, per)
		})
	}
	wg.Wait(np)
}

// shuffle charges a DMS repartition of bytes across the cluster: each
// node streams its share out one NIC and in another.
func (w *PDW) shuffle(p *sim.Proc, bytes int64) {
	n := len(w.cl.Nodes)
	share := bytes / int64(n)
	w.parallel(p, "pdw-dms", func(np *sim.Proc, node *cluster.Node) {
		node.Send(np, w.cl.Nodes[(node.ID+1)%n], share)
	})
}

// replicate charges broadcasting bytes to every node.
func (w *PDW) replicate(p *sim.Proc, bytes int64) {
	n := len(w.cl.Nodes)
	// Broadcast: the data streams out of each holding node (n-1)
	// copies in aggregate; model as each node sending (n-1)/n of
	// bytes.
	share := bytes * int64(n-1) / int64(n)
	w.parallel(p, "pdw-replicate", func(np *sim.Proc, node *cluster.Node) {
		node.Send(np, w.cl.Nodes[(node.ID+1)%n], share/int64(n))
	})
}

func colSuffix(col string) string {
	for i := 0; i < len(col); i++ {
		if col[i] == '_' {
			return col[i+1:]
		}
	}
	return col
}

// sideState tracks how one join input is distributed.
type sideState struct {
	partKey    string // hash-distribution column suffix ("" if none)
	replicated bool
}

func baseState(table string) sideState {
	d := TableDistributions[table]
	return sideState{partKey: colSuffix(d.PartitionCol), replicated: d.Replicated}
}

// RunQuery executes TPC-H query id on PDW.
func (w *PDW) RunQuery(p *sim.Proc, id int) QueryStats {
	answer, log := tpch.RunQuery(id, w.db)
	qs := QueryStats{Query: id, Answer: answer}
	start := p.Now()
	ratio := w.SF / w.db.SF
	proj := w.cfg.ProjectionFactor

	scaled := func(rows, width int) int64 {
		return int64(float64(rows) * float64(width) * ratio * proj)
	}

	// With segment elimination on, collect the per-table skipped-bytes
	// fraction the functional scans measured — the same consumption of
	// the step log the Hive model's PredicatePushdown does.
	pruned := map[string]float64{}
	if w.cfg.SegmentElimination {
		pruned = log.SkippedScanFracs()
	}

	p.Sleep(w.cfg.ControlNodeOverhead)

	// Distribution of the running intermediate (chained plans).
	cur := sideState{}

	report := func(kind string, strategy Strategy, bytes int64, t0 sim.Time) {
		qs.Steps = append(qs.Steps, StepReport{
			Kind: kind, Strategy: strategy, Bytes: bytes,
			Elapsed: sim.Duration(p.Now() - t0),
		})
	}

	scannedBase := map[string]bool{}

	for _, step := range log.Steps {
		switch step.Kind {
		case relal.StepScan:
			continue // charged by the consuming operator
		case relal.StepFilter:
			// Base-table filters charge the scan once; intermediate
			// filters are free (pipelined). The report records the bytes
			// actually pushed through the scan, so with segment
			// elimination it shows the post-pruning size the elapsed
			// time was charged for.
			if step.LeftBase != "" && !scannedBase[step.LeftBase] {
				t0 := p.Now()
				bytes := w.tableBytes(step.LeftBase)
				if f := pruned[step.LeftBase]; f > 0 {
					bytes = int64(float64(bytes) * (1 - f))
				}
				w.scan(p, w.tableBytes(step.LeftBase), pruned[step.LeftBase])
				scannedBase[step.LeftBase] = true
				report("scan:"+step.LeftBase, "", bytes, t0)
			}
		case relal.StepJoin:
			t0 := p.Now()
			leftBytes := scaled(step.LeftRows, step.LeftWidth)
			rightBytes := scaled(step.RightRows, step.RightWidth)
			var left, right sideState
			if step.LeftBase != "" {
				left = baseState(step.LeftBase)
				if !scannedBase[step.LeftBase] {
					w.scan(p, w.tableBytes(step.LeftBase), pruned[step.LeftBase])
					scannedBase[step.LeftBase] = true
				}
			} else {
				left = cur
			}
			if step.RightBase != "" {
				right = baseState(step.RightBase)
				if !scannedBase[step.RightBase] {
					w.scan(p, w.tableBytes(step.RightBase), pruned[step.RightBase])
					scannedBase[step.RightBase] = true
				}
			} else {
				right = cur
			}
			key := colSuffix(step.JoinKey)
			strategy := w.chooseStrategy(left, right, key, leftBytes, rightBytes)
			switch strategy {
			case ShuffleLeft:
				w.shuffle(p, leftBytes)
			case ShuffleRight:
				w.shuffle(p, rightBytes)
			case ShuffleBoth:
				w.shuffle(p, leftBytes+rightBytes)
			case ReplicateSmall:
				small := leftBytes
				if rightBytes < small {
					small = rightBytes
				}
				w.replicate(p, small)
			}
			// Local join on every node over its share.
			share := (leftBytes + rightBytes) / int64(len(w.cl.Nodes))
			w.parallel(p, "pdw-join", func(np *sim.Proc, node *cluster.Node) {
				w.compute(np, node, share, w.cfg.JoinMBps)
			})
			report("join:"+step.Table, strategy, leftBytes+rightBytes, t0)
			// Output partitioning: aligned on the join key unless the
			// join was replicate-based (then it keeps the big side's).
			switch strategy {
			case ReplicateSmall, LocalJoin:
				big := left
				if rightBytes > leftBytes {
					big = right
				}
				if big.partKey != "" {
					cur = sideState{partKey: big.partKey}
				} else {
					cur = sideState{partKey: key}
				}
			default:
				cur = sideState{partKey: key}
			}
		case relal.StepAgg:
			t0 := p.Now()
			in := scaled(step.LeftRows, step.LeftWidth)
			if step.LeftBase != "" && !scannedBase[step.LeftBase] {
				w.scan(p, w.tableBytes(step.LeftBase), pruned[step.LeftBase])
				scannedBase[step.LeftBase] = true
			}
			// Local partial aggregation, then a small global merge on
			// the control node.
			share := in / int64(len(w.cl.Nodes))
			w.parallel(p, "pdw-agg", func(np *sim.Proc, node *cluster.Node) {
				w.compute(np, node, share, w.cfg.AggMBps)
			})
			out := scaled(step.OutRows, step.OutWidth)
			w.shuffle(p, out)
			report("agg", "", in, t0)
			cur = sideState{}
		case relal.StepSort:
			t0 := p.Now()
			out := scaled(step.OutRows, step.OutWidth)
			w.parallel(p, "pdw-sort", func(np *sim.Proc, node *cluster.Node) {
				w.compute(np, node, out/int64(len(w.cl.Nodes)), w.cfg.ScanMBps)
			})
			report("sort", "", out, t0)
		}
	}
	qs.Total = sim.Duration(p.Now() - start)
	return qs
}

// chooseStrategy is the optimizer's network-cost minimisation.
func (w *PDW) chooseStrategy(left, right sideState, key string, leftBytes, rightBytes int64) Strategy {
	if w.cfg.ForceShuffleJoins {
		return ShuffleBoth
	}
	if left.replicated || right.replicated {
		return LocalJoin
	}
	leftAligned := left.partKey == key
	rightAligned := right.partKey == key
	if leftAligned && rightAligned {
		return LocalJoin
	}
	n := int64(len(w.cl.Nodes))
	small := leftBytes
	if rightBytes < small {
		small = rightBytes
	}
	costShuffleLeft := int64(1 << 62)
	if rightAligned {
		costShuffleLeft = leftBytes
	}
	costShuffleRight := int64(1 << 62)
	if leftAligned {
		costShuffleRight = rightBytes
	}
	costShuffleBoth := leftBytes + rightBytes
	costReplicate := small * (n - 1)
	minCost := costShuffleBoth
	strategy := ShuffleBoth
	if costShuffleLeft < minCost {
		minCost, strategy = costShuffleLeft, ShuffleLeft
	}
	if costShuffleRight < minCost {
		minCost, strategy = costShuffleRight, ShuffleRight
	}
	if costReplicate < minCost {
		strategy = ReplicateSmall
	}
	return strategy
}

// LoadTime models dwloader: the landing node splits the generated text
// and streams it to the compute nodes, which write their shares (the
// paper's Table 2 shows PDW loading ~2× slower than Hive).
func (w *PDW) LoadTime(p *sim.Proc) sim.Duration {
	start := p.Now()
	var total int64
	for _, t := range tpch.TableNames {
		total += w.tableBytes(t)
	}
	n := int64(len(w.cl.Nodes))
	// The landing node is the bottleneck: all bytes stream through its
	// NIC, then each compute node parses, converts, and writes its
	// share with index-free bulk insert.
	landing := w.cl.Nodes[0]
	wg := w.s.NewWaitGroup()
	wg.Add(1)
	w.s.Spawn("dwloader-landing", func(lp *sim.Proc) {
		defer wg.Done()
		landing.ReadSeqStriped(lp, total)
		// dwloader splits and re-frames records on the landing node;
		// its effective outbound rate is roughly half wire speed.
		landing.NIC.Use(lp, sim.Seconds(float64(total)/(62.5*1e6)))
	})
	w.parallel(p, "dwloader-compute", func(np *sim.Proc, node *cluster.Node) {
		share := total / n
		// Parse + convert is CPU-heavy in SQL Server's bulk path.
		w.compute(np, node, share, 4)
		node.WriteSeqStriped(np, share)
	})
	wg.Wait(p)
	return sim.Duration(p.Now() - start)
}

// String summarises a QueryStats for debugging.
func (qs QueryStats) String() string {
	return fmt.Sprintf("Q%d: %v (%d steps)", qs.Query, qs.Total, len(qs.Steps))
}
