package pdw

import (
	"testing"

	"elephants/internal/cluster"
	"elephants/internal/sim"
	"elephants/internal/tpch"
)

func testPDW(sf float64, cfg Config) (*sim.Sim, *PDW) {
	s := sim.New()
	cl := cluster.New(s, cluster.Default16())
	db := tpch.Generate(tpch.GenConfig{SF: 0.002, Seed: 1, Random64: true})
	if cfg.ScanMBps == 0 {
		cfg = DefaultConfig()
	}
	return s, New(s, cl, db, sf, cfg)
}

func runQ(s *sim.Sim, w *PDW, id int) QueryStats {
	var qs QueryStats
	s.Spawn("driver", func(p *sim.Proc) { qs = w.RunQuery(p, id) })
	s.Run()
	return qs
}

func TestDistributionsMatchTable1(t *testing.T) {
	if !TableDistributions["nation"].Replicated || !TableDistributions["region"].Replicated {
		t.Error("nation and region must be replicated")
	}
	if TableDistributions["lineitem"].PartitionCol != "l_orderkey" {
		t.Error("lineitem distributes on l_orderkey")
	}
	if TableDistributions["customer"].PartitionCol != "c_custkey" {
		t.Error("customer distributes on c_custkey")
	}
}

func TestQ19ReplicatesPart(t *testing.T) {
	// The paper: "PDW first replicates the part table at all the nodes
	// of the cluster ... then joins with lineitem locally".
	s, w := testPDW(250, Config{})
	qs := runQ(s, w, 19)
	var sawReplicate bool
	for _, st := range qs.Steps {
		if st.Strategy == ReplicateSmall {
			sawReplicate = true
		}
	}
	if !sawReplicate {
		t.Error("Q19 should replicate the small (part) side")
	}
}

func TestQ5AvoidsShufflingLineitem(t *testing.T) {
	// The paper: PDW's optimizer never shuffles the lineitem base
	// table in Q5 — it shuffles orders and intermediates instead.
	s, w := testPDW(250, Config{})
	qs := runQ(s, w, 5)
	lineitemBytes := w.tableBytes("lineitem")
	for _, st := range qs.Steps {
		if st.Strategy == ShuffleBoth && st.Bytes > lineitemBytes {
			t.Errorf("Q5 shuffled %d bytes in one join (> lineitem), optimizer failed", st.Bytes)
		}
	}
}

func TestLocalJoinWithReplicatedDimension(t *testing.T) {
	s, w := testPDW(250, Config{})
	qs := runQ(s, w, 5)
	var locals int
	for _, st := range qs.Steps {
		if st.Strategy == LocalJoin {
			locals++
		}
	}
	if locals == 0 {
		t.Error("Q5 should contain local joins (replicated nation/region)")
	}
}

func TestQueriesScaleWithSF(t *testing.T) {
	s1, w1 := testPDW(250, Config{})
	t250 := runQ(s1, w1, 1).Total
	s2, w2 := testPDW(1000, Config{})
	t1000 := runQ(s2, w2, 1).Total
	ratio := float64(t1000) / float64(t250)
	// Table 3: PDW scaling per 4× data is ~3.9 for most queries but
	// exceeds 4 when the 250 GB point fit entirely in the aggregate
	// buffer pool (the paper's Q8 scales 9.9× for this reason).
	if ratio < 3.0 || ratio > 6.0 {
		t.Errorf("PDW Q1 250→1000 scaling = %.2f, want 3.9–5", ratio)
	}
}

func TestForceShuffleAblationSlower(t *testing.T) {
	cfg := DefaultConfig()
	s1, w1 := testPDW(1000, cfg)
	smart := runQ(s1, w1, 19).Total
	cfg.ForceShuffleJoins = true
	s2, w2 := testPDW(1000, cfg)
	dumb := runQ(s2, w2, 19).Total
	if dumb <= smart {
		t.Errorf("forcing shuffle joins (%v) should be slower than cost-based (%v)", dumb, smart)
	}
}

func TestAnswerMatchesReference(t *testing.T) {
	s, w := testPDW(250, Config{})
	qs := runQ(s, w, 1)
	ref, _ := tpch.RunQuery(1, w.db)
	if qs.Answer.NumRows() != ref.NumRows() {
		t.Error("PDW answer differs from reference")
	}
}

func TestAllQueriesRunOnPDW(t *testing.T) {
	s := sim.New()
	cl := cluster.New(s, cluster.Default16())
	db := tpch.Generate(tpch.GenConfig{SF: 0.002, Seed: 1, Random64: true})
	w := New(s, cl, db, 250, DefaultConfig())
	var totals []sim.Duration
	s.Spawn("driver", func(p *sim.Proc) {
		for _, q := range tpch.Queries {
			qs := w.RunQuery(p, q.ID)
			totals = append(totals, qs.Total)
		}
	})
	s.Run()
	if len(totals) != 22 {
		t.Fatalf("ran %d queries, want 22", len(totals))
	}
	for i, d := range totals {
		if d <= 0 {
			t.Errorf("Q%d took %v, want positive", i+1, d)
		}
	}
}

func TestLoadTimeScales(t *testing.T) {
	s1, w1 := testPDW(250, Config{})
	var l250 sim.Duration
	s1.Spawn("load", func(p *sim.Proc) { l250 = w1.LoadTime(p) })
	s1.Run()
	s2, w2 := testPDW(1000, Config{})
	var l1000 sim.Duration
	s2.Spawn("load", func(p *sim.Proc) { l1000 = w2.LoadTime(p) })
	s2.Run()
	ratio := float64(l1000) / float64(l250)
	if ratio < 3 || ratio > 5 {
		t.Errorf("PDW load 250→1000 scaling = %.2f, want ≈4 (paper: 79→313 min)", ratio)
	}
}

// TestSegmentEliminationSpeedsUpScans mirrors the Hive model's
// predicate-pushdown test: with the tunable on, scan-heavy queries
// consume the functional run's skipped-bytes ratio (column subsets plus
// zone-map pruning) and skip the eliminated segments' disk and CPU;
// paper-faithful PDW (knob off) reads every byte of every scanned
// column store.
func TestSegmentEliminationSpeedsUpScans(t *testing.T) {
	run := func(elim bool, id int) sim.Duration {
		cfg := DefaultConfig()
		cfg.SegmentElimination = elim
		s, w := testPDW(1000, cfg)
		return runQ(s, w, id).Total
	}
	for _, id := range []int{1, 6} {
		base := run(false, id)
		pruned := run(true, id)
		if pruned >= base {
			t.Errorf("Q%d with segment elimination (%v) should beat paper-faithful PDW (%v)", id, pruned, base)
		}
	}
	// Answers are unaffected — elimination only moves the cost charge.
	cfg := DefaultConfig()
	cfg.SegmentElimination = true
	s, w := testPDW(1000, cfg)
	qs := runQ(s, w, 6)
	ref, _ := tpch.RunQuery(6, w.db)
	if qs.Answer.FloatCol("revenue").Get(0) != ref.FloatCol("revenue").Get(0) {
		t.Error("segment elimination changed the Q6 answer")
	}
}
