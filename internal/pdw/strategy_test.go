package pdw

import "testing"

func strategyPDW() *PDW {
	_, w := testPDW(1000, Config{})
	return w
}

func TestChooseLocalWhenReplicated(t *testing.T) {
	w := strategyPDW()
	got := w.chooseStrategy(sideState{replicated: true}, sideState{partKey: "orderkey"}, "custkey", 100, 200)
	if got != LocalJoin {
		t.Errorf("replicated side should force local join, got %s", got)
	}
}

func TestChooseLocalWhenBothAligned(t *testing.T) {
	w := strategyPDW()
	got := w.chooseStrategy(sideState{partKey: "orderkey"}, sideState{partKey: "orderkey"}, "orderkey", 1e9, 1e9)
	if got != LocalJoin {
		t.Errorf("co-partitioned join should be local, got %s", got)
	}
}

func TestChooseShuffleSmallerMisalignedSide(t *testing.T) {
	w := strategyPDW()
	// Right aligned, left not: shuffling left costs leftBytes; since
	// left is big, compare with replicating the smaller right side.
	got := w.chooseStrategy(sideState{partKey: "custkey"}, sideState{partKey: "orderkey"}, "orderkey", 1_000_000, 1_000_000_000)
	if got != ShuffleLeft {
		t.Errorf("small misaligned left should shuffle, got %s", got)
	}
}

func TestChooseReplicateTinyTable(t *testing.T) {
	w := strategyPDW()
	// Neither aligned; tiny right side: replicating it (15× its size)
	// beats shuffling both.
	got := w.chooseStrategy(sideState{partKey: "custkey"}, sideState{partKey: "suppkey"}, "partkey", 1_000_000_000, 1_000)
	if got != ReplicateSmall {
		t.Errorf("tiny side should replicate, got %s", got)
	}
}

func TestChooseShuffleBothWhenComparable(t *testing.T) {
	w := strategyPDW()
	// Neither aligned, sides comparable: replicate costs 15× small,
	// shuffle-both costs left+right — shuffle-both wins.
	got := w.chooseStrategy(sideState{partKey: "custkey"}, sideState{partKey: "suppkey"}, "partkey", 1_000_000, 1_000_000)
	if got != ShuffleBoth {
		t.Errorf("comparable misaligned sides should shuffle both, got %s", got)
	}
}

func TestForceShuffleOverridesAll(t *testing.T) {
	_, w := testPDW(1000, Config{})
	w.cfg.ForceShuffleJoins = true
	got := w.chooseStrategy(sideState{replicated: true}, sideState{}, "k", 1, 1)
	if got != ShuffleBoth {
		t.Errorf("ForceShuffleJoins must override, got %s", got)
	}
}

func TestColSuffix(t *testing.T) {
	cases := map[string]string{
		"l_orderkey": "orderkey",
		"o_orderkey": "orderkey",
		"plain":      "plain",
	}
	for in, want := range cases {
		if got := colSuffix(in); got != want {
			t.Errorf("colSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCachedFractionBounds(t *testing.T) {
	_, small := testPDW(250, Config{})
	if f := small.cachedFraction(); f != 1 {
		t.Errorf("SF 250 cached fraction = %g, want 1 (fits in 384 GB pool)", f)
	}
	_, big := testPDW(16000, Config{})
	f := big.cachedFraction()
	if f <= 0 || f >= 0.1 {
		t.Errorf("SF 16000 cached fraction = %g, want small positive", f)
	}
}
