// Decompressed-chunk cache: the second tier of the serving stack's
// caching layer (the first is tpch.RunStreams' result memoization). An
// RCFile is immutable once written, so the decoded form of any column
// chunk — identified by (file, row group, column) — can be shared by
// every query and every stream that scans it. The cache holds those
// decoded chunks behind a byte-bounded LRU (storage.ByteLRU, the
// eviction core factored out of the buffer-pool seed), turning the
// per-round gzip inflation of hot chunks into a map lookup.
//
// Keys are content-derived: a Source's file ID is a hash of its encoded
// bytes, so two Sources wrapping the same file share entries (and
// per-file accounting can dedupe by the same ID). Cached values are
// immutable — numeric chunks are copied into each query's output vector,
// and dict string chunks share their dictionary slice exactly the way
// fresh decodes already do.
package rcfile

import (
	"hash/fnv"
	"sync"

	"elephants/internal/storage"
)

// chunkKey identifies one decoded column chunk: the owning file (a
// content hash, see fileID), the row group's index within the file, and
// the column's index within the schema.
type chunkKey struct {
	file  uint64
	group int
	col   int
}

// chunkData is the decoded form of one column chunk. The fields
// matching the column type are populated; run-length chunks keep their
// run list (ends set, one value per run) and Str chunks keep the
// strPart representation — global codes or raw strings — all the way
// into the assembled vector.
type chunkData struct {
	ints   []int64
	floats []float64
	ends   []int32 // run ends for a numeric RLE chunk; nil = flat
	str    strPart
}

// sizeBytes estimates the decoded chunk's resident size for the LRU
// bound: slice payloads plus a string-header charge. Run-length chunks
// hold one entry per run, so their charge is the encoded footprint —
// a clustered column's chunks cost the cache almost nothing, and more
// of them stay resident at the same capacity.
func (d chunkData) sizeBytes() int64 {
	b := int64(64) // struct + bookkeeping overhead
	b += 8 * int64(len(d.ints)+len(d.floats))
	b += 4 * int64(len(d.ends))
	b += 4 * int64(len(d.str.codes))
	b += 4 * int64(len(d.str.ends))
	for _, s := range d.str.raw {
		b += 16 + int64(len(s))
	}
	return b
}

// ChunkCache is a shared, size-bounded LRU over decoded column chunks.
// Safe for concurrent use; one cache is meant to sit in front of every
// Source in a process (cross-file keys cannot collide).
type ChunkCache struct {
	mu  sync.Mutex
	lru *storage.ByteLRU[chunkKey, chunkData]
}

// NewChunkCache returns a cache bounded at capacity bytes of decoded
// chunk data (>= 1).
func NewChunkCache(capacity int64) *ChunkCache {
	return &ChunkCache{lru: storage.NewByteLRU[chunkKey, chunkData](capacity, nil)}
}

func (c *ChunkCache) get(k chunkKey) (chunkData, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Get(k)
}

func (c *ChunkCache) put(k chunkKey, d chunkData) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Put(k, d, d.sizeBytes())
}

// Stats returns cumulative lookup hits and misses.
func (c *ChunkCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Stats()
}

// HitRatio returns hits/(hits+misses), or 0 before any lookup.
func (c *ChunkCache) HitRatio() float64 {
	hits, misses := c.Stats()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// UsedBytes returns the resident decoded bytes.
func (c *ChunkCache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.UsedBytes()
}

// Capacity returns the configured byte bound.
func (c *ChunkCache) Capacity() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Capacity()
}

// Len returns the number of resident chunks.
func (c *ChunkCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// fileID hashes encoded file bytes into the cache's file key. Content
// addressing (FNV-1a) rather than a per-Source counter means re-encoding
// the same table — or wrapping one encoded file in several Sources —
// lands on the same entries instead of duplicating them.
func fileID(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}
