package rcfile

import (
	"testing"
)

// refLRU is a deliberately naive model of the cache's contract: a slice
// ordered MRU-first, evicting from the tail while over capacity. The
// fuzz target replays the same operations against it and the real
// ChunkCache and requires identical hits, residency, order, and bounds.
type refLRU struct {
	capacity int64
	used     int64
	keys     []chunkKey
	sizes    map[chunkKey]int64
}

func (r *refLRU) find(k chunkKey) int {
	for i, x := range r.keys {
		if x == k {
			return i
		}
	}
	return -1
}

func (r *refLRU) get(k chunkKey) bool {
	i := r.find(k)
	if i < 0 {
		return false
	}
	r.keys = append(r.keys[:i], r.keys[i+1:]...)
	r.keys = append([]chunkKey{k}, r.keys...)
	return true
}

func (r *refLRU) put(k chunkKey, size int64) {
	if i := r.find(k); i >= 0 {
		r.used += size - r.sizes[k]
		r.keys = append(r.keys[:i], r.keys[i+1:]...)
	} else {
		r.used += size
	}
	r.sizes[k] = size
	r.keys = append([]chunkKey{k}, r.keys...)
	for r.used > r.capacity && len(r.keys) > 0 {
		tail := r.keys[len(r.keys)-1]
		r.keys = r.keys[:len(r.keys)-1]
		r.used -= r.sizes[tail]
		delete(r.sizes, tail)
	}
}

// FuzzChunkCache fuzzes the chunk-cache key and eviction path: byte
// triples become get/put operations over a small key space with varying
// entry sizes, checked op-by-op against the reference model. The
// capacity bound must hold after every operation.
func FuzzChunkCache(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{7, 0xff, 31, 7, 0xff, 31, 6, 0xff, 0})
	f.Add([]byte{1, 2, 30, 1, 6, 30, 1, 10, 30, 0, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		capacity := int64(80)
		if len(data) > 0 {
			capacity = 64 * (1 + int64(data[0]%64))
		}
		c := NewChunkCache(capacity)
		ref := &refLRU{capacity: capacity, sizes: map[chunkKey]int64{}}
		for i := 0; i+2 < len(data); i += 3 {
			op, kb, sb := data[i], data[i+1], data[i+2]
			key := chunkKey{
				file:  uint64(kb % 4),
				group: int(kb>>2) % 4,
				col:   int(kb>>4) % 4,
			}
			if op%2 == 0 {
				ints := make([]int64, int(sb)%32)
				cd := chunkData{ints: ints}
				c.put(key, cd)
				ref.put(key, cd.sizeBytes())
			} else {
				_, gotHit := c.get(key)
				if wantHit := ref.get(key); gotHit != wantHit {
					t.Fatalf("op %d: get(%v) hit=%v, model says %v", i/3, key, gotHit, wantHit)
				}
			}
			if c.UsedBytes() > capacity {
				t.Fatalf("op %d: used %d exceeds capacity %d", i/3, c.UsedBytes(), capacity)
			}
			if c.Len() != len(ref.keys) {
				t.Fatalf("op %d: %d resident, model has %d", i/3, c.Len(), len(ref.keys))
			}
			got := c.lru.Keys()
			for j, k := range got {
				if k != ref.keys[j] {
					t.Fatalf("op %d: recency order %v, model %v", i/3, got, ref.keys)
				}
			}
		}
	})
}
