package rcfile

import (
	"testing"

	"elephants/internal/relal"
)

// scanSame runs the same projection twice through a cached Source and
// returns the two result tables plus the second scan's stats.
func cachedSource(t *testing.T, rows, groupRows int, cache *ChunkCache) *Source {
	t.Helper()
	src, err := NewSource(sampleTable(rows), groupRows)
	if err != nil {
		t.Fatal(err)
	}
	src.SetCache(cache)
	return src
}

func sameRows(t *testing.T, a, b *relal.Table) {
	t.Helper()
	if a.NumRows() != b.NumRows() {
		t.Fatalf("row counts drift: %d vs %d", a.NumRows(), b.NumRows())
	}
	ar, br := relal.RowsOf(a), relal.RowsOf(b)
	for i := range ar {
		for c := range ar[i] {
			if ar[i][c] != br[i][c] {
				t.Fatalf("cell (%d,%d): %v vs %v", i, c, ar[i][c], br[i][c])
			}
		}
	}
}

// runnyTable builds rows with long runs in every column: RLE bait for
// the int and float columns and gdict+rle for the dict string column.
func runnyTable(rows int) *relal.Table {
	keys := make([]int64, rows)
	vals := make([]float64, rows)
	strs := make([]string, rows)
	for i := 0; i < rows; i++ {
		keys[i] = int64(i / 256)
		vals[i] = float64(i / 512)
		strs[i] = []string{"aa", "bb", "cc"}[(i/256)%3]
	}
	return relal.NewTable("t", relal.Schema{
		{Name: "k", Type: relal.Int},
		{Name: "v", Type: relal.Float},
		{Name: "s", Type: relal.Str},
	}, relal.IntsV(keys), relal.FloatsV(vals), relal.EncodeDict(strs))
}

// TestChunkCacheChargesEncodedFootprint: cache weight accounting
// follows the decoded representation, and run-list chunks keep their
// run form — so at the same capacity, the same runny data written with
// run encodings enabled keeps every chunk resident while the
// plain-written file is forced to evict. Cache capacity buys coverage
// in proportion to how well the data encodes.
func TestChunkCacheChargesEncodedFootprint(t *testing.T) {
	tab := runnyTable(8192)
	resident := func(opts WriterOpts, capacity int64) (chunks int, used int64, misses int64) {
		src, err := NewSourceOpts(tab, 512, opts)
		if err != nil {
			t.Fatal(err)
		}
		cache := NewChunkCache(capacity)
		src.SetCache(cache)
		src.ScanTable(nil, nil) // populate
		src.ScanTable(nil, nil) // re-read: misses here mean evictions
		_, m := cache.Stats()
		return cache.Len(), cache.UsedBytes(), m
	}
	const capacity = 16 << 10
	encChunks, encUsed, encMisses := resident(WriterOpts{}, capacity)
	plainChunks, plainUsed, plainMisses := resident(WriterOpts{NoRLE: true, NoDelta: true}, capacity)
	if encChunks <= plainChunks {
		t.Errorf("resident chunks: enc %d, want > plain %d", encChunks, plainChunks)
	}
	// 8192 rows / 512-row groups × 3 columns = 48 chunks; run-encoded
	// they all fit in 16 KiB, so the second scan is eviction-free.
	if encChunks != 48 {
		t.Errorf("enc-on resident chunks = %d, want all 48", encChunks)
	}
	if encMisses != 48 {
		t.Errorf("enc-on misses = %d, want 48 (first scan only)", encMisses)
	}
	if plainMisses <= encMisses {
		t.Errorf("plain misses = %d, want > %d (capacity evictions)", plainMisses, encMisses)
	}
	t.Logf("capacity %d B: enc-on %d chunks / %d B resident, plain %d chunks / %d B",
		int64(capacity), encChunks, encUsed, plainChunks, plainUsed)
}

func TestChunkCacheServesRepeatScans(t *testing.T) {
	cache := NewChunkCache(1 << 20)
	src := cachedSource(t, 500, 64, cache)

	first, s1 := src.ScanTable(nil, nil)
	if s1.CacheHits != 0 || s1.CacheMisses == 0 {
		t.Fatalf("first scan: %d hits / %d misses, want 0 hits and some misses", s1.CacheHits, s1.CacheMisses)
	}
	if s1.BytesFromCache != 0 {
		t.Fatalf("first scan served %d B from an empty cache", s1.BytesFromCache)
	}

	second, s2 := src.ScanTable(nil, nil)
	if s2.CacheMisses != 0 || s2.CacheHits != s1.CacheMisses {
		t.Fatalf("second scan: %d hits / %d misses, want %d hits / 0 misses",
			s2.CacheHits, s2.CacheMisses, s1.CacheMisses)
	}
	if s2.BytesFromCache != s2.BytesRead {
		t.Fatalf("second scan: %d B from cache, want all %d read bytes", s2.BytesFromCache, s2.BytesRead)
	}
	if s1.BytesRead != s2.BytesRead {
		t.Fatalf("BytesRead is not cache-invariant: %d vs %d", s1.BytesRead, s2.BytesRead)
	}
	sameRows(t, first, second)
}

func TestChunkCacheTinyCapacityStaysCorrect(t *testing.T) {
	// A 1-byte capacity evicts every chunk on insert: nothing is ever
	// served from cache, scans stay correct, and the bound holds.
	cache := NewChunkCache(1)
	src := cachedSource(t, 500, 64, cache)
	plain, err := Read(src.data, src.schema, "t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, stats := src.ScanTable(nil, nil)
		if stats.CacheHits != 0 {
			t.Fatalf("scan %d: %d hits from a cache too small to hold a chunk", i, stats.CacheHits)
		}
		sameRows(t, plain, got)
	}
	if cache.UsedBytes() > cache.Capacity() {
		t.Fatalf("UsedBytes %d exceeds capacity %d", cache.UsedBytes(), cache.Capacity())
	}
}

func TestChunkCacheDictColumns(t *testing.T) {
	// Dict-encoded string chunks through the cache: cached and fresh
	// decodes must agree (the cached chunk shares its dictionary).
	xs := make([]string, 300)
	for i := range xs {
		xs[i] = []string{"AIR", "RAIL", "SHIP"}[i%3]
	}
	tb := relal.NewTable("d", relal.Schema{{Name: "m", Type: relal.Str}}, relal.EncodeDict(xs))
	src, err := NewSource(tb, 64)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewChunkCache(1 << 20)
	src.SetCache(cache)
	first, _ := src.ScanTable(nil, nil)
	second, stats := src.ScanTable(nil, nil)
	if stats.CacheHits == 0 {
		t.Fatal("repeat dict scan had no cache hits")
	}
	sameRows(t, first, second)
	mv := second.StrCol("m")
	for i := 0; i < second.NumRows(); i++ {
		if got, want := mv.Get(i), xs[i]; got != want {
			t.Fatalf("row %d = %q, want %q", i, got, want)
		}
	}
}

func TestSourcesShareCacheByContent(t *testing.T) {
	// Two Sources over byte-identical tables get the same content-derived
	// FileID, so the second source's scans are served by chunks the first
	// one warmed — and per-file accounting can dedupe on the same ID.
	cache := NewChunkCache(1 << 20)
	a := cachedSource(t, 400, 64, cache)
	b := cachedSource(t, 400, 64, cache)
	if a.FileID() != b.FileID() {
		t.Fatalf("identical files got different IDs: %x vs %x", a.FileID(), b.FileID())
	}
	ta, sa := a.ScanTable(nil, nil)
	tb, sb := b.ScanTable(nil, nil)
	if sa.CacheHits != 0 {
		t.Fatalf("first source warmed nothing yet, saw %d hits", sa.CacheHits)
	}
	if sb.CacheMisses != 0 {
		t.Fatalf("second source missed %d times despite shared content", sb.CacheMisses)
	}
	sameRows(t, ta, tb)
}

func TestChunkCacheEvictionOrder(t *testing.T) {
	// Size the cache to hold roughly two of the three columns' chunks:
	// scanning columns in turn must evict the least recently scanned.
	src, err := NewSource(sampleTable(200), 256) // one group per column
	if err != nil {
		t.Fatal(err)
	}
	one := func(col string) int64 {
		probe := NewChunkCache(1 << 20)
		src.SetCache(probe)
		src.ScanTable([]string{col}, nil)
		return probe.UsedBytes()
	}
	k, v, s := one("k"), one("v"), one("s")
	cache := NewChunkCache(k + v + s - 1) // all three can never be resident
	src.SetCache(cache)
	src.ScanTable([]string{"k"}, nil)
	src.ScanTable([]string{"v"}, nil)
	src.ScanTable([]string{"s"}, nil) // must evict k, the cold end
	_, stats := src.ScanTable([]string{"k"}, nil)
	if stats.CacheHits != 0 {
		t.Fatal("k survived although inserting s overflowed the cache (LRU should have evicted it)")
	}
	_, stats = src.ScanTable([]string{"s"}, nil)
	if stats.CacheMisses != 0 {
		t.Fatal("most recently used column was evicted instead of the LRU one")
	}
}
