package rcfile

import (
	"errors"
	"testing"

	"elephants/internal/relal"
)

// TestCorruptChunkDetected flips a byte in every chunk position in turn:
// each flip must surface as ErrCorrupt from the verifying read path —
// never as silently wrong rows.
func TestCorruptChunkDetected(t *testing.T) {
	src := sampleTable(200)
	data, err := NewWriter(64).Write(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := parse(data, src.Schema)
	if err != nil {
		t.Fatal(err)
	}
	// The chunk region spans [12, firstGroupEnd...); flip one byte inside
	// each group's first chunk.
	for g, gr := range p.groups {
		bad := append([]byte(nil), data...)
		bad[gr.offset+int64(gr.compLens[0])/2] ^= 0x01
		srcBad, err := NewSourceFromBytes(bad, src.Schema, "t")
		if err != nil {
			t.Fatalf("group %d: footer parse should still pass: %v", g, err)
		}
		_, stats, err := srcBad.TryScan(nil, nil)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("group %d: TryScan error = %v, want ErrCorrupt", g, err)
		}
		if stats.CorruptChunks != 1 {
			t.Fatalf("group %d: CorruptChunks = %d, want 1", g, stats.CorruptChunks)
		}
		if srcBad.TotalStats().CorruptChunks != 1 {
			t.Fatalf("group %d: counter did not accumulate corruption", g)
		}
	}
}

// TestCorruptDictDetected flips a byte inside the footer's dictionary
// blob: parse itself must reject the file.
func TestCorruptDictDetected(t *testing.T) {
	vals := make([]string, 400)
	for i := range vals {
		vals[i] = []string{"AIR", "RAIL", "SHIP", "TRUCK"}[i%4]
	}
	src := relal.NewTable("t", relal.Schema{{Name: "m", Type: relal.Str}}, relal.EncodeDict(vals))
	data, err := NewWriter(128).Write(src)
	if err != nil {
		t.Fatal(err)
	}
	// The dictionary blob sits at the head of the footer; flip a byte in
	// its gzip stream (skip flag byte, compLen, and crc).
	footerLen := int(uint32(data[len(data)-4]) | uint32(data[len(data)-3])<<8 | uint32(data[len(data)-2])<<16 | uint32(data[len(data)-1])<<24)
	footerStart := len(data) - 4 - footerLen
	bad := append([]byte(nil), data...)
	bad[footerStart+9+4] ^= 0x01
	if _, err := NewSourceFromBytes(bad, src.Schema, "t"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("dict corruption error = %v, want ErrCorrupt", err)
	}
}

// TestTryScanCleanMatchesScan pins that the error path is a pure
// addition: on clean bytes TryScan and ScanTable return identical rows.
func TestTryScanCleanMatchesScan(t *testing.T) {
	src := sampleTable(100)
	s, err := NewSource(src, 32)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := s.TryScan([]string{"k", "s"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 100 || len(got.Schema) != 2 {
		t.Fatalf("TryScan shape %dx%d", got.NumRows(), len(got.Schema))
	}
	// Round-trip through Data + NewSourceFromBytes too.
	s2, err := NewSourceFromBytes(s.Data(), src.Schema, "t")
	if err != nil {
		t.Fatal(err)
	}
	got2, _ := s2.ScanTable(nil, nil)
	if got2.NumRows() != 100 {
		t.Fatalf("reparsed scan rows = %d", got2.NumRows())
	}
}
