package rcfile

import (
	"fmt"
	"testing"

	"elephants/internal/relal"
)

// dictGroupRows is the row-group size the dict tests encode with: big
// enough that a handful of distinct values per group beats gzip'd plain
// strings (gzip already LZ-dedups repetition, so dictionaries only pay
// at realistic group sizes), small enough that tests stay multi-group.
const dictGroupRows = 2048

// dictSample builds the same low-cardinality column twice: raw strings
// and dictionary-encoded. Each row group draws from a shifted
// low-cardinality slice of the value space, so different row groups see
// different (but always small) local dictionaries — the adaptive writer
// keeps them dict-encoded and reads exercise the union-merge.
func dictSample(rows, card int) (raw, dict *relal.Table) {
	xs := make([]string, rows)
	ks := make([]int64, rows)
	for i := range xs {
		xs[i] = fmt.Sprintf("val-%03d", (i/dictGroupRows*3+i%6)%card)
		ks[i] = int64(i)
	}
	sch := relal.Schema{
		{Name: "k", Type: relal.Int},
		{Name: "s", Type: relal.Str},
	}
	raw = relal.NewTable("d", sch, relal.IntsV(ks), relal.StrsV(xs))
	dict = relal.NewTable("d", sch, relal.IntsV(ks), relal.EncodeDict(xs))
	return raw, dict
}

func tablesEqual(t *testing.T, a, b *relal.Table) {
	t.Helper()
	ra, rb := relal.RowsOf(a), relal.RowsOf(b)
	if len(ra) != len(rb) {
		t.Fatalf("rows %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		for c := range ra[i] {
			if ra[i][c] != rb[i][c] {
				t.Fatalf("cell (%d,%d): %v vs %v", i, c, ra[i][c], rb[i][c])
			}
		}
	}
}

// TestDictChunkRoundTrip: a dict-encoded column survives the RCF3
// round trip bit-for-bit, across multiple row groups with differing
// group-local dictionaries, and comes back still dictionary-encoded.
func TestDictChunkRoundTrip(t *testing.T) {
	raw, dict := dictSample(4*dictGroupRows+500, 24)
	data, err := NewWriter(dictGroupRows).Write(dict)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(data, dict.Schema, "d")
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, got, raw)
	sc := got.Cols[got.Schema.Col("s")]
	if !sc.IsDict() {
		t.Error("RCF3 read must return a dict vector for dict chunks, not rebuilt strings")
	}
}

// TestDictChunkSingleGroup covers the same-dictionary fast path (one
// group, codes concatenate untouched).
func TestDictChunkSingleGroup(t *testing.T) {
	raw, dict := dictSample(dictGroupRows, 5)
	data, err := NewWriter(0).Write(dict)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(data, dict.Schema, "d")
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, got, raw)
	if !got.Cols[1].IsDict() {
		t.Error("single-group dict read must stay dict-encoded")
	}
}

// TestDictFileSmallerThanRaw: the point of the encoding — the encoded
// file must be strictly smaller than the raw-string encoding of the
// same low-cardinality data.
func TestDictFileSmallerThanRaw(t *testing.T) {
	raw, dict := dictSample(2*dictGroupRows, 7)
	rawData, err := NewWriter(dictGroupRows).Write(raw)
	if err != nil {
		t.Fatal(err)
	}
	dictData, err := NewWriter(dictGroupRows).Write(dict)
	if err != nil {
		t.Fatal(err)
	}
	if len(dictData) >= len(rawData) {
		t.Errorf("dict file %d B, want < raw %d B", len(dictData), len(rawData))
	}
	t.Logf("7-value column over %d rows: raw %d B, dict %d B (%.0f%%)",
		2*dictGroupRows, len(rawData), len(dictData), 100*float64(len(dictData))/float64(len(rawData)))
}

// TestDictZoneMapsPruneAndCarryCodes: RCF3 zone maps on dict chunks
// still prune by string bounds and expose the min/max codes.
func TestDictZoneMapsPruneAndCarryCodes(t *testing.T) {
	// Ordered low-cardinality data: each group holds two of the sixteen
	// values, so an equality predicate prunes most groups and every
	// chunk stays dict-encoded under the adaptive writer.
	rows := 16 * dictGroupRows / 2
	xs := make([]string, rows)
	for i := range xs {
		xs[i] = fmt.Sprintf("val-%03d", i/(dictGroupRows/2))
	}
	dict := relal.NewTable("d", relal.Schema{{Name: "k", Type: relal.Int}, {Name: "s", Type: relal.Str}},
		relal.IntsV(make([]int64, rows)), relal.EncodeDict(xs))
	data, err := NewWriter(dictGroupRows).Write(dict)
	if err != nil {
		t.Fatal(err)
	}
	zones, err := ZoneMaps(data, dict.Schema)
	if err != nil {
		t.Fatal(err)
	}
	for g, zs := range zones {
		z := zs[1]
		if !z.HasCodes {
			t.Fatalf("group %d: dict zone missing codes", g)
		}
		if z.CodeMin > z.CodeMax || z.StrMin > z.StrMax {
			t.Fatalf("group %d: inverted zone %+v", g, z)
		}
	}
	got, stats, err := ReadCols(data, dict.Schema, "d", []string{"s"},
		relal.ZonePredicate{relal.StrEq("s", "val-005")})
	if err != nil {
		t.Fatal(err)
	}
	if stats.GroupsSkipped == 0 {
		t.Error("string predicate should prune dict-chunk groups via zone maps")
	}
	found := false
	sv := got.StrCol("s")
	for i := 0; i < got.NumRows(); i++ {
		if sv.Get(i) == "val-005" {
			found = true
		}
	}
	if !found {
		t.Error("pruned read lost the matching value")
	}
}

// TestDictSubsetReadStaysDict: projecting just the dict column through
// ReadCols keeps it encoded and accounts skipped bytes for the rest.
func TestDictSubsetReadStaysDict(t *testing.T) {
	raw, dict := dictSample(3*dictGroupRows, 9)
	data, err := NewWriter(dictGroupRows).Write(dict)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := ReadCols(data, dict.Schema, "d", []string{"s"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Cols[0].IsDict() {
		t.Error("subset read must stay dict-encoded")
	}
	if stats.BytesSkipped == 0 {
		t.Error("unrequested k column should be skipped")
	}
	want := raw.StrCol("s")
	gv := got.StrCol("s")
	for i := 0; i < got.NumRows(); i++ {
		if gv.Get(i) != want.Get(i) {
			t.Fatalf("row %d: %q vs %q", i, gv.Get(i), want.Get(i))
		}
	}
}

// TestMixedDictAndRawColumns: a table with one dict and one raw Str
// column round-trips both faithfully.
func TestMixedDictAndRawColumns(t *testing.T) {
	rows := 2 * dictGroupRows
	ds := make([]string, rows)
	rs := make([]string, rows)
	for i := range ds {
		ds[i] = fmt.Sprintf("flag-%d", i%3)
		rs[i] = fmt.Sprintf("unique-comment-%d", i)
	}
	sch := relal.Schema{
		{Name: "f", Type: relal.Str},
		{Name: "c", Type: relal.Str},
	}
	src := relal.NewTable("m", sch, relal.EncodeDict(ds), relal.StrsV(rs))
	data, err := NewWriter(dictGroupRows).Write(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(data, sch, "m")
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, got, src)
	if !got.Cols[0].IsDict() || got.Cols[1].IsDict() {
		t.Errorf("encodings flipped: f dict=%v, c dict=%v",
			got.Cols[0].IsDict(), got.Cols[1].IsDict())
	}
}
