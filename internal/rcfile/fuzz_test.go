package rcfile

import (
	"fmt"
	"testing"

	"elephants/internal/relal"
)

// FuzzDictRoundTrip fuzzes the RCF3 dict-chunk encode/decode path:
// arbitrary bytes become a low-cardinality string column (cardinality,
// row-group size, and a pruning probe all fuzz-chosen), written both
// dictionary-encoded and raw. The two files must decode to identical
// rows, and the dict read must survive group-local dictionary merging,
// zone pruning, and column projection.
func FuzzDictRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 8, 1})
	f.Add([]byte{1, 1, 0, 0, 0})
	f.Add([]byte("duplicate values duplicate values"))
	f.Add([]byte{0xff, 0x00, 0x10, 0x20, 0x30, 0x40, 0x50})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Layout: byte 0 → cardinality, byte 1 → row-group rows,
		// byte 2 → probe value for the pushed predicate; the rest
		// becomes the rows.
		card := 1
		groupRows := 1
		probe := 0
		if len(data) > 0 {
			card = int(data[0])%37 + 1
		}
		if len(data) > 1 {
			groupRows = int(data[1])%19 + 1
		}
		if len(data) > 2 {
			probe = int(data[2]) % (card + 3)
		}
		rows := len(data)
		xs := make([]string, rows)
		for i, b := range data {
			v := int(b) % card
			if v%5 == 0 {
				xs[i] = "" // empty-string sentinel
			} else {
				xs[i] = fmt.Sprintf("v%02d", v)
			}
		}
		sch := relal.Schema{{Name: "s", Type: relal.Str}}
		raw := relal.NewTable("f", sch, relal.StrsV(xs))
		dict := relal.NewTable("f", sch, relal.EncodeDict(xs))

		rawData, err := NewWriter(groupRows).Write(raw)
		if err != nil {
			t.Fatal(err)
		}
		dictData, err := NewWriter(groupRows).Write(dict)
		if err != nil {
			t.Fatal(err)
		}

		want, err := Read(rawData, sch, "f")
		if err != nil {
			t.Fatal(err)
		}
		got, err := Read(dictData, sch, "f")
		if err != nil {
			t.Fatal(err)
		}
		if want.NumRows() != rows || got.NumRows() != rows {
			t.Fatalf("row counts drift: raw %d, dict %d, want %d",
				want.NumRows(), got.NumRows(), rows)
		}
		wv, gv := want.StrCol("s"), got.StrCol("s")
		for i := 0; i < rows; i++ {
			if wv.Get(i) != gv.Get(i) {
				t.Fatalf("row %d: raw %q vs dict %q", i, wv.Get(i), gv.Get(i))
			}
		}

		// Pruned reads agree too: the same string predicate over both
		// encodings must keep identical row sets (pruning is
		// conservative, so compare the surviving values, not counts).
		pred := relal.ZonePredicate{relal.StrEq("s", fmt.Sprintf("v%02d", probe))}
		prunedRaw, _, err := ReadCols(rawData, sch, "f", nil, pred)
		if err != nil {
			t.Fatal(err)
		}
		prunedDict, _, err := ReadCols(dictData, sch, "f", nil, pred)
		if err != nil {
			t.Fatal(err)
		}
		match := func(tb *relal.Table) []string {
			var out []string
			v := tb.StrCol("s")
			target := fmt.Sprintf("v%02d", probe)
			for i := 0; i < tb.NumRows(); i++ {
				if v.Get(i) == target {
					out = append(out, v.Get(i))
				}
			}
			return out
		}
		mr, md := match(prunedRaw), match(prunedDict)
		if len(mr) != len(md) {
			t.Fatalf("pruned match counts drift: raw %d vs dict %d", len(mr), len(md))
		}
	})
}

// FuzzRLEDelta fuzzes the RCF4 run-length and delta chunk paths: the
// fuzzer picks the row-group size, run lengths, and dictionary
// cardinality, the data becomes a sorted int key (delta/RLE bait), a
// runny float column, and a runny dict string column, and the file is
// written twice — every encoding enabled versus RLE+delta disabled.
// Both files must decode to the generated rows exactly, and a pruned
// read over each must keep the same matches, no matter whether the
// decoded vectors came back flat or as run lists.
func FuzzRLEDelta(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{5, 3, 2, 1})
	f.Add([]byte{7, 1, 1, 9, 0, 0, 0, 0, 0, 0})
	f.Add([]byte("runs runs runs runs runs runs"))
	f.Add([]byte{0xff, 0x01, 0x02, 0x03, 0x10, 0x10, 0x10, 0x10})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Layout: byte 0 → row-group rows, byte 1 → run length,
		// byte 2 → dict cardinality, byte 3 → pruning probe; every
		// byte (including those four) contributes one row.
		groupRows := 1
		runLen := 1
		card := 1
		probe := int64(0)
		if len(data) > 0 {
			groupRows = int(data[0])%19 + 1
		}
		if len(data) > 1 {
			runLen = int(data[1])%7 + 1
		}
		if len(data) > 2 {
			card = int(data[2])%11 + 1
		}
		if len(data) > 3 {
			probe = int64(data[3])
		}
		rows := len(data)
		ints := make([]int64, rows)
		floats := make([]float64, rows)
		strs := make([]string, rows)
		key := int64(0)
		for i, b := range data {
			key += int64(b % 4) // sorted, small spans: delta/RLE bait
			ints[i] = key
			run := i / runLen
			floats[i] = float64(run%3) * 0.5
			strs[i] = fmt.Sprintf("v%02d", (run+int(b)%2)%card)
		}
		sch := relal.Schema{
			{Name: "k", Type: relal.Int},
			{Name: "x", Type: relal.Float},
			{Name: "s", Type: relal.Str},
		}
		tab := relal.NewTable("f", sch,
			relal.IntsV(ints), relal.FloatsV(floats), relal.EncodeDict(strs))

		encOn, err := NewWriterOpts(groupRows, WriterOpts{}).Write(tab)
		if err != nil {
			t.Fatal(err)
		}
		encOff, err := NewWriterOpts(groupRows, WriterOpts{NoRLE: true, NoDelta: true}).Write(tab)
		if err != nil {
			t.Fatal(err)
		}

		for _, enc := range []struct {
			name string
			data []byte
		}{{"on", encOn}, {"off", encOff}} {
			got, err := Read(enc.data, sch, "f")
			if err != nil {
				t.Fatalf("enc %s: %v", enc.name, err)
			}
			if got.NumRows() != rows {
				t.Fatalf("enc %s: %d rows, want %d", enc.name, got.NumRows(), rows)
			}
			kv, xv, sv := got.IntCol("k"), got.FloatCol("x"), got.StrCol("s")
			for i := 0; i < rows; i++ {
				if kv.Get(i) != ints[i] || xv.Get(i) != floats[i] || sv.Get(i) != strs[i] {
					t.Fatalf("enc %s row %d: (%d, %v, %q), want (%d, %v, %q)",
						enc.name, i, kv.Get(i), xv.Get(i), sv.Get(i),
						ints[i], floats[i], strs[i])
				}
			}
		}

		// Pruned projection over both files keeps identical matches
		// (pruning is conservative; compare surviving values).
		pred := relal.ZonePredicate{relal.IntAtLeast("k", probe)}
		match := func(data []byte) int {
			tb, _, err := ReadCols(data, sch, "f", []string{"k"}, pred)
			if err != nil {
				t.Fatal(err)
			}
			v := tb.IntCol("k")
			n := 0
			for i := 0; i < tb.NumRows(); i++ {
				if v.Get(i) >= probe {
					n++
				}
			}
			return n
		}
		if mOn, mOff := match(encOn), match(encOff); mOn != mOff {
			t.Fatalf("pruned match counts drift: enc on %d vs off %d", mOn, mOff)
		}
	})
}
