package rcfile

import (
	"fmt"
	"testing"

	"elephants/internal/relal"
)

// FuzzDictRoundTrip fuzzes the RCF3 dict-chunk encode/decode path:
// arbitrary bytes become a low-cardinality string column (cardinality,
// row-group size, and a pruning probe all fuzz-chosen), written both
// dictionary-encoded and raw. The two files must decode to identical
// rows, and the dict read must survive group-local dictionary merging,
// zone pruning, and column projection.
func FuzzDictRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 8, 1})
	f.Add([]byte{1, 1, 0, 0, 0})
	f.Add([]byte("duplicate values duplicate values"))
	f.Add([]byte{0xff, 0x00, 0x10, 0x20, 0x30, 0x40, 0x50})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Layout: byte 0 → cardinality, byte 1 → row-group rows,
		// byte 2 → probe value for the pushed predicate; the rest
		// becomes the rows.
		card := 1
		groupRows := 1
		probe := 0
		if len(data) > 0 {
			card = int(data[0])%37 + 1
		}
		if len(data) > 1 {
			groupRows = int(data[1])%19 + 1
		}
		if len(data) > 2 {
			probe = int(data[2]) % (card + 3)
		}
		rows := len(data)
		xs := make([]string, rows)
		for i, b := range data {
			v := int(b) % card
			if v%5 == 0 {
				xs[i] = "" // empty-string sentinel
			} else {
				xs[i] = fmt.Sprintf("v%02d", v)
			}
		}
		sch := relal.Schema{{Name: "s", Type: relal.Str}}
		raw := relal.NewTable("f", sch, relal.StrsV(xs))
		dict := relal.NewTable("f", sch, relal.EncodeDict(xs))

		rawData, err := NewWriter(groupRows).Write(raw)
		if err != nil {
			t.Fatal(err)
		}
		dictData, err := NewWriter(groupRows).Write(dict)
		if err != nil {
			t.Fatal(err)
		}

		want, err := Read(rawData, sch, "f")
		if err != nil {
			t.Fatal(err)
		}
		got, err := Read(dictData, sch, "f")
		if err != nil {
			t.Fatal(err)
		}
		if want.NumRows() != rows || got.NumRows() != rows {
			t.Fatalf("row counts drift: raw %d, dict %d, want %d",
				want.NumRows(), got.NumRows(), rows)
		}
		wv, gv := want.StrCol("s"), got.StrCol("s")
		for i := 0; i < rows; i++ {
			if wv.Get(i) != gv.Get(i) {
				t.Fatalf("row %d: raw %q vs dict %q", i, wv.Get(i), gv.Get(i))
			}
		}

		// Pruned reads agree too: the same string predicate over both
		// encodings must keep identical row sets (pruning is
		// conservative, so compare the surviving values, not counts).
		pred := relal.ZonePredicate{relal.StrEq("s", fmt.Sprintf("v%02d", probe))}
		prunedRaw, _, err := ReadCols(rawData, sch, "f", nil, pred)
		if err != nil {
			t.Fatal(err)
		}
		prunedDict, _, err := ReadCols(dictData, sch, "f", nil, pred)
		if err != nil {
			t.Fatal(err)
		}
		match := func(tb *relal.Table) []string {
			var out []string
			v := tb.StrCol("s")
			target := fmt.Sprintf("v%02d", probe)
			for i := 0; i < tb.NumRows(); i++ {
				if v.Get(i) == target {
					out = append(out, v.Get(i))
				}
			}
			return out
		}
		mr, md := match(prunedRaw), match(prunedDict)
		if len(mr) != len(md) {
			t.Fatalf("pruned match counts drift: raw %d vs dict %d", len(mr), len(md))
		}
	})
}
