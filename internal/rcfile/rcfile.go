// Package rcfile implements the RCFile columnar storage format the
// paper's Hive tables used: rows are grouped into row groups, each row
// group stores its columns contiguously, and every column chunk is
// compressed (GZIP in the paper's configuration).
//
// The format is functional — tables really round-trip through it — and
// it reports measured compression ratios, which the Hive cost model uses
// to size on-disk buckets at the paper's scale factors. The paper's key
// observation ("the RCFile format is not a very efficient storage
// layout... map tasks were CPU-bound at ~70 MB/s") appears in the cost
// model as a per-byte decompression CPU charge.
//
// Version 2 added a per-chunk min/max zone map in the file footer.
// ReadCols uses the footer to decompress only the requested columns, and
// only in row groups whose zone maps can satisfy a pushed predicate —
// the pruning the paper's Hive never did. Every read reports
// ScanStats{BytesRead, BytesSkipped, GroupsSkipped} so the cost models
// can charge (or discount) the decompression CPU per skipped byte.
//
// Version 3 added dictionary-encoded string chunks with group-local
// dictionaries. Version 4 replaces those with one file-global
// dictionary per Str column (stored once in the footer) and adds the
// lightweight encodings a clustered columnar layout earns:
//
//	enc 0 plain      length-prefixed strings / fixed 8-byte numerics
//	enc 1 gdict      frame-of-reference packed global codes (Str)
//	enc 2 gdict+rle  run-length encoded global codes (Str)
//	enc 3 rle        run-length encoded values (Int/Float)
//	enc 4 delta      frame-of-reference packed values (Int)
//
// The writer is adaptive per chunk: it compresses every applicable
// candidate and keeps the smallest (ties go to plain — same bytes,
// simpler decode). On data clustered by a sort column the dominant
// chunks collapse to runs; on sequential keys delta packs 8-byte
// integers into 1–4. The decoder hands run-encoded chunks to the engine
// as relal run vectors — Filter and Aggregate consume them run-at-a-time
// without ever materializing per-row slices — and global-code chunks
// reassemble against the file dictionary with no per-group union merge.
// The modeled chunk sizes in relal's scan accounting (RLEChunkBytes,
// DeltaChunkBytes, GDictChunkBytes, GDictRLEChunkBytes) are these
// encodings' exact pre-compression payload formulas.
//
// Version 5 adds a CRC32 per chunk (and per dictionary blob) to the
// footer, verified before decompression. Corruption surfaces as a typed
// ErrCorrupt from TryScan, so a durable store can detect a damaged part
// and rebuild it instead of serving wrong rows.
//
// Since relal tables are themselves columnar, encoding and decoding
// move cells straight between the typed column vectors and the on-disk
// chunks — no row pivot, no boxed values.
package rcfile

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"elephants/internal/relal"
)

// DefaultRowGroupRows is the row-group size in rows (RCFile defaults to
// 4 MB groups; for the 100–150 byte TPC-H rows this is comparable). It
// matches relal.DefaultScanGroupRows so in-memory scan modeling agrees
// with the on-disk layout.
const DefaultRowGroupRows = relal.DefaultScanGroupRows

// Chunk encodings (the footer's per-chunk enc byte).
const (
	encPlain    = byte(0) // length-prefixed strings / fixed 8-byte numerics
	encGDict    = byte(1) // FOR-packed global codes (Str)
	encGDictRLE = byte(2) // run-length encoded global codes (Str)
	encRLE      = byte(3) // run-length encoded values (Int/Float)
	encDelta    = byte(4) // FOR-packed values (Int)
	numEncs     = 5
)

// EncNames names the chunk encodings, indexed by enc byte (tooling).
var EncNames = [numEncs]string{"plain", "gdict", "gdict+rle", "rle", "delta"}

// WriterOpts disables individual encodings (the -no-rle / -no-delta
// escape hatches). Plain and gdict are always available.
type WriterOpts struct {
	NoRLE   bool // never emit enc 2 or enc 3 chunks
	NoDelta bool // never emit enc 4 chunks
}

// Writer serializes a table into RCFile bytes.
type Writer struct {
	groupRows int
	opts      WriterOpts
}

// NewWriter returns a writer with the given row-group size (0 = default)
// and every encoding enabled.
func NewWriter(groupRows int) *Writer { return NewWriterOpts(groupRows, WriterOpts{}) }

// NewWriterOpts returns a writer with explicit encoding toggles.
func NewWriterOpts(groupRows int, opts WriterOpts) *Writer {
	if groupRows <= 0 {
		groupRows = DefaultRowGroupRows
	}
	return &Writer{groupRows: groupRows, opts: opts}
}

// file layout (version 5):
//
//	magic "RCF5"
//	uint32 numColumns
//	uint32 numGroups
//	per group: the compressed column chunks, concatenated (chunk
//	  lengths live in the footer, so a reader can skip any chunk — or a
//	  whole group — with pointer arithmetic instead of decompression)
//	footer:
//	  global dictionary section, per column:
//	    uint8 flag (1 = dictionary follows)
//	    uint32 compLen, uint32 crc (CRC32 of the blob), then a gzip
//	    blob holding uint32 count and count length-prefixed values
//	    (sorted)
//	  per group:
//	    uint32 rows
//	    per column:
//	      uint32 compLen
//	      uint8  enc
//	      uint32 crc (CRC32 of the compressed chunk bytes)
//	      zone map (typed min/max; enc 1/2 prepend min/max global codes)
//	uint32 footerLen (bytes, immediately before this trailer field)
//
// Version 5 over 4: every chunk and dictionary blob carries a CRC32 of
// its compressed bytes, verified before decompression — a flipped bit
// anywhere in a chunk surfaces as ErrCorrupt instead of garbage rows,
// which the htap view layer uses to quarantine and re-convert a part
// rather than serve a wrong answer.
//
// Chunk payloads (before gzip):
//
//	plain      Str: rows × (u32 len + bytes); numeric: rows × 8 bytes
//	gdict      u8 width, u32 codeBase, rows × width (code − codeBase)
//	gdict+rle  u8 width, u32 codeBase, u32 runs,
//	           runs × (width bytes code − codeBase, u32 runLen)
//	rle        u32 runs, runs × (8-byte value, u32 runLen)
//	delta      u8 width, 8-byte base (chunk min), rows × width
//	           (value − base, little-endian)
//
// width ∈ {0, 1, 2, 4} (relal.FORWidth); width 0 means every row equals
// the base. Every chunk is gzip-compressed.

var magic = []byte("RCF5")

// ErrCorrupt is the typed corruption error: a chunk or dictionary blob
// whose stored CRC32 does not match its bytes. Callers that can degrade
// (the htap view layer) test with errors.Is and rebuild the part; the
// panic-on-error Scan path still panics, wrapping this.
var ErrCorrupt = errors.New("rcfile: corrupt chunk")

// Write encodes t.
func (w *Writer) Write(t *relal.Table) ([]byte, error) {
	d := t.Compacted() // dense vectors; no-op unless t is a view
	cols := make([]*relal.Vector, len(d.Cols))
	for i, v := range d.Cols {
		cols[i] = v.Flat()
	}
	var out bytes.Buffer
	out.Write(magic)
	binary.Write(&out, binary.LittleEndian, uint32(len(d.Schema)))
	n := d.NumRows()
	numGroups := (n + w.groupRows - 1) / w.groupRows
	binary.Write(&out, binary.LittleEndian, uint32(numGroups))
	var footer bytes.Buffer
	for _, v := range cols {
		if !v.IsDict() {
			footer.WriteByte(0)
			continue
		}
		vals := v.DictVals
		blob, err := gzipChunk(func(w io.Writer) error {
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], uint32(len(vals)))
			if _, err := w.Write(buf[:]); err != nil {
				return err
			}
			for _, s := range vals {
				binary.LittleEndian.PutUint32(buf[:], uint32(len(s)))
				if _, err := w.Write(buf[:]); err != nil {
					return err
				}
				if _, err := io.WriteString(w, s); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		footer.WriteByte(1)
		binary.Write(&footer, binary.LittleEndian, uint32(len(blob)))
		binary.Write(&footer, binary.LittleEndian, crc32.ChecksumIEEE(blob))
		footer.Write(blob)
	}
	for g := 0; g < numGroups; g++ {
		lo := g * w.groupRows
		hi := lo + w.groupRows
		if hi > n {
			hi = n
		}
		binary.Write(&footer, binary.LittleEndian, uint32(hi-lo))
		for c := range d.Schema {
			v := cols[c]
			enc, chunk, err := w.encodeChunk(v, lo, hi)
			if err != nil {
				return nil, err
			}
			out.Write(chunk)
			binary.Write(&footer, binary.LittleEndian, uint32(len(chunk)))
			footer.WriteByte(enc)
			binary.Write(&footer, binary.LittleEndian, crc32.ChecksumIEEE(chunk))
			writeZone(&footer, relal.ZoneOf(v, lo, hi), enc)
		}
	}
	out.Write(footer.Bytes())
	binary.Write(&out, binary.LittleEndian, uint32(footer.Len()))
	return out.Bytes(), nil
}

// encodeChunk picks the chunk encoding for rows [lo, hi) of v by the
// modeled (pre-gzip) payload sizes — the same formulas, candidate
// order, and strict-less-than ties relal's scan model charges, so the
// bytes the cost models replay are the bytes the writer lays down. Only
// the winner is compressed.
func (w *Writer) encodeChunk(v *relal.Vector, lo, hi int) (byte, []byte, error) {
	rows := hi - lo
	enc := encPlain
	fn := func(wr io.Writer) error { return writePlainChunk(wr, v, lo, hi) }
	switch {
	case v.IsDict():
		cmin, cmax := minMaxCodes(v.Dict[lo:hi])
		width := relal.FORWidth(uint64(cmax - cmin))
		best := relal.GDictChunkBytes(rows, width)
		enc = encGDict
		fn = func(wr io.Writer) error { return writeGDictChunk(wr, v.Dict[lo:hi], cmin, width) }
		if !w.opts.NoRLE {
			runs := countRuns(v.Dict[lo:hi])
			if rle := relal.GDictRLEChunkBytes(runs, width); rle < best {
				best, enc = rle, encGDictRLE
				fn = func(wr io.Writer) error { return writeGDictRLEChunk(wr, v.Dict[lo:hi], cmin, width) }
			}
		}
		var plain int64
		for _, c := range v.Dict[lo:hi] {
			plain += 4 + int64(len(v.DictVals[c]))
		}
		if plain < best {
			enc = encPlain
			fn = func(wr io.Writer) error { return writePlainChunk(wr, v, lo, hi) }
		}
	case v.Kind == relal.Int:
		best := 8 * int64(rows)
		if !w.opts.NoDelta {
			imin, imax := minMaxInts(v.Ints[lo:hi])
			if width := relal.FORWidth(uint64(imax) - uint64(imin)); width < 8 {
				if fb := relal.DeltaChunkBytes(rows, width); fb < best {
					best, enc = fb, encDelta
					fn = func(wr io.Writer) error { return writeDeltaChunk(wr, v.Ints[lo:hi], imin, width) }
				}
			}
		}
		if !w.opts.NoRLE {
			if rle := relal.RLEChunkBytes(countRuns(v.Ints[lo:hi])); rle < best {
				enc = encRLE
				fn = func(wr io.Writer) error { return writeRLEChunk(wr, v, lo, hi) }
			}
		}
	case v.Kind == relal.Float:
		if !w.opts.NoRLE {
			if rle := relal.RLEChunkBytes(countRuns(v.Floats[lo:hi])); rle < 8*int64(rows) {
				enc = encRLE
				fn = func(wr io.Writer) error { return writeRLEChunk(wr, v, lo, hi) }
			}
		}
	}
	chunk, err := gzipChunk(fn)
	if err != nil {
		return 0, nil, err
	}
	return enc, chunk, nil
}

func minMaxCodes(codes []uint32) (uint32, uint32) {
	if len(codes) == 0 {
		return 0, 0
	}
	mn, mx := codes[0], codes[0]
	for _, c := range codes[1:] {
		if c < mn {
			mn = c
		}
		if c > mx {
			mx = c
		}
	}
	return mn, mx
}

func minMaxInts(xs []int64) (int64, int64) {
	if len(xs) == 0 {
		return 0, 0
	}
	mn, mx := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	return mn, mx
}

// countRuns counts maximal runs of equal adjacent values.
func countRuns[T comparable](xs []T) int {
	if len(xs) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[i-1] {
			runs++
		}
	}
	return runs
}

// writeZone appends one zone map in its typed encoding. Global-code
// chunks (enc 1/2) prepend the chunk's min/max codes — absolute indices
// into the file dictionary — so code-space tooling and the dense
// aggregation planner can size code ranges without decompression;
// pruning consumes only the strings.
func writeZone(w *bytes.Buffer, z relal.ZoneMap, enc byte) {
	switch z.Kind {
	case relal.Int:
		binary.Write(w, binary.LittleEndian, z.IntMin)
		binary.Write(w, binary.LittleEndian, z.IntMax)
	case relal.Float:
		binary.Write(w, binary.LittleEndian, math.Float64bits(z.FloatMin))
		binary.Write(w, binary.LittleEndian, math.Float64bits(z.FloatMax))
	default:
		if enc == encGDict || enc == encGDictRLE {
			binary.Write(w, binary.LittleEndian, z.CodeMin)
			binary.Write(w, binary.LittleEndian, z.CodeMax)
		}
		for _, s := range []string{z.StrMin, z.StrMax} {
			binary.Write(w, binary.LittleEndian, uint32(len(s)))
			w.WriteString(s)
		}
	}
}

// writePlainChunk streams one plain column's cells in rows [lo, hi)
// straight from the typed vector.
func writePlainChunk(w io.Writer, v *relal.Vector, lo, hi int) error {
	var buf [8]byte
	switch v.Kind {
	case relal.Int:
		for _, x := range v.Ints[lo:hi] {
			binary.LittleEndian.PutUint64(buf[:], uint64(x))
			if _, err := w.Write(buf[:]); err != nil {
				return err
			}
		}
	case relal.Float:
		for _, f := range v.Floats[lo:hi] {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
			if _, err := w.Write(buf[:]); err != nil {
				return err
			}
		}
	case relal.Str:
		for p := lo; p < hi; p++ {
			s := v.StrAt(int32(p)) // decodes dict vectors on the way out
			binary.LittleEndian.PutUint32(buf[:4], uint32(len(s)))
			if _, err := w.Write(buf[:4]); err != nil {
				return err
			}
			if _, err := io.WriteString(w, s); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("rcfile: unknown type %d", v.Kind)
	}
	return nil
}

// putPacked writes the low width bytes of x, little-endian (width 0
// writes nothing).
func putPacked(w io.Writer, x uint64, width int) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], x)
	_, err := w.Write(buf[:width])
	return err
}

// writeGDictChunk packs global codes frame-of-reference: the chunk's
// minimum code is the base, every row stores code − base in width bytes.
func writeGDictChunk(w io.Writer, codes []uint32, base uint32, width int) error {
	var hdr [5]byte
	hdr[0] = byte(width)
	binary.LittleEndian.PutUint32(hdr[1:], base)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, c := range codes {
		if err := putPacked(w, uint64(c-base), width); err != nil {
			return err
		}
	}
	return nil
}

// writeGDictRLEChunk writes global codes as (code − base, runLen) runs.
func writeGDictRLEChunk(w io.Writer, codes []uint32, base uint32, width int) error {
	runs := countRuns(codes)
	var hdr [9]byte
	hdr[0] = byte(width)
	binary.LittleEndian.PutUint32(hdr[1:], base)
	binary.LittleEndian.PutUint32(hdr[5:], uint32(runs))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var buf [4]byte
	for i := 0; i < len(codes); {
		j := i + 1
		for j < len(codes) && codes[j] == codes[i] {
			j++
		}
		if err := putPacked(w, uint64(codes[i]-base), width); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(buf[:], uint32(j-i))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// writeRLEChunk writes a numeric column's rows [lo, hi) as
// (value, runLen) runs.
func writeRLEChunk(w io.Writer, v *relal.Vector, lo, hi int) error {
	bits := func(i int) uint64 {
		if v.Kind == relal.Int {
			return uint64(v.Ints[i])
		}
		return math.Float64bits(v.Floats[i])
	}
	runs := 0
	if hi > lo {
		runs = 1
		for i := lo + 1; i < hi; i++ {
			if bits(i) != bits(i-1) {
				runs++
			}
		}
	}
	var buf [12]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(runs))
	if _, err := w.Write(buf[:4]); err != nil {
		return err
	}
	for i := lo; i < hi; {
		j := i + 1
		for j < hi && bits(j) == bits(i) {
			j++
		}
		binary.LittleEndian.PutUint64(buf[:8], bits(i))
		binary.LittleEndian.PutUint32(buf[8:], uint32(j-i))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// writeDeltaChunk packs ints frame-of-reference: the chunk minimum is
// the 8-byte base, every row stores value − base in width bytes.
func writeDeltaChunk(w io.Writer, xs []int64, base int64, width int) error {
	var hdr [9]byte
	hdr[0] = byte(width)
	binary.LittleEndian.PutUint64(hdr[1:], uint64(base))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, x := range xs {
		if err := putPacked(w, uint64(x)-uint64(base), width); err != nil {
			return err
		}
	}
	return nil
}

// group is the decoded footer entry for one row group.
type group struct {
	rows     int
	offset   int64 // byte offset of the group's first chunk
	compLens []uint32
	encs     []byte
	crcs     []uint32 // CRC32 of each compressed chunk
	zones    []relal.ZoneMap
}

// parsed is the decoded file structure (footer only — chunk bytes stay
// compressed until a read asks for them).
type parsed struct {
	dicts  [][]string // per column; nil = no global dictionary
	groups []group
}

// validEnc reports whether enc is legal for a column of the given type
// (dict-code encodings additionally require the global dictionary).
func validEnc(enc byte, kind relal.Type, hasDict bool) bool {
	switch enc {
	case encPlain:
		return true
	case encGDict, encGDictRLE:
		return kind == relal.Str && hasDict
	case encRLE:
		return kind == relal.Int || kind == relal.Float
	case encDelta:
		return kind == relal.Int
	}
	return false
}

// parse validates the header against the schema and decodes the footer.
func parse(data []byte, schema relal.Schema) (*parsed, error) {
	if len(data) < len(magic)+12 || !bytes.Equal(data[:4], magic) {
		return nil, fmt.Errorf("rcfile: bad magic")
	}
	numCols := binary.LittleEndian.Uint32(data[4:])
	numGroups := binary.LittleEndian.Uint32(data[8:])
	if int(numCols) != len(schema) {
		return nil, fmt.Errorf("rcfile: file has %d columns, schema has %d", numCols, len(schema))
	}
	footerLen := binary.LittleEndian.Uint32(data[len(data)-4:])
	footerStart := len(data) - 4 - int(footerLen)
	if footerStart < 12 {
		return nil, fmt.Errorf("rcfile: truncated footer")
	}
	f := data[footerStart : len(data)-4]
	pos := 0
	need := func(n int) error {
		if pos+n > len(f) {
			return fmt.Errorf("rcfile: truncated footer")
		}
		return nil
	}
	readStr := func() (string, error) {
		if err := need(4); err != nil {
			return "", err
		}
		sl := int(binary.LittleEndian.Uint32(f[pos:]))
		pos += 4
		if err := need(sl); err != nil {
			return "", err
		}
		s := string(f[pos : pos+sl])
		pos += sl
		return s, nil
	}
	p := &parsed{dicts: make([][]string, numCols)}
	for c := uint32(0); c < numCols; c++ {
		if err := need(1); err != nil {
			return nil, err
		}
		flag := f[pos]
		pos++
		if flag == 0 {
			continue
		}
		if schema[c].Type != relal.Str {
			return nil, fmt.Errorf("rcfile: dictionary on non-Str column %q", schema[c].Name)
		}
		if err := need(8); err != nil {
			return nil, err
		}
		compLen := int(binary.LittleEndian.Uint32(f[pos:]))
		dictCRC := binary.LittleEndian.Uint32(f[pos+4:])
		pos += 8
		if err := need(compLen); err != nil {
			return nil, err
		}
		if got := crc32.ChecksumIEEE(f[pos : pos+compLen]); got != dictCRC {
			return nil, fmt.Errorf("%w: dictionary blob of column %q (crc %08x, want %08x)",
				ErrCorrupt, schema[c].Name, got, dictCRC)
		}
		gz, err := gzip.NewReader(bytes.NewReader(f[pos : pos+compLen]))
		if err != nil {
			return nil, err
		}
		blob, err := io.ReadAll(gz)
		if err != nil {
			return nil, err
		}
		pos += compLen
		if len(blob) < 4 {
			return nil, fmt.Errorf("rcfile: truncated dictionary")
		}
		count := int(binary.LittleEndian.Uint32(blob))
		if count < 0 || count > len(blob) {
			return nil, fmt.Errorf("rcfile: implausible dictionary size %d", count)
		}
		vals := make([]string, 0, count)
		bp := 4
		for i := 0; i < count; i++ {
			if bp+4 > len(blob) {
				return nil, fmt.Errorf("rcfile: truncated dictionary")
			}
			sl := int(binary.LittleEndian.Uint32(blob[bp:]))
			bp += 4
			if sl < 0 || bp+sl > len(blob) {
				return nil, fmt.Errorf("rcfile: truncated dictionary value")
			}
			vals = append(vals, string(blob[bp:bp+sl]))
			bp += sl
		}
		p.dicts[c] = vals
	}
	offset := int64(12)
	for g := uint32(0); g < numGroups; g++ {
		if err := need(4); err != nil {
			return nil, err
		}
		gr := group{
			rows:     int(binary.LittleEndian.Uint32(f[pos:])),
			offset:   offset,
			compLens: make([]uint32, numCols),
			encs:     make([]byte, numCols),
			crcs:     make([]uint32, numCols),
			zones:    make([]relal.ZoneMap, numCols),
		}
		pos += 4
		for c := uint32(0); c < numCols; c++ {
			if err := need(9); err != nil {
				return nil, err
			}
			gr.compLens[c] = binary.LittleEndian.Uint32(f[pos:])
			gr.encs[c] = f[pos+4]
			gr.crcs[c] = binary.LittleEndian.Uint32(f[pos+5:])
			pos += 9
			if !validEnc(gr.encs[c], schema[c].Type, p.dicts[c] != nil) {
				return nil, fmt.Errorf("rcfile: bad chunk encoding %d on column %q", gr.encs[c], schema[c].Name)
			}
			z := relal.ZoneMap{Kind: schema[c].Type}
			switch schema[c].Type {
			case relal.Int:
				if err := need(16); err != nil {
					return nil, err
				}
				z.IntMin = int64(binary.LittleEndian.Uint64(f[pos:]))
				z.IntMax = int64(binary.LittleEndian.Uint64(f[pos+8:]))
				pos += 16
			case relal.Float:
				if err := need(16); err != nil {
					return nil, err
				}
				z.FloatMin = math.Float64frombits(binary.LittleEndian.Uint64(f[pos:]))
				z.FloatMax = math.Float64frombits(binary.LittleEndian.Uint64(f[pos+8:]))
				pos += 16
			default:
				if gr.encs[c] == encGDict || gr.encs[c] == encGDictRLE {
					if err := need(8); err != nil {
						return nil, err
					}
					z.CodeMin = binary.LittleEndian.Uint32(f[pos:])
					z.CodeMax = binary.LittleEndian.Uint32(f[pos+4:])
					z.HasCodes = true
					pos += 8
				}
				var err error
				if z.StrMin, err = readStr(); err != nil {
					return nil, err
				}
				if z.StrMax, err = readStr(); err != nil {
					return nil, err
				}
			}
			gr.zones[c] = z
			offset += int64(gr.compLens[c])
		}
		p.groups = append(p.groups, gr)
	}
	if int(offset) > footerStart {
		return nil, fmt.Errorf("rcfile: chunk data overruns footer")
	}
	return p, nil
}

// gzipChunk runs one chunk encoder through gzip and returns the
// compressed bytes.
func gzipChunk(fn func(w io.Writer) error) ([]byte, error) {
	var col bytes.Buffer
	gz := gzip.NewWriter(&col)
	if err := fn(gz); err != nil {
		return nil, err
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}
	return col.Bytes(), nil
}

// verifyChunk checks a chunk's stored CRC32 against its bytes.
func verifyChunk(data []byte, chunkOff int64, compLen, want uint32) error {
	if chunkOff+int64(compLen) > int64(len(data)) {
		return fmt.Errorf("%w: truncated chunk", ErrCorrupt)
	}
	if got := crc32.ChecksumIEEE(data[chunkOff : chunkOff+int64(compLen)]); got != want {
		return fmt.Errorf("%w: crc %08x, want %08x", ErrCorrupt, got, want)
	}
	return nil
}

// inflateChunk decompresses one chunk's payload.
func inflateChunk(data []byte, chunkOff int64, compLen uint32) ([]byte, error) {
	if chunkOff+int64(compLen) > int64(len(data)) {
		return nil, fmt.Errorf("rcfile: truncated chunk")
	}
	gz, err := gzip.NewReader(bytes.NewReader(data[chunkOff : chunkOff+int64(compLen)]))
	if err != nil {
		return nil, err
	}
	return io.ReadAll(gz)
}

// Read decodes an RCFile produced by Write, given the schema: every
// column of every row group (the pre-pushdown Hive behaviour).
func Read(data []byte, schema relal.Schema, name string) (*relal.Table, error) {
	t, _, err := ReadCols(data, schema, name, nil, nil)
	return t, err
}

// strPart is one row group's decoded slice of a Str column: global
// codes (flat, or run-encoded when ends is set) or raw strings.
type strPart struct {
	codes []uint32
	ends  []int32 // chunk-local exclusive run ends; nil = one code per row
	raw   []string
}

// ReadCols decodes the requested columns (nil = all, otherwise the
// result schema is the requested names in order), skipping row groups
// whose zone maps cannot satisfy pred. Only surviving groups'
// requested chunks are decompressed; everything else is skipped with
// pointer arithmetic and accounted in the stats as compressed bytes.
// Columns whose surviving chunks are all run-length encoded come back
// as relal run vectors — the engine's run-aware kernels consume them
// without expansion — and global-code chunks reassemble against the
// file dictionary with no merging.
func ReadCols(data []byte, schema relal.Schema, name string, cols []string, pred relal.ZonePredicate) (*relal.Table, relal.ScanStats, error) {
	p, err := parse(data, schema)
	if err != nil {
		return nil, relal.ScanStats{}, err
	}
	return readColsCached(data, p, schema, name, cols, pred, nil, 0)
}

// readColsCached is the parse-once read path, with an optional shared
// chunk cache: when cache is non-nil, each surviving chunk is looked up
// under (file, group, column) before inflating, and fresh decodes are
// inserted. Hits keep counting toward BytesRead (the scan logically
// decoded those bytes — the skipped fraction the cost models replay is
// cache-invariant) and additionally toward BytesFromCache/CacheHits.
func readColsCached(data []byte, p *parsed, schema relal.Schema, name string, cols []string, pred relal.ZonePredicate, cache *ChunkCache, file uint64) (*relal.Table, relal.ScanStats, error) {
	var stats relal.ScanStats
	// Resolve the projection: out column i reads file column colIdx[i].
	var colIdx []int
	outSchema := schema
	if len(cols) > 0 {
		outSchema = make(relal.Schema, len(cols))
		colIdx = make([]int, len(cols))
		for i, cname := range cols {
			found := -1
			for ci, c := range schema {
				if c.Name == cname {
					found = ci
					break
				}
			}
			if found < 0 {
				return nil, stats, fmt.Errorf("rcfile: no column %q in schema", cname)
			}
			colIdx[i] = found
			outSchema[i] = schema[found]
		}
	} else {
		colIdx = make([]int, len(schema))
		for i := range schema {
			colIdx[i] = i
		}
	}
	wanted := make([]bool, len(schema))
	for _, ci := range colIdx {
		wanted[ci] = true
	}

	t := relal.NewTable(name, outSchema)
	// Every column accumulates its surviving groups' decoded chunks and
	// assembles once at the end, so a column whose chunks are all runs
	// becomes a single run vector.
	parts := make([][]chunkData, len(colIdx))
	for g, gr := range p.groups {
		keep := pred.MayMatch(func(col string) (relal.ZoneMap, bool) {
			for ci, c := range schema {
				if c.Name == col {
					return gr.zones[ci], true
				}
			}
			return relal.ZoneMap{}, false
		})
		if !keep {
			stats.GroupsSkipped++
			for _, cl := range gr.compLens {
				stats.BytesSkipped += int64(cl)
			}
			continue
		}
		stats.GroupsRead++
		for ci, cl := range gr.compLens {
			if wanted[ci] {
				stats.BytesRead += int64(cl)
			} else {
				stats.BytesSkipped += int64(cl)
			}
		}
		for out, ci := range colIdx {
			var cd chunkData
			hit := false
			key := chunkKey{file: file, group: g, col: ci}
			if cache != nil {
				cd, hit = cache.get(key)
			}
			if hit {
				stats.BytesFromCache += int64(gr.compLens[ci])
				stats.CacheHits++
			} else {
				if cache != nil {
					stats.CacheMisses++
				}
				off := gr.offset
				for k := 0; k < ci; k++ {
					off += int64(gr.compLens[k])
				}
				// Verify the chunk's CRC before trusting its bytes. Cache
				// hits skip this: the entry was verified when first
				// decoded, and cache keys are content-hashed, so corrupt
				// bytes can never ride in on a stale hit.
				if err := verifyChunk(data, off, gr.compLens[ci], gr.crcs[ci]); err != nil {
					stats.CorruptChunks++
					return nil, stats, fmt.Errorf("%s group %d column %q: %w", name, g, schema[ci].Name, err)
				}
				raw, err := inflateChunk(data, off, gr.compLens[ci])
				if err != nil {
					return nil, stats, err
				}
				if cd, err = decodeChunk(raw, schema[ci].Type, gr.encs[ci], gr.rows, p.dicts[ci]); err != nil {
					return nil, stats, err
				}
				if cache != nil {
					cache.put(key, cd)
				}
			}
			parts[out] = append(parts[out], cd)
		}
	}
	for out, ci := range colIdx {
		if len(parts[out]) > 0 {
			t.Cols[out] = assembleCol(schema[ci].Type, parts[out], p.dicts[ci])
		}
	}
	return t, stats, nil
}

// decodeChunk inflates one chunk payload into its standalone decoded
// form — fresh slices, not appends onto a caller vector — so the result
// is safe to share through the chunk cache. Run-length chunks stay run
// lists; global-code chunks stay codes (the dictionary lives in the
// parsed footer, not the cache entry).
func decodeChunk(raw []byte, kind relal.Type, enc byte, rows int, dict []string) (chunkData, error) {
	switch enc {
	case encPlain:
		if kind == relal.Str {
			v := relal.NewVector(relal.Str, rows)
			if err := readPlainChunk(raw, v, rows); err != nil {
				return chunkData{}, err
			}
			return chunkData{str: strPart{raw: v.Strs}}, nil
		}
		v := relal.NewVector(kind, rows)
		if err := readPlainChunk(raw, v, rows); err != nil {
			return chunkData{}, err
		}
		return chunkData{ints: v.Ints, floats: v.Floats}, nil
	case encGDict:
		codes, err := readGDictChunk(raw, rows, len(dict))
		if err != nil {
			return chunkData{}, err
		}
		return chunkData{str: strPart{codes: codes}}, nil
	case encGDictRLE:
		codes, ends, err := readGDictRLEChunk(raw, rows, len(dict))
		if err != nil {
			return chunkData{}, err
		}
		return chunkData{str: strPart{codes: codes, ends: ends}}, nil
	case encRLE:
		return readRLEChunk(raw, kind, rows)
	case encDelta:
		ints, err := readDeltaChunk(raw, rows)
		if err != nil {
			return chunkData{}, err
		}
		return chunkData{ints: ints}, nil
	}
	return chunkData{}, fmt.Errorf("rcfile: unknown chunk encoding %d", enc)
}

// getPacked reads a width-byte little-endian value (width 0 reads 0).
func getPacked(raw []byte, pos, width int) uint64 {
	var buf [8]byte
	copy(buf[:], raw[pos:pos+width])
	return binary.LittleEndian.Uint64(buf[:])
}

// readGDictChunk decodes FOR-packed global codes.
func readGDictChunk(raw []byte, rows, dictLen int) ([]uint32, error) {
	if len(raw) < 5 {
		return nil, fmt.Errorf("rcfile: truncated gdict chunk")
	}
	width := int(raw[0])
	if width != 0 && width != 1 && width != 2 && width != 4 {
		return nil, fmt.Errorf("rcfile: bad code width %d", width)
	}
	base := binary.LittleEndian.Uint32(raw[1:])
	pos := 5
	if pos+rows*width > len(raw) {
		return nil, fmt.Errorf("rcfile: truncated codes")
	}
	codes := make([]uint32, rows)
	for i := range codes {
		c := base + uint32(getPacked(raw, pos, width))
		if int(c) >= dictLen {
			return nil, fmt.Errorf("rcfile: code %d out of dictionary range %d", c, dictLen)
		}
		codes[i] = c
		pos += width
	}
	return codes, nil
}

// readGDictRLEChunk decodes run-length encoded global codes into a
// chunk-local run list.
func readGDictRLEChunk(raw []byte, rows, dictLen int) ([]uint32, []int32, error) {
	if len(raw) < 9 {
		return nil, nil, fmt.Errorf("rcfile: truncated gdict+rle chunk")
	}
	width := int(raw[0])
	if width != 0 && width != 1 && width != 2 && width != 4 {
		return nil, nil, fmt.Errorf("rcfile: bad code width %d", width)
	}
	base := binary.LittleEndian.Uint32(raw[1:])
	runs := int(binary.LittleEndian.Uint32(raw[5:]))
	if runs < 0 || runs > rows {
		return nil, nil, fmt.Errorf("rcfile: implausible run count %d for %d rows", runs, rows)
	}
	pos := 9
	codes := make([]uint32, runs)
	ends := make([]int32, runs)
	total := 0
	for k := 0; k < runs; k++ {
		if pos+width+4 > len(raw) {
			return nil, nil, fmt.Errorf("rcfile: truncated run")
		}
		c := base + uint32(getPacked(raw, pos, width))
		if int(c) >= dictLen {
			return nil, nil, fmt.Errorf("rcfile: code %d out of dictionary range %d", c, dictLen)
		}
		pos += width
		rl := int(binary.LittleEndian.Uint32(raw[pos:]))
		pos += 4
		if rl <= 0 || total+rl > rows {
			return nil, nil, fmt.Errorf("rcfile: bad run length %d", rl)
		}
		codes[k] = c
		total += rl
		ends[k] = int32(total)
	}
	if total != rows {
		return nil, nil, fmt.Errorf("rcfile: runs cover %d of %d rows", total, rows)
	}
	return codes, ends, nil
}

// readRLEChunk decodes a numeric run-length chunk into a run list.
func readRLEChunk(raw []byte, kind relal.Type, rows int) (chunkData, error) {
	if len(raw) < 4 {
		return chunkData{}, fmt.Errorf("rcfile: truncated rle chunk")
	}
	runs := int(binary.LittleEndian.Uint32(raw[:4]))
	if runs < 0 || runs > rows {
		return chunkData{}, fmt.Errorf("rcfile: implausible run count %d for %d rows", runs, rows)
	}
	if len(raw) < 4+12*runs {
		return chunkData{}, fmt.Errorf("rcfile: truncated runs")
	}
	cd := chunkData{ends: make([]int32, runs)}
	if kind == relal.Int {
		cd.ints = make([]int64, runs)
	} else {
		cd.floats = make([]float64, runs)
	}
	pos := 4
	total := 0
	for k := 0; k < runs; k++ {
		bits := binary.LittleEndian.Uint64(raw[pos:])
		rl := int(binary.LittleEndian.Uint32(raw[pos+8:]))
		pos += 12
		if rl <= 0 || total+rl > rows {
			return chunkData{}, fmt.Errorf("rcfile: bad run length %d", rl)
		}
		if kind == relal.Int {
			cd.ints[k] = int64(bits)
		} else {
			cd.floats[k] = math.Float64frombits(bits)
		}
		total += rl
		cd.ends[k] = int32(total)
	}
	if total != rows {
		return chunkData{}, fmt.Errorf("rcfile: runs cover %d of %d rows", total, rows)
	}
	return cd, nil
}

// readDeltaChunk decodes FOR-packed ints.
func readDeltaChunk(raw []byte, rows int) ([]int64, error) {
	if len(raw) < 9 {
		return nil, fmt.Errorf("rcfile: truncated delta chunk")
	}
	width := int(raw[0])
	if width != 0 && width != 1 && width != 2 && width != 4 {
		return nil, fmt.Errorf("rcfile: bad delta width %d", width)
	}
	base := uint64(binary.LittleEndian.Uint64(raw[1:]))
	pos := 9
	if pos+rows*width > len(raw) {
		return nil, fmt.Errorf("rcfile: truncated deltas")
	}
	out := make([]int64, rows)
	for i := range out {
		out[i] = int64(base + getPacked(raw, pos, width))
		pos += width
	}
	return out, nil
}

// rowsOf returns the row count a decoded chunk covers.
func (d chunkData) rowsOf(kind relal.Type) int {
	if kind == relal.Str {
		if d.str.raw != nil {
			return len(d.str.raw)
		}
		if d.str.ends != nil {
			return int(d.str.ends[len(d.str.ends)-1])
		}
		return len(d.str.codes)
	}
	if d.ends != nil {
		if len(d.ends) == 0 {
			return 0
		}
		return int(d.ends[len(d.ends)-1])
	}
	return len(d.ints) + len(d.floats)
}

// assembleCol merges one column's decoded chunks, in group order, into
// a single vector. All-run chunks concatenate into one run vector with
// shifted ends (adjacent groups ending and starting on the same value
// keep their two runs — ends stay strictly increasing); a mix of run
// and flat chunks expands to a flat vector; global-code chunks become a
// dict vector over the file dictionary.
func assembleCol(kind relal.Type, parts []chunkData, dict []string) *relal.Vector {
	if kind == relal.Str {
		sps := make([]strPart, len(parts))
		for i, p := range parts {
			sps[i] = p.str
		}
		return assembleStrCol(sps, dict)
	}
	total, runsTotal := 0, 0
	allRuns := true
	for _, p := range parts {
		total += p.rowsOf(kind)
		if p.ends == nil {
			allRuns = false
		} else {
			runsTotal += len(p.ends)
		}
	}
	if allRuns {
		ends := make([]int32, 0, runsTotal)
		base := int32(0)
		if kind == relal.Int {
			vals := make([]int64, 0, runsTotal)
			for _, p := range parts {
				vals = append(vals, p.ints...)
				for _, e := range p.ends {
					ends = append(ends, base+e)
				}
				base = ends[len(ends)-1]
			}
			return relal.IntRunsV(vals, ends)
		}
		vals := make([]float64, 0, runsTotal)
		for _, p := range parts {
			vals = append(vals, p.floats...)
			for _, e := range p.ends {
				ends = append(ends, base+e)
			}
			base = ends[len(ends)-1]
		}
		return relal.FloatRunsV(vals, ends)
	}
	if kind == relal.Int {
		out := make([]int64, 0, total)
		for _, p := range parts {
			if p.ends == nil {
				out = append(out, p.ints...)
				continue
			}
			prev := int32(0)
			for k, e := range p.ends {
				for ; prev < e; prev++ {
					out = append(out, p.ints[k])
				}
			}
		}
		return relal.IntsV(out)
	}
	out := make([]float64, 0, total)
	for _, p := range parts {
		if p.ends == nil {
			out = append(out, p.floats...)
			continue
		}
		prev := int32(0)
		for k, e := range p.ends {
			for ; prev < e; prev++ {
				out = append(out, p.floats[k])
			}
		}
	}
	return relal.FloatsV(out)
}

// assembleStrCol merges a Str column's decoded chunks. All code-based
// chunks share the file-global dictionary, so codes concatenate with no
// union merge: all-RLE chunks become a dict run vector, mixed RLE/flat
// expand to flat codes, and any raw chunk degrades the whole column to
// raw strings in group order.
func assembleStrCol(parts []strPart, dict []string) *relal.Vector {
	anyRaw, allRLE := false, true
	total, runsTotal := 0, 0
	for _, p := range parts {
		if p.raw != nil {
			anyRaw = true
			total += len(p.raw)
			continue
		}
		if p.ends == nil {
			allRLE = false
			total += len(p.codes)
		} else {
			runsTotal += len(p.ends)
			total += int(p.ends[len(p.ends)-1])
		}
	}
	if anyRaw {
		out := make([]string, 0, total)
		for _, p := range parts {
			switch {
			case p.raw != nil:
				out = append(out, p.raw...)
			case p.ends == nil:
				for _, c := range p.codes {
					out = append(out, dict[c])
				}
			default:
				prev := int32(0)
				for k, e := range p.ends {
					for ; prev < e; prev++ {
						out = append(out, dict[p.codes[k]])
					}
				}
			}
		}
		return relal.StrsV(out)
	}
	if allRLE && runsTotal > 0 {
		codes := make([]uint32, 0, runsTotal)
		ends := make([]int32, 0, runsTotal)
		base := int32(0)
		for _, p := range parts {
			codes = append(codes, p.codes...)
			for _, e := range p.ends {
				ends = append(ends, base+e)
			}
			base = ends[len(ends)-1]
		}
		return relal.DictRunsV(codes, ends, dict)
	}
	codes := make([]uint32, 0, total)
	for _, p := range parts {
		if p.ends == nil {
			codes = append(codes, p.codes...)
			continue
		}
		prev := int32(0)
		for k, e := range p.ends {
			for ; prev < e; prev++ {
				codes = append(codes, p.codes[k])
			}
		}
	}
	return relal.DictV(codes, dict)
}

// ZoneMaps returns the footer's zone maps, per group per column (test
// and tooling introspection).
func ZoneMaps(data []byte, schema relal.Schema) ([][]relal.ZoneMap, error) {
	p, err := parse(data, schema)
	if err != nil {
		return nil, err
	}
	out := make([][]relal.ZoneMap, len(p.groups))
	for g, gr := range p.groups {
		out[g] = gr.zones
	}
	return out, nil
}

// ColEncStats is one column's per-encoding chunk census: how many
// chunks the adaptive writer settled on each encoding, and their
// compressed bytes. Indexed by enc byte (see EncNames).
type ColEncStats struct {
	Chunks    [numEncs]int
	CompBytes [numEncs]int64
}

// EncodingStats reads the footer's per-chunk encoding census, one entry
// per column (cmd/scanstats' histogram; no chunk is decompressed).
func EncodingStats(data []byte, schema relal.Schema) ([]ColEncStats, error) {
	p, err := parse(data, schema)
	if err != nil {
		return nil, err
	}
	out := make([]ColEncStats, len(schema))
	for _, gr := range p.groups {
		for c := range schema {
			out[c].Chunks[gr.encs[c]]++
			out[c].CompBytes[gr.encs[c]] += int64(gr.compLens[c])
		}
	}
	return out, nil
}

// readPlainChunk decodes one plain column chunk of the given row count,
// appending onto the typed vector.
func readPlainChunk(raw []byte, v *relal.Vector, rows int) error {
	pos := 0
	switch v.Kind {
	case relal.Int:
		if len(raw) < 8*rows {
			return fmt.Errorf("rcfile: truncated int column")
		}
		for i := 0; i < rows; i++ {
			v.Ints = append(v.Ints, int64(binary.LittleEndian.Uint64(raw[pos:])))
			pos += 8
		}
	case relal.Float:
		if len(raw) < 8*rows {
			return fmt.Errorf("rcfile: truncated float column")
		}
		for i := 0; i < rows; i++ {
			v.Floats = append(v.Floats, math.Float64frombits(binary.LittleEndian.Uint64(raw[pos:])))
			pos += 8
		}
	case relal.Str:
		for i := 0; i < rows; i++ {
			if pos+4 > len(raw) {
				return fmt.Errorf("rcfile: truncated string column")
			}
			n := int(binary.LittleEndian.Uint32(raw[pos:]))
			pos += 4
			if pos+n > len(raw) {
				return fmt.Errorf("rcfile: truncated string cell")
			}
			v.Strs = append(v.Strs, string(raw[pos:pos+n]))
			pos += n
		}
	default:
		return fmt.Errorf("rcfile: unknown type %d", v.Kind)
	}
	return nil
}

// Source serves a table from its RCFile encoding through the relal scan
// operator: ReadCols does the column selection and zone-map pruning, so
// scans really decompress only what the query asked for. Decode errors
// panic — a Source wraps bytes this process just encoded, so corruption
// is a programming bug, not an I/O condition.
//
// A Source is safe for concurrent scans: the encoded bytes and the
// parsed footer (decoded once, at construction) are read-only, and the
// cumulative byte accounting goes through an atomic counter, so query
// streams can share one Source per table. Attaching a shared ChunkCache
// (SetCache, before serving scans) makes repeated reads of hot chunks
// skip the gzip inflation entirely.
type Source struct {
	name    string
	schema  relal.Schema
	data    []byte
	parsed  *parsed
	id      uint64 // content hash of data; the chunk cache's file key
	cache   *ChunkCache
	counter relal.ScanCounter
}

// NewSource encodes t with the given row-group size (0 = default).
func NewSource(t *relal.Table, groupRows int) (*Source, error) {
	return NewSourceOpts(t, groupRows, WriterOpts{})
}

// NewSourceOpts encodes t with explicit encoding toggles.
func NewSourceOpts(t *relal.Table, groupRows int, opts WriterOpts) (*Source, error) {
	data, err := NewWriterOpts(groupRows, opts).Write(t)
	if err != nil {
		return nil, err
	}
	p, err := parse(data, t.Schema)
	if err != nil {
		return nil, err
	}
	return &Source{name: t.Name, schema: t.Schema, data: data, parsed: p, id: fileID(data)}, nil
}

// NewSourceFromBytes wraps an already-encoded RCFile — the durable-store
// recovery path, where the bytes come off disk rather than out of this
// process's writer. The footer (magic, structure, dictionary CRCs) is
// validated here; chunk CRCs are verified lazily on first decode, so a
// flipped bit inside a chunk surfaces as ErrCorrupt from TryScan.
func NewSourceFromBytes(data []byte, schema relal.Schema, name string) (*Source, error) {
	p, err := parse(data, schema)
	if err != nil {
		return nil, err
	}
	return &Source{name: name, schema: schema, data: data, parsed: p, id: fileID(data)}, nil
}

// SetCache attaches a shared decompressed-chunk cache. Call before the
// Source starts serving scans; concurrent scans then share the cache
// safely (the cache locks internally, the field itself is not mutated
// again).
func (s *Source) SetCache(c *ChunkCache) { s.cache = c }

// FileID returns the content-derived file identity chunk-cache keys and
// per-file accounting dedupe on: two Sources over byte-identical files
// report the same ID.
func (s *Source) FileID() uint64 { return s.id }

// SrcName returns the table name.
func (s *Source) SrcName() string { return s.name }

// SrcSchema returns the table schema.
func (s *Source) SrcSchema() relal.Schema { return s.schema }

// Bytes returns the encoded file size.
func (s *Source) Bytes() int { return len(s.data) }

// Data returns the encoded file bytes (read-only — shared, not copied).
// The durable store persists exactly these bytes as a part file.
func (s *Source) Data() []byte { return s.data }

// EncodingStats returns the per-column encoding census of the encoded
// file (footer only, no decompression).
func (s *Source) EncodingStats() []ColEncStats {
	out := make([]ColEncStats, len(s.schema))
	for _, gr := range s.parsed.groups {
		for c := range s.schema {
			out[c].Chunks[gr.encs[c]]++
			out[c].CompBytes[gr.encs[c]] += int64(gr.compLens[c])
		}
	}
	return out
}

// ScanTable implements relal.Source. It panics on decode errors — for a
// Source wrapping bytes this process just encoded, corruption is a
// programming bug. Sources over bytes read back from disk should scan
// through TryScan and handle ErrCorrupt.
func (s *Source) ScanTable(cols []string, pred relal.ZonePredicate) (*relal.Table, relal.ScanStats) {
	t, stats, err := s.TryScan(cols, pred)
	if err != nil {
		panic("rcfile: " + err.Error())
	}
	return t, stats
}

// TryScan is ScanTable with errors instead of panics: a chunk whose
// CRC32 does not match comes back as an error wrapping ErrCorrupt
// (with stats.CorruptChunks set), letting a caller that holds redundant
// data — the htap store, whose delta log covers every converted part —
// degrade and rebuild instead of crashing or returning wrong rows.
func (s *Source) TryScan(cols []string, pred relal.ZonePredicate) (*relal.Table, relal.ScanStats, error) {
	t, stats, err := readColsCached(s.data, s.parsed, s.schema, s.name, cols, pred, s.cache, s.id)
	s.counter.Observe(stats)
	if err != nil {
		return nil, stats, err
	}
	return t, stats, nil
}

// TotalStats returns the byte accounting accumulated over every scan
// this source has served, from any goroutine. Two streams hammering one
// Source sum exactly: the accumulation is atomic, not a plain struct
// add.
func (s *Source) TotalStats() relal.ScanStats { return s.counter.Total() }

// CompressionRatio encodes t and returns compressed/uncompressed size.
// TPC-H text compresses heavily under columnar gzip; the Hive cost model
// multiplies text sizes by this ratio to get on-disk bucket sizes.
func CompressionRatio(t *relal.Table) (float64, error) {
	if t.NumRows() == 0 {
		return 1, nil
	}
	w := NewWriter(0)
	data, err := w.Write(t)
	if err != nil {
		return 0, err
	}
	raw := t.AvgRowBytes() * t.NumRows()
	if raw == 0 {
		return 1, nil
	}
	return float64(len(data)) / float64(raw), nil
}
