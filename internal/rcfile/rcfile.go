// Package rcfile implements the RCFile columnar storage format the
// paper's Hive tables used: rows are grouped into row groups, each row
// group stores its columns contiguously, and every column chunk is
// compressed (GZIP in the paper's configuration).
//
// The format is functional — tables really round-trip through it — and
// it reports measured compression ratios, which the Hive cost model uses
// to size on-disk buckets at the paper's scale factors. The paper's key
// observation ("the RCFile format is not a very efficient storage
// layout... map tasks were CPU-bound at ~70 MB/s") appears in the cost
// model as a per-byte decompression CPU charge.
//
// Version 2 added a per-chunk min/max zone map in the file footer.
// ReadCols uses the footer to decompress only the requested columns, and
// only in row groups whose zone maps can satisfy a pushed predicate —
// the pruning the paper's Hive never did. Every read reports
// ScanStats{BytesRead, BytesSkipped, GroupsSkipped} so the cost models
// can charge (or discount) the decompression CPU per skipped byte.
//
// Version 3 adds dictionary-encoded string chunks. A dict-encoded relal
// vector writes, per row group, the group-local sorted dictionary once
// followed by the rows as packed codes (1, 2, or 4 bytes each, sized to
// the local dictionary) — the classic column-store trick the paper's
// Hive-vs-PDW gap turns on, since RCFile otherwise stores and
// re-decompresses every duplicate string. The writer is adaptive per
// chunk: it compresses both encodings and keeps the smaller, so a
// chunk whose local cardinality approaches its row count (a date column
// in a small row group) falls back to plain strings instead of paying
// for a dictionary nobody shares. The chunk's footer zone map carries
// the min/max codes alongside the min/max values, so pruning still
// compares strings and never needs the chunk's dictionary. ReadCols
// reassembles dict chunks into a dict-encoded vector — codes plus a
// merged dictionary — without ever materializing a []string of row
// values.
//
// Since relal tables are themselves columnar, encoding and decoding
// move cells straight between the typed column vectors and the on-disk
// chunks — no row pivot, no boxed values.
package rcfile

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"elephants/internal/relal"
)

// DefaultRowGroupRows is the row-group size in rows (RCFile defaults to
// 4 MB groups; for the 100–150 byte TPC-H rows this is comparable). It
// matches relal.DefaultScanGroupRows so in-memory scan modeling agrees
// with the on-disk layout.
const DefaultRowGroupRows = relal.DefaultScanGroupRows

// Chunk encodings (the footer's per-chunk enc byte).
const (
	encPlain = byte(0) // length-prefixed strings / fixed 8-byte numerics
	encDict  = byte(1) // group-local dictionary + packed codes (Str only)
)

// Writer serializes a table into RCFile bytes.
type Writer struct {
	groupRows int
}

// NewWriter returns a writer with the given row-group size (0 = default).
func NewWriter(groupRows int) *Writer {
	if groupRows <= 0 {
		groupRows = DefaultRowGroupRows
	}
	return &Writer{groupRows: groupRows}
}

// file layout (version 3):
//
//	magic "RCF3"
//	uint32 numColumns
//	uint32 numGroups
//	per group: the compressed column chunks, concatenated (chunk
//	  lengths live in the footer, so a reader can skip any chunk — or a
//	  whole group — with pointer arithmetic instead of decompression)
//	footer, per group:
//	  uint32 rows
//	  per column:
//	    uint32 compLen
//	    uint8  enc (0 plain, 1 dict)
//	    zone map (typed min/max; dict chunks prepend min/max codes)
//	uint32 footerLen (bytes, immediately before this trailer field)
//
// Plain column cells are encoded as length-prefixed strings for Str
// columns and 8-byte fixed values otherwise. A dict chunk stores the
// group-local sorted dictionary (uint32 count, then length-prefixed
// values) followed by one code-width byte and the rows as packed codes.
// Every chunk is gzip-compressed.

var magic = []byte("RCF3")

// Write encodes t.
func (w *Writer) Write(t *relal.Table) ([]byte, error) {
	d := t.Compacted() // dense vectors; no-op unless t is a view
	var out bytes.Buffer
	out.Write(magic)
	binary.Write(&out, binary.LittleEndian, uint32(len(d.Schema)))
	n := d.NumRows()
	numGroups := (n + w.groupRows - 1) / w.groupRows
	binary.Write(&out, binary.LittleEndian, uint32(numGroups))
	var footer bytes.Buffer
	for g := 0; g < numGroups; g++ {
		lo := g * w.groupRows
		hi := lo + w.groupRows
		if hi > n {
			hi = n
		}
		binary.Write(&footer, binary.LittleEndian, uint32(hi-lo))
		for c := range d.Schema {
			v := d.Cols[c]
			enc := encPlain
			chunk, err := gzipChunk(func(w io.Writer) error { return writeChunk(w, v, lo, hi) })
			if err != nil {
				return nil, err
			}
			if v.IsDict() {
				// Adaptive: keep the dictionary encoding only where it
				// compresses smaller than the plain strings (ties go to
				// plain — same bytes, simpler decode).
				dictChunk, err := gzipChunk(func(w io.Writer) error { return writeDictChunk(w, v, lo, hi) })
				if err != nil {
					return nil, err
				}
				if len(dictChunk) < len(chunk) {
					enc, chunk = encDict, dictChunk
				}
			}
			out.Write(chunk)
			binary.Write(&footer, binary.LittleEndian, uint32(len(chunk)))
			footer.WriteByte(enc)
			writeZone(&footer, relal.ZoneOf(v, lo, hi), enc)
		}
	}
	out.Write(footer.Bytes())
	binary.Write(&out, binary.LittleEndian, uint32(footer.Len()))
	return out.Bytes(), nil
}

// writeZone appends one zone map in its typed encoding. Dict chunks
// prepend the min/max codes to the min/max values. The codes are in the
// writing vector's dictionary space — not the chunk's remapped local
// space, and not any space a reader reconstructs — so they are tooling
// introspection (and the seed for a future file-global dictionary
// section); pruning and decoding consume only the strings.
func writeZone(w *bytes.Buffer, z relal.ZoneMap, enc byte) {
	switch z.Kind {
	case relal.Int:
		binary.Write(w, binary.LittleEndian, z.IntMin)
		binary.Write(w, binary.LittleEndian, z.IntMax)
	case relal.Float:
		binary.Write(w, binary.LittleEndian, math.Float64bits(z.FloatMin))
		binary.Write(w, binary.LittleEndian, math.Float64bits(z.FloatMax))
	default:
		if enc == encDict {
			binary.Write(w, binary.LittleEndian, z.CodeMin)
			binary.Write(w, binary.LittleEndian, z.CodeMax)
		}
		for _, s := range []string{z.StrMin, z.StrMax} {
			binary.Write(w, binary.LittleEndian, uint32(len(s)))
			w.WriteString(s)
		}
	}
}

// writeChunk streams one plain column's cells in rows [lo, hi) straight
// from the typed vector.
func writeChunk(w io.Writer, v *relal.Vector, lo, hi int) error {
	var buf [8]byte
	switch v.Kind {
	case relal.Int:
		for _, x := range v.Ints[lo:hi] {
			binary.LittleEndian.PutUint64(buf[:], uint64(x))
			if _, err := w.Write(buf[:]); err != nil {
				return err
			}
		}
	case relal.Float:
		for _, f := range v.Floats[lo:hi] {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
			if _, err := w.Write(buf[:]); err != nil {
				return err
			}
		}
	case relal.Str:
		for p := lo; p < hi; p++ {
			s := v.StrAt(int32(p)) // decodes dict vectors on the way out
			binary.LittleEndian.PutUint32(buf[:4], uint32(len(s)))
			if _, err := w.Write(buf[:4]); err != nil {
				return err
			}
			if _, err := io.WriteString(w, s); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("rcfile: unknown type %d", v.Kind)
	}
	return nil
}

// writeDictChunk writes rows [lo, hi) of a dict-encoded vector: the
// values present in the group become its local sorted dictionary
// (stored once), and the rows follow as packed local codes. Restricting
// the dictionary to the group keeps sparse groups small and lets the
// code width shrink with the local cardinality.
func writeDictChunk(w io.Writer, v *relal.Vector, lo, hi int) error {
	present := make([]bool, len(v.DictVals))
	for _, c := range v.Dict[lo:hi] {
		present[c] = true
	}
	remap := make([]uint32, len(v.DictVals))
	local := []string{}
	for code, ok := range present {
		if ok {
			remap[code] = uint32(len(local))
			local = append(local, v.DictVals[code])
		}
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(len(local)))
	if _, err := w.Write(buf[:]); err != nil {
		return err
	}
	for _, s := range local {
		binary.LittleEndian.PutUint32(buf[:], uint32(len(s)))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, s); err != nil {
			return err
		}
	}
	width := relal.DictCodeWidth(len(local))
	if _, err := w.Write([]byte{byte(width)}); err != nil {
		return err
	}
	for _, c := range v.Dict[lo:hi] {
		lc := remap[c]
		switch width {
		case 1:
			buf[0] = byte(lc)
		case 2:
			binary.LittleEndian.PutUint16(buf[:2], uint16(lc))
		default:
			binary.LittleEndian.PutUint32(buf[:], lc)
		}
		if _, err := w.Write(buf[:width]); err != nil {
			return err
		}
	}
	return nil
}

// group is the decoded footer entry for one row group.
type group struct {
	rows     int
	offset   int64 // byte offset of the group's first chunk
	compLens []uint32
	encs     []byte
	zones    []relal.ZoneMap
}

// parsed is the decoded file structure (footer only — chunk bytes stay
// compressed until a read asks for them).
type parsed struct {
	groups []group
}

// parse validates the header against the schema and decodes the footer.
func parse(data []byte, schema relal.Schema) (*parsed, error) {
	if len(data) < len(magic)+12 || !bytes.Equal(data[:4], magic) {
		return nil, fmt.Errorf("rcfile: bad magic")
	}
	numCols := binary.LittleEndian.Uint32(data[4:])
	numGroups := binary.LittleEndian.Uint32(data[8:])
	if int(numCols) != len(schema) {
		return nil, fmt.Errorf("rcfile: file has %d columns, schema has %d", numCols, len(schema))
	}
	footerLen := binary.LittleEndian.Uint32(data[len(data)-4:])
	footerStart := len(data) - 4 - int(footerLen)
	if footerStart < 12 {
		return nil, fmt.Errorf("rcfile: truncated footer")
	}
	f := data[footerStart : len(data)-4]
	pos := 0
	need := func(n int) error {
		if pos+n > len(f) {
			return fmt.Errorf("rcfile: truncated footer")
		}
		return nil
	}
	readStr := func() (string, error) {
		if err := need(4); err != nil {
			return "", err
		}
		sl := int(binary.LittleEndian.Uint32(f[pos:]))
		pos += 4
		if err := need(sl); err != nil {
			return "", err
		}
		s := string(f[pos : pos+sl])
		pos += sl
		return s, nil
	}
	p := &parsed{}
	offset := int64(12)
	for g := uint32(0); g < numGroups; g++ {
		if err := need(4); err != nil {
			return nil, err
		}
		gr := group{
			rows:     int(binary.LittleEndian.Uint32(f[pos:])),
			offset:   offset,
			compLens: make([]uint32, numCols),
			encs:     make([]byte, numCols),
			zones:    make([]relal.ZoneMap, numCols),
		}
		pos += 4
		for c := uint32(0); c < numCols; c++ {
			if err := need(5); err != nil {
				return nil, err
			}
			gr.compLens[c] = binary.LittleEndian.Uint32(f[pos:])
			gr.encs[c] = f[pos+4]
			pos += 5
			if gr.encs[c] > encDict {
				return nil, fmt.Errorf("rcfile: unknown chunk encoding %d on column %q", gr.encs[c], schema[c].Name)
			}
			if gr.encs[c] == encDict && schema[c].Type != relal.Str {
				return nil, fmt.Errorf("rcfile: dict chunk on non-Str column %q", schema[c].Name)
			}
			z := relal.ZoneMap{Kind: schema[c].Type}
			switch schema[c].Type {
			case relal.Int:
				if err := need(16); err != nil {
					return nil, err
				}
				z.IntMin = int64(binary.LittleEndian.Uint64(f[pos:]))
				z.IntMax = int64(binary.LittleEndian.Uint64(f[pos+8:]))
				pos += 16
			case relal.Float:
				if err := need(16); err != nil {
					return nil, err
				}
				z.FloatMin = math.Float64frombits(binary.LittleEndian.Uint64(f[pos:]))
				z.FloatMax = math.Float64frombits(binary.LittleEndian.Uint64(f[pos+8:]))
				pos += 16
			default:
				if gr.encs[c] == encDict {
					if err := need(8); err != nil {
						return nil, err
					}
					z.CodeMin = binary.LittleEndian.Uint32(f[pos:])
					z.CodeMax = binary.LittleEndian.Uint32(f[pos+4:])
					z.HasCodes = true
					pos += 8
				}
				var err error
				if z.StrMin, err = readStr(); err != nil {
					return nil, err
				}
				if z.StrMax, err = readStr(); err != nil {
					return nil, err
				}
			}
			gr.zones[c] = z
			offset += int64(gr.compLens[c])
		}
		p.groups = append(p.groups, gr)
	}
	if int(offset) > footerStart {
		return nil, fmt.Errorf("rcfile: chunk data overruns footer")
	}
	return p, nil
}

// gzipChunk runs one chunk encoder through gzip and returns the
// compressed bytes.
func gzipChunk(fn func(w io.Writer) error) ([]byte, error) {
	var col bytes.Buffer
	gz := gzip.NewWriter(&col)
	if err := fn(gz); err != nil {
		return nil, err
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}
	return col.Bytes(), nil
}

// inflateChunk decompresses one chunk's payload.
func inflateChunk(data []byte, chunkOff int64, compLen uint32) ([]byte, error) {
	if chunkOff+int64(compLen) > int64(len(data)) {
		return nil, fmt.Errorf("rcfile: truncated chunk")
	}
	gz, err := gzip.NewReader(bytes.NewReader(data[chunkOff : chunkOff+int64(compLen)]))
	if err != nil {
		return nil, err
	}
	return io.ReadAll(gz)
}

// Read decodes an RCFile produced by Write, given the schema: every
// column of every row group (the pre-pushdown Hive behaviour).
func Read(data []byte, schema relal.Schema, name string) (*relal.Table, error) {
	t, _, err := ReadCols(data, schema, name, nil, nil)
	return t, err
}

// strPart is one row group's decoded slice of a Str column: either a
// dict part (group-local vals + codes) or a raw part.
type strPart struct {
	vals  []string
	codes []uint32
	raw   []string
}

// ReadCols decodes the requested columns (nil = all, otherwise the
// result schema is the requested names in order), skipping row groups
// whose zone maps cannot satisfy pred. Only surviving groups'
// requested chunks are decompressed; everything else is skipped with
// pointer arithmetic and accounted in the stats as compressed bytes.
// Dict-encoded Str columns come back as dict vectors — per-group
// dictionaries merge into one sorted dictionary and the codes remap —
// so a low-cardinality column never materializes per-row strings.
func ReadCols(data []byte, schema relal.Schema, name string, cols []string, pred relal.ZonePredicate) (*relal.Table, relal.ScanStats, error) {
	return readColsCached(data, schema, name, cols, pred, nil, 0)
}

// readColsCached is ReadCols with an optional shared chunk cache: when
// cache is non-nil, each surviving chunk is looked up under
// (file, group, column) before inflating, and fresh decodes are
// inserted. Hits keep counting toward BytesRead (the scan logically
// decoded those bytes — the skipped fraction the cost models replay is
// cache-invariant) and additionally toward BytesFromCache/CacheHits.
func readColsCached(data []byte, schema relal.Schema, name string, cols []string, pred relal.ZonePredicate, cache *ChunkCache, file uint64) (*relal.Table, relal.ScanStats, error) {
	var stats relal.ScanStats
	p, err := parse(data, schema)
	if err != nil {
		return nil, stats, err
	}
	// Resolve the projection: out column i reads file column colIdx[i].
	var colIdx []int
	outSchema := schema
	if len(cols) > 0 {
		outSchema = make(relal.Schema, len(cols))
		colIdx = make([]int, len(cols))
		for i, cname := range cols {
			found := -1
			for ci, c := range schema {
				if c.Name == cname {
					found = ci
					break
				}
			}
			if found < 0 {
				return nil, stats, fmt.Errorf("rcfile: no column %q in schema", cname)
			}
			colIdx[i] = found
			outSchema[i] = schema[found]
		}
	} else {
		colIdx = make([]int, len(schema))
		for i := range schema {
			colIdx[i] = i
		}
	}
	wanted := make([]bool, len(schema))
	for _, ci := range colIdx {
		wanted[ci] = true
	}

	t := relal.NewTable(name, outSchema)
	// Str columns accumulate per-group parts and finalize below, so a
	// run of dict chunks can merge into one dict vector.
	strParts := make([][]strPart, len(colIdx))
	for g, gr := range p.groups {
		keep := pred.MayMatch(func(col string) (relal.ZoneMap, bool) {
			for ci, c := range schema {
				if c.Name == col {
					return gr.zones[ci], true
				}
			}
			return relal.ZoneMap{}, false
		})
		if !keep {
			stats.GroupsSkipped++
			for _, cl := range gr.compLens {
				stats.BytesSkipped += int64(cl)
			}
			continue
		}
		stats.GroupsRead++
		for ci, cl := range gr.compLens {
			if wanted[ci] {
				stats.BytesRead += int64(cl)
			} else {
				stats.BytesSkipped += int64(cl)
			}
		}
		for out, ci := range colIdx {
			var cd chunkData
			hit := false
			key := chunkKey{file: file, group: g, col: ci}
			if cache != nil {
				cd, hit = cache.get(key)
			}
			if hit {
				stats.BytesFromCache += int64(gr.compLens[ci])
				stats.CacheHits++
			} else {
				if cache != nil {
					stats.CacheMisses++
				}
				off := gr.offset
				for k := 0; k < ci; k++ {
					off += int64(gr.compLens[k])
				}
				raw, err := inflateChunk(data, off, gr.compLens[ci])
				if err != nil {
					return nil, stats, err
				}
				if cd, err = decodeChunk(raw, schema[ci].Type, gr.encs[ci], gr.rows); err != nil {
					return nil, stats, err
				}
				if cache != nil {
					cache.put(key, cd)
				}
			}
			if schema[ci].Type == relal.Str {
				strParts[out] = append(strParts[out], cd.str)
				continue
			}
			appendChunk(t.Cols[out], cd)
		}
	}
	for out := range colIdx {
		if parts := strParts[out]; len(parts) > 0 {
			t.Cols[out] = assembleStrCol(parts)
		}
	}
	return t, stats, nil
}

// decodeChunk inflates one chunk payload into its standalone decoded
// form — a fresh slice, not an append onto a caller vector — so the
// result is safe to share through the chunk cache.
func decodeChunk(raw []byte, kind relal.Type, enc byte, rows int) (chunkData, error) {
	if kind == relal.Str {
		part, err := readStrChunk(raw, enc, rows)
		return chunkData{str: part}, err
	}
	v := relal.NewVector(kind, rows)
	if err := readChunk(raw, v, rows); err != nil {
		return chunkData{}, err
	}
	return chunkData{ints: v.Ints, floats: v.Floats}, nil
}

// appendChunk copies a decoded numeric chunk onto the output vector
// (cached chunks are shared across queries, so the output never aliases
// them).
func appendChunk(v *relal.Vector, cd chunkData) {
	switch v.Kind {
	case relal.Int:
		v.Ints = append(v.Ints, cd.ints...)
	case relal.Float:
		v.Floats = append(v.Floats, cd.floats...)
	}
}

// readStrChunk decodes one Str chunk under its encoding.
func readStrChunk(raw []byte, enc byte, rows int) (strPart, error) {
	if enc == encDict {
		vals, codes, err := readDictChunk(raw, rows)
		return strPart{vals: vals, codes: codes}, err
	}
	v := relal.NewVector(relal.Str, rows)
	if err := readChunk(raw, v, rows); err != nil {
		return strPart{}, err
	}
	return strPart{raw: v.Strs}, nil
}

// readDictChunk decodes a dict chunk payload into its group-local
// dictionary and codes.
func readDictChunk(raw []byte, rows int) ([]string, []uint32, error) {
	pos := 0
	if pos+4 > len(raw) {
		return nil, nil, fmt.Errorf("rcfile: truncated dict chunk")
	}
	dictLen := int(binary.LittleEndian.Uint32(raw[pos:]))
	pos += 4
	if dictLen < 0 || dictLen > len(raw) {
		return nil, nil, fmt.Errorf("rcfile: implausible dictionary size %d", dictLen)
	}
	vals := make([]string, 0, dictLen)
	for i := 0; i < dictLen; i++ {
		if pos+4 > len(raw) {
			return nil, nil, fmt.Errorf("rcfile: truncated dictionary")
		}
		n := int(binary.LittleEndian.Uint32(raw[pos:]))
		pos += 4
		if n < 0 || pos+n > len(raw) {
			return nil, nil, fmt.Errorf("rcfile: truncated dictionary value")
		}
		vals = append(vals, string(raw[pos:pos+n]))
		pos += n
	}
	if pos+1 > len(raw) {
		return nil, nil, fmt.Errorf("rcfile: missing code width")
	}
	width := int(raw[pos])
	pos++
	if width != 1 && width != 2 && width != 4 {
		return nil, nil, fmt.Errorf("rcfile: bad code width %d", width)
	}
	if pos+rows*width > len(raw) {
		return nil, nil, fmt.Errorf("rcfile: truncated codes")
	}
	codes := make([]uint32, rows)
	for i := 0; i < rows; i++ {
		switch width {
		case 1:
			codes[i] = uint32(raw[pos])
		case 2:
			codes[i] = uint32(binary.LittleEndian.Uint16(raw[pos:]))
		default:
			codes[i] = binary.LittleEndian.Uint32(raw[pos:])
		}
		pos += width
		if int(codes[i]) >= dictLen {
			return nil, nil, fmt.Errorf("rcfile: code %d out of dictionary range %d", codes[i], dictLen)
		}
	}
	return vals, codes, nil
}

// assembleStrCol merges a column's per-group parts into one vector.
// All-dict parts merge their group dictionaries (sorted union) and
// remap codes; a mix of dict and plain groups falls back to raw
// strings in group order.
func assembleStrCol(parts []strPart) *relal.Vector {
	allDict := true
	total := 0
	for _, p := range parts {
		if p.raw != nil {
			allDict = false
		}
		total += len(p.raw) + len(p.codes)
	}
	if !allDict {
		out := make([]string, 0, total)
		for _, p := range parts {
			if p.raw != nil {
				out = append(out, p.raw...)
				continue
			}
			for _, c := range p.codes {
				out = append(out, p.vals[c])
			}
		}
		return relal.StrsV(out)
	}
	// Fast path: every group saw the same dictionary (typical for the
	// 3–7 value TPC-H flags) — codes concatenate untouched.
	same := true
	for _, p := range parts[1:] {
		if !equalStrs(p.vals, parts[0].vals) {
			same = false
			break
		}
	}
	codes := make([]uint32, 0, total)
	if same {
		for _, p := range parts {
			codes = append(codes, p.codes...)
		}
		return relal.DictV(codes, parts[0].vals)
	}
	seen := make(map[string]uint32)
	union := []string{}
	for _, p := range parts {
		for _, v := range p.vals {
			if _, ok := seen[v]; !ok {
				seen[v] = 0
				union = append(union, v)
			}
		}
	}
	sort.Strings(union)
	for i, v := range union {
		seen[v] = uint32(i)
	}
	for _, p := range parts {
		remap := make([]uint32, len(p.vals))
		for lc, v := range p.vals {
			remap[lc] = seen[v]
		}
		for _, c := range p.codes {
			codes = append(codes, remap[c])
		}
	}
	return relal.DictV(codes, union)
}

func equalStrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ZoneMaps returns the footer's zone maps, per group per column (test
// and tooling introspection).
func ZoneMaps(data []byte, schema relal.Schema) ([][]relal.ZoneMap, error) {
	p, err := parse(data, schema)
	if err != nil {
		return nil, err
	}
	out := make([][]relal.ZoneMap, len(p.groups))
	for g, gr := range p.groups {
		out[g] = gr.zones
	}
	return out, nil
}

// readChunk decodes one plain column chunk of the given row count,
// appending onto the typed vector.
func readChunk(raw []byte, v *relal.Vector, rows int) error {
	pos := 0
	switch v.Kind {
	case relal.Int:
		if len(raw) < 8*rows {
			return fmt.Errorf("rcfile: truncated int column")
		}
		for i := 0; i < rows; i++ {
			v.Ints = append(v.Ints, int64(binary.LittleEndian.Uint64(raw[pos:])))
			pos += 8
		}
	case relal.Float:
		if len(raw) < 8*rows {
			return fmt.Errorf("rcfile: truncated float column")
		}
		for i := 0; i < rows; i++ {
			v.Floats = append(v.Floats, math.Float64frombits(binary.LittleEndian.Uint64(raw[pos:])))
			pos += 8
		}
	case relal.Str:
		for i := 0; i < rows; i++ {
			if pos+4 > len(raw) {
				return fmt.Errorf("rcfile: truncated string column")
			}
			n := int(binary.LittleEndian.Uint32(raw[pos:]))
			pos += 4
			if pos+n > len(raw) {
				return fmt.Errorf("rcfile: truncated string cell")
			}
			v.Strs = append(v.Strs, string(raw[pos:pos+n]))
			pos += n
		}
	default:
		return fmt.Errorf("rcfile: unknown type %d", v.Kind)
	}
	return nil
}

// Source serves a table from its RCFile encoding through the relal scan
// operator: ReadCols does the column selection and zone-map pruning, so
// scans really decompress only what the query asked for. Decode errors
// panic — a Source wraps bytes this process just encoded, so corruption
// is a programming bug, not an I/O condition.
//
// A Source is safe for concurrent scans: the encoded bytes are read-only
// and the cumulative byte accounting goes through an atomic counter, so
// query streams can share one Source per table. Attaching a shared
// ChunkCache (SetCache, before serving scans) makes repeated reads of
// hot chunks skip the gzip inflation entirely.
type Source struct {
	name    string
	schema  relal.Schema
	data    []byte
	id      uint64 // content hash of data; the chunk cache's file key
	cache   *ChunkCache
	counter relal.ScanCounter
}

// NewSource encodes t with the given row-group size (0 = default).
func NewSource(t *relal.Table, groupRows int) (*Source, error) {
	data, err := NewWriter(groupRows).Write(t)
	if err != nil {
		return nil, err
	}
	return &Source{name: t.Name, schema: t.Schema, data: data, id: fileID(data)}, nil
}

// SetCache attaches a shared decompressed-chunk cache. Call before the
// Source starts serving scans; concurrent scans then share the cache
// safely (the cache locks internally, the field itself is not mutated
// again).
func (s *Source) SetCache(c *ChunkCache) { s.cache = c }

// FileID returns the content-derived file identity chunk-cache keys and
// per-file accounting dedupe on: two Sources over byte-identical files
// report the same ID.
func (s *Source) FileID() uint64 { return s.id }

// SrcName returns the table name.
func (s *Source) SrcName() string { return s.name }

// SrcSchema returns the table schema.
func (s *Source) SrcSchema() relal.Schema { return s.schema }

// Bytes returns the encoded file size.
func (s *Source) Bytes() int { return len(s.data) }

// ScanTable implements relal.Source.
func (s *Source) ScanTable(cols []string, pred relal.ZonePredicate) (*relal.Table, relal.ScanStats) {
	t, stats, err := readColsCached(s.data, s.schema, s.name, cols, pred, s.cache, s.id)
	if err != nil {
		panic("rcfile: " + err.Error())
	}
	s.counter.Observe(stats)
	return t, stats
}

// TotalStats returns the byte accounting accumulated over every scan
// this source has served, from any goroutine. Two streams hammering one
// Source sum exactly: the accumulation is atomic, not a plain struct
// add.
func (s *Source) TotalStats() relal.ScanStats { return s.counter.Total() }

// CompressionRatio encodes t and returns compressed/uncompressed size.
// TPC-H text compresses heavily under columnar gzip; the Hive cost model
// multiplies text sizes by this ratio to get on-disk bucket sizes.
func CompressionRatio(t *relal.Table) (float64, error) {
	if t.NumRows() == 0 {
		return 1, nil
	}
	w := NewWriter(0)
	data, err := w.Write(t)
	if err != nil {
		return 0, err
	}
	raw := t.AvgRowBytes() * t.NumRows()
	if raw == 0 {
		return 1, nil
	}
	return float64(len(data)) / float64(raw), nil
}
