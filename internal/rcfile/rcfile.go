// Package rcfile implements the RCFile columnar storage format the
// paper's Hive tables used: rows are grouped into row groups, each row
// group stores its columns contiguously, and every column chunk is
// compressed (GZIP in the paper's configuration).
//
// The format is functional — tables really round-trip through it — and
// it reports measured compression ratios, which the Hive cost model uses
// to size on-disk buckets at the paper's scale factors. The paper's key
// observation ("the RCFile format is not a very efficient storage
// layout... map tasks were CPU-bound at ~70 MB/s") appears in the cost
// model as a per-byte decompression CPU charge.
package rcfile

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"elephants/internal/relal"
)

// DefaultRowGroupRows is the row-group size in rows (RCFile defaults to
// 4 MB groups; for the 100–150 byte TPC-H rows this is comparable).
const DefaultRowGroupRows = 16 * 1024

// Writer serializes a table into RCFile bytes.
type Writer struct {
	groupRows int
}

// NewWriter returns a writer with the given row-group size (0 = default).
func NewWriter(groupRows int) *Writer {
	if groupRows <= 0 {
		groupRows = DefaultRowGroupRows
	}
	return &Writer{groupRows: groupRows}
}

// file layout:
//   magic "RCF1"
//   uint32 numColumns
//   uint32 numGroups
//   per group: uint32 rows, per column: uint32 compLen, bytes
//
// Column cells are encoded as length-prefixed strings for Str columns
// and 8-byte fixed values otherwise.

var magic = []byte("RCF1")

// Write encodes t.
func (w *Writer) Write(t *relal.Table) ([]byte, error) {
	var out bytes.Buffer
	out.Write(magic)
	binary.Write(&out, binary.LittleEndian, uint32(len(t.Schema)))
	numGroups := (len(t.Rows) + w.groupRows - 1) / w.groupRows
	binary.Write(&out, binary.LittleEndian, uint32(numGroups))
	for g := 0; g < numGroups; g++ {
		lo := g * w.groupRows
		hi := lo + w.groupRows
		if hi > len(t.Rows) {
			hi = len(t.Rows)
		}
		binary.Write(&out, binary.LittleEndian, uint32(hi-lo))
		for c := range t.Schema {
			var col bytes.Buffer
			gz := gzip.NewWriter(&col)
			for _, r := range t.Rows[lo:hi] {
				if err := writeCell(gz, t.Schema[c].Type, r[c]); err != nil {
					return nil, err
				}
			}
			if err := gz.Close(); err != nil {
				return nil, err
			}
			binary.Write(&out, binary.LittleEndian, uint32(col.Len()))
			out.Write(col.Bytes())
		}
	}
	return out.Bytes(), nil
}

func writeCell(w io.Writer, typ relal.Type, v interface{}) error {
	switch typ {
	case relal.Str:
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("rcfile: expected string, got %T", v)
		}
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(s)))
		if _, err := w.Write(lenBuf[:]); err != nil {
			return err
		}
		_, err := io.WriteString(w, s)
		return err
	case relal.Int:
		i, ok := v.(int64)
		if !ok {
			return fmt.Errorf("rcfile: expected int64, got %T", v)
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(i))
		_, err := w.Write(buf[:])
		return err
	case relal.Float:
		f, ok := v.(float64)
		if !ok {
			return fmt.Errorf("rcfile: expected float64, got %T", v)
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		_, err := w.Write(buf[:])
		return err
	}
	return fmt.Errorf("rcfile: unknown type %d", typ)
}

// Read decodes an RCFile produced by Write, given the schema.
func Read(data []byte, schema relal.Schema, name string) (*relal.Table, error) {
	r := bytes.NewReader(data)
	m := make([]byte, 4)
	if _, err := io.ReadFull(r, m); err != nil || !bytes.Equal(m, magic) {
		return nil, fmt.Errorf("rcfile: bad magic")
	}
	var numCols, numGroups uint32
	if err := binary.Read(r, binary.LittleEndian, &numCols); err != nil {
		return nil, err
	}
	if int(numCols) != len(schema) {
		return nil, fmt.Errorf("rcfile: file has %d columns, schema has %d", numCols, len(schema))
	}
	if err := binary.Read(r, binary.LittleEndian, &numGroups); err != nil {
		return nil, err
	}
	t := &relal.Table{Name: name, Schema: schema}
	for g := uint32(0); g < numGroups; g++ {
		var rows uint32
		if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
			return nil, err
		}
		cols := make([][]interface{}, numCols)
		for c := uint32(0); c < numCols; c++ {
			var compLen uint32
			if err := binary.Read(r, binary.LittleEndian, &compLen); err != nil {
				return nil, err
			}
			comp := make([]byte, compLen)
			if _, err := io.ReadFull(r, comp); err != nil {
				return nil, err
			}
			gz, err := gzip.NewReader(bytes.NewReader(comp))
			if err != nil {
				return nil, err
			}
			raw, err := io.ReadAll(gz)
			if err != nil {
				return nil, err
			}
			cells, err := readCells(raw, schema[c].Type, int(rows))
			if err != nil {
				return nil, err
			}
			cols[c] = cells
		}
		for i := uint32(0); i < rows; i++ {
			row := make(relal.Row, numCols)
			for c := range cols {
				row[c] = cols[c][i]
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

func readCells(raw []byte, typ relal.Type, rows int) ([]interface{}, error) {
	out := make([]interface{}, 0, rows)
	pos := 0
	for i := 0; i < rows; i++ {
		switch typ {
		case relal.Str:
			if pos+4 > len(raw) {
				return nil, fmt.Errorf("rcfile: truncated string column")
			}
			n := int(binary.LittleEndian.Uint32(raw[pos:]))
			pos += 4
			if pos+n > len(raw) {
				return nil, fmt.Errorf("rcfile: truncated string cell")
			}
			out = append(out, string(raw[pos:pos+n]))
			pos += n
		case relal.Int:
			if pos+8 > len(raw) {
				return nil, fmt.Errorf("rcfile: truncated int column")
			}
			out = append(out, int64(binary.LittleEndian.Uint64(raw[pos:])))
			pos += 8
		case relal.Float:
			if pos+8 > len(raw) {
				return nil, fmt.Errorf("rcfile: truncated float column")
			}
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(raw[pos:])))
			pos += 8
		}
	}
	return out, nil
}

// CompressionRatio encodes t and returns compressed/uncompressed size.
// TPC-H text compresses heavily under columnar gzip; the Hive cost model
// multiplies text sizes by this ratio to get on-disk bucket sizes.
func CompressionRatio(t *relal.Table) (float64, error) {
	if t.NumRows() == 0 {
		return 1, nil
	}
	w := NewWriter(0)
	data, err := w.Write(t)
	if err != nil {
		return 0, err
	}
	raw := t.AvgRowBytes() * t.NumRows()
	if raw == 0 {
		return 1, nil
	}
	return float64(len(data)) / float64(raw), nil
}
