// Package rcfile implements the RCFile columnar storage format the
// paper's Hive tables used: rows are grouped into row groups, each row
// group stores its columns contiguously, and every column chunk is
// compressed (GZIP in the paper's configuration).
//
// The format is functional — tables really round-trip through it — and
// it reports measured compression ratios, which the Hive cost model uses
// to size on-disk buckets at the paper's scale factors. The paper's key
// observation ("the RCFile format is not a very efficient storage
// layout... map tasks were CPU-bound at ~70 MB/s") appears in the cost
// model as a per-byte decompression CPU charge.
//
// Version 2 of the format records a per-chunk min/max zone map in the
// file footer. ReadCols uses the footer to decompress only the requested
// columns, and only in row groups whose zone maps can satisfy a pushed
// predicate — the pruning the paper's Hive never did. Every read reports
// ScanStats{BytesRead, BytesSkipped, GroupsSkipped} so the cost models
// can charge (or discount) the decompression CPU per skipped byte.
//
// Since relal tables are themselves columnar, encoding and decoding
// move cells straight between the typed column vectors and the on-disk
// chunks — no row pivot, no boxed values.
package rcfile

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"elephants/internal/relal"
)

// DefaultRowGroupRows is the row-group size in rows (RCFile defaults to
// 4 MB groups; for the 100–150 byte TPC-H rows this is comparable). It
// matches relal.DefaultScanGroupRows so in-memory scan modeling agrees
// with the on-disk layout.
const DefaultRowGroupRows = relal.DefaultScanGroupRows

// Writer serializes a table into RCFile bytes.
type Writer struct {
	groupRows int
}

// NewWriter returns a writer with the given row-group size (0 = default).
func NewWriter(groupRows int) *Writer {
	if groupRows <= 0 {
		groupRows = DefaultRowGroupRows
	}
	return &Writer{groupRows: groupRows}
}

// file layout (version 2):
//
//	magic "RCF2"
//	uint32 numColumns
//	uint32 numGroups
//	per group: the compressed column chunks, concatenated (chunk
//	  lengths live in the footer, so a reader can skip any chunk — or a
//	  whole group — with pointer arithmetic instead of decompression)
//	footer, per group:
//	  uint32 rows
//	  per column: uint32 compLen, zone map (typed min/max)
//	uint32 footerLen (bytes, immediately before this trailer field)
//
// Column cells are encoded as length-prefixed strings for Str columns
// and 8-byte fixed values otherwise, then gzip-compressed per chunk.

var magic = []byte("RCF2")

// Write encodes t.
func (w *Writer) Write(t *relal.Table) ([]byte, error) {
	d := t.Compacted() // dense vectors; no-op unless t is a view
	var out bytes.Buffer
	out.Write(magic)
	binary.Write(&out, binary.LittleEndian, uint32(len(d.Schema)))
	n := d.NumRows()
	numGroups := (n + w.groupRows - 1) / w.groupRows
	binary.Write(&out, binary.LittleEndian, uint32(numGroups))
	var footer bytes.Buffer
	for g := 0; g < numGroups; g++ {
		lo := g * w.groupRows
		hi := lo + w.groupRows
		if hi > n {
			hi = n
		}
		binary.Write(&footer, binary.LittleEndian, uint32(hi-lo))
		for c := range d.Schema {
			var col bytes.Buffer
			gz := gzip.NewWriter(&col)
			if err := writeChunk(gz, d.Cols[c], lo, hi); err != nil {
				return nil, err
			}
			if err := gz.Close(); err != nil {
				return nil, err
			}
			out.Write(col.Bytes())
			binary.Write(&footer, binary.LittleEndian, uint32(col.Len()))
			writeZone(&footer, relal.ZoneOf(d.Cols[c], lo, hi))
		}
	}
	out.Write(footer.Bytes())
	binary.Write(&out, binary.LittleEndian, uint32(footer.Len()))
	return out.Bytes(), nil
}

// writeZone appends one zone map in its typed encoding.
func writeZone(w *bytes.Buffer, z relal.ZoneMap) {
	switch z.Kind {
	case relal.Int:
		binary.Write(w, binary.LittleEndian, z.IntMin)
		binary.Write(w, binary.LittleEndian, z.IntMax)
	case relal.Float:
		binary.Write(w, binary.LittleEndian, math.Float64bits(z.FloatMin))
		binary.Write(w, binary.LittleEndian, math.Float64bits(z.FloatMax))
	default:
		for _, s := range []string{z.StrMin, z.StrMax} {
			binary.Write(w, binary.LittleEndian, uint32(len(s)))
			w.WriteString(s)
		}
	}
}

// writeChunk streams one column's cells in rows [lo, hi) straight from
// the typed vector.
func writeChunk(w io.Writer, v *relal.Vector, lo, hi int) error {
	var buf [8]byte
	switch v.Kind {
	case relal.Int:
		for _, x := range v.Ints[lo:hi] {
			binary.LittleEndian.PutUint64(buf[:], uint64(x))
			if _, err := w.Write(buf[:]); err != nil {
				return err
			}
		}
	case relal.Float:
		for _, f := range v.Floats[lo:hi] {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
			if _, err := w.Write(buf[:]); err != nil {
				return err
			}
		}
	case relal.Str:
		for _, s := range v.Strs[lo:hi] {
			binary.LittleEndian.PutUint32(buf[:4], uint32(len(s)))
			if _, err := w.Write(buf[:4]); err != nil {
				return err
			}
			if _, err := io.WriteString(w, s); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("rcfile: unknown type %d", v.Kind)
	}
	return nil
}

// group is the decoded footer entry for one row group.
type group struct {
	rows     int
	offset   int64 // byte offset of the group's first chunk
	compLens []uint32
	zones    []relal.ZoneMap
}

// parsed is the decoded file structure (footer only — chunk bytes stay
// compressed until a read asks for them).
type parsed struct {
	groups []group
}

// parse validates the header against the schema and decodes the footer.
func parse(data []byte, schema relal.Schema) (*parsed, error) {
	if len(data) < len(magic)+12 || !bytes.Equal(data[:4], magic) {
		return nil, fmt.Errorf("rcfile: bad magic")
	}
	numCols := binary.LittleEndian.Uint32(data[4:])
	numGroups := binary.LittleEndian.Uint32(data[8:])
	if int(numCols) != len(schema) {
		return nil, fmt.Errorf("rcfile: file has %d columns, schema has %d", numCols, len(schema))
	}
	footerLen := binary.LittleEndian.Uint32(data[len(data)-4:])
	footerStart := len(data) - 4 - int(footerLen)
	if footerStart < 12 {
		return nil, fmt.Errorf("rcfile: truncated footer")
	}
	f := data[footerStart : len(data)-4]
	pos := 0
	need := func(n int) error {
		if pos+n > len(f) {
			return fmt.Errorf("rcfile: truncated footer")
		}
		return nil
	}
	p := &parsed{}
	offset := int64(12)
	for g := uint32(0); g < numGroups; g++ {
		if err := need(4); err != nil {
			return nil, err
		}
		gr := group{
			rows:     int(binary.LittleEndian.Uint32(f[pos:])),
			offset:   offset,
			compLens: make([]uint32, numCols),
			zones:    make([]relal.ZoneMap, numCols),
		}
		pos += 4
		for c := uint32(0); c < numCols; c++ {
			if err := need(4); err != nil {
				return nil, err
			}
			gr.compLens[c] = binary.LittleEndian.Uint32(f[pos:])
			pos += 4
			z := relal.ZoneMap{Kind: schema[c].Type}
			switch schema[c].Type {
			case relal.Int:
				if err := need(16); err != nil {
					return nil, err
				}
				z.IntMin = int64(binary.LittleEndian.Uint64(f[pos:]))
				z.IntMax = int64(binary.LittleEndian.Uint64(f[pos+8:]))
				pos += 16
			case relal.Float:
				if err := need(16); err != nil {
					return nil, err
				}
				z.FloatMin = math.Float64frombits(binary.LittleEndian.Uint64(f[pos:]))
				z.FloatMax = math.Float64frombits(binary.LittleEndian.Uint64(f[pos+8:]))
				pos += 16
			default:
				for k := 0; k < 2; k++ {
					if err := need(4); err != nil {
						return nil, err
					}
					sl := int(binary.LittleEndian.Uint32(f[pos:]))
					pos += 4
					if err := need(sl); err != nil {
						return nil, err
					}
					s := string(f[pos : pos+sl])
					pos += sl
					if k == 0 {
						z.StrMin = s
					} else {
						z.StrMax = s
					}
				}
			}
			gr.zones[c] = z
			offset += int64(gr.compLens[c])
		}
		p.groups = append(p.groups, gr)
	}
	if int(offset) > footerStart {
		return nil, fmt.Errorf("rcfile: chunk data overruns footer")
	}
	return p, nil
}

// decompressChunk inflates one chunk into the vector.
func decompressChunk(data []byte, chunkOff int64, compLen uint32, v *relal.Vector, rows int) error {
	if chunkOff+int64(compLen) > int64(len(data)) {
		return fmt.Errorf("rcfile: truncated chunk")
	}
	gz, err := gzip.NewReader(bytes.NewReader(data[chunkOff : chunkOff+int64(compLen)]))
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		return err
	}
	return readChunk(raw, v, rows)
}

// Read decodes an RCFile produced by Write, given the schema: every
// column of every row group (the pre-pushdown Hive behaviour).
func Read(data []byte, schema relal.Schema, name string) (*relal.Table, error) {
	t, _, err := ReadCols(data, schema, name, nil, nil)
	return t, err
}

// ReadCols decodes the requested columns (nil = all, otherwise the
// result schema is the requested names in order), skipping row groups
// whose zone maps cannot satisfy pred. Only surviving groups'
// requested chunks are decompressed; everything else is skipped with
// pointer arithmetic and accounted in the stats as compressed bytes.
func ReadCols(data []byte, schema relal.Schema, name string, cols []string, pred relal.ZonePredicate) (*relal.Table, relal.ScanStats, error) {
	var stats relal.ScanStats
	p, err := parse(data, schema)
	if err != nil {
		return nil, stats, err
	}
	// Resolve the projection: out column i reads file column colIdx[i].
	var colIdx []int
	outSchema := schema
	if len(cols) > 0 {
		outSchema = make(relal.Schema, len(cols))
		colIdx = make([]int, len(cols))
		for i, cname := range cols {
			found := -1
			for ci, c := range schema {
				if c.Name == cname {
					found = ci
					break
				}
			}
			if found < 0 {
				return nil, stats, fmt.Errorf("rcfile: no column %q in schema", cname)
			}
			colIdx[i] = found
			outSchema[i] = schema[found]
		}
	} else {
		colIdx = make([]int, len(schema))
		for i := range schema {
			colIdx[i] = i
		}
	}
	wanted := make([]bool, len(schema))
	for _, ci := range colIdx {
		wanted[ci] = true
	}

	t := relal.NewTable(name, outSchema)
	for _, gr := range p.groups {
		keep := pred.MayMatch(func(col string) (relal.ZoneMap, bool) {
			for ci, c := range schema {
				if c.Name == col {
					return gr.zones[ci], true
				}
			}
			return relal.ZoneMap{}, false
		})
		if !keep {
			stats.GroupsSkipped++
			for _, cl := range gr.compLens {
				stats.BytesSkipped += int64(cl)
			}
			continue
		}
		stats.GroupsRead++
		for ci, cl := range gr.compLens {
			if wanted[ci] {
				stats.BytesRead += int64(cl)
			} else {
				stats.BytesSkipped += int64(cl)
			}
		}
		for out, ci := range colIdx {
			off := gr.offset
			for k := 0; k < ci; k++ {
				off += int64(gr.compLens[k])
			}
			if err := decompressChunk(data, off, gr.compLens[ci], t.Cols[out], gr.rows); err != nil {
				return nil, stats, err
			}
		}
	}
	return t, stats, nil
}

// ZoneMaps returns the footer's zone maps, per group per column (test
// and tooling introspection).
func ZoneMaps(data []byte, schema relal.Schema) ([][]relal.ZoneMap, error) {
	p, err := parse(data, schema)
	if err != nil {
		return nil, err
	}
	out := make([][]relal.ZoneMap, len(p.groups))
	for g, gr := range p.groups {
		out[g] = gr.zones
	}
	return out, nil
}

// readChunk decodes one column chunk of the given row count, appending
// onto the typed vector.
func readChunk(raw []byte, v *relal.Vector, rows int) error {
	pos := 0
	switch v.Kind {
	case relal.Int:
		if len(raw) < 8*rows {
			return fmt.Errorf("rcfile: truncated int column")
		}
		for i := 0; i < rows; i++ {
			v.Ints = append(v.Ints, int64(binary.LittleEndian.Uint64(raw[pos:])))
			pos += 8
		}
	case relal.Float:
		if len(raw) < 8*rows {
			return fmt.Errorf("rcfile: truncated float column")
		}
		for i := 0; i < rows; i++ {
			v.Floats = append(v.Floats, math.Float64frombits(binary.LittleEndian.Uint64(raw[pos:])))
			pos += 8
		}
	case relal.Str:
		for i := 0; i < rows; i++ {
			if pos+4 > len(raw) {
				return fmt.Errorf("rcfile: truncated string column")
			}
			n := int(binary.LittleEndian.Uint32(raw[pos:]))
			pos += 4
			if pos+n > len(raw) {
				return fmt.Errorf("rcfile: truncated string cell")
			}
			v.Strs = append(v.Strs, string(raw[pos:pos+n]))
			pos += n
		}
	default:
		return fmt.Errorf("rcfile: unknown type %d", v.Kind)
	}
	return nil
}

// Source serves a table from its RCFile encoding through the relal scan
// operator: ReadCols does the column selection and zone-map pruning, so
// scans really decompress only what the query asked for. Decode errors
// panic — a Source wraps bytes this process just encoded, so corruption
// is a programming bug, not an I/O condition.
//
// A Source is safe for concurrent scans: the encoded bytes are read-only
// and the cumulative byte accounting goes through an atomic counter, so
// query streams can share one Source per table.
type Source struct {
	name    string
	schema  relal.Schema
	data    []byte
	counter relal.ScanCounter
}

// NewSource encodes t with the given row-group size (0 = default).
func NewSource(t *relal.Table, groupRows int) (*Source, error) {
	data, err := NewWriter(groupRows).Write(t)
	if err != nil {
		return nil, err
	}
	return &Source{name: t.Name, schema: t.Schema, data: data}, nil
}

// SrcName returns the table name.
func (s *Source) SrcName() string { return s.name }

// SrcSchema returns the table schema.
func (s *Source) SrcSchema() relal.Schema { return s.schema }

// Bytes returns the encoded file size.
func (s *Source) Bytes() int { return len(s.data) }

// ScanTable implements relal.Source.
func (s *Source) ScanTable(cols []string, pred relal.ZonePredicate) (*relal.Table, relal.ScanStats) {
	t, stats, err := ReadCols(s.data, s.schema, s.name, cols, pred)
	if err != nil {
		panic("rcfile: " + err.Error())
	}
	s.counter.Observe(stats)
	return t, stats
}

// TotalStats returns the byte accounting accumulated over every scan
// this source has served, from any goroutine. Two streams hammering one
// Source sum exactly: the accumulation is atomic, not a plain struct
// add.
func (s *Source) TotalStats() relal.ScanStats { return s.counter.Total() }

// CompressionRatio encodes t and returns compressed/uncompressed size.
// TPC-H text compresses heavily under columnar gzip; the Hive cost model
// multiplies text sizes by this ratio to get on-disk bucket sizes.
func CompressionRatio(t *relal.Table) (float64, error) {
	if t.NumRows() == 0 {
		return 1, nil
	}
	w := NewWriter(0)
	data, err := w.Write(t)
	if err != nil {
		return 0, err
	}
	raw := t.AvgRowBytes() * t.NumRows()
	if raw == 0 {
		return 1, nil
	}
	return float64(len(data)) / float64(raw), nil
}
