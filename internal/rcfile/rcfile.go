// Package rcfile implements the RCFile columnar storage format the
// paper's Hive tables used: rows are grouped into row groups, each row
// group stores its columns contiguously, and every column chunk is
// compressed (GZIP in the paper's configuration).
//
// The format is functional — tables really round-trip through it — and
// it reports measured compression ratios, which the Hive cost model uses
// to size on-disk buckets at the paper's scale factors. The paper's key
// observation ("the RCFile format is not a very efficient storage
// layout... map tasks were CPU-bound at ~70 MB/s") appears in the cost
// model as a per-byte decompression CPU charge.
//
// Since relal tables are themselves columnar, encoding and decoding
// move cells straight between the typed column vectors and the on-disk
// chunks — no row pivot, no boxed values.
package rcfile

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"elephants/internal/relal"
)

// DefaultRowGroupRows is the row-group size in rows (RCFile defaults to
// 4 MB groups; for the 100–150 byte TPC-H rows this is comparable).
const DefaultRowGroupRows = 16 * 1024

// Writer serializes a table into RCFile bytes.
type Writer struct {
	groupRows int
}

// NewWriter returns a writer with the given row-group size (0 = default).
func NewWriter(groupRows int) *Writer {
	if groupRows <= 0 {
		groupRows = DefaultRowGroupRows
	}
	return &Writer{groupRows: groupRows}
}

// file layout:
//   magic "RCF1"
//   uint32 numColumns
//   uint32 numGroups
//   per group: uint32 rows, per column: uint32 compLen, bytes
//
// Column cells are encoded as length-prefixed strings for Str columns
// and 8-byte fixed values otherwise.

var magic = []byte("RCF1")

// Write encodes t.
func (w *Writer) Write(t *relal.Table) ([]byte, error) {
	d := t.Compacted() // dense vectors; no-op unless t is a view
	var out bytes.Buffer
	out.Write(magic)
	binary.Write(&out, binary.LittleEndian, uint32(len(d.Schema)))
	n := d.NumRows()
	numGroups := (n + w.groupRows - 1) / w.groupRows
	binary.Write(&out, binary.LittleEndian, uint32(numGroups))
	for g := 0; g < numGroups; g++ {
		lo := g * w.groupRows
		hi := lo + w.groupRows
		if hi > n {
			hi = n
		}
		binary.Write(&out, binary.LittleEndian, uint32(hi-lo))
		for c := range d.Schema {
			var col bytes.Buffer
			gz := gzip.NewWriter(&col)
			if err := writeChunk(gz, d.Cols[c], lo, hi); err != nil {
				return nil, err
			}
			if err := gz.Close(); err != nil {
				return nil, err
			}
			binary.Write(&out, binary.LittleEndian, uint32(col.Len()))
			out.Write(col.Bytes())
		}
	}
	return out.Bytes(), nil
}

// writeChunk streams one column's cells in rows [lo, hi) straight from
// the typed vector.
func writeChunk(w io.Writer, v *relal.Vector, lo, hi int) error {
	var buf [8]byte
	switch v.Kind {
	case relal.Int:
		for _, x := range v.Ints[lo:hi] {
			binary.LittleEndian.PutUint64(buf[:], uint64(x))
			if _, err := w.Write(buf[:]); err != nil {
				return err
			}
		}
	case relal.Float:
		for _, f := range v.Floats[lo:hi] {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
			if _, err := w.Write(buf[:]); err != nil {
				return err
			}
		}
	case relal.Str:
		for _, s := range v.Strs[lo:hi] {
			binary.LittleEndian.PutUint32(buf[:4], uint32(len(s)))
			if _, err := w.Write(buf[:4]); err != nil {
				return err
			}
			if _, err := io.WriteString(w, s); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("rcfile: unknown type %d", v.Kind)
	}
	return nil
}

// Read decodes an RCFile produced by Write, given the schema. Column
// chunks are appended directly onto the table's typed vectors.
func Read(data []byte, schema relal.Schema, name string) (*relal.Table, error) {
	r := bytes.NewReader(data)
	m := make([]byte, 4)
	if _, err := io.ReadFull(r, m); err != nil || !bytes.Equal(m, magic) {
		return nil, fmt.Errorf("rcfile: bad magic")
	}
	var numCols, numGroups uint32
	if err := binary.Read(r, binary.LittleEndian, &numCols); err != nil {
		return nil, err
	}
	if int(numCols) != len(schema) {
		return nil, fmt.Errorf("rcfile: file has %d columns, schema has %d", numCols, len(schema))
	}
	if err := binary.Read(r, binary.LittleEndian, &numGroups); err != nil {
		return nil, err
	}
	t := relal.NewTable(name, schema)
	for g := uint32(0); g < numGroups; g++ {
		var rows uint32
		if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
			return nil, err
		}
		for c := uint32(0); c < numCols; c++ {
			var compLen uint32
			if err := binary.Read(r, binary.LittleEndian, &compLen); err != nil {
				return nil, err
			}
			comp := make([]byte, compLen)
			if _, err := io.ReadFull(r, comp); err != nil {
				return nil, err
			}
			gz, err := gzip.NewReader(bytes.NewReader(comp))
			if err != nil {
				return nil, err
			}
			raw, err := io.ReadAll(gz)
			if err != nil {
				return nil, err
			}
			if err := readChunk(raw, t.Cols[c], int(rows)); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// readChunk decodes one column chunk of the given row count, appending
// onto the typed vector.
func readChunk(raw []byte, v *relal.Vector, rows int) error {
	pos := 0
	switch v.Kind {
	case relal.Int:
		if len(raw) < 8*rows {
			return fmt.Errorf("rcfile: truncated int column")
		}
		for i := 0; i < rows; i++ {
			v.Ints = append(v.Ints, int64(binary.LittleEndian.Uint64(raw[pos:])))
			pos += 8
		}
	case relal.Float:
		if len(raw) < 8*rows {
			return fmt.Errorf("rcfile: truncated float column")
		}
		for i := 0; i < rows; i++ {
			v.Floats = append(v.Floats, math.Float64frombits(binary.LittleEndian.Uint64(raw[pos:])))
			pos += 8
		}
	case relal.Str:
		for i := 0; i < rows; i++ {
			if pos+4 > len(raw) {
				return fmt.Errorf("rcfile: truncated string column")
			}
			n := int(binary.LittleEndian.Uint32(raw[pos:]))
			pos += 4
			if pos+n > len(raw) {
				return fmt.Errorf("rcfile: truncated string cell")
			}
			v.Strs = append(v.Strs, string(raw[pos:pos+n]))
			pos += n
		}
	default:
		return fmt.Errorf("rcfile: unknown type %d", v.Kind)
	}
	return nil
}

// CompressionRatio encodes t and returns compressed/uncompressed size.
// TPC-H text compresses heavily under columnar gzip; the Hive cost model
// multiplies text sizes by this ratio to get on-disk bucket sizes.
func CompressionRatio(t *relal.Table) (float64, error) {
	if t.NumRows() == 0 {
		return 1, nil
	}
	w := NewWriter(0)
	data, err := w.Write(t)
	if err != nil {
		return 0, err
	}
	raw := t.AvgRowBytes() * t.NumRows()
	if raw == 0 {
		return 1, nil
	}
	return float64(len(data)) / float64(raw), nil
}
