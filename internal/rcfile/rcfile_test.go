package rcfile

import (
	"fmt"
	"testing"
	"testing/quick"

	"elephants/internal/relal"
	"elephants/internal/tpch"
)

func sampleTable(rows int) *relal.Table {
	keys := make([]int64, 0, rows)
	vals := make([]float64, 0, rows)
	strs := make([]string, 0, rows)
	for i := 0; i < rows; i++ {
		keys = append(keys, int64(i))
		vals = append(vals, float64(i)*1.5)
		strs = append(strs, fmt.Sprintf("row-%d", i))
	}
	return relal.NewTable("t", relal.Schema{
		{Name: "k", Type: relal.Int},
		{Name: "v", Type: relal.Float},
		{Name: "s", Type: relal.Str},
	}, relal.IntsV(keys), relal.FloatsV(vals), relal.StrsV(strs))
}

func TestRoundTrip(t *testing.T) {
	src := sampleTable(1000)
	data, err := NewWriter(128).Write(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(data, src.Schema, "t")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != src.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), src.NumRows())
	}
	srcRows, gotRows := relal.RowsOf(src), relal.RowsOf(got)
	for i := range srcRows {
		for c := range srcRows[i] {
			if gotRows[i][c] != srcRows[i][c] {
				t.Fatalf("cell (%d,%d) = %v, want %v", i, c, gotRows[i][c], srcRows[i][c])
			}
		}
	}
}

func TestRoundTripOfView(t *testing.T) {
	// Writing a filtered view must serialize only the selected rows (the
	// writer compacts internally).
	src := sampleTable(100)
	e := &relal.Exec{}
	k := src.IntCol("k")
	f := e.Filter(src, func(i int) bool { return k.Get(i)%10 == 0 })
	data, err := NewWriter(4).Write(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(data, f.Schema, "t")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 10 {
		t.Fatalf("rows = %d, want 10", got.NumRows())
	}
	gk := got.IntCol("k")
	for i := 0; i < got.NumRows(); i++ {
		if gk.Get(i) != int64(i*10) {
			t.Fatalf("row %d k = %d, want %d", i, gk.Get(i), i*10)
		}
	}
}

func TestEmptyTable(t *testing.T) {
	src := sampleTable(0)
	data, err := NewWriter(0).Write(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(data, src.Schema, "t")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 {
		t.Errorf("rows = %d, want 0", got.NumRows())
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := Read([]byte("nope"), nil, "t"); err == nil {
		t.Error("bad magic should fail")
	}
	src := sampleTable(10)
	data, _ := NewWriter(0).Write(src)
	if _, err := Read(data, src.Schema[:2], "t"); err == nil {
		t.Error("schema mismatch should fail")
	}
	if _, err := Read(data[:len(data)-5], src.Schema, "t"); err == nil {
		t.Error("truncated file should fail")
	}
}

func TestCompressionOnTPCH(t *testing.T) {
	db := tpch.Generate(tpch.GenConfig{SF: 0.002, Seed: 1, Random64: true})
	ratio, err := CompressionRatio(db.Lineitem)
	if err != nil {
		t.Fatal(err)
	}
	// Columnar gzip on TPC-H achieves heavy compression; the Hive cost
	// model assumes ~0.115. Accept a broad band, but it must compress.
	if ratio >= 0.7 {
		t.Errorf("lineitem compression ratio = %.3f, expected strong compression", ratio)
	}
	if ratio <= 0.01 {
		t.Errorf("compression ratio = %.3f suspiciously low", ratio)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		src := relal.NewTable("p",
			relal.Schema{{Name: "x", Type: relal.Int}},
			relal.IntsV(vals))
		data, err := NewWriter(7).Write(src)
		if err != nil {
			return false
		}
		got, err := Read(data, src.Schema, "p")
		if err != nil || got.NumRows() != len(vals) {
			return false
		}
		gx := got.IntCol("x")
		for i, v := range vals {
			if gx.Get(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTypeMismatchRejectedAtConstruction(t *testing.T) {
	// With typed columnar tables a mistyped cell can no longer reach the
	// writer: AppendRow panics at construction time instead of Write
	// returning an error later.
	tb := relal.NewTable("b", relal.Schema{{Name: "x", Type: relal.Int}})
	defer func() {
		if recover() == nil {
			t.Error("mistyped AppendRow should panic")
		}
	}()
	relal.AppendRow(tb, relal.Row{"not an int"})
}
