package rcfile

import (
	"fmt"
	"testing"
	"testing/quick"

	"elephants/internal/relal"
	"elephants/internal/tpch"
)

func sampleTable(rows int) *relal.Table {
	t := &relal.Table{
		Name: "t",
		Schema: relal.Schema{
			{Name: "k", Type: relal.Int},
			{Name: "v", Type: relal.Float},
			{Name: "s", Type: relal.Str},
		},
	}
	for i := 0; i < rows; i++ {
		t.Rows = append(t.Rows, relal.Row{int64(i), float64(i) * 1.5, fmt.Sprintf("row-%d", i)})
	}
	return t
}

func TestRoundTrip(t *testing.T) {
	src := sampleTable(1000)
	data, err := NewWriter(128).Write(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(data, src.Schema, "t")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != src.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), src.NumRows())
	}
	for i := range src.Rows {
		for c := range src.Rows[i] {
			if got.Rows[i][c] != src.Rows[i][c] {
				t.Fatalf("cell (%d,%d) = %v, want %v", i, c, got.Rows[i][c], src.Rows[i][c])
			}
		}
	}
}

func TestEmptyTable(t *testing.T) {
	src := sampleTable(0)
	data, err := NewWriter(0).Write(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(data, src.Schema, "t")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 {
		t.Errorf("rows = %d, want 0", got.NumRows())
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := Read([]byte("nope"), nil, "t"); err == nil {
		t.Error("bad magic should fail")
	}
	src := sampleTable(10)
	data, _ := NewWriter(0).Write(src)
	if _, err := Read(data, src.Schema[:2], "t"); err == nil {
		t.Error("schema mismatch should fail")
	}
	if _, err := Read(data[:len(data)-5], src.Schema, "t"); err == nil {
		t.Error("truncated file should fail")
	}
}

func TestCompressionOnTPCH(t *testing.T) {
	db := tpch.Generate(tpch.GenConfig{SF: 0.002, Seed: 1, Random64: true})
	ratio, err := CompressionRatio(db.Lineitem)
	if err != nil {
		t.Fatal(err)
	}
	// Columnar gzip on TPC-H achieves heavy compression; the Hive cost
	// model assumes ~0.115. Accept a broad band, but it must compress.
	if ratio >= 0.7 {
		t.Errorf("lineitem compression ratio = %.3f, expected strong compression", ratio)
	}
	if ratio <= 0.01 {
		t.Errorf("compression ratio = %.3f suspiciously low", ratio)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		src := &relal.Table{
			Name:   "p",
			Schema: relal.Schema{{Name: "x", Type: relal.Int}},
		}
		for _, v := range vals {
			src.Rows = append(src.Rows, relal.Row{v})
		}
		data, err := NewWriter(7).Write(src)
		if err != nil {
			return false
		}
		got, err := Read(data, src.Schema, "p")
		if err != nil || got.NumRows() != len(vals) {
			return false
		}
		for i, v := range vals {
			if got.Rows[i][0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestWriteRejectsWrongTypes(t *testing.T) {
	bad := &relal.Table{
		Name:   "b",
		Schema: relal.Schema{{Name: "x", Type: relal.Int}},
		Rows:   []relal.Row{{"not an int"}},
	}
	if _, err := NewWriter(0).Write(bad); err == nil {
		t.Error("type mismatch should fail")
	}
}
