package rcfile

import (
	"fmt"
	"testing"
	"testing/quick"

	"elephants/internal/relal"
	"elephants/internal/tpch"
)

func sampleTable(rows int) *relal.Table {
	keys := make([]int64, 0, rows)
	vals := make([]float64, 0, rows)
	strs := make([]string, 0, rows)
	for i := 0; i < rows; i++ {
		keys = append(keys, int64(i))
		vals = append(vals, float64(i)*1.5)
		strs = append(strs, fmt.Sprintf("row-%d", i))
	}
	return relal.NewTable("t", relal.Schema{
		{Name: "k", Type: relal.Int},
		{Name: "v", Type: relal.Float},
		{Name: "s", Type: relal.Str},
	}, relal.IntsV(keys), relal.FloatsV(vals), relal.StrsV(strs))
}

func TestRoundTrip(t *testing.T) {
	src := sampleTable(1000)
	data, err := NewWriter(128).Write(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(data, src.Schema, "t")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != src.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), src.NumRows())
	}
	srcRows, gotRows := relal.RowsOf(src), relal.RowsOf(got)
	for i := range srcRows {
		for c := range srcRows[i] {
			if gotRows[i][c] != srcRows[i][c] {
				t.Fatalf("cell (%d,%d) = %v, want %v", i, c, gotRows[i][c], srcRows[i][c])
			}
		}
	}
}

func TestRoundTripOfView(t *testing.T) {
	// Writing a filtered view must serialize only the selected rows (the
	// writer compacts internally).
	src := sampleTable(100)
	e := &relal.Exec{}
	k := src.IntCol("k")
	f := e.Filter(src, func(i int) bool { return k.Get(i)%10 == 0 })
	data, err := NewWriter(4).Write(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(data, f.Schema, "t")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 10 {
		t.Fatalf("rows = %d, want 10", got.NumRows())
	}
	gk := got.IntCol("k")
	for i := 0; i < got.NumRows(); i++ {
		if gk.Get(i) != int64(i*10) {
			t.Fatalf("row %d k = %d, want %d", i, gk.Get(i), i*10)
		}
	}
}

func TestEmptyTable(t *testing.T) {
	src := sampleTable(0)
	data, err := NewWriter(0).Write(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(data, src.Schema, "t")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 {
		t.Errorf("rows = %d, want 0", got.NumRows())
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := Read([]byte("nope"), nil, "t"); err == nil {
		t.Error("bad magic should fail")
	}
	src := sampleTable(10)
	data, _ := NewWriter(0).Write(src)
	if _, err := Read(data, src.Schema[:2], "t"); err == nil {
		t.Error("schema mismatch should fail")
	}
	if _, err := Read(data[:len(data)-5], src.Schema, "t"); err == nil {
		t.Error("truncated file should fail")
	}
}

func TestCompressionOnTPCH(t *testing.T) {
	db := tpch.Generate(tpch.GenConfig{SF: 0.002, Seed: 1, Random64: true})
	ratio, err := CompressionRatio(db.Lineitem)
	if err != nil {
		t.Fatal(err)
	}
	// Columnar gzip on TPC-H achieves heavy compression; the Hive cost
	// model assumes ~0.115. Accept a broad band, but it must compress.
	if ratio >= 0.7 {
		t.Errorf("lineitem compression ratio = %.3f, expected strong compression", ratio)
	}
	if ratio <= 0.01 {
		t.Errorf("compression ratio = %.3f suspiciously low", ratio)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		src := relal.NewTable("p",
			relal.Schema{{Name: "x", Type: relal.Int}},
			relal.IntsV(vals))
		data, err := NewWriter(7).Write(src)
		if err != nil {
			return false
		}
		got, err := Read(data, src.Schema, "p")
		if err != nil || got.NumRows() != len(vals) {
			return false
		}
		gx := got.IntCol("x")
		for i, v := range vals {
			if gx.Get(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTypeMismatchRejectedAtConstruction(t *testing.T) {
	// With typed columnar tables a mistyped cell can no longer reach the
	// writer: AppendRow panics at construction time instead of Write
	// returning an error later.
	tb := relal.NewTable("b", relal.Schema{{Name: "x", Type: relal.Int}})
	defer func() {
		if recover() == nil {
			t.Error("mistyped AppendRow should panic")
		}
	}()
	relal.AppendRow(tb, relal.Row{"not an int"})
}

func TestReadColsSubsetRoundTrip(t *testing.T) {
	src := sampleTable(1000)
	data, err := NewWriter(128).Write(src)
	if err != nil {
		t.Fatal(err)
	}
	// Request a subset in non-schema order: result schema must follow
	// the request.
	got, stats, err := ReadCols(data, src.Schema, "t", []string{"s", "k"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Schema) != 2 || got.Schema[0].Name != "s" || got.Schema[1].Name != "k" {
		t.Fatalf("schema = %v", got.Schema.Names())
	}
	if got.NumRows() != 1000 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	ks := got.IntCol("k")
	ss := got.StrCol("s")
	for i := 0; i < got.NumRows(); i++ {
		if ks.Get(i) != int64(i) || ss.Get(i) != fmt.Sprintf("row-%d", i) {
			t.Fatalf("row %d = (%d, %q)", i, ks.Get(i), ss.Get(i))
		}
	}
	if stats.BytesSkipped == 0 {
		t.Error("column pruning must skip the v column's chunks")
	}
	// Full read accounts the same total bytes, all read.
	_, full, err := ReadCols(data, src.Schema, "t", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.BytesSkipped != 0 {
		t.Errorf("full read skipped %d bytes", full.BytesSkipped)
	}
	if full.BytesRead != stats.BytesRead+stats.BytesSkipped {
		t.Errorf("byte accounting drifts: full %d vs subset %d+%d",
			full.BytesRead, stats.BytesRead, stats.BytesSkipped)
	}
}

func TestReadColsUnknownColumn(t *testing.T) {
	src := sampleTable(10)
	data, _ := NewWriter(0).Write(src)
	if _, _, err := ReadCols(data, src.Schema, "t", []string{"nope"}, nil); err == nil {
		t.Error("unknown requested column should fail")
	}
}

func TestZoneMapPruning(t *testing.T) {
	src := sampleTable(1000) // k ascending 0..999, so zone maps are tight
	data, err := NewWriter(100).Write(src)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := ReadCols(data, src.Schema, "t", []string{"k"},
		relal.ZonePredicate{relal.IntBetween("k", 250, 349)})
	if err != nil {
		t.Fatal(err)
	}
	// The [250, 349] range straddles the [200, 299] and [300, 399]
	// groups; only those two survive.
	if got.NumRows() != 200 {
		t.Errorf("rows = %d, want 200 (two surviving groups)", got.NumRows())
	}
	if stats.GroupsRead != 2 || stats.GroupsSkipped != 8 {
		t.Errorf("groups read/skipped = %d/%d, want 2/8", stats.GroupsRead, stats.GroupsSkipped)
	}
	k := got.IntCol("k")
	if k.Get(0) != 200 || k.Get(199) != 399 {
		t.Errorf("surviving groups span [%d, %d], want [200, 399]", k.Get(0), k.Get(199))
	}
}

func TestAllGroupsPruned(t *testing.T) {
	src := sampleTable(500)
	data, err := NewWriter(64).Write(src)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := ReadCols(data, src.Schema, "t", []string{"k", "v"},
		relal.ZonePredicate{relal.IntAtLeast("k", 10_000)})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 {
		t.Errorf("rows = %d, want 0", got.NumRows())
	}
	if stats.GroupsRead != 0 || stats.BytesRead != 0 {
		t.Errorf("all groups should prune: read %d groups, %d bytes", stats.GroupsRead, stats.BytesRead)
	}
	if stats.GroupsSkipped == 0 || stats.BytesSkipped == 0 {
		t.Error("skipped accounting must cover the whole file")
	}
	// The empty result still supports typed access.
	if got.IntCol("k").Len() != 0 {
		t.Error("empty pruned table must have empty typed columns")
	}
}

func TestSingleRowGroups(t *testing.T) {
	src := sampleTable(7)
	data, err := NewWriter(1).Write(src)
	if err != nil {
		t.Fatal(err)
	}
	zones, err := ZoneMaps(data, src.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 7 {
		t.Fatalf("groups = %d, want 7", len(zones))
	}
	for g, zs := range zones {
		if zs[0].IntMin != int64(g) || zs[0].IntMax != int64(g) {
			t.Errorf("group %d k zone = [%d, %d]", g, zs[0].IntMin, zs[0].IntMax)
		}
	}
	got, stats, err := ReadCols(data, src.Schema, "t", nil,
		relal.ZonePredicate{relal.IntEq("k", 3)})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 1 || got.IntCol("k").Get(0) != 3 {
		t.Errorf("rows = %d", got.NumRows())
	}
	if stats.GroupsSkipped != 6 {
		t.Errorf("skipped %d groups, want 6", stats.GroupsSkipped)
	}
}

func TestEmptyTableReadCols(t *testing.T) {
	src := sampleTable(0)
	data, err := NewWriter(0).Write(src)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := ReadCols(data, src.Schema, "t", []string{"v"},
		relal.ZonePredicate{relal.FloatAtMost("v", 1)})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 || stats.GroupsRead != 0 || stats.GroupsSkipped != 0 {
		t.Errorf("empty table: rows=%d stats=%+v", got.NumRows(), stats)
	}
}

func TestStrZoneEdgeCases(t *testing.T) {
	// Empty strings and common prefixes: "" is a legitimate minimum and
	// "app" < "apple" lexicographically, so a predicate between the two
	// must keep the group.
	tb := relal.NewTable("s", relal.Schema{{Name: "x", Type: relal.Str}},
		relal.StrsV([]string{"", "app", "apple", "applesauce"}))
	data, err := NewWriter(0).Write(tb)
	if err != nil {
		t.Fatal(err)
	}
	zones, err := ZoneMaps(data, tb.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if zones[0][0].StrMin != "" || zones[0][0].StrMax != "applesauce" {
		t.Errorf("zone = [%q, %q]", zones[0][0].StrMin, zones[0][0].StrMax)
	}
	for _, tc := range []struct {
		pred relal.ZoneCond
		keep bool
	}{
		{relal.StrEq("x", ""), true},     // empty string is in range
		{relal.StrEq("x", "appl"), true}, // prefix between app and apple
		{relal.StrAtLeast("x", "applesauce"), true},
		{relal.StrAtLeast("x", "applesauces"), false}, // past the max
		{relal.StrAtMost("x", ""), true},              // min "" qualifies
		{relal.StrBetween("x", "b", "c"), false},
	} {
		got, _, err := ReadCols(data, tb.Schema, "s", nil, relal.ZonePredicate{tc.pred})
		if err != nil {
			t.Fatal(err)
		}
		if kept := got.NumRows() > 0; kept != tc.keep {
			t.Errorf("pred %+v: kept=%v, want %v", tc.pred, kept, tc.keep)
		}
	}
}

func TestSourceScanMatchesRead(t *testing.T) {
	src := sampleTable(300)
	s, err := NewSource(src, 64)
	if err != nil {
		t.Fatal(err)
	}
	if s.SrcName() != "t" || len(s.SrcSchema()) != 3 {
		t.Errorf("source identity wrong: %s %v", s.SrcName(), s.SrcSchema().Names())
	}
	got, stats := s.ScanTable([]string{"k"}, relal.ZonePredicate{relal.IntAtMost("k", 99)})
	if got.NumRows() != 128 { // two 64-row groups survive (0..63, 64..127)
		t.Errorf("rows = %d, want 128", got.NumRows())
	}
	if stats.GroupsSkipped != 3 {
		t.Errorf("skipped %d groups, want 3", stats.GroupsSkipped)
	}
}
