package rcfile

import (
	"fmt"
	"sync"
	"testing"

	"elephants/internal/relal"
)

// TestSourceStatsConcurrent is the regression test for the shared-Source
// accounting: many goroutines (two query streams' worth and more)
// scanning one rcfile.Source must accumulate lifetime stats that equal
// exactly scans × per-scan stats. Before the ScanCounter the totals
// would have needed a plain struct add, which loses updates under
// concurrency; run with -race to keep it honest.
func TestSourceStatsConcurrent(t *testing.T) {
	rows := 4 * relal.DefaultScanGroupRows / 16 // 4 groups at groupRows below
	groupRows := rows / 4
	keys := make([]int64, rows)
	vals := make([]string, rows)
	for i := range keys {
		keys[i] = int64(i)
		vals[i] = fmt.Sprintf("v%08d", i)
	}
	tb := relal.NewTable("t", relal.Schema{
		{Name: "k", Type: relal.Int},
		{Name: "v", Type: relal.Str},
	}, relal.IntsV(keys), relal.StrsV(vals))
	src, err := NewSource(tb, groupRows)
	if err != nil {
		t.Fatal(err)
	}

	// One scan's stats: column subset plus a zone predicate that prunes
	// some groups, so every counter field is non-zero.
	pred := relal.ZonePredicate{relal.IntAtMost("k", int64(rows/2))}
	_, once := src.ScanTable([]string{"k"}, pred)
	if once.BytesRead == 0 || once.BytesSkipped == 0 || once.GroupsSkipped == 0 {
		t.Fatalf("degenerate per-scan stats: %+v", once)
	}
	base := src.TotalStats() // the probe scan above is already counted

	const goroutines = 8
	const scansPer = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < scansPer; i++ {
				if _, s := src.ScanTable([]string{"k"}, pred); s != once {
					panic("per-scan stats drifted")
				}
			}
		}()
	}
	wg.Wait()

	got := src.TotalStats()
	want := base
	for i := 0; i < goroutines*scansPer; i++ {
		want.Add(once)
	}
	if got != want {
		t.Fatalf("concurrent accumulation lost updates:\n got %+v\nwant %+v", got, want)
	}
}

// TestTableSourceStatsConcurrent covers the in-memory TableSource's
// counter the same way (both backends serve concurrent streams).
func TestTableSourceStatsConcurrent(t *testing.T) {
	rows := 6 * 512
	keys := make([]int64, rows)
	for i := range keys {
		keys[i] = int64(i)
	}
	tb := relal.NewTable("t", relal.Schema{{Name: "k", Type: relal.Int}}, relal.IntsV(keys))
	src := &relal.TableSource{T: tb, GroupRows: 512}
	pred := relal.ZonePredicate{relal.IntAtMost("k", int64(rows/3))}
	_, once := src.ScanTable([]string{"k"}, pred)
	base := src.TotalStats()

	const goroutines = 8
	const scansPer = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < scansPer; i++ {
				src.ScanTable([]string{"k"}, pred)
			}
		}()
	}
	wg.Wait()

	got := src.TotalStats()
	want := base
	for i := 0; i < goroutines*scansPer; i++ {
		want.Add(once)
	}
	if got != want {
		t.Fatalf("concurrent accumulation lost updates:\n got %+v\nwant %+v", got, want)
	}
}
