package relal

// Dense-array dict aggregation. When every group-by column is
// dict-encoded and the product of the dictionary sizes is small, the
// combined code is a perfect hash: per-group state lives in a flat
// slot array indexed by Σ code_j·mult_j instead of a map keyed by the
// stringified group key. On Q1 (4 groups over a 3×2 code space) this
// removes the per-row key build and map probe entirely. When the input
// is dense and the single group column is run-encoded, rows are
// consumed as (group, run) batches: one slot probe per run.
//
// Both kernels emit groups in first-seen order and feed each group its
// rows in global row order, so their output is bit-identical to the
// hash kernels at every worker count.

// maxDenseGroupSpan bounds the combined code space (and so the slot
// array) the dense path will allocate. Beyond this the map kernels win
// on memory anyway.
const maxDenseGroupSpan = 4096

// denseGroupInfo reports whether the dense-array path applies to the
// given group columns: all dict-encoded (flat or run-encoded) with a
// combined code space of at most maxDenseGroupSpan slots. mults are
// the mixed-radix multipliers mapping a code tuple to its slot.
func denseGroupInfo(t *Table, gidx []int) (gcols []*Vector, mults []int, span int, ok bool) {
	if len(gidx) == 0 {
		return nil, nil, 0, false
	}
	gcols = make([]*Vector, len(gidx))
	span = 1
	for j, gi := range gidx {
		col := t.Cols[gi]
		if col.DictVals == nil || len(col.DictVals) == 0 {
			return nil, nil, 0, false
		}
		if span > maxDenseGroupSpan/len(col.DictVals) {
			return nil, nil, 0, false
		}
		span *= len(col.DictVals)
		gcols[j] = col
	}
	mults = make([]int, len(gidx))
	mults[len(mults)-1] = 1
	for j := len(mults) - 2; j >= 0; j-- {
		mults[j] = mults[j+1] * len(gcols[j+1].DictVals)
	}
	return gcols, mults, span, true
}

// aggregateDenseSerial is the serial dense-array kernel.
func aggregateDenseSerial(t *Table, gcols []*Vector, mults []int, span int, aidx []int, newAccum func(p int32) *accum) []*accum {
	ft := flattenedFor(t, aidx)
	slots := make([]*accum, span)
	var order []*accum
	// Run batch: dense input, one run-encoded group column — the slot
	// is probed once per run and the run's rows accumulate in row
	// order, exactly as the per-row loop would.
	if t.sel == nil && len(gcols) == 1 && gcols[0].RunEnds != nil {
		g := gcols[0]
		pos := int32(0)
		for k, end := range g.RunEnds {
			acc := slots[g.Dict[k]]
			if acc == nil {
				acc = newAccum(pos)
				slots[g.Dict[k]] = acc
				order = append(order, acc)
			}
			for p := pos; p < end; p++ {
				acc.observe(ft, aidx, p)
			}
			pos = end
		}
		return order
	}
	codes := make([][]uint32, len(gcols))
	for j, g := range gcols {
		codes[j] = g.Flat().Dict
	}
	n := t.NumRows()
	for i := 0; i < n; i++ {
		p := t.phys(i)
		slot := 0
		for j, cs := range codes {
			slot += int(cs[p]) * mults[j]
		}
		acc := slots[slot]
		if acc == nil {
			acc = newAccum(p)
			slots[slot] = acc
			order = append(order, acc)
		}
		acc.observe(ft, aidx, p)
	}
	return order
}

// aggregateDenseMorsels is the parallel dense-array kernel: the same
// four-phase structure as aggregateMorsels (local build, ordered merge,
// remap, grouped accumulation in global row order) with flat slot
// arrays standing in for the local and global hash maps.
func aggregateDenseMorsels(t *Table, gcols []*Vector, mults []int, span int, aidx []int, newAccum func(p int32) *accum, workers int) []*accum {
	ft := flattenedFor(t, aidx)
	codes := make([][]uint32, len(gcols))
	for j, g := range gcols {
		codes[j] = g.Flat().Dict
	}
	n := t.NumRows()
	morsels := (n + MorselRows - 1) / MorselRows
	type local struct {
		seen   []int32 // slot → local gid + 1 (0 = unseen)
		slots  []int32 // local gid → slot
		first  []int32 // local gid → physical row of first occurrence
		rowGid []int32 // morsel row → local gid
	}
	locals := make([]local, morsels)
	parallelMorsels(n, workers, func(m, lo, hi int) {
		l := local{seen: make([]int32, span), rowGid: make([]int32, hi-lo)}
		for i := lo; i < hi; i++ {
			p := t.phys(i)
			slot := 0
			for j, cs := range codes {
				slot += int(cs[p]) * mults[j]
			}
			gid := l.seen[slot] - 1
			if gid < 0 {
				gid = int32(len(l.slots))
				l.seen[slot] = gid + 1
				l.slots = append(l.slots, int32(slot))
				l.first = append(l.first, p)
			}
			l.rowGid[i-lo] = gid
		}
		locals[m] = l
	})

	global := make([]int32, span) // slot → global gid + 1
	var order []*accum
	remaps := make([][]int32, morsels)
	for m := range locals {
		l := &locals[m]
		remap := make([]int32, len(l.slots))
		for lid, slot := range l.slots {
			gid := global[slot] - 1
			if gid < 0 {
				gid = int32(len(order))
				global[slot] = gid + 1
				order = append(order, newAccum(l.first[lid]))
			}
			remap[lid] = gid
		}
		remaps[m] = remap
	}

	rowGid := make([]int32, n)
	parallelMorsels(n, workers, func(m, lo, hi int) {
		remap := remaps[m]
		lg := locals[m].rowGid
		for i := lo; i < hi; i++ {
			rowGid[i] = remap[lg[i-lo]]
		}
	})

	counts := make([]int32, len(order))
	for _, g := range rowGid {
		counts[g]++
	}
	starts := make([]int32, len(order)+1)
	for g, c := range counts {
		starts[g+1] = starts[g] + c
	}
	grouped := make([]int32, n)
	cursor := make([]int32, len(order))
	copy(cursor, starts[:len(order)])
	for i := 0; i < n; i++ {
		g := rowGid[i]
		grouped[cursor[g]] = t.phys(i)
		cursor[g]++
	}

	parallelRanges(len(order), workers, func(lo, hi int) {
		for g := lo; g < hi; g++ {
			acc := order[g]
			for _, p := range grouped[starts[g]:starts[g+1]] {
				acc.observe(ft, aidx, p)
			}
		}
	})
	return order
}
