// Multi-part table concatenation: the HTAP scan path answers queries
// over a base part, zero or more converted delta parts, and the
// unconverted delta tail, stitched back together in row order. The
// stitching preserves encodings where the parts agree — same-dictionary
// codes concatenate without decoding, run lists concatenate with
// shifted ends — merges dictionaries when parts disagree (an RCF4 part
// carries its own file-global dictionary), and degrades a column to raw
// strings only when some part is raw, mirroring the per-column rules
// the RCF4 reader applies across row groups.
package relal

import "sort"

// Concat returns a table with the given name and schema whose rows are
// the parts' rows in order. Columns are selected from each part by
// name (parts may carry wider schemas or different column orders, e.g.
// an in-memory part returning every column next to an RCFile part
// returning the requested subset). Views are compacted first; the
// result's vectors may alias a single part's, so the table is marked
// shared.
func Concat(name string, schema Schema, parts ...*Table) *Table {
	dense := make([]*Table, 0, len(parts))
	for _, p := range parts {
		if p.NumRows() == 0 {
			continue
		}
		if p.sel != nil {
			p = p.Compacted()
		}
		dense = append(dense, p)
	}
	if len(dense) == 0 {
		return NewTable(name, schema)
	}
	if len(dense) == 1 && schemaMatches(dense[0].Schema, schema) {
		return dense[0]
	}
	cols := make([]*Vector, len(schema))
	for ci, c := range schema {
		vecs := make([]*Vector, len(dense))
		for pi, p := range dense {
			vecs[pi] = p.Cols[p.Schema.Col(c.Name)]
		}
		cols[ci] = concatVecs(c.Type, vecs)
	}
	return NewTable(name, schema, cols...)
}

func schemaMatches(got, want Schema) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].Name != want[i].Name {
			return false
		}
	}
	return true
}

// concatVecs concatenates non-empty column vectors of one type.
func concatVecs(typ Type, vecs []*Vector) *Vector {
	if len(vecs) == 1 {
		return vecs[0]
	}
	if typ == Str {
		return concatStrVecs(vecs)
	}
	if allRuns(vecs) {
		return concatRuns(typ, vecs)
	}
	total := 0
	for _, v := range vecs {
		total += v.Len()
	}
	if typ == Int {
		out := make([]int64, 0, total)
		for _, v := range vecs {
			out = append(out, v.Flat().Ints...)
		}
		return IntsV(out)
	}
	out := make([]float64, 0, total)
	for _, v := range vecs {
		out = append(out, v.Flat().Floats...)
	}
	return FloatsV(out)
}

func allRuns(vecs []*Vector) bool {
	for _, v := range vecs {
		if v.RunEnds == nil {
			return false
		}
	}
	return true
}

// concatRuns concatenates run-encoded vectors: run values concatenate
// and each part's ends shift by the rows before it. Adjacent equal
// values across a part boundary stay separate runs — harmless, the run
// contract only requires strictly increasing ends.
func concatRuns(typ Type, vecs []*Vector) *Vector {
	totalRuns := 0
	for _, v := range vecs {
		totalRuns += v.NumRuns()
	}
	ends := make([]int32, 0, totalRuns)
	base := int32(0)
	for _, v := range vecs {
		for _, e := range v.RunEnds {
			ends = append(ends, base+e)
		}
		base += int32(v.Len())
	}
	if typ == Int {
		xs := make([]int64, 0, totalRuns)
		for _, v := range vecs {
			xs = append(xs, v.Ints...)
		}
		return IntRunsV(xs, ends)
	}
	xs := make([]float64, 0, totalRuns)
	for _, v := range vecs {
		xs = append(xs, v.Floats...)
	}
	return FloatRunsV(xs, ends)
}

// concatStrVecs concatenates Str vectors. All parts dict-encoded over
// one dictionary: codes concatenate (run lists stay run lists). All
// dict but dictionaries differ: the dictionaries merge into one sorted
// union and each part's codes remap. Any raw part: the whole column
// degrades to raw strings — the same rule the RCF4 reader applies when
// any chunk of a column was written plain.
func concatStrVecs(vecs []*Vector) *Vector {
	allDict, oneDict := true, true
	for _, v := range vecs {
		if !v.IsDict() {
			allDict = false
			break
		}
		if !sameDict(v, vecs[0]) {
			oneDict = false
		}
	}
	if !allDict {
		total := 0
		for _, v := range vecs {
			total += v.Len()
		}
		out := make([]string, 0, total)
		for _, v := range vecs {
			out = append(out, v.DecodeStrs()...)
		}
		return StrsV(out)
	}
	if oneDict && allRuns(vecs) {
		totalRuns := 0
		for _, v := range vecs {
			totalRuns += v.NumRuns()
		}
		codes := make([]uint32, 0, totalRuns)
		ends := make([]int32, 0, totalRuns)
		base := int32(0)
		for _, v := range vecs {
			codes = append(codes, v.Dict...)
			for _, e := range v.RunEnds {
				ends = append(ends, base+e)
			}
			base += int32(v.Len())
		}
		return DictRunsV(codes, ends, vecs[0].DictVals)
	}
	total := 0
	for _, v := range vecs {
		total += v.Len()
	}
	if oneDict {
		codes := make([]uint32, 0, total)
		for _, v := range vecs {
			codes = append(codes, v.Flat().Dict...)
		}
		return DictV(codes, vecs[0].DictVals)
	}
	// Dictionaries differ: merge into one sorted union and remap.
	merged, remaps := mergeDicts(vecs)
	codes := make([]uint32, 0, total)
	for pi, v := range vecs {
		remap := remaps[pi]
		for _, c := range v.Flat().Dict {
			codes = append(codes, remap[c])
		}
	}
	return DictV(codes, merged)
}

// mergeDicts unions the parts' sorted dictionaries into one sorted,
// deduplicated dictionary and returns, per part, the old-code → new-code
// remap table.
func mergeDicts(vecs []*Vector) ([]string, [][]uint32) {
	var union []string
	for _, v := range vecs {
		union = append(union, v.DictVals...)
	}
	sort.Strings(union)
	merged := union[:0]
	for i, s := range union {
		if i == 0 || s != merged[len(merged)-1] {
			merged = append(merged, s)
		}
	}
	remaps := make([][]uint32, len(vecs))
	for pi, v := range vecs {
		remap := make([]uint32, len(v.DictVals))
		for code, s := range v.DictVals {
			remap[code] = uint32(sort.SearchStrings(merged, s))
		}
		remaps[pi] = remap
	}
	return merged, remaps
}

// Head returns a zero-copy table over t's first n rows (t itself when n
// covers the table). t must be dense (no selection vector) with flat or
// dict vectors — the base-table shapes the generator emits. The HTAP
// store uses it to split a generated table into the base part that
// stays resident and the held-back suffix that replays through the
// write path.
func Head(t *Table, n int) *Table {
	if n >= t.NumRows() {
		return t
	}
	if t.sel != nil {
		panic("relal: Head of a view")
	}
	cols := make([]*Vector, len(t.Cols))
	for i, v := range t.Cols {
		v = v.Flat()
		switch {
		case v.Kind == Int:
			cols[i] = IntsV(v.Ints[:n])
		case v.Kind == Float:
			cols[i] = FloatsV(v.Floats[:n])
		case v.DictVals != nil:
			cols[i] = DictV(v.Dict[:n], v.DictVals)
		default:
			cols[i] = StrsV(v.Strs[:n])
		}
	}
	return NewTable(t.Name, t.Schema, cols...)
}
