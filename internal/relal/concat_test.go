package relal

import (
	"reflect"
	"testing"
)

func concatSchema() Schema {
	return Schema{
		{Name: "k", Type: Int},
		{Name: "x", Type: Float},
		{Name: "s", Type: Str},
	}
}

func tableRows(t *Table) []Row { return RowsOf(t) }

// TestConcatBasic pins the core contract: rows of the parts in order,
// regardless of each part's physical encoding.
func TestConcatBasic(t *testing.T) {
	sch := concatSchema()
	a := NewTable("t", sch,
		IntsV([]int64{1, 2}),
		FloatsV([]float64{0.5, 1.5}),
		StrsV([]string{"x", "y"}),
	)
	b := NewTable("t", sch,
		IntsV([]int64{3}),
		FloatsV([]float64{2.5}),
		StrsV([]string{"z"}),
	)
	got := Concat("t", sch, a, b)
	want := []Row{{int64(1), 0.5, "x"}, {int64(2), 1.5, "y"}, {int64(3), 2.5, "z"}}
	if !reflect.DeepEqual(tableRows(got), want) {
		t.Errorf("rows = %v, want %v", tableRows(got), want)
	}
	if got.NumRows() != 3 {
		t.Errorf("NumRows = %d, want 3", got.NumRows())
	}
}

// TestConcatEmptyParts: empty parts vanish; a single surviving part is
// returned as-is (no copying).
func TestConcatEmptyParts(t *testing.T) {
	sch := concatSchema()
	empty := NewTable("t", sch, IntsV(nil), FloatsV(nil), StrsV(nil))
	a := NewTable("t", sch,
		IntsV([]int64{7}), FloatsV([]float64{7}), StrsV([]string{"q"}))
	got := Concat("t", sch, empty, a, empty)
	if got != a {
		t.Errorf("single non-empty part should be returned unchanged")
	}
	if allEmpty := Concat("t", sch, empty, empty); allEmpty.NumRows() != 0 {
		t.Errorf("all-empty concat has %d rows", allEmpty.NumRows())
	}
}

// TestConcatSameDict: parts sharing one dictionary concatenate codes
// without decoding, and the result stays dictionary-encoded.
func TestConcatSameDict(t *testing.T) {
	sch := Schema{{Name: "s", Type: Str}}
	vals := []string{"AIR", "RAIL", "SHIP"}
	a := NewTable("t", sch, DictV([]uint32{0, 2}, vals))
	b := NewTable("t", sch, DictV([]uint32{1, 1, 0}, vals))
	got := Concat("t", sch, a, b)
	v := got.Cols[0]
	if !v.IsDict() {
		t.Fatalf("same-dict concat lost dictionary encoding")
	}
	if &v.DictVals[0] != &vals[0] {
		t.Errorf("same-dict concat copied the dictionary")
	}
	want := []string{"AIR", "SHIP", "RAIL", "RAIL", "AIR"}
	if !reflect.DeepEqual(v.DecodeStrs(), want) {
		t.Errorf("values = %v, want %v", v.DecodeStrs(), want)
	}
}

// TestConcatMergedDicts: parts with different dictionaries merge into a
// sorted union with codes remapped — the converted-part next to
// base-part case in the HTAP view.
func TestConcatMergedDicts(t *testing.T) {
	sch := Schema{{Name: "s", Type: Str}}
	a := NewTable("t", sch, DictV([]uint32{0, 1}, []string{"AIR", "SHIP"}))
	b := NewTable("t", sch, DictV([]uint32{1, 0}, []string{"MAIL", "RAIL"}))
	got := Concat("t", sch, a, b)
	v := got.Cols[0]
	if !v.IsDict() {
		t.Fatalf("merged concat lost dictionary encoding")
	}
	wantDict := []string{"AIR", "MAIL", "RAIL", "SHIP"}
	if !reflect.DeepEqual(v.DictVals, wantDict) {
		t.Errorf("dict = %v, want %v", v.DictVals, wantDict)
	}
	want := []string{"AIR", "SHIP", "RAIL", "MAIL"}
	if !reflect.DeepEqual(v.DecodeStrs(), want) {
		t.Errorf("values = %v, want %v", v.DecodeStrs(), want)
	}
}

// TestConcatRawDegrade: any raw-string part degrades the column to raw
// strings with identical values (the out-of-dictionary delta tail case).
func TestConcatRawDegrade(t *testing.T) {
	sch := Schema{{Name: "s", Type: Str}}
	a := NewTable("t", sch, DictV([]uint32{1, 0}, []string{"AIR", "SHIP"}))
	b := NewTable("t", sch, StrsV([]string{"TRUCK"}))
	got := Concat("t", sch, a, b)
	v := got.Cols[0]
	if v.IsDict() {
		t.Errorf("raw part should degrade the concat to raw strings")
	}
	want := []string{"SHIP", "AIR", "TRUCK"}
	if !reflect.DeepEqual(v.DecodeStrs(), want) {
		t.Errorf("values = %v, want %v", v.DecodeStrs(), want)
	}
}

// TestConcatRuns: all-runs parts concatenate run lists with shifted
// ends instead of expanding.
func TestConcatRuns(t *testing.T) {
	sch := Schema{{Name: "k", Type: Int}}
	a := NewTable("t", sch, IntRunsV([]int64{5, 6}, []int32{2, 3}))
	b := NewTable("t", sch, IntRunsV([]int64{6}, []int32{2}))
	got := Concat("t", sch, a, b)
	v := got.Cols[0]
	if !v.IsRuns() {
		t.Fatalf("runs concat expanded to flat")
	}
	if v.NumRuns() != 3 {
		t.Errorf("NumRuns = %d, want 3", v.NumRuns())
	}
	want := []int64{5, 5, 6, 6, 6}
	if !reflect.DeepEqual(v.Flat().Ints, want) {
		t.Errorf("values = %v, want %v", v.Flat().Ints, want)
	}
	// Mixed runs + flat falls back to flat with the same values.
	c := NewTable("t", sch, IntsV([]int64{9}))
	mixed := Concat("t", sch, a, c)
	if mixed.Cols[0].IsRuns() {
		t.Errorf("mixed runs+flat concat should be flat")
	}
	if wantM := []int64{5, 5, 6, 9}; !reflect.DeepEqual(mixed.Cols[0].Ints, wantM) {
		t.Errorf("mixed values = %v, want %v", mixed.Cols[0].Ints, wantM)
	}
}

// TestConcatByNameSelection: parts whose schemas differ in column order
// and width (a full-schema in-memory part next to a subset-schema
// rcfile part) are matched by column name.
func TestConcatByNameSelection(t *testing.T) {
	full := Schema{{Name: "k", Type: Int}, {Name: "x", Type: Float}, {Name: "s", Type: Str}}
	sub := Schema{{Name: "s", Type: Str}, {Name: "k", Type: Int}}
	a := NewTable("t", full,
		IntsV([]int64{1}), FloatsV([]float64{0.5}), StrsV([]string{"x"}))
	b := NewTable("t", sub, StrsV([]string{"y"}), IntsV([]int64{2}))
	out := Schema{{Name: "k", Type: Int}, {Name: "s", Type: Str}}
	got := Concat("t", out, a, b)
	want := []Row{{int64(1), "x"}, {int64(2), "y"}}
	if !reflect.DeepEqual(tableRows(got), want) {
		t.Errorf("rows = %v, want %v", tableRows(got), want)
	}
}

// TestConcatCompactsViews: a filtered view part contributes only its
// selected rows.
func TestConcatCompactsViews(t *testing.T) {
	sch := Schema{{Name: "k", Type: Int}}
	base := NewTable("t", sch, IntsV([]int64{1, 2, 3, 4}))
	e := &Exec{}
	odd := e.Filter(base, func(i int) bool { return base.IntCol("k").Get(i)%2 == 1 })
	b := NewTable("t", sch, IntsV([]int64{9}))
	got := Concat("t", sch, odd, b)
	want := []int64{1, 3, 9}
	if !reflect.DeepEqual(got.Cols[0].Ints, want) {
		t.Errorf("values = %v, want %v", got.Cols[0].Ints, want)
	}
}

// TestHead pins the zero-copy prefix used to hold back write traffic.
func TestHead(t *testing.T) {
	sch := concatSchema()
	base := NewTable("t", sch,
		IntsV([]int64{1, 2, 3}),
		FloatsV([]float64{0.5, 1.5, 2.5}),
		EncodeDict([]string{"x", "y", "x"}),
	)
	h := Head(base, 2)
	if h.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", h.NumRows())
	}
	want := []Row{{int64(1), 0.5, "x"}, {int64(2), 1.5, "y"}}
	if !reflect.DeepEqual(tableRows(h), want) {
		t.Errorf("rows = %v, want %v", tableRows(h), want)
	}
	if !h.Cols[2].IsDict() {
		t.Errorf("Head lost dictionary encoding")
	}
	if full := Head(base, 3); full != base {
		t.Errorf("Head(t, NumRows) should return t unchanged")
	}
}
