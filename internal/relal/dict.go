// Dictionary-encoded string columns. A Str vector may carry its cells
// as uint32 codes into a shared, sorted dictionary instead of a
// []string: code order equals value order, so every comparison a kernel
// makes on the strings — equality in a filter, a range predicate, a
// sort key, a group-by key — can run on the codes without ever touching
// the bytes. TPC-H is full of such columns (l_returnflag has 3 values,
// l_shipmode 7, o_orderpriority 5, dates ~2.4k), which is where the
// paper's RCFile CPU burn came from: decompressing and comparing raw
// strings a column store never materializes.
//
// The encoding is transparent: a dict vector has Kind == Str, decodes
// to exactly the same strings, and every operator output is
// byte-identical to the raw-string execution (the differential suite in
// dict_test.go locks this at several worker counts). Filters get the
// real win through the StrVec predicate factories below, which
// translate a string predicate into a code comparison once per vector:
// equality becomes one code probe, ordering becomes a code threshold
// (the dictionary is sorted), and prefix matching becomes a code range.
package relal

import (
	"sort"
	"strings"
)

// IsDict reports whether v stores its strings dictionary-encoded.
// DictVals is the marker so an empty dict vector (zero codes, zero
// values) still counts.
func (v *Vector) IsDict() bool { return v.Kind == Str && v.DictVals != nil }

// DictV wraps pre-built codes and a sorted dictionary as a column
// vector (no copy). Every code must index vals and vals must be sorted
// ascending with no duplicates — code order is value order.
func DictV(codes []uint32, vals []string) *Vector {
	if vals == nil {
		vals = []string{}
	}
	return &Vector{Kind: Str, Dict: codes, DictVals: vals}
}

// EncodeDict dictionary-encodes xs: the distinct values become the
// sorted dictionary and each cell its code. The input slice is not
// retained.
func EncodeDict(xs []string) *Vector {
	seen := make(map[string]uint32)
	vals := []string{}
	for _, s := range xs {
		if _, ok := seen[s]; !ok {
			seen[s] = 0
			vals = append(vals, s)
		}
	}
	sort.Strings(vals)
	for i, v := range vals {
		seen[v] = uint32(i)
	}
	codes := make([]uint32, len(xs))
	for i, s := range xs {
		codes[i] = seen[s]
	}
	return DictV(codes, vals)
}

// StrAt returns the string at physical index p, decoding a dict vector
// (run vectors expand lazily).
func (v *Vector) StrAt(p int32) string {
	if v.RunEnds != nil {
		v = v.Flat()
	}
	if v.DictVals != nil {
		return v.DictVals[v.Dict[p]]
	}
	return v.Strs[p]
}

// DecodeStrs materializes the vector's strings (the output-boundary
// decode). For a raw vector this is the backing slice itself, no copy.
func (v *Vector) DecodeStrs() []string {
	if v.RunEnds != nil {
		v = v.Flat()
	}
	if !v.IsDict() {
		return v.Strs
	}
	out := make([]string, len(v.Dict))
	for i, c := range v.Dict {
		out[i] = v.DictVals[c]
	}
	return out
}

// decodeToRaw converts a dict vector to plain strings in place. Callers
// must own the vector (AppendRow privatizes first).
func (v *Vector) decodeToRaw() {
	if !v.IsDict() && v.RunEnds == nil {
		return
	}
	v.Strs = v.DecodeStrs()
	v.Dict, v.DictVals, v.RunEnds = nil, nil, nil
}

// sameDict reports whether two dict vectors share one dictionary (the
// same backing array), which makes their codes directly comparable.
func sameDict(a, b *Vector) bool {
	if len(a.DictVals) != len(b.DictVals) {
		return false
	}
	return len(a.DictVals) == 0 || &a.DictVals[0] == &b.DictVals[0]
}

// DictCodeWidth returns the packed on-disk bytes per code for a
// dictionary of n values: 1, 2, or 4. This is the width RCF3 chunks
// store and the width the scan byte accounting charges, so the cost
// models see the same encoded bytes the storage writes.
func DictCodeWidth(n int) int {
	switch {
	case n <= 1<<8:
		return 1
	case n <= 1<<16:
		return 2
	}
	return 4
}

// DictEncodedBytes is the modeled RCF3 chunk size of rows cells drawn
// from the given dictionary: the dictionary itself (u32 count, then
// length-prefixed values, one code-width byte) plus the packed codes.
// The scan byte accounting and cmd/scanstats both use it, so the
// modeled ratio and the charged bytes come from one formula.
func DictEncodedBytes(vals []string, rows int) int64 {
	b := int64(4 + 1) // dict count + code width byte
	for _, s := range vals {
		b += 4 + int64(len(s))
	}
	return b + int64(rows)*int64(DictCodeWidth(len(vals)))
}

// lowerBound returns the first index in the sorted dictionary with
// vals[i] >= s — the code threshold for >= / < predicates.
func lowerBound(vals []string, s string) uint32 {
	return uint32(sort.SearchStrings(vals, s))
}

// upperBound returns the first index with vals[i] > s — the threshold
// for > / <= predicates.
func upperBound(vals []string, s string) uint32 {
	return uint32(sort.Search(len(vals), func(i int) bool { return vals[i] > s }))
}

// The StrVec predicate factories below compile a string predicate into
// a Pred (pred.go). On a dict-backed accessor the string comparison
// happens once, against the dictionary, and the per-row closure
// compares uint32 codes; on a run-encoded column the Pred additionally
// carries the run structure so Exec.Where decides whole runs at a
// time; on a raw accessor the closure compares strings — the row set
// is identical in every case, so queries use the factories
// unconditionally.

// isDictBacked reports whether the accessor can compare codes (flat
// dict or run-encoded dict column).
func (v StrVec) isDictBacked() bool { return v.dict != nil || v.runs != nil }

// codePred builds a code-interval predicate [lo, hi) over a
// dict-backed accessor.
func (v StrVec) codePred(lo, hi uint32) Pred {
	if lo >= hi {
		return Pred{at: func(int) bool { return false }}
	}
	if v.runs != nil {
		rv, sel := v.runs, v.sel
		if sel == nil {
			codes := rv.Dict
			return Pred{
				at:      func(i int) bool { c := rv.Flat().Dict[i]; return c >= lo && c < hi },
				runEnds: rv.RunEnds,
				runAt:   func(k int) bool { c := codes[k]; return c >= lo && c < hi },
			}
		}
		return Pred{at: func(i int) bool { c := rv.Flat().Dict[sel[i]]; return c >= lo && c < hi }}
	}
	dict, sel := v.dict, v.sel
	if sel == nil {
		return Pred{at: func(i int) bool { c := dict[i]; return c >= lo && c < hi }}
	}
	return Pred{at: func(i int) bool { c := dict[sel[i]]; return c >= lo && c < hi }}
}

// codeTest builds a Pred from an arbitrary per-code test (the In
// bitmap) over a dict-backed accessor.
func (v StrVec) codeTest(test func(c uint32) bool) Pred {
	if v.runs != nil {
		rv, sel := v.runs, v.sel
		if sel == nil {
			codes := rv.Dict
			return Pred{
				at:      func(i int) bool { return test(rv.Flat().Dict[i]) },
				runEnds: rv.RunEnds,
				runAt:   func(k int) bool { return test(codes[k]) },
			}
		}
		return Pred{at: func(i int) bool { return test(rv.Flat().Dict[sel[i]]) }}
	}
	dict, sel := v.dict, v.sel
	if sel == nil {
		return Pred{at: func(i int) bool { return test(dict[i]) }}
	}
	return Pred{at: func(i int) bool { return test(dict[sel[i]]) }}
}

// rawPred builds a string predicate over a raw accessor.
func (v StrVec) rawPred(ok func(s string) bool) Pred {
	data, sel := v.data, v.sel
	if sel == nil {
		return Pred{at: func(i int) bool { return ok(data[i]) }}
	}
	return Pred{at: func(i int) bool { return ok(data[sel[i]]) }}
}

// Eq returns a predicate for Get(i) == val. Dict-backed: one code probe
// per row.
func (v StrVec) Eq(val string) Pred {
	if v.isDictBacked() {
		c := lowerBound(v.vals, val)
		if int(c) >= len(v.vals) || v.vals[c] != val {
			return Pred{at: func(int) bool { return false }}
		}
		return v.codePred(c, c+1)
	}
	return v.rawPred(func(s string) bool { return s == val })
}

// Ne returns a predicate for Get(i) != val.
func (v StrVec) Ne(val string) Pred {
	if v.isDictBacked() {
		c := lowerBound(v.vals, val)
		if int(c) >= len(v.vals) || v.vals[c] != val {
			return Pred{at: func(int) bool { return true }}
		}
		return v.codeTest(func(x uint32) bool { return x != c })
	}
	return v.rawPred(func(s string) bool { return s != val })
}

// Lt returns a predicate for Get(i) < val (code threshold on dict).
func (v StrVec) Lt(val string) Pred {
	if v.isDictBacked() {
		return v.codePred(0, lowerBound(v.vals, val))
	}
	return v.rawPred(func(s string) bool { return s < val })
}

// Le returns a predicate for Get(i) <= val.
func (v StrVec) Le(val string) Pred {
	if v.isDictBacked() {
		return v.codePred(0, upperBound(v.vals, val))
	}
	return v.rawPred(func(s string) bool { return s <= val })
}

// Ge returns a predicate for Get(i) >= val.
func (v StrVec) Ge(val string) Pred {
	if v.isDictBacked() {
		return v.codePred(lowerBound(v.vals, val), uint32(len(v.vals)))
	}
	return v.rawPred(func(s string) bool { return s >= val })
}

// Gt returns a predicate for Get(i) > val.
func (v StrVec) Gt(val string) Pred {
	if v.isDictBacked() {
		return v.codePred(upperBound(v.vals, val), uint32(len(v.vals)))
	}
	return v.rawPred(func(s string) bool { return s > val })
}

// Range returns a predicate for lo <= Get(i) < hi — the half-open
// interval every TPC-H date-window filter uses.
func (v StrVec) Range(lo, hi string) Pred {
	if v.isDictBacked() {
		return v.codePred(lowerBound(v.vals, lo), lowerBound(v.vals, hi))
	}
	return v.rawPred(func(s string) bool { return s >= lo && s < hi })
}

// Between returns a predicate for lo <= Get(i) <= hi (both inclusive).
func (v StrVec) Between(lo, hi string) Pred {
	if v.isDictBacked() {
		return v.codePred(lowerBound(v.vals, lo), upperBound(v.vals, hi))
	}
	return v.rawPred(func(s string) bool { return s >= lo && s <= hi })
}

// In returns a predicate for Get(i) ∈ set. Dict-backed: a bitmap over
// the dictionary, one indexed load per row (or per run).
func (v StrVec) In(set ...string) Pred {
	if v.isDictBacked() {
		member := make([]bool, len(v.vals))
		any := false
		for _, val := range set {
			c := lowerBound(v.vals, val)
			if int(c) < len(v.vals) && v.vals[c] == val {
				member[c] = true
				any = true
			}
		}
		if !any {
			return Pred{at: func(int) bool { return false }}
		}
		return v.codeTest(func(c uint32) bool { return member[c] })
	}
	m := make(map[string]bool, len(set))
	for _, val := range set {
		m[val] = true
	}
	return v.rawPred(func(s string) bool { return m[s] })
}

// HasPrefix returns a predicate for strings.HasPrefix(Get(i), prefix).
// In a sorted dictionary the values sharing a prefix are contiguous, so
// the dict-backed predicate is a code range.
func (v StrVec) HasPrefix(prefix string) Pred {
	if v.isDictBacked() {
		lo := lowerBound(v.vals, prefix)
		hi := lo
		for int(hi) < len(v.vals) && strings.HasPrefix(v.vals[hi], prefix) {
			hi++
		}
		return v.codePred(lo, hi)
	}
	return v.rawPred(func(s string) bool { return strings.HasPrefix(s, prefix) })
}
