package relal

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"
)

// dictPool is the value pool the differential tables draw from: heavy
// duplication, an empty-string sentinel, shared prefixes, and values
// that straddle each other lexicographically.
var dictPool = []string{
	"", "A", "AB", "ABC", "N", "R", "REG AIR", "REG", "air", "mail",
	"1-URGENT", "2-HIGH", "1994-01-01", "1994-06-15", "1995-01-01",
}

// dictPair builds the same logical table twice: once with raw string
// columns, once with the Str columns dictionary-encoded. Every operator
// result over the two must render identically.
func dictPair(rows int, seed int64) (raw, dict *Table) {
	rng := rand.New(rand.NewSource(seed))
	ss := make([]string, rows)
	s2 := make([]string, rows)
	xs := make([]int64, rows)
	for i := 0; i < rows; i++ {
		ss[i] = dictPool[rng.Intn(len(dictPool))]
		s2[i] = dictPool[rng.Intn(len(dictPool))]
		xs[i] = rng.Int63n(50)
	}
	sch := Schema{
		{Name: "s", Type: Str},
		{Name: "s2", Type: Str},
		{Name: "x", Type: Int},
	}
	raw = NewTable("t", sch, StrsV(ss), StrsV(s2), IntsV(xs))
	dict = NewTable("t", sch, EncodeDict(ss), EncodeDict(s2), IntsV(xs))
	return raw, dict
}

func dictWorkerCounts() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// TestDictDifferential runs every kernel over raw-string and
// dict-encoded copies of randomized low-cardinality data, at several
// worker-pool sizes, and requires bit-identical rendered output — the
// encoding must be invisible to every operator, including through
// views, empty inputs, and the "" sentinel.
func TestDictDifferential(t *testing.T) {
	oldJoin, oldSort := joinMorselRows, sortMorselRows
	joinMorselRows, sortMorselRows = 8, 8
	defer func() { joinMorselRows, sortMorselRows = oldJoin, oldSort }()

	for _, rows := range []int{0, 1, 37, 500} {
		raw, dict := dictPair(rows, int64(rows)+1)
		rawR, dictR := dictPair(rows/2+3, int64(rows)+2)
		for _, workers := range dictWorkerCounts() {
			name := fmt.Sprintf("rows=%d/workers=%d", rows, workers)
			e := &Exec{Parallelism: workers}

			// Filter through the predicate factories (code ranges on the
			// dict side) and through Get-based closures.
			fr := e.Where(raw, raw.StrCol("s").Range("AB", "REG"))
			fd := e.Where(dict, dict.StrCol("s").Range("AB", "REG"))
			if render(fr) != render(fd) {
				t.Fatalf("%s: Filter(Range) drifts", name)
			}
			gr := raw.StrCol("s2")
			gd := dict.StrCol("s2")
			if render(e.Filter(raw, func(i int) bool { return gr.Get(i) > "R" })) !=
				render(e.Filter(dict, func(i int) bool { return gd.Get(i) > "R" })) {
				t.Fatalf("%s: Filter(Get) drifts", name)
			}

			// Aggregate: dict group keys (codes), string min/max, sums.
			aggs := []AggSpec{
				{Fn: "sum", Col: "x", As: "sx"},
				{Fn: "count", Col: "*", As: "n"},
				{Fn: "min", Col: "s2", As: "mn"},
				{Fn: "max", Col: "s2", As: "mx"},
			}
			ar := e.Aggregate(raw, []string{"s"}, aggs)
			ad := e.Aggregate(dict, []string{"s"}, aggs)
			if render(ar) != render(ad) {
				t.Fatalf("%s: Aggregate drifts", name)
			}
			// ...and over views (aggregate of a filtered table).
			if render(e.Aggregate(fr, []string{"s", "s2"}, aggs[:2])) !=
				render(e.Aggregate(fd, []string{"s", "s2"}, aggs[:2])) {
				t.Fatalf("%s: Aggregate-over-view drifts", name)
			}

			// Sort and TopK on (str, int) keys; dict compares codes.
			keys := []OrderSpec{{Col: "s", Desc: true}, {Col: "x"}}
			if render(e.Sort(raw, keys...)) != render(e.Sort(dict, keys...)) {
				t.Fatalf("%s: Sort drifts", name)
			}
			if render(e.TopK(raw, rows/3+1, keys...)) != render(e.TopK(dict, rows/3+1, keys...)) {
				t.Fatalf("%s: TopK drifts", name)
			}

			// Joins on the Str key: raw⋈raw is the reference; dict⋈dict
			// with separate dictionaries exercises the decode path, and
			// dict⋈dict over one shared dictionary the code fast path.
			want := render(e.Join(raw, rawR, "s", "s"))
			if got := render(e.Join(dict, dictR, "s", "s")); got != want {
				t.Fatalf("%s: Join(dict,dict') drifts", name)
			}
			if render(e.SemiJoin(raw, rawR, "s", "s")) != render(e.SemiJoin(dict, dictR, "s", "s")) {
				t.Fatalf("%s: SemiJoin drifts", name)
			}
			if render(e.AntiJoin(raw, rawR, "s", "s")) != render(e.AntiJoin(dict, dictR, "s", "s")) {
				t.Fatalf("%s: AntiJoin drifts", name)
			}
		}
	}
}

// TestDictSharedDictionaryJoinMatchesDecoded pins the code fast path:
// joining two views over one dict vector must equal the decoded-string
// join exactly.
func TestDictSharedDictionaryJoinMatchesDecoded(t *testing.T) {
	_, dict := dictPair(300, 9)
	raw, _ := dictPair(300, 9)
	e := &Exec{Parallelism: 3}
	sv := dict.StrCol("s")
	left := e.Where(dict, sv.Lt("R"))
	right := e.Where(dict, sv.Ge("AB"))
	rv := raw.StrCol("s")
	wantL := e.Filter(raw, func(i int) bool { return rv.Get(i) < "R" })
	wantR := e.Filter(raw, func(i int) bool { return rv.Get(i) >= "AB" })
	if render(e.Join(left, right, "s", "s")) != render(e.Join(wantL, wantR, "s", "s")) {
		t.Fatal("shared-dictionary join drifts from decoded join")
	}
	if render(e.SemiJoin(left, right, "s", "s")) != render(e.SemiJoin(wantL, wantR, "s", "s")) {
		t.Fatal("shared-dictionary semi join drifts from decoded join")
	}
	if render(e.AntiJoin(left, right, "s", "s")) != render(e.AntiJoin(wantL, wantR, "s", "s")) {
		t.Fatal("shared-dictionary anti join drifts from decoded join")
	}
}

// TestDictPredicateFactories checks every StrVec factory against the
// plain string semantics, on both representations, for boundary values
// that are present, absent, below the minimum, and past the maximum.
func TestDictPredicateFactories(t *testing.T) {
	raw, dict := dictPair(200, 17)
	probes := append([]string{}, dictPool...)
	probes = append(probes, "0", "REG AIRX", "zzz", "AA", "1994")
	for _, tb := range []*Table{raw, dict} {
		v := tb.StrCol("s")
		for _, p := range probes {
			for i := 0; i < tb.NumRows(); i++ {
				s := v.Get(i)
				checks := []struct {
					name string
					got  bool
					want bool
				}{
					{"Eq", v.Eq(p).At(i), s == p},
					{"Ne", v.Ne(p).At(i), s != p},
					{"Lt", v.Lt(p).At(i), s < p},
					{"Le", v.Le(p).At(i), s <= p},
					{"Gt", v.Gt(p).At(i), s > p},
					{"Ge", v.Ge(p).At(i), s >= p},
					{"Range", v.Range("AB", p).At(i), s >= "AB" && s < p},
					{"Between", v.Between(p, "REG").At(i), s >= p && s <= "REG"},
					{"In", v.In(p, "R").At(i), s == p || s == "R"},
					{"HasPrefix", v.HasPrefix(p).At(i), strings.HasPrefix(s, p)},
				}
				for _, c := range checks {
					if c.got != c.want {
						t.Fatalf("%s(%q) at row %d (%q): got %v want %v", c.name, p, i, s, c.got, c.want)
					}
				}
			}
		}
	}
}

// TestDictParallelAggregateCrossesMorsels pushes a dict table past the
// fixed scan-morsel size so the morsel-parallel aggregate kernel (not
// just the serial fallback) runs over codes.
func TestDictParallelAggregateCrossesMorsels(t *testing.T) {
	rows := 2*MorselRows + 77
	raw, dict := dictPair(rows, 23)
	aggs := []AggSpec{{Fn: "sum", Col: "x", As: "sx"}, {Fn: "min", Col: "s2", As: "mn"}}
	want := render((&Exec{Parallelism: 1}).Aggregate(raw, []string{"s"}, aggs))
	for _, workers := range []int{1, 3, 8} {
		e := &Exec{Parallelism: workers}
		if got := render(e.Aggregate(dict, []string{"s"}, aggs)); got != want {
			t.Fatalf("workers=%d: parallel dict aggregate drifts", workers)
		}
	}
}

// TestEncodeDictRoundTrip: codes decode back to the input, the
// dictionary is sorted and duplicate-free, and Len/StrAt agree.
func TestEncodeDictRoundTrip(t *testing.T) {
	xs := []string{"b", "", "a", "b", "c", "a", ""}
	v := EncodeDict(xs)
	if !v.IsDict() {
		t.Fatal("EncodeDict must return a dict vector")
	}
	if v.Len() != len(xs) {
		t.Fatalf("Len = %d, want %d", v.Len(), len(xs))
	}
	if !sort.StringsAreSorted(v.DictVals) {
		t.Fatalf("dictionary not sorted: %q", v.DictVals)
	}
	for i := 1; i < len(v.DictVals); i++ {
		if v.DictVals[i] == v.DictVals[i-1] {
			t.Fatalf("duplicate dictionary value %q", v.DictVals[i])
		}
	}
	for i, want := range xs {
		if got := v.StrAt(int32(i)); got != want {
			t.Fatalf("cell %d = %q, want %q", i, got, want)
		}
	}
	got := v.DecodeStrs()
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("DecodeStrs[%d] = %q, want %q", i, got[i], xs[i])
		}
	}
}

// TestDictAvgRowBytesSmaller: the encoded width the cost models see
// must shrink under dictionary encoding for duplicated strings.
func TestDictAvgRowBytesSmaller(t *testing.T) {
	raw, dict := dictPair(1000, 31)
	if rb, db := raw.AvgRowBytes(), dict.AvgRowBytes(); db >= rb {
		t.Errorf("dict AvgRowBytes %d, want < raw %d", db, rb)
	}
}

// TestDictAppendRowFallsBackToRaw: AppendRow with a value outside the
// dictionary privatizes and decodes rather than corrupting the shared
// dictionary.
func TestDictAppendRowFallsBackToRaw(t *testing.T) {
	_, dict := dictPair(10, 41)
	beforeVals := dict.Cols[0].DictVals
	beforeLen := len(beforeVals)
	want := append(RowsOf(dict), Row{"totally new value", "x", int64(1)})
	AppendRow(dict, Row{"totally new value", "x", int64(1)})
	got := RowsOf(dict)
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		for c := range want[i] {
			if got[i][c] != want[i][c] {
				t.Fatalf("cell (%d,%d) = %v, want %v", i, c, got[i][c], want[i][c])
			}
		}
	}
	if len(beforeVals) != beforeLen {
		t.Error("AppendRow mutated the shared dictionary")
	}
}

// TestDictZoneOf: zone maps over dict vectors carry both code and
// string bounds, and they agree through the dictionary.
func TestDictZoneOf(t *testing.T) {
	v := EncodeDict([]string{"m", "c", "x", "c", "m"})
	z := ZoneOf(v, 1, 4) // cells c, x, c
	if !z.HasCodes {
		t.Fatal("dict zone must carry codes")
	}
	if z.StrMin != "c" || z.StrMax != "x" {
		t.Errorf("zone strings = [%q, %q]", z.StrMin, z.StrMax)
	}
	if v.DictVals[z.CodeMin] != z.StrMin || v.DictVals[z.CodeMax] != z.StrMax {
		t.Errorf("zone codes disagree with strings: [%d, %d]", z.CodeMin, z.CodeMax)
	}
}
