package relal

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// compressRuns turns per-row values into the (vals, ends) run form the
// RCF4 decoder produces: one entry per maximal run of equal values.
func compressRuns[T comparable](xs []T) ([]T, []int32) {
	var vals []T
	var ends []int32
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			vals = append(vals, x)
			ends = append(ends, int32(i+1))
		} else {
			ends[len(ends)-1] = int32(i + 1)
		}
	}
	return vals, ends
}

// encodingPair builds the same logical table twice: flat vectors versus
// run-encoded vectors (each column compressed independently, exactly as
// the RCF4 reader would hand them over). runLen ~ the expected run
// length; runLen >= rows makes every column a single run.
func encodingPair(rows, runLen int, seed int64) (flat, runs *Table) {
	rng := rand.New(rand.NewSource(seed))
	ks := make([]int64, rows)
	fs := make([]float64, rows)
	ss := make([]string, rows)
	ys := make([]int64, rows)
	k := int64(0)
	for i := 0; i < rows; i++ {
		if i%runLen == 0 {
			k += rng.Int63n(3) // sorted with plateaus: RLE/delta shape
		}
		ks[i] = k
		fs[i] = float64((i/runLen)%4) * 0.25
		ss[i] = dictPool[(i/runLen+int(seed))%len(dictPool)]
		ys[i] = rng.Int63n(50)
	}
	sch := Schema{
		{Name: "k", Type: Int},
		{Name: "f", Type: Float},
		{Name: "s", Type: Str},
		{Name: "y", Type: Int},
	}
	dict := EncodeDict(ss)
	flat = NewTable("t", sch, IntsV(ks), FloatsV(fs), dict, IntsV(ys))

	kv, ke := compressRuns(ks)
	fv, fe := compressRuns(fs)
	cv, ce := compressRuns(dict.Dict)
	yv, ye := compressRuns(ys)
	runs = NewTable("t", sch,
		IntRunsV(kv, ke), FloatRunsV(fv, fe),
		DictRunsV(cv, ce, dict.DictVals), IntRunsV(yv, ye))
	return flat, runs
}

// TestEncodingDifferential runs every kernel over flat and run-encoded
// copies of the same data — the representations the RCF4 reader can
// produce for one file depending on which encoding each chunk won — at
// several worker-pool sizes, and requires bit-identical rendered
// output. Covers the run-aware paths (Where's run zipper, Aggregate's
// dense dict batches) and the Flat()-fallback consumers (Sort, TopK,
// joins), through views, empty inputs, single-row tables, and
// all-one-run columns.
func TestEncodingDifferential(t *testing.T) {
	oldJoin, oldSort := joinMorselRows, sortMorselRows
	joinMorselRows, sortMorselRows = 8, 8
	defer func() { joinMorselRows, sortMorselRows = oldJoin, oldSort }()

	cases := []struct{ rows, runLen int }{
		{0, 1},                  // empty
		{1, 1},                  // single row = single run
		{37, 1},                 // every run length 1 (worst case)
		{500, 7},                // mixed runs
		{500, 500},              // every column one run
		{2*MorselRows + 77, 64}, // crosses morsel boundaries
	}
	for _, tc := range cases {
		flat, runs := encodingPair(tc.rows, tc.runLen, int64(tc.rows)+1)
		flatR, runsR := encodingPair(tc.rows/2+3, tc.runLen, int64(tc.rows)+2)
		for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
			name := fmt.Sprintf("rows=%d/runLen=%d/workers=%d", tc.rows, tc.runLen, workers)
			e := &Exec{Parallelism: workers}

			// Where through the run-aware predicate factories, on every
			// column kind, alone and conjoined with a per-row closure.
			fFlat := e.Where(flat, flat.StrCol("s").Range("AB", "REG"))
			fRuns := e.Where(runs, runs.StrCol("s").Range("AB", "REG"))
			if render(fFlat) != render(fRuns) {
				t.Fatalf("%s: Where(str Range) drifts", name)
			}
			if render(e.Where(flat, flat.IntCol("k").Ge(2), flat.FloatCol("f").Le(0.5))) !=
				render(e.Where(runs, runs.IntCol("k").Ge(2), runs.FloatCol("f").Le(0.5))) {
				t.Fatalf("%s: Where(int+float) drifts", name)
			}
			yFlat, yRuns := flat.IntCol("y"), runs.IntCol("y")
			if render(e.Where(flat, flat.StrCol("s").Ne(""), PredFn(func(i int) bool { return yFlat.Get(i)%3 == 0 }))) !=
				render(e.Where(runs, runs.StrCol("s").Ne(""), PredFn(func(i int) bool { return yRuns.Get(i)%3 == 0 }))) {
				t.Fatalf("%s: Where(mixed run/row preds) drifts", name)
			}

			// Aggregate: dict group keys hit the dense-array fast path on
			// the runs side; sums over run-encoded measure columns.
			aggs := []AggSpec{
				{Fn: "sum", Col: "y", As: "sy"},
				{Fn: "sum", Col: "f", As: "sf"},
				{Fn: "count", Col: "*", As: "n"},
				{Fn: "min", Col: "s", As: "mn"},
				{Fn: "max", Col: "k", As: "mx"},
			}
			if render(e.Aggregate(flat, []string{"s"}, aggs)) !=
				render(e.Aggregate(runs, []string{"s"}, aggs)) {
				t.Fatalf("%s: Aggregate drifts", name)
			}
			if render(e.Aggregate(flat, []string{"s", "k"}, aggs[:3])) !=
				render(e.Aggregate(runs, []string{"s", "k"}, aggs[:3])) {
				t.Fatalf("%s: Aggregate(two keys) drifts", name)
			}
			// ...and over views (aggregate of a filtered table).
			if render(e.Aggregate(fFlat, []string{"s"}, aggs[:3])) !=
				render(e.Aggregate(fRuns, []string{"s"}, aggs[:3])) {
				t.Fatalf("%s: Aggregate-over-view drifts", name)
			}

			// Sort and TopK force Flat() expansion of every key/payload.
			keys := []OrderSpec{{Col: "s", Desc: true}, {Col: "y"}}
			if render(e.Sort(flat, keys...)) != render(e.Sort(runs, keys...)) {
				t.Fatalf("%s: Sort drifts", name)
			}
			if render(e.TopK(flat, tc.rows/3+1, keys...)) != render(e.TopK(runs, tc.rows/3+1, keys...)) {
				t.Fatalf("%s: TopK drifts", name)
			}

			// Joins on run-encoded str and int keys. Skipped for the
			// morsel-crossing case: low-cardinality keys there would
			// cross-product into millions of output rows, and the join
			// kernels only ever see Flat() vectors anyway.
			if tc.rows > 500 {
				continue
			}
			if render(e.Join(flat, flatR, "s", "s")) != render(e.Join(runs, runsR, "s", "s")) {
				t.Fatalf("%s: Join(str) drifts", name)
			}
			if render(e.Join(flat, flatR, "k", "k")) != render(e.Join(runs, runsR, "k", "k")) {
				t.Fatalf("%s: Join(int) drifts", name)
			}
			if render(e.SemiJoin(flat, flatR, "s", "s")) != render(e.SemiJoin(runs, runsR, "s", "s")) {
				t.Fatalf("%s: SemiJoin drifts", name)
			}
			if render(e.AntiJoin(flat, flatR, "k", "k")) != render(e.AntiJoin(runs, runsR, "k", "k")) {
				t.Fatalf("%s: AntiJoin drifts", name)
			}
		}
	}
}

// TestEncodingRunVectorBasics pins the run-vector contract: Get/Len
// through the run form, memoized single expansion, and constructor
// validation.
func TestEncodingRunVectorBasics(t *testing.T) {
	v := IntRunsV([]int64{5, 9, 5}, []int32{2, 3, 7})
	if v.Len() != 7 || v.NumRuns() != 3 || !v.IsRuns() {
		t.Fatalf("run vector shape: len=%d runs=%d", v.Len(), v.NumRuns())
	}
	want := []int64{5, 5, 9, 5, 5, 5, 5}
	f := v.Flat()
	if f != v.Flat() {
		t.Error("Flat() must memoize")
	}
	for i, w := range want {
		if f.Ints[i] != w {
			t.Fatalf("flat[%d] = %d, want %d", i, f.Ints[i], w)
		}
	}
	d := DictRunsV([]uint32{1, 0}, []int32{3, 4}, []string{"a", "b"})
	df := d.Flat()
	if !df.IsDict() || &df.DictVals[0] != &d.DictVals[0] {
		t.Error("dict run expansion must share the dictionary")
	}
	for _, bad := range []func(){
		func() { IntRunsV([]int64{1}, []int32{1, 2}) },
		func() { IntRunsV([]int64{1, 2}, []int32{2, 2}) },
		func() { FloatRunsV([]float64{1}, []int32{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad run construction must panic")
				}
			}()
			bad()
		}()
	}
}
