package relal

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzJoinKeys fuzzes the join key-partitioning path: arbitrary bytes
// become build/probe key columns (with heavy duplication forced by a
// fuzz-chosen modulus), and the morsel-parallel Join/SemiJoin/AntiJoin
// must reproduce the serial reference byte-for-byte. The morsel size is
// shrunk so even tiny fuzz inputs cross the partitioned-build and
// probe-merge paths.
func FuzzJoinKeys(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte("duplicate keys duplicate keys duplicate keys"))
	f.Add([]byte{0xff, 0xfe, 0xfd, 0xfc, 0xfb, 0xfa, 0xf9, 0xf8,
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0x80, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		old := joinMorselRows
		joinMorselRows = 4
		defer func() { joinMorselRows = old }()

		// Layout: byte 0 picks the key cardinality modulus, byte 1 the
		// build/probe split; the rest becomes 8-byte int keys (tail
		// bytes pad with zero, planting duplicate zero keys).
		var mod int64 = 1
		var split = 0
		if len(data) > 0 {
			mod = int64(data[0])%31 + 1
		}
		if len(data) > 1 {
			split = int(data[1])
		}
		words := (len(data) + 7) / 8
		keys := make([]int64, words)
		for i := range keys {
			var w [8]byte
			copy(w[:], data[i*8:])
			k := int64(binary.LittleEndian.Uint64(w[:]))
			keys[i] = k % mod
		}
		cut := 0
		if words > 0 {
			cut = split % (words + 1)
		}
		lKeys, rKeys := keys[:cut], keys[cut:]

		left := NewTable("l", Schema{{Name: "lk", Type: Int}}, IntsV(lKeys))
		right := NewTable("r", Schema{{Name: "rk", Type: Int}}, IntsV(rKeys))

		serial := &Exec{Parallelism: 1}
		wantJoin := render(serial.Join(left, right, "lk", "rk"))
		wantSemi := render(serial.SemiJoin(left, right, "lk", "rk"))
		wantAnti := render(serial.AntiJoin(left, right, "lk", "rk"))
		for _, workers := range []int{2, 3, 7} {
			e := &Exec{Parallelism: workers}
			if got := render(e.Join(left, right, "lk", "rk")); got != wantJoin {
				t.Fatalf("workers=%d Join drifts on fuzz input", workers)
			}
			if got := render(e.SemiJoin(left, right, "lk", "rk")); got != wantSemi {
				t.Fatalf("workers=%d SemiJoin drifts on fuzz input", workers)
			}
			if got := render(e.AntiJoin(left, right, "lk", "rk")); got != wantAnti {
				t.Fatalf("workers=%d AntiJoin drifts on fuzz input", workers)
			}
		}
	})
}

// FuzzSortKeys fuzzes the morsel-parallel sort and fused top-K:
// arbitrary bytes become a two-key column pair (an int key folded to a
// fuzz-chosen modulus for heavy duplication, plus a derived float key
// planting NaN and signed zero), and Sort/TopK must reproduce the serial
// stable sort (and Limit-after-Sort) byte-for-byte at several worker
// counts. The morsel size is shrunk so tiny inputs still cross the
// local-sort/merge-tree and per-morsel-heap paths.
func FuzzSortKeys(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 9, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte("duplicate keys duplicate keys duplicate keys"))
	f.Add([]byte{0xff, 0xfe, 0xfd, 0xfc, 0xfb, 0xfa, 0xf9, 0xf8,
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0x80, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		old := sortMorselRows
		sortMorselRows = 4
		defer func() { sortMorselRows = old }()

		// Layout: byte 0 picks the key cardinality modulus, byte 1 the
		// top-K bound; the rest becomes 8-byte int keys (tail bytes pad
		// with zero, planting duplicate zero keys).
		var mod int64 = 1
		k := 0
		if len(data) > 0 {
			mod = int64(data[0])%31 + 1
		}
		words := (len(data) + 7) / 8
		if len(data) > 1 {
			k = int(data[1]) % (words + 2)
		}
		ints := make([]int64, words)
		floats := make([]float64, words)
		pos := make([]int64, words)
		for i := range ints {
			var w [8]byte
			copy(w[:], data[i*8:])
			x := int64(binary.LittleEndian.Uint64(w[:])) % mod
			ints[i] = x
			switch x % 5 {
			case 0:
				floats[i] = math.NaN()
			case 1:
				floats[i] = math.Copysign(0, -1)
			default:
				floats[i] = float64(x) / 2
			}
			pos[i] = int64(i)
		}
		in := NewTable("s", Schema{
			{Name: "ki", Type: Int},
			{Name: "kf", Type: Float},
			{Name: "pos", Type: Int},
		}, IntsV(ints), FloatsV(floats), IntsV(pos))
		keys := []OrderSpec{{Col: "kf"}, {Col: "ki", Desc: true}}

		serial := &Exec{Parallelism: 1}
		wantSort := render(serial.Sort(in, keys...))
		wantTop := render(serial.Limit(serial.Sort(in, keys...), k))
		for _, workers := range []int{2, 3, 7} {
			e := &Exec{Parallelism: workers}
			if got := render(e.Sort(in, keys...)); got != wantSort {
				t.Fatalf("workers=%d Sort drifts on fuzz input", workers)
			}
			if got := render(e.TopK(in, k, keys...)); got != wantTop {
				t.Fatalf("workers=%d TopK(k=%d) drifts on fuzz input", workers, k)
			}
		}
	})
}
