// Morsel-parallel hash joins. The join pipeline has three parallel
// phases, each constructed so its output is byte-identical to the serial
// kernels at any worker count:
//
//  1. Build: the hash table over the build (right) side is partitioned
//     by key hash. Each worker owns a set of partitions and scans the
//     whole key column, inserting only the keys whose hash lands in its
//     partitions — so within every key the physical-row list is in
//     global build-row order, exactly as a single serial map insert
//     would produce.
//  2. Probe: the probe (left) side splits into fixed-size morsels over
//     the now read-only table. Each morsel emits its own match-index
//     buffers; the buffers concatenate in morsel order, which is global
//     probe-row order — the serial left-major match order.
//  3. Gather: output columns materialize with typed gathers over the
//     merged index vectors; each output slot is written exactly once, so
//     the gather splits into morsels freely.
//
// SemiJoin/AntiJoin run the same build partitioning over a key-set table
// and fill the per-row membership vector morsel-parallel.
package relal

import "math"

// joinMorselRows is the probe/gather morsel size and the minimum input
// size for a join phase to go parallel. It defaults to the scan-kernel
// morsel size; tests shrink it to exercise the multi-morsel merge and
// the partitioned build on small randomized tables.
var joinMorselRows = MorselRows

// maxBuildPartitions bounds the partition-wise build fan-out: each
// partition scans the full key column, so partitions beyond the worker
// count only add wasted passes.
const maxBuildPartitions = 64

// mix64 is the splitmix64 finalizer: a cheap invertible mixer that
// spreads int64/float64 key bits across partitions.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func hashIntKey(k int64) uint64 { return mix64(uint64(k)) }

func hashCodeKey(k uint32) uint64 { return mix64(uint64(k)) }

// hashFloatKey hashes the canonical bit pattern: -0.0 and +0.0 are equal
// as map keys, so they must route to the same partition. (NaN needs no
// such care — it never equals anything, in any partition.)
func hashFloatKey(k float64) uint64 {
	if k == 0 {
		k = 0 // collapses -0.0 onto +0.0
	}
	return mix64(math.Float64bits(k))
}

// hashStrKey is FNV-1a 64.
func hashStrKey(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// joinPartitions picks the build partition count: 1 (plain serial map)
// unless the build side is big enough for the partition passes to pay
// for themselves. Exactly one partition per worker: each partition is a
// full scan of the key column, so any extra partition would put a
// second full pass on some worker's critical path.
func joinPartitions(rows, workers int) int {
	if workers <= 1 || rows <= joinMorselRows {
		return 1
	}
	if workers > maxBuildPartitions {
		return maxBuildPartitions
	}
	return workers
}

// joinTable is the shared read-only hash table of one join: per
// partition, key → physical build-row indices in global build-row order.
type joinTable[K comparable] struct {
	parts []map[K][]int32
	hash  func(K) uint64
}

// buildJoinTable builds the partitioned table. With p partitions, worker
// w scans the entire key column and inserts only keys with
// hash(k) % p == its partition — p scans total, but they run in
// parallel and every per-key row list comes out in build-row order, so
// probe output is independent of p.
func buildJoinTable[K comparable](right *Table, rKeys []K, hash func(K) uint64, workers int) *joinTable[K] {
	rn := right.NumRows()
	p := joinPartitions(rn, workers)
	jt := &joinTable[K]{parts: make([]map[K][]int32, p), hash: hash}
	if p == 1 {
		m := make(map[K][]int32, rn)
		for j := 0; j < rn; j++ {
			k := keyAt(rKeys, right.sel, j)
			m[k] = append(m[k], right.phys(j))
		}
		jt.parts[0] = m
		return jt
	}
	parallelRanges(p, workers, func(lo, hi int) {
		for part := lo; part < hi; part++ {
			m := make(map[K][]int32, rn/p+1)
			for j := 0; j < rn; j++ {
				k := keyAt(rKeys, right.sel, j)
				if hash(k)%uint64(p) == uint64(part) {
					m[k] = append(m[k], right.phys(j))
				}
			}
			jt.parts[part] = m
		}
	})
	return jt
}

// lookup returns the build rows matching k (nil for a miss).
func (jt *joinTable[K]) lookup(k K) []int32 {
	if len(jt.parts) == 1 {
		return jt.parts[0][k]
	}
	return jt.parts[jt.hash(k)%uint64(len(jt.parts))][k]
}

// probeJoin probes the shared table with the left side, morsel-parallel,
// and merges per-morsel match buffers in morsel order: the result is the
// serial left-major (probe-row order, build-insertion order within a
// key) match list for every worker count.
func probeJoin[K comparable](left *Table, lKeys []K, jt *joinTable[K], workers int) (lIdx, rIdx []int32) {
	ln := left.NumRows()
	if workers <= 1 || ln <= joinMorselRows {
		for i := 0; i < ln; i++ {
			if hits := jt.lookup(keyAt(lKeys, left.sel, i)); len(hits) > 0 {
				p := left.phys(i)
				for _, rp := range hits {
					lIdx = append(lIdx, p)
					rIdx = append(rIdx, rp)
				}
			}
		}
		return lIdx, rIdx
	}
	morsels := (ln + joinMorselRows - 1) / joinMorselRows
	type matchBuf struct{ l, r []int32 }
	bufs := make([]matchBuf, morsels)
	parallelMorselsSize(ln, joinMorselRows, workers, func(m, lo, hi int) {
		var b matchBuf
		for i := lo; i < hi; i++ {
			if hits := jt.lookup(keyAt(lKeys, left.sel, i)); len(hits) > 0 {
				p := left.phys(i)
				for _, rp := range hits {
					b.l = append(b.l, p)
					b.r = append(b.r, rp)
				}
			}
		}
		bufs[m] = b
	})
	total := 0
	for _, b := range bufs {
		total += len(b.l)
	}
	lIdx = make([]int32, 0, total)
	rIdx = make([]int32, 0, total)
	for _, b := range bufs {
		lIdx = append(lIdx, b.l...)
		rIdx = append(rIdx, b.r...)
	}
	return lIdx, rIdx
}

// matchTypedWorkers is the parallel hash-join kernel for one key type.
// workers <= 1 (or a sub-morsel input) takes the retained serial
// reference path, matchTyped, byte-for-byte.
func matchTypedWorkers[K comparable](left, right *Table, lKeys, rKeys []K, hash func(K) uint64, workers int) (lIdx, rIdx []int32) {
	if workers <= 1 || (left.NumRows() <= joinMorselRows && right.NumRows() <= joinMorselRows) {
		return matchTyped(left, right, lKeys, rKeys)
	}
	jt := buildJoinTable(right, rKeys, hash, workers)
	return probeJoin(left, lKeys, jt, workers)
}

// matchIndicesWorkers dispatches the hash-join build/probe on the key
// column type with the given worker-pool size. Keys must have identical
// types on both sides. Str keys whose vectors share one dictionary join
// on the uint32 codes (code equality is value equality under a shared
// dict); otherwise dict keys decode once, at the boundary, into a
// string slice.
func matchIndicesWorkers(left, right *Table, li, ri, workers int) (lIdx, rIdx []int32) {
	if left.Schema[li].Type != right.Schema[ri].Type {
		panic("relal: join key type mismatch: " +
			left.Schema[li].Name + " vs " + right.Schema[ri].Name)
	}
	// The probe addresses keys by arbitrary physical index, so
	// run-encoded key columns expand lazily (memoized) up front.
	lc, rc := left.Cols[li].Flat(), right.Cols[ri].Flat()
	switch left.Schema[li].Type {
	case Int:
		return matchTypedWorkers(left, right, lc.Ints, rc.Ints, hashIntKey, workers)
	case Float:
		return matchTypedWorkers(left, right, lc.Floats, rc.Floats, hashFloatKey, workers)
	default:
		lv, rv := lc, rc
		if lv.IsDict() && rv.IsDict() && sameDict(lv, rv) {
			return matchTypedWorkers(left, right, lv.Dict, rv.Dict, hashCodeKey, workers)
		}
		return matchTypedWorkers(left, right, lv.DecodeStrs(), rv.DecodeStrs(), hashStrKey, workers)
	}
}

// memberTable is the partitioned key set of a semi/anti join.
type memberTable[K comparable] struct {
	parts []map[K]struct{}
	hash  func(K) uint64
}

func buildMemberTable[K comparable](right *Table, rKeys []K, hash func(K) uint64, workers int) *memberTable[K] {
	rn := right.NumRows()
	p := joinPartitions(rn, workers)
	mt := &memberTable[K]{parts: make([]map[K]struct{}, p), hash: hash}
	if p == 1 {
		m := make(map[K]struct{}, rn)
		for j := 0; j < rn; j++ {
			m[keyAt(rKeys, right.sel, j)] = struct{}{}
		}
		mt.parts[0] = m
		return mt
	}
	parallelRanges(p, workers, func(lo, hi int) {
		for part := lo; part < hi; part++ {
			m := make(map[K]struct{}, rn/p+1)
			for j := 0; j < rn; j++ {
				k := keyAt(rKeys, right.sel, j)
				if hash(k)%uint64(p) == uint64(part) {
					m[k] = struct{}{}
				}
			}
			mt.parts[part] = m
		}
	})
	return mt
}

func (mt *memberTable[K]) contains(k K) bool {
	part := 0
	if len(mt.parts) > 1 {
		part = int(mt.hash(k) % uint64(len(mt.parts)))
	}
	_, ok := mt.parts[part][k]
	return ok
}

// memberTypedWorkers is the parallel semi/anti-join kernel: the hit
// vector fills morsel-parallel, each slot written exactly once, so it is
// identical to memberTyped at any worker count.
func memberTypedWorkers[K comparable](left, right *Table, lKeys, rKeys []K, hash func(K) uint64, workers int) []bool {
	ln := left.NumRows()
	if workers <= 1 || (ln <= joinMorselRows && right.NumRows() <= joinMorselRows) {
		return memberTyped(left, right, lKeys, rKeys)
	}
	mt := buildMemberTable(right, rKeys, hash, workers)
	hit := make([]bool, ln)
	parallelMorselsSize(ln, joinMorselRows, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			hit[i] = mt.contains(keyAt(lKeys, left.sel, i))
		}
	})
	return hit
}

// keyMembershipWorkers dispatches the semi/anti-join kernel on the key
// column type with the given worker-pool size.
func keyMembershipWorkers(left, right *Table, li, ri, workers int) []bool {
	if left.Schema[li].Type != right.Schema[ri].Type {
		panic("relal: join key type mismatch: " +
			left.Schema[li].Name + " vs " + right.Schema[ri].Name)
	}
	lc, rc := left.Cols[li].Flat(), right.Cols[ri].Flat()
	switch left.Schema[li].Type {
	case Int:
		return memberTypedWorkers(left, right, lc.Ints, rc.Ints, hashIntKey, workers)
	case Float:
		return memberTypedWorkers(left, right, lc.Floats, rc.Floats, hashFloatKey, workers)
	default:
		lv, rv := lc, rc
		if lv.IsDict() && rv.IsDict() && sameDict(lv, rv) {
			return memberTypedWorkers(left, right, lv.Dict, rv.Dict, hashCodeKey, workers)
		}
		return memberTypedWorkers(left, right, lv.DecodeStrs(), rv.DecodeStrs(), hashStrKey, workers)
	}
}

// gatherSliceWorkers fills out[k] = xs[idx[k]] morsel-parallel.
func gatherSliceWorkers[T any](xs []T, idx []int32, workers int) []T {
	out := make([]T, len(idx))
	parallelMorselsSize(len(idx), joinMorselRows, workers, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			out[k] = xs[idx[k]]
		}
	})
	return out
}

// gatherWorkers is the morsel-parallel typed gather materializing join
// output columns; every output slot is written by exactly one morsel, so
// the dense vector is identical at any worker count.
func (v *Vector) gatherWorkers(idx []int32, workers int) *Vector {
	v = v.Flat()
	if workers <= 1 || len(idx) <= joinMorselRows {
		return v.gather(idx)
	}
	out := &Vector{Kind: v.Kind}
	switch v.Kind {
	case Int:
		out.Ints = gatherSliceWorkers(v.Ints, idx, workers)
	case Float:
		out.Floats = gatherSliceWorkers(v.Floats, idx, workers)
	default:
		if v.DictVals != nil {
			out.Dict = gatherSliceWorkers(v.Dict, idx, workers)
			out.DictVals = v.DictVals
		} else {
			out.Strs = gatherSliceWorkers(v.Strs, idx, workers)
		}
	}
	return out
}
