package relal

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// shrinkJoinMorsels drops the join morsel size so the partitioned build,
// the multi-morsel probe merge, and the parallel gathers all engage on
// test-sized tables; restored on cleanup.
func shrinkJoinMorsels(t testing.TB, rows int) {
	t.Helper()
	old := joinMorselRows
	joinMorselRows = rows
	t.Cleanup(func() { joinMorselRows = old })
}

// diffWorkers is the worker-count matrix the differential suite runs:
// serial reference, smallest parallel pool, an odd pool that does not
// divide the partition count, and whatever this host has.
func diffWorkers() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// joinCase builds one randomized build/probe table pair. Key values are
// drawn from [0, card) so low cardinalities force duplicate keys on both
// sides; sentinel=true plants NULL-ish values (MinInt64, NaN, "") in
// both key columns.
type joinCase struct {
	name         string
	lRows, rRows int
	card         int64
	kind         Type
	sentinel     bool
	disjoint     bool // probe keys shifted outside the build range (no-match)
	allMatch     bool // card 1: every probe row matches every build row's key
	leftView     bool // probe through a filtered view
	rightView    bool // build through a filtered view
}

func (c joinCase) tables(seed int64) (left, right *Table) {
	rng := rand.New(rand.NewSource(seed))
	genKeys := func(n int, shift int64) *Vector {
		card := c.card
		if c.allMatch {
			card = 1
		}
		switch c.kind {
		case Int:
			xs := make([]int64, n)
			for i := range xs {
				xs[i] = rng.Int63n(card) + shift
				if c.sentinel && rng.Intn(16) == 0 {
					xs[i] = math.MinInt64
				}
			}
			return IntsV(xs)
		case Float:
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(rng.Int63n(card)+shift) / 2
				if c.sentinel && rng.Intn(16) == 0 {
					xs[i] = math.NaN()
				}
			}
			return FloatsV(xs)
		default:
			xs := make([]string, n)
			for i := range xs {
				xs[i] = fmt.Sprintf("k%06d", rng.Int63n(card)+shift)
				if c.sentinel && rng.Intn(16) == 0 {
					xs[i] = ""
				}
			}
			return StrsV(xs)
		}
	}
	payload := func(n int) *Vector {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*1e6 - 5e5
		}
		return FloatsV(xs)
	}
	shift := int64(0)
	if c.disjoint {
		shift = c.card + 1000
	}
	left = NewTable("l", Schema{{Name: "lk", Type: c.kind}, {Name: "lv", Type: Float}},
		genKeys(c.lRows, shift), payload(c.lRows))
	right = NewTable("r", Schema{{Name: "rk", Type: c.kind}, {Name: "rv", Type: Float}},
		genKeys(c.rRows, 0), payload(c.rRows))
	return left, right
}

// viewOf returns t filtered to roughly half its rows (serially), so the
// kernels also run over selection vectors.
func viewOf(t *Table, col string) *Table {
	v := t.FloatCol(col)
	return (&Exec{Parallelism: 1}).Filter(t, func(i int) bool { return v.Get(i) > 0 })
}

// TestJoinParallelDifferential locks the morsel-parallel Join, SemiJoin,
// and AntiJoin to the retained serial kernels: for randomized build and
// probe tables — duplicate keys, empty sides, all-match, no-match,
// NULL-ish sentinel values, and view inputs — the output must be
// byte-identical at every worker count.
func TestJoinParallelDifferential(t *testing.T) {
	shrinkJoinMorsels(t, 16)
	cases := []joinCase{
		{name: "int-dups", lRows: 500, rRows: 300, card: 40, kind: Int},
		{name: "int-high-card", lRows: 400, rRows: 400, card: 1 << 40, kind: Int},
		{name: "int-sentinels", lRows: 300, rRows: 200, card: 25, kind: Int, sentinel: true},
		{name: "int-no-match", lRows: 250, rRows: 250, card: 50, kind: Int, disjoint: true},
		{name: "int-all-match", lRows: 120, rRows: 90, card: 1, kind: Int, allMatch: true},
		{name: "int-empty-build", lRows: 200, rRows: 0, card: 10, kind: Int},
		{name: "int-empty-probe", lRows: 0, rRows: 200, card: 10, kind: Int},
		{name: "int-both-empty", lRows: 0, rRows: 0, card: 10, kind: Int},
		{name: "float-dups", lRows: 350, rRows: 280, card: 30, kind: Float},
		{name: "float-nan", lRows: 300, rRows: 300, card: 20, kind: Float, sentinel: true},
		{name: "str-dups", lRows: 320, rRows: 260, card: 35, kind: Str},
		{name: "str-sentinels", lRows: 280, rRows: 240, card: 30, kind: Str, sentinel: true},
		{name: "int-views", lRows: 500, rRows: 400, card: 45, kind: Int, leftView: true, rightView: true},
		{name: "str-left-view", lRows: 450, rRows: 150, card: 25, kind: Str, leftView: true},
	}
	for ci, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			left, right := c.tables(int64(1000 + ci))
			if c.leftView {
				left = viewOf(left, "lv")
			}
			if c.rightView {
				right = viewOf(right, "rv")
			}
			serial := &Exec{Parallelism: 1}
			wantJoin := render(serial.Join(left, right, "lk", "rk"))
			wantSemi := render(serial.SemiJoin(left, right, "lk", "rk"))
			wantAnti := render(serial.AntiJoin(left, right, "lk", "rk"))
			for _, workers := range diffWorkers() {
				e := &Exec{Parallelism: workers}
				if got := render(e.Join(left, right, "lk", "rk")); got != wantJoin {
					t.Fatalf("workers=%d Join drifts from serial reference", workers)
				}
				if got := render(e.SemiJoin(left, right, "lk", "rk")); got != wantSemi {
					t.Fatalf("workers=%d SemiJoin drifts from serial reference", workers)
				}
				if got := render(e.AntiJoin(left, right, "lk", "rk")); got != wantAnti {
					t.Fatalf("workers=%d AntiJoin drifts from serial reference", workers)
				}
			}
		})
	}
}

// TestJoinParallelSignedZero is the regression test for the float-key
// partition routing: -0.0 and +0.0 are equal as Go map keys, so both
// bit patterns must land in the same build partition. Before the hash
// canonicalized the sign, a probe of 0.0 only saw one partition's rows
// and the parallel join silently dropped matches.
func TestJoinParallelSignedZero(t *testing.T) {
	shrinkJoinMorsels(t, 4)
	negZero := math.Copysign(0, -1)
	lKeys := []float64{0, negZero, 1, 0, negZero, 2, 0, negZero, 3, 0, negZero, 4}
	rKeys := []float64{negZero, 0, 5, negZero, 0, 6, negZero, 0, 7, negZero, 0, 8}
	mkTag := func(n int, prefix string) *Vector {
		xs := make([]string, n)
		for i := range xs {
			xs[i] = fmt.Sprintf("%s%02d", prefix, i)
		}
		return StrsV(xs)
	}
	left := NewTable("l", Schema{{Name: "lk", Type: Float}, {Name: "lt", Type: Str}},
		FloatsV(lKeys), mkTag(len(lKeys), "l"))
	right := NewTable("r", Schema{{Name: "rk", Type: Float}, {Name: "rt", Type: Str}},
		FloatsV(rKeys), mkTag(len(rKeys), "r"))
	serial := &Exec{Parallelism: 1}
	wantJoin := render(serial.Join(left, right, "lk", "rk"))
	wantSemi := render(serial.SemiJoin(left, right, "lk", "rk"))
	wantAnti := render(serial.AntiJoin(left, right, "lk", "rk"))
	// Every zero-key left row (8 of them) matches every zero-key right
	// row (8): the serial reference must already reflect that.
	if got := serial.Join(left, right, "lk", "rk").NumRows(); got != 8*8+0 {
		t.Fatalf("serial zero-key join returned %d rows, want 64", got)
	}
	for _, workers := range diffWorkers() {
		e := &Exec{Parallelism: workers}
		if got := render(e.Join(left, right, "lk", "rk")); got != wantJoin {
			t.Fatalf("workers=%d Join drops/misorders signed-zero matches", workers)
		}
		if got := render(e.SemiJoin(left, right, "lk", "rk")); got != wantSemi {
			t.Fatalf("workers=%d SemiJoin drifts on signed zero", workers)
		}
		if got := render(e.AntiJoin(left, right, "lk", "rk")); got != wantAnti {
			t.Fatalf("workers=%d AntiJoin drifts on signed zero", workers)
		}
	}
}

// TestJoinParallelLargeMorsels runs one config at the production morsel
// size with inputs big enough to cross it, so the default-size dispatch
// is exercised too (the differential suite shrinks the size).
func TestJoinParallelLargeMorsels(t *testing.T) {
	c := joinCase{lRows: MorselRows + 500, rRows: MorselRows + 300, card: 2000, kind: Int}
	left, right := c.tables(7)
	want := render((&Exec{Parallelism: 1}).Join(left, right, "lk", "rk"))
	for _, workers := range []int{2, 5} {
		if got := render((&Exec{Parallelism: workers}).Join(left, right, "lk", "rk")); got != want {
			t.Fatalf("workers=%d large join drifts", workers)
		}
	}
}

// TestJoinParallelStepLog checks the logged join step carries the same
// cardinalities at any worker count (the Hive/PDW replay consumes them).
func TestJoinParallelStepLog(t *testing.T) {
	shrinkJoinMorsels(t, 16)
	c := joinCase{lRows: 400, rRows: 300, card: 30, kind: Int}
	left, right := c.tables(11)
	serial := &Exec{Parallelism: 1}
	serial.Join(left, right, "lk", "rk")
	want := serial.Log.Steps[0]
	for _, workers := range diffWorkers() {
		e := &Exec{Parallelism: workers}
		e.Join(left, right, "lk", "rk")
		if got := e.Log.Steps[0]; got != want {
			t.Fatalf("workers=%d join step drifts:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestJoinPartitioning sanity-checks the partitioned build directly:
// every build row lands in exactly one partition, in build-row order
// within its key.
func TestJoinPartitioning(t *testing.T) {
	shrinkJoinMorsels(t, 8)
	c := joinCase{lRows: 0, rRows: 600, card: 50, kind: Int}
	_, right := c.tables(13)
	keys := right.Cols[0].Ints
	jt := buildJoinTable(right, keys, hashIntKey, 4)
	if len(jt.parts) < 2 {
		t.Fatalf("expected a partitioned build, got %d partition(s)", len(jt.parts))
	}
	seen := 0
	for pi, part := range jt.parts {
		for k, rows := range part {
			if want := int(hashIntKey(k) % uint64(len(jt.parts))); want != pi {
				t.Fatalf("key %d in partition %d, hash says %d", k, pi, want)
			}
			for j := 1; j < len(rows); j++ {
				if rows[j] <= rows[j-1] {
					t.Fatalf("key %d rows out of build order: %v", k, rows)
				}
			}
			seen += len(rows)
		}
	}
	if seen != right.NumRows() {
		t.Fatalf("partitions hold %d rows, table has %d", seen, right.NumRows())
	}
}

// BenchmarkJoinParallel is the probe-heavy join bench BENCH_PR3.json
// tracks: a large probe side against a mid-size build table, workers=1
// vs GOMAXPROCS.
func BenchmarkJoinParallel(b *testing.B) {
	c := joinCase{lRows: 48 * MorselRows / 8, rRows: 4 * MorselRows / 8, card: 20000, kind: Int}
	left, right := c.tables(17)
	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := &Exec{Parallelism: workers}
			out := e.Join(left, right, "lk", "rk")
			if out.NumRows() == 0 {
				b.Fatal("empty join output")
			}
		}
	}
	b.Run("workers=1", func(b *testing.B) { run(b, 1) })
	b.Run("workers=max", func(b *testing.B) { run(b, 0) })
}
