// Morsel-driven parallelism: kernels split their input into fixed-size
// morsels of logical rows and dispatch them to the shared scheduler's
// worker pool (sched.go). Every kernel merges per-morsel results in
// morsel order and accumulates per-group state in global row order, so
// the output — including floating-point aggregate bits — is identical
// for any worker count and any morsel size. That invariant is what lets
// the TPC-H golden snapshot stay byte-for-byte stable while
// Exec.Parallelism varies.
package relal

// MorselRows is the number of logical rows per morsel. Large enough that
// per-morsel bookkeeping is negligible, small enough that a scan over a
// few hundred thousand rows still load-balances across a pool.
const MorselRows = 8192

// workers resolves the Exec.Parallelism knob into the query's admission
// cap on the shared scheduler: 0 (the zero value) caps at the pool size,
// 1 forces the serial kernels, n > 1 admits up to n concurrent morsels.
func (e *Exec) workers() int {
	if e == nil || e.Parallelism <= 0 {
		return PoolSize()
	}
	return e.Parallelism
}

// parallelMorsels runs fn over the morsels covering n rows on up to
// workers goroutines. Morsel m covers logical rows
// [m*MorselRows, min((m+1)*MorselRows, n)). fn must only write state
// owned by its morsel index; morsels are claimed from a shared atomic
// counter (morsel-driven dispatch), so assignment to workers is dynamic
// but the set of morsels each index covers is fixed.
func parallelMorsels(n, workers int, fn func(m, lo, hi int)) {
	parallelMorselsSize(n, MorselRows, workers, fn)
}

// parallelMorselsSize is parallelMorsels with an explicit morsel size —
// the join kernels use their own (test-shrinkable) size so the
// multi-morsel merge is exercisable on small tables. workers is the
// job's admission cap on the shared pool, not a goroutine count.
func parallelMorselsSize(n, size, workers int, fn func(m, lo, hi int)) {
	morsels := (n + size - 1) / size
	if workers > morsels {
		workers = morsels
	}
	if workers <= 1 {
		for m := 0; m < morsels; m++ {
			lo := m * size
			hi := lo + size
			if hi > n {
				hi = n
			}
			fn(m, lo, hi)
		}
		return
	}
	globalSched.run(morsels, workers, func(m int) {
		lo := m * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		fn(m, lo, hi)
	})
}

// parallelRanges splits [0, n) into one contiguous range per admitted
// worker and runs fn over each. Used where per-item work is uniform and
// tiny (remapping an index column) or where items are whole groups. The
// range boundaries are a pure function of (n, workers), so results stay
// deterministic however the shared pool interleaves them.
func parallelRanges(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	per := (n + workers - 1) / workers
	globalSched.run(workers, workers, func(w int) {
		lo, hi := w*per, (w+1)*per
		if hi > n {
			hi = n
		}
		if lo < hi {
			fn(lo, hi)
		}
	})
}
