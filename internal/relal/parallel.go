// Morsel-driven parallelism: kernels split their input into fixed-size
// morsels of logical rows and dispatch them to a small worker pool. Every
// kernel merges per-morsel results in morsel order and accumulates
// per-group state in global row order, so the output — including
// floating-point aggregate bits — is identical for any worker count and
// any morsel size. That invariant is what lets the TPC-H golden snapshot
// stay byte-for-byte stable while Exec.Parallelism varies.
package relal

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MorselRows is the number of logical rows per morsel. Large enough that
// per-morsel bookkeeping is negligible, small enough that a scan over a
// few hundred thousand rows still load-balances across a pool.
const MorselRows = 8192

// workers resolves the Exec.Parallelism knob: 0 (the zero value) sizes
// the pool to GOMAXPROCS, 1 forces the serial kernels, n > 1 uses n
// workers.
func (e *Exec) workers() int {
	if e == nil || e.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.Parallelism
}

// parallelMorsels runs fn over the morsels covering n rows on up to
// workers goroutines. Morsel m covers logical rows
// [m*MorselRows, min((m+1)*MorselRows, n)). fn must only write state
// owned by its morsel index; morsels are claimed from a shared atomic
// counter (morsel-driven dispatch), so assignment to workers is dynamic
// but the set of morsels each index covers is fixed.
func parallelMorsels(n, workers int, fn func(m, lo, hi int)) {
	parallelMorselsSize(n, MorselRows, workers, fn)
}

// parallelMorselsSize is parallelMorsels with an explicit morsel size —
// the join kernels use their own (test-shrinkable) size so the
// multi-morsel merge is exercisable on small tables.
func parallelMorselsSize(n, size, workers int, fn func(m, lo, hi int)) {
	morsels := (n + size - 1) / size
	if workers > morsels {
		workers = morsels
	}
	if workers <= 1 {
		for m := 0; m < morsels; m++ {
			lo := m * size
			hi := lo + size
			if hi > n {
				hi = n
			}
			fn(m, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				m := int(next.Add(1)) - 1
				if m >= morsels {
					return
				}
				lo := m * size
				hi := lo + size
				if hi > n {
					hi = n
				}
				fn(m, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// parallelRanges splits [0, n) into one contiguous range per worker and
// runs fn over each. Used where per-item work is uniform and tiny
// (remapping an index column) or where items are whole groups.
func parallelRanges(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	per := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > n {
			hi = n
		}
		go func(lo, hi int) {
			defer wg.Done()
			if lo < hi {
				fn(lo, hi)
			}
		}(lo, hi)
	}
	wg.Wait()
}
