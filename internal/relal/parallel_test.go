package relal

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// bigTable builds a multi-morsel table with groups, float measures, and
// strings, deterministic for a seed.
func bigTable(rows, groups int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, rows)
	vals := make([]float64, rows)
	tags := make([]string, rows)
	for i := 0; i < rows; i++ {
		keys[i] = rng.Int63n(int64(groups))
		vals[i] = rng.Float64()*1000 - 500
		tags[i] = fmt.Sprintf("tag-%03d", rng.Intn(500))
	}
	return NewTable("big", Schema{
		{Name: "g", Type: Int},
		{Name: "v", Type: Float},
		{Name: "s", Type: Str},
	}, IntsV(keys), FloatsV(vals), StrsV(tags))
}

// render dumps a table deterministically for bit-exact comparison
// (floats via %v shortest-exact form, like the golden snapshot).
func render(t *Table) string {
	var b strings.Builder
	for _, r := range RowsOf(t) {
		for _, c := range r {
			fmt.Fprintf(&b, "%v|", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelFilterMatchesSerial: the morsel filter must produce the
// identical selection vector for every worker count, on dense tables
// and on views.
func TestParallelFilterMatchesSerial(t *testing.T) {
	tb := bigTable(3*MorselRows+123, 7, 1)
	v := tb.FloatCol("v")
	pred := func(i int) bool { return v.Get(i) > 0 }
	serial := (&Exec{Parallelism: 1}).Filter(tb, pred)
	want := render(serial)
	for _, workers := range []int{2, 3, 16} {
		e := &Exec{Parallelism: workers}
		if got := render(e.Filter(tb, pred)); got != want {
			t.Fatalf("workers=%d filter drifts", workers)
		}
		// Filter of a view (composed selections).
		g := tb.IntCol("g")
		view1 := e.Filter(tb, func(i int) bool { return g.Get(i)%2 == 0 })
		vv := view1.FloatCol("v")
		sview := (&Exec{Parallelism: 1}).Filter(view1, func(i int) bool { return vv.Get(i) > 0 })
		pview := e.Filter(view1, func(i int) bool { return vv.Get(i) > 0 })
		if render(pview) != render(sview) {
			t.Fatalf("workers=%d view filter drifts", workers)
		}
	}
}

// TestParallelAggregateMatchesSerial: group order, counts, and — the
// hard part — float sum bits must be identical at every worker count.
func TestParallelAggregateMatchesSerial(t *testing.T) {
	aggs := []AggSpec{
		{Fn: "sum", Col: "v", As: "sum_v"},
		{Fn: "avg", Col: "v", As: "avg_v"},
		{Fn: "min", Col: "v", As: "min_v"},
		{Fn: "max", Col: "s", As: "max_s"},
		{Fn: "count", Col: "*", As: "n"},
	}
	for _, rows := range []int{0, 5, MorselRows + 1, 4*MorselRows + 77} {
		tb := bigTable(rows, 13, 2)
		want := render((&Exec{Parallelism: 1}).Aggregate(tb, []string{"g"}, aggs))
		for _, workers := range []int{2, 5, 32} {
			got := render((&Exec{Parallelism: workers}).Aggregate(tb, []string{"g"}, aggs))
			if got != want {
				t.Fatalf("rows=%d workers=%d aggregate drifts", rows, workers)
			}
		}
	}
}

// TestParallelAggregateGlobal: the groupBy=nil path (single group, all
// rows) through the morsel kernel.
func TestParallelAggregateGlobal(t *testing.T) {
	tb := bigTable(2*MorselRows+9, 4, 3)
	aggs := []AggSpec{{Fn: "sum", Col: "v", As: "total"}}
	want := (&Exec{Parallelism: 1}).Aggregate(tb, nil, aggs).FloatCol("total").Get(0)
	for _, workers := range []int{2, 8} {
		got := (&Exec{Parallelism: workers}).Aggregate(tb, nil, aggs).FloatCol("total").Get(0)
		if got != want {
			t.Fatalf("workers=%d global sum %v != %v", workers, got, want)
		}
	}
}

// TestParallelAggregateOverView: morsel aggregation over a filtered
// view must match the serial result (physical rows come through the
// selection vector).
func TestParallelAggregateOverView(t *testing.T) {
	tb := bigTable(3*MorselRows, 9, 4)
	v := tb.FloatCol("v")
	aggs := []AggSpec{{Fn: "sum", Col: "v", As: "sum_v"}, {Fn: "count", Col: "*", As: "n"}}
	es := &Exec{Parallelism: 1}
	want := render(es.Aggregate(es.Filter(tb, func(i int) bool { return v.Get(i) < 100 }), []string{"g"}, aggs))
	for _, workers := range []int{3, 11} {
		ep := &Exec{Parallelism: workers}
		got := render(ep.Aggregate(ep.Filter(tb, func(i int) bool { return v.Get(i) < 100 }), []string{"g"}, aggs))
		if got != want {
			t.Fatalf("workers=%d view aggregate drifts", workers)
		}
	}
}

// TestParallelExtendMatchesSerial: computed columns fill by index, so
// any worker count yields the same vector.
func TestParallelExtendMatchesSerial(t *testing.T) {
	tb := bigTable(2*MorselRows+55, 5, 5)
	v := tb.FloatCol("v")
	fn := func(i int) float64 { return v.Get(i) * 1.0625 }
	want := render(ExtendFloat(tb, "x", fn))
	for _, workers := range []int{2, 6} {
		e := &Exec{Parallelism: workers}
		if got := render(e.ExtendFloat(tb, "x", fn)); got != want {
			t.Fatalf("workers=%d extend drifts", workers)
		}
	}
}

// BenchmarkMorselPipeline is the multi-row-group Filter/Aggregate bench
// BENCH_PR2.json tracks: a selective filter feeding a grouped
// aggregation over a table spanning many morsels, at pool size 1 vs
// GOMAXPROCS.
func BenchmarkMorselPipeline(b *testing.B) {
	tb := bigTable(64*MorselRows, 16, 7)
	v := tb.FloatCol("v")
	aggs := []AggSpec{
		{Fn: "sum", Col: "v", As: "sum_v"},
		{Fn: "avg", Col: "v", As: "avg_v"},
	}
	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := &Exec{Parallelism: workers}
			f := e.Filter(tb, func(i int) bool { return v.Get(i) > -250 })
			out := e.Aggregate(f, []string{"g"}, aggs)
			if out.NumRows() != 16 {
				b.Fatal("wrong group count")
			}
		}
	}
	b.Run("workers=1", func(b *testing.B) { run(b, 1) })
	b.Run("workers=max", func(b *testing.B) { run(b, 0) })
}
