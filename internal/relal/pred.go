package relal

// Compiled column predicates. The typed accessor factories (StrVec.Eq,
// IntVec.Between, …) return a Pred: a per-row closure plus, when the
// source column is run-length encoded and densely addressed, the
// column's run structure and a per-run test. Exec.Where zips the run
// structures of its conjuncts: each run-aware predicate is evaluated
// once per run, and segments where every conjunct holds append whole
// index ranges to the selection vector — the filter cost scales with
// the run count, not the row count. Exec.Filter keeps accepting plain
// closures; Pred.At adapts a Pred wherever a per-row function is
// composed by hand.

// Pred is a compiled predicate over one table's rows.
type Pred struct {
	at func(i int) bool
	// runEnds/runAt carry the source column's run structure when the
	// predicate can be decided once per run: runAt(k) is the verdict
	// for every row in run k. Only set when the accessor was built
	// from a dense (unselected) table.
	runEnds []int32
	runAt   func(k int) bool
}

// PredFn wraps a hand-written per-row closure as a Pred.
func PredFn(fn func(i int) bool) Pred { return Pred{at: fn} }

// At evaluates the predicate at logical row i — the adapter for
// composing Preds inside hand-written closures.
func (p Pred) At(i int) bool { return p.at(i) }

// Not negates p, preserving its run structure.
func Not(p Pred) Pred {
	out := Pred{at: func(i int) bool { return !p.at(i) }}
	if p.runEnds != nil {
		out.runEnds = p.runEnds
		inner := p.runAt
		out.runAt = func(k int) bool { return !inner(k) }
	}
	return out
}

// Where returns the rows of t satisfying every pred, as a zero-copy
// view — Filter's conjunction form. Predicates carrying run structure
// matching t's dense layout are evaluated once per run; the remaining
// predicates run per row, but only inside segments the run tests
// accepted. The selection vector is byte-identical to evaluating the
// conjunction row by row, at every worker count.
func (e *Exec) Where(t *Table, preds ...Pred) *Table {
	sel := whereSel(t, preds, e.workers())
	out := view(t, t.Name+"_f", sel)
	e.Log.Add(Step{
		Kind: StepFilter, Table: t.Name,
		LeftRows: t.NumRows(), LeftWidth: t.AvgRowBytes(),
		OutRows: out.NumRows(), OutWidth: out.AvgRowBytes(),
		LeftBase: BaseOf(t),
	})
	SetBase(out, BaseOf(t))
	return out
}

func andPreds(ps []func(i int) bool) func(i int) bool {
	switch len(ps) {
	case 0:
		return func(int) bool { return true }
	case 1:
		return ps[0]
	}
	return func(i int) bool {
		for _, p := range ps {
			if !p(i) {
				return false
			}
		}
		return true
	}
}

func runsLen(ends []int32) int {
	if len(ends) == 0 {
		return 0
	}
	return int(ends[len(ends)-1])
}

// whereSel splits the conjuncts into run-aware and per-row predicates
// and walks the run segmentation. A run predicate only applies when t
// is dense and the pred's run structure spans exactly t's rows;
// everything else degrades to the per-row filter kernel.
func whereSel(t *Table, preds []Pred, workers int) []int32 {
	n := t.NumRows()
	var runPs []Pred
	var rowPs []func(i int) bool
	for _, p := range preds {
		if t.sel == nil && p.runEnds != nil && runsLen(p.runEnds) == n {
			runPs = append(runPs, p)
		} else {
			rowPs = append(rowPs, p.at)
		}
	}
	if len(runPs) == 0 {
		return filterSel(t, andPreds(rowPs), workers)
	}
	if workers <= 1 || n <= MorselRows {
		return whereRange(0, n, runPs, rowPs)
	}
	morsels := (n + MorselRows - 1) / MorselRows
	parts := make([][]int32, morsels)
	parallelMorsels(n, workers, func(m, lo, hi int) {
		parts[m] = whereRange(lo, hi, runPs, rowPs)
	})
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	sel := make([]int32, 0, total)
	for _, p := range parts {
		sel = append(sel, p...)
	}
	return sel
}

// searchRun returns the index of the run containing row pos.
func searchRun(ends []int32, pos int) int {
	lo, hi := 0, len(ends)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(ends[mid]) <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// whereRange evaluates the conjunction over dense rows [lo, hi): the
// cursors over each run predicate's run list advance to the next
// segment boundary (the nearest run end), each run predicate decides
// its current run once, and within accepted segments the per-row
// predicates (if any) filter individual rows — or the whole index
// range appends at once.
func whereRange(lo, hi int, runPs []Pred, rowPs []func(i int) bool) []int32 {
	ks := make([]int, len(runPs))
	for j, p := range runPs {
		ks[j] = searchRun(p.runEnds, lo)
	}
	// Non-nil even when nothing matches: a nil selection means "all
	// rows" to view().
	sel := []int32{}
	pos := lo
	for pos < hi {
		end := hi
		ok := true
		for j, p := range runPs {
			for int(p.runEnds[ks[j]]) <= pos {
				ks[j]++
			}
			if e := int(p.runEnds[ks[j]]); e < end {
				end = e
			}
			if ok && !p.runAt(ks[j]) {
				ok = false
			}
		}
		if ok {
			if len(rowPs) == 0 {
				for i := pos; i < end; i++ {
					sel = append(sel, int32(i))
				}
			} else {
				for i := pos; i < end; i++ {
					match := true
					for _, f := range rowPs {
						if !f(i) {
							match = false
							break
						}
					}
					if match {
						sel = append(sel, int32(i))
					}
				}
			}
		}
		pos = end
	}
	return sel
}

// The IntVec/FloatVec factories below mirror the StrVec ones in
// dict.go: they compile a value predicate against the accessor once,
// attaching the run structure when the column is run-encoded so Where
// can decide whole runs at a time.

func (v IntVec) pred(test func(x int64) bool) Pred {
	if v.runs != nil {
		rv, sel := v.runs, v.sel
		if sel == nil {
			vals := rv.Ints
			return Pred{
				at:      func(i int) bool { return test(rv.Flat().Ints[i]) },
				runEnds: rv.RunEnds,
				runAt:   func(k int) bool { return test(vals[k]) },
			}
		}
		return Pred{at: func(i int) bool { return test(rv.Flat().Ints[sel[i]]) }}
	}
	data, sel := v.data, v.sel
	if sel == nil {
		return Pred{at: func(i int) bool { return test(data[i]) }}
	}
	return Pred{at: func(i int) bool { return test(data[sel[i]]) }}
}

// Eq returns a predicate for Get(i) == x.
func (v IntVec) Eq(x int64) Pred { return v.pred(func(y int64) bool { return y == x }) }

// Ne returns a predicate for Get(i) != x.
func (v IntVec) Ne(x int64) Pred { return v.pred(func(y int64) bool { return y != x }) }

// Lt returns a predicate for Get(i) < x.
func (v IntVec) Lt(x int64) Pred { return v.pred(func(y int64) bool { return y < x }) }

// Le returns a predicate for Get(i) <= x.
func (v IntVec) Le(x int64) Pred { return v.pred(func(y int64) bool { return y <= x }) }

// Gt returns a predicate for Get(i) > x.
func (v IntVec) Gt(x int64) Pred { return v.pred(func(y int64) bool { return y > x }) }

// Ge returns a predicate for Get(i) >= x.
func (v IntVec) Ge(x int64) Pred { return v.pred(func(y int64) bool { return y >= x }) }

// Between returns a predicate for lo <= Get(i) <= hi (both inclusive).
func (v IntVec) Between(lo, hi int64) Pred {
	return v.pred(func(y int64) bool { return y >= lo && y <= hi })
}

func (v FloatVec) pred(test func(x float64) bool) Pred {
	if v.runs != nil {
		rv, sel := v.runs, v.sel
		if sel == nil {
			vals := rv.Floats
			return Pred{
				at:      func(i int) bool { return test(rv.Flat().Floats[i]) },
				runEnds: rv.RunEnds,
				runAt:   func(k int) bool { return test(vals[k]) },
			}
		}
		return Pred{at: func(i int) bool { return test(rv.Flat().Floats[sel[i]]) }}
	}
	data, sel := v.data, v.sel
	if sel == nil {
		return Pred{at: func(i int) bool { return test(data[i]) }}
	}
	return Pred{at: func(i int) bool { return test(data[sel[i]]) }}
}

// Eq returns a predicate for Get(i) == x.
func (v FloatVec) Eq(x float64) Pred { return v.pred(func(y float64) bool { return y == x }) }

// Lt returns a predicate for Get(i) < x.
func (v FloatVec) Lt(x float64) Pred { return v.pred(func(y float64) bool { return y < x }) }

// Le returns a predicate for Get(i) <= x.
func (v FloatVec) Le(x float64) Pred { return v.pred(func(y float64) bool { return y <= x }) }

// Gt returns a predicate for Get(i) > x.
func (v FloatVec) Gt(x float64) Pred { return v.pred(func(y float64) bool { return y > x }) }

// Ge returns a predicate for Get(i) >= x.
func (v FloatVec) Ge(x float64) Pred { return v.pred(func(y float64) bool { return y >= x }) }

// Between returns a predicate for lo <= Get(i) <= hi (both inclusive).
func (v FloatVec) Between(lo, hi float64) Pred {
	return v.pred(func(y float64) bool { return y >= lo && y <= hi })
}
