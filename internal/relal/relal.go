// Package relal provides the shared relational-algebra building blocks
// used by the TPC-H side of the reproduction: typed tables, hash joins,
// grouped aggregation, sorting, and filtering, all instrumented with a
// step log.
//
// Each TPC-H query is written once as a small program over these
// operators. Executing it yields (a) the correct answer (validated
// against the reference), and (b) a StepLog recording the shape of the
// work: which tables were scanned, join input/output cardinalities,
// aggregation sizes. The Hive and PDW engines replay the log with their
// own physical strategies and cost models, which is how one query
// implementation produces two paper-faithful timings.
package relal

import (
	"fmt"
	"sort"
)

// Type is a column type.
type Type int

// Column types. Dates are ISO-8601 strings so lexicographic comparison
// is date comparison.
const (
	Int Type = iota
	Float
	Str
)

// Column describes one column.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered column list.
type Schema []Column

// Col returns the index of the named column, or panics (schema errors
// are programming bugs in the hand-written queries).
func (s Schema) Col(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	panic(fmt.Sprintf("relal: no column %q in schema %v", name, s.Names()))
}

// Names returns the column names.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Row is one tuple; elements are int64, float64, or string per the
// schema.
type Row []interface{}

// Table is a schema plus rows. Base names the base table whose
// partitioning the rows still align with ("" for post-join/agg
// intermediates); filters and projections preserve it.
type Table struct {
	Name   string
	Schema Schema
	Rows   []Row
	Base   string
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return len(t.Rows) }

// AvgRowBytes estimates the average encoded row width in bytes (8 per
// numeric column, string length + 1 otherwise), used by the engines to
// convert cardinalities into I/O and network bytes.
func (t *Table) AvgRowBytes() int {
	if len(t.Rows) == 0 {
		return rowBytesFromSchema(t.Schema)
	}
	sample := len(t.Rows)
	if sample > 256 {
		sample = 256
	}
	var total int
	for i := 0; i < sample; i++ {
		total += rowBytes(t.Rows[i])
	}
	return total / sample
}

func rowBytes(r Row) int {
	b := 0
	for _, v := range r {
		switch x := v.(type) {
		case string:
			b += len(x) + 1
		default:
			b += 8
		}
	}
	return b
}

func rowBytesFromSchema(s Schema) int {
	b := 0
	for _, c := range s {
		if c.Type == Str {
			b += 16
		} else {
			b += 8
		}
	}
	return b
}

// StepKind classifies a logged execution step.
type StepKind int

// Step kinds.
const (
	StepScan StepKind = iota
	StepFilter
	StepJoin
	StepAgg
	StepSort
	StepLimit
)

func (k StepKind) String() string {
	switch k {
	case StepScan:
		return "scan"
	case StepFilter:
		return "filter"
	case StepJoin:
		return "join"
	case StepAgg:
		return "agg"
	case StepSort:
		return "sort"
	case StepLimit:
		return "limit"
	}
	return "?"
}

// Step records one operator execution: cardinalities and byte widths
// that the engines' cost models consume.
type Step struct {
	Kind StepKind
	// Table is the base-table name for scans; for joins, the two input
	// names joined with "⋈".
	Table string
	// LeftRows/RightRows are input cardinalities (RightRows 0 except
	// joins).
	LeftRows, RightRows int
	// LeftBytes/RightBytes are input widths in bytes per row.
	LeftWidth, RightWidth int
	// OutRows/OutWidth describe the output.
	OutRows, OutWidth int
	// JoinKey names the join column (joins only); engines use it to
	// check bucketing/partitioning alignment.
	JoinKey string
	// LeftBase/RightBase name the base table an input derives from, ""
	// for intermediates. Partitioning alignment survives filters and
	// projections but not joins or aggregations.
	LeftBase, RightBase string
}

// StepLog accumulates steps in execution order.
type StepLog struct {
	Steps []Step
}

// Add appends a step.
func (l *StepLog) Add(s Step) { l.Steps = append(l.Steps, s) }

// Exec is the execution context threading the log through operators.
type Exec struct {
	Log StepLog
}

// SetBase marks t's rows as originating from (and still partitioned
// like) the named base table.
func SetBase(t *Table, base string) { t.Base = base }

// BaseOf returns the base-table annotation for t ("" if none).
func BaseOf(t *Table) string { return t.Base }

// Scan logs a base-table scan and returns the table itself.
func (e *Exec) Scan(t *Table) *Table {
	e.Log.Add(Step{
		Kind: StepScan, Table: t.Name,
		LeftRows: t.NumRows(), LeftWidth: t.AvgRowBytes(),
		OutRows: t.NumRows(), OutWidth: t.AvgRowBytes(),
		LeftBase: t.Name,
	})
	SetBase(t, t.Name)
	return t
}

// Filter returns rows of t satisfying pred. The result keeps t's base
// annotation (filtering preserves partitioning).
func (e *Exec) Filter(t *Table, pred func(Row) bool) *Table {
	out := &Table{Name: t.Name + "_f", Schema: t.Schema}
	for _, r := range t.Rows {
		if pred(r) {
			out.Rows = append(out.Rows, r)
		}
	}
	e.Log.Add(Step{
		Kind: StepFilter, Table: t.Name,
		LeftRows: t.NumRows(), LeftWidth: t.AvgRowBytes(),
		OutRows: out.NumRows(), OutWidth: out.AvgRowBytes(),
		LeftBase: BaseOf(t),
	})
	SetBase(out, BaseOf(t))
	return out
}

// Project returns a table with the named columns only, preserving the
// base annotation. Projection is logged as part of downstream steps, not
// separately (it is free in both engines' models).
func (e *Exec) Project(t *Table, cols ...string) *Table {
	idx := make([]int, len(cols))
	sch := make(Schema, len(cols))
	for i, c := range cols {
		idx[i] = t.Schema.Col(c)
		sch[i] = t.Schema[idx[i]]
	}
	out := &Table{Name: t.Name + "_p", Schema: sch, Rows: make([]Row, 0, len(t.Rows))}
	for _, r := range t.Rows {
		nr := make(Row, len(idx))
		for i, j := range idx {
			nr[i] = r[j]
		}
		out.Rows = append(out.Rows, nr)
	}
	SetBase(out, BaseOf(t))
	return out
}

// Join hash-joins left and right on leftKey = rightKey (inner join),
// producing the concatenated schema with right's key column retained
// (callers project as needed). joinName labels the step.
func (e *Exec) Join(left, right *Table, leftKey, rightKey string) *Table {
	li := left.Schema.Col(leftKey)
	ri := right.Schema.Col(rightKey)
	ht := make(map[interface{}][]Row, len(right.Rows))
	for _, r := range right.Rows {
		ht[r[ri]] = append(ht[r[ri]], r)
	}
	sch := make(Schema, 0, len(left.Schema)+len(right.Schema))
	sch = append(sch, left.Schema...)
	sch = append(sch, right.Schema...)
	out := &Table{Name: left.Name + "⋈" + right.Name, Schema: sch}
	for _, lr := range left.Rows {
		for _, rr := range ht[lr[li]] {
			nr := make(Row, 0, len(lr)+len(rr))
			nr = append(nr, lr...)
			nr = append(nr, rr...)
			out.Rows = append(out.Rows, nr)
		}
	}
	e.Log.Add(Step{
		Kind: StepJoin, Table: out.Name,
		LeftRows: left.NumRows(), LeftWidth: left.AvgRowBytes(),
		RightRows: right.NumRows(), RightWidth: right.AvgRowBytes(),
		OutRows: out.NumRows(), OutWidth: out.AvgRowBytes(),
		JoinKey:  leftKey,
		LeftBase: BaseOf(left), RightBase: BaseOf(right),
	})
	return out
}

// SemiJoin returns left rows whose key appears in right (IN subquery).
func (e *Exec) SemiJoin(left, right *Table, leftKey, rightKey string) *Table {
	ri := right.Schema.Col(rightKey)
	set := make(map[interface{}]bool, len(right.Rows))
	for _, r := range right.Rows {
		set[r[ri]] = true
	}
	li := left.Schema.Col(leftKey)
	out := &Table{Name: left.Name + "_semi", Schema: left.Schema}
	for _, r := range left.Rows {
		if set[r[li]] {
			out.Rows = append(out.Rows, r)
		}
	}
	e.Log.Add(Step{
		Kind: StepJoin, Table: out.Name,
		LeftRows: left.NumRows(), LeftWidth: left.AvgRowBytes(),
		RightRows: right.NumRows(), RightWidth: right.AvgRowBytes(),
		OutRows: out.NumRows(), OutWidth: out.AvgRowBytes(),
		JoinKey:  leftKey,
		LeftBase: BaseOf(left), RightBase: BaseOf(right),
	})
	SetBase(out, BaseOf(left))
	return out
}

// AntiJoin returns left rows whose key does not appear in right (NOT IN
// / NOT EXISTS).
func (e *Exec) AntiJoin(left, right *Table, leftKey, rightKey string) *Table {
	ri := right.Schema.Col(rightKey)
	set := make(map[interface{}]bool, len(right.Rows))
	for _, r := range right.Rows {
		set[r[ri]] = true
	}
	li := left.Schema.Col(leftKey)
	out := &Table{Name: left.Name + "_anti", Schema: left.Schema}
	for _, r := range left.Rows {
		if !set[r[li]] {
			out.Rows = append(out.Rows, r)
		}
	}
	e.Log.Add(Step{
		Kind: StepJoin, Table: out.Name,
		LeftRows: left.NumRows(), LeftWidth: left.AvgRowBytes(),
		RightRows: right.NumRows(), RightWidth: right.AvgRowBytes(),
		OutRows: out.NumRows(), OutWidth: out.AvgRowBytes(),
		JoinKey:  leftKey,
		LeftBase: BaseOf(left), RightBase: BaseOf(right),
	})
	SetBase(out, BaseOf(left))
	return out
}

// AggSpec is one aggregate: Fn over the expression column Col (or "*"
// for COUNT(*)), output-named As.
type AggSpec struct {
	Fn  string // "sum", "avg", "count", "min", "max"
	Col string
	As  string
}

// Aggregate groups t by the named columns and computes aggs, logging the
// step. Group columns precede aggregates in the output schema.
func (e *Exec) Aggregate(t *Table, groupBy []string, aggs []AggSpec) *Table {
	gidx := make([]int, len(groupBy))
	for i, g := range groupBy {
		gidx[i] = t.Schema.Col(g)
	}
	aidx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Col == "*" {
			aidx[i] = -1
		} else {
			aidx[i] = t.Schema.Col(a.Col)
		}
	}
	type accum struct {
		key   Row
		sums  []float64
		mins  []float64
		maxs  []float64
		strs  []string // min/max over strings
		count int64
	}
	groups := make(map[string]*accum)
	order := []string{}
	for _, r := range t.Rows {
		kb := make([]byte, 0, 32)
		for _, gi := range gidx {
			kb = append(kb, fmt.Sprint(r[gi])...)
			kb = append(kb, 0)
		}
		k := string(kb)
		acc, ok := groups[k]
		if !ok {
			key := make(Row, len(gidx))
			for i, gi := range gidx {
				key[i] = r[gi]
			}
			acc = &accum{
				key:  key,
				sums: make([]float64, len(aggs)),
				mins: make([]float64, len(aggs)),
				maxs: make([]float64, len(aggs)),
				strs: make([]string, len(aggs)),
			}
			for i := range acc.mins {
				acc.mins[i] = 1e308
				acc.maxs[i] = -1e308
			}
			groups[k] = acc
			order = append(order, k)
		}
		acc.count++
		for i, ai := range aidx {
			if ai < 0 {
				continue
			}
			switch v := r[ai].(type) {
			case int64:
				f := float64(v)
				acc.sums[i] += f
				if f < acc.mins[i] {
					acc.mins[i] = f
				}
				if f > acc.maxs[i] {
					acc.maxs[i] = f
				}
			case float64:
				acc.sums[i] += v
				if v < acc.mins[i] {
					acc.mins[i] = v
				}
				if v > acc.maxs[i] {
					acc.maxs[i] = v
				}
			case string:
				if acc.strs[i] == "" || v < acc.strs[i] {
					acc.strs[i] = v
				}
			}
		}
	}
	sch := make(Schema, 0, len(groupBy)+len(aggs))
	for _, g := range groupBy {
		sch = append(sch, t.Schema[t.Schema.Col(g)])
	}
	for _, a := range aggs {
		typ := Float
		if a.Fn == "count" {
			typ = Int
		}
		if a.Fn == "min" || a.Fn == "max" {
			if a.Col != "*" && t.Schema[t.Schema.Col(a.Col)].Type == Str {
				typ = Str
			}
		}
		sch = append(sch, Column{Name: a.As, Type: typ})
	}
	out := &Table{Name: t.Name + "_agg", Schema: sch}
	for _, k := range order {
		acc := groups[k]
		row := make(Row, 0, len(sch))
		row = append(row, acc.key...)
		for i, a := range aggs {
			switch a.Fn {
			case "sum":
				row = append(row, acc.sums[i])
			case "avg":
				row = append(row, acc.sums[i]/float64(acc.count))
			case "count":
				row = append(row, acc.count)
			case "min":
				if a.Col != "*" && t.Schema[t.Schema.Col(a.Col)].Type == Str {
					row = append(row, acc.strs[i])
				} else {
					row = append(row, acc.mins[i])
				}
			case "max":
				row = append(row, acc.maxs[i])
			default:
				panic("relal: unknown aggregate " + a.Fn)
			}
		}
		out.Rows = append(out.Rows, row)
	}
	e.Log.Add(Step{
		Kind: StepAgg, Table: t.Name,
		LeftRows: t.NumRows(), LeftWidth: t.AvgRowBytes(),
		OutRows: out.NumRows(), OutWidth: out.AvgRowBytes(),
		LeftBase: BaseOf(t),
	})
	return out
}

// OrderSpec is one sort key.
type OrderSpec struct {
	Col  string
	Desc bool
}

// Sort orders t by the given keys, logging the step.
func (e *Exec) Sort(t *Table, keys ...OrderSpec) *Table {
	idx := make([]int, len(keys))
	for i, k := range keys {
		idx[i] = t.Schema.Col(k.Col)
	}
	out := &Table{Name: t.Name + "_s", Schema: t.Schema, Rows: append([]Row(nil), t.Rows...)}
	sort.SliceStable(out.Rows, func(a, b int) bool {
		for i, k := range keys {
			c := compareVals(out.Rows[a][idx[i]], out.Rows[b][idx[i]])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	e.Log.Add(Step{
		Kind: StepSort, Table: t.Name,
		LeftRows: t.NumRows(), LeftWidth: t.AvgRowBytes(),
		OutRows: out.NumRows(), OutWidth: out.AvgRowBytes(),
		LeftBase: BaseOf(t),
	})
	SetBase(out, BaseOf(t))
	return out
}

// Limit truncates t to n rows.
func (e *Exec) Limit(t *Table, n int) *Table {
	out := &Table{Name: t.Name, Schema: t.Schema, Rows: t.Rows}
	if len(out.Rows) > n {
		out.Rows = out.Rows[:n]
	}
	SetBase(out, BaseOf(t))
	return out
}

func compareVals(a, b interface{}) int {
	switch x := a.(type) {
	case int64:
		y := b.(int64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case float64:
		y := b.(float64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case string:
		y := b.(string)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	}
	panic(fmt.Sprintf("relal: cannot compare %T", a))
}

// F converts an int64/float64 cell to float64 (query arithmetic helper).
func F(v interface{}) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	}
	panic(fmt.Sprintf("relal: not numeric: %T", v))
}

// I returns the cell as int64.
func I(v interface{}) int64 { return v.(int64) }

// S returns the cell as string.
func S(v interface{}) string { return v.(string) }

// Extend appends a computed column to t (no step logged; expression
// evaluation is costed with the surrounding operator).
func Extend(t *Table, name string, typ Type, fn func(Row) interface{}) *Table {
	sch := append(append(Schema{}, t.Schema...), Column{Name: name, Type: typ})
	out := &Table{Name: t.Name, Schema: sch, Rows: make([]Row, 0, len(t.Rows))}
	for _, r := range t.Rows {
		nr := make(Row, 0, len(r)+1)
		nr = append(nr, r...)
		nr = append(nr, fn(r))
		out.Rows = append(out.Rows, nr)
	}
	SetBase(out, BaseOf(t))
	return out
}
