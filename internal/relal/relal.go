// Package relal provides the shared relational-algebra building blocks
// used by the TPC-H side of the reproduction: typed columnar tables,
// hash joins, grouped aggregation, sorting, and filtering, all
// instrumented with a step log.
//
// Storage is columnar, mirroring the paper's RCFile insight: a Table
// holds one typed vector per column ([]int64, []float64, or []string)
// plus an optional selection vector. Filters, semi/anti joins, sorts,
// and limits produce zero-copy views (shared column vectors + a
// selection/permutation of physical row indices); joins and
// aggregations materialize new dense vectors via typed gathers. No cell
// is ever boxed into an interface{} on the hot path.
//
// Each TPC-H query is written once as a small program over these
// operators. Executing it yields (a) the correct answer (validated
// against the reference), and (b) a StepLog recording the shape of the
// work: which tables were scanned, join input/output cardinalities,
// aggregation sizes. The Hive and PDW engines replay the log with their
// own physical strategies and cost models, which is how one query
// implementation produces two paper-faithful timings.
package relal

import (
	"cmp"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Type is a column type.
type Type int

// Column types. Dates are ISO-8601 strings so lexicographic comparison
// is date comparison.
const (
	Int Type = iota
	Float
	Str
)

// Column describes one column.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered column list.
type Schema []Column

// Col returns the index of the named column, or panics (schema errors
// are programming bugs in the hand-written queries).
func (s Schema) Col(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	panic(fmt.Sprintf("relal: no column %q in schema %v", name, s.Names()))
}

// Names returns the column names.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Vector is one typed column: exactly the slice matching Kind is
// populated. A Str vector may instead be dictionary-encoded (dict.go):
// Dict holds per-cell uint32 codes into DictVals, a shared sorted
// dictionary, so code order equals value order and kernels can compare
// codes instead of strings. DictVals non-nil marks the dict variant.
//
// A vector may additionally be run-length encoded (runs.go): RunEnds
// non-nil marks the run variant, where the typed slice (Ints, Floats,
// or Dict) holds ONE entry per run and RunEnds[k] is the exclusive end
// row of run k. Run vectors come out of the RCF4 decoder without
// expansion; run-aware kernels (Where, Aggregate) consume the runs
// directly and everything else expands lazily through Flat.
type Vector struct {
	Kind   Type
	Ints   []int64
	Floats []float64
	Strs   []string

	Dict     []uint32
	DictVals []string

	// RunEnds, when non-nil, marks the run-length-encoded variant: the
	// typed slice holds one value per run and RunEnds[k] is the
	// exclusive end row index of run k (RunEnds is strictly increasing;
	// the last entry is the vector's length).
	RunEnds []int32
	// flat memoizes the expanded form of a run vector. Vectors are
	// immutable once built, so racing expansions compute identical
	// contents and the pointer publication is safe.
	flat atomic.Pointer[Vector]
}

// NewVector returns an empty vector of the given type with capacity for
// n cells.
func NewVector(kind Type, n int) *Vector {
	v := &Vector{Kind: kind}
	switch kind {
	case Int:
		v.Ints = make([]int64, 0, n)
	case Float:
		v.Floats = make([]float64, 0, n)
	case Str:
		v.Strs = make([]string, 0, n)
	}
	return v
}

// IntsV wraps an int64 slice as a column vector (no copy).
func IntsV(xs []int64) *Vector { return &Vector{Kind: Int, Ints: xs} }

// FloatsV wraps a float64 slice as a column vector (no copy).
func FloatsV(xs []float64) *Vector { return &Vector{Kind: Float, Floats: xs} }

// StrsV wraps a string slice as a column vector (no copy).
func StrsV(xs []string) *Vector { return &Vector{Kind: Str, Strs: xs} }

// Len returns the number of cells (logical rows for a run vector).
func (v *Vector) Len() int {
	if v.RunEnds != nil {
		if len(v.RunEnds) == 0 {
			return 0
		}
		return int(v.RunEnds[len(v.RunEnds)-1])
	}
	switch v.Kind {
	case Int:
		return len(v.Ints)
	case Float:
		return len(v.Floats)
	}
	if v.DictVals != nil {
		return len(v.Dict)
	}
	return len(v.Strs)
}

// appendFrom appends src's cell at physical index p. When both vectors
// are dict-encoded over the same dictionary the code moves without
// decoding; otherwise dict cells decode on the way in.
func (v *Vector) appendFrom(src *Vector, p int32) {
	src = src.Flat()
	switch v.Kind {
	case Int:
		v.Ints = append(v.Ints, src.Ints[p])
	case Float:
		v.Floats = append(v.Floats, src.Floats[p])
	default:
		if v.DictVals != nil {
			if src.DictVals != nil && sameDict(v, src) {
				v.Dict = append(v.Dict, src.Dict[p])
				return
			}
			panic("relal: appendFrom into a dict vector with a foreign dictionary")
		}
		v.Strs = append(v.Strs, src.StrAt(p))
	}
}

// gatherSlice returns xs's cells at the given physical indices, in
// order.
func gatherSlice[T any](xs []T, idx []int32) []T {
	out := make([]T, len(idx))
	for k, p := range idx {
		out[k] = xs[p]
	}
	return out
}

// gather returns a dense vector holding v's cells at the given physical
// indices, in order. Dict vectors gather their codes and keep sharing
// the dictionary — strings only materialize at output boundaries.
func (v *Vector) gather(idx []int32) *Vector {
	v = v.Flat()
	out := &Vector{Kind: v.Kind}
	switch v.Kind {
	case Int:
		out.Ints = gatherSlice(v.Ints, idx)
	case Float:
		out.Floats = gatherSlice(v.Floats, idx)
	default:
		if v.DictVals != nil {
			out.Dict = gatherSlice(v.Dict, idx)
			out.DictVals = v.DictVals
		} else {
			out.Strs = gatherSlice(v.Strs, idx)
		}
	}
	return out
}

// Table is a schema plus column vectors. Base names the base table
// whose partitioning the rows still align with ("" for post-join/agg
// intermediates); filters and projections preserve it.
//
// sel, when non-nil, is a selection/permutation vector of physical row
// indices: logical row i lives at physical position sel[i] in every
// column. Filters, sorts, and limits return such views instead of
// copying; Compacted materializes a view into dense vectors.
//
// A table whose vectors are fully built (every base table, every
// operator output) is immutable except for two caches — the shared
// aliasing flag and the memoized AvgRowBytes — which are atomic so
// concurrent query streams can execute over one shared table without
// synchronization.
type Table struct {
	Name   string
	Schema Schema
	Cols   []*Vector
	Base   string

	sel      []int32
	shared   atomic.Bool  // Cols aliased by another table (zero-copy views)
	avgBytes atomic.Int64 // cached exact AvgRowBytes; 0 = not yet computed

	// scanOnce/scanCached memoize the per-row-group zone maps and
	// encoded column sizes TableSource reports (computed once; base
	// tables are immutable after generation).
	scanOnce   sync.Once
	scanCached *tableScanInfo
}

// NewTable builds a table. With no cols, empty vectors are allocated
// per the schema; otherwise cols must match the schema's types and all
// have equal lengths. Supplied vectors are adopted, not copied, and may
// be aliased by another table (e.g. a renamed-column alias of a base
// table), so the result is marked shared: AppendRow privatizes the
// vectors before mutating them.
func NewTable(name string, schema Schema, cols ...*Vector) *Table {
	t := &Table{Name: name, Schema: schema}
	if len(cols) == 0 {
		t.Cols = make([]*Vector, len(schema))
		for i, c := range schema {
			t.Cols[i] = NewVector(c.Type, 0)
		}
		return t
	}
	t.shared.Store(true)
	if len(cols) != len(schema) {
		panic(fmt.Sprintf("relal: %d vectors for %d columns", len(cols), len(schema)))
	}
	n := cols[0].Len()
	for i, v := range cols {
		if v.Kind != schema[i].Type {
			panic(fmt.Sprintf("relal: column %q type mismatch", schema[i].Name))
		}
		if v.Len() != n {
			panic(fmt.Sprintf("relal: column %q has %d cells, want %d", schema[i].Name, v.Len(), n))
		}
	}
	t.Cols = cols
	return t
}

// view wraps t's columns under a new selection vector. Both the view
// and the source are marked shared: their vectors are now aliased, so a
// later AppendRow to either must privatize first. The source flag is
// only written when not already set, so viewing an immutable shared
// table (a base table under concurrent query streams) never mutates it.
func view(t *Table, name string, sel []int32) *Table {
	markShared(t)
	out := &Table{Name: name, Schema: t.Schema, Cols: t.Cols, sel: sel}
	out.shared.Store(true)
	return out
}

// markShared flags t's vectors as aliased. The load-before-store keeps
// the flag write off already-shared tables: base tables are born shared,
// so concurrent streams only ever read it.
func markShared(t *Table) {
	if !t.shared.Load() {
		t.shared.Store(true)
	}
}

// phys maps a logical row index to its physical position.
func (t *Table) phys(i int) int32 {
	if t.sel != nil {
		return t.sel[i]
	}
	return int32(i)
}

// NumRows returns the logical row count.
func (t *Table) NumRows() int {
	if t.sel != nil {
		return len(t.sel)
	}
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// Compacted returns a dense copy of t if it is a view (materializing
// the selection vector), or t itself if it is already dense.
func (t *Table) Compacted() *Table {
	if t.sel == nil {
		return t
	}
	cols := make([]*Vector, len(t.Cols))
	for i, v := range t.Cols {
		cols[i] = v.gather(t.sel)
	}
	return &Table{Name: t.Name, Schema: t.Schema, Cols: cols, Base: t.Base}
}

// AvgRowBytes returns the exact average encoded row width in bytes
// (8 per numeric column, string length + 1 for raw strings, the packed
// code width plus the amortized dictionary for dict-encoded strings),
// used by the engines to convert cardinalities into I/O and network
// bytes. Dictionary encoding therefore shows up in the cost models the
// same way it shows up on disk: a dict column is a few bytes per row,
// not the string's.
func (t *Table) AvgRowBytes() int {
	n := t.NumRows()
	if n == 0 {
		return rowBytesFromSchema(t.Schema)
	}
	if b := t.avgBytes.Load(); b > 0 {
		return int(b)
	}
	total := 0
	for ci, c := range t.Schema {
		col := t.Cols[ci]
		if c.Type != Str {
			// A run-encoded numeric column is charged its run-list
			// footprint (value + run end per run) — the width the
			// cost models and cache accounting should see — when the
			// table addresses it densely.
			if t.sel == nil && col.RunEnds != nil {
				total += (8 + 4) * len(col.RunEnds)
			} else {
				total += 8 * n
			}
			continue
		}
		if col.DictVals != nil {
			w := DictCodeWidth(len(col.DictVals))
			if t.sel == nil && col.RunEnds != nil {
				total += (w + 4) * len(col.RunEnds)
			} else {
				total += w * n
			}
			for _, s := range col.DictVals {
				total += len(s) + 1
			}
			continue
		}
		strs := col.Strs
		if t.sel == nil {
			for _, s := range strs {
				total += len(s) + 1
			}
		} else {
			for _, p := range t.sel {
				total += len(strs[p]) + 1
			}
		}
	}
	// Concurrent computations store the same deterministic value, so a
	// racing Store is harmless.
	t.avgBytes.Store(int64(total / n))
	return total / n
}

func rowBytesFromSchema(s Schema) int {
	b := 0
	for _, c := range s {
		if c.Type == Str {
			b += 16
		} else {
			b += 8
		}
	}
	return b
}

// IntVec is a read accessor for an Int column, selection-aware: Get
// takes logical row indices. For a run-encoded column, runs is set and
// data stays nil until the first per-row Get forces the memoized flat
// expansion — building a predicate from the accessor (pred.go) never
// expands.
type IntVec struct {
	data []int64
	sel  []int32
	runs *Vector
}

// Get returns the cell at logical row i.
func (v IntVec) Get(i int) int64 {
	if v.sel != nil {
		i = int(v.sel[i])
	}
	if v.data != nil {
		return v.data[i]
	}
	return v.runs.Flat().Ints[i]
}

// Len returns the logical row count.
func (v IntVec) Len() int {
	if v.sel != nil {
		return len(v.sel)
	}
	if v.data != nil {
		return len(v.data)
	}
	return v.runs.Len()
}

// FloatVec is a read accessor for a Float column.
type FloatVec struct {
	data []float64
	sel  []int32
	runs *Vector
}

// Get returns the cell at logical row i.
func (v FloatVec) Get(i int) float64 {
	if v.sel != nil {
		i = int(v.sel[i])
	}
	if v.data != nil {
		return v.data[i]
	}
	return v.runs.Flat().Floats[i]
}

// Len returns the logical row count.
func (v FloatVec) Len() int {
	if v.sel != nil {
		return len(v.sel)
	}
	if v.data != nil {
		return len(v.data)
	}
	return v.runs.Len()
}

// StrVec is a read accessor for a Str column. For a dict-encoded
// column, dict/vals are set instead of data and Get decodes through the
// dictionary; the predicate factories in pred.go compare codes and skip
// the decode entirely. For a run-encoded dict column, runs is set and
// dict stays nil until a per-row Get forces expansion.
type StrVec struct {
	data []string
	dict []uint32
	vals []string
	sel  []int32
	runs *Vector
}

// Get returns the cell at logical row i.
func (v StrVec) Get(i int) string {
	if v.sel != nil {
		i = int(v.sel[i])
	}
	if v.runs != nil {
		return v.vals[v.runs.Flat().Dict[i]]
	}
	if v.dict != nil {
		return v.vals[v.dict[i]]
	}
	return v.data[i]
}

// Len returns the logical row count.
func (v StrVec) Len() int {
	if v.sel != nil {
		return len(v.sel)
	}
	if v.runs != nil {
		return v.runs.Len()
	}
	if v.dict != nil {
		return len(v.dict)
	}
	return len(v.data)
}

// IntCol returns a typed accessor for the named Int column (panics on
// missing column or type mismatch — schema errors are programming bugs
// in the hand-written queries).
func (t *Table) IntCol(name string) IntVec {
	c := t.Schema.Col(name)
	if t.Schema[c].Type != Int {
		panic(fmt.Sprintf("relal: column %q is not Int", name))
	}
	col := t.Cols[c]
	if col.RunEnds != nil {
		return IntVec{sel: t.sel, runs: col}
	}
	return IntVec{data: col.Ints, sel: t.sel}
}

// FloatCol returns a typed accessor for the named Float column.
func (t *Table) FloatCol(name string) FloatVec {
	c := t.Schema.Col(name)
	if t.Schema[c].Type != Float {
		panic(fmt.Sprintf("relal: column %q is not Float", name))
	}
	col := t.Cols[c]
	if col.RunEnds != nil {
		return FloatVec{sel: t.sel, runs: col}
	}
	return FloatVec{data: col.Floats, sel: t.sel}
}

// StrCol returns a typed accessor for the named Str column.
func (t *Table) StrCol(name string) StrVec {
	c := t.Schema.Col(name)
	if t.Schema[c].Type != Str {
		panic(fmt.Sprintf("relal: column %q is not Str", name))
	}
	col := t.Cols[c]
	if col.RunEnds != nil {
		return StrVec{vals: col.DictVals, sel: t.sel, runs: col}
	}
	if col.DictVals != nil {
		return StrVec{dict: col.Dict, vals: col.DictVals, sel: t.sel}
	}
	return StrVec{data: col.Strs, sel: t.sel}
}

// Row is one boxed tuple; elements are int64, float64, or string per
// the schema. It survives only as the compatibility interchange format
// (RowsOf/AppendRow) — the execution core never materializes rows.
type Row []interface{}

// RowsOf materializes t as boxed rows (compatibility shim for tests and
// row-oriented consumers such as the text dumper).
func RowsOf(t *Table) []Row {
	n := t.NumRows()
	rows := make([]Row, n)
	cols := make([]*Vector, len(t.Cols))
	for c, v := range t.Cols {
		cols[c] = v.Flat()
	}
	for i := 0; i < n; i++ {
		p := t.phys(i)
		r := make(Row, len(t.Cols))
		for c, v := range cols {
			switch v.Kind {
			case Int:
				r[c] = v.Ints[p]
			case Float:
				r[c] = v.Floats[p]
			default:
				r[c] = v.StrAt(p)
			}
		}
		rows[i] = r
	}
	return rows
}

// AppendRow appends one boxed row to t (compatibility shim). Cell types
// must match the schema exactly (int64/float64/string) or it panics. If
// t is a view, or its vectors are aliased by a zero-copy sibling
// (Project/Limit output), t is compacted onto private vectors first so
// the append can never desynchronize another table.
func AppendRow(t *Table, r Row) {
	if t.sel != nil || t.shared.Load() {
		sel := t.sel
		if sel == nil {
			sel = make([]int32, t.NumRows())
			for i := range sel {
				sel[i] = int32(i)
			}
		}
		cols := make([]*Vector, len(t.Cols))
		for i, v := range t.Cols {
			cols[i] = v.gather(sel)
		}
		t.Cols, t.sel = cols, nil
		t.shared.Store(false)
	}
	if len(r) != len(t.Cols) {
		panic(fmt.Sprintf("relal: row has %d cells, schema has %d", len(r), len(t.Cols)))
	}
	for c, cell := range r {
		col := t.Cols[c]
		switch col.Kind {
		case Int:
			x, ok := cell.(int64)
			if !ok {
				panic(fmt.Sprintf("relal: column %q expects int64, got %T", t.Schema[c].Name, cell))
			}
			col.Ints = append(col.Ints, x)
		case Float:
			x, ok := cell.(float64)
			if !ok {
				panic(fmt.Sprintf("relal: column %q expects float64, got %T", t.Schema[c].Name, cell))
			}
			col.Floats = append(col.Floats, x)
		default:
			x, ok := cell.(string)
			if !ok {
				panic(fmt.Sprintf("relal: column %q expects string, got %T", t.Schema[c].Name, cell))
			}
			// An arbitrary appended string may not be in the dictionary;
			// fall back to the raw representation (the vector is private
			// here — views and aliased tables were compacted above).
			col.decodeToRaw()
			col.Strs = append(col.Strs, x)
		}
	}
	t.avgBytes.Store(0)
}

// StepKind classifies a logged execution step.
type StepKind int

// Step kinds.
const (
	StepScan StepKind = iota
	StepFilter
	StepJoin
	StepAgg
	StepSort
	StepLimit
)

func (k StepKind) String() string {
	switch k {
	case StepScan:
		return "scan"
	case StepFilter:
		return "filter"
	case StepJoin:
		return "join"
	case StepAgg:
		return "agg"
	case StepSort:
		return "sort"
	case StepLimit:
		return "limit"
	}
	return "?"
}

// Step records one operator execution: cardinalities and byte widths
// that the engines' cost models consume.
type Step struct {
	Kind StepKind
	// Table is the base-table name for scans; for joins, the two input
	// names joined with "⋈".
	Table string
	// LeftRows/RightRows are input cardinalities (RightRows 0 except
	// joins).
	LeftRows, RightRows int
	// LeftBytes/RightBytes are input widths in bytes per row.
	LeftWidth, RightWidth int
	// OutRows/OutWidth describe the output.
	OutRows, OutWidth int
	// JoinKey names the join column (joins only); engines use it to
	// check bucketing/partitioning alignment.
	JoinKey string
	// LeftBase/RightBase name the base table an input derives from, ""
	// for intermediates. Partitioning alignment survives filters and
	// projections but not joins or aggregations.
	LeftBase, RightBase string
	// ScanBytesRead/ScanBytesSkipped are set on StepScan steps produced
	// by a pushdown-aware Source: encoded bytes the scan decompressed vs
	// bytes it could skip (unrequested columns plus row groups pruned by
	// zone maps). Cost models use the skipped fraction to discount the
	// per-byte decompression CPU charge.
	ScanBytesRead, ScanBytesSkipped int64
	// ScanGroupsRead/ScanGroupsSkipped count the row groups decoded vs
	// zone-pruned by the scan.
	ScanGroupsRead, ScanGroupsSkipped int
	// ScanBytesFromCache is the portion of ScanBytesRead served from a
	// shared decompressed-chunk cache (subset of ScanBytesRead, so the
	// cost models' skipped fractions are cache-invariant), with the
	// corresponding per-chunk lookup counters.
	ScanBytesFromCache             int64
	ScanCacheHits, ScanCacheMisses int
	// ScanCorruptChunks counts checksum-failed chunks encountered (and
	// degraded around) while serving this scan.
	ScanCorruptChunks int
}

// StepLog accumulates steps in execution order.
type StepLog struct {
	Steps []Step
	// SortNanos is host wall time spent inside the Sort/TopK kernels
	// (permutation + top-k selection, excluding logging), letting
	// harnesses report each query's sort share without touching the
	// cost-model-facing Step fields.
	SortNanos int64
}

// Add appends a step.
func (l *StepLog) Add(s Step) { l.Steps = append(l.Steps, s) }

// Exec is the execution context threading the log through operators.
type Exec struct {
	Log StepLog
	// Parallelism is this query's admission cap on the shared morsel
	// scheduler (sched.go): 0 = the pool size (PoolSize), 1 = serial,
	// n > 1 = at most n of this query's morsels in flight at once. The
	// pool itself is process-wide and sized to GOMAXPROCS, so N
	// concurrent queries never oversubscribe the cores. Kernels are
	// written so the result — including floating-point aggregate bits
	// and group emission order — is identical for every setting.
	Parallelism int
}

// SetBase marks t's rows as originating from (and still partitioned
// like) the named base table.
func SetBase(t *Table, base string) { t.Base = base }

// BaseOf returns the base-table annotation for t ("" if none).
func BaseOf(t *Table) string { return t.Base }

// Scan logs a base-table scan and returns the table itself.
func (e *Exec) Scan(t *Table) *Table {
	e.Log.Add(Step{
		Kind: StepScan, Table: t.Name,
		LeftRows: t.NumRows(), LeftWidth: t.AvgRowBytes(),
		OutRows: t.NumRows(), OutWidth: t.AvgRowBytes(),
		LeftBase: t.Name,
	})
	SetBase(t, t.Name)
	return t
}

// Filter returns the rows of t satisfying pred as a zero-copy view:
// pred is evaluated per logical row index into a new selection vector;
// no cells move. The result keeps t's base annotation (filtering
// preserves partitioning).
func (e *Exec) Filter(t *Table, pred func(i int) bool) *Table {
	sel := filterSel(t, pred, e.workers())
	out := view(t, t.Name+"_f", sel)
	e.Log.Add(Step{
		Kind: StepFilter, Table: t.Name,
		LeftRows: t.NumRows(), LeftWidth: t.AvgRowBytes(),
		OutRows: out.NumRows(), OutWidth: out.AvgRowBytes(),
		LeftBase: BaseOf(t),
	})
	SetBase(out, BaseOf(t))
	return out
}

// filterSel evaluates pred over t's logical rows and returns the
// matching physical indices in row order. With more than one worker the
// rows are split into morsels, each producing its own match buffer, and
// the buffers are concatenated in morsel order — the selection vector is
// identical to the serial one.
func filterSel(t *Table, pred func(i int) bool, workers int) []int32 {
	n := t.NumRows()
	if workers <= 1 || n <= MorselRows {
		sel := []int32{}
		if t.sel != nil {
			for i, p := range t.sel {
				if pred(i) {
					sel = append(sel, p)
				}
			}
		} else {
			for i := 0; i < n; i++ {
				if pred(i) {
					sel = append(sel, int32(i))
				}
			}
		}
		return sel
	}
	morsels := (n + MorselRows - 1) / MorselRows
	parts := make([][]int32, morsels)
	parallelMorsels(n, workers, func(m, lo, hi int) {
		var buf []int32
		if t.sel != nil {
			for i := lo; i < hi; i++ {
				if pred(i) {
					buf = append(buf, t.sel[i])
				}
			}
		} else {
			for i := lo; i < hi; i++ {
				if pred(i) {
					buf = append(buf, int32(i))
				}
			}
		}
		parts[m] = buf
	})
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	sel := make([]int32, 0, total)
	for _, p := range parts {
		sel = append(sel, p...)
	}
	return sel
}

// Project returns a table with the named columns only, preserving the
// base annotation. Column vectors are shared (zero-copy). Projection is
// logged as part of downstream steps, not separately (it is free in
// both engines' models).
func (e *Exec) Project(t *Table, cols ...string) *Table {
	sch := make(Schema, len(cols))
	vecs := make([]*Vector, len(cols))
	for i, c := range cols {
		j := t.Schema.Col(c)
		sch[i] = t.Schema[j]
		vecs[i] = t.Cols[j]
	}
	markShared(t)
	out := &Table{Name: t.Name + "_p", Schema: sch, Cols: vecs, sel: t.sel}
	out.shared.Store(true)
	SetBase(out, BaseOf(t))
	return out
}

// keyAt reads the key at logical row i of a selection-aware key column.
func keyAt[K comparable](data []K, sel []int32, i int) K {
	if sel != nil {
		i = int(sel[i])
	}
	return data[i]
}

// matchTyped is the serial hash-join build/probe kernel for one key
// type: it builds a hash table on the right key column and returns
// parallel slices of matching physical row indices (left-major,
// preserving left row order and right insertion order within a key). It
// is retained verbatim as the reference the morsel-parallel kernels in
// join_parallel.go are differentially tested against.
func matchTyped[K comparable](left, right *Table, lKeys, rKeys []K) (lIdx, rIdx []int32) {
	ln, rn := left.NumRows(), right.NumRows()
	ht := make(map[K][]int32, rn)
	for j := 0; j < rn; j++ {
		k := keyAt(rKeys, right.sel, j)
		ht[k] = append(ht[k], right.phys(j))
	}
	for i := 0; i < ln; i++ {
		if b := ht[keyAt(lKeys, left.sel, i)]; len(b) > 0 {
			p := left.phys(i)
			for _, rp := range b {
				lIdx = append(lIdx, p)
				rIdx = append(rIdx, rp)
			}
		}
	}
	return lIdx, rIdx
}

// Join hash-joins left and right on leftKey = rightKey (inner join),
// producing the concatenated schema with right's key column retained
// (callers project as needed). The output is materialized with typed
// per-column gathers — no boxing. Build, probe, and gather all run on
// the Exec's morsel worker pool (join_parallel.go); the output is
// byte-identical at every pool size.
func (e *Exec) Join(left, right *Table, leftKey, rightKey string) *Table {
	li := left.Schema.Col(leftKey)
	ri := right.Schema.Col(rightKey)
	w := e.workers()
	lIdx, rIdx := matchIndicesWorkers(left, right, li, ri, w)
	sch := make(Schema, 0, len(left.Schema)+len(right.Schema))
	sch = append(sch, left.Schema...)
	sch = append(sch, right.Schema...)
	cols := make([]*Vector, 0, len(sch))
	for _, v := range left.Cols {
		cols = append(cols, v.gatherWorkers(lIdx, w))
	}
	for _, v := range right.Cols {
		cols = append(cols, v.gatherWorkers(rIdx, w))
	}
	out := &Table{Name: left.Name + "⋈" + right.Name, Schema: sch, Cols: cols}
	e.Log.Add(Step{
		Kind: StepJoin, Table: out.Name,
		LeftRows: left.NumRows(), LeftWidth: left.AvgRowBytes(),
		RightRows: right.NumRows(), RightWidth: right.AvgRowBytes(),
		OutRows: out.NumRows(), OutWidth: out.AvgRowBytes(),
		JoinKey:  leftKey,
		LeftBase: BaseOf(left), RightBase: BaseOf(right),
	})
	return out
}

// memberTyped is the serial semi/anti-join kernel for one key type: per
// logical left row, whether its key appears in the right key column.
// Like matchTyped, it is the retained serial reference for the parallel
// kernels.
func memberTyped[K comparable](left, right *Table, lKeys, rKeys []K) []bool {
	ln, rn := left.NumRows(), right.NumRows()
	set := make(map[K]struct{}, rn)
	for j := 0; j < rn; j++ {
		set[keyAt(rKeys, right.sel, j)] = struct{}{}
	}
	hit := make([]bool, ln)
	for i := 0; i < ln; i++ {
		_, hit[i] = set[keyAt(lKeys, left.sel, i)]
	}
	return hit
}

// semiAnti implements SemiJoin (keep=true) and AntiJoin (keep=false) as
// zero-copy views over left. The membership probe runs on the Exec's
// worker pool.
func (e *Exec) semiAnti(left, right *Table, leftKey, rightKey, suffix string, keep bool) *Table {
	li := left.Schema.Col(leftKey)
	ri := right.Schema.Col(rightKey)
	hit := keyMembershipWorkers(left, right, li, ri, e.workers())
	sel := make([]int32, 0, len(hit))
	for i, h := range hit {
		if h == keep {
			sel = append(sel, left.phys(i))
		}
	}
	out := view(left, left.Name+suffix, sel)
	e.Log.Add(Step{
		Kind: StepJoin, Table: out.Name,
		LeftRows: left.NumRows(), LeftWidth: left.AvgRowBytes(),
		RightRows: right.NumRows(), RightWidth: right.AvgRowBytes(),
		OutRows: out.NumRows(), OutWidth: out.AvgRowBytes(),
		JoinKey:  leftKey,
		LeftBase: BaseOf(left), RightBase: BaseOf(right),
	})
	SetBase(out, BaseOf(left))
	return out
}

// SemiJoin returns left rows whose key appears in right (IN subquery).
func (e *Exec) SemiJoin(left, right *Table, leftKey, rightKey string) *Table {
	return e.semiAnti(left, right, leftKey, rightKey, "_semi", true)
}

// AntiJoin returns left rows whose key does not appear in right (NOT IN
// / NOT EXISTS).
func (e *Exec) AntiJoin(left, right *Table, leftKey, rightKey string) *Table {
	return e.semiAnti(left, right, leftKey, rightKey, "_anti", false)
}

// AggSpec is one aggregate: Fn over the expression column Col (or "*"
// for COUNT(*)), output-named As.
type AggSpec struct {
	Fn  string // "sum", "avg", "count", "min", "max"
	Col string
	As  string
}

// accum is the typed per-group aggregation state.
type accum struct {
	firstRow int32 // physical index of the group's first row
	sums     []float64
	mins     []float64
	maxs     []float64
	strMins  []string
	strMaxs  []string
	count    int64
}

// Aggregate groups t by the named columns and computes aggs, logging
// the step. Group columns precede aggregates in the output schema.
// Accumulation is typed (float64 state for numeric columns, strings for
// min/max over Str) and groups are emitted in first-seen order.
func (e *Exec) Aggregate(t *Table, groupBy []string, aggs []AggSpec) *Table {
	gidx := make([]int, len(groupBy))
	for i, g := range groupBy {
		gidx[i] = t.Schema.Col(g)
	}
	aidx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Col == "*" {
			aidx[i] = -1
		} else {
			aidx[i] = t.Schema.Col(a.Col)
		}
	}
	// needNum/needStr size the per-group state: count-only aggregations
	// (the common case for the dedup/per-key sub-aggregates) allocate no
	// accumulator slices at all.
	needNum, needStr := false, false
	for _, ci := range aidx {
		if ci < 0 {
			continue
		}
		if t.Schema[ci].Type == Str {
			needStr = true
		} else {
			needNum = true
		}
	}
	newAccum := func(p int32) *accum {
		acc := &accum{firstRow: p}
		if needNum {
			state := make([]float64, 3*len(aggs))
			acc.sums = state[:len(aggs)]
			acc.mins = state[len(aggs) : 2*len(aggs)]
			acc.maxs = state[2*len(aggs):]
			for k := range acc.mins {
				acc.mins[k] = 1e308
				acc.maxs[k] = -1e308
			}
		}
		if needStr {
			state := make([]string, 2*len(aggs))
			acc.strMins = state[:len(aggs)]
			acc.strMaxs = state[len(aggs):]
		}
		return acc
	}
	var order []*accum
	w := e.workers()
	serial := w <= 1 || t.NumRows() <= MorselRows
	if gcols, mults, span, ok := denseGroupInfo(t, gidx); ok {
		// Every group column is dict-encoded and the combined code
		// space is small (Q1: 4 groups over a 6-value space):
		// accumulate into a flat slot array instead of a hash map.
		if serial {
			order = aggregateDenseSerial(t, gcols, mults, span, aidx, newAccum)
		} else {
			order = aggregateDenseMorsels(t, gcols, mults, span, aidx, newAccum, w)
		}
	} else {
		// The hash kernels index column slices by physical row, so
		// run-encoded inputs expand (memoized) first.
		ft := flattenedFor(t, gidx, aidx)
		if serial {
			order = aggregateSerial(ft, gidx, aidx, newAccum)
		} else {
			order = aggregateMorsels(ft, gidx, aidx, newAccum, w)
		}
	}
	sch := make(Schema, 0, len(groupBy)+len(aggs))
	for _, g := range groupBy {
		sch = append(sch, t.Schema[t.Schema.Col(g)])
	}
	strAgg := make([]bool, len(aggs))
	for i, a := range aggs {
		typ := Float
		if a.Fn == "count" {
			typ = Int
		}
		if a.Fn == "min" || a.Fn == "max" {
			if a.Col != "*" && t.Schema[t.Schema.Col(a.Col)].Type == Str {
				typ = Str
				strAgg[i] = true
			}
		}
		sch = append(sch, Column{Name: a.As, Type: typ})
	}
	out := NewTable(t.Name+"_agg", sch)
	// Dict-encoded group columns stay dict-encoded on the way out: the
	// output vector shares the input's dictionary and appendFrom moves
	// codes, so a downstream Sort on the group keys still compares ints.
	for k, gi := range gidx {
		if in := t.Cols[gi]; in.DictVals != nil {
			out.Cols[k] = DictV(make([]uint32, 0, len(order)), in.DictVals)
		}
	}
	for _, acc := range order {
		for k, gi := range gidx {
			out.Cols[k].appendFrom(t.Cols[gi], acc.firstRow)
		}
		for i, a := range aggs {
			col := out.Cols[len(gidx)+i]
			switch a.Fn {
			case "sum":
				col.Floats = append(col.Floats, acc.sums[i])
			case "avg":
				col.Floats = append(col.Floats, acc.sums[i]/float64(acc.count))
			case "count":
				col.Ints = append(col.Ints, acc.count)
			case "min":
				if strAgg[i] {
					col.Strs = append(col.Strs, acc.strMins[i])
				} else {
					col.Floats = append(col.Floats, acc.mins[i])
				}
			case "max":
				if strAgg[i] {
					col.Strs = append(col.Strs, acc.strMaxs[i])
				} else {
					col.Floats = append(col.Floats, acc.maxs[i])
				}
			default:
				panic("relal: unknown aggregate " + a.Fn)
			}
		}
	}
	e.Log.Add(Step{
		Kind: StepAgg, Table: t.Name,
		LeftRows: t.NumRows(), LeftWidth: t.AvgRowBytes(),
		OutRows: out.NumRows(), OutWidth: out.AvgRowBytes(),
		LeftBase: BaseOf(t),
	})
	return out
}

// appendGroupKey appends the group-key encoding of physical row p onto
// key. A dict-encoded group column contributes its uint32 code instead
// of the string bytes: the code↔value bijection makes the grouping (and
// the first-seen order) identical, but the key build touches no string
// — on Q1's (l_returnflag, l_linestatus) the composite key is two small
// ints.
func appendGroupKey(key []byte, t *Table, gidx []int, p int32) []byte {
	for _, gi := range gidx {
		col := t.Cols[gi]
		switch col.Kind {
		case Int:
			key = strconv.AppendInt(key, col.Ints[p], 10)
		case Float:
			key = strconv.AppendFloat(key, col.Floats[p], 'g', -1, 64)
		default:
			if col.DictVals != nil {
				key = strconv.AppendUint(key, uint64(col.Dict[p]), 10)
			} else {
				key = append(key, col.Strs[p]...)
			}
		}
		key = append(key, 0)
	}
	return key
}

// observe folds physical row p into the accumulator. Callers must feed
// each group its rows in global row order: that keeps float sums
// bit-identical across serial and morsel execution.
func (acc *accum) observe(t *Table, aidx []int, p int32) {
	acc.count++
	for ai, ci := range aidx {
		if ci < 0 {
			continue
		}
		col := t.Cols[ci]
		switch col.Kind {
		case Int:
			f := float64(col.Ints[p])
			acc.sums[ai] += f
			if f < acc.mins[ai] {
				acc.mins[ai] = f
			}
			if f > acc.maxs[ai] {
				acc.maxs[ai] = f
			}
		case Float:
			f := col.Floats[p]
			acc.sums[ai] += f
			if f < acc.mins[ai] {
				acc.mins[ai] = f
			}
			if f > acc.maxs[ai] {
				acc.maxs[ai] = f
			}
		default:
			s := col.StrAt(p)
			// count was already incremented for this row, so
			// count==1 marks the group's first accumulation (the
			// zero value "" is a legitimate minimum, not a
			// sentinel).
			if acc.count == 1 || s < acc.strMins[ai] {
				acc.strMins[ai] = s
			}
			if s > acc.strMaxs[ai] {
				acc.strMaxs[ai] = s
			}
		}
	}
}

// aggregateSerial is the single-pass group-by kernel: one hash probe and
// one accumulation per row, groups in first-seen order.
func aggregateSerial(t *Table, gidx, aidx []int, newAccum func(p int32) *accum) []*accum {
	n := t.NumRows()
	groups := make(map[string]*accum)
	var order []*accum
	key := make([]byte, 0, 64)
	for i := 0; i < n; i++ {
		p := t.phys(i)
		key = appendGroupKey(key[:0], t, gidx, p)
		acc, ok := groups[string(key)]
		if !ok {
			acc = newAccum(p)
			groups[string(key)] = acc
			order = append(order, acc)
		}
		acc.observe(t, aidx, p)
	}
	return order
}

// aggregateMorsels is the parallel group-by kernel. Its output is
// bit-identical to aggregateSerial for any worker count:
//
//  1. each morsel builds a local group table and per-row local ids
//     (parallel);
//  2. local tables merge in morsel order, which reproduces the global
//     first-seen group order (all rows of morsel m precede morsel m+1's);
//  3. per-row ids remap to global ids (parallel) and a stable counting
//     sort buckets the physical rows by group, preserving row order;
//  4. each group accumulates its rows in global row order — the same
//     float addition order as the serial pass — parallelized across
//     groups.
func aggregateMorsels(t *Table, gidx, aidx []int, newAccum func(p int32) *accum, workers int) []*accum {
	n := t.NumRows()
	morsels := (n + MorselRows - 1) / MorselRows
	type local struct {
		keys   []string // local gid → group key
		first  []int32  // local gid → physical row of first occurrence
		rowGid []int32  // morsel row → local gid
	}
	locals := make([]local, morsels)
	parallelMorsels(n, workers, func(m, lo, hi int) {
		groups := make(map[string]int32)
		l := local{rowGid: make([]int32, hi-lo)}
		key := make([]byte, 0, 64)
		for i := lo; i < hi; i++ {
			p := t.phys(i)
			key = appendGroupKey(key[:0], t, gidx, p)
			gid, ok := groups[string(key)]
			if !ok {
				gid = int32(len(l.keys))
				groups[string(key)] = gid
				l.keys = append(l.keys, string(key))
				l.first = append(l.first, p)
			}
			l.rowGid[i-lo] = gid
		}
		locals[m] = l
	})

	global := make(map[string]int32)
	var order []*accum
	remaps := make([][]int32, morsels)
	for m := range locals {
		l := &locals[m]
		remap := make([]int32, len(l.keys))
		for lid, k := range l.keys {
			gid, ok := global[k]
			if !ok {
				gid = int32(len(order))
				global[k] = gid
				order = append(order, newAccum(l.first[lid]))
			}
			remap[lid] = gid
		}
		remaps[m] = remap
	}

	rowGid := make([]int32, n)
	parallelMorsels(n, workers, func(m, lo, hi int) {
		remap := remaps[m]
		lg := locals[m].rowGid
		for i := lo; i < hi; i++ {
			rowGid[i] = remap[lg[i-lo]]
		}
	})

	counts := make([]int32, len(order))
	for _, g := range rowGid {
		counts[g]++
	}
	starts := make([]int32, len(order)+1)
	for g, c := range counts {
		starts[g+1] = starts[g] + c
	}
	grouped := make([]int32, n)
	cursor := make([]int32, len(order))
	copy(cursor, starts[:len(order)])
	for i := 0; i < n; i++ {
		g := rowGid[i]
		grouped[cursor[g]] = t.phys(i)
		cursor[g]++
	}

	parallelRanges(len(order), workers, func(lo, hi int) {
		for g := lo; g < hi; g++ {
			acc := order[g]
			for _, p := range grouped[starts[g]:starts[g+1]] {
				acc.observe(t, aidx, p)
			}
		}
	})
	return order
}

// OrderSpec is one sort key.
type OrderSpec struct {
	Col  string
	Desc bool
}

// cmpFn returns a physical-index comparator over one typed key column;
// neg is -1 for descending keys. cmp.Compare gives a total order even
// for float NaN (NaN sorts before every number and ties with itself) —
// a non-transitive comparator would let two correct stable sorts
// produce different permutations, which the parallel/serial
// differential contract forbids.
func cmpFn[K cmp.Ordered](xs []K, neg int) func(a, b int32) int {
	return func(a, b int32) int {
		return neg * cmp.Compare(xs[a], xs[b])
	}
}

// sortCmps builds the per-key physical-index comparators for t.
func sortCmps(t *Table, keys []OrderSpec) []func(a, b int32) int {
	cmps := make([]func(a, b int32) int, len(keys))
	for k, spec := range keys {
		ci := t.Schema.Col(spec.Col)
		// Sort compares by arbitrary physical index, so run-encoded key
		// columns expand lazily (memoized) rather than teaching the
		// merge tree about runs.
		col := t.Cols[ci].Flat()
		neg := 1
		if spec.Desc {
			neg = -1
		}
		switch col.Kind {
		case Int:
			cmps[k] = cmpFn(col.Ints, neg)
		case Float:
			cmps[k] = cmpFn(col.Floats, neg)
		default:
			if col.DictVals != nil {
				// The dictionary is sorted, so code order is value
				// order: the string sort runs as a uint32 sort.
				cmps[k] = cmpFn(col.Dict, neg)
			} else {
				cmps[k] = cmpFn(col.Strs, neg)
			}
		}
	}
	return cmps
}

// sortIndexSerial is the serial sort kernel: a single stable sort of the
// physical-index vector. It is retained verbatim as the differential
// reference the morsel-parallel kernel in sort_parallel.go is tested
// against (stability fully determines the permutation, so the parallel
// merge must reproduce it byte-for-byte).
func sortIndexSerial(t *Table, cmps []func(a, b int32) int) []int32 {
	n := t.NumRows()
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = t.phys(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for _, c := range cmps {
			if r := c(idx[a], idx[b]); r != 0 {
				return r < 0
			}
		}
		return false
	})
	return idx
}

// Sort orders t by the given keys, logging the step. The sort permutes
// an index slice over the shared column vectors — no row is copied. The
// permutation is produced by the morsel-parallel merge sort on the
// Exec's worker pool (sort_parallel.go) and is byte-identical to the
// serial stable sort at every pool size.
func (e *Exec) Sort(t *Table, keys ...OrderSpec) *Table {
	start := time.Now()
	idx := sortIndexWorkers(t, sortCmps(t, keys), e.workers())
	e.Log.SortNanos += time.Since(start).Nanoseconds()
	out := view(t, t.Name+"_s", idx)
	e.Log.Add(Step{
		Kind: StepSort, Table: t.Name,
		LeftRows: t.NumRows(), LeftWidth: t.AvgRowBytes(),
		OutRows: out.NumRows(), OutWidth: out.AvgRowBytes(),
		LeftBase: BaseOf(t),
	})
	SetBase(out, BaseOf(t))
	return out
}

// Limit truncates t to n rows as a zero-copy view (the selection vector
// is truncated, or synthesized for a dense input — the input table is
// never written, so concurrent streams can limit one shared table). The
// step is logged with the truncated view's own width; both cost models
// fold limits into the surrounding job, so replayed costs are unchanged.
func (e *Exec) Limit(t *Table, n int) *Table {
	markShared(t)
	out := &Table{Name: t.Name, Schema: t.Schema, Cols: t.Cols, sel: t.sel}
	out.shared.Store(true)
	if t.NumRows() > n {
		if t.sel != nil {
			out.sel = t.sel[:n]
		} else {
			sel := make([]int32, n)
			for i := range sel {
				sel[i] = int32(i)
			}
			out.sel = sel
		}
	}
	e.Log.Add(Step{
		Kind: StepLimit, Table: t.Name,
		LeftRows: t.NumRows(), LeftWidth: t.AvgRowBytes(),
		OutRows: out.NumRows(), OutWidth: out.AvgRowBytes(),
		LeftBase: BaseOf(t),
	})
	SetBase(out, BaseOf(t))
	return out
}

// F converts an int64/float64 cell to float64 (arithmetic helper for
// code working over RowsOf output).
func F(v interface{}) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	}
	panic(fmt.Sprintf("relal: not numeric: %T", v))
}

// I returns the cell as int64.
func I(v interface{}) int64 { return v.(int64) }

// S returns the cell as string.
func S(v interface{}) string { return v.(string) }

// extendSlice fills a length-n slice with fn(i), splitting the rows into
// morsels when workers > 1 (each index writes its own slot, so the
// result is identical at any parallelism).
func extendSlice[T any](n, workers int, fn func(i int) T) []T {
	xs := make([]T, n)
	if workers <= 1 || n <= MorselRows {
		for i := 0; i < n; i++ {
			xs[i] = fn(i)
		}
		return xs
	}
	parallelMorsels(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			xs[i] = fn(i)
		}
	})
	return xs
}

// ExtendInt appends a computed Int column to t (no step logged;
// expression evaluation is costed with the surrounding operator). fn
// receives logical row indices of t; views are compacted so the output
// is dense.
func ExtendInt(t *Table, name string, fn func(i int) int64) *Table {
	return extendWith(t, name, IntsV(extendSlice(t.NumRows(), 1, fn)))
}

// ExtendFloat appends a computed Float column to t.
func ExtendFloat(t *Table, name string, fn func(i int) float64) *Table {
	return extendWith(t, name, FloatsV(extendSlice(t.NumRows(), 1, fn)))
}

// ExtendStr appends a computed Str column to t.
func ExtendStr(t *Table, name string, fn func(i int) string) *Table {
	return extendWith(t, name, StrsV(extendSlice(t.NumRows(), 1, fn)))
}

// ExtendInt is the morsel-parallel projection kernel for computed Int
// columns: fn runs across the Exec's worker pool.
func (e *Exec) ExtendInt(t *Table, name string, fn func(i int) int64) *Table {
	return extendWith(t, name, IntsV(extendSlice(t.NumRows(), e.workers(), fn)))
}

// ExtendFloat is the morsel-parallel projection kernel for computed
// Float columns.
func (e *Exec) ExtendFloat(t *Table, name string, fn func(i int) float64) *Table {
	return extendWith(t, name, FloatsV(extendSlice(t.NumRows(), e.workers(), fn)))
}

// ExtendStr is the morsel-parallel projection kernel for computed Str
// columns.
func (e *Exec) ExtendStr(t *Table, name string, fn func(i int) string) *Table {
	return extendWith(t, name, StrsV(extendSlice(t.NumRows(), e.workers(), fn)))
}

func extendWith(t *Table, name string, col *Vector) *Table {
	d := t.Compacted()
	if d == t {
		// Dense input: the output aliases t's vectors directly.
		markShared(t)
	}
	cols := make([]*Vector, 0, len(d.Cols)+1)
	cols = append(cols, d.Cols...)
	cols = append(cols, col)
	sch := make(Schema, 0, len(t.Schema)+1)
	sch = append(sch, t.Schema...)
	sch = append(sch, Column{Name: name, Type: col.Kind})
	// The first len(d.Cols) vectors alias the (compacted) input.
	out := &Table{Name: t.Name, Schema: sch, Cols: cols}
	out.shared.Store(true)
	SetBase(out, BaseOf(t))
	return out
}
