package relal

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func numbers(n int) *Table {
	t := NewTable("nums", Schema{
		{Name: "k", Type: Int},
		{Name: "v", Type: Float},
		{Name: "grp", Type: Str},
	})
	for i := 0; i < n; i++ {
		AppendRow(t, Row{int64(i), float64(i) * 2, fmt.Sprintf("g%d", i%3)})
	}
	return t
}

func TestSchemaCol(t *testing.T) {
	s := Schema{{Name: "a", Type: Int}, {Name: "b", Type: Str}}
	if s.Col("b") != 1 {
		t.Error("Col(b) != 1")
	}
	defer func() {
		if recover() == nil {
			t.Error("Col on missing column should panic")
		}
	}()
	s.Col("zz")
}

func TestFilterKeepsBase(t *testing.T) {
	e := &Exec{}
	tb := e.Scan(numbers(10))
	k := tb.IntCol("k")
	f := e.Filter(tb, func(i int) bool { return k.Get(i) >= 5 })
	if f.NumRows() != 5 {
		t.Errorf("filtered rows = %d, want 5", f.NumRows())
	}
	if BaseOf(f) != "nums" {
		t.Error("filter must preserve base annotation")
	}
}

func TestProject(t *testing.T) {
	e := &Exec{}
	p := e.Project(numbers(3), "v", "k")
	if len(p.Schema) != 2 || p.Schema[0].Name != "v" {
		t.Errorf("schema = %v", p.Schema.Names())
	}
	if p.FloatCol("v").Get(1) != 2 || p.IntCol("k").Get(1) != 1 {
		t.Errorf("row = %v", RowsOf(p)[1])
	}
}

func TestJoinInner(t *testing.T) {
	e := &Exec{}
	left := NewTable("l", Schema{{Name: "id", Type: Int}, {Name: "x", Type: Str}})
	right := NewTable("r", Schema{{Name: "rid", Type: Int}, {Name: "y", Type: Str}})
	for i := 0; i < 4; i++ {
		AppendRow(left, Row{int64(i), fmt.Sprintf("x%d", i)})
	}
	AppendRow(right, Row{int64(1), "a"})
	AppendRow(right, Row{int64(1), "b"})
	AppendRow(right, Row{int64(3), "c"})
	out := e.Join(left, right, "id", "rid")
	if out.NumRows() != 3 {
		t.Fatalf("join rows = %d, want 3 (1×2 + 3×1)", out.NumRows())
	}
	if BaseOf(out) != "" {
		t.Error("join output must lose base annotation")
	}
	// The join step must be logged with cardinalities.
	st := e.Log.Steps[len(e.Log.Steps)-1]
	if st.Kind != StepJoin || st.LeftRows != 4 || st.RightRows != 3 || st.OutRows != 3 {
		t.Errorf("join step = %+v", st)
	}
}

func TestSemiAntiJoinPartition(t *testing.T) {
	e := &Exec{}
	left := numbers(10)
	right := NewTable("r", Schema{{Name: "id", Type: Int}})
	for i := 0; i < 10; i += 2 {
		AppendRow(right, Row{int64(i)})
	}
	semi := e.SemiJoin(left, right, "k", "id")
	anti := e.AntiJoin(left, right, "k", "id")
	if semi.NumRows()+anti.NumRows() != left.NumRows() {
		t.Errorf("semi (%d) + anti (%d) != total (%d)", semi.NumRows(), anti.NumRows(), left.NumRows())
	}
	if semi.NumRows() != 5 {
		t.Errorf("semi rows = %d, want 5", semi.NumRows())
	}
}

func TestSemiAntiJoinDuplicateKeys(t *testing.T) {
	// Duplicate keys on both sides: semi/anti are per-left-row set
	// membership, never multiplied by right-side duplicates.
	e := &Exec{}
	left := NewTable("l", Schema{{Name: "id", Type: Int}})
	for _, k := range []int64{1, 1, 2, 3, 3, 3} {
		AppendRow(left, Row{k})
	}
	right := NewTable("r", Schema{{Name: "id", Type: Int}})
	for _, k := range []int64{1, 1, 1, 3} {
		AppendRow(right, Row{k})
	}
	semi := e.SemiJoin(left, right, "id", "id")
	anti := e.AntiJoin(left, right, "id", "id")
	if semi.NumRows() != 5 {
		t.Errorf("semi rows = %d, want 5 (two 1s and three 3s)", semi.NumRows())
	}
	if anti.NumRows() != 1 {
		t.Errorf("anti rows = %d, want 1 (the single 2)", anti.NumRows())
	}
	ids := semi.IntCol("id")
	for i, want := range []int64{1, 1, 3, 3, 3} {
		if ids.Get(i) != want {
			t.Errorf("semi row %d = %d, want %d (order must be preserved)", i, ids.Get(i), want)
		}
	}
}

func TestEmptyInputOperators(t *testing.T) {
	e := &Exec{}
	empty := numbers(0)
	full := numbers(4)
	if f := e.Filter(empty, func(int) bool { return true }); f.NumRows() != 0 {
		t.Error("filter of empty input must be empty")
	}
	if j := e.Join(empty, full, "k", "k"); j.NumRows() != 0 {
		t.Error("join with empty left must be empty")
	}
	if j := e.Join(full, empty, "k", "k"); j.NumRows() != 0 {
		t.Error("join with empty right must be empty")
	}
	if s := e.SemiJoin(full, empty, "k", "k"); s.NumRows() != 0 {
		t.Error("semi join against empty right must be empty")
	}
	if a := e.AntiJoin(full, empty, "k", "k"); a.NumRows() != full.NumRows() {
		t.Error("anti join against empty right must keep everything")
	}
	if s := e.Sort(empty, OrderSpec{Col: "k"}); s.NumRows() != 0 {
		t.Error("sort of empty input must be empty")
	}
	if l := e.Limit(empty, 5); l.NumRows() != 0 {
		t.Error("limit of empty input must be empty")
	}
}

func TestAggregateZeroGroups(t *testing.T) {
	// Empty input yields zero groups — even for a global (nil groupBy)
	// aggregate, matching SQL's grouped-aggregate-over-empty semantics
	// in the row-at-a-time engine.
	e := &Exec{}
	out := e.Aggregate(numbers(0), nil, []AggSpec{{Fn: "sum", Col: "v", As: "s"}})
	if out.NumRows() != 0 {
		t.Errorf("aggregate of empty input has %d rows, want 0", out.NumRows())
	}
	grouped := e.Aggregate(numbers(0), []string{"grp"}, []AggSpec{{Fn: "count", Col: "*", As: "n"}})
	if grouped.NumRows() != 0 {
		t.Errorf("grouped aggregate of empty input has %d rows, want 0", grouped.NumRows())
	}
}

func TestAggregateSumCountAvg(t *testing.T) {
	e := &Exec{}
	out := e.Aggregate(numbers(9), []string{"grp"}, []AggSpec{
		{Fn: "sum", Col: "v", As: "sv"},
		{Fn: "count", Col: "*", As: "n"},
		{Fn: "avg", Col: "v", As: "av"},
		{Fn: "min", Col: "v", As: "mn"},
		{Fn: "max", Col: "v", As: "mx"},
	})
	if out.NumRows() != 3 {
		t.Fatalf("groups = %d, want 3", out.NumRows())
	}
	// Group g0 holds k=0,3,6 → v=0,6,12.
	for _, r := range RowsOf(out) {
		if S(r[0]) != "g0" {
			continue
		}
		if F(r[1]) != 18 || I(r[2]) != 3 || F(r[3]) != 6 || F(r[4]) != 0 || F(r[5]) != 12 {
			t.Errorf("g0 aggregates = %v", r)
		}
	}
}

func TestAggregateGlobal(t *testing.T) {
	e := &Exec{}
	out := e.Aggregate(numbers(4), nil, []AggSpec{{Fn: "sum", Col: "v", As: "s"}})
	if out.NumRows() != 1 || out.FloatCol("s").Get(0) != 12 {
		t.Errorf("global sum = %v", RowsOf(out))
	}
}

func TestAggregateMinMaxString(t *testing.T) {
	e := &Exec{}
	out := e.Aggregate(numbers(5), nil, []AggSpec{
		{Fn: "min", Col: "grp", As: "m"},
		{Fn: "max", Col: "grp", As: "x"},
	})
	if out.StrCol("m").Get(0) != "g0" {
		t.Errorf("min string = %v", out.StrCol("m").Get(0))
	}
	if out.StrCol("x").Get(0) != "g2" {
		t.Errorf("max string = %v", out.StrCol("x").Get(0))
	}
}

func TestSortAscDesc(t *testing.T) {
	e := &Exec{}
	out := e.Sort(numbers(10), OrderSpec{Col: "grp"}, OrderSpec{Col: "k", Desc: true})
	gs := out.StrCol("grp")
	ks := out.IntCol("k")
	var lastG string
	lastK := int64(1 << 62)
	for i := 0; i < out.NumRows(); i++ {
		g, k := gs.Get(i), ks.Get(i)
		if g < lastG {
			t.Fatal("not sorted by grp")
		}
		if g != lastG {
			lastG, lastK = g, 1<<62
		}
		if k > lastK {
			t.Fatal("not sorted by k desc within group")
		}
		lastK = k
	}
}

func TestSortDoesNotMutateInput(t *testing.T) {
	e := &Exec{}
	in := numbers(5)
	first := in.IntCol("k").Get(0)
	e.Sort(in, OrderSpec{Col: "k", Desc: true})
	if in.IntCol("k").Get(0) != first {
		t.Error("sort mutated its input")
	}
}

func TestLimit(t *testing.T) {
	e := &Exec{}
	out := e.Limit(numbers(10), 3)
	if out.NumRows() != 3 {
		t.Errorf("limit rows = %d", out.NumRows())
	}
	if e.Limit(numbers(2), 5).NumRows() != 2 {
		t.Error("limit beyond size should be identity")
	}
}

func TestLimitAfterSortSharesVectors(t *testing.T) {
	// Sort + Limit must stay a view: the output shares the input's
	// column vectors, only the selection vector is new.
	e := &Exec{}
	in := numbers(100)
	out := e.Limit(e.Sort(in, OrderSpec{Col: "k", Desc: true}), 10)
	if out.NumRows() != 10 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	if out.Cols[0] != in.Cols[0] {
		t.Error("sort+limit must share the input's column vectors")
	}
	if out.IntCol("k").Get(0) != 99 {
		t.Errorf("top row = %d, want 99", out.IntCol("k").Get(0))
	}
}

func TestExtend(t *testing.T) {
	tb := numbers(3)
	v := tb.FloatCol("v")
	out := ExtendFloat(tb, "double", func(i int) float64 { return v.Get(i) * 2 })
	if len(out.Schema) != 4 {
		t.Fatal("extend did not add a column")
	}
	if out.FloatCol("double").Get(2) != 8 {
		t.Errorf("extended value = %v", out.FloatCol("double").Get(2))
	}
}

func TestExtendOnViewCompacts(t *testing.T) {
	e := &Exec{}
	tb := numbers(10)
	k := tb.IntCol("k")
	f := e.Filter(tb, func(i int) bool { return k.Get(i)%2 == 0 })
	fk := f.IntCol("k")
	out := ExtendInt(f, "kk", func(i int) int64 { return fk.Get(i) * 10 })
	if out.NumRows() != 5 {
		t.Fatalf("rows = %d, want 5", out.NumRows())
	}
	for i := 0; i < out.NumRows(); i++ {
		if out.IntCol("kk").Get(i) != out.IntCol("k").Get(i)*10 {
			t.Errorf("row %d: kk=%d k=%d", i, out.IntCol("kk").Get(i), out.IntCol("k").Get(i))
		}
	}
}

func TestAvgRowBytes(t *testing.T) {
	tb := numbers(10)
	b := tb.AvgRowBytes()
	// 2 numeric (8 each) + "gN" string (2+1).
	if b != 19 {
		t.Errorf("avg row bytes = %d, want 19", b)
	}
	empty := NewTable("e", tb.Schema)
	if empty.AvgRowBytes() <= 0 {
		t.Error("empty table must estimate width from schema")
	}
}

func TestAvgRowBytesExactOnView(t *testing.T) {
	// Width is computed over the selected rows only, exactly.
	t1 := NewTable("t", Schema{{Name: "s", Type: Str}})
	AppendRow(t1, Row{"a"})         // 2 bytes encoded
	AppendRow(t1, Row{"abcdefghi"}) // 10 bytes encoded
	e := &Exec{}
	sv := t1.StrCol("s")
	long := e.Filter(t1, func(i int) bool { return len(sv.Get(i)) > 1 })
	if got := long.AvgRowBytes(); got != 10 {
		t.Errorf("view width = %d, want 10 (only the long row is selected)", got)
	}
	if got := t1.AvgRowBytes(); got != 6 {
		t.Errorf("dense width = %d, want 6 ((2+10)/2)", got)
	}
}

func TestRowsOfAppendRowRoundTrip(t *testing.T) {
	src := numbers(7)
	dst := NewTable("copy", src.Schema)
	for _, r := range RowsOf(src) {
		AppendRow(dst, r)
	}
	got, want := RowsOf(dst), RowsOf(src)
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		for c := range want[i] {
			if got[i][c] != want[i][c] {
				t.Fatalf("cell (%d,%d) = %v, want %v", i, c, got[i][c], want[i][c])
			}
		}
	}
}

func TestAppendRowToSharedViewDoesNotCorruptSource(t *testing.T) {
	// Project/Limit outputs alias the source's vectors; AppendRow must
	// privatize them so the source table never desynchronizes.
	e := &Exec{}
	tb := numbers(4)
	p := e.Project(tb, "k")
	AppendRow(p, Row{int64(99)})
	if p.NumRows() != 5 || p.IntCol("k").Get(4) != 99 {
		t.Errorf("projection after append = %v", RowsOf(p))
	}
	if tb.NumRows() != 4 || tb.Cols[0].Len() != 4 {
		t.Errorf("source table corrupted: %d rows, col len %d", tb.NumRows(), tb.Cols[0].Len())
	}
	lim := e.Limit(tb, 10) // identity limit still shares vectors
	AppendRow(lim, Row{int64(7), 14.0, "g1"})
	if tb.NumRows() != 4 {
		t.Errorf("source table corrupted via limit view: %d rows", tb.NumRows())
	}
	if lim.NumRows() != 5 {
		t.Errorf("limit view rows = %d, want 5", lim.NumRows())
	}
}

func TestAppendRowToSourceDoesNotCorruptViews(t *testing.T) {
	// The aliasing goes both ways: appending to the *source* after a
	// view/extension was derived from it must privatize too, or the
	// derived table's columns desynchronize.
	tb := numbers(2)
	v := tb.FloatCol("v")
	ext := ExtendFloat(tb, "v2", func(i int) float64 { return v.Get(i) })
	AppendRow(tb, Row{int64(9), 18.0, "g0"})
	if tb.NumRows() != 3 {
		t.Errorf("source rows = %d, want 3", tb.NumRows())
	}
	if ext.NumRows() != 2 {
		t.Errorf("extended rows = %d, want 2", ext.NumRows())
	}
	for _, r := range RowsOf(ext) { // must not panic on ragged columns
		if len(r) != 4 {
			t.Fatalf("ragged extended row %v", r)
		}
	}
}

func TestAppendRowToAdoptedVectorsDoesNotCorruptAlias(t *testing.T) {
	// NewTable adopts supplied vectors, which may alias another table's
	// columns (the q7/q8 renamed-nation pattern); appends to either
	// table must privatize first.
	base := NewTable("base", Schema{
		{Name: "k", Type: Int},
		{Name: "s", Type: Str},
	}, IntsV([]int64{1, 2}), StrsV([]string{"a", "b"}))
	alias := NewTable("alias", Schema{
		{Name: "k2", Type: Int},
		{Name: "s2", Type: Str},
	}, base.Cols[0], base.Cols[1])
	AppendRow(alias, Row{int64(3), "c"})
	if base.NumRows() != 2 || base.Cols[0].Len() != 2 {
		t.Errorf("base corrupted: %d rows, col len %d", base.NumRows(), base.Cols[0].Len())
	}
	if alias.NumRows() != 3 {
		t.Errorf("alias rows = %d, want 3", alias.NumRows())
	}
	AppendRow(base, Row{int64(4), "d"})
	if alias.NumRows() != 3 || alias.Cols[0].Len() != 3 {
		t.Errorf("alias corrupted by append to base: %d rows", alias.Cols[0].Len())
	}
}

func TestAggregateMinEmptyString(t *testing.T) {
	// "" is a legitimate minimum, not an uninitialized sentinel.
	e := &Exec{}
	tb := NewTable("t", Schema{{Name: "s", Type: Str}})
	AppendRow(tb, Row{""})
	AppendRow(tb, Row{"b"})
	out := e.Aggregate(tb, nil, []AggSpec{{Fn: "min", Col: "s", As: "m"}})
	if got := out.StrCol("m").Get(0); got != "" {
		t.Errorf("min = %q, want empty string", got)
	}
}

func TestAppendRowTypeMismatchPanics(t *testing.T) {
	tb := NewTable("t", Schema{{Name: "x", Type: Int}})
	defer func() {
		if recover() == nil {
			t.Error("AppendRow with a mistyped cell must panic")
		}
	}()
	AppendRow(tb, Row{"not an int"})
}

func TestJoinKeyTypeMismatchPanics(t *testing.T) {
	e := &Exec{}
	left := NewTable("l", Schema{{Name: "a", Type: Int}})
	right := NewTable("r", Schema{{Name: "b", Type: Str}})
	defer func() {
		if recover() == nil {
			t.Error("join across key types must panic")
		}
	}()
	e.Join(left, right, "a", "b")
}

func TestFilterOfFilterComposesSelections(t *testing.T) {
	e := &Exec{}
	tb := numbers(30)
	k := tb.IntCol("k")
	f1 := e.Filter(tb, func(i int) bool { return k.Get(i) >= 10 })
	fk := f1.IntCol("k")
	f2 := e.Filter(f1, func(i int) bool { return fk.Get(i)%2 == 0 })
	if f2.NumRows() != 10 {
		t.Fatalf("rows = %d, want 10 (even k in [10,30))", f2.NumRows())
	}
	if f2.Cols[0] != tb.Cols[0] {
		t.Error("chained filters must still share the base vectors")
	}
	for i := 0; i < f2.NumRows(); i++ {
		v := f2.IntCol("k").Get(i)
		if v < 10 || v%2 != 0 {
			t.Errorf("row %d = %d, fails composed predicate", i, v)
		}
	}
}

func TestCompacted(t *testing.T) {
	e := &Exec{}
	tb := numbers(10)
	k := tb.IntCol("k")
	f := e.Filter(tb, func(i int) bool { return k.Get(i) >= 7 })
	d := f.Compacted()
	if d.NumRows() != 3 || d.Cols[0].Len() != 3 {
		t.Fatalf("compacted rows = %d (physical %d), want 3", d.NumRows(), d.Cols[0].Len())
	}
	if d.Cols[0] == tb.Cols[0] {
		t.Error("compacted table must own dense vectors")
	}
	if BaseOf(d) != BaseOf(f) {
		t.Error("compaction must preserve the base annotation")
	}
	if tb.Compacted() != tb {
		t.Error("compacting a dense table must be a no-op")
	}
}

func TestJoinMatchesNestedLoopProperty(t *testing.T) {
	f := func(lk, rk []uint8) bool {
		e := &Exec{}
		left := NewTable("l", Schema{{Name: "a", Type: Int}})
		right := NewTable("r", Schema{{Name: "b", Type: Int}})
		for _, k := range lk {
			AppendRow(left, Row{int64(k % 8)})
		}
		for _, k := range rk {
			AppendRow(right, Row{int64(k % 8)})
		}
		got := e.Join(left, right, "a", "b").NumRows()
		want := 0
		for _, l := range left.Cols[0].Ints {
			for _, r := range right.Cols[0].Ints {
				if l == r {
					want++
				}
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAggregatePreservesTotalCountProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		e := &Exec{}
		tb := NewTable("t", Schema{{Name: "g", Type: Int}})
		for _, v := range vals {
			AppendRow(tb, Row{int64(v % 5)})
		}
		out := e.Aggregate(tb, []string{"g"}, []AggSpec{{Fn: "count", Col: "*", As: "n"}})
		var total int64
		ns := out.IntCol("n")
		for i := 0; i < out.NumRows(); i++ {
			total += ns.Get(i)
		}
		return total == int64(len(vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSortIsStableOrdering(t *testing.T) {
	e := &Exec{}
	tb := numbers(50)
	out := e.Sort(tb, OrderSpec{Col: "grp"})
	// Within each group, original k order must be preserved (stable).
	perGroup := map[string][]int64{}
	gs := out.StrCol("grp")
	ks := out.IntCol("k")
	for i := 0; i < out.NumRows(); i++ {
		perGroup[gs.Get(i)] = append(perGroup[gs.Get(i)], ks.Get(i))
	}
	for g, kvs := range perGroup {
		if !sort.SliceIsSorted(kvs, func(i, j int) bool { return kvs[i] < kvs[j] }) {
			t.Errorf("group %s not stable: %v", g, kvs)
		}
	}
}
