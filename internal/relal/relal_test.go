package relal

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func numbers(n int) *Table {
	t := &Table{
		Name: "nums",
		Schema: Schema{
			{Name: "k", Type: Int},
			{Name: "v", Type: Float},
			{Name: "grp", Type: Str},
		},
	}
	for i := 0; i < n; i++ {
		t.Rows = append(t.Rows, Row{int64(i), float64(i) * 2, fmt.Sprintf("g%d", i%3)})
	}
	return t
}

func TestSchemaCol(t *testing.T) {
	s := Schema{{Name: "a", Type: Int}, {Name: "b", Type: Str}}
	if s.Col("b") != 1 {
		t.Error("Col(b) != 1")
	}
	defer func() {
		if recover() == nil {
			t.Error("Col on missing column should panic")
		}
	}()
	s.Col("zz")
}

func TestFilterKeepsBase(t *testing.T) {
	e := &Exec{}
	tb := e.Scan(numbers(10))
	f := e.Filter(tb, func(r Row) bool { return I(r[0]) >= 5 })
	if f.NumRows() != 5 {
		t.Errorf("filtered rows = %d, want 5", f.NumRows())
	}
	if BaseOf(f) != "nums" {
		t.Error("filter must preserve base annotation")
	}
}

func TestProject(t *testing.T) {
	e := &Exec{}
	p := e.Project(numbers(3), "v", "k")
	if len(p.Schema) != 2 || p.Schema[0].Name != "v" {
		t.Errorf("schema = %v", p.Schema.Names())
	}
	if F(p.Rows[1][0]) != 2 || I(p.Rows[1][1]) != 1 {
		t.Errorf("row = %v", p.Rows[1])
	}
}

func TestJoinInner(t *testing.T) {
	e := &Exec{}
	left := &Table{Name: "l", Schema: Schema{{Name: "id", Type: Int}, {Name: "x", Type: Str}}}
	right := &Table{Name: "r", Schema: Schema{{Name: "rid", Type: Int}, {Name: "y", Type: Str}}}
	for i := 0; i < 4; i++ {
		left.Rows = append(left.Rows, Row{int64(i), fmt.Sprintf("x%d", i)})
	}
	right.Rows = append(right.Rows, Row{int64(1), "a"}, Row{int64(1), "b"}, Row{int64(3), "c"})
	out := e.Join(left, right, "id", "rid")
	if out.NumRows() != 3 {
		t.Fatalf("join rows = %d, want 3 (1×2 + 3×1)", out.NumRows())
	}
	if BaseOf(out) != "" {
		t.Error("join output must lose base annotation")
	}
	// The join step must be logged with cardinalities.
	st := e.Log.Steps[len(e.Log.Steps)-1]
	if st.Kind != StepJoin || st.LeftRows != 4 || st.RightRows != 3 || st.OutRows != 3 {
		t.Errorf("join step = %+v", st)
	}
}

func TestSemiAntiJoinPartition(t *testing.T) {
	e := &Exec{}
	left := numbers(10)
	right := &Table{Name: "r", Schema: Schema{{Name: "id", Type: Int}}}
	for i := 0; i < 10; i += 2 {
		right.Rows = append(right.Rows, Row{int64(i)})
	}
	semi := e.SemiJoin(left, right, "k", "id")
	anti := e.AntiJoin(left, right, "k", "id")
	if semi.NumRows()+anti.NumRows() != left.NumRows() {
		t.Errorf("semi (%d) + anti (%d) != total (%d)", semi.NumRows(), anti.NumRows(), left.NumRows())
	}
	if semi.NumRows() != 5 {
		t.Errorf("semi rows = %d, want 5", semi.NumRows())
	}
}

func TestAggregateSumCountAvg(t *testing.T) {
	e := &Exec{}
	out := e.Aggregate(numbers(9), []string{"grp"}, []AggSpec{
		{Fn: "sum", Col: "v", As: "sv"},
		{Fn: "count", Col: "*", As: "n"},
		{Fn: "avg", Col: "v", As: "av"},
		{Fn: "min", Col: "v", As: "mn"},
		{Fn: "max", Col: "v", As: "mx"},
	})
	if out.NumRows() != 3 {
		t.Fatalf("groups = %d, want 3", out.NumRows())
	}
	// Group g0 holds k=0,3,6 → v=0,6,12.
	for _, r := range out.Rows {
		if S(r[0]) != "g0" {
			continue
		}
		if F(r[1]) != 18 || I(r[2]) != 3 || F(r[3]) != 6 || F(r[4]) != 0 || F(r[5]) != 12 {
			t.Errorf("g0 aggregates = %v", r)
		}
	}
}

func TestAggregateGlobal(t *testing.T) {
	e := &Exec{}
	out := e.Aggregate(numbers(4), nil, []AggSpec{{Fn: "sum", Col: "v", As: "s"}})
	if out.NumRows() != 1 || F(out.Rows[0][0]) != 12 {
		t.Errorf("global sum = %v", out.Rows)
	}
}

func TestAggregateMinMaxString(t *testing.T) {
	e := &Exec{}
	out := e.Aggregate(numbers(5), nil, []AggSpec{{Fn: "min", Col: "grp", As: "m"}})
	if S(out.Rows[0][0]) != "g0" {
		t.Errorf("min string = %v", out.Rows[0][0])
	}
}

func TestSortAscDesc(t *testing.T) {
	e := &Exec{}
	out := e.Sort(numbers(10), OrderSpec{Col: "grp"}, OrderSpec{Col: "k", Desc: true})
	var lastG string
	lastK := int64(1 << 62)
	for _, r := range out.Rows {
		g, k := S(r[2]), I(r[0])
		if g < lastG {
			t.Fatal("not sorted by grp")
		}
		if g != lastG {
			lastG, lastK = g, 1<<62
		}
		if k > lastK {
			t.Fatal("not sorted by k desc within group")
		}
		lastK = k
	}
}

func TestSortDoesNotMutateInput(t *testing.T) {
	e := &Exec{}
	in := numbers(5)
	first := I(in.Rows[0][0])
	e.Sort(in, OrderSpec{Col: "k", Desc: true})
	if I(in.Rows[0][0]) != first {
		t.Error("sort mutated its input")
	}
}

func TestLimit(t *testing.T) {
	e := &Exec{}
	out := e.Limit(numbers(10), 3)
	if out.NumRows() != 3 {
		t.Errorf("limit rows = %d", out.NumRows())
	}
	if e.Limit(numbers(2), 5).NumRows() != 2 {
		t.Error("limit beyond size should be identity")
	}
}

func TestExtend(t *testing.T) {
	tb := numbers(3)
	out := Extend(tb, "double", Float, func(r Row) interface{} { return F(r[1]) * 2 })
	if len(out.Schema) != 4 {
		t.Fatal("extend did not add a column")
	}
	if F(out.Rows[2][3]) != 8 {
		t.Errorf("extended value = %v", out.Rows[2][3])
	}
}

func TestAvgRowBytes(t *testing.T) {
	tb := numbers(10)
	b := tb.AvgRowBytes()
	// 2 numeric (8 each) + "gN" string (2+1).
	if b != 19 {
		t.Errorf("avg row bytes = %d, want 19", b)
	}
	empty := &Table{Schema: tb.Schema}
	if empty.AvgRowBytes() <= 0 {
		t.Error("empty table must estimate width from schema")
	}
}

func TestJoinMatchesNestedLoopProperty(t *testing.T) {
	f := func(lk, rk []uint8) bool {
		e := &Exec{}
		left := &Table{Name: "l", Schema: Schema{{Name: "a", Type: Int}}}
		right := &Table{Name: "r", Schema: Schema{{Name: "b", Type: Int}}}
		for _, k := range lk {
			left.Rows = append(left.Rows, Row{int64(k % 8)})
		}
		for _, k := range rk {
			right.Rows = append(right.Rows, Row{int64(k % 8)})
		}
		got := e.Join(left, right, "a", "b").NumRows()
		want := 0
		for _, l := range left.Rows {
			for _, r := range right.Rows {
				if l[0] == r[0] {
					want++
				}
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAggregatePreservesTotalCountProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		e := &Exec{}
		tb := &Table{Name: "t", Schema: Schema{{Name: "g", Type: Int}}}
		for _, v := range vals {
			tb.Rows = append(tb.Rows, Row{int64(v % 5)})
		}
		out := e.Aggregate(tb, []string{"g"}, []AggSpec{{Fn: "count", Col: "*", As: "n"}})
		var total int64
		for _, r := range out.Rows {
			total += I(r[1])
		}
		return total == int64(len(vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSortIsStableOrdering(t *testing.T) {
	e := &Exec{}
	tb := numbers(50)
	out := e.Sort(tb, OrderSpec{Col: "grp"})
	// Within each group, original k order must be preserved (stable).
	perGroup := map[string][]int64{}
	for _, r := range out.Rows {
		perGroup[S(r[2])] = append(perGroup[S(r[2])], I(r[0]))
	}
	for g, ks := range perGroup {
		if !sort.SliceIsSorted(ks, func(i, j int) bool { return ks[i] < ks[j] }) {
			t.Errorf("group %s not stable: %v", g, ks)
		}
	}
}
