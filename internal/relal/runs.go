package relal

// Run-length-encoded vectors. The RCF4 decoder hands RLE chunks to the
// engine as run lists — one (value, exclusive end row) pair per run —
// without expanding them to per-row slices. Run-aware kernels (Where's
// run-zipping filter, Aggregate's run batches) consume the runs
// directly; every other consumer calls Flat, which memoizes the
// expanded form so correctness never depends on which encoding the
// writer picked and the expansion cost is paid at most once per vector.

// IntRunsV builds a run-encoded Int vector: vals[k] repeats for rows
// [ends[k-1], ends[k]). ends must be strictly increasing.
func IntRunsV(vals []int64, ends []int32) *Vector {
	checkRuns(len(vals), ends)
	return &Vector{Kind: Int, Ints: vals, RunEnds: ends}
}

// FloatRunsV builds a run-encoded Float vector.
func FloatRunsV(vals []float64, ends []int32) *Vector {
	checkRuns(len(vals), ends)
	return &Vector{Kind: Float, Floats: vals, RunEnds: ends}
}

// DictRunsV builds a run-encoded dict Str vector: codes[k] (into the
// shared sorted dictionary vals) repeats for rows [ends[k-1], ends[k]).
func DictRunsV(codes []uint32, ends []int32, vals []string) *Vector {
	checkRuns(len(codes), ends)
	return &Vector{Kind: Str, Dict: codes, DictVals: vals, RunEnds: ends}
}

func checkRuns(vals int, ends []int32) {
	if vals != len(ends) {
		panic("relal: run vector has mismatched value/end counts")
	}
	prev := int32(0)
	for _, e := range ends {
		if e <= prev {
			panic("relal: run ends must be strictly increasing")
		}
		prev = e
	}
}

// IsRuns reports whether v is run-length encoded.
func (v *Vector) IsRuns() bool { return v.RunEnds != nil }

// NumRuns returns the run count (0 for non-run vectors).
func (v *Vector) NumRuns() int { return len(v.RunEnds) }

// Flat returns the expanded per-row form of v (v itself when not
// run-encoded). The expansion is memoized: vectors are immutable once
// built, so concurrent expansions compute identical contents and
// whichever pointer publishes first wins. A dict run vector expands to
// a dict vector sharing the same dictionary slice, so sameDict-based
// fast paths still fire against siblings of the original.
func (v *Vector) Flat() *Vector {
	if v.RunEnds == nil {
		return v
	}
	if f := v.flat.Load(); f != nil {
		return f
	}
	n := v.Len()
	f := &Vector{Kind: v.Kind}
	switch {
	case v.Kind == Int:
		f.Ints = expandRuns(v.Ints, v.RunEnds, n)
	case v.Kind == Float:
		f.Floats = expandRuns(v.Floats, v.RunEnds, n)
	default:
		f.Dict = expandRuns(v.Dict, v.RunEnds, n)
		f.DictVals = v.DictVals
	}
	v.flat.CompareAndSwap(nil, f)
	return v.flat.Load()
}

func expandRuns[T any](vals []T, ends []int32, n int) []T {
	out := make([]T, n)
	pos := 0
	for k, end := range ends {
		x := vals[k]
		for ; pos < int(end); pos++ {
			out[pos] = x
		}
	}
	return out
}

// flattenedFor returns t with every column referenced by the given
// index sets replaced by its memoized flat expansion (a shallow copy;
// t itself when nothing referenced is run-encoded). The aggregation
// kernels index column slices by physical row directly, so they run
// over the flattened view; negative indices (COUNT(*) slots) are
// skipped.
func flattenedFor(t *Table, idxs ...[]int) *Table {
	need := false
	for _, set := range idxs {
		for _, ci := range set {
			if ci >= 0 && t.Cols[ci].RunEnds != nil {
				need = true
			}
		}
	}
	if !need {
		return t
	}
	cols := make([]*Vector, len(t.Cols))
	copy(cols, t.Cols)
	for _, set := range idxs {
		for _, ci := range set {
			if ci >= 0 && cols[ci].RunEnds != nil {
				cols[ci] = cols[ci].Flat()
			}
		}
	}
	out := &Table{Name: t.Name, Schema: t.Schema, Cols: cols, sel: t.sel}
	out.shared.Store(true)
	return out
}
