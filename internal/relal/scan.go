// Pushdown-aware scanning: base tables are served by a Source that
// accepts a column subset and a sargable predicate. Storage formats
// (rcfile) keep per-row-group min/max zone maps and skip decompressing
// groups that cannot satisfy the predicate; the in-memory TableSource
// models the same decision over virtual row groups so cost models see
// the skipped-bytes ratio even when the data never left memory.
//
// Pruning is conservative: a condition only rules a group out when the
// group's [min, max] interval cannot intersect the condition's bounds,
// so a scan through any Source followed by the query's own Filter
// produces exactly the rows a full scan would.
package relal

import "sync/atomic"

// ZoneMap is the min/max summary of one column chunk (one column within
// one row group). Exactly the pair matching Kind is meaningful. For a
// dictionary-encoded Str chunk, CodeMin/CodeMax additionally carry the
// min/max codes (the dictionary is sorted, so they pick out the same
// values StrMin/StrMax spell out; pruning keeps comparing strings so a
// predicate never needs the chunk's dictionary).
type ZoneMap struct {
	Kind               Type
	IntMin, IntMax     int64
	FloatMin, FloatMax float64
	StrMin, StrMax     string
	CodeMin, CodeMax   uint32
	HasCodes           bool
}

// ZoneOf computes the zone map of v's cells in physical positions
// [lo, hi). It panics if the range is empty (a row group always holds at
// least one row). Run-encoded vectors are summarized from their run
// lists without expansion: every run overlapping the range contributes
// its value.
func ZoneOf(v *Vector, lo, hi int) ZoneMap {
	if v.RunEnds != nil {
		return zoneOfRuns(v, lo, hi)
	}
	z := ZoneMap{Kind: v.Kind}
	switch v.Kind {
	case Int:
		z.IntMin, z.IntMax = v.Ints[lo], v.Ints[lo]
		for _, x := range v.Ints[lo+1 : hi] {
			if x < z.IntMin {
				z.IntMin = x
			}
			if x > z.IntMax {
				z.IntMax = x
			}
		}
	case Float:
		z.FloatMin, z.FloatMax = v.Floats[lo], v.Floats[lo]
		for _, f := range v.Floats[lo+1 : hi] {
			if f < z.FloatMin {
				z.FloatMin = f
			}
			if f > z.FloatMax {
				z.FloatMax = f
			}
		}
	case Str:
		if v.DictVals != nil {
			// Sorted dictionary: min/max code is min/max value.
			z.CodeMin, z.CodeMax = v.Dict[lo], v.Dict[lo]
			for _, c := range v.Dict[lo+1 : hi] {
				if c < z.CodeMin {
					z.CodeMin = c
				}
				if c > z.CodeMax {
					z.CodeMax = c
				}
			}
			z.StrMin, z.StrMax = v.DictVals[z.CodeMin], v.DictVals[z.CodeMax]
			z.HasCodes = true
			return z
		}
		z.StrMin, z.StrMax = v.Strs[lo], v.Strs[lo]
		for _, s := range v.Strs[lo+1 : hi] {
			if s < z.StrMin {
				z.StrMin = s
			}
			if s > z.StrMax {
				z.StrMax = s
			}
		}
	}
	return z
}

// zoneOfRuns summarizes rows [lo, hi) of a run-encoded vector from the
// run list: runs k0..k1 are exactly the runs overlapping the range.
func zoneOfRuns(v *Vector, lo, hi int) ZoneMap {
	z := ZoneMap{Kind: v.Kind}
	k0 := searchRun(v.RunEnds, lo)
	k1 := searchRun(v.RunEnds, hi-1)
	switch v.Kind {
	case Int:
		z.IntMin, z.IntMax = v.Ints[k0], v.Ints[k0]
		for _, x := range v.Ints[k0+1 : k1+1] {
			if x < z.IntMin {
				z.IntMin = x
			}
			if x > z.IntMax {
				z.IntMax = x
			}
		}
	case Float:
		z.FloatMin, z.FloatMax = v.Floats[k0], v.Floats[k0]
		for _, f := range v.Floats[k0+1 : k1+1] {
			if f < z.FloatMin {
				z.FloatMin = f
			}
			if f > z.FloatMax {
				z.FloatMax = f
			}
		}
	default:
		z.CodeMin, z.CodeMax = v.Dict[k0], v.Dict[k0]
		for _, c := range v.Dict[k0+1 : k1+1] {
			if c < z.CodeMin {
				z.CodeMin = c
			}
			if c > z.CodeMax {
				z.CodeMax = c
			}
		}
		z.StrMin, z.StrMax = v.DictVals[z.CodeMin], v.DictVals[z.CodeMax]
		z.HasCodes = true
	}
	return z
}

// ZoneCond is one sargable range condition on a base-table column.
// Bounds are inclusive; representing a strict predicate (< or >) with
// its inclusive closure is safe — pruning only ever keeps extra groups,
// never drops matching ones.
type ZoneCond struct {
	Col          string
	Kind         Type
	HasLo, HasHi bool
	IntLo, IntHi int64
	FloLo, FloHi float64
	StrLo, StrHi string
}

// mayMatch reports whether a chunk with zone map z can contain a row
// satisfying the condition: the chunk's [min, max] must intersect the
// condition's closed interval.
func (c ZoneCond) mayMatch(z ZoneMap) bool {
	switch c.Kind {
	case Int:
		return !(c.HasLo && z.IntMax < c.IntLo) && !(c.HasHi && z.IntMin > c.IntHi)
	case Float:
		return !(c.HasLo && z.FloatMax < c.FloLo) && !(c.HasHi && z.FloatMin > c.FloHi)
	default:
		return !(c.HasLo && z.StrMax < c.StrLo) && !(c.HasHi && z.StrMin > c.StrHi)
	}
}

// IntBetween matches lo <= col <= hi.
func IntBetween(col string, lo, hi int64) ZoneCond {
	return ZoneCond{Col: col, Kind: Int, HasLo: true, HasHi: true, IntLo: lo, IntHi: hi}
}

// IntAtLeast matches col >= lo.
func IntAtLeast(col string, lo int64) ZoneCond {
	return ZoneCond{Col: col, Kind: Int, HasLo: true, IntLo: lo}
}

// IntAtMost matches col <= hi.
func IntAtMost(col string, hi int64) ZoneCond {
	return ZoneCond{Col: col, Kind: Int, HasHi: true, IntHi: hi}
}

// IntEq matches col == v.
func IntEq(col string, v int64) ZoneCond { return IntBetween(col, v, v) }

// FloatBetween matches lo <= col <= hi.
func FloatBetween(col string, lo, hi float64) ZoneCond {
	return ZoneCond{Col: col, Kind: Float, HasLo: true, HasHi: true, FloLo: lo, FloHi: hi}
}

// FloatAtLeast matches col >= lo.
func FloatAtLeast(col string, lo float64) ZoneCond {
	return ZoneCond{Col: col, Kind: Float, HasLo: true, FloLo: lo}
}

// FloatAtMost matches col <= hi.
func FloatAtMost(col string, hi float64) ZoneCond {
	return ZoneCond{Col: col, Kind: Float, HasHi: true, FloHi: hi}
}

// StrBetween matches lo <= col <= hi (ISO date strings compare as
// dates, so date ranges push down as string ranges).
func StrBetween(col, lo, hi string) ZoneCond {
	return ZoneCond{Col: col, Kind: Str, HasLo: true, HasHi: true, StrLo: lo, StrHi: hi}
}

// StrAtLeast matches col >= lo.
func StrAtLeast(col, lo string) ZoneCond {
	return ZoneCond{Col: col, Kind: Str, HasLo: true, StrLo: lo}
}

// StrAtMost matches col <= hi.
func StrAtMost(col, hi string) ZoneCond {
	return ZoneCond{Col: col, Kind: Str, HasHi: true, StrHi: hi}
}

// StrEq matches col == v.
func StrEq(col, v string) ZoneCond { return StrBetween(col, v, v) }

// ZonePredicate is a conjunction of sargable conditions pushed into a
// scan. nil means no pushdown.
type ZonePredicate []ZoneCond

// MayMatch reports whether a row group can contain a matching row. zone
// looks up the group's zone map by column name; a column the storage
// has no zone map for (or whose type disagrees) cannot prune.
func (p ZonePredicate) MayMatch(zone func(col string) (ZoneMap, bool)) bool {
	for _, c := range p {
		z, ok := zone(c.Col)
		if !ok || z.Kind != c.Kind {
			continue
		}
		if !c.mayMatch(z) {
			return false
		}
	}
	return true
}

// ScanStats reports what a pushdown-aware scan touched, in encoded
// column-chunk bytes.
type ScanStats struct {
	// BytesRead is the chunk bytes the scan logically decoded (requested
	// columns in surviving row groups), whether served by fresh
	// decompression or by a shared chunk cache.
	BytesRead int64
	// BytesSkipped is the chunk bytes never decompressed: unrequested
	// columns plus every column of zone-pruned groups.
	BytesSkipped int64
	// BytesFromCache is the portion of BytesRead served from a shared
	// decompressed-chunk cache instead of fresh gzip inflation. Keeping
	// it a subset of BytesRead (rather than a third bucket) means the
	// skipped fraction the cost models replay is identical with caching
	// on or off.
	BytesFromCache int64
	// GroupsRead/GroupsSkipped count row groups decoded vs pruned.
	GroupsRead, GroupsSkipped int
	// CacheHits/CacheMisses count chunk-cache lookups. Both stay zero
	// when no cache is attached, so hit ratio 0/0 means "uncached".
	CacheHits, CacheMisses int
	// CorruptChunks counts chunks whose checksum failed verification.
	// A non-zero count never accompanies silent wrong rows: the scan
	// that found the corruption returned an error, and the store either
	// degraded to redundant data or propagated the failure.
	CorruptChunks int
}

// SkippedFrac returns the fraction of total bytes the scan skipped.
func (s ScanStats) SkippedFrac() float64 {
	tot := s.BytesRead + s.BytesSkipped
	if tot == 0 {
		return 0
	}
	return float64(s.BytesSkipped) / float64(tot)
}

// CacheHitRatio returns CacheHits/(CacheHits+CacheMisses), or 0 before
// any cached lookup (including the no-cache configuration).
func (s ScanStats) CacheHitRatio() float64 {
	tot := s.CacheHits + s.CacheMisses
	if tot == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(tot)
}

// Add accumulates other into s. Plain field addition — for accumulation
// across goroutines (streams sharing one Source) use ScanCounter.
func (s *ScanStats) Add(other ScanStats) {
	s.BytesRead += other.BytesRead
	s.BytesSkipped += other.BytesSkipped
	s.BytesFromCache += other.BytesFromCache
	s.GroupsRead += other.GroupsRead
	s.GroupsSkipped += other.GroupsSkipped
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	s.CorruptChunks += other.CorruptChunks
}

// ScanCounter accumulates ScanStats atomically. Sources embed one so
// their lifetime byte accounting stays exact when many query streams
// scan through the same Source concurrently; per-query accounting still
// comes from the Step log, which is private to each Exec.
type ScanCounter struct {
	bytesRead, bytesSkipped   atomic.Int64
	bytesFromCache            atomic.Int64
	groupsRead, groupsSkipped atomic.Int64
	cacheHits, cacheMisses    atomic.Int64
	corruptChunks             atomic.Int64
}

// Observe folds one scan's stats into the counter.
func (c *ScanCounter) Observe(s ScanStats) {
	c.bytesRead.Add(s.BytesRead)
	c.bytesSkipped.Add(s.BytesSkipped)
	c.bytesFromCache.Add(s.BytesFromCache)
	c.groupsRead.Add(int64(s.GroupsRead))
	c.groupsSkipped.Add(int64(s.GroupsSkipped))
	c.cacheHits.Add(int64(s.CacheHits))
	c.cacheMisses.Add(int64(s.CacheMisses))
	c.corruptChunks.Add(int64(s.CorruptChunks))
}

// Total returns the accumulated stats. Each field is read atomically; a
// snapshot taken while scans are in flight is a consistent set of sums
// as of some interleaving, which is all a throughput report needs.
func (c *ScanCounter) Total() ScanStats {
	return ScanStats{
		BytesRead:      c.bytesRead.Load(),
		BytesSkipped:   c.bytesSkipped.Load(),
		BytesFromCache: c.bytesFromCache.Load(),
		GroupsRead:     int(c.groupsRead.Load()),
		GroupsSkipped:  int(c.groupsSkipped.Load()),
		CacheHits:      int(c.cacheHits.Load()),
		CacheMisses:    int(c.cacheMisses.Load()),
		CorruptChunks:  int(c.corruptChunks.Load()),
	}
}

// SkippedScanFracs returns, per base table, the fraction of scan bytes
// the log's pushdown-aware scans could skip (column subsets plus
// zone-map group pruning). Multiple scans of one table keep the most
// conservative (smallest) fraction. Both cost models consume the log
// through this helper, so their pushdown what-ifs (Hive's
// PredicatePushdown, PDW's SegmentElimination) discount exactly the
// same bytes.
func (l StepLog) SkippedScanFracs() map[string]float64 {
	fracs := map[string]float64{}
	for _, step := range l.Steps {
		if step.Kind != StepScan || step.LeftBase == "" {
			continue
		}
		tot := step.ScanBytesRead + step.ScanBytesSkipped
		if tot == 0 {
			continue
		}
		frac := float64(step.ScanBytesSkipped) / float64(tot)
		if cur, ok := fracs[step.LeftBase]; !ok || frac < cur {
			fracs[step.LeftBase] = frac
		}
	}
	return fracs
}

// Source provides base tables to the Scan operator. Implementations
// decide how much of the table the requested columns and predicate let
// them avoid materializing.
type Source interface {
	SrcName() string
	SrcSchema() Schema
	// ScanTable returns the table restricted to cols (nil = every
	// column) with row groups the predicate rules out pruned, plus the
	// scan's byte accounting. The returned table must be safe to wrap
	// in zero-copy views.
	ScanTable(cols []string, pred ZonePredicate) (*Table, ScanStats)
}

// DefaultScanGroupRows is the virtual row-group size TableSource uses
// for its zone maps; it matches rcfile's on-disk default so the two
// backends make the same group-pruning decisions. The byte accounting
// still differs in weighting: TableSource reports uncompressed encoded
// chunk bytes while rcfile reports per-chunk gzip-compressed bytes, so
// the skipped fraction is a model of the on-disk ratio, not a
// reproduction of it.
const DefaultScanGroupRows = 16 * 1024

// tableScanInfo is the cached per-group scan metadata of an in-memory
// table.
type tableScanInfo struct {
	groupRows int
	rows      []int       // per group: row count
	zones     [][]ZoneMap // per group, per column
	bytes     [][]int64   // per group, per column: encoded chunk bytes
}

// ModelRLE/ModelDelta gate whether the in-memory scan model charges
// the RLE and delta/frame-of-reference chunk encodings when they beat
// plain — mirroring the RCF4 writer's adaptive choice. The -no-rle /
// -no-delta escape hatches in the CLI tools clear them at process
// start (they are plain package variables, not synchronized).
var (
	ModelRLE   = true
	ModelDelta = true
)

// encodedCellBytes returns the chunk encoding width of one cell: 8 for
// numerics, 4-byte length prefix plus the bytes for strings (the rcfile
// chunk layout).
func encodedCellBytes(v *Vector, p int32) int64 {
	if v.Kind == Str {
		return 4 + int64(len(v.Strs[p]))
	}
	return 8
}

// FORWidth returns the packed frame-of-reference byte width for a
// value span: 0 (constant), 1, 2, or 4; 8 means "doesn't pay, store
// plain". Shared by the RCF4 writer and the in-memory scan model so
// both charge identical bytes.
func FORWidth(span uint64) int {
	switch {
	case span == 0:
		return 0
	case span <= 0xFF:
		return 1
	case span <= 0xFFFF:
		return 2
	case span <= 0xFFFFFFFF:
		return 4
	}
	return 8
}

// Modeled RCF4 chunk payload sizes (pre-gzip), one formula shared with
// the writer's layouts: see internal/rcfile. All include the chunk's
// self-describing header bytes.

// RLEChunkBytes is the numeric RLE payload: run count + (8-byte value,
// 4-byte length) per run.
func RLEChunkBytes(runs int) int64 { return 4 + int64(runs)*12 }

// DeltaChunkBytes is the int frame-of-reference payload: width byte +
// 8-byte base + packed deltas.
func DeltaChunkBytes(rows, width int) int64 { return 9 + int64(rows)*int64(width) }

// GDictChunkBytes is the global-dict code payload: width byte + 4-byte
// code base + packed frame-of-reference codes.
func GDictChunkBytes(rows, width int) int64 { return 5 + int64(rows)*int64(width) }

// GDictRLEChunkBytes is the run-length global-dict payload: width byte
// + code base + run count + (packed code, 4-byte length) per run.
func GDictRLEChunkBytes(runs, width int) int64 { return 9 + int64(runs)*int64(width+4) }

// runCountIn returns the number of value runs within rows [lo, hi) of
// a dense vector.
func runCountIn(v *Vector, lo, hi int) int {
	if v.RunEnds != nil {
		return searchRun(v.RunEnds, hi-1) - searchRun(v.RunEnds, lo) + 1
	}
	runs := 1
	switch {
	case v.Kind == Int:
		for p := lo + 1; p < hi; p++ {
			if v.Ints[p] != v.Ints[p-1] {
				runs++
			}
		}
	case v.Kind == Float:
		for p := lo + 1; p < hi; p++ {
			if v.Floats[p] != v.Floats[p-1] {
				runs++
			}
		}
	case v.DictVals != nil:
		for p := lo + 1; p < hi; p++ {
			if v.Dict[p] != v.Dict[p-1] {
				runs++
			}
		}
	default:
		for p := lo + 1; p < hi; p++ {
			if v.Strs[p] != v.Strs[p-1] {
				runs++
			}
		}
	}
	return runs
}

// scanInfo computes (and for the default group size, caches) the
// per-group zone maps and encoded chunk sizes of t.
func (t *Table) scanInfo(groupRows int) *tableScanInfo {
	if groupRows <= 0 {
		groupRows = DefaultScanGroupRows
	}
	if groupRows == DefaultScanGroupRows {
		t.scanOnce.Do(func() { t.scanCached = computeScanInfo(t, groupRows) })
		return t.scanCached
	}
	return computeScanInfo(t, groupRows)
}

func computeScanInfo(t *Table, groupRows int) *tableScanInfo {
	d := t.Compacted() // zone maps want dense physical ranges
	n := d.NumRows()
	info := &tableScanInfo{groupRows: groupRows}
	numGroups := (n + groupRows - 1) / groupRows
	// Per dict column, the file-global dictionary's bytes amortize
	// evenly across the groups (RCF4 stores one dictionary per column
	// in the footer).
	dictShare := make([]int64, len(d.Cols))
	for c, v := range d.Cols {
		if v.DictVals != nil && numGroups > 0 {
			dictShare[c] = DictEncodedBytes(v.DictVals, 0) / int64(numGroups)
		}
	}
	for lo := 0; lo < n; lo += groupRows {
		hi := lo + groupRows
		if hi > n {
			hi = n
		}
		rows := hi - lo
		zs := make([]ZoneMap, len(d.Cols))
		bs := make([]int64, len(d.Cols))
		for c, v := range d.Cols {
			zs[c] = ZoneOf(v, lo, hi)
			switch {
			case v.DictVals != nil:
				// Model the adaptive RCF4 chunk: packed global codes
				// (frame-of-reference width from the group's code
				// span), run-length codes when the group is clustered,
				// or plain strings for near-unique groups — matching
				// the writer's per-chunk choice — plus this group's
				// share of the file-global dictionary.
				w := FORWidth(uint64(zs[c].CodeMax - zs[c].CodeMin))
				best := GDictChunkBytes(rows, w)
				if ModelRLE {
					if rle := GDictRLEChunkBytes(runCountIn(v, lo, hi), w); rle < best {
						best = rle
					}
				}
				var plain int64
				codes := v.Flat().Dict
				for _, code := range codes[lo:hi] {
					plain += 4 + int64(len(v.DictVals[code]))
				}
				if plain < best {
					best = plain
				}
				bs[c] = best + dictShare[c]
			case v.Kind == Str:
				var b int64
				for p := lo; p < hi; p++ {
					b += encodedCellBytes(v, int32(p))
				}
				bs[c] = b
			default:
				best := 8 * int64(rows)
				if v.Kind == Int && ModelDelta {
					if w := FORWidth(uint64(zs[c].IntMax) - uint64(zs[c].IntMin)); w < 8 {
						if fb := DeltaChunkBytes(rows, w); fb < best {
							best = fb
						}
					}
				}
				if ModelRLE {
					if rle := RLEChunkBytes(runCountIn(v, lo, hi)); rle < best {
						best = rle
					}
				}
				bs[c] = best
			}
		}
		info.rows = append(info.rows, rows)
		info.zones = append(info.zones, zs)
		info.bytes = append(info.bytes, bs)
	}
	return info
}

// TableSource serves an in-memory table. The scan returns the table
// whole — pruning cannot make an in-memory scan cheaper, and keeping the
// functional run identical keeps every operator cardinality (and so the
// engines' cost replays) stable — but the stats model what an
// RCFile-backed scan with the same row-group size would have
// decompressed vs skipped, so cost models can charge for pushdown.
type TableSource struct {
	T *Table
	// GroupRows is the virtual row-group size (0 = default).
	GroupRows int

	counter ScanCounter
}

// TotalStats returns the stats accumulated across every scan served by
// this source, from any goroutine.
func (s *TableSource) TotalStats() ScanStats { return s.counter.Total() }

// NewTableSource wraps t with the default virtual row-group size.
func NewTableSource(t *Table) *TableSource { return &TableSource{T: t} }

// SrcName returns the table name.
func (s *TableSource) SrcName() string { return s.T.Name }

// SrcSchema returns the table schema.
func (s *TableSource) SrcSchema() Schema { return s.T.Schema }

// ScanTable implements Source.
func (s *TableSource) ScanTable(cols []string, pred ZonePredicate) (*Table, ScanStats) {
	info := s.T.scanInfo(s.GroupRows)
	want := make([]bool, len(s.T.Schema))
	if len(cols) == 0 {
		for i := range want {
			want[i] = true
		}
	} else {
		for _, c := range cols {
			want[s.T.Schema.Col(c)] = true
		}
	}
	var stats ScanStats
	for g := range info.rows {
		zs := info.zones[g]
		keep := pred.MayMatch(func(col string) (ZoneMap, bool) {
			for ci, c := range s.T.Schema {
				if c.Name == col {
					return zs[ci], true
				}
			}
			return ZoneMap{}, false
		})
		if !keep {
			stats.GroupsSkipped++
			for _, b := range info.bytes[g] {
				stats.BytesSkipped += b
			}
			continue
		}
		stats.GroupsRead++
		for ci, b := range info.bytes[g] {
			if want[ci] {
				stats.BytesRead += b
			} else {
				stats.BytesSkipped += b
			}
		}
	}
	s.counter.Observe(stats)
	return s.T, stats
}

// ScanSource logs and performs a pushdown-aware base-table scan: the
// source decides how little it can read given the column subset and the
// predicate, and the step records the skipped-bytes accounting for the
// engines' cost models.
//
// The returned table never aliases the source's header: a source may
// hand back a table shared by every concurrent scan (TableSource returns
// its backing table whole), so the base annotation goes on a fresh
// zero-copy wrapper instead of mutating the shared struct. That makes a
// scan safe to run from many query streams at once.
func (e *Exec) ScanSource(src Source, cols []string, pred ZonePredicate) *Table {
	t, stats := src.ScanTable(cols, pred)
	name := src.SrcName()
	width := t.AvgRowBytes()
	if t.Base != name {
		// The wrapper aliases the source table's vectors, so the source
		// must carry the shared flag too or a later AppendRow to it
		// would mutate the aliased vectors in place. markShared is
		// write-free on already-shared tables (every base table), so
		// concurrent streams only ever read the flag here.
		markShared(t)
		w := &Table{Name: t.Name, Schema: t.Schema, Cols: t.Cols, sel: t.sel, Base: name}
		w.avgBytes.Store(int64(width))
		w.shared.Store(true)
		t = w
	}
	e.Log.Add(Step{
		Kind: StepScan, Table: name,
		LeftRows: t.NumRows(), LeftWidth: width,
		OutRows: t.NumRows(), OutWidth: width,
		LeftBase:      name,
		ScanBytesRead: stats.BytesRead, ScanBytesSkipped: stats.BytesSkipped,
		ScanGroupsRead: stats.GroupsRead, ScanGroupsSkipped: stats.GroupsSkipped,
		ScanBytesFromCache: stats.BytesFromCache,
		ScanCacheHits:      stats.CacheHits, ScanCacheMisses: stats.CacheMisses,
		ScanCorruptChunks: stats.CorruptChunks,
	})
	return t
}
