package relal

import "testing"

// TestScanSourceWrapperProtectsSource: ScanSource returns a zero-copy
// wrapper over the source's table instead of mutating its header, but
// the source table must still be flagged shared — otherwise a later
// AppendRow to it would grow the aliased vectors in place and silently
// resize every retained query output derived from the scan.
func TestScanSourceWrapperProtectsSource(t *testing.T) {
	tb := NewTable("t", Schema{{Name: "k", Type: Int}})
	AppendRow(tb, Row{int64(1)})
	AppendRow(tb, Row{int64(2)})
	e := &Exec{Parallelism: 1}
	scanned := e.ScanSource(NewTableSource(tb), []string{"k"}, nil)
	if BaseOf(scanned) != "t" || BaseOf(tb) == "t" {
		t.Fatalf("base annotation should live on the wrapper only: wrapper=%q source=%q",
			BaseOf(scanned), BaseOf(tb))
	}
	proj := e.Project(scanned, "k")
	if proj.NumRows() != 2 {
		t.Fatalf("projection has %d rows, want 2", proj.NumRows())
	}
	AppendRow(tb, Row{int64(3)})
	if tb.NumRows() != 3 {
		t.Fatalf("source table has %d rows after append, want 3", tb.NumRows())
	}
	if proj.NumRows() != 2 {
		t.Fatalf("AppendRow to the scanned base table leaked into a retained query output (%d rows)",
			proj.NumRows())
	}
}
