package relal

import "testing"

func TestZoneCondMayMatch(t *testing.T) {
	iz := ZoneMap{Kind: Int, IntMin: 10, IntMax: 20}
	fz := ZoneMap{Kind: Float, FloatMin: -1.5, FloatMax: 2.5}
	sz := ZoneMap{Kind: Str, StrMin: "1994-01-03", StrMax: "1994-06-30"}
	cases := []struct {
		cond ZoneCond
		zone ZoneMap
		want bool
	}{
		{IntBetween("x", 15, 30), iz, true},
		{IntBetween("x", 21, 30), iz, false},
		{IntBetween("x", 0, 9), iz, false},
		{IntAtLeast("x", 20), iz, true},
		{IntAtLeast("x", 21), iz, false},
		{IntAtMost("x", 10), iz, true},
		{IntAtMost("x", 9), iz, false},
		{IntEq("x", 10), iz, true},
		{FloatBetween("x", 2.5, 9), fz, true},
		{FloatBetween("x", 2.6, 9), fz, false},
		{FloatAtMost("x", -1.6), fz, false},
		{FloatAtLeast("x", -1.5), fz, true},
		{StrBetween("x", "1994-02-01", "1994-03-01"), sz, true},
		{StrBetween("x", "1994-07-01", "1995-01-01"), sz, false},
		{StrAtMost("x", "1994-01-02"), sz, false},
		{StrEq("x", "1994-01-03"), sz, true},
	}
	for _, tc := range cases {
		got := tc.cond.mayMatch(tc.zone)
		if got != tc.want {
			t.Errorf("%+v vs %+v: mayMatch = %v, want %v", tc.cond, tc.zone, got, tc.want)
		}
	}
}

func TestZonePredicateUnknownColumnCannotPrune(t *testing.T) {
	p := ZonePredicate{IntBetween("missing", 100, 200), StrEq("present", "x")}
	keep := p.MayMatch(func(col string) (ZoneMap, bool) {
		if col == "present" {
			return ZoneMap{Kind: Str, StrMin: "a", StrMax: "z"}, true
		}
		return ZoneMap{}, false
	})
	if !keep {
		t.Error("a column without a zone map must not prune")
	}
	// Kind mismatch likewise cannot prune.
	p2 := ZonePredicate{IntBetween("present", 100, 200)}
	if !p2.MayMatch(func(string) (ZoneMap, bool) {
		return ZoneMap{Kind: Str, StrMin: "a", StrMax: "b"}, true
	}) {
		t.Error("kind-mismatched zone map must not prune")
	}
}

func TestTableSourceStats(t *testing.T) {
	// Pin the plain cost model: these expectations are the unencoded
	// widths (sequential keys would otherwise model as delta chunks).
	defer func(r, d bool) { ModelRLE, ModelDelta = r, d }(ModelRLE, ModelDelta)
	ModelRLE, ModelDelta = false, false
	n := 3 * DefaultScanGroupRows / 2 // two virtual groups
	keys := make([]int64, n)
	tags := make([]string, n)
	for i := range keys {
		keys[i] = int64(i)
		tags[i] = "abc" // 4+3 encoded bytes per cell
	}
	tb := NewTable("t", Schema{
		{Name: "k", Type: Int},
		{Name: "s", Type: Str},
	}, IntsV(keys), StrsV(tags))
	src := NewTableSource(tb)

	// Full scan: everything read.
	out, stats := src.ScanTable(nil, nil)
	if out != tb {
		t.Fatal("in-memory source must return the table itself")
	}
	wantTotal := int64(n)*8 + int64(n)*7
	if stats.BytesRead != wantTotal || stats.BytesSkipped != 0 {
		t.Errorf("full scan stats = %+v, want read=%d", stats, wantTotal)
	}
	if stats.GroupsRead != 2 {
		t.Errorf("groups read = %d, want 2", stats.GroupsRead)
	}

	// Column subset: the string column's bytes are skipped.
	_, stats = src.ScanTable([]string{"k"}, nil)
	if stats.BytesRead != int64(n)*8 || stats.BytesSkipped != int64(n)*7 {
		t.Errorf("subset stats = %+v", stats)
	}

	// Predicate outside the key range: both groups prune, all bytes
	// skipped, but the returned table stays whole (in-memory scans
	// never drop rows — only the model changes).
	out, stats = src.ScanTable([]string{"k"}, ZonePredicate{IntAtLeast("k", int64(n)*10)})
	if stats.GroupsSkipped != 2 || stats.BytesRead != 0 || stats.BytesSkipped != wantTotal {
		t.Errorf("pruned stats = %+v", stats)
	}
	if out.NumRows() != n {
		t.Errorf("in-memory scan dropped rows: %d of %d", out.NumRows(), n)
	}

	// Predicate covering only the first group.
	_, stats = src.ScanTable([]string{"k"}, ZonePredicate{IntAtMost("k", 5)})
	if stats.GroupsRead != 1 || stats.GroupsSkipped != 1 {
		t.Errorf("partial prune stats = %+v", stats)
	}
}

func TestScanSourceLogsStats(t *testing.T) {
	defer func(r, d bool) { ModelRLE, ModelDelta = r, d }(ModelRLE, ModelDelta)
	ModelRLE, ModelDelta = false, false
	tb := NewTable("base", Schema{{Name: "k", Type: Int}},
		IntsV([]int64{1, 2, 3}))
	e := &Exec{}
	out := e.ScanSource(NewTableSource(tb), []string{"k"}, nil)
	if out.NumRows() != 3 || BaseOf(out) != "base" {
		t.Fatalf("scan output wrong: rows=%d base=%q", out.NumRows(), BaseOf(out))
	}
	if len(e.Log.Steps) != 1 {
		t.Fatalf("steps = %d", len(e.Log.Steps))
	}
	st := e.Log.Steps[0]
	if st.Kind != StepScan || st.LeftBase != "base" {
		t.Errorf("step = %+v", st)
	}
	if st.ScanBytesRead != 24 || st.ScanBytesSkipped != 0 {
		t.Errorf("scan bytes = %d/%d, want 24/0", st.ScanBytesRead, st.ScanBytesSkipped)
	}
}

func TestScanStatsSkippedFrac(t *testing.T) {
	if f := (ScanStats{}).SkippedFrac(); f != 0 {
		t.Errorf("empty stats frac = %v", f)
	}
	if f := (ScanStats{BytesRead: 25, BytesSkipped: 75}).SkippedFrac(); f != 0.75 {
		t.Errorf("frac = %v, want 0.75", f)
	}
}
