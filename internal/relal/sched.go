// Shared morsel scheduler: one process-wide worker pool serving every
// Exec, every query, every stream. Before this existed each parallel
// kernel call spawned its own goroutines, so N concurrent query streams
// × W workers oversubscribed the cores N-fold; now the pool is sized to
// GOMAXPROCS once and queries submit morsel jobs to it.
//
// Fairness and admission are both per job. A job's admission cap is the
// submitting Exec's Parallelism (its per-query concurrency budget): at
// most cap workers execute the job's morsels at any moment, so one wide
// scan cannot monopolize the pool. Among eligible jobs workers claim
// morsels round-robin (a rotating cursor over the active-job list), so
// concurrent streams make proportional progress instead of FIFO
// convoying.
//
// The determinism contract is untouched: a job's morsel index set and
// per-morsel row ranges are fixed by the submit call, only the
// assignment of morsels to workers is dynamic — exactly the freedom the
// kernels already tolerated, since every kernel merges per-morsel state
// in morsel order. The golden snapshot stays byte-identical at any pool
// size, stream count, and admission cap.
//
// Liveness: the submitting goroutine participates in its own job
// (caller-runs) whenever the admission cap has room, so a job makes
// progress even when every pool worker is busy elsewhere, and a kernel
// running inside a pool worker can itself submit without deadlock. Pool
// workers never block — they run one morsel at a time and return to the
// scheduler — so a parked submitter is always eventually served.
package relal

import (
	"runtime"
	"sync"
)

// schedJob is one submitted batch of work items (morsels or ranges).
// All bookkeeping fields are guarded by the scheduler mutex.
type schedJob struct {
	items   int            // total work items; fixed at submit
	next    int            // next unclaimed item index
	running int            // goroutines currently executing an item (incl. submitter)
	cap     int            // admission cap: max concurrent executors
	done    int            // completed items
	fin     chan struct{}  // closed when done == items
	run     func(item int) // executes one item; must not touch job state
}

// scheduler is the process-wide pool. The zero value is usable; workers
// start lazily on the first parallel submission.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	jobs    []*schedJob // active jobs in round-robin order
	cursor  int         // next jobs index to offer a worker
	size    int         // pool size, fixed at first start
	started bool
}

var globalSched = &scheduler{}

// PoolSize returns the shared scheduler's worker-pool size — the value
// an Exec.Parallelism of 0 resolves to, and the "cores" figure harnesses
// should report instead of streams × workers. The size is pinned to
// GOMAXPROCS at first resolution so it stays stable for the process
// lifetime even if GOMAXPROCS changes later.
func PoolSize() int {
	globalSched.mu.Lock()
	defer globalSched.mu.Unlock()
	return globalSched.sizeLocked()
}

func (s *scheduler) sizeLocked() int {
	if s.size == 0 {
		s.size = runtime.GOMAXPROCS(0)
	}
	return s.size
}

func (s *scheduler) startLocked() {
	if s.started {
		return
	}
	s.started = true
	if s.cond == nil {
		s.cond = sync.NewCond(&s.mu)
	}
	for i := 0; i < s.sizeLocked(); i++ {
		go s.worker()
	}
}

// claimJobLocked claims the next item of j if its admission cap has room.
// Claiming the last item retires the job from the active list (nothing
// left to hand out; completion is tracked separately by done/fin).
func (s *scheduler) claimJobLocked(j *schedJob) (int, bool) {
	if j.next >= j.items || j.running >= j.cap {
		return 0, false
	}
	item := j.next
	j.next++
	j.running++
	if j.next == j.items {
		s.removeLocked(j)
	}
	return item, true
}

// claimLocked scans the active jobs round-robin from the cursor and
// claims one item from the first eligible job. After a claim the cursor
// points at the claimed job's successor, so the next claim offers the
// following job first (round-robin fairness at morsel granularity).
func (s *scheduler) claimLocked() (*schedJob, int) {
	n := len(s.jobs)
	for i := 0; i < n; i++ {
		idx := (s.cursor + i) % n
		j := s.jobs[idx]
		if item, ok := s.claimJobLocked(j); ok {
			switch m := len(s.jobs); {
			case m == 0:
				s.cursor = 0
			case m < n:
				// The claim retired j, shifting its successor into idx.
				s.cursor = idx % m
			default:
				s.cursor = (idx + 1) % m
			}
			return j, item
		}
	}
	return nil, 0
}

// removeLocked drops j from the active list (idempotent) and keeps the
// cursor pointing at the same successor job.
func (s *scheduler) removeLocked(j *schedJob) {
	for i, x := range s.jobs {
		if x == j {
			s.jobs = append(s.jobs[:i], s.jobs[i+1:]...)
			if s.cursor > i {
				s.cursor--
			}
			if len(s.jobs) > 0 {
				s.cursor %= len(s.jobs)
			} else {
				s.cursor = 0
			}
			return
		}
	}
}

// finishLocked records one completed item and returns whether the job is
// fully done. It wakes a parked worker when the completion may have
// reopened the job's admission cap.
func (s *scheduler) finishLocked(j *schedJob) bool {
	j.running--
	j.done++
	if j.done == j.items {
		close(j.fin)
		return true
	}
	if j.next < j.items && j.running < j.cap {
		s.cond.Signal()
	}
	return false
}

// worker is one pool goroutine: claim a single item, run it outside the
// lock, repeat; park when nothing is eligible. Running one item per
// claim (instead of draining a job) is what makes the round-robin fair
// at morsel granularity.
func (s *scheduler) worker() {
	s.mu.Lock()
	for {
		j, item := s.claimLocked()
		if j == nil {
			s.cond.Wait()
			continue
		}
		s.mu.Unlock()
		j.run(item)
		s.mu.Lock()
		s.finishLocked(j)
	}
}

// run submits items work units with the given admission cap and blocks
// until all of them have completed. The caller participates in its own
// job while the cap has room, then waits for pool workers to finish the
// remainder.
func (s *scheduler) run(items, cap int, fn func(item int)) {
	if items <= 0 {
		return
	}
	if cap < 1 {
		cap = 1
	}
	j := &schedJob{items: items, cap: cap, fin: make(chan struct{}), run: fn}
	s.mu.Lock()
	s.startLocked()
	s.jobs = append(s.jobs, j)
	s.cond.Broadcast()
	for {
		item, ok := s.claimJobLocked(j)
		if !ok {
			break
		}
		s.mu.Unlock()
		j.run(item)
		s.mu.Lock()
		if s.finishLocked(j) {
			s.mu.Unlock()
			return
		}
	}
	s.mu.Unlock()
	<-j.fin
}
