package relal

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolSizeStable(t *testing.T) {
	a := PoolSize()
	if a < 1 {
		t.Fatalf("PoolSize() = %d, want >= 1", a)
	}
	if b := PoolSize(); b != a {
		t.Fatalf("PoolSize() changed between calls: %d then %d", a, b)
	}
}

// TestSchedRunsEveryItemOnce drives the global pool hard: many
// concurrent submitters, each expecting every one of its items to run
// exactly once.
func TestSchedRunsEveryItemOnce(t *testing.T) {
	const submitters, items = 8, 100
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			counts := make([]atomic.Int32, items)
			globalSched.run(items, 3, func(item int) {
				counts[item].Add(1)
			})
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Errorf("item %d ran %d times, want 1", i, got)
				}
			}
		}()
	}
	wg.Wait()
}

// TestSchedAdmissionCap checks a job never has more than cap items
// executing at once, whatever the pool size.
func TestSchedAdmissionCap(t *testing.T) {
	const cap = 2
	var cur, peak atomic.Int32
	globalSched.run(32, cap, func(int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
	})
	if p := peak.Load(); p > cap {
		t.Fatalf("peak concurrency %d exceeds admission cap %d", p, cap)
	}
}

// TestSchedNestedSubmit pins the caller-runs liveness property: a work
// item may itself submit a job (a kernel inside a pool worker calling a
// parallel kernel) without deadlocking, even when the outer job already
// saturates the pool.
func TestSchedNestedSubmit(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		var total atomic.Int32
		globalSched.run(2*PoolSize()+2, PoolSize()+1, func(int) {
			globalSched.run(4, 2, func(int) {
				total.Add(1)
			})
		})
		if got, want := total.Load(), int32(4*(2*PoolSize()+2)); got != want {
			t.Errorf("nested items run %d times, want %d", got, want)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested submit deadlocked")
	}
}

// TestSchedRoundRobinClaim unit-tests the claim order on a private
// scheduler (no workers): with two active jobs, successive claims must
// alternate between them rather than draining the first.
func TestSchedRoundRobinClaim(t *testing.T) {
	s := &scheduler{}
	mk := func() *schedJob {
		return &schedJob{items: 4, cap: 4, fin: make(chan struct{}), run: func(int) {}}
	}
	a, b := mk(), mk()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs = []*schedJob{a, b}
	var order []*schedJob
	for i := 0; i < 8; i++ {
		j, _ := s.claimLocked()
		if j == nil {
			t.Fatalf("claim %d returned no job", i)
		}
		order = append(order, j)
	}
	for i, j := range order {
		want := a
		if i%2 == 1 {
			want = b
		}
		if j != want {
			t.Fatalf("claim %d went to the wrong job (drained instead of alternating)", i)
		}
	}
	if j, _ := s.claimLocked(); j != nil {
		t.Fatal("claims continued past item exhaustion")
	}
	if len(s.jobs) != 0 {
		t.Fatalf("%d jobs still active after all items claimed", len(s.jobs))
	}
}

// TestSchedCapBlocksClaim checks the admission gate at the claim level:
// a job at its cap yields no items until one finishes.
func TestSchedCapBlocksClaim(t *testing.T) {
	s := &scheduler{}
	s.cond = sync.NewCond(&s.mu)
	j := &schedJob{items: 3, cap: 1, fin: make(chan struct{}), run: func(int) {}}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs = []*schedJob{j}
	if _, ok := s.claimJobLocked(j); !ok {
		t.Fatal("first claim refused")
	}
	if _, ok := s.claimJobLocked(j); ok {
		t.Fatal("claim admitted past cap")
	}
	s.finishLocked(j)
	if _, ok := s.claimJobLocked(j); !ok {
		t.Fatal("claim refused after cap reopened")
	}
}
