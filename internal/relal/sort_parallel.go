// Morsel-parallel sorting. Sort was the last serial relal kernel: a
// single stable sort of the physical-index vector over the shared column
// vectors. The parallel pipeline mirrors join_parallel.go's structure and
// keeps the same determinism contract — the output permutation is
// byte-identical to the serial sort.SliceStable at any worker count:
//
//  1. Local sort: the index vector splits into fixed-size morsels and
//     each worker stable-sorts its morsels in place. Within a morsel,
//     equal keys keep their original relative order.
//  2. Merge: adjacent sorted runs merge pairwise up a binary merge tree
//     (a deterministic multi-way merge; merges at one level are
//     independent and run across the pool). On equal keys the left run
//     wins — left-run rows precede right-run rows in the input, so the
//     tie-break is exactly the original row order, which is the one
//     permutation a stable sort produces. Run boundaries depend only on
//     the row count and morsel size, never on the worker count.
//
// TopK fuses Limit into the sort: each morsel keeps a bounded max-heap
// of the k least rows under the strict order (sort keys, then original
// row index — the stable-sort order made total), the ≤ morsels·k
// candidates are merged, and the first k are the same rows in the same
// order as Limit-after-Sort, in O(rows·log k) instead of a full sort.
package relal

import (
	"sort"
	"time"
)

// sortMorselRows is the sort/top-K morsel size and the minimum input
// size for the sort pipeline to go parallel. It defaults to the scan
// morsel size; tests shrink it so the merge tree and the per-morsel
// heaps engage on small randomized tables.
var sortMorselRows = MorselRows

// cmpIdx compares two physical rows through the key-comparator chain.
func cmpIdx(cmps []func(a, b int32) int, a, b int32) int {
	for _, c := range cmps {
		if r := c(a, b); r != 0 {
			return r
		}
	}
	return 0
}

// physIndex materializes t's logical→physical row mapping.
func physIndex(t *Table) []int32 {
	idx := make([]int32, t.NumRows())
	if t.sel != nil {
		copy(idx, t.sel)
	} else {
		for i := range idx {
			idx[i] = int32(i)
		}
	}
	return idx
}

// sortIndexWorkers produces the stable sort permutation of t's physical
// indices on a pool of the given size. workers <= 1 (or a sub-morsel
// input) takes the retained serial reference kernel, sortIndexSerial,
// byte-for-byte.
func sortIndexWorkers(t *Table, cmps []func(a, b int32) int, workers int) []int32 {
	n := t.NumRows()
	if workers <= 1 || n <= sortMorselRows {
		return sortIndexSerial(t, cmps)
	}
	idx := physIndex(t)
	// Phase 1: stable-sort each morsel locally. Each morsel owns a
	// disjoint slice of idx, so workers never touch the same element.
	parallelMorselsSize(n, sortMorselRows, workers, func(_, lo, hi int) {
		seg := idx[lo:hi]
		sort.SliceStable(seg, func(a, b int) bool {
			return cmpIdx(cmps, seg[a], seg[b]) < 0
		})
	})
	// Phase 2: merge adjacent runs pairwise, doubling the run width each
	// level. Ping-pong between idx and buf; every element is copied at
	// every level (unpaired tail runs via the mid >= hi fast path), so
	// after each level the destination holds the full permutation. Once
	// the tree narrows below the pool size (the last levels are one or
	// two huge merges), each merge splits at binary-searched pivots into
	// independently mergeable segments so the idle workers stay busy —
	// the segment boundaries depend only on the data and the tie rule,
	// so the merged output is the same bytes the single-worker merge
	// writes.
	buf := make([]int32, n)
	for width := sortMorselRows; width < n; width *= 2 {
		pairs := (n + 2*width - 1) / (2 * width)
		src, dst := idx, buf
		if pairs >= workers {
			parallelRanges(pairs, workers, func(plo, phi int) {
				for p := plo; p < phi; p++ {
					lo := p * 2 * width
					mid := lo + width
					hi := lo + 2*width
					if mid > n {
						mid = n
					}
					if hi > n {
						hi = n
					}
					mergeRuns(src, dst, lo, mid, hi, cmps)
				}
			})
		} else {
			perPair := (workers + pairs - 1) / pairs
			var segs []mergeSeg
			for p := 0; p < pairs; p++ {
				lo := p * 2 * width
				mid := lo + width
				hi := lo + 2*width
				if mid > n {
					mid = n
				}
				if hi > n {
					hi = n
				}
				segs = splitMerge(segs, src, lo, mid, hi, perPair, cmps)
			}
			parallelRanges(len(segs), workers, func(slo, shi int) {
				for s := slo; s < shi; s++ {
					segs[s].merge(src, dst, cmps)
				}
			})
		}
		idx, buf = buf, idx
	}
	return idx
}

// mergeSeg is one independently mergeable slice of a two-run merge:
// src[llo:lhi) and src[rlo:rhi) interleave into dst starting at out.
type mergeSeg struct {
	llo, lhi, rlo, rhi, out int
}

func (s mergeSeg) merge(src, dst []int32, cmps []func(a, b int32) int) {
	i, j, o := s.llo, s.rlo, s.out
	for i < s.lhi && j < s.rhi {
		if cmpIdx(cmps, src[i], src[j]) <= 0 {
			dst[o] = src[i]
			i++
		} else {
			dst[o] = src[j]
			j++
		}
		o++
	}
	o += copy(dst[o:], src[i:s.lhi])
	copy(dst[o:], src[j:s.rhi])
}

// splitMerge appends up to parts segments covering the merge of
// src[lo:mid) and src[mid:hi). The left run splits at fixed fractions;
// each left pivot's counterpart in the right run is the first element
// that does not precede it under the merge's tie rule (ties take the
// left run), found by binary search. Segment boundaries are therefore a
// pure function of the runs — worker count only decides how many
// pivots are tried, and empty segments collapse away — so the
// concatenated segment merges reproduce the serial merge exactly.
func splitMerge(segs []mergeSeg, src []int32, lo, mid, hi, parts int, cmps []func(a, b int32) int) []mergeSeg {
	if mid >= hi || parts <= 1 {
		return append(segs, mergeSeg{llo: lo, lhi: mid, rlo: mid, rhi: hi, out: lo})
	}
	ln := mid - lo
	if parts > ln {
		parts = ln
	}
	prevL, prevR := lo, mid
	for s := 1; s <= parts; s++ {
		var li, rj int
		if s == parts {
			li, rj = mid, hi
		} else {
			li = lo + ln*s/parts
			pivot := src[li]
			// First right-run element with cmp >= 0: everything before
			// it sorts strictly ahead of the pivot and belongs to this
			// segment; the pivot itself (and its ties) goes left-first.
			rj = mid + sort.Search(hi-mid, func(k int) bool {
				return cmpIdx(cmps, src[mid+k], pivot) >= 0
			})
		}
		if li > prevL || rj > prevR {
			segs = append(segs, mergeSeg{
				llo: prevL, lhi: li, rlo: prevR, rhi: rj,
				out: lo + (prevL - lo) + (prevR - mid),
			})
		}
		prevL, prevR = li, rj
	}
	return segs
}

// mergeRuns stable-merges the sorted runs src[lo:mid) and src[mid:hi)
// into dst[lo:hi). Ties take the left run — its rows precede the right
// run's in the original input, preserving stability.
func mergeRuns(src, dst []int32, lo, mid, hi int, cmps []func(a, b int32) int) {
	if mid >= hi {
		copy(dst[lo:hi], src[lo:hi])
		return
	}
	i, j, o := lo, mid, lo
	for i < mid && j < hi {
		if cmpIdx(cmps, src[i], src[j]) <= 0 {
			dst[o] = src[i]
			i++
		} else {
			dst[o] = src[j]
			j++
		}
		o++
	}
	o += copy(dst[o:], src[i:mid])
	copy(dst[o:hi], src[j:hi])
}

// heapTopK scans logical rows [lo, hi) keeping the k least under less in
// a bounded max-heap (root = greatest kept candidate), so a morsel costs
// O(rows·log k) instead of participating in a full sort.
func heapTopK(lo, hi, k int, less func(i, j int32) bool) []int32 {
	h := make([]int32, 0, k)
	for i := lo; i < hi; i++ {
		x := int32(i)
		if len(h) < k {
			h = append(h, x)
			for c := len(h) - 1; c > 0; {
				p := (c - 1) / 2
				if !less(h[p], h[c]) {
					break
				}
				h[p], h[c] = h[c], h[p]
				c = p
			}
			continue
		}
		if !less(x, h[0]) {
			continue
		}
		h[0] = x
		for p := 0; ; {
			big, l, r := p, 2*p+1, 2*p+2
			if l < len(h) && less(h[big], h[l]) {
				big = l
			}
			if r < len(h) && less(h[big], h[r]) {
				big = r
			}
			if big == p {
				break
			}
			h[p], h[big] = h[big], h[p]
			p = big
		}
	}
	return h
}

// topKIndexWorkers returns the first k physical indices of t's stable
// sort permutation without sorting the whole input: per-morsel bounded
// heaps select candidates under the strict (keys, original row index)
// order, and the ≤ morsels·k survivors sort in one final pass. The
// index tie-break makes the order total, so the selected set and its
// order are independent of morsel boundaries and worker count — exactly
// the rows Limit-after-Sort would keep.
func topKIndexWorkers(t *Table, cmps []func(a, b int32) int, k, workers int) []int32 {
	if k <= 0 {
		return []int32{}
	}
	n := t.NumRows()
	sel := t.sel // nil for dense inputs: physical index == logical index
	less := func(i, j int32) bool {
		a, b := i, j
		if sel != nil {
			a, b = sel[i], sel[j]
		}
		if r := cmpIdx(cmps, a, b); r != 0 {
			return r < 0
		}
		return i < j
	}
	var cand []int32
	if workers <= 1 || n <= sortMorselRows {
		cand = heapTopK(0, n, k, less)
	} else {
		morsels := (n + sortMorselRows - 1) / sortMorselRows
		parts := make([][]int32, morsels)
		parallelMorselsSize(n, sortMorselRows, workers, func(m, lo, hi int) {
			parts[m] = heapTopK(lo, hi, k, less)
		})
		total := 0
		for _, p := range parts {
			total += len(p)
		}
		cand = make([]int32, 0, total)
		for _, p := range parts {
			cand = append(cand, p...)
		}
	}
	sort.Slice(cand, func(a, b int) bool { return less(cand[a], cand[b]) })
	if len(cand) > k {
		cand = cand[:k]
	}
	out := make([]int32, len(cand))
	for j, i := range cand {
		if sel != nil {
			out[j] = sel[i]
		} else {
			out[j] = i
		}
	}
	return out
}

// TopK is the fused Sort+Limit operator: the k first rows of the stable
// sort of t by keys, as a zero-copy view, byte-identical to
// e.Limit(e.Sort(t, keys...), k) at every Exec.Parallelism. It logs the
// same Sort+Limit step pair (full input cardinality on the sort step)
// the unfused operators would, so the Hive/PDW cost replays are
// unchanged — the fusion only removes host-side work.
func (e *Exec) TopK(t *Table, k int, keys ...OrderSpec) *Table {
	cmps := sortCmps(t, keys)
	n := t.NumRows()
	w := e.workers()
	start := time.Now()
	var sel []int32
	if k >= n {
		sel = sortIndexWorkers(t, cmps, w)
	} else {
		sel = topKIndexWorkers(t, cmps, k, w)
	}
	e.Log.SortNanos += time.Since(start).Nanoseconds()
	width := t.AvgRowBytes()
	e.Log.Add(Step{
		Kind: StepSort, Table: t.Name,
		LeftRows: n, LeftWidth: width,
		OutRows: n, OutWidth: width,
		LeftBase: BaseOf(t),
	})
	out := view(t, t.Name+"_s", sel)
	SetBase(out, BaseOf(t))
	e.Log.Add(Step{
		Kind: StepLimit, Table: out.Name,
		LeftRows: n, LeftWidth: width,
		OutRows: out.NumRows(), OutWidth: out.AvgRowBytes(),
		LeftBase: BaseOf(t),
	})
	return out
}
