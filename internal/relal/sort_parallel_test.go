package relal

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// shrinkSortMorsels drops the sort morsel size so the local-sort +
// merge-tree pipeline and the per-morsel top-K heaps all engage on
// test-sized tables; restored on cleanup.
func shrinkSortMorsels(t testing.TB, rows int) {
	t.Helper()
	old := sortMorselRows
	sortMorselRows = rows
	t.Cleanup(func() { sortMorselRows = old })
}

// sortCase builds one randomized multi-key table. Keys are drawn from
// [0, card) so low cardinalities force duplicate keys (the stability
// proof: equal keys must keep their original order); sentinel plants
// NaN/MinInt64/""/signed-zero values in the key columns.
type sortCase struct {
	name     string
	rows     int
	card     int64
	kinds    []Type // one key column per entry
	sentinel bool
	view     bool // sort through a filtered view
}

// table returns the case's table: the key columns, a float payload, and
// a "pos" column holding each row's original ordinal — rendering pos
// after the sort captures the full output permutation, so two renders
// match iff the permutations are byte-identical (not just the keys).
func (c sortCase) table(seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	sch := Schema{}
	cols := []*Vector{}
	for k, kind := range c.kinds {
		sch = append(sch, Column{Name: fmt.Sprintf("k%d", k), Type: kind})
		switch kind {
		case Int:
			xs := make([]int64, c.rows)
			for i := range xs {
				xs[i] = rng.Int63n(c.card)
				if c.sentinel && rng.Intn(16) == 0 {
					xs[i] = math.MinInt64
				}
			}
			cols = append(cols, IntsV(xs))
		case Float:
			xs := make([]float64, c.rows)
			for i := range xs {
				xs[i] = float64(rng.Int63n(c.card)) / 2
				if c.sentinel {
					switch rng.Intn(16) {
					case 0:
						xs[i] = math.NaN()
					case 1:
						xs[i] = math.Copysign(0, -1)
					case 2:
						xs[i] = 0
					}
				}
			}
			cols = append(cols, FloatsV(xs))
		default:
			xs := make([]string, c.rows)
			for i := range xs {
				xs[i] = fmt.Sprintf("k%04d", rng.Int63n(c.card))
				if c.sentinel && rng.Intn(16) == 0 {
					xs[i] = ""
				}
			}
			cols = append(cols, StrsV(xs))
		}
	}
	sch = append(sch, Column{Name: "pos", Type: Int})
	pos := make([]int64, c.rows)
	for i := range pos {
		pos[i] = int64(i)
	}
	cols = append(cols, IntsV(pos))
	return NewTable("s", sch, cols...)
}

func (c sortCase) keys() []OrderSpec {
	specs := make([]OrderSpec, len(c.kinds))
	for k := range c.kinds {
		// Alternate directions so descending comparators are covered.
		specs[k] = OrderSpec{Col: fmt.Sprintf("k%d", k), Desc: k%2 == 1}
	}
	return specs
}

// sortView filters the case table to roughly half its rows so the sort
// kernels also run over selection vectors.
func sortView(t *Table) *Table {
	pos := t.IntCol("pos")
	return (&Exec{Parallelism: 1}).Filter(t, func(i int) bool { return pos.Get(i)%2 == 0 })
}

// TestSortParallelDifferential locks the morsel-parallel Sort and the
// fused TopK to the retained serial kernel: for randomized multi-key
// tables — duplicate keys, NULL-ish sentinels, view inputs, empty
// tables — the output permutation must be byte-identical at every
// worker count, and TopK must equal Limit-after-Sort for k at and
// around every boundary.
func TestSortParallelDifferential(t *testing.T) {
	shrinkSortMorsels(t, 16)
	cases := []sortCase{
		{name: "int-dups", rows: 500, card: 12, kinds: []Type{Int}},
		{name: "int-high-card", rows: 400, card: 1 << 40, kinds: []Type{Int}},
		{name: "int-sentinels", rows: 300, card: 9, kinds: []Type{Int}, sentinel: true},
		{name: "float-dups", rows: 350, card: 10, kinds: []Type{Float}},
		{name: "float-nan-signed-zero", rows: 320, card: 8, kinds: []Type{Float}, sentinel: true},
		{name: "str-dups", rows: 300, card: 11, kinds: []Type{Str}},
		{name: "str-empty-sentinel", rows: 280, card: 9, kinds: []Type{Str}, sentinel: true},
		{name: "multi-key", rows: 450, card: 6, kinds: []Type{Str, Float, Int}},
		{name: "multi-key-sentinels", rows: 400, card: 5, kinds: []Type{Int, Float, Str}, sentinel: true},
		{name: "view-input", rows: 500, card: 10, kinds: []Type{Int, Str}, view: true},
		{name: "single-row", rows: 1, card: 3, kinds: []Type{Int}},
		{name: "empty", rows: 0, card: 3, kinds: []Type{Int}},
	}
	for ci, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := c.table(int64(2000 + ci))
			if c.view {
				in = sortView(in)
			}
			keys := c.keys()
			serial := &Exec{Parallelism: 1}
			wantSort := render(serial.Sort(in, keys...))
			n := in.NumRows()
			ks := []int{0, 1, n / 3, n, n + 10}
			wantTop := make([]string, len(ks))
			for j, k := range ks {
				wantTop[j] = render(serial.Limit(serial.Sort(in, keys...), k))
			}
			for _, workers := range diffWorkers() {
				e := &Exec{Parallelism: workers}
				if got := render(e.Sort(in, keys...)); got != wantSort {
					t.Fatalf("workers=%d Sort drifts from serial reference", workers)
				}
				for j, k := range ks {
					if got := render(e.TopK(in, k, keys...)); got != wantTop[j] {
						t.Fatalf("workers=%d TopK(k=%d) drifts from serial Sort+Limit", workers, k)
					}
				}
			}
		})
	}
}

// TestSortParallelLargeMorsels runs one config at the production morsel
// size with an input big enough to cross it, so the default-size merge
// tree is exercised too (the differential suite shrinks the size).
func TestSortParallelLargeMorsels(t *testing.T) {
	c := sortCase{rows: 3*MorselRows + 500, card: 1000, kinds: []Type{Int, Float}}
	in := c.table(7)
	keys := c.keys()
	serial := &Exec{Parallelism: 1}
	wantSort := render(serial.Sort(in, keys...))
	wantTop := render(serial.Limit(serial.Sort(in, keys...), 100))
	for _, workers := range []int{2, 5} {
		e := &Exec{Parallelism: workers}
		if got := render(e.Sort(in, keys...)); got != wantSort {
			t.Fatalf("workers=%d large sort drifts", workers)
		}
		if got := render(e.TopK(in, 100, keys...)); got != wantTop {
			t.Fatalf("workers=%d large TopK drifts", workers)
		}
	}
}

// TestTopKStepLogMatchesSortLimit checks the fused operator logs the
// exact Sort+Limit step pair the unfused path produces — the Hive/PDW
// cost replays consume these steps, so fusion must not move a byte.
func TestTopKStepLogMatchesSortLimit(t *testing.T) {
	shrinkSortMorsels(t, 16)
	c := sortCase{rows: 400, card: 15, kinds: []Type{Float, Int}}
	in := c.table(11)
	keys := c.keys()
	for _, k := range []int{0, 10, 400, 500} {
		serial := &Exec{Parallelism: 1}
		serial.Limit(serial.Sort(in, keys...), k)
		want := serial.Log.Steps
		for _, workers := range diffWorkers() {
			e := &Exec{Parallelism: workers}
			e.TopK(in, k, keys...)
			got := e.Log.Steps
			if len(got) != len(want) {
				t.Fatalf("k=%d workers=%d: %d steps, want %d", k, workers, len(got), len(want))
			}
			for s := range want {
				if got[s] != want[s] {
					t.Fatalf("k=%d workers=%d step %d drifts:\n got %+v\nwant %+v",
						k, workers, s, got[s], want[s])
				}
			}
		}
	}
}

// TestLimitLogsTruncatedWidth: the limit step's OutWidth must come from
// the truncated view (its own k rows), not the input's average — the
// rows a limit keeps can be systematically wider or narrower than the
// table it truncates.
func TestLimitLogsTruncatedWidth(t *testing.T) {
	tb := NewTable("w", Schema{{Name: "s", Type: Str}},
		StrsV([]string{"aaaaaaaaa", "b", "c", "d"})) // 10,2,2,2 encoded bytes
	e := &Exec{}
	out := e.Limit(tb, 1)
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	st := e.Log.Steps[len(e.Log.Steps)-1]
	if st.Kind != StepLimit {
		t.Fatalf("last step = %v, want limit", st.Kind)
	}
	if st.OutRows != 1 || st.OutWidth != 10 {
		t.Errorf("limit step out = %d rows × %d B, want 1 × 10 (truncated view width)", st.OutRows, st.OutWidth)
	}
	if st.LeftRows != 4 || st.LeftWidth != tb.AvgRowBytes() {
		t.Errorf("limit step in = %d rows × %d B, want 4 × %d", st.LeftRows, st.LeftWidth, tb.AvgRowBytes())
	}
}

// TestLimitSharedTableRace is the shared-table audit for the
// dense-input sel synthesis: many goroutines limiting (and reading
// through) one shared dense table concurrently must not write the
// table's state. Run under -race (the CI race job does), any unsafe
// write to the shared header or vectors is flagged.
func TestLimitSharedTableRace(t *testing.T) {
	c := sortCase{rows: 2000, card: 50, kinds: []Type{Int}}
	in := c.table(23)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e := &Exec{Parallelism: 1}
			for r := 0; r < 20; r++ {
				out := e.Limit(in, 10+g)
				pos := out.IntCol("pos")
				for i := 0; i < out.NumRows(); i++ {
					if pos.Get(i) != int64(i) {
						t.Errorf("limit view row %d = %d (dense prefix expected)", i, pos.Get(i))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if in.NumRows() != 2000 {
		t.Fatalf("shared table mutated: %d rows", in.NumRows())
	}
}

// BenchmarkSortParallel is the relal-level sort bench: a multi-morsel
// two-key sort, workers=1 vs GOMAXPROCS.
func BenchmarkSortParallel(b *testing.B) {
	c := sortCase{rows: 24 * MorselRows / 4, card: 10000, kinds: []Type{Int, Float}}
	in := c.table(31)
	keys := c.keys()
	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := &Exec{Parallelism: workers}
			if out := e.Sort(in, keys...); out.NumRows() != in.NumRows() {
				b.Fatal("sort dropped rows")
			}
		}
	}
	b.Run("workers=1", func(b *testing.B) { run(b, 1) })
	b.Run("workers=max", func(b *testing.B) { run(b, 0) })
}

// BenchmarkTopKVsSortLimit quantifies the fusion win: bounded-heap
// selection of 100 rows vs a full sort of the same input.
func BenchmarkTopKVsSortLimit(b *testing.B) {
	c := sortCase{rows: 24 * MorselRows / 4, card: 10000, kinds: []Type{Int, Float}}
	in := c.table(37)
	keys := c.keys()
	b.Run("topk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := &Exec{Parallelism: 1}
			if out := e.TopK(in, 100, keys...); out.NumRows() != 100 {
				b.Fatal("bad topk output")
			}
		}
	})
	b.Run("sort-limit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := &Exec{Parallelism: 1}
			if out := e.Limit(e.Sort(in, keys...), 100); out.NumRows() != 100 {
				b.Fatal("bad sort+limit output")
			}
		}
	})
}
