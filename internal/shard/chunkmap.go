// Package shard implements the two data-distribution schemes the paper
// compares on the YCSB side:
//
//   - Auto-sharding (Mongo-AS): order-preserving range partitioning into
//     chunks managed by a config server, routed by mongos processes, with
//     automatic chunk splits and a balancer that migrates chunks between
//     shards. Range partitioning is why Mongo-AS wins Workload E (scans
//     touch one shard) and why its append-heavy Workload D melts down
//     (every append lands on the tail chunk).
//
//   - Client-side hash sharding (Mongo-CS and SQL-CS): the YCSB client
//     hashes the key to pick the home shard directly. Point operations
//     skip the router hop, but range scans must fan out to every shard.
//
// It also provides the three client-visible store front-ends the YCSB
// harness drives: MongoAS, MongoCS, and SQLCS.
package shard

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// Chunk is a contiguous key range [Min, next chunk's Min) assigned to a
// shard, with a document counter driving splits.
type Chunk struct {
	Min   string // inclusive lower bound; first chunk uses ""
	Shard int
	Count int64
}

// ChunkMap is the config-server view of the range partitioning: an
// ordered list of chunks covering the whole key space.
type ChunkMap struct {
	chunks []Chunk
}

// NewChunkMap returns a map with a single chunk covering everything,
// owned by shard 0.
func NewChunkMap() *ChunkMap {
	return &ChunkMap{chunks: []Chunk{{Min: "", Shard: 0}}}
}

// PreSplit replaces the map with chunks at the given boundaries assigned
// round-robin across nShards — the manual pre-splitting the paper used
// to avoid migration storms during loading. Boundaries must be sorted
// and non-empty strings.
func (c *ChunkMap) PreSplit(boundaries []string, nShards int) error {
	if nShards < 1 {
		return fmt.Errorf("shard: nShards must be >= 1")
	}
	if !sort.StringsAreSorted(boundaries) {
		return fmt.Errorf("shard: boundaries must be sorted")
	}
	chunks := []Chunk{{Min: "", Shard: 0}}
	for i, b := range boundaries {
		if b == "" {
			return fmt.Errorf("shard: empty boundary")
		}
		if i > 0 && boundaries[i-1] == b {
			return fmt.Errorf("shard: duplicate boundary %q", b)
		}
		chunks = append(chunks, Chunk{Min: b, Shard: (i + 1) % nShards})
	}
	c.chunks = chunks
	return nil
}

// Lookup returns the index of the chunk containing key.
func (c *ChunkMap) Lookup(key string) int {
	// First chunk with Min > key; the one before contains key.
	i := sort.Search(len(c.chunks), func(i int) bool { return c.chunks[i].Min > key })
	return i - 1
}

// ShardFor returns the shard owning key.
func (c *ChunkMap) ShardFor(key string) int { return c.chunks[c.Lookup(key)].Shard }

// ChunksInRange returns the chunk indices overlapping keys >= start, in
// order, up to max entries (a scan rarely needs more than a couple).
func (c *ChunkMap) ChunksInRange(start string, max int) []int {
	first := c.Lookup(start)
	var out []int
	for i := first; i < len(c.chunks) && len(out) < max; i++ {
		out = append(out, i)
	}
	return out
}

// Chunk returns a copy of chunk i.
func (c *ChunkMap) Chunk(i int) Chunk { return c.chunks[i] }

// NumChunks returns the number of chunks.
func (c *ChunkMap) NumChunks() int { return len(c.chunks) }

// AddCount adjusts chunk i's document count by delta.
func (c *ChunkMap) AddCount(i int, delta int64) { c.chunks[i].Count += delta }

// Split splits chunk i at key, leaving [Min, key) in place and creating
// [key, next) with half the count on the same shard. Counts are split
// evenly as an estimate. It returns an error if key is not strictly
// inside the chunk.
func (c *ChunkMap) Split(i int, key string) error {
	ch := c.chunks[i]
	if key <= ch.Min {
		return fmt.Errorf("shard: split key %q not above chunk min %q", key, ch.Min)
	}
	if i+1 < len(c.chunks) && key >= c.chunks[i+1].Min {
		return fmt.Errorf("shard: split key %q beyond chunk end", key)
	}
	left := ch.Count / 2
	right := ch.Count - left
	c.chunks[i].Count = left
	newChunk := Chunk{Min: key, Shard: ch.Shard, Count: right}
	c.chunks = append(c.chunks, Chunk{})
	copy(c.chunks[i+2:], c.chunks[i+1:])
	c.chunks[i+1] = newChunk
	return nil
}

// Move reassigns chunk i to shard.
func (c *ChunkMap) Move(i, shard int) { c.chunks[i].Shard = shard }

// CountsByShard returns the number of chunks per shard.
func (c *ChunkMap) CountsByShard(nShards int) []int {
	counts := make([]int, nShards)
	for _, ch := range c.chunks {
		counts[ch.Shard]++
	}
	return counts
}

// Validate checks the map invariants: chunk 0 has Min "", mins strictly
// ascending, counts non-negative.
func (c *ChunkMap) Validate() error {
	if len(c.chunks) == 0 {
		return fmt.Errorf("shard: empty chunk map")
	}
	if c.chunks[0].Min != "" {
		return fmt.Errorf("shard: first chunk min %q, want \"\"", c.chunks[0].Min)
	}
	for i := 1; i < len(c.chunks); i++ {
		if c.chunks[i].Min <= c.chunks[i-1].Min {
			return fmt.Errorf("shard: chunk mins not ascending at %d", i)
		}
	}
	for i, ch := range c.chunks {
		if ch.Count < 0 {
			return fmt.Errorf("shard: negative count in chunk %d", i)
		}
	}
	return nil
}

// HashShards is the client-side hash partitioner used by Mongo-CS and
// SQL-CS: FNV-1a of the key modulo the shard count.
type HashShards struct {
	n int
}

// NewHashShards returns a hash partitioner over n shards.
func NewHashShards(n int) *HashShards {
	if n < 1 {
		n = 1
	}
	return &HashShards{n: n}
}

// ShardFor returns the home shard for key.
func (h *HashShards) ShardFor(key string) int {
	f := fnv.New64a()
	f.Write([]byte(key))
	return int(f.Sum64() % uint64(h.n))
}

// ShardForInt returns the home shard for an integer key — the orderkey
// routing the distributed executor partitions lineitem and orders with.
// The key hashes in its 8-byte little-endian form through the same
// FNV-1a as the string router, with no per-call allocation, so routing
// a whole column is cheap and every process computes the same placement.
func (h *HashShards) ShardForInt(key int64) int {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(key))
	f := fnv.New64a()
	f.Write(b[:])
	return int(f.Sum64() % uint64(h.n))
}

// N returns the number of shards.
func (h *HashShards) N() int { return h.n }
