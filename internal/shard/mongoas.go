package shard

import (
	"fmt"

	"elephants/internal/cluster"
	"elephants/internal/docstore"
	"elephants/internal/sim"
)

// MongoAS is the original auto-sharded MongoDB deployment: a config
// server holding the chunk map, one mongos router per client node
// (running on the server machines, as in the paper), 16 mongod shard
// processes per server node, automatic chunk splitting, and a background
// balancer.
type MongoAS struct {
	s       *sim.Sim
	mongods []*docstore.Mongod
	mongos  []*cluster.Node // node hosting mongos i (client i's router)
	clients []*cluster.Node
	config  *cluster.Node
	chunks  *ChunkMap

	// SplitThreshold is the per-chunk document count that triggers an
	// automatic split.
	SplitThreshold int64
	// CrashQueueLimit models the socket-exception crash the paper hit
	// on Workload D: if the tail shard's global-lock queue exceeds this,
	// the system crashes (0 disables).
	CrashQueueLimit int

	balancer *Balancer
	crashed  bool

	mongosCPU sim.Duration
	splits    int64
}

// MongoASConfig configures the auto-sharded deployment.
type MongoASConfig struct {
	SplitThreshold  int64        // docs per chunk before splitting (default 2048)
	CrashQueueLimit int          // Workload D crash threshold (0 disables)
	MongosCPU       sim.Duration // router CPU per request (default 30µs)
	BalanceEvery    sim.Duration // balancer interval (0 disables)
	BalanceSlack    int          // max chunk-count imbalance tolerated (default 2)
}

// NewMongoAS assembles the deployment. mongos[i] serves clients on
// clients[i] and runs on mongosNodes[i].
func NewMongoAS(s *sim.Sim, mongods []*docstore.Mongod, mongosNodes, clients []*cluster.Node, config *cluster.Node, cfg MongoASConfig) *MongoAS {
	if cfg.SplitThreshold <= 0 {
		cfg.SplitThreshold = 2048
	}
	if cfg.MongosCPU <= 0 {
		cfg.MongosCPU = 30 * sim.Microsecond
	}
	m := &MongoAS{
		s:               s,
		mongods:         mongods,
		mongos:          mongosNodes,
		clients:         clients,
		config:          config,
		chunks:          NewChunkMap(),
		SplitThreshold:  cfg.SplitThreshold,
		CrashQueueLimit: cfg.CrashQueueLimit,
		mongosCPU:       cfg.MongosCPU,
	}
	if cfg.BalanceEvery > 0 {
		slack := cfg.BalanceSlack
		if slack <= 0 {
			slack = 2
		}
		m.balancer = NewBalancer(s, m, cfg.BalanceEvery, slack)
	}
	return m
}

// Name implements Store.
func (m *MongoAS) Name() string { return "Mongo-AS" }

// Chunks exposes the chunk map (for tests and the balancer).
func (m *MongoAS) Chunks() *ChunkMap { return m.chunks }

// Mongods exposes the shard processes.
func (m *MongoAS) Mongods() []*docstore.Mongod { return m.mongods }

// Crashed reports whether the deployment has crashed.
func (m *MongoAS) Crashed() bool { return m.crashed }

// Splits reports how many automatic chunk splits have happened.
func (m *MongoAS) Splits() int64 { return m.splits }

// StartBackground launches the balancer (if configured) and each
// mongod's flusher.
func (m *MongoAS) StartBackground() {
	if m.balancer != nil {
		m.balancer.Start()
	}
	for _, md := range m.mongods {
		md.StartBackground()
	}
}

// StopBackground stops background processes.
func (m *MongoAS) StopBackground() {
	if m.balancer != nil {
		m.balancer.Stop()
	}
	for _, md := range m.mongods {
		md.StopBackground()
	}
}

// PreSplit installs chunk boundaries round-robin across shards, as the
// paper did before loading ("we manually defined the boundaries for all
// of the initially empty chunks and spread them across the 128 shards").
func (m *MongoAS) PreSplit(boundaries []string) error {
	return m.chunks.PreSplit(boundaries, len(m.mongods))
}

func (m *MongoAS) clientNode(client int) *cluster.Node {
	return m.clients[client%len(m.clients)]
}

func (m *MongoAS) mongosNode(client int) *cluster.Node {
	return m.mongos[client%len(m.mongos)]
}

// route charges the client→mongos hop and router CPU, then returns the
// chunk index and mongod for key.
func (m *MongoAS) route(p *sim.Proc, client int, key string, reqBytes int64) (int, *docstore.Mongod) {
	cn := m.clientNode(client)
	mn := m.mongosNode(client)
	cn.Send(p, mn, reqBytes)
	mn.Compute(p, m.mongosCPU)
	ci := m.chunks.Lookup(key)
	return ci, m.mongods[m.chunks.Chunk(ci).Shard]
}

// reply charges the mongod→mongos→client reply path.
func (m *MongoAS) reply(p *sim.Proc, client int, md *docstore.Mongod, bytes int64) {
	mn := m.mongosNode(client)
	md.Node().Send(p, mn, bytes)
	mn.Send(p, m.clientNode(client), bytes)
}

// Read implements Store.
func (m *MongoAS) Read(p *sim.Proc, client int, key string) error {
	if m.crashed {
		return ErrCrashed
	}
	_, md := m.route(p, client, key, readReqBytes)
	mn := m.mongosNode(client)
	mn.Send(p, md.Node(), readReqBytes)
	if _, err := md.FindByID(p, key); err != nil {
		return err
	}
	m.reply(p, client, md, recordBytes)
	return nil
}

// Update implements Store.
func (m *MongoAS) Update(p *sim.Proc, client int, key string, field int, value string) error {
	if m.crashed {
		return ErrCrashed
	}
	_, md := m.route(p, client, key, updateReqBytes)
	mn := m.mongosNode(client)
	mn.Send(p, md.Node(), updateReqBytes)
	if err := md.UpdateByID(p, key, fmt.Sprintf("field%d", field), value); err != nil {
		return err
	}
	m.reply(p, client, md, ackBytes)
	return nil
}

// Insert implements Store. Inserts maintain chunk counts and trigger
// automatic splits; under append-only workloads every insert routes to
// the tail chunk, which is the hot spot behind the paper's Workload D
// meltdown.
func (m *MongoAS) Insert(p *sim.Proc, client int, key string, fields []string) error {
	if m.crashed {
		return ErrCrashed
	}
	ci, md := m.route(p, client, key, insertReqBytes)
	if m.CrashQueueLimit > 0 && md.GlobalLock().QueueLen() > m.CrashQueueLimit {
		m.crashed = true
		return ErrCrashed
	}
	mn := m.mongosNode(client)
	// Inserts verify the shard version against the config server before
	// committing the route (MongoDB's versioned writes); reads use the
	// cached routing table.
	mn.Send(p, m.config, ackBytes)
	mn.Send(p, md.Node(), insertReqBytes)
	if err := md.Insert(p, ycsbDoc(key, fields)); err != nil {
		return err
	}
	m.chunks.AddCount(ci, 1)
	m.maybeSplit(p, ci, md)
	m.reply(p, client, md, ackBytes)
	return nil
}

// maybeSplit splits chunk ci if it exceeds the threshold, asking the
// owning mongod for a median key and updating the config server.
func (m *MongoAS) maybeSplit(p *sim.Proc, ci int, md *docstore.Mongod) {
	ch := m.chunks.Chunk(ci)
	if ch.Count <= m.SplitThreshold {
		return
	}
	splitKey, ok := md.KeyAt(ch.Min, int(ch.Count/2))
	if !ok || splitKey <= ch.Min {
		return
	}
	if err := m.chunks.Split(ci, splitKey); err != nil {
		return
	}
	m.splits++
	// Config-server metadata round trip.
	md.Node().Send(p, m.config, ackBytes)
}

// Scan implements Store. Range partitioning lets the router hit only the
// chunks covering the range — typically one shard per short scan, which
// is why Mongo-AS wins Workload E.
func (m *MongoAS) Scan(p *sim.Proc, client int, start string, limit int) (int, error) {
	if m.crashed {
		return 0, ErrCrashed
	}
	cn := m.clientNode(client)
	mn := m.mongosNode(client)
	cn.Send(p, mn, scanReqBytes)
	mn.Compute(p, m.mongosCPU)
	total := 0
	for _, ci := range m.chunks.ChunksInRange(start, 4) {
		if total >= limit {
			break
		}
		ch := m.chunks.Chunk(ci)
		md := m.mongods[ch.Shard]
		from := start
		if ch.Min > from {
			from = ch.Min
		}
		mn.Send(p, md.Node(), scanReqBytes)
		docs, err := md.ScanRange(p, from, limit-total)
		if err != nil {
			return total, err
		}
		md.Node().Send(p, mn, int64(len(docs))*recordBytes)
		total += len(docs)
		// A chunk boundary does not truncate the scan: if this chunk
		// ran out of keys the next chunk continues the range.
		if len(docs) == 0 {
			continue
		}
	}
	if total > limit {
		total = limit
	}
	mn.Send(p, cn, int64(total)*recordBytes)
	return total, nil
}

// Load implements Store: bulk load outside the measured region, keeping
// chunk counts accurate.
func (m *MongoAS) Load(key string, fields []string) error {
	ci := m.chunks.Lookup(key)
	md := m.mongods[m.chunks.Chunk(ci).Shard]
	if err := md.Load(ycsbDoc(key, fields)); err != nil {
		return err
	}
	m.chunks.AddCount(ci, 1)
	return nil
}

// Balancer periodically evens chunk counts across shards by migrating
// one chunk per round from the most- to the least-loaded shard, charging
// the data transfer.
type Balancer struct {
	s        *sim.Sim
	m        *MongoAS
	interval sim.Duration
	slack    int
	stop     bool
	moves    int64
}

// NewBalancer returns a balancer for m.
func NewBalancer(s *sim.Sim, m *MongoAS, interval sim.Duration, slack int) *Balancer {
	return &Balancer{s: s, m: m, interval: interval, slack: slack}
}

// Moves reports completed chunk migrations.
func (b *Balancer) Moves() int64 { return b.moves }

// Start launches the balancer process.
func (b *Balancer) Start() {
	b.s.Spawn("balancer", func(p *sim.Proc) {
		for {
			p.Sleep(b.interval)
			if b.stop {
				return
			}
			b.round(p)
		}
	})
}

// Stop requests the balancer exit at its next wake-up.
func (b *Balancer) Stop() { b.stop = true }

// round migrates at most one chunk.
func (b *Balancer) round(p *sim.Proc) {
	counts := b.m.chunks.CountsByShard(len(b.m.mongods))
	maxS, minS := 0, 0
	for i, c := range counts {
		if c > counts[maxS] {
			maxS = i
		}
		if c < counts[minS] {
			minS = i
		}
	}
	if counts[maxS]-counts[minS] <= b.slack {
		return
	}
	// Find a chunk on maxS and move it to minS.
	for i := 0; i < b.m.chunks.NumChunks(); i++ {
		ch := b.m.chunks.Chunk(i)
		if ch.Shard != maxS {
			continue
		}
		var end string
		if i+1 < b.m.chunks.NumChunks() {
			end = b.m.chunks.Chunk(i + 1).Min
		}
		src, dst := b.m.mongods[maxS], b.m.mongods[minS]
		docs := src.ExportRange(ch.Min, end)
		var bytes int64
		for _, d := range docs {
			bytes += int64(len(docstore.Marshal(d)))
		}
		src.Node().Send(p, dst.Node(), bytes)
		dst.ImportDocs(docs)
		b.m.chunks.Move(i, minS)
		// Config-server metadata update.
		src.Node().Send(p, b.m.config, ackBytes)
		b.moves++
		return
	}
}
