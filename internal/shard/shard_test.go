package shard

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"elephants/internal/cluster"
	"elephants/internal/docstore"
	"elephants/internal/sim"
	"elephants/internal/sqleng"
)

func TestChunkMapLookup(t *testing.T) {
	c := NewChunkMap()
	if err := c.PreSplit([]string{"g", "p"}, 3); err != nil {
		t.Fatal(err)
	}
	cases := map[string]int{"a": 0, "g": 1, "h": 1, "p": 2, "z": 2}
	for key, want := range cases {
		if got := c.Lookup(key); got != want {
			t.Errorf("Lookup(%q) = %d, want %d", key, got, want)
		}
	}
}

func TestChunkMapPreSplitRoundRobin(t *testing.T) {
	c := NewChunkMap()
	if err := c.PreSplit([]string{"b", "c", "d"}, 2); err != nil {
		t.Fatal(err)
	}
	counts := c.CountsByShard(2)
	if counts[0] != 2 || counts[1] != 2 {
		t.Errorf("counts = %v, want [2 2]", counts)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestChunkMapPreSplitErrors(t *testing.T) {
	c := NewChunkMap()
	if err := c.PreSplit([]string{"b", "a"}, 2); err == nil {
		t.Error("unsorted boundaries should fail")
	}
	if err := c.PreSplit([]string{"a", "a"}, 2); err == nil {
		t.Error("duplicate boundaries should fail")
	}
	if err := c.PreSplit([]string{""}, 2); err == nil {
		t.Error("empty boundary should fail")
	}
	if err := c.PreSplit([]string{"a"}, 0); err == nil {
		t.Error("zero shards should fail")
	}
}

func TestChunkMapSplit(t *testing.T) {
	c := NewChunkMap()
	c.AddCount(0, 10)
	if err := c.Split(0, "m"); err != nil {
		t.Fatal(err)
	}
	if c.NumChunks() != 2 {
		t.Fatalf("chunks = %d, want 2", c.NumChunks())
	}
	if c.Chunk(0).Count+c.Chunk(1).Count != 10 {
		t.Error("split must preserve total count")
	}
	if c.ShardFor("a") != 0 || c.ShardFor("z") != 0 {
		t.Error("both halves stay on the original shard")
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
	if err := c.Split(0, ""); err == nil {
		t.Error("split at or below min should fail")
	}
	if err := c.Split(0, "z"); err == nil {
		t.Error("split beyond chunk end should fail")
	}
}

func TestChunkMapValidateCatchesBadState(t *testing.T) {
	c := &ChunkMap{chunks: []Chunk{{Min: "x"}}}
	if err := c.Validate(); err == nil {
		t.Error("first chunk with non-empty min should fail validation")
	}
	c = &ChunkMap{chunks: []Chunk{{Min: ""}, {Min: "b"}, {Min: "a"}}}
	if err := c.Validate(); err == nil {
		t.Error("non-ascending mins should fail validation")
	}
}

func TestChunkMapSplitInvariantProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		c := NewChunkMap()
		for _, r := range raw {
			key := fmt.Sprintf("k%05d", r%10000+1)
			i := c.Lookup(key)
			ch := c.Chunk(i)
			if key <= ch.Min {
				continue
			}
			if i+1 < c.NumChunks() && key >= c.Chunk(i+1).Min {
				continue
			}
			if err := c.Split(i, key); err != nil {
				return false
			}
		}
		return c.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHashShardsStableAndInRange(t *testing.T) {
	h := NewHashShards(8)
	f := func(key string) bool {
		s := h.ShardFor(key)
		return s >= 0 && s < 8 && s == h.ShardFor(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashShardsBalance(t *testing.T) {
	h := NewHashShards(8)
	counts := make([]int, 8)
	for i := 0; i < 8000; i++ {
		counts[h.ShardFor(fmt.Sprintf("user%024d", i))]++
	}
	for s, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("shard %d has %d of 8000 keys; want ~1000", s, c)
		}
	}
}

// testDeployment builds a small 2-server/2-client deployment of all
// three systems sharing one simulator.
type testDeployment struct {
	s      *sim.Sim
	sqlcs  *SQLCS
	mcs    *MongoCS
	mas    *MongoAS
	config *cluster.Node
}

func newDeployment(asCfg MongoASConfig) *testDeployment {
	s := sim.New()
	cl := cluster.New(s, cluster.Config{Nodes: 5}) // 2 servers, 2 clients, 1 config
	servers := cl.Nodes[0:2]
	clients := cl.Nodes[2:4]
	config := cl.Nodes[4]

	engines := []*sqleng.Engine{
		sqleng.New(s, servers[0], sqleng.Config{}),
		sqleng.New(s, servers[1], sqleng.Config{}),
	}
	var csMongods, asMongods []*docstore.Mongod
	for i := 0; i < 4; i++ {
		csMongods = append(csMongods, docstore.NewMongod(s, servers[i%2], docstore.Config{}))
		asMongods = append(asMongods, docstore.NewMongod(s, servers[i%2], docstore.Config{}))
	}
	return &testDeployment{
		s:      s,
		sqlcs:  NewSQLCS(engines, clients),
		mcs:    NewMongoCS(csMongods, clients),
		mas:    NewMongoAS(s, asMongods, []*cluster.Node{servers[0], servers[1]}, clients, config, asCfg),
		config: config,
	}
}

func fields() []string {
	f := make([]string, FieldCount)
	for i := range f {
		f[i] = string(make([]byte, 100))
	}
	return f
}

func TestStoresInsertReadUpdate(t *testing.T) {
	d := newDeployment(MongoASConfig{})
	stores := []Store{d.sqlcs, d.mcs, d.mas}
	errs := make([]error, len(stores))
	for i, st := range stores {
		i, st := i, st
		d.s.Spawn(st.Name(), func(p *sim.Proc) {
			key := fmt.Sprintf("user%06d", i)
			if err := st.Insert(p, 0, key, fields()); err != nil {
				errs[i] = fmt.Errorf("%s insert: %w", st.Name(), err)
				return
			}
			if err := st.Read(p, 0, key); err != nil {
				errs[i] = fmt.Errorf("%s read: %w", st.Name(), err)
				return
			}
			if err := st.Update(p, 0, key, 3, "newval"); err != nil {
				errs[i] = fmt.Errorf("%s update: %w", st.Name(), err)
			}
		})
	}
	d.s.Run()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

func TestStoresReadMissing(t *testing.T) {
	d := newDeployment(MongoASConfig{})
	stores := []Store{d.sqlcs, d.mcs, d.mas}
	errs := make([]error, len(stores))
	for i, st := range stores {
		i, st := i, st
		d.s.Spawn(st.Name(), func(p *sim.Proc) {
			errs[i] = st.Read(p, 0, "nope")
		})
	}
	d.s.Run()
	for i, err := range errs {
		if err == nil {
			t.Errorf("%s: read of missing key should fail", stores[i].Name())
		}
	}
}

func TestScanCounts(t *testing.T) {
	d := newDeployment(MongoASConfig{})
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("user%06d", i)
		d.sqlcs.Load(key, fields())
		d.mcs.Load(key, fields())
		d.mas.Load(key, fields())
	}
	stores := []Store{d.sqlcs, d.mcs, d.mas}
	counts := make([]int, len(stores))
	for i, st := range stores {
		i, st := i, st
		d.s.Spawn(st.Name(), func(p *sim.Proc) {
			counts[i], _ = st.Scan(p, 0, "user000010", 10)
		})
	}
	d.s.Run()
	for i, st := range stores {
		if counts[i] != 10 {
			t.Errorf("%s scan returned %d, want 10", st.Name(), counts[i])
		}
	}
}

func TestMongoASScanTouchesOneShard(t *testing.T) {
	d := newDeployment(MongoASConfig{})
	// Pre-split into 4 chunks so the range lives on one shard.
	if err := d.mas.PreSplit([]string{"user000100", "user000200", "user000300"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		d.mas.Load(fmt.Sprintf("user%06d", i), fields())
	}
	d.s.Spawn("scan", func(p *sim.Proc) {
		d.mas.Scan(p, 0, "user000110", 10)
	})
	d.s.Run()
	scansPerShard := make([]int64, 4)
	for i, md := range d.mas.Mongods() {
		_, _, _, sc := md.Stats()
		scansPerShard[i] = sc
	}
	touched := 0
	for _, sc := range scansPerShard {
		if sc > 0 {
			touched++
		}
	}
	if touched != 1 {
		t.Errorf("Mongo-AS short scan touched %d shards, want 1 (range partitioning)", touched)
	}
}

func TestMongoCSScanFansOutToAllShards(t *testing.T) {
	d := newDeployment(MongoASConfig{})
	for i := 0; i < 400; i++ {
		d.mcs.Load(fmt.Sprintf("user%06d", i), fields())
	}
	d.s.Spawn("scan", func(p *sim.Proc) {
		d.mcs.Scan(p, 0, "user000110", 10)
	})
	d.s.Run()
	touched := 0
	for _, md := range d.mcs.mongods {
		_, _, _, sc := md.Stats()
		if sc > 0 {
			touched++
		}
	}
	if touched != len(d.mcs.mongods) {
		t.Errorf("Mongo-CS scan touched %d shards, want all %d (hash partitioning)", touched, len(d.mcs.mongods))
	}
}

func TestMongoASAutoSplit(t *testing.T) {
	d := newDeployment(MongoASConfig{SplitThreshold: 50})
	var err error
	d.s.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			if e := d.mas.Insert(p, 0, fmt.Sprintf("user%06d", i), fields()); e != nil {
				err = e
				return
			}
		}
	})
	d.s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.mas.Splits() == 0 {
		t.Error("expected automatic chunk splits after 200 inserts with threshold 50")
	}
	if got := d.mas.Chunks().NumChunks(); got < 2 {
		t.Errorf("chunks = %d, want >= 2", got)
	}
	if err := d.mas.Chunks().Validate(); err != nil {
		t.Error(err)
	}
}

func TestBalancerEvensChunks(t *testing.T) {
	d := newDeployment(MongoASConfig{SplitThreshold: 25, BalanceEvery: sim.Second, BalanceSlack: 1})
	d.mas.StartBackground()
	var insertErr error
	d.s.Spawn("load", func(p *sim.Proc) {
		// Sequential keys: all splits pile onto shard 0 until the
		// balancer moves chunks away.
		for i := 0; i < 300; i++ {
			if e := d.mas.Insert(p, 0, fmt.Sprintf("user%06d", i), fields()); e != nil {
				insertErr = e
				break
			}
			p.Sleep(50 * sim.Millisecond)
		}
		// Let the balancer settle after the load stops.
		p.Sleep(20 * sim.Second)
		d.mas.StopBackground()
	})
	d.s.Run()
	if insertErr != nil {
		t.Fatal(insertErr)
	}
	if d.mas.balancer.Moves() == 0 {
		t.Error("balancer should have migrated at least one chunk")
	}
	counts := d.mas.Chunks().CountsByShard(4)
	sort.Ints(counts)
	if counts[3]-counts[0] > 3 {
		t.Errorf("chunk counts still unbalanced after balancing: %v", counts)
	}
}

func TestBalancerPreservesData(t *testing.T) {
	d := newDeployment(MongoASConfig{SplitThreshold: 25, BalanceEvery: sim.Second, BalanceSlack: 1})
	d.mas.StartBackground()
	const n = 300
	d.s.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			d.mas.Insert(p, 0, fmt.Sprintf("user%06d", i), fields())
			p.Sleep(50 * sim.Millisecond)
		}
		d.mas.StopBackground()
	})
	d.s.Run()
	total := 0
	for _, md := range d.mas.Mongods() {
		total += md.Count()
	}
	if total != n {
		t.Fatalf("documents after balancing = %d, want %d", total, n)
	}
	// Every key must be readable through the router.
	var readErr error
	d.s.Spawn("verify", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := d.mas.Read(p, 0, fmt.Sprintf("user%06d", i)); err != nil {
				readErr = err
				return
			}
		}
	})
	d.s.Run()
	if readErr != nil {
		t.Errorf("read after balancing: %v", readErr)
	}
}

func TestMongoASCrashUnderAppendOverload(t *testing.T) {
	d := newDeployment(MongoASConfig{CrashQueueLimit: 3})
	for i := 0; i < 10; i++ {
		d.mas.Load(fmt.Sprintf("user%06d", i), fields())
	}
	// Flood the tail chunk with concurrent appends.
	var sawCrash bool
	for c := 0; c < 64; c++ {
		c := c
		d.s.Spawn("appender", func(p *sim.Proc) {
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("userz%03d_%03d", c, i)
				if err := d.mas.Insert(p, c, key, fields()); err == ErrCrashed {
					sawCrash = true
					return
				}
			}
		})
	}
	d.s.Run()
	if !sawCrash || !d.mas.Crashed() {
		t.Error("Mongo-AS should crash under append overload (Workload D behaviour)")
	}
}
