package shard

import (
	"errors"
	"fmt"

	"elephants/internal/cluster"
	"elephants/internal/docstore"
	"elephants/internal/sim"
	"elephants/internal/sqleng"
)

// Store is the client-visible interface the YCSB harness drives. Every
// operation is issued on behalf of a client index, which determines the
// client node whose NIC the request charges.
type Store interface {
	// Name identifies the system ("Mongo-AS", "Mongo-CS", "SQL-CS").
	Name() string
	// Read fetches all fields of the record.
	Read(p *sim.Proc, client int, key string) error
	// Update overwrites one field of the record.
	Update(p *sim.Proc, client int, key string, field int, value string) error
	// Insert adds a new record with the given field values.
	Insert(p *sim.Proc, client int, key string, fields []string) error
	// Scan reads up to limit records in key order starting at start,
	// returning how many were read.
	Scan(p *sim.Proc, client int, start string, limit int) (int, error)
	// Load bulk-inserts a record outside the measured region.
	Load(key string, fields []string) error
}

// ErrCrashed is returned once a system has crashed (Mongo-AS under
// append-heavy overload, per the paper's Workload D observation).
var ErrCrashed = errors.New("shard: system crashed (append overload)")

// Wire-size constants for request/reply charging (bytes).
const (
	readReqBytes   = 100
	updateReqBytes = 250
	insertReqBytes = 1200
	scanReqBytes   = 120
	recordBytes    = 1100 // 24 B key + 10×100 B fields + framing
	ackBytes       = 50
)

// FieldCount is the YCSB record field count.
const FieldCount = 10

// ycsbDoc builds the BSON document for a YCSB record.
func ycsbDoc(key string, fields []string) *docstore.Doc {
	d := docstore.NewDoc(docstore.Field{Key: "_id", Val: key})
	for i, v := range fields {
		d.Set(fmt.Sprintf("field%d", i), v)
	}
	return d
}

// encodeRecord flattens fields for the SQL engine's opaque row payload.
func encodeRecord(fields []string) []byte {
	var out []byte
	for _, f := range fields {
		out = append(out, f...)
	}
	return out
}

// SQLCS is client-side-sharded SQL Server: one engine per server node,
// clients hash keys to engines and talk to them directly with stored
// procedures.
type SQLCS struct {
	engines []*sqleng.Engine
	clients []*cluster.Node
	hash    *HashShards
}

// NewSQLCS builds the SQL-CS front-end over the given engines and client
// nodes.
func NewSQLCS(engines []*sqleng.Engine, clients []*cluster.Node) *SQLCS {
	return &SQLCS{engines: engines, clients: clients, hash: NewHashShards(len(engines))}
}

// Name implements Store.
func (s *SQLCS) Name() string { return "SQL-CS" }

func (s *SQLCS) clientNode(client int) *cluster.Node {
	return s.clients[client%len(s.clients)]
}

// Read implements Store.
func (s *SQLCS) Read(p *sim.Proc, client int, key string) error {
	eng := s.engines[s.hash.ShardFor(key)]
	cn := s.clientNode(client)
	cn.Send(p, eng.Node(), readReqBytes)
	if _, err := eng.ReadRecord(p, key); err != nil {
		return err
	}
	eng.Node().Send(p, cn, recordBytes)
	return nil
}

// Update implements Store.
func (s *SQLCS) Update(p *sim.Proc, client int, key string, field int, value string) error {
	eng := s.engines[s.hash.ShardFor(key)]
	cn := s.clientNode(client)
	cn.Send(p, eng.Node(), updateReqBytes)
	rec, err := eng.ReadRecord(p, key)
	if err != nil {
		return err
	}
	// Overwrite the field slice in place (fixed-width fields).
	updated := make([]byte, len(rec))
	copy(updated, rec)
	start := field * 100
	if start+len(value) <= len(updated) {
		copy(updated[start:], value)
	}
	if err := eng.UpdateRecord(p, key, updated); err != nil {
		return err
	}
	eng.Node().Send(p, cn, ackBytes)
	return nil
}

// Insert implements Store.
func (s *SQLCS) Insert(p *sim.Proc, client int, key string, fields []string) error {
	eng := s.engines[s.hash.ShardFor(key)]
	cn := s.clientNode(client)
	cn.Send(p, eng.Node(), insertReqBytes)
	if err := eng.InsertRecord(p, key, encodeRecord(fields)); err != nil {
		return err
	}
	eng.Node().Send(p, cn, ackBytes)
	return nil
}

// Scan implements Store. Hash partitioning cannot tell which shards hold
// the range, so the client fans out to every engine in parallel and
// merges, discarding overshoot — the paper's explanation for SQL-CS and
// Mongo-CS losing Workload E.
func (s *SQLCS) Scan(p *sim.Proc, client int, start string, limit int) (int, error) {
	cn := s.clientNode(client)
	counts := make([]int, len(s.engines))
	wg := p.Sim().NewWaitGroup()
	wg.Add(len(s.engines))
	for i, eng := range s.engines {
		i, eng := i, eng
		p.Sim().Spawn("scan-fanout", func(sp *sim.Proc) {
			defer wg.Done()
			cn.Send(sp, eng.Node(), scanReqBytes)
			recs, err := eng.ScanRecords(sp, start, limit)
			if err != nil {
				return
			}
			counts[i] = len(recs)
			eng.Node().Send(sp, cn, int64(len(recs))*recordBytes)
		})
	}
	wg.Wait(p)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total > limit {
		total = limit
	}
	return total, nil
}

// Load implements Store.
func (s *SQLCS) Load(key string, fields []string) error {
	s.engines[s.hash.ShardFor(key)].LoadRecord(key, encodeRecord(fields))
	return nil
}

// LoadTimed inserts one record as its own transaction, as the paper's
// SQL-CS load phase did (no bulk insert method was used).
func (s *SQLCS) LoadTimed(p *sim.Proc, client int, key string, fields []string) error {
	return s.Insert(p, client, key, fields)
}

// MongoCS is client-side-sharded MongoDB: clients hash keys straight to
// mongod processes; no mongos, config server, or balancer.
type MongoCS struct {
	mongods []*docstore.Mongod
	clients []*cluster.Node
	hash    *HashShards
}

// NewMongoCS builds the Mongo-CS front-end.
func NewMongoCS(mongods []*docstore.Mongod, clients []*cluster.Node) *MongoCS {
	return &MongoCS{mongods: mongods, clients: clients, hash: NewHashShards(len(mongods))}
}

// Name implements Store.
func (m *MongoCS) Name() string { return "Mongo-CS" }

func (m *MongoCS) clientNode(client int) *cluster.Node {
	return m.clients[client%len(m.clients)]
}

// Read implements Store.
func (m *MongoCS) Read(p *sim.Proc, client int, key string) error {
	md := m.mongods[m.hash.ShardFor(key)]
	cn := m.clientNode(client)
	cn.Send(p, md.Node(), readReqBytes)
	if _, err := md.FindByID(p, key); err != nil {
		return err
	}
	md.Node().Send(p, cn, recordBytes)
	return nil
}

// Update implements Store.
func (m *MongoCS) Update(p *sim.Proc, client int, key string, field int, value string) error {
	md := m.mongods[m.hash.ShardFor(key)]
	cn := m.clientNode(client)
	cn.Send(p, md.Node(), updateReqBytes)
	if err := md.UpdateByID(p, key, fmt.Sprintf("field%d", field), value); err != nil {
		return err
	}
	// Safe mode: wait for the server acknowledgement.
	md.Node().Send(p, cn, ackBytes)
	return nil
}

// Insert implements Store.
func (m *MongoCS) Insert(p *sim.Proc, client int, key string, fields []string) error {
	md := m.mongods[m.hash.ShardFor(key)]
	cn := m.clientNode(client)
	cn.Send(p, md.Node(), insertReqBytes)
	if err := md.Insert(p, ycsbDoc(key, fields)); err != nil {
		return err
	}
	md.Node().Send(p, cn, ackBytes)
	return nil
}

// Scan implements Store, fanning out to every mongod (hash partitioning).
func (m *MongoCS) Scan(p *sim.Proc, client int, start string, limit int) (int, error) {
	cn := m.clientNode(client)
	counts := make([]int, len(m.mongods))
	wg := p.Sim().NewWaitGroup()
	wg.Add(len(m.mongods))
	for i, md := range m.mongods {
		i, md := i, md
		p.Sim().Spawn("scan-fanout", func(sp *sim.Proc) {
			defer wg.Done()
			cn.Send(sp, md.Node(), scanReqBytes)
			docs, err := md.ScanRange(sp, start, limit)
			if err != nil {
				return
			}
			counts[i] = len(docs)
			md.Node().Send(sp, cn, int64(len(docs))*recordBytes)
		})
	}
	wg.Wait(p)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total > limit {
		total = limit
	}
	return total, nil
}

// Load implements Store.
func (m *MongoCS) Load(key string, fields []string) error {
	return m.mongods[m.hash.ShardFor(key)].Load(ycsbDoc(key, fields))
}
