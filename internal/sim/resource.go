package sim

// Resource is a FIFO-queued resource with fixed capacity (a counting
// semaphore with queueing): disks, NICs, CPU cores, map slots, and locks
// are all Resources. Waiting time in the queue is virtual time, which is
// how contention turns into latency in the simulation.
type Resource struct {
	s        *Sim
	name     string
	capacity int
	inUse    int
	waiters  []chan struct{}

	// Busy accounting for utilisation reports.
	busy      Duration
	lastEnter Time
}

// NewResource returns a resource with the given capacity (>= 1).
func (s *Sim) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{s: s, name: name, capacity: capacity}
}

// NewMutex returns a capacity-1 resource.
func (s *Sim) NewMutex(name string) *Resource { return s.NewResource(name, 1) }

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Acquire blocks the process until a unit of the resource is available.
// Waiters are served in FIFO order.
func (r *Resource) Acquire(p *Proc) {
	s := r.s
	s.mu.Lock()
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		if r.inUse == 0 {
			r.lastEnter = s.now
		}
		r.inUse++
		s.mu.Unlock()
		return
	}
	ch := s.park()
	r.waiters = append(r.waiters, ch)
	s.mu.Unlock()
	<-ch
}

// TryAcquire acquires a unit if one is immediately available and reports
// whether it did.
func (r *Resource) TryAcquire() bool {
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		if r.inUse == 0 {
			r.lastEnter = s.now
		}
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit of the resource, waking the oldest waiter if
// any. It may be called from any process holding a unit.
func (r *Resource) Release() {
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(r.waiters) > 0 {
		// Hand the unit directly to the next waiter; inUse is unchanged.
		ch := r.waiters[0]
		r.waiters = r.waiters[1:]
		s.unpark(ch)
		return
	}
	r.inUse--
	if r.inUse < 0 {
		panic("sim: Release without Acquire on " + r.name)
	}
	if r.inUse == 0 {
		r.busy += Duration(s.now - r.lastEnter)
	}
}

// Use acquires the resource, holds it for service time d, and releases it.
// This is the building block for queueing delays: the caller's latency is
// queue wait plus d.
func (r *Resource) Use(p *Proc, d Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// QueueLen reports the number of processes waiting (not served).
func (r *Resource) QueueLen() int {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	return len(r.waiters)
}

// InUse reports the number of units currently held.
func (r *Resource) InUse() int {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	return r.inUse
}

// BusyTime reports the cumulative virtual time during which at least one
// unit of the resource was held.
func (r *Resource) BusyTime() Duration {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	b := r.busy
	if r.inUse > 0 {
		b += Duration(r.s.now - r.lastEnter)
	}
	return b
}

// WaitGroup is the virtual-time analogue of sync.WaitGroup: processes
// block in virtual time until the counter reaches zero.
type WaitGroup struct {
	s       *Sim
	count   int
	waiters []chan struct{}
}

// NewWaitGroup returns an empty wait group.
func (s *Sim) NewWaitGroup() *WaitGroup { return &WaitGroup{s: s} }

// Add adds delta to the counter.
func (w *WaitGroup) Add(delta int) {
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	w.count += delta
	if w.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.count == 0 {
		for _, ch := range w.waiters {
			w.s.unpark(ch)
		}
		w.waiters = nil
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks the process until the counter is zero.
func (w *WaitGroup) Wait(p *Proc) {
	s := w.s
	s.mu.Lock()
	if w.count == 0 {
		s.mu.Unlock()
		return
	}
	ch := s.park()
	w.waiters = append(w.waiters, ch)
	s.mu.Unlock()
	<-ch
}
