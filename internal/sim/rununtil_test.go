package sim

import "testing"

func TestRunUntilStopsClock(t *testing.T) {
	s := New()
	var ticks int
	s.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(Second)
			ticks++
		}
	})
	end := s.RunUntil(Time(3500 * Millisecond))
	if ticks != 3 {
		t.Errorf("ticks = %d, want 3 (events past the horizon stay pending)", ticks)
	}
	if end > Time(3500*Millisecond) {
		t.Errorf("clock = %v, want <= 3.5s", Duration(end))
	}
	// Resuming with Run drains the rest.
	s.Run()
	if ticks != 10 {
		t.Errorf("after Run: ticks = %d, want 10", ticks)
	}
}

func TestRunUntilNoEvents(t *testing.T) {
	s := New()
	if got := s.RunUntil(Time(Second)); got != 0 {
		t.Errorf("RunUntil with no events = %v, want 0", Duration(got))
	}
}
