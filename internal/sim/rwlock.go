package sim

// RWLock is a reader-writer lock in virtual time with FIFO fairness:
// a queued writer blocks later readers, so writers cannot starve. It
// backs both the SQL engine's row locks (READ COMMITTED) and MongoDB's
// per-process global write lock, whose contention behaviour drives the
// paper's Workload A analysis.
type RWLock struct {
	s       *Sim
	name    string
	readers int
	writer  bool
	queue   []rwWaiter

	// Contention accounting: cumulative virtual time with the write
	// side held (the paper reports % time spent in the global lock).
	writeBusy  Duration
	writeSince Time
}

type rwWaiter struct {
	write bool
	ch    chan struct{}
}

// NewRWLock returns an unlocked reader-writer lock.
func (s *Sim) NewRWLock(name string) *RWLock {
	return &RWLock{s: s, name: name}
}

// AcquireRead blocks until the lock is readable (no writer holds it and
// no writer is queued ahead).
func (l *RWLock) AcquireRead(p *Proc) {
	s := l.s
	s.mu.Lock()
	if !l.writer && len(l.queue) == 0 {
		l.readers++
		s.mu.Unlock()
		return
	}
	ch := s.park()
	l.queue = append(l.queue, rwWaiter{write: false, ch: ch})
	s.mu.Unlock()
	<-ch
}

// ReleaseRead releases a read hold.
func (l *RWLock) ReleaseRead() {
	s := l.s
	s.mu.Lock()
	defer s.mu.Unlock()
	l.readers--
	if l.readers < 0 {
		panic("sim: ReleaseRead without AcquireRead on " + l.name)
	}
	l.dispatchLocked()
}

// AcquireWrite blocks until the lock is exclusively held.
func (l *RWLock) AcquireWrite(p *Proc) {
	s := l.s
	s.mu.Lock()
	if !l.writer && l.readers == 0 && len(l.queue) == 0 {
		l.writer = true
		l.writeSince = s.now
		s.mu.Unlock()
		return
	}
	ch := s.park()
	l.queue = append(l.queue, rwWaiter{write: true, ch: ch})
	s.mu.Unlock()
	<-ch
}

// ReleaseWrite releases the exclusive hold.
func (l *RWLock) ReleaseWrite() {
	s := l.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if !l.writer {
		panic("sim: ReleaseWrite without AcquireWrite on " + l.name)
	}
	l.writer = false
	l.writeBusy += Duration(s.now - l.writeSince)
	l.dispatchLocked()
}

// dispatchLocked grants the lock to queued waiters in FIFO order: either
// one writer, or every reader up to the next queued writer. Must be
// called with s.mu held, with the lock in a grantable state.
func (l *RWLock) dispatchLocked() {
	if l.writer || len(l.queue) == 0 {
		return
	}
	if l.queue[0].write {
		if l.readers > 0 {
			return
		}
		w := l.queue[0]
		l.queue = l.queue[1:]
		l.writer = true
		l.writeSince = l.s.now
		l.s.unpark(w.ch)
		return
	}
	for len(l.queue) > 0 && !l.queue[0].write {
		w := l.queue[0]
		l.queue = l.queue[1:]
		l.readers++
		l.s.unpark(w.ch)
	}
}

// WriteBusy reports the cumulative virtual time the write side was held.
func (l *RWLock) WriteBusy() Duration {
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	b := l.writeBusy
	if l.writer {
		b += Duration(l.s.now - l.writeSince)
	}
	return b
}

// QueueLen reports the number of parked waiters.
func (l *RWLock) QueueLen() int {
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	return len(l.queue)
}
