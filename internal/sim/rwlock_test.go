package sim

import "testing"

func TestRWLockConcurrentReaders(t *testing.T) {
	s := New()
	l := s.NewRWLock("l")
	for i := 0; i < 5; i++ {
		s.Spawn("r", func(p *Proc) {
			l.AcquireRead(p)
			p.Sleep(Second)
			l.ReleaseRead()
		})
	}
	if end := s.Run(); end != Time(Second) {
		t.Errorf("5 concurrent readers took %v, want 1s", Duration(end))
	}
}

func TestRWLockWriterExcludesReaders(t *testing.T) {
	s := New()
	l := s.NewRWLock("l")
	var readerDone Time
	s.Spawn("w", func(p *Proc) {
		l.AcquireWrite(p)
		p.Sleep(Second)
		l.ReleaseWrite()
	})
	s.Spawn("r", func(p *Proc) {
		p.Sleep(Millisecond) // arrive while writer holds
		l.AcquireRead(p)
		readerDone = p.Now()
		l.ReleaseRead()
	})
	s.Run()
	if readerDone != Time(Second) {
		t.Errorf("reader proceeded at %v, want 1s (after writer)", Duration(readerDone))
	}
}

func TestRWLockWritersSerialize(t *testing.T) {
	s := New()
	l := s.NewRWLock("l")
	for i := 0; i < 3; i++ {
		s.Spawn("w", func(p *Proc) {
			l.AcquireWrite(p)
			p.Sleep(Second)
			l.ReleaseWrite()
		})
	}
	if end := s.Run(); end != Time(3*Second) {
		t.Errorf("3 writers took %v, want 3s", Duration(end))
	}
}

func TestRWLockQueuedWriterBlocksLaterReaders(t *testing.T) {
	s := New()
	l := s.NewRWLock("l")
	var lateReaderStart Time
	s.Spawn("r1", func(p *Proc) {
		l.AcquireRead(p)
		p.Sleep(2 * Second)
		l.ReleaseRead()
	})
	s.Spawn("w", func(p *Proc) {
		p.Sleep(Millisecond)
		l.AcquireWrite(p) // queued behind r1
		p.Sleep(Second)
		l.ReleaseWrite()
	})
	s.Spawn("r2", func(p *Proc) {
		p.Sleep(2 * Millisecond)
		l.AcquireRead(p) // must wait for queued writer (no starvation)
		lateReaderStart = p.Now()
		l.ReleaseRead()
	})
	s.Run()
	if lateReaderStart != Time(3*Second) {
		t.Errorf("late reader ran at %v, want 3s (after writer)", Duration(lateReaderStart))
	}
}

func TestRWLockBatchWakesReaders(t *testing.T) {
	s := New()
	l := s.NewRWLock("l")
	starts := make([]Time, 3)
	s.Spawn("w", func(p *Proc) {
		l.AcquireWrite(p)
		p.Sleep(Second)
		l.ReleaseWrite()
	})
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn("r", func(p *Proc) {
			p.Sleep(Millisecond)
			l.AcquireRead(p)
			starts[i] = p.Now()
			p.Sleep(Second)
			l.ReleaseRead()
		})
	}
	if end := s.Run(); end != Time(2*Second) {
		t.Errorf("end %v, want 2s (readers batched)", Duration(end))
	}
	for i, st := range starts {
		if st != Time(Second) {
			t.Errorf("reader %d started at %v, want 1s", i, Duration(st))
		}
	}
}

func TestRWLockWriteBusy(t *testing.T) {
	s := New()
	l := s.NewRWLock("l")
	s.Spawn("w", func(p *Proc) {
		l.AcquireWrite(p)
		p.Sleep(3 * Second)
		l.ReleaseWrite()
	})
	s.Run()
	if got := l.WriteBusy(); got != 3*Second {
		t.Errorf("write busy %v, want 3s", got)
	}
}

func TestRWLockReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s := New()
	l := s.NewRWLock("l")
	l.ReleaseWrite()
}
