// Package sim implements a deterministic discrete-event simulation kernel
// with goroutine-backed processes and a virtual clock.
//
// Every timed interaction in the reproduction (disk reads, network
// transfers, CPU work, lock waits) is expressed as a process blocking on
// the simulator, so reported latencies and runtimes are virtual-clock
// readings that are independent of host speed and scheduling.
//
// The kernel is conservative: exactly one process runs at a time, and the
// clock only advances when every process is blocked. This makes runs
// deterministic for a fixed spawn order and seed.
package sim

import (
	"container/heap"
	"fmt"
	"sync"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds reports the duration as a floating-point number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	}
	return fmt.Sprintf("%dns", int64(d))
}

// Seconds converts a floating-point number of seconds to a Duration.
func Seconds(s float64) Duration { return Duration(s * float64(Second)) }

// event is a scheduled wake-up for a blocked process.
type event struct {
	at  Time
	seq int64 // tie-breaker for determinism
	ch  chan struct{}
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Sim is a discrete-event simulator. The zero value is not usable; call New.
type Sim struct {
	mu      sync.Mutex
	cond    *sync.Cond
	now     Time
	events  eventHeap
	active  int   // processes currently runnable (not blocked)
	blocked int   // processes blocked on resources (no scheduled event)
	seq     int64 // monotonically increasing event sequence
	done    bool
}

// New returns a simulator with the clock at zero.
func New() *Sim {
	s := &Sim{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Now returns the current virtual time.
func (s *Sim) Now() Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Proc is a simulated process. Each Proc is backed by one goroutine; Proc
// methods must only be called from that goroutine.
type Proc struct {
	s    *Sim
	name string
}

// Sim returns the simulator this process belongs to.
func (p *Proc) Sim() *Sim { return p.s }

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.s.Now() }

// Spawn starts a new process running fn. It may be called before Run or
// from within a running process. Processes are dispatched in spawn order
// at the current virtual time, and exactly one process runs at a time, so
// simulations are deterministic.
func (s *Sim) Spawn(name string, fn func(p *Proc)) {
	s.mu.Lock()
	ch := s.scheduleLocked(s.now)
	s.mu.Unlock()
	go func() {
		<-ch
		p := &Proc{s: s, name: name}
		defer s.exit()
		fn(p)
	}()
}

// scheduleLocked registers a wake-up event at time t and returns the
// channel that will be closed when the scheduler dispatches it.
// Must be called with s.mu held.
func (s *Sim) scheduleLocked(t Time) chan struct{} {
	ch := make(chan struct{})
	s.scheduleChLocked(t, ch)
	return ch
}

// scheduleChLocked registers a wake-up event at time t that closes ch
// when dispatched. Must be called with s.mu held.
func (s *Sim) scheduleChLocked(t Time, ch chan struct{}) {
	heap.Push(&s.events, &event{at: t, seq: s.seq, ch: ch})
	s.seq++
}

// exit marks the calling process finished.
func (s *Sim) exit() {
	s.mu.Lock()
	s.active--
	s.cond.Signal()
	s.mu.Unlock()
}

// Sleep blocks the process for d of virtual time. Negative durations are
// treated as zero (the process yields to the scheduler).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	s := p.s
	s.mu.Lock()
	ch := s.scheduleLocked(s.now + Time(d))
	s.active--
	s.cond.Signal()
	s.mu.Unlock()
	<-ch
}

// park blocks the calling process with no scheduled wake-up; wake must be
// paired with it from another (running) process via unpark.
func (s *Sim) park() chan struct{} {
	ch := make(chan struct{})
	s.active--
	s.blocked++
	s.cond.Signal()
	return ch
}

// unpark schedules a parked process to resume at the current virtual
// time, after the currently running process next blocks. Wake order is
// deterministic (event sequence order). Must be called with s.mu held.
func (s *Sim) unpark(ch chan struct{}) {
	s.blocked--
	s.scheduleChLocked(s.now, ch)
}

// Run drives the simulation until no events remain and all processes have
// finished or are permanently blocked. It returns the final virtual time.
// Run panics if the simulation deadlocks (processes blocked on resources
// with no pending events), since in this codebase that is always a bug.
func (s *Sim) Run() Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for s.active > 0 {
			s.cond.Wait()
		}
		if s.events.Len() == 0 {
			if s.blocked > 0 {
				panic(fmt.Sprintf("sim: deadlock at t=%v: %d processes blocked with no pending events", s.now, s.blocked))
			}
			s.done = true
			return s.now
		}
		ev := heap.Pop(&s.events).(*event)
		if ev.at > s.now {
			s.now = ev.at
		}
		s.active++
		close(ev.ch)
	}
}

// RunUntil drives the simulation, but stops advancing the clock past t.
// Processes with wake-ups after t remain scheduled; the clock is left at
// the later of its current value and the last dispatched event (capped by
// pending work), and t is returned as a convenience.
func (s *Sim) RunUntil(t Time) Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for s.active > 0 {
			s.cond.Wait()
		}
		if s.events.Len() == 0 || s.events[0].at > t {
			if s.now < t && s.events.Len() > 0 {
				s.now = t
			}
			return s.now
		}
		ev := heap.Pop(&s.events).(*event)
		if ev.at > s.now {
			s.now = ev.at
		}
		s.active++
		close(ev.ch)
	}
}
