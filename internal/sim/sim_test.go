package sim

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("new sim clock = %d, want 0", s.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	s := New()
	var woke Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Second)
		woke = p.Now()
	})
	end := s.Run()
	if woke != Time(5*Second) {
		t.Errorf("woke at %d, want %d", woke, 5*Second)
	}
	if end != Time(5*Second) {
		t.Errorf("end time %d, want %d", end, 5*Second)
	}
}

func TestParallelSleepsOverlap(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Spawn("p", func(p *Proc) { p.Sleep(3 * Second) })
	}
	if end := s.Run(); end != Time(3*Second) {
		t.Errorf("10 parallel 3s sleeps ended at %v, want 3s", end)
	}
}

func TestSequentialSleepsAccumulate(t *testing.T) {
	s := New()
	s.Spawn("p", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(Second)
		}
	})
	if end := s.Run(); end != Time(4*Second) {
		t.Errorf("end %v, want 4s", end)
	}
}

func TestZeroAndNegativeSleep(t *testing.T) {
	s := New()
	var ok bool
	s.Spawn("p", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-5)
		ok = true
	})
	if end := s.Run(); end != 0 {
		t.Errorf("end %v, want 0", end)
	}
	if !ok {
		t.Error("process did not complete")
	}
}

func TestResourceSerializes(t *testing.T) {
	s := New()
	r := s.NewMutex("disk")
	ends := make([]Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn("u", func(p *Proc) {
			r.Use(p, Second)
			ends[i] = p.Now()
		})
	}
	if end := s.Run(); end != Time(3*Second) {
		t.Fatalf("3 serialized 1s uses ended at %v, want 3s", end)
	}
	// FIFO: spawn order is service order.
	for i, e := range ends {
		want := Time(Duration(i+1) * Second)
		if e != want {
			t.Errorf("user %d finished at %v, want %v", i, e, want)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	s := New()
	r := s.NewResource("cpu", 2)
	for i := 0; i < 4; i++ {
		s.Spawn("u", func(p *Proc) { r.Use(p, Second) })
	}
	if end := s.Run(); end != Time(2*Second) {
		t.Errorf("4 jobs on capacity-2 resource ended at %v, want 2s", end)
	}
}

func TestResourceBusyTime(t *testing.T) {
	s := New()
	r := s.NewMutex("disk")
	s.Spawn("a", func(p *Proc) { r.Use(p, Second) })
	s.Spawn("b", func(p *Proc) {
		p.Sleep(10 * Second)
		r.Use(p, 2*Second)
	})
	s.Run()
	if got := r.BusyTime(); got != 3*Second {
		t.Errorf("busy time %v, want 3s", got)
	}
}

func TestTryAcquire(t *testing.T) {
	s := New()
	r := s.NewMutex("m")
	var first, second bool
	s.Spawn("p", func(p *Proc) {
		first = r.TryAcquire()
		second = r.TryAcquire()
		r.Release()
	})
	s.Run()
	if !first || second {
		t.Errorf("TryAcquire = %v,%v; want true,false", first, second)
	}
}

func TestWaitGroupJoins(t *testing.T) {
	s := New()
	wg := s.NewWaitGroup()
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		d := Duration(i) * Second
		s.Spawn("w", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	var joined Time
	s.Spawn("joiner", func(p *Proc) {
		wg.Wait(p)
		joined = p.Now()
	})
	s.Run()
	if joined != Time(3*Second) {
		t.Errorf("joined at %v, want 3s", joined)
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	s := New()
	wg := s.NewWaitGroup()
	var ran bool
	s.Spawn("j", func(p *Proc) {
		wg.Wait(p)
		ran = true
	})
	s.Run()
	if !ran {
		t.Error("Wait on zero counter should not block")
	}
}

func TestSpawnFromProcess(t *testing.T) {
	s := New()
	var childEnd Time
	s.Spawn("parent", func(p *Proc) {
		p.Sleep(Second)
		s.Spawn("child", func(c *Proc) {
			c.Sleep(Second)
			childEnd = c.Now()
		})
	})
	s.Run()
	if childEnd != Time(2*Second) {
		t.Errorf("child ended at %v, want 2s", childEnd)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := New()
		r := s.NewResource("r", 2)
		out := make([]Time, 8)
		for i := 0; i < 8; i++ {
			i := i
			s.Spawn("p", func(p *Proc) {
				p.Sleep(Duration(i%3) * Millisecond)
				r.Use(p, Duration(i+1)*Millisecond)
				out[i] = p.Now()
			})
		}
		s.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected deadlock panic")
		}
	}()
	s := New()
	r := s.NewMutex("m")
	s.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		// Never released; second acquirer blocks forever.
		r.Acquire(p)
	})
	s.Run()
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000µs"},
		{3 * Millisecond, "3.000ms"},
		{90 * Second, "90.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	f := func(ms uint16) bool {
		d := Seconds(float64(ms) / 1000)
		return d >= Duration(ms)*Millisecond-Microsecond && d <= Duration(ms)*Millisecond+Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourceQueueLen(t *testing.T) {
	s := New()
	r := s.NewMutex("m")
	var q int
	s.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(Second)
		q = r.QueueLen()
		r.Release()
	})
	s.Spawn("waiter", func(p *Proc) {
		p.Sleep(Millisecond)
		r.Acquire(p)
		r.Release()
	})
	s.Run()
	if q != 1 {
		t.Errorf("queue length seen by holder = %d, want 1", q)
	}
}
