// Package sqleng implements the SQL-Server-like single-node record
// engine used on the YCSB side of the paper (each SQL-CS shard runs one
// instance). It provides stored-procedure-style point operations —
// ReadRecord, UpdateRecord, InsertRecord, ScanRecords — over a heap file
// with a B+tree primary-key index, an LRU buffer pool with 8 KB pages,
// row locks honouring READ COMMITTED or READ UNCOMMITTED, a group-commit
// WAL, and periodic checkpointing of dirty pages.
//
// The mechanisms the paper's YCSB analysis depends on are all here:
// 8 KB buffer-pool-miss reads (vs MongoDB's 32 KB), checkpoint-induced
// throughput dips, and read/write lock blocking under update-heavy load.
package sqleng

import (
	"fmt"
	"hash/fnv"

	"elephants/internal/cluster"
	"elephants/internal/sim"
	"elephants/internal/storage"
	"elephants/internal/wal"
)

// IsolationLevel selects the engine's read locking behaviour.
type IsolationLevel int

const (
	// ReadCommitted takes shared row locks for reads (SQL Server default).
	ReadCommitted IsolationLevel = iota
	// ReadUncommitted reads without row locks (the paper's §3.4.3 ablation).
	ReadUncommitted
)

func (l IsolationLevel) String() string {
	if l == ReadUncommitted {
		return "READ UNCOMMITTED"
	}
	return "READ COMMITTED"
}

// Config parameterizes an engine instance.
type Config struct {
	// BufferPoolPages caps resident pages. The paper configures SQL
	// Server with a 24 GB buffer pool against ~80 GB of data per node;
	// scale this with the dataset to preserve the 2.5× ratio.
	BufferPoolPages int
	// Isolation selects read locking. Default ReadCommitted.
	Isolation IsolationLevel
	// CPUPerOp is the core time charged per point operation (parsing,
	// plan lookup, buffer search). Stored-procedure execution as in the
	// paper's modified YCSB driver.
	CPUPerOp sim.Duration
	// InsertTxnCPU is the extra per-insert transaction cost: the
	// paper's load issued each insert as a separate transaction with
	// no bulk path, which is why SQL-CS loaded slowest (146 min vs
	// Mongo-CS's 45).
	InsertTxnCPU sim.Duration
	// CheckpointEvery is the checkpoint interval (0 disables).
	CheckpointEvery sim.Duration
	// LogDisk, if nil, uses the node's last disk as the dedicated log
	// device (the paper stores SQL Server's log on a separate disk).
	LogDisk *cluster.Disk
}

// DefaultCPUPerOp approximates SQL Server stored-proc execution cost per
// YCSB operation on one (hyper-threaded) core.
const DefaultCPUPerOp = 400 * sim.Microsecond

// DefaultInsertTxnCPU is the extra cost of running an insert as its own
// ad-hoc transaction (statement parse, txn begin/commit bookkeeping).
const DefaultInsertTxnCPU = 1200 * sim.Microsecond

// Engine is one SQL-Server-like instance bound to a simulated node.
type Engine struct {
	s    *sim.Sim
	node *cluster.Node
	cfg  Config

	bp    *storage.BufferPool
	heap  *storage.HeapFile
	index *storage.BTree
	locks map[string]*sim.RWLock
	log   *wal.Log
	ckpt  *wal.Checkpointer

	nextPage storage.PageID

	reads, updates, inserts, scans int64
}

// New returns an engine on node. Call StartBackground to launch the
// checkpointer once the simulation has processes running.
func New(s *sim.Sim, node *cluster.Node, cfg Config) *Engine {
	if cfg.BufferPoolPages <= 0 {
		cfg.BufferPoolPages = int(node.Memory() * 3 / 4 / storage.PageSize)
	}
	if cfg.CPUPerOp <= 0 {
		cfg.CPUPerOp = DefaultCPUPerOp
	}
	if cfg.InsertTxnCPU <= 0 {
		cfg.InsertTxnCPU = DefaultInsertTxnCPU
	}
	e := &Engine{
		s:     s,
		node:  node,
		cfg:   cfg,
		bp:    storage.NewBufferPool(cfg.BufferPoolPages),
		locks: make(map[string]*sim.RWLock),
	}
	e.heap = storage.NewHeapFile(e.allocPage)
	e.index = storage.NewBTree(storage.DefaultBTreeOrder, e.allocPage)
	logDisk := cfg.LogDisk
	if logDisk == nil {
		logDisk = node.Disks[len(node.Disks)-1]
	}
	e.log = wal.NewLog(s, logDisk, 0)
	if cfg.CheckpointEvery > 0 {
		e.ckpt = wal.NewCheckpointer(s, cfg.CheckpointEvery, e.checkpoint)
	}
	return e
}

func (e *Engine) allocPage() storage.PageID {
	e.nextPage++
	return e.nextPage
}

// Node returns the simulated node this engine runs on.
func (e *Engine) Node() *cluster.Node { return e.node }

// BufferPool exposes the residency model (for tests and reporting).
func (e *Engine) BufferPool() *storage.BufferPool { return e.bp }

// StartBackground launches the checkpointer, if configured.
func (e *Engine) StartBackground() {
	if e.ckpt != nil {
		e.ckpt.Start()
	}
}

// StopBackground stops the checkpointer, if configured.
func (e *Engine) StopBackground() {
	if e.ckpt != nil {
		e.ckpt.Stop()
	}
}

// rowLock returns the lazily created lock for key.
func (e *Engine) rowLock(key string) *sim.RWLock {
	l, ok := e.locks[key]
	if !ok {
		l = e.s.NewRWLock("row:" + key)
		e.locks[key] = l
	}
	return l
}

// touchPage charges one page access: buffer-pool hit is free, a miss
// reads 8 KB from the disk the page stripes to, and evicting a dirty
// page writes it back first.
func (e *Engine) touchPage(p *sim.Proc, id storage.PageID, dirty bool) {
	hit, evicted, evictedDirty := e.bp.Touch(id)
	if !hit {
		if evictedDirty {
			e.node.Disk(pageHash(evicted)).WriteRand(p, storage.PageSize)
		}
		e.node.Disk(pageHash(id)).ReadRand(p, storage.PageSize)
	}
	if dirty {
		e.bp.MarkDirty(id)
	}
}

func pageHash(id storage.PageID) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(id) >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

// ReadRecord returns the record stored under key, or an error if absent.
func (e *Engine) ReadRecord(p *sim.Proc, key string) ([]byte, error) {
	e.reads++
	e.node.Compute(p, e.cfg.CPUPerOp)
	if e.cfg.Isolation == ReadCommitted {
		l := e.rowLock(key)
		l.AcquireRead(p)
		defer l.ReleaseRead()
	}
	rid, ok := e.lookup(p, key, false)
	if !ok {
		return nil, fmt.Errorf("sqleng: key %q not found", key)
	}
	e.touchPage(p, rid.Page, false)
	return e.heap.Read(rid)
}

// lookup walks the index for key, charging the page path.
func (e *Engine) lookup(p *sim.Proc, key string, dirtyLeaf bool) (storage.RID, bool) {
	val, ok, path := e.index.Get(key)
	for i, pg := range path {
		e.touchPage(p, pg, dirtyLeaf && i == len(path)-1)
	}
	if !ok {
		return storage.RID{}, false
	}
	return decodeRID(val), true
}

// UpdateRecord overwrites the record stored under key and commits via
// the WAL.
func (e *Engine) UpdateRecord(p *sim.Proc, key string, rec []byte) error {
	e.updates++
	e.node.Compute(p, e.cfg.CPUPerOp)
	l := e.rowLock(key)
	l.AcquireWrite(p)
	defer l.ReleaseWrite()
	rid, ok := e.lookup(p, key, false)
	if !ok {
		return fmt.Errorf("sqleng: key %q not found", key)
	}
	e.touchPage(p, rid.Page, true)
	if err := e.heap.Update(rid, rec); err != nil {
		return err
	}
	e.log.Append(p, int64(len(rec))+64)
	return nil
}

// InsertRecord adds a new record under key and commits via the WAL.
func (e *Engine) InsertRecord(p *sim.Proc, key string, rec []byte) error {
	e.inserts++
	e.node.Compute(p, e.cfg.CPUPerOp+e.cfg.InsertTxnCPU)
	l := e.rowLock(key)
	l.AcquireWrite(p)
	defer l.ReleaseWrite()
	rid := e.heap.Insert(rec)
	e.touchPage(p, rid.Page, true)
	_, path := e.index.Insert(key, encodeRID(rid))
	for _, pg := range path {
		e.touchPage(p, pg, true)
	}
	e.log.Append(p, int64(len(rec))+64)
	return nil
}

// LoadRecord inserts without locking, logging, or timing; used for bulk
// load setup outside the measured region. The caller charges any load
// cost it wants to model.
func (e *Engine) LoadRecord(key string, rec []byte) {
	rid := e.heap.Insert(rec)
	e.index.Insert(key, encodeRID(rid))
}

// ScanRecords returns up to limit records with keys >= start, in key
// order, charging index and heap page I/O. Under hash sharding every
// shard must be scanned by the client; that fan-out lives in the shard
// package.
func (e *Engine) ScanRecords(p *sim.Proc, start string, limit int) ([][]byte, error) {
	e.scans++
	e.node.Compute(p, e.cfg.CPUPerOp)
	entries, path := e.index.Scan(start, limit)
	for _, pg := range path {
		e.touchPage(p, pg, false)
	}
	out := make([][]byte, 0, len(entries))
	var lastPage storage.PageID = -1
	for _, ent := range entries {
		rid := decodeRID(ent.Val)
		if rid.Page != lastPage {
			e.touchPage(p, rid.Page, false)
			lastPage = rid.Page
		}
		rec, err := e.heap.Read(rid)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// checkpoint flushes all dirty pages, charging chunked writes spread
// round-robin across the node's data disks so checkpoints contend with
// foreground reads (the Workload B dip).
func (e *Engine) checkpoint(p *sim.Proc) int {
	n := e.bp.FlushAll()
	if n == 0 {
		return 0
	}
	disks := e.node.Disks
	perDisk := (n + len(disks) - 1) / len(disks)
	const pagesPerIO = 64
	wg := e.s.NewWaitGroup()
	wg.Add(len(disks))
	for _, d := range disks {
		d := d
		e.s.Spawn("ckpt-writer", func(wp *sim.Proc) {
			defer wg.Done()
			remaining := perDisk
			for remaining > 0 {
				chunk := pagesPerIO
				if remaining < chunk {
					chunk = remaining
				}
				d.WriteRand(wp, int64(chunk)*storage.PageSize)
				remaining -= chunk
			}
		})
	}
	wg.Wait(p)
	return n
}

// Stats reports cumulative operation counts.
func (e *Engine) Stats() (reads, updates, inserts, scans int64) {
	return e.reads, e.updates, e.inserts, e.scans
}

// Len reports the number of records stored.
func (e *Engine) Len() int { return e.heap.Len() }

func encodeRID(r storage.RID) int64 {
	return int64(r.Page)<<16 | int64(r.Slot&0xffff)
}

func decodeRID(v int64) storage.RID {
	return storage.RID{Page: storage.PageID(v >> 16), Slot: int(v & 0xffff)}
}
