package sqleng

import (
	"fmt"
	"testing"
	"testing/quick"

	"elephants/internal/cluster"
	"elephants/internal/sim"
	"elephants/internal/storage"
)

func newTestEngine(t *testing.T, cfg Config) (*sim.Sim, *Engine) {
	t.Helper()
	s := sim.New()
	cl := cluster.New(s, cluster.Config{Nodes: 1})
	return s, New(s, cl.Nodes[0], cfg)
}

func TestInsertRead(t *testing.T) {
	s, e := newTestEngine(t, Config{})
	var got []byte
	var err error
	s.Spawn("c", func(p *sim.Proc) {
		if err = e.InsertRecord(p, "user1", []byte("v1")); err != nil {
			return
		}
		got, err = e.ReadRecord(p, "user1")
	})
	s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1" {
		t.Errorf("read %q, want v1", got)
	}
}

func TestReadMissing(t *testing.T) {
	s, e := newTestEngine(t, Config{})
	var err error
	s.Spawn("c", func(p *sim.Proc) {
		_, err = e.ReadRecord(p, "ghost")
	})
	s.Run()
	if err == nil {
		t.Error("read of missing key should fail")
	}
}

func TestUpdate(t *testing.T) {
	s, e := newTestEngine(t, Config{})
	var got []byte
	s.Spawn("c", func(p *sim.Proc) {
		e.InsertRecord(p, "k", []byte("old"))
		e.UpdateRecord(p, "k", []byte("new"))
		got, _ = e.ReadRecord(p, "k")
	})
	s.Run()
	if string(got) != "new" {
		t.Errorf("after update: %q", got)
	}
}

func TestUpdateMissing(t *testing.T) {
	s, e := newTestEngine(t, Config{})
	var err error
	s.Spawn("c", func(p *sim.Proc) {
		err = e.UpdateRecord(p, "ghost", []byte("x"))
	})
	s.Run()
	if err == nil {
		t.Error("update of missing key should fail")
	}
}

func TestScanOrdered(t *testing.T) {
	s, e := newTestEngine(t, Config{})
	for i := 0; i < 20; i++ {
		e.LoadRecord(fmt.Sprintf("user%03d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	var recs [][]byte
	s.Spawn("c", func(p *sim.Proc) {
		recs, _ = e.ScanRecords(p, "user005", 5)
	})
	s.Run()
	if len(recs) != 5 {
		t.Fatalf("scan returned %d, want 5", len(recs))
	}
	if string(recs[0]) != "v5" {
		t.Errorf("first scan record = %q, want v5", recs[0])
	}
}

func TestBufferPoolMissChargesDisk(t *testing.T) {
	// Tiny buffer pool: every access misses, so reads pay random I/O.
	s, e := newTestEngine(t, Config{BufferPoolPages: 2})
	for i := 0; i < 100; i++ {
		e.LoadRecord(fmt.Sprintf("user%03d", i), make([]byte, 1024))
	}
	var elapsed sim.Duration
	s.Spawn("c", func(p *sim.Proc) {
		start := p.Now()
		e.ReadRecord(p, "user050")
		elapsed = sim.Duration(p.Now() - start)
	})
	s.Run()
	if elapsed < 6*sim.Millisecond {
		t.Errorf("cold read took %v, want >= one seek (6ms)", elapsed)
	}
}

func TestWarmReadIsFast(t *testing.T) {
	s, e := newTestEngine(t, Config{})
	e.LoadRecord("k", []byte("v"))
	var first, second sim.Duration
	s.Spawn("c", func(p *sim.Proc) {
		t0 := p.Now()
		e.ReadRecord(p, "k")
		first = sim.Duration(p.Now() - t0)
		t1 := p.Now()
		e.ReadRecord(p, "k")
		second = sim.Duration(p.Now() - t1)
	})
	s.Run()
	if second >= first {
		t.Errorf("warm read (%v) should be faster than cold (%v)", second, first)
	}
	if second > sim.Millisecond {
		t.Errorf("warm read took %v, want sub-millisecond (CPU only)", second)
	}
}

func TestReadCommittedBlocksOnWriter(t *testing.T) {
	s, e := newTestEngine(t, Config{Isolation: ReadCommitted})
	e.LoadRecord("k", []byte("v"))
	// Warm the pages so only lock waiting matters.
	var readLatency sim.Duration
	s.Spawn("warm", func(p *sim.Proc) { e.ReadRecord(p, "k") })
	s.Spawn("writer", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		l := e.rowLock("k")
		l.AcquireWrite(p)
		p.Sleep(100 * sim.Millisecond)
		l.ReleaseWrite()
	})
	s.Spawn("reader", func(p *sim.Proc) {
		p.Sleep(sim.Second + sim.Millisecond)
		t0 := p.Now()
		e.ReadRecord(p, "k")
		readLatency = sim.Duration(p.Now() - t0)
	})
	s.Run()
	if readLatency < 90*sim.Millisecond {
		t.Errorf("read-committed read latency %v, want >= ~99ms (blocked by writer)", readLatency)
	}
}

func TestReadUncommittedDoesNotBlock(t *testing.T) {
	s, e := newTestEngine(t, Config{Isolation: ReadUncommitted})
	e.LoadRecord("k", []byte("v"))
	var readLatency sim.Duration
	s.Spawn("warm", func(p *sim.Proc) { e.ReadRecord(p, "k") })
	s.Spawn("writer", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		l := e.rowLock("k")
		l.AcquireWrite(p)
		p.Sleep(100 * sim.Millisecond)
		l.ReleaseWrite()
	})
	s.Spawn("reader", func(p *sim.Proc) {
		p.Sleep(sim.Second + sim.Millisecond)
		t0 := p.Now()
		e.ReadRecord(p, "k")
		readLatency = sim.Duration(p.Now() - t0)
	})
	s.Run()
	if readLatency > 10*sim.Millisecond {
		t.Errorf("read-uncommitted latency %v, want small (no lock wait)", readLatency)
	}
}

func TestCheckpointFlushesDirtyPages(t *testing.T) {
	s, e := newTestEngine(t, Config{CheckpointEvery: sim.Second})
	e.LoadRecord("k", make([]byte, 1024))
	e.StartBackground()
	s.Spawn("c", func(p *sim.Proc) {
		e.UpdateRecord(p, "k", make([]byte, 1024))
		p.Sleep(1500 * sim.Millisecond)
		e.StopBackground()
	})
	s.Run()
	if e.bp.DirtyCount() != 0 {
		t.Errorf("dirty pages after checkpoint = %d, want 0", e.bp.DirtyCount())
	}
	rounds, pages := e.ckpt.Stats()
	if rounds < 1 || pages < 1 {
		t.Errorf("checkpoint rounds=%d pages=%d, want >=1 each", rounds, pages)
	}
}

func TestStatsCount(t *testing.T) {
	s, e := newTestEngine(t, Config{})
	s.Spawn("c", func(p *sim.Proc) {
		e.InsertRecord(p, "a", []byte("1"))
		e.ReadRecord(p, "a")
		e.UpdateRecord(p, "a", []byte("2"))
		e.ScanRecords(p, "a", 1)
	})
	s.Run()
	r, u, i, sc := e.Stats()
	if r != 1 || u != 1 || i != 1 || sc != 1 {
		t.Errorf("stats = %d,%d,%d,%d; want 1 each", r, u, i, sc)
	}
}

func TestRIDRoundTrip(t *testing.T) {
	f := func(page uint32, slot uint8) bool {
		rid := storage.RID{Page: storage.PageID(page), Slot: int(slot)}
		return decodeRID(encodeRID(rid)) == rid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLoadRecordBulk(t *testing.T) {
	_, e := newTestEngine(t, Config{})
	for i := 0; i < 1000; i++ {
		e.LoadRecord(fmt.Sprintf("user%06d", i), make([]byte, 1024))
	}
	if e.Len() != 1000 {
		t.Errorf("len = %d, want 1000", e.Len())
	}
}
