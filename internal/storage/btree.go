package storage

import "sort"

// BTree is an in-memory B+tree mapping string keys to int64 values (in
// the engines, RID-encoded record locations). Interior and leaf nodes are
// assigned PageIDs so index traversals can be charged against the buffer
// pool like any other page access.
type BTree struct {
	order  int // max keys per node
	root   *btreeNode
	height int
	size   int
	nextID PageID
	alloc  func() PageID // optional external page allocator
}

type btreeNode struct {
	id       PageID
	leaf     bool
	keys     []string
	vals     []int64      // leaf only, parallel to keys
	children []*btreeNode // interior only, len(keys)+1
	next     *btreeNode   // leaf chain for range scans
}

// DefaultBTreeOrder is the number of keys per node with 24-byte keys and
// 8 KB pages, approximating SQL Server / MongoDB index fanout.
const DefaultBTreeOrder = 256

// NewBTree returns an empty tree. If alloc is non-nil it is used to
// assign PageIDs to nodes (so index pages share the engine's page space);
// otherwise the tree numbers pages from 1.
func NewBTree(order int, alloc func() PageID) *BTree {
	if order < 3 {
		order = DefaultBTreeOrder
	}
	t := &BTree{order: order, alloc: alloc}
	t.root = t.newNode(true)
	t.height = 1
	return t
}

func (t *BTree) newNode(leaf bool) *btreeNode {
	var id PageID
	if t.alloc != nil {
		id = t.alloc()
	} else {
		t.nextID++
		id = t.nextID
	}
	return &btreeNode{id: id, leaf: leaf}
}

// Len returns the number of keys stored.
func (t *BTree) Len() int { return t.size }

// Height returns the tree height (1 for a lone leaf).
func (t *BTree) Height() int { return t.height }

// Get looks up key, returning its value, whether it was found, and the
// page path touched from root to leaf (for buffer-pool charging).
func (t *BTree) Get(key string) (val int64, ok bool, path []PageID) {
	n := t.root
	for {
		path = append(path, n.id)
		if n.leaf {
			i := sort.SearchStrings(n.keys, key)
			if i < len(n.keys) && n.keys[i] == key {
				return n.vals[i], true, path
			}
			return 0, false, path
		}
		n = n.children[childIndex(n.keys, key)]
	}
}

// childIndex returns which child to descend into for key in an interior
// node whose separator keys are keys.
func childIndex(keys []string, key string) int {
	return sort.Search(len(keys), func(i int) bool { return key < keys[i] })
}

// Insert adds or replaces key, returning whether the key was new and the
// root-to-leaf page path touched.
func (t *BTree) Insert(key string, val int64) (added bool, path []PageID) {
	added, path, split := t.insert(t.root, key, val)
	if split != nil {
		newRoot := t.newNode(false)
		newRoot.keys = []string{split.key}
		newRoot.children = []*btreeNode{t.root, split.right}
		t.root = newRoot
		t.height++
		path = append([]PageID{newRoot.id}, path...)
	}
	if added {
		t.size++
	}
	return added, path
}

type splitResult struct {
	key   string
	right *btreeNode
}

func (t *BTree) insert(n *btreeNode, key string, val int64) (added bool, path []PageID, split *splitResult) {
	path = append(path, n.id)
	if n.leaf {
		i := sort.SearchStrings(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = val
			return false, path, nil
		}
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		if len(n.keys) > t.order {
			split = t.splitLeaf(n)
		}
		return true, path, split
	}
	ci := childIndex(n.keys, key)
	added, childPath, childSplit := t.insert(n.children[ci], key, val)
	path = append(path, childPath...)
	if childSplit != nil {
		i := sort.SearchStrings(n.keys, childSplit.key)
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = childSplit.key
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = childSplit.right
		if len(n.keys) > t.order {
			split = t.splitInterior(n)
		}
	}
	return added, path, split
}

func (t *BTree) splitLeaf(n *btreeNode) *splitResult {
	mid := len(n.keys) / 2
	right := t.newNode(true)
	right.keys = append(right.keys, n.keys[mid:]...)
	right.vals = append(right.vals, n.vals[mid:]...)
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	right.next = n.next
	n.next = right
	return &splitResult{key: right.keys[0], right: right}
}

func (t *BTree) splitInterior(n *btreeNode) *splitResult {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := t.newNode(false)
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return &splitResult{key: sep, right: right}
}

// Delete removes key, reporting whether it was present and the page path
// touched. Leaves may underflow; this tree does not rebalance on delete
// (as with many production trees, deleted space is reclaimed lazily),
// which preserves ordering invariants.
func (t *BTree) Delete(key string) (ok bool, path []PageID) {
	n := t.root
	for {
		path = append(path, n.id)
		if n.leaf {
			i := sort.SearchStrings(n.keys, key)
			if i < len(n.keys) && n.keys[i] == key {
				n.keys = append(n.keys[:i], n.keys[i+1:]...)
				n.vals = append(n.vals[:i], n.vals[i+1:]...)
				t.size--
				return true, path
			}
			return false, path
		}
		n = n.children[childIndex(n.keys, key)]
	}
}

// ScanEntry is one key/value pair yielded by a range scan.
type ScanEntry struct {
	Key string
	Val int64
}

// Scan returns up to limit entries with keys >= start in ascending order,
// plus the page path touched (root-to-leaf descent, then the leaf chain).
func (t *BTree) Scan(start string, limit int) (entries []ScanEntry, path []PageID) {
	n := t.root
	for !n.leaf {
		path = append(path, n.id)
		n = n.children[childIndex(n.keys, start)]
	}
	i := sort.SearchStrings(n.keys, start)
	for n != nil && len(entries) < limit {
		path = append(path, n.id)
		for ; i < len(n.keys) && len(entries) < limit; i++ {
			entries = append(entries, ScanEntry{Key: n.keys[i], Val: n.vals[i]})
		}
		n = n.next
		i = 0
	}
	return entries, path
}

// Ascend calls fn for every key/value pair in order until fn returns
// false. It does not report page paths; use it for verification only.
func (t *BTree) Ascend(fn func(key string, val int64) bool) {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil {
		for i := range n.keys {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}
