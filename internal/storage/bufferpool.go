package storage

// BufferPool models page residency with LRU replacement. It does not hold
// page bytes (the functional layer does); it answers "was this page in
// memory?" so the engine can charge simulated I/O for misses, and tracks
// dirty pages so checkpoints can charge write I/O. The eviction core is
// the shared ByteLRU (lru.go), instantiated with unit weights so the
// capacity counts pages.
type BufferPool struct {
	lru     *ByteLRU[PageID, struct{}]
	dirty   map[PageID]bool
	victim  PageID // last eviction observed by the onEvict hook
	evicted bool
}

// NewBufferPool returns a pool that can hold capacity pages (>= 1).
func NewBufferPool(capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	b := &BufferPool{dirty: make(map[PageID]bool)}
	b.lru = NewByteLRU[PageID, struct{}](int64(capacity), func(id PageID, _ struct{}) {
		b.victim, b.evicted = id, true
	})
	return b
}

// Capacity returns the pool capacity in pages.
func (b *BufferPool) Capacity() int { return int(b.lru.Capacity()) }

// Len returns the number of resident pages.
func (b *BufferPool) Len() int { return b.lru.Len() }

// Touch records an access to page id. It reports whether the page was
// resident (hit) and, if bringing it in evicted a dirty page, the evicted
// page's ID (evictedDirty=false means nothing dirty was written back).
func (b *BufferPool) Touch(id PageID) (hit bool, evicted PageID, evictedDirty bool) {
	if _, ok := b.lru.Get(id); ok {
		return true, 0, false
	}
	b.evicted = false
	b.lru.Put(id, struct{}{}, 1)
	if b.evicted {
		evicted = b.victim
		evictedDirty = b.dirty[evicted]
		delete(b.dirty, evicted)
	}
	return false, evicted, evictedDirty
}

// Contains reports whether the page is resident without touching it.
func (b *BufferPool) Contains(id PageID) bool { return b.lru.Contains(id) }

// MarkDirty marks a resident page dirty. Marking a non-resident page is a
// no-op (the write already went to simulated disk).
func (b *BufferPool) MarkDirty(id PageID) {
	if b.lru.Contains(id) {
		b.dirty[id] = true
	}
}

// DirtyCount returns the number of dirty resident pages.
func (b *BufferPool) DirtyCount() int { return len(b.dirty) }

// FlushAll marks all dirty pages clean and returns how many were flushed;
// the caller charges the corresponding write I/O (checkpoint).
func (b *BufferPool) FlushAll() int {
	n := len(b.dirty)
	b.dirty = make(map[PageID]bool)
	return n
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (b *BufferPool) HitRate() float64 {
	hits, misses := b.lru.Stats()
	total := hits + misses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Stats returns cumulative hit and miss counts.
func (b *BufferPool) Stats() (hits, misses int64) { return b.lru.Stats() }
