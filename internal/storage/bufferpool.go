package storage

import "container/list"

// BufferPool models page residency with LRU replacement. It does not hold
// page bytes (the functional layer does); it answers "was this page in
// memory?" so the engine can charge simulated I/O for misses, and tracks
// dirty pages so checkpoints can charge write I/O.
type BufferPool struct {
	capacity int
	lru      *list.List // front = most recently used; values are PageID
	pages    map[PageID]*list.Element
	dirty    map[PageID]bool

	hits   int64
	misses int64
}

// NewBufferPool returns a pool that can hold capacity pages (>= 1).
func NewBufferPool(capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		capacity: capacity,
		lru:      list.New(),
		pages:    make(map[PageID]*list.Element),
		dirty:    make(map[PageID]bool),
	}
}

// Capacity returns the pool capacity in pages.
func (b *BufferPool) Capacity() int { return b.capacity }

// Len returns the number of resident pages.
func (b *BufferPool) Len() int { return b.lru.Len() }

// Touch records an access to page id. It reports whether the page was
// resident (hit) and, if bringing it in evicted a dirty page, the evicted
// page's ID (evictedDirty=false means nothing dirty was written back).
func (b *BufferPool) Touch(id PageID) (hit bool, evicted PageID, evictedDirty bool) {
	if el, ok := b.pages[id]; ok {
		b.lru.MoveToFront(el)
		b.hits++
		return true, 0, false
	}
	b.misses++
	if b.lru.Len() >= b.capacity {
		back := b.lru.Back()
		victim := back.Value.(PageID)
		b.lru.Remove(back)
		delete(b.pages, victim)
		evictedDirty = b.dirty[victim]
		delete(b.dirty, victim)
		evicted = victim
	}
	b.pages[id] = b.lru.PushFront(id)
	return false, evicted, evictedDirty
}

// Contains reports whether the page is resident without touching it.
func (b *BufferPool) Contains(id PageID) bool {
	_, ok := b.pages[id]
	return ok
}

// MarkDirty marks a resident page dirty. Marking a non-resident page is a
// no-op (the write already went to simulated disk).
func (b *BufferPool) MarkDirty(id PageID) {
	if _, ok := b.pages[id]; ok {
		b.dirty[id] = true
	}
}

// DirtyCount returns the number of dirty resident pages.
func (b *BufferPool) DirtyCount() int { return len(b.dirty) }

// FlushAll marks all dirty pages clean and returns how many were flushed;
// the caller charges the corresponding write I/O (checkpoint).
func (b *BufferPool) FlushAll() int {
	n := len(b.dirty)
	b.dirty = make(map[PageID]bool)
	return n
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (b *BufferPool) HitRate() float64 {
	total := b.hits + b.misses
	if total == 0 {
		return 0
	}
	return float64(b.hits) / float64(total)
}

// Stats returns cumulative hit and miss counts.
func (b *BufferPool) Stats() (hits, misses int64) { return b.hits, b.misses }
