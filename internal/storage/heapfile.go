package storage

import "fmt"

// HeapFile is a slotted-page record store: records are appended to the
// last page with room, addressed by RID, and updated in place. Record
// payloads are opaque byte slices. Page occupancy is tracked by byte size
// against PageSize with a per-record slot overhead, so a 1 KB YCSB record
// packs ~7 to an 8 KB page, as it would in SQL Server.
type HeapFile struct {
	pages    []*heapPage
	basePage PageID
	alloc    func() PageID
	slotOvh  int
	count    int
}

type heapPage struct {
	id    PageID
	used  int
	slots [][]byte // nil slot = deleted
}

// slotOverhead approximates the per-row header + slot array cost.
const slotOverhead = 16

// NewHeapFile returns an empty heap file. alloc assigns PageIDs (shared
// with the engine's index pages); if nil, pages are numbered from 1.
func NewHeapFile(alloc func() PageID) *HeapFile {
	h := &HeapFile{alloc: alloc, slotOvh: slotOverhead}
	return h
}

func (h *HeapFile) newPage() *heapPage {
	var id PageID
	if h.alloc != nil {
		id = h.alloc()
	} else {
		h.basePage++
		id = h.basePage
	}
	p := &heapPage{id: id}
	h.pages = append(h.pages, p)
	return p
}

// Insert appends a record and returns its RID.
func (h *HeapFile) Insert(rec []byte) RID {
	need := len(rec) + h.slotOvh
	var p *heapPage
	if n := len(h.pages); n > 0 && h.pages[n-1].used+need <= PageSize {
		p = h.pages[n-1]
	} else {
		p = h.newPage()
	}
	cp := make([]byte, len(rec))
	copy(cp, rec)
	p.slots = append(p.slots, cp)
	p.used += need
	h.count++
	return RID{Page: p.id, Slot: len(p.slots) - 1}
}

// pageByID finds the heap page with the given PageID.
func (h *HeapFile) pageByID(id PageID) (*heapPage, error) {
	// Pages are allocated in ascending PageID order; binary search.
	lo, hi := 0, len(h.pages)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case h.pages[mid].id == id:
			return h.pages[mid], nil
		case h.pages[mid].id < id:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return nil, fmt.Errorf("storage: no heap page %d", id)
}

// Read returns the record at rid.
func (h *HeapFile) Read(rid RID) ([]byte, error) {
	p, err := h.pageByID(rid.Page)
	if err != nil {
		return nil, err
	}
	if rid.Slot < 0 || rid.Slot >= len(p.slots) || p.slots[rid.Slot] == nil {
		return nil, fmt.Errorf("storage: no record at %v", rid)
	}
	return p.slots[rid.Slot], nil
}

// Update replaces the record at rid in place. Same-size or smaller
// updates always fit; larger updates grow page occupancy (this model does
// not forward records).
func (h *HeapFile) Update(rid RID, rec []byte) error {
	p, err := h.pageByID(rid.Page)
	if err != nil {
		return err
	}
	if rid.Slot < 0 || rid.Slot >= len(p.slots) || p.slots[rid.Slot] == nil {
		return fmt.Errorf("storage: no record at %v", rid)
	}
	p.used += len(rec) - len(p.slots[rid.Slot])
	cp := make([]byte, len(rec))
	copy(cp, rec)
	p.slots[rid.Slot] = cp
	return nil
}

// Delete removes the record at rid.
func (h *HeapFile) Delete(rid RID) error {
	p, err := h.pageByID(rid.Page)
	if err != nil {
		return err
	}
	if rid.Slot < 0 || rid.Slot >= len(p.slots) || p.slots[rid.Slot] == nil {
		return fmt.Errorf("storage: no record at %v", rid)
	}
	p.used -= len(p.slots[rid.Slot]) + h.slotOvh
	p.slots[rid.Slot] = nil
	h.count--
	return nil
}

// Len returns the number of live records.
func (h *HeapFile) Len() int { return h.count }

// Pages returns the number of allocated pages.
func (h *HeapFile) Pages() int { return len(h.pages) }

// PageIDs returns the IDs of all allocated pages in order.
func (h *HeapFile) PageIDs() []PageID {
	ids := make([]PageID, len(h.pages))
	for i, p := range h.pages {
		ids[i] = p.id
	}
	return ids
}
