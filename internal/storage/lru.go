// ByteLRU is the eviction core factored out of BufferPool so other
// layers can reuse it: a size-bounded least-recently-used map whose
// entries carry explicit byte weights. BufferPool instantiates it with
// unit weights (capacity counted in pages); rcfile's decompressed-chunk
// cache instantiates it with decoded chunk sizes (capacity counted in
// bytes).
//
// ByteLRU is not safe for concurrent use; callers that share one across
// goroutines wrap it in their own mutex (BufferPool is single-goroutine
// by construction, rcfile.ChunkCache locks).
package storage

import "container/list"

// ByteLRU maps K to V with LRU eviction once the summed entry weights
// exceed the capacity.
type ByteLRU[K comparable, V any] struct {
	capacity int64
	used     int64
	lru      *list.List // front = most recently used
	entries  map[K]*list.Element
	// onEvict, when non-nil, observes each evicted entry (BufferPool
	// uses it to surface dirty-page writebacks).
	onEvict func(key K, val V)

	hits, misses int64
}

type lruEntry[K comparable, V any] struct {
	key  K
	val  V
	size int64
}

// NewByteLRU returns an LRU holding at most capacity weight (>= 1).
func NewByteLRU[K comparable, V any](capacity int64, onEvict func(K, V)) *ByteLRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &ByteLRU[K, V]{
		capacity: capacity,
		lru:      list.New(),
		entries:  make(map[K]*list.Element),
		onEvict:  onEvict,
	}
}

// Get returns the value under k, marking it most recently used. Every
// call counts toward the hit/miss statistics.
func (c *ByteLRU[K, V]) Get(k K) (V, bool) {
	if el, ok := c.entries[k]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Contains reports residency without touching recency or statistics.
func (c *ByteLRU[K, V]) Contains(k K) bool {
	_, ok := c.entries[k]
	return ok
}

// Put inserts (or replaces) the entry under k with the given weight and
// marks it most recently used, then evicts from the cold end until the
// capacity holds. An entry wider than the whole capacity is evicted
// immediately — the cache never lies about its bound.
func (c *ByteLRU[K, V]) Put(k K, v V, size int64) {
	if size < 0 {
		size = 0
	}
	if el, ok := c.entries[k]; ok {
		ent := el.Value.(*lruEntry[K, V])
		c.used += size - ent.size
		ent.val, ent.size = v, size
		c.lru.MoveToFront(el)
	} else {
		c.entries[k] = c.lru.PushFront(&lruEntry[K, V]{key: k, val: v, size: size})
		c.used += size
	}
	for c.used > c.capacity && c.lru.Len() > 0 {
		back := c.lru.Back()
		ent := back.Value.(*lruEntry[K, V])
		c.lru.Remove(back)
		delete(c.entries, ent.key)
		c.used -= ent.size
		if c.onEvict != nil {
			c.onEvict(ent.key, ent.val)
		}
	}
}

// Len returns the number of resident entries.
func (c *ByteLRU[K, V]) Len() int { return c.lru.Len() }

// UsedBytes returns the summed weight of resident entries.
func (c *ByteLRU[K, V]) UsedBytes() int64 { return c.used }

// Capacity returns the configured bound.
func (c *ByteLRU[K, V]) Capacity() int64 { return c.capacity }

// Stats returns cumulative hit and miss counts.
func (c *ByteLRU[K, V]) Stats() (hits, misses int64) { return c.hits, c.misses }

// Keys returns the resident keys from most to least recently used —
// introspection for tests pinning the eviction order.
func (c *ByteLRU[K, V]) Keys() []K {
	out := make([]K, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry[K, V]).key)
	}
	return out
}
