package storage

import (
	"reflect"
	"testing"
)

func TestByteLRUEvictionOrder(t *testing.T) {
	var evicted []string
	c := NewByteLRU[string, int](10, func(k string, _ int) { evicted = append(evicted, k) })
	c.Put("a", 1, 4)
	c.Put("b", 2, 4)
	if got := c.Keys(); !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Fatalf("Keys() = %v, want [b a] (MRU first)", got)
	}
	// Touch a so b becomes the cold end, then overflow: b must go first.
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	c.Put("c", 3, 4)
	if !reflect.DeepEqual(evicted, []string{"b"}) {
		t.Fatalf("evicted %v, want [b] (LRU evicts the cold end)", evicted)
	}
	if got := c.Keys(); !reflect.DeepEqual(got, []string{"c", "a"}) {
		t.Fatalf("Keys() after eviction = %v, want [c a]", got)
	}
	if c.UsedBytes() != 8 {
		t.Fatalf("UsedBytes() = %d, want 8", c.UsedBytes())
	}
}

func TestByteLRUReplaceAdjustsWeight(t *testing.T) {
	c := NewByteLRU[string, int](10, nil)
	c.Put("a", 1, 3)
	c.Put("a", 2, 7)
	if c.Len() != 1 || c.UsedBytes() != 7 {
		t.Fatalf("Len=%d Used=%d after replace, want 1/7", c.Len(), c.UsedBytes())
	}
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("Get(a) = %d after replace, want 2", v)
	}
}

func TestByteLRUOversizedEntry(t *testing.T) {
	c := NewByteLRU[string, int](10, nil)
	c.Put("a", 1, 4)
	c.Put("huge", 2, 100)
	if c.Contains("huge") {
		t.Fatal("entry wider than capacity stayed resident")
	}
	if c.UsedBytes() > c.Capacity() {
		t.Fatalf("UsedBytes %d exceeds capacity %d", c.UsedBytes(), c.Capacity())
	}
}

func TestByteLRUStats(t *testing.T) {
	c := NewByteLRU[string, int](10, nil)
	c.Put("a", 1, 1)
	c.Get("a")
	c.Get("missing")
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Fatalf("Stats() = %d/%d, want 1/1", h, m)
	}
	// Contains must not touch recency or stats.
	c.Contains("missing")
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Fatalf("Contains changed stats: %d/%d", h, m)
	}
}
