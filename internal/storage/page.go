// Package storage provides the single-node storage primitives shared by
// the SQL-Server-like engine and (in part) the document store: 8 KB
// pages, an LRU buffer pool, a slotted heap file, and a B+tree index.
//
// Storage is split into two concerns. The *functional* layer (heap file,
// B+tree) really stores records in host memory so queries return correct
// answers. The *residency* layer (BufferPool) models which pages would be
// memory-resident on the simulated hardware; engines consult it on every
// page touch and charge simulated disk time on misses. This is what lets
// a laptop-scale dataset reproduce the paper's "dataset is 2.5× memory"
// disk-bound behaviour.
package storage

// PageSize is the size of a database page in bytes. SQL Server uses 8 KB
// pages; the paper's Workload C analysis hinges on SQL Server reading
// 8 KB per buffer-pool miss while MongoDB reads 32 KB.
const PageSize = 8192

// PageID identifies a page within an engine instance.
type PageID int64

// RID is a record identifier: a page and a slot within it.
type RID struct {
	Page PageID
	Slot int
}
