package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBufferPoolHitMiss(t *testing.T) {
	b := NewBufferPool(2)
	if hit, _, _ := b.Touch(1); hit {
		t.Error("first touch should miss")
	}
	if hit, _, _ := b.Touch(1); !hit {
		t.Error("second touch should hit")
	}
	b.Touch(2)
	// Pool full; touching 3 evicts LRU page 1.
	_, evicted, dirty := b.Touch(3)
	if evicted != 1 || dirty {
		t.Errorf("evicted %d dirty=%v, want page 1 clean", evicted, dirty)
	}
	if b.Contains(1) {
		t.Error("page 1 should be evicted")
	}
}

func TestBufferPoolLRUOrder(t *testing.T) {
	b := NewBufferPool(2)
	b.Touch(1)
	b.Touch(2)
	b.Touch(1) // 2 is now LRU
	_, evicted, _ := b.Touch(3)
	if evicted != 2 {
		t.Errorf("evicted %d, want 2", evicted)
	}
}

func TestBufferPoolDirtyEviction(t *testing.T) {
	b := NewBufferPool(1)
	b.Touch(1)
	b.MarkDirty(1)
	_, evicted, dirty := b.Touch(2)
	if evicted != 1 || !dirty {
		t.Errorf("evicted %d dirty=%v, want 1 dirty", evicted, dirty)
	}
}

func TestBufferPoolFlushAll(t *testing.T) {
	b := NewBufferPool(10)
	for i := PageID(1); i <= 5; i++ {
		b.Touch(i)
		b.MarkDirty(i)
	}
	if n := b.FlushAll(); n != 5 {
		t.Errorf("flushed %d, want 5", n)
	}
	if b.DirtyCount() != 0 {
		t.Error("dirty pages remain after flush")
	}
}

func TestBufferPoolMarkDirtyNonResident(t *testing.T) {
	b := NewBufferPool(1)
	b.MarkDirty(99) // no-op
	if b.DirtyCount() != 0 {
		t.Error("non-resident page must not be marked dirty")
	}
}

func TestBufferPoolHitRate(t *testing.T) {
	b := NewBufferPool(4)
	b.Touch(1)
	b.Touch(1)
	b.Touch(1)
	b.Touch(2)
	if got := b.HitRate(); got != 0.5 {
		t.Errorf("hit rate %g, want 0.5", got)
	}
}

func TestBTreeInsertGet(t *testing.T) {
	bt := NewBTree(4, nil)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key%04d", i)
		added, _ := bt.Insert(key, int64(i))
		if !added {
			t.Fatalf("insert %q reported duplicate", key)
		}
	}
	if bt.Len() != 100 {
		t.Fatalf("len = %d, want 100", bt.Len())
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key%04d", i)
		v, ok, path := bt.Get(key)
		if !ok || v != int64(i) {
			t.Fatalf("Get(%q) = %d,%v", key, v, ok)
		}
		if len(path) != bt.Height() {
			t.Fatalf("path len %d != height %d", len(path), bt.Height())
		}
	}
}

func TestBTreeUpdateInPlace(t *testing.T) {
	bt := NewBTree(4, nil)
	bt.Insert("a", 1)
	added, _ := bt.Insert("a", 2)
	if added {
		t.Error("re-insert should not add")
	}
	if v, _, _ := bt.Get("a"); v != 2 {
		t.Errorf("value = %d, want 2", v)
	}
	if bt.Len() != 1 {
		t.Errorf("len = %d, want 1", bt.Len())
	}
}

func TestBTreeMissingKey(t *testing.T) {
	bt := NewBTree(4, nil)
	bt.Insert("b", 1)
	if _, ok, _ := bt.Get("a"); ok {
		t.Error("found absent key")
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := NewBTree(4, nil)
	for i := 0; i < 50; i++ {
		bt.Insert(fmt.Sprintf("k%03d", i), int64(i))
	}
	ok, _ := bt.Delete("k025")
	if !ok {
		t.Fatal("delete existing key failed")
	}
	if _, found, _ := bt.Get("k025"); found {
		t.Error("deleted key still present")
	}
	if ok, _ := bt.Delete("k025"); ok {
		t.Error("double delete reported success")
	}
	if bt.Len() != 49 {
		t.Errorf("len = %d, want 49", bt.Len())
	}
}

func TestBTreeScan(t *testing.T) {
	bt := NewBTree(4, nil)
	for i := 0; i < 100; i++ {
		bt.Insert(fmt.Sprintf("k%03d", i), int64(i))
	}
	entries, _ := bt.Scan("k010", 5)
	if len(entries) != 5 {
		t.Fatalf("scan returned %d entries, want 5", len(entries))
	}
	for i, e := range entries {
		want := fmt.Sprintf("k%03d", 10+i)
		if e.Key != want || e.Val != int64(10+i) {
			t.Errorf("entry %d = %+v, want key %s", i, e, want)
		}
	}
}

func TestBTreeScanPastEnd(t *testing.T) {
	bt := NewBTree(4, nil)
	bt.Insert("a", 1)
	entries, _ := bt.Scan("b", 10)
	if len(entries) != 0 {
		t.Errorf("scan past end returned %d entries", len(entries))
	}
}

func TestBTreeOrderedProperty(t *testing.T) {
	f := func(keys []uint32) bool {
		bt := NewBTree(8, nil)
		uniq := make(map[string]bool)
		for _, k := range keys {
			key := fmt.Sprintf("%08x", k)
			bt.Insert(key, int64(k))
			uniq[key] = true
		}
		if bt.Len() != len(uniq) {
			return false
		}
		var got []string
		bt.Ascend(func(k string, v int64) bool {
			got = append(got, k)
			return true
		})
		if !sort.StringsAreSorted(got) {
			return false
		}
		return len(got) == len(uniq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBTreeRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bt := NewBTree(16, nil)
	ref := make(map[string]int64)
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("%06d", rng.Intn(2000))
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Int63()
			bt.Insert(k, v)
			ref[k] = v
		case 2:
			bt.Delete(k)
			delete(ref, k)
		}
	}
	if bt.Len() != len(ref) {
		t.Fatalf("len = %d, want %d", bt.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok, _ := bt.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%q) = %d,%v; want %d", k, got, ok, v)
		}
	}
}

func TestBTreeExternalAllocator(t *testing.T) {
	var next PageID = 100
	alloc := func() PageID { next++; return next }
	bt := NewBTree(4, alloc)
	bt.Insert("x", 1)
	_, _, path := bt.Get("x")
	if path[0] <= 100 {
		t.Errorf("root page %d, want allocator-assigned (>100)", path[0])
	}
}

func TestHeapFileInsertRead(t *testing.T) {
	h := NewHeapFile(nil)
	rid := h.Insert([]byte("hello"))
	got, err := h.Read(rid)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Read = %q, %v", got, err)
	}
}

func TestHeapFilePacking(t *testing.T) {
	h := NewHeapFile(nil)
	rec := make([]byte, 1024) // YCSB-size record
	for i := 0; i < 7; i++ {
		h.Insert(rec)
	}
	if h.Pages() != 1 {
		t.Errorf("7×1KB records used %d pages, want 1", h.Pages())
	}
	h.Insert(rec)
	if h.Pages() != 2 {
		t.Errorf("8th record should spill to page 2, got %d pages", h.Pages())
	}
}

func TestHeapFileUpdateDelete(t *testing.T) {
	h := NewHeapFile(nil)
	rid := h.Insert([]byte("aaa"))
	if err := h.Update(rid, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	got, _ := h.Read(rid)
	if string(got) != "bbbb" {
		t.Errorf("after update: %q", got)
	}
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Read(rid); err == nil {
		t.Error("read after delete should fail")
	}
	if h.Len() != 0 {
		t.Errorf("len = %d, want 0", h.Len())
	}
}

func TestHeapFileBadRID(t *testing.T) {
	h := NewHeapFile(nil)
	h.Insert([]byte("x"))
	if _, err := h.Read(RID{Page: 99, Slot: 0}); err == nil {
		t.Error("read of bad page should fail")
	}
	if _, err := h.Read(RID{Page: 1, Slot: 5}); err == nil {
		t.Error("read of bad slot should fail")
	}
	if err := h.Update(RID{Page: 99, Slot: 0}, nil); err == nil {
		t.Error("update of bad rid should fail")
	}
}

func TestHeapFileCopiesRecord(t *testing.T) {
	h := NewHeapFile(nil)
	buf := []byte("orig")
	rid := h.Insert(buf)
	buf[0] = 'X'
	got, _ := h.Read(rid)
	if string(got) != "orig" {
		t.Error("heap file must copy inserted records")
	}
}

func TestHeapFileManyPagesBinarySearch(t *testing.T) {
	h := NewHeapFile(nil)
	rec := make([]byte, 4000)
	var rids []RID
	for i := 0; i < 100; i++ {
		rids = append(rids, h.Insert(rec))
	}
	for _, rid := range rids {
		if _, err := h.Read(rid); err != nil {
			t.Fatalf("read %v: %v", rid, err)
		}
	}
}
