package tpch

import (
	"fmt"
	"testing"

	"elephants/internal/rcfile"
	"elephants/internal/relal"
)

// attachCachedRCFile swaps every base-table source for an RCFile
// encoding sharing one chunk cache (nil = uncached).
func attachCachedRCFile(t testing.TB, db *DB, groupRows int, cache *rcfile.ChunkCache) {
	t.Helper()
	for _, name := range TableNames {
		src, err := rcfile.NewSource(db.Table(name), groupRows)
		if err != nil {
			t.Fatalf("encode %s: %v", name, err)
		}
		src.SetCache(cache)
		db.SetSource(name, src)
	}
}

// TestCacheGoldenMatrix is the caching acceptance gate: across the full
// {workers} x {streams} matrix and three cache modes — both tiers off,
// both on, and a chunk cache too small to hold the working set (every
// insert evicts) — two rounds of RCFile-backed streams must reproduce
// the golden snapshot byte-for-byte. Run under -race (the CI streams
// job does) this also proves both cache tiers are data-race free.
func TestCacheGoldenMatrix(t *testing.T) {
	want := goldenSections(t)
	db := Generate(GenConfig{SF: goldenSF, Seed: 1, Random64: true})
	qids := []int{1, 3, 6, 13}
	modes := []struct {
		name         string
		chunkCap     int64 // 0 = no chunk cache
		noResult     bool
		wantChunkHit bool
	}{
		{name: "off", chunkCap: 0, noResult: true},
		{name: "on", chunkCap: 64 << 20, noResult: false, wantChunkHit: true},
		{name: "tiny", chunkCap: 1, noResult: false},
	}
	for _, workers := range []int{1, 4} {
		for _, streams := range []int{1, 4} {
			for _, mode := range modes {
				name := fmt.Sprintf("workers=%d_streams=%d_cache=%s", workers, streams, mode.name)
				t.Run(name, func(t *testing.T) {
					var cache *rcfile.ChunkCache
					if mode.chunkCap > 0 {
						cache = rcfile.NewChunkCache(mode.chunkCap)
					}
					attachCachedRCFile(t, db, 1024, cache)
					res := RunStreams(db, StreamConfig{
						Streams:       streams,
						Rounds:        2,
						Workers:       workers,
						Queries:       qids,
						NoResultCache: mode.noResult,
						Check:         goldenCheck(want),
					})
					for _, err := range res.Errors {
						t.Error(err)
					}
					if res.Queries != streams*2*len(qids) {
						t.Fatalf("answered %d queries, want %d", res.Queries, streams*2*len(qids))
					}
					if mode.noResult {
						if res.ResultCacheHits != 0 {
							t.Fatalf("result cache disabled but served %d hits", res.ResultCacheHits)
						}
					} else {
						// Round 2 of every stream must be memoized: its
						// keys were stored during round 1 at the latest.
						if min := streams * len(qids); res.ResultCacheHits < min {
							t.Fatalf("result cache served %d hits, want >= %d", res.ResultCacheHits, min)
						}
					}
					if mode.wantChunkHit && res.Scanned.CacheHits == 0 {
						t.Fatal("chunk cache saw no hits although queries share scan columns")
					}
					if mode.chunkCap == 0 && (res.Scanned.CacheHits != 0 || res.Scanned.BytesFromCache != 0) {
						t.Fatalf("cacheless run reported cache traffic: %+v", res.Scanned)
					}
					if res.Scanned.BytesFromCache > res.Scanned.BytesRead {
						t.Fatalf("BytesFromCache %d exceeds BytesRead %d",
							res.Scanned.BytesFromCache, res.Scanned.BytesRead)
					}
				})
			}
		}
	}
}

// TestResultCacheEpochInvalidation bumps the DB epoch mid-run (from the
// per-answer Check hook) and pins the memoization behavior: the round
// after a bump must recompute, the round after that is served from the
// memo again — and every answer stays golden throughout.
func TestResultCacheEpochInvalidation(t *testing.T) {
	want := goldenSections(t)
	db := Generate(GenConfig{SF: goldenSF, Seed: 1, Random64: true})
	bumped := false
	res := RunStreams(db, StreamConfig{
		Streams: 1,
		Rounds:  3,
		Queries: []int{6},
		Check: func(stream, round, id int, out *relal.Table) error {
			if round == 0 && !bumped {
				bumped = true
				db.BumpEpoch()
			}
			return goldenCheck(want)(stream, round, id, out)
		},
	})
	for _, err := range res.Errors {
		t.Error(err)
	}
	// Round 0 computes at epoch E, then the bump moves the DB to E+1:
	// round 1 misses (new key) and recomputes, round 2 hits round 1's
	// entry. Without invalidation this would be 2 hits.
	if res.ResultCacheHits != 1 {
		t.Fatalf("ResultCacheHits = %d after a mid-run epoch bump, want 1", res.ResultCacheHits)
	}
}

// TestEpochBumpsOnMutation pins which operations advance the epoch.
func TestEpochBumpsOnMutation(t *testing.T) {
	db := Generate(GenConfig{SF: 0.001, Seed: 1, Random64: true})
	e0 := db.Epoch()
	db.SetSource("lineitem", relal.NewTableSource(db.Lineitem))
	if db.Epoch() != e0+1 {
		t.Fatalf("SetSource moved epoch %d -> %d, want +1", e0, db.Epoch())
	}
	if _, err := db.Cluster("l_shipdate"); err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != e0+2 {
		t.Fatalf("Cluster moved epoch to %d, want %d", db.Epoch(), e0+2)
	}
	db.BumpEpoch()
	if db.Epoch() != e0+3 {
		t.Fatalf("BumpEpoch moved epoch to %d, want %d", db.Epoch(), e0+3)
	}
}

// TestStreamReportsSharedPool pins the oversubscription-reporting fix:
// the result carries the shared pool size, and the per-stream admission
// cap never exceeds it — no streams × workers arithmetic.
func TestStreamReportsSharedPool(t *testing.T) {
	db := Generate(GenConfig{SF: 0.001, Seed: 1, Random64: true})
	res := RunStreams(db, StreamConfig{Streams: 3, Workers: 1000, Queries: []int{6}})
	if res.PoolWorkers != relal.PoolSize() {
		t.Fatalf("PoolWorkers = %d, want relal.PoolSize() = %d", res.PoolWorkers, relal.PoolSize())
	}
	if res.Workers > res.PoolWorkers {
		t.Fatalf("admitted workers %d exceed the pool %d", res.Workers, res.PoolWorkers)
	}
	res = RunStreams(db, StreamConfig{Streams: 1, Queries: []int{6}})
	if res.Workers != res.PoolWorkers {
		t.Fatalf("Workers = %d with the cap unset, want pool size %d", res.Workers, res.PoolWorkers)
	}
}
