package tpch

import (
	"fmt"
	"testing"

	"elephants/internal/rcfile"
)

// BenchmarkTPCHDictQuery measures the dictionary-encoding win over
// RCF3-backed sources, dict on vs off, for the three queries the
// encoding targets: Q1 (group-by keys become codes), Q6 (the date
// window becomes a code-range filter), Q3 (joins gather codes). The
// scan really decompresses chunks per query, so the dict=off runs pay
// the per-row string materialization the paper's RCFile burned CPU on,
// while dict=on decodes only dictionaries and packed codes.
// scripts/bench.sh embeds ns/op and allocs/op in BENCH_PR5.json.
func BenchmarkTPCHDictQuery(b *testing.B) {
	for _, dict := range []bool{true, false} {
		db := Generate(GenConfig{SF: 0.01, Seed: 1, Random64: true, NoDict: !dict})
		for _, name := range TableNames {
			src, err := rcfile.NewSource(db.Table(name), 2048)
			if err != nil {
				b.Fatal(err)
			}
			db.SetSource(name, src)
		}
		state := "on"
		if !dict {
			state = "off"
		}
		for _, id := range []int{1, 6, 3} {
			b.Run(fmt.Sprintf("Q%d/dict=%s", id, state), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, _ := RunQueryWorkers(id, db, 1)
					if out == nil {
						b.Fatal("nil answer")
					}
				}
			})
		}
	}
}
