package tpch

import (
	"os"
	"testing"

	"elephants/internal/rcfile"
	"elephants/internal/relal"
)

// TestDictColumnsAreEncoded: the generator dictionary-encodes the
// default low-cardinality columns, and -no-dict (GenConfig.NoDict)
// leaves them raw.
func TestDictColumnsAreEncoded(t *testing.T) {
	db := Generate(GenConfig{SF: 0.002, Seed: 1, Random64: true})
	for _, tc := range []struct{ tbl, col string }{
		{"lineitem", "l_returnflag"},
		{"lineitem", "l_shipdate"},
		{"orders", "o_orderpriority"},
		{"customer", "c_mktsegment"},
		{"part", "p_brand"},
	} {
		tab := db.Table(tc.tbl)
		if !tab.Cols[tab.Schema.Col(tc.col)].IsDict() {
			t.Errorf("%s.%s not dictionary-encoded", tc.tbl, tc.col)
		}
	}
	// High-cardinality columns stay raw.
	li := db.Lineitem
	if li.Cols[li.Schema.Col("l_comment")].IsDict() {
		t.Error("l_comment should stay raw")
	}
	off := Generate(GenConfig{SF: 0.002, Seed: 1, Random64: true, NoDict: true})
	ol := off.Lineitem
	if ol.Cols[ol.Schema.Col("l_returnflag")].IsDict() {
		t.Error("NoDict generation must leave columns raw")
	}
}

// TestDictOffMatchesGolden proves encoding transparency from the other
// side: with dictionary encoding disabled the snapshot is the same
// bytes, so the committed golden file pins both representations.
func TestDictOffMatchesGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/tpch_golden.txt")
	if err != nil {
		t.Skip("golden file missing")
	}
	db := Generate(GenConfig{SF: goldenSF, Seed: 1, Random64: true, NoDict: true})
	diffGolden(t, goldenSnapshotOf(db), string(want))
}

// TestDictGoldenOverRCFileParallel is the acceptance matrix for the
// dict pipeline: dictionary-encoded generation, RCF3-encoded sources
// (dict chunks, group-local dictionaries, zone maps), and a
// multi-worker morsel pool must reproduce the golden snapshot
// byte-for-byte.
func TestDictGoldenOverRCFileParallel(t *testing.T) {
	want, err := os.ReadFile("testdata/tpch_golden.txt")
	if err != nil {
		t.Skip("golden file missing")
	}
	db := rcfileDB(t, goldenSF, 1024)
	li := db.Lineitem
	if !li.Cols[li.Schema.Col("l_returnflag")].IsDict() {
		t.Fatal("precondition: dict generation should be on by default")
	}
	old := DefaultWorkers
	DefaultWorkers = 3
	defer func() { DefaultWorkers = old }()
	diffGolden(t, goldenSnapshotOf(db), string(want))
}

// TestDictShrinksRCFileLineitem: the on-disk acceptance criterion —
// encoding the same generated lineitem with and without dictionaries,
// the dict file must be strictly smaller.
func TestDictShrinksRCFileLineitem(t *testing.T) {
	on := Generate(GenConfig{SF: 0.005, Seed: 1, Random64: true})
	off := Generate(GenConfig{SF: 0.005, Seed: 1, Random64: true, NoDict: true})
	onBytes := encodeBytes(t, on.Lineitem)
	offBytes := encodeBytes(t, off.Lineitem)
	if onBytes >= offBytes {
		t.Errorf("dict lineitem %d B, want < raw %d B", onBytes, offBytes)
	}
	t.Logf("RCFile lineitem: raw %d B, dict %d B (%.1f%%)",
		offBytes, onBytes, 100*float64(onBytes)/float64(offBytes))
}

func encodeBytes(t *testing.T, tab *relal.Table) int {
	t.Helper()
	src, err := rcfile.NewSource(tab, 2048)
	if err != nil {
		t.Fatal(err)
	}
	return src.Bytes()
}

// TestDictShrinksScanAccounting: the cost models consume the scan byte
// accounting, so Q1's modeled lineitem bytes must drop under dict
// encoding the same way the file does.
func TestDictShrinksScanAccounting(t *testing.T) {
	run := func(noDict bool) int64 {
		db := Generate(GenConfig{SF: 0.005, Seed: 1, Random64: true, NoDict: noDict})
		_, log := RunQuery(1, db)
		read, skipped := lineitemScanStats(log)
		return read + skipped
	}
	on, off := run(false), run(true)
	if on >= off {
		t.Errorf("dict scan accounting %d B, want < raw %d B", on, off)
	}
}
