package tpch

import (
	"fmt"
	"testing"

	"elephants/internal/rcfile"
)

// BenchmarkTPCHEncQuery measures the chunk-encoding win over
// RCF4-backed sources for the two scan-dominated queries, on both data
// layouts: unclustered (generation order; runs mostly in the
// low-cardinality flags) and clustered on l_shipdate (the paper's
// sorted-data layout, where the date columns collapse to gdict+rle and
// the run-aware Where/Aggregate kernels see long runs). enc=off writes
// the same data plain/gdict and pins the fallback cost.
// scripts/bench.sh embeds ns/op and allocs/op in BENCH_PR7.json.
func BenchmarkTPCHEncQuery(b *testing.B) {
	for _, clustered := range []bool{false, true} {
		cfg := GenConfig{SF: 0.01, Seed: 1, Random64: true}
		layout := "unclustered"
		if clustered {
			cfg.ClusterBy = "l_shipdate"
			layout = "clustered"
		}
		for _, enc := range []bool{true, false} {
			db := Generate(cfg)
			opts := rcfile.WriterOpts{NoRLE: !enc, NoDelta: !enc}
			for _, name := range TableNames {
				src, err := rcfile.NewSourceOpts(db.Table(name), 2048, opts)
				if err != nil {
					b.Fatal(err)
				}
				db.SetSource(name, src)
			}
			state := "on"
			if !enc {
				state = "off"
			}
			for _, id := range []int{1, 6} {
				b.Run(fmt.Sprintf("Q%d/%s/enc=%s", id, layout, state), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						out, _ := RunQueryWorkers(id, db, 1)
						if out == nil {
							b.Fatal("nil answer")
						}
					}
				})
			}
		}
	}
}
