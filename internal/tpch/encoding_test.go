package tpch

import (
	"os"
	"testing"

	"elephants/internal/rcfile"
)

// attachRCFileOpts mirrors attachRCFile with explicit chunk-encoding
// toggles on the RCF4 writer.
func attachRCFileOpts(t testing.TB, db *DB, groupRows int, opts rcfile.WriterOpts) {
	t.Helper()
	for _, name := range TableNames {
		src, err := rcfile.NewSourceOpts(db.Table(name), groupRows, opts)
		if err != nil {
			t.Fatalf("encode %s: %v", name, err)
		}
		db.SetSource(name, src)
	}
}

// TestEncodingGoldenOverRCFileParallel is the acceptance matrix for the
// chunk-encoding pipeline: all 22 query answers, scanned through RCF4
// files written with every encoding enabled and with RLE+delta forced
// off, must reproduce the committed golden snapshot byte-for-byte at
// several worker counts. The enabled run decodes real run-list vectors
// into the run-aware kernels; the disabled run pins the plain/gdict
// fallback to the same bytes.
func TestEncodingGoldenOverRCFileParallel(t *testing.T) {
	want, err := os.ReadFile("testdata/tpch_golden.txt")
	if err != nil {
		t.Skip("golden file missing")
	}
	for _, tc := range []struct {
		name string
		opts rcfile.WriterOpts
	}{
		{"enc-on", rcfile.WriterOpts{}},
		{"enc-off", rcfile.WriterOpts{NoRLE: true, NoDelta: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db := Generate(GenConfig{SF: goldenSF, Seed: 1, Random64: true})
			attachRCFileOpts(t, db, 1024, tc.opts)
			old := DefaultWorkers
			defer func() { DefaultWorkers = old }()
			for _, workers := range []int{1, 3} {
				DefaultWorkers = workers
				diffGolden(t, goldenSnapshotOf(db), string(want))
			}
		})
	}
}

// TestEncodingClusteredAnswersAgree runs the matrix where RLE actually
// fires: lineitem clustered on l_shipdate, where the cluster column's
// chunks all win gdict+rle and the int keys go delta. Clustering
// reorders base rows, so the committed golden no longer applies —
// instead the encodings-off snapshot is the reference, and the
// encodings-on snapshot must match it bit-for-bit at every worker
// count, proving the run-aware kernels invisible on the data shape
// they were built for.
func TestEncodingClusteredAnswersAgree(t *testing.T) {
	snap := func(opts rcfile.WriterOpts, workers int) string {
		db := Generate(GenConfig{SF: goldenSF, Seed: 1, Random64: true, ClusterBy: "l_shipdate"})
		attachRCFileOpts(t, db, 1024, opts)
		old := DefaultWorkers
		DefaultWorkers = workers
		defer func() { DefaultWorkers = old }()
		return goldenSnapshotOf(db)
	}
	want := snap(rcfile.WriterOpts{NoRLE: true, NoDelta: true}, 1)
	for _, workers := range []int{1, 3} {
		diffGolden(t, snap(rcfile.WriterOpts{}, workers), want)
	}
}

// TestEncodingClusteredChunksUseRuns pins the writer's adaptive choice
// on clustered data: the cluster column must come out gdict+rle in
// every chunk, the sorted int keys delta, and turning the encodings off
// must leave only plain/gdict — otherwise the run-aware kernels are
// silently never exercised.
func TestEncodingClusteredChunksUseRuns(t *testing.T) {
	db := Generate(GenConfig{SF: 0.005, Seed: 1, Random64: true, ClusterBy: "l_shipdate"})
	li := db.Lineitem
	src, err := rcfile.NewSourceOpts(li, 2048, rcfile.WriterOpts{})
	if err != nil {
		t.Fatal(err)
	}
	stats := src.EncodingStats()
	count := func(col, enc string) int {
		ci := li.Schema.Col(col)
		for e, name := range rcfile.EncNames {
			if name == enc {
				return stats[ci].Chunks[e]
			}
		}
		t.Fatalf("unknown encoding %q", enc)
		return 0
	}
	if n, tot := count("l_shipdate", "gdict+rle"), count("l_shipdate", "gdict+rle")+count("l_shipdate", "gdict")+count("l_shipdate", "plain"); n != tot || n == 0 {
		t.Errorf("clustered l_shipdate: %d of %d chunks gdict+rle", n, tot)
	}
	for _, col := range []string{"l_orderkey", "l_partkey", "l_suppkey", "l_linenumber"} {
		if count(col, "delta") == 0 {
			t.Errorf("sorted int key %s has no delta chunks", col)
		}
	}

	off, err := rcfile.NewSourceOpts(li, 2048, rcfile.WriterOpts{NoRLE: true, NoDelta: true})
	if err != nil {
		t.Fatal(err)
	}
	for ci, st := range off.EncodingStats() {
		for e, n := range st.Chunks {
			if n > 0 && rcfile.EncNames[e] != "plain" && rcfile.EncNames[e] != "gdict" {
				t.Errorf("encodings off: column %s still has %d %s chunks",
					li.Schema[ci].Name, n, rcfile.EncNames[e])
			}
		}
	}
	if onB, offB := src.Bytes(), off.Bytes(); onB >= offB {
		t.Errorf("clustered RCF4 with encodings %d B, want < without %d B", onB, offB)
	} else {
		t.Logf("clustered lineitem: enc-off %d B, enc-on %d B (%.1f%%)",
			offB, onB, 100*float64(onB)/float64(offB))
	}
}
