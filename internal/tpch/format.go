package tpch

import (
	"fmt"
	"strings"

	"elephants/internal/relal"
)

// FormatAnswer renders an answer table in the engine-independent text
// form the golden snapshot pins: a header line with the query ID and
// row count, the schema, then one pipe-joined line per row. Floats use
// %v (shortest exact representation) so any change in accumulation
// order or arithmetic shows up as a diff. Exported so harnesses outside
// this package (the HTAP golden tests) can pin their answers to the
// same snapshot.
func FormatAnswer(id int, t *relal.Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Q%d rows=%d\n", id, t.NumRows())
	names := make([]string, len(t.Schema))
	for i, c := range t.Schema {
		names[i] = fmt.Sprintf("%s:%d", c.Name, c.Type)
	}
	fmt.Fprintf(&b, "schema %s\n", strings.Join(names, "|"))
	for _, row := range relal.RowsOf(t) {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%v", v)
		}
		b.WriteString(strings.Join(parts, "|"))
		b.WriteByte('\n')
	}
	return b.String()
}
