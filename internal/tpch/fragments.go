// Distributed query fragments: the shard-local half of a query plus
// the coordinator-side merge that recombines per-shard partials into
// the exact single-process answer.
//
// A query qualifies for fragment execution only when both halves are
// provably exact under orderkey hash partitioning:
//
//   - every scan, filter, and join in the partial is colocated on
//     orderkey, so no shard ever needs another shard's rows, and
//   - the partial's aggregates merge by integer-valued sums, so
//     recombining per-shard results is independent of shard count and
//     accumulation order (no float rounding drift).
//
// Queries that fail either test (e.g. Q22's float revenue sums, whose
// grouped totals are order-sensitive) run through the coordinator's
// row-shipping path instead: shards return filtered base-table rows
// tagged with their global row position, the coordinator restores the
// original row order, and the unmodified single-process plan runs on
// the reassembled table. That path is exact for every query; fragments
// are the bandwidth optimisation for the plans that allow it.
package tpch

import "elephants/internal/relal"

// Fragment is one query's scatter/gather decomposition.
type Fragment struct {
	ID int
	// Tables are the base tables the partial scans; the distributed
	// executor only offers the fragment when all of them are partitioned
	// on the colocation key.
	Tables []string
	// Partial runs the shard-local plan against a (partitioned) DB and
	// returns the per-shard grouped partial aggregate.
	Partial func(e *relal.Exec, db *DB) *relal.Table
	// Merge recombines the per-shard partials (one table per live
	// shard, in shard order) into the final answer, including the
	// query's output sort.
	Merge func(e *relal.Exec, parts []*relal.Table) *relal.Table
}

// Fragments registers the queries with a proven-exact scatter/gather
// decomposition, keyed by query number.
var Fragments = map[int]Fragment{
	4: {
		ID:      4,
		Tables:  []string{"orders", "lineitem"},
		Partial: q4Partial,
		Merge: func(e *relal.Exec, parts []*relal.Table) *relal.Table {
			return e.Sort(mergeGroupedSums(parts, "o_orderpriority"),
				relal.OrderSpec{Col: "o_orderpriority"})
		},
	},
	12: {
		ID:      12,
		Tables:  []string{"lineitem", "orders"},
		Partial: q12Partial,
		Merge: func(e *relal.Exec, parts []*relal.Table) *relal.Table {
			return e.Sort(mergeGroupedSums(parts, "l_shipmode"),
				relal.OrderSpec{Col: "l_shipmode"})
		},
	},
}

// mergeGroupedSums adds per-shard grouped partials cell-wise: rows are
// matched on the string group column key, and every other column is
// summed in its own type. Count columns stay Int (an Aggregate re-run
// would widen them to Float and change the printed schema); Float
// columns here only ever hold integer-valued partial sums, so float
// addition is exact and shard-order-independent. Group keys keep their
// first-seen order; the caller applies the query's output sort.
func mergeGroupedSums(parts []*relal.Table, key string) *relal.Table {
	var schema relal.Schema
	for _, p := range parts {
		if p != nil {
			schema = p.Schema
			break
		}
	}
	if schema == nil {
		panic("tpch: mergeGroupedSums with no parts")
	}
	ki := schema.Col(key)
	type acc struct {
		ints   []int64
		floats []float64
	}
	accs := make(map[string]*acc)
	var order []string
	for _, p := range parts {
		if p == nil || p.NumRows() == 0 {
			continue
		}
		kv := p.StrCol(key)
		ivs := make([]relal.IntVec, len(schema))
		fvs := make([]relal.FloatVec, len(schema))
		for ci, c := range schema {
			if ci == ki {
				continue
			}
			switch c.Type {
			case relal.Int:
				ivs[ci] = p.IntCol(c.Name)
			case relal.Float:
				fvs[ci] = p.FloatCol(c.Name)
			default:
				panic("tpch: non-numeric aggregate column " + c.Name)
			}
		}
		for i := 0; i < p.NumRows(); i++ {
			k := kv.Get(i)
			a := accs[k]
			if a == nil {
				a = &acc{ints: make([]int64, len(schema)), floats: make([]float64, len(schema))}
				accs[k] = a
				order = append(order, k)
			}
			for ci, c := range schema {
				if ci == ki {
					continue
				}
				if c.Type == relal.Int {
					a.ints[ci] += ivs[ci].Get(i)
				} else {
					a.floats[ci] += fvs[ci].Get(i)
				}
			}
		}
	}
	cols := make([]*relal.Vector, len(schema))
	for ci, c := range schema {
		switch {
		case ci == ki:
			keys := make([]string, len(order))
			copy(keys, order)
			cols[ci] = relal.StrsV(keys)
		case c.Type == relal.Int:
			xs := make([]int64, len(order))
			for ri, k := range order {
				xs[ri] = accs[k].ints[ci]
			}
			cols[ci] = relal.IntsV(xs)
		default:
			xs := make([]float64, len(order))
			for ri, k := range order {
				xs[ri] = accs[k].floats[ci]
			}
			cols[ci] = relal.FloatsV(xs)
		}
	}
	return relal.NewTable("merged", schema, cols...)
}
