// Package tpch implements the TPC-H substrate: a dbgen-equivalent data
// generator (all eight tables, spec-faithful key sparsity, and the
// 32-bit RANDOM overflow bug the paper hit at SF 16000 together with its
// RANDOM64 fix), the twenty-two benchmark queries written once over the
// relal operators, and scale-factor arithmetic used by the engines to
// extrapolate laptop-scale runs to the paper's 250 GB–16 TB points.
//
// The generator emits typed column vectors directly — each table is
// built as parallel []int64/[]float64/[]string slices and handed to
// relal without ever boxing a cell. The random-draw order per row is
// fixed (it defines the deterministic dataset for a given seed) and
// matches the original row-at-a-time generator exactly.
package tpch

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"elephants/internal/relal"
)

// Scale-factor row counts per the TPC-H specification (rows at SF 1).
const (
	RegionRows    = 5
	NationRows    = 25
	SupplierPerSF = 10_000
	CustomerPerSF = 150_000
	PartPerSF     = 200_000
	PartSuppPerSF = 800_000
	OrdersPerSF   = 1_500_000
	// LineitemPerOrder is the average lineitems per order (1–7 uniform).
	LineitemPerOrder = 4
)

// Rows returns the row count of the named table at scale factor sf.
func Rows(table string, sf float64) int64 {
	switch table {
	case "region":
		return RegionRows
	case "nation":
		return NationRows
	case "supplier":
		return int64(SupplierPerSF * sf)
	case "customer":
		return int64(CustomerPerSF * sf)
	case "part":
		return int64(PartPerSF * sf)
	case "partsupp":
		return int64(PartSuppPerSF * sf)
	case "orders":
		return int64(OrdersPerSF * sf)
	case "lineitem":
		return int64(OrdersPerSF * sf * LineitemPerOrder)
	}
	panic("tpch: unknown table " + table)
}

// TableNames lists the eight base tables.
var TableNames = []string{
	"region", "nation", "supplier", "customer",
	"part", "partsupp", "orders", "lineitem",
}

// nations is the spec's nation list with its region assignment.
var nations = []struct {
	name   string
	region int64
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}

var shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}

var containers1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
var containers2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}

var typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
var typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

var nameWords = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
	"blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
	"chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
	"dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
	"frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
	"hot", "hoary", "indian", "ivory", "khaki", "lace", "lavender", "lawn",
	"lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
	"midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
	"orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
	"puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
	"sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
	"steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow",
}

// Epoch arithmetic: dates run 1992-01-01 .. 1998-12-31. We generate ISO
// strings from a day offset using a simple calendar.
var monthDays = [...]int{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}

// dateString converts a day offset from 1992-01-01 to an ISO date.
func dateString(offset int) string {
	year := 1992
	for {
		days := 365
		if isLeap(year) {
			days = 366
		}
		if offset < days {
			break
		}
		offset -= days
		year++
	}
	month := 0
	for {
		d := monthDays[month]
		if month == 1 && isLeap(year) {
			d++
		}
		if offset < d {
			break
		}
		offset -= d
		month++
	}
	return fmt.Sprintf("%04d-%02d-%02d", year, month+1, offset+1)
}

func isLeap(y int) bool { return y%4 == 0 && (y%100 != 0 || y%400 == 0) }

// totalDays is the generator's date range (1992-01-01 through
// 1998-08-02 for shipdates per the spec's o_orderdate + intervals).
const orderDateDays = 2406 // orderdates span 1992-01-01 .. 1998-08-02

// DB holds the eight generated tables. Tables are immutable after
// generation, and the lazily-populated source registry is mutex-guarded,
// so one DB can serve any number of concurrent query streams.
type DB struct {
	SF       float64
	Region   *relal.Table
	Nation   *relal.Table
	Supplier *relal.Table
	Customer *relal.Table
	Part     *relal.Table
	PartSupp *relal.Table
	Orders   *relal.Table
	Lineitem *relal.Table

	// srcMu guards srcs: Src is called from every scan of every stream
	// and creates in-memory TableSources on first use.
	srcMu sync.Mutex
	// srcs holds the scan sources queries read base tables through;
	// unset entries default to in-memory TableSources over the tables
	// above. SetSource swaps in other backends (e.g. rcfile.Source).
	srcs map[string]relal.Source
	// epoch counts source-visible mutations (SetSource, Cluster,
	// BumpEpoch). Result memoization keys on it: answers computed at
	// epoch E are served only while the DB is still at E, so swapping a
	// source or rewriting a table invalidates every memoized result
	// without any cache walk.
	epoch atomic.Uint64
}

// Epoch returns the DB's current source epoch. Monotonic; safe from any
// goroutine.
func (db *DB) Epoch() uint64 { return db.epoch.Load() }

// BumpEpoch advances the source epoch by hand — the hook for callers
// that mutate data the DB cannot see (e.g. a future write path appending
// deltas behind a Source), so memoized results stop being served.
func (db *DB) BumpEpoch() { db.epoch.Add(1) }

// Src returns the scan source serving the named base table. Safe for
// concurrent use.
func (db *DB) Src(name string) relal.Source {
	db.srcMu.Lock()
	defer db.srcMu.Unlock()
	if s, ok := db.srcs[name]; ok {
		return s
	}
	if db.srcs == nil {
		db.srcs = make(map[string]relal.Source)
	}
	s := relal.NewTableSource(db.Table(name))
	db.srcs[name] = s
	return s
}

// SetSource installs a storage backend for the named base table; query
// scans go through it from then on. The in-memory table stays available
// via Table for generators and layout arithmetic.
func (db *DB) SetSource(name string, s relal.Source) {
	db.srcMu.Lock()
	defer db.srcMu.Unlock()
	if db.srcs == nil {
		db.srcs = make(map[string]relal.Source)
	}
	db.srcs[name] = s
	db.epoch.Add(1)
}

// Table returns the named base table.
func (db *DB) Table(name string) *relal.Table {
	switch name {
	case "region":
		return db.Region
	case "nation":
		return db.Nation
	case "supplier":
		return db.Supplier
	case "customer":
		return db.Customer
	case "part":
		return db.Part
	case "partsupp":
		return db.PartSupp
	case "orders":
		return db.Orders
	case "lineitem":
		return db.Lineitem
	}
	panic("tpch: unknown table " + name)
}

// DefaultDictColumns lists the Str columns the generator
// dictionary-encodes by default: the spec's enumerated low-cardinality
// columns (l_returnflag has 3 values, l_linestatus 2, l_shipmode 7,
// o_orderpriority 5, c_mktsegment 5, p_brand 25, p_type 150, …) plus
// the date columns (~2.4k distinct ISO strings). Every kernel operates
// on the codes; the decoded answers are byte-identical to raw-string
// generation.
var DefaultDictColumns = []string{
	"l_returnflag", "l_linestatus", "l_shipmode", "l_shipinstruct",
	"l_shipdate", "l_commitdate", "l_receiptdate",
	"o_orderstatus", "o_orderpriority", "o_orderdate",
	"c_mktsegment",
	"p_mfgr", "p_brand", "p_type", "p_container",
	"n_name", "r_name",
}

// GenConfig controls generation.
type GenConfig struct {
	SF   float64
	Seed int64
	// Random64 selects the 64-bit key generator. With Random64 false
	// and key ranges beyond 2^31, generated partkey/custkey values
	// overflow and go negative — the dbgen bug the paper found at the
	// 16 TB scale factor and fixed with RANDOM64.
	Random64 bool
	// DictColumns names the Str columns to dictionary-encode after
	// generation (nil = DefaultDictColumns). NoDict disables the
	// encoding entirely — the `-no-dict` escape hatch in dbgen and
	// tpchbench — leaving every Str column as raw []string.
	DictColumns []string
	NoDict      bool
	// ClusterBy names a column to cluster on (e.g. "l_shipdate"): the
	// base table owning it is rewritten in stable col-sorted order after
	// generation, before any RCFile encoding. Zone maps only prune when
	// data is clustered on the predicate column, so this is the layout
	// knob that makes range pushdown bite (a shipdate-sorted lineitem
	// skips ~97% of bytes for Q6's one-year range). Empty = the spec's
	// generation order.
	ClusterBy string
}

// Generate builds a TPC-H database at the given scale factor. Laptop
// scale factors (0.001–0.1) generate in milliseconds–seconds.
func Generate(cfg GenConfig) *DB {
	if cfg.SF <= 0 {
		cfg.SF = 0.01
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	db := &DB{SF: cfg.SF}
	db.Region = genRegion()
	db.Nation = genNation()
	db.Supplier = genSupplier(cfg, rng)
	db.Customer = genCustomer(cfg, rng)
	db.Part = genPart(cfg, rng)
	db.PartSupp = genPartSupp(cfg, rng)
	db.Orders, db.Lineitem = genOrdersLineitem(cfg, rng)
	if !cfg.NoDict {
		cols := cfg.DictColumns
		if cols == nil {
			cols = DefaultDictColumns
		}
		db.encodeDictColumns(cols)
	}
	if cfg.ClusterBy != "" {
		if _, err := db.Cluster(cfg.ClusterBy); err != nil {
			panic("tpch: " + err.Error())
		}
	}
	return db
}

// encodeDictColumns replaces the named Str columns' vectors with their
// dictionary encoding (sorted distinct values + per-row codes). Run
// before any source or scan-info caching exists, so every downstream
// consumer — kernels, RCFile encoding, cost accounting — sees the dict
// vectors from the start.
func (db *DB) encodeDictColumns(cols []string) {
	want := make(map[string]bool, len(cols))
	for _, c := range cols {
		want[c] = true
	}
	for _, name := range TableNames {
		t := db.Table(name)
		for ci, c := range t.Schema {
			if c.Type == relal.Str && want[c.Name] {
				t.Cols[ci] = relal.EncodeDict(t.Cols[ci].Strs)
			}
		}
	}
}

// Cluster rewrites the base table owning col in stable col-sorted order
// (dense vectors, same name and schema) and drops any registered scan
// source for it so the next scan serves the clustered layout. It
// returns the rewritten table's name. The sort is the relal stable sort,
// so the layout is deterministic for a given seed.
func (db *DB) Cluster(col string) (string, error) {
	for _, name := range TableNames {
		t := db.Table(name)
		owns := false
		for _, c := range t.Schema {
			if c.Name == col {
				owns = true
				break
			}
		}
		if !owns {
			continue
		}
		e := &relal.Exec{}
		sorted := e.Sort(t, relal.OrderSpec{Col: col}).Compacted()
		sorted.Name = name
		db.setTable(name, sorted)
		db.srcMu.Lock()
		delete(db.srcs, name)
		db.srcMu.Unlock()
		db.epoch.Add(1)
		return name, nil
	}
	return "", fmt.Errorf("no base table has column %q", col)
}

// setTable replaces the named base table.
func (db *DB) setTable(name string, t *relal.Table) {
	switch name {
	case "region":
		db.Region = t
	case "nation":
		db.Nation = t
	case "supplier":
		db.Supplier = t
	case "customer":
		db.Customer = t
	case "part":
		db.Part = t
	case "partsupp":
		db.PartSupp = t
	case "orders":
		db.Orders = t
	case "lineitem":
		db.Lineitem = t
	default:
		panic("tpch: unknown table " + name)
	}
}

// RandomKey reproduces dbgen's RANDOM macro: 32-bit arithmetic that
// overflows (yielding negative keys) when the range exceeds int32, as
// at SF 16000. RandomKey64 is the RANDOM64 fix.
func RandomKey(rng *rand.Rand, lo, hi int64) int64 {
	span := int32(hi - lo + 1) // overflow happens here at huge SF
	if span <= 0 {
		// Overflowed: dbgen produced garbage negative keys.
		return lo + int64(int32(rng.Uint32()))
	}
	return lo + int64(rng.Int31n(span))
}

// RandomKey64 is the 64-bit replacement used after the fix.
func RandomKey64(rng *rand.Rand, lo, hi int64) int64 {
	return lo + rng.Int63n(hi-lo+1)
}

func (cfg GenConfig) key(rng *rand.Rand, lo, hi int64) int64 {
	if cfg.Random64 {
		return RandomKey64(rng, lo, hi)
	}
	return RandomKey(rng, lo, hi)
}

func comment(rng *rand.Rand, words int) string {
	out := make([]byte, 0, words*8)
	for i := 0; i < words; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, nameWords[rng.Intn(len(nameWords))]...)
	}
	return string(out)
}

func genRegion() *relal.Table {
	keys := make([]int64, 0, RegionRows)
	names := make([]string, 0, RegionRows)
	comments := make([]string, 0, RegionRows)
	for i, r := range regions {
		keys = append(keys, int64(i))
		names = append(names, r)
		comments = append(comments, "region comment")
	}
	return relal.NewTable("region", relal.Schema{
		{Name: "r_regionkey", Type: relal.Int},
		{Name: "r_name", Type: relal.Str},
		{Name: "r_comment", Type: relal.Str},
	}, relal.IntsV(keys), relal.StrsV(names), relal.StrsV(comments))
}

func genNation() *relal.Table {
	keys := make([]int64, 0, NationRows)
	names := make([]string, 0, NationRows)
	regionKeys := make([]int64, 0, NationRows)
	comments := make([]string, 0, NationRows)
	for i, n := range nations {
		keys = append(keys, int64(i))
		names = append(names, n.name)
		regionKeys = append(regionKeys, n.region)
		comments = append(comments, "nation comment")
	}
	return relal.NewTable("nation", relal.Schema{
		{Name: "n_nationkey", Type: relal.Int},
		{Name: "n_name", Type: relal.Str},
		{Name: "n_regionkey", Type: relal.Int},
		{Name: "n_comment", Type: relal.Str},
	}, relal.IntsV(keys), relal.StrsV(names), relal.IntsV(regionKeys), relal.StrsV(comments))
}

func genSupplier(cfg GenConfig, rng *rand.Rand) *relal.Table {
	n := Rows("supplier", cfg.SF)
	suppkey := make([]int64, 0, n)
	name := make([]string, 0, n)
	address := make([]string, 0, n)
	nationkey := make([]int64, 0, n)
	phones := make([]string, 0, n)
	acctbal := make([]float64, 0, n)
	comments := make([]string, 0, n)
	for i := int64(1); i <= n; i++ {
		nk := int64(rng.Intn(NationRows))
		com := comment(rng, 5)
		// The spec plants the "Customer ... Complaints" marker used by
		// Q16 in 5 of every 10,000 suppliers; at laptop scale factors
		// that would round to zero, so the rate is raised to 1 in 200
		// to keep the query selective but non-degenerate.
		if rng.Intn(200) == 0 {
			com = "Customer " + com + " Complaints"
		}
		suppkey = append(suppkey, i)
		name = append(name, fmt.Sprintf("Supplier#%09d", i))
		address = append(address, comment(rng, 2))
		nationkey = append(nationkey, nk)
		phones = append(phones, phone(nk, rng))
		acctbal = append(acctbal, float64(rng.Intn(2000000))/100-999.99)
		comments = append(comments, com)
	}
	return relal.NewTable("supplier", relal.Schema{
		{Name: "s_suppkey", Type: relal.Int},
		{Name: "s_name", Type: relal.Str},
		{Name: "s_address", Type: relal.Str},
		{Name: "s_nationkey", Type: relal.Int},
		{Name: "s_phone", Type: relal.Str},
		{Name: "s_acctbal", Type: relal.Float},
		{Name: "s_comment", Type: relal.Str},
	}, relal.IntsV(suppkey), relal.StrsV(name), relal.StrsV(address),
		relal.IntsV(nationkey), relal.StrsV(phones), relal.FloatsV(acctbal),
		relal.StrsV(comments))
}

func phone(nationkey int64, rng *rand.Rand) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", nationkey+10, rng.Intn(900)+100, rng.Intn(900)+100, rng.Intn(9000)+1000)
}

func genCustomer(cfg GenConfig, rng *rand.Rand) *relal.Table {
	n := Rows("customer", cfg.SF)
	custkey := make([]int64, 0, n)
	name := make([]string, 0, n)
	address := make([]string, 0, n)
	nationkey := make([]int64, 0, n)
	phones := make([]string, 0, n)
	acctbal := make([]float64, 0, n)
	mktsegment := make([]string, 0, n)
	comments := make([]string, 0, n)
	for i := int64(1); i <= n; i++ {
		nk := int64(rng.Intn(NationRows))
		com := comment(rng, 6)
		if rng.Intn(50) == 0 {
			com = "special " + com + " requests" // Q13 anti-pattern
		}
		custkey = append(custkey, i)
		name = append(name, fmt.Sprintf("Customer#%09d", i))
		address = append(address, comment(rng, 2))
		nationkey = append(nationkey, nk)
		phones = append(phones, phone(nk, rng))
		acctbal = append(acctbal, float64(rng.Intn(2000000))/100-999.99)
		mktsegment = append(mktsegment, segments[rng.Intn(len(segments))])
		comments = append(comments, com)
	}
	return relal.NewTable("customer", relal.Schema{
		{Name: "c_custkey", Type: relal.Int},
		{Name: "c_name", Type: relal.Str},
		{Name: "c_address", Type: relal.Str},
		{Name: "c_nationkey", Type: relal.Int},
		{Name: "c_phone", Type: relal.Str},
		{Name: "c_acctbal", Type: relal.Float},
		{Name: "c_mktsegment", Type: relal.Str},
		{Name: "c_comment", Type: relal.Str},
	}, relal.IntsV(custkey), relal.StrsV(name), relal.StrsV(address),
		relal.IntsV(nationkey), relal.StrsV(phones), relal.FloatsV(acctbal),
		relal.StrsV(mktsegment), relal.StrsV(comments))
}

func genPart(cfg GenConfig, rng *rand.Rand) *relal.Table {
	n := Rows("part", cfg.SF)
	partkey := make([]int64, 0, n)
	name := make([]string, 0, n)
	mfgr := make([]string, 0, n)
	brand := make([]string, 0, n)
	ptype := make([]string, 0, n)
	size := make([]int64, 0, n)
	container := make([]string, 0, n)
	retailprice := make([]float64, 0, n)
	comments := make([]string, 0, n)
	for i := int64(1); i <= n; i++ {
		m := rng.Intn(5) + 1
		b := rng.Intn(5) + 1
		partkey = append(partkey, i)
		name = append(name, comment(rng, 5)) // five color words, as the spec's p_name
		mfgr = append(mfgr, fmt.Sprintf("Manufacturer#%d", m))
		brand = append(brand, fmt.Sprintf("Brand#%d%d", m, b))
		ptype = append(ptype, typeSyl1[rng.Intn(6)]+" "+typeSyl2[rng.Intn(5)]+" "+typeSyl3[rng.Intn(5)])
		size = append(size, int64(rng.Intn(50)+1))
		container = append(container, containers1[rng.Intn(5)]+" "+containers2[rng.Intn(8)])
		retailprice = append(retailprice, 90000.0/100+float64((i/10)%20001)/100+100*float64(i%1000)/100)
		comments = append(comments, comment(rng, 3))
	}
	return relal.NewTable("part", relal.Schema{
		{Name: "p_partkey", Type: relal.Int},
		{Name: "p_name", Type: relal.Str},
		{Name: "p_mfgr", Type: relal.Str},
		{Name: "p_brand", Type: relal.Str},
		{Name: "p_type", Type: relal.Str},
		{Name: "p_size", Type: relal.Int},
		{Name: "p_container", Type: relal.Str},
		{Name: "p_retailprice", Type: relal.Float},
		{Name: "p_comment", Type: relal.Str},
	}, relal.IntsV(partkey), relal.StrsV(name), relal.StrsV(mfgr),
		relal.StrsV(brand), relal.StrsV(ptype), relal.IntsV(size),
		relal.StrsV(container), relal.FloatsV(retailprice), relal.StrsV(comments))
}

func genPartSupp(cfg GenConfig, rng *rand.Rand) *relal.Table {
	nPart := Rows("part", cfg.SF)
	nSupp := Rows("supplier", cfg.SF)
	if nSupp < 1 {
		nSupp = 1
	}
	partkey := make([]int64, 0, nPart*4)
	suppkey := make([]int64, 0, nPart*4)
	availqty := make([]int64, 0, nPart*4)
	supplycost := make([]float64, 0, nPart*4)
	comments := make([]string, 0, nPart*4)
	for p := int64(1); p <= nPart; p++ {
		for j := int64(0); j < 4; j++ {
			// Spec formula spreads the four suppliers of a part.
			s := (p+j*(nSupp/4+(p-1)/nSupp))%nSupp + 1
			partkey = append(partkey, p)
			suppkey = append(suppkey, s)
			availqty = append(availqty, int64(rng.Intn(9999)+1))
			supplycost = append(supplycost, float64(rng.Intn(100000))/100)
			comments = append(comments, comment(rng, 4))
		}
	}
	return relal.NewTable("partsupp", relal.Schema{
		{Name: "ps_partkey", Type: relal.Int},
		{Name: "ps_suppkey", Type: relal.Int},
		{Name: "ps_availqty", Type: relal.Int},
		{Name: "ps_supplycost", Type: relal.Float},
		{Name: "ps_comment", Type: relal.Str},
	}, relal.IntsV(partkey), relal.IntsV(suppkey), relal.IntsV(availqty),
		relal.FloatsV(supplycost), relal.StrsV(comments))
}

// OrderKey maps a dense order index (0-based) to the sparse o_orderkey:
// only the first 8 of every 32 keys are used. This sparsity is what
// leaves 384 of Hive's 512 lineitem buckets empty in the paper's Table 4
// analysis.
func OrderKey(i int64) int64 {
	group, offset := i/8, i%8
	return group*32 + offset + 1
}

// ordersCols / lineitemCols accumulate the two tables' column slices
// during the interleaved orders+lineitem generation pass.
type ordersCols struct {
	orderkey      []int64
	custkey       []int64
	orderstatus   []string
	totalprice    []float64
	orderdate     []string
	orderpriority []string
	clerk         []string
	shippriority  []int64
	comment       []string
}

type lineitemCols struct {
	orderkey      []int64
	partkey       []int64
	suppkey       []int64
	linenumber    []int64
	quantity      []float64
	extendedprice []float64
	discount      []float64
	tax           []float64
	returnflag    []string
	linestatus    []string
	shipdate      []string
	commitdate    []string
	receiptdate   []string
	shipinstruct  []string
	shipmode      []string
	comment       []string
}

func genOrdersLineitem(cfg GenConfig, rng *rand.Rand) (*relal.Table, *relal.Table) {
	nOrders := Rows("orders", cfg.SF)
	nCust := Rows("customer", cfg.SF)
	nPart := Rows("part", cfg.SF)
	nSupp := Rows("supplier", cfg.SF)
	if nCust < 1 {
		nCust = 1
	}
	if nPart < 1 {
		nPart = 1
	}
	if nSupp < 1 {
		nSupp = 1
	}
	var oc ordersCols
	var lc lineitemCols
	for i := int64(0); i < nOrders; i++ {
		okey := OrderKey(i)
		// mk_order uses RANDOM for custkey (and for lineitem partkey);
		// this is where the paper's overflow bug lives.
		ckey := cfg.key(rng, 1, nCust)
		if ckey < 1 || ckey > nCust {
			// Bug mode at huge SF: dbgen emitted the bad key. We keep
			// it, mirroring the broken generator.
			ckey = ckey % nCust
			if ckey < 1 {
				ckey = -ckey%nCust + 1
			}
		}
		// Spec: customers whose key is divisible by 3 never place
		// orders (one third of customers have no orders), which is
		// what gives Q13 its zero bucket and Q22 its answer set.
		if ckey%3 == 0 {
			ckey++
			if ckey > nCust {
				ckey = 1
			}
		}
		odateOff := rng.Intn(orderDateDays)
		odate := dateString(odateOff)
		nl := rng.Intn(7) + 1
		var total float64
		for ln := 0; ln < nl; ln++ {
			pkey := cfg.key(rng, 1, nPart)
			if pkey < 1 || pkey > nPart {
				pkey = -pkey%nPart + 1
			}
			skey := (pkey+int64(ln)*(nSupp/4+(pkey-1)/nSupp))%nSupp + 1
			qty := float64(rng.Intn(50) + 1)
			price := qty * (900 + float64(pkey%1000))
			disc := float64(rng.Intn(11)) / 100
			tax := float64(rng.Intn(9)) / 100
			shipOff := odateOff + rng.Intn(121) + 1
			commitOff := odateOff + rng.Intn(91) + 30
			receiptOff := shipOff + rng.Intn(30) + 1
			rf := "N"
			// Returned lineitems only exist for ship dates before the
			// current date minus ~17 months; approximate with a coin
			// flip on older dates.
			if shipOff < orderDateDays-500 && rng.Intn(2) == 0 {
				rf = []string{"R", "A"}[rng.Intn(2)]
			}
			ls := "O"
			if shipOff < orderDateDays-365 {
				ls = "F"
			}
			total += price * (1 + tax) * (1 - disc)
			lc.orderkey = append(lc.orderkey, okey)
			lc.partkey = append(lc.partkey, pkey)
			lc.suppkey = append(lc.suppkey, skey)
			lc.linenumber = append(lc.linenumber, int64(ln+1))
			lc.quantity = append(lc.quantity, qty)
			lc.extendedprice = append(lc.extendedprice, price)
			lc.discount = append(lc.discount, disc)
			lc.tax = append(lc.tax, tax)
			lc.returnflag = append(lc.returnflag, rf)
			lc.linestatus = append(lc.linestatus, ls)
			lc.shipdate = append(lc.shipdate, dateString(shipOff))
			lc.commitdate = append(lc.commitdate, dateString(commitOff))
			lc.receiptdate = append(lc.receiptdate, dateString(receiptOff))
			lc.shipinstruct = append(lc.shipinstruct, shipInstructs[rng.Intn(4)])
			lc.shipmode = append(lc.shipmode, shipModes[rng.Intn(7)])
			lc.comment = append(lc.comment, comment(rng, 4))
		}
		status := "O"
		if rng.Intn(2) == 0 {
			status = []string{"F", "P"}[rng.Intn(2)]
		}
		oc.orderkey = append(oc.orderkey, okey)
		oc.custkey = append(oc.custkey, ckey)
		oc.orderstatus = append(oc.orderstatus, status)
		oc.totalprice = append(oc.totalprice, math.Round(total*100)/100)
		oc.orderdate = append(oc.orderdate, odate)
		oc.orderpriority = append(oc.orderpriority, priorities[rng.Intn(5)])
		oc.clerk = append(oc.clerk, fmt.Sprintf("Clerk#%09d", rng.Intn(1000)+1))
		oc.shippriority = append(oc.shippriority, 0)
		oc.comment = append(oc.comment, comment(rng, 5))
	}
	orders := relal.NewTable("orders", relal.Schema{
		{Name: "o_orderkey", Type: relal.Int},
		{Name: "o_custkey", Type: relal.Int},
		{Name: "o_orderstatus", Type: relal.Str},
		{Name: "o_totalprice", Type: relal.Float},
		{Name: "o_orderdate", Type: relal.Str},
		{Name: "o_orderpriority", Type: relal.Str},
		{Name: "o_clerk", Type: relal.Str},
		{Name: "o_shippriority", Type: relal.Int},
		{Name: "o_comment", Type: relal.Str},
	}, relal.IntsV(oc.orderkey), relal.IntsV(oc.custkey), relal.StrsV(oc.orderstatus),
		relal.FloatsV(oc.totalprice), relal.StrsV(oc.orderdate), relal.StrsV(oc.orderpriority),
		relal.StrsV(oc.clerk), relal.IntsV(oc.shippriority), relal.StrsV(oc.comment))
	lineitem := relal.NewTable("lineitem", relal.Schema{
		{Name: "l_orderkey", Type: relal.Int},
		{Name: "l_partkey", Type: relal.Int},
		{Name: "l_suppkey", Type: relal.Int},
		{Name: "l_linenumber", Type: relal.Int},
		{Name: "l_quantity", Type: relal.Float},
		{Name: "l_extendedprice", Type: relal.Float},
		{Name: "l_discount", Type: relal.Float},
		{Name: "l_tax", Type: relal.Float},
		{Name: "l_returnflag", Type: relal.Str},
		{Name: "l_linestatus", Type: relal.Str},
		{Name: "l_shipdate", Type: relal.Str},
		{Name: "l_commitdate", Type: relal.Str},
		{Name: "l_receiptdate", Type: relal.Str},
		{Name: "l_shipinstruct", Type: relal.Str},
		{Name: "l_shipmode", Type: relal.Str},
		{Name: "l_comment", Type: relal.Str},
	}, relal.IntsV(lc.orderkey), relal.IntsV(lc.partkey), relal.IntsV(lc.suppkey),
		relal.IntsV(lc.linenumber), relal.FloatsV(lc.quantity), relal.FloatsV(lc.extendedprice),
		relal.FloatsV(lc.discount), relal.FloatsV(lc.tax), relal.StrsV(lc.returnflag),
		relal.StrsV(lc.linestatus), relal.StrsV(lc.shipdate), relal.StrsV(lc.commitdate),
		relal.StrsV(lc.receiptdate), relal.StrsV(lc.shipinstruct), relal.StrsV(lc.shipmode),
		relal.StrsV(lc.comment))
	return orders, lineitem
}

// TextBytes estimates the flat-text size in bytes of the named table at
// scale factor sf, used for load-time and scan costing at paper scales.
// Per-row text widths follow the spec's average row sizes.
func TextBytes(table string, sf float64) int64 {
	var width int64
	switch table {
	case "region":
		width = 80
	case "nation":
		width = 90
	case "supplier":
		width = 140
	case "customer":
		width = 160
	case "part":
		width = 120
	case "partsupp":
		width = 145
	case "orders":
		width = 110
	case "lineitem":
		width = 128
	}
	return Rows(table, sf) * width
}
