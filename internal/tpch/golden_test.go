package tpch

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/tpch_golden.txt from the current engine")

// goldenSF is deliberately tiny so the snapshot stays small and the test
// fast; every query still exercises its full operator tree.
const goldenSF = 0.005

func goldenSnapshot() string {
	return goldenSnapshotOf(Generate(GenConfig{SF: goldenSF, Seed: 1, Random64: true}))
}

func goldenSnapshotOf(db *DB) string {
	var b strings.Builder
	for _, q := range Queries {
		out, _ := RunQuery(q.ID, db)
		b.WriteString(FormatAnswer(q.ID, out))
	}
	return b.String()
}

// TestGoldenAnswers locks all 22 query answers against the committed
// snapshot. The snapshot was produced by the original row-at-a-time
// executor, so this is the proof that the columnar engine is
// answer-preserving.
func TestGoldenAnswers(t *testing.T) {
	got := goldenSnapshot()
	const path = "testdata/tpch_golden.txt"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	diffGolden(t, got, string(want))
}

func diffGolden(t *testing.T, got, want string) {
	t.Helper()
	if got == want {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("answer drift at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("answer drift: got %d lines, want %d", len(gl), len(wl))
}

// TestGoldenAnswersParallel locks the morsel-parallel kernels to the
// same snapshot: every worker-pool size must reproduce the golden file
// byte-for-byte (deterministic merge order, row-order accumulation).
func TestGoldenAnswersParallel(t *testing.T) {
	want, err := os.ReadFile("testdata/tpch_golden.txt")
	if err != nil {
		t.Skip("golden file missing")
	}
	for _, workers := range []int{2, 5} {
		old := DefaultWorkers
		DefaultWorkers = workers
		got := goldenSnapshot()
		DefaultWorkers = old
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			diffGolden(t, got, string(want))
		})
	}
}
